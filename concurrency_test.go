package logres

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Concurrent readers and a writer on one Database, exercised under -race:
// read-only methods share the RWMutex read lock and must never observe a
// half-published state or race on the frozen extensional fact set.
func TestConcurrentReadersAndWriter(t *testing.T) {
	db, err := Open(`
domains NAME = string;
associations
  EDGE = (src: NAME, dst: NAME);
  TC = (src: NAME, dst: NAME);
`, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`
mode radi.
rules
  tc(src: X, dst: Y) <- edge(src: X, dst: Y).
  tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
end.
`); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	readErr := make(chan error, 64)

	// Writer: keeps appending edge facts (data-variant applications).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			src := fmt.Sprintf(`
mode radv.
rules edge(src: "n%d", dst: "n%d").
end.
`, i, i+1)
			if _, err := db.Exec(src); err != nil {
				readErr <- fmt.Errorf("writer: %v", err)
				break
			}
		}
		close(stop)
	}()

	// Readers: queries, counts, instance renders, snapshots, explains.
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				switch g % 5 {
				case 0:
					_, err = db.Query(`?- tc(src: X, dst: Y).`)
				case 1:
					_, err = db.Count("tc")
				case 2:
					_, err = db.InstanceString()
				case 3:
					err = db.Save(&bytes.Buffer{})
				case 4:
					db.EDBCount("edge")
					db.RuleCount()
					db.Schema()
					db.Modules()
				}
				if err != nil {
					readErr <- fmt.Errorf("reader %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(readErr)
	for err := range readErr {
		t.Error(err)
	}

	// The final state must be intact and queryable.
	n, err := db.Count("tc")
	if err != nil {
		t.Fatal(err)
	}
	if want := 25 * 26 / 2; n != want {
		t.Fatalf("tc count = %d, want %d", n, want)
	}
}

// Mixed optimistic/serial stress: N goroutines interleave ApplyConcurrent,
// QueryContext, and serial Exec for a fixed wall budget. Invariants checked
// under -race: no lost updates (each successfully committed fact is present
// at the end, counted per predicate), and every failed application is a
// typed guard error — never an untyped one, never a corrupted state.
func TestConcurrentModuleMixedStress(t *testing.T) {
	db, err := Open(`
associations
  S0 = (x: integer);
  S1 = (x: integer);
  S2 = (x: integer);
  S3 = (x: integer);
  SHARED = (x: integer);
`)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	deadline := time.Now().Add(150 * time.Millisecond)
	var wg sync.WaitGroup
	fatal := make(chan error, 16)
	successes := make([]int, writers)
	var serialWrites int

	// Optimistic writers: each owns a predicate and commits unique facts;
	// conflicts (with the serial writer's universal commits) retry inside
	// ApplyConcurrent, and exhaustion is a typed, tolerated abort.
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); {
				src := fmt.Sprintf("mode ridv.\nrules s%d(x: %d).\nend.\n", g, i)
				_, err := db.ExecConcurrent(src)
				switch {
				case err == nil:
					successes[g]++
					i++
				case isTypedGuardError(err):
					// Conflict-retry exhaustion or a budget trip: retry the
					// same fact so the success count matches the EDB.
				default:
					fatal <- fmt.Errorf("writer %d: untyped error %v", g, err)
					return
				}
			}
		}(g)
	}

	// Serial writer: plain Exec takes the write lock and commits a
	// universal footprint — the conflict generator for the optimistic path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; time.Now().Before(deadline); i++ {
			src := fmt.Sprintf("mode ridv.\nrules shared(x: %d).\nend.\n", i)
			if _, err := db.Exec(src); err != nil {
				fatal <- fmt.Errorf("serial writer: %v", err)
				return
			}
			serialWrites++
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Readers: context queries and snapshots against the moving state.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx := context.Background()
			for time.Now().Before(deadline) {
				var err error
				if r == 0 {
					_, err = db.QueryContext(ctx, `?- shared(x: X).`)
				} else {
					err = db.Save(&bytes.Buffer{})
				}
				if err != nil {
					fatal <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}

	wg.Wait()
	close(fatal)
	for err := range fatal {
		t.Error(err)
	}

	// No lost updates: every acknowledged commit is in the final state.
	for g := 0; g < writers; g++ {
		if got := db.EDBCount(fmt.Sprintf("s%d", g)); got != successes[g] {
			t.Errorf("s%d: committed %d facts, EDB has %d", g, successes[g], got)
		}
	}
	if got := db.EDBCount("shared"); got != serialWrites {
		t.Errorf("shared: committed %d facts, EDB has %d", serialWrites, got)
	}
	if err := db.CheckConsistency(); err != nil {
		t.Errorf("final state inconsistent: %v", err)
	}
}

// isTypedGuardError reports whether err is one of the typed abort errors
// an application is allowed to fail with under contention.
func isTypedGuardError(err error) bool {
	var conflict *ConflictError
	var budget *BudgetError
	var canceled *CanceledError
	return errors.As(err, &conflict) || errors.As(err, &budget) || errors.As(err, &canceled)
}

// A snapshot round-trip must preserve behaviour with the state frozen at
// rest on both sides.
func TestSaveLoadFrozenState(t *testing.T) {
	db, err := Open(`
associations E = (x: integer);
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`
mode radv.
rules e(x: 1). e(x: 2).
end.
`); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.EDBCount("e"); got != 2 {
		t.Fatalf("loaded EDB count = %d, want 2", got)
	}
	// The loaded database must still accept writes.
	if _, err := db2.Exec(`
mode radv.
rules e(x: 3).
end.
`); err != nil {
		t.Fatal(err)
	}
	if got := db2.EDBCount("e"); got != 3 {
		t.Fatalf("after write EDB count = %d, want 3", got)
	}
}
