package logres

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// Concurrent readers and a writer on one Database, exercised under -race:
// read-only methods share the RWMutex read lock and must never observe a
// half-published state or race on the frozen extensional fact set.
func TestConcurrentReadersAndWriter(t *testing.T) {
	db, err := Open(`
domains NAME = string;
associations
  EDGE = (src: NAME, dst: NAME);
  TC = (src: NAME, dst: NAME);
`, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`
mode radi.
rules
  tc(src: X, dst: Y) <- edge(src: X, dst: Y).
  tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
end.
`); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	readErr := make(chan error, 64)

	// Writer: keeps appending edge facts (data-variant applications).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			src := fmt.Sprintf(`
mode radv.
rules edge(src: "n%d", dst: "n%d").
end.
`, i, i+1)
			if _, err := db.Exec(src); err != nil {
				readErr <- fmt.Errorf("writer: %v", err)
				break
			}
		}
		close(stop)
	}()

	// Readers: queries, counts, instance renders, snapshots, explains.
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				switch g % 5 {
				case 0:
					_, err = db.Query(`?- tc(src: X, dst: Y).`)
				case 1:
					_, err = db.Count("tc")
				case 2:
					_, err = db.InstanceString()
				case 3:
					err = db.Save(&bytes.Buffer{})
				case 4:
					db.EDBCount("edge")
					db.RuleCount()
					db.Schema()
					db.Modules()
				}
				if err != nil {
					readErr <- fmt.Errorf("reader %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(readErr)
	for err := range readErr {
		t.Error(err)
	}

	// The final state must be intact and queryable.
	n, err := db.Count("tc")
	if err != nil {
		t.Fatal(err)
	}
	if want := 25 * 26 / 2; n != want {
		t.Fatalf("tc count = %d, want %d", n, want)
	}
}

// A snapshot round-trip must preserve behaviour with the state frozen at
// rest on both sides.
func TestSaveLoadFrozenState(t *testing.T) {
	db, err := Open(`
associations E = (x: integer);
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`
mode radv.
rules e(x: 1). e(x: 2).
end.
`); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.EDBCount("e"); got != 2 {
		t.Fatalf("loaded EDB count = %d, want 2", got)
	}
	// The loaded database must still accept writes.
	if _, err := db2.Exec(`
mode radv.
rules e(x: 3).
end.
`); err != nil {
		t.Fatal(err)
	}
	if got := db2.EDBCount("e"); got != 3 {
		t.Fatalf("after write EDB count = %d, want 3", got)
	}
}
