package logres

import (
	"context"
	"fmt"
	"time"

	"logres/internal/engine"
	"logres/internal/guard"
	"logres/internal/hooks"
	"logres/internal/module"
	"logres/internal/obs"
	"logres/internal/parser"
)

// Optimistic concurrent module application (DESIGN.md §9). Serial
// Exec/Apply hold the write lock for the whole evaluation; concurrent
// application holds it only for a short commit critical section:
//
//  1. snapshot — read-lock just long enough to capture the published
//     (frozen) state and the commit-log epoch;
//  2. apply — run the module against the snapshot outside any lock,
//     recording its read/write predicate footprint (static analysis of
//     the compiled rules, narrowed/widened by the runtime delta);
//  3. validate + commit — write-lock, check the footprint against every
//     write committed since the snapshot epoch, and on success merge
//     the fact delta onto the current committed state (or install the
//     result wholesale when nothing intervened);
//  4. retry — on conflict, back off (capped exponential) and restart
//     from a fresh snapshot, up to the retry budget; exhaustion surfaces
//     a *ConflictError naming both footprints.
//
// Disjoint modules therefore evaluate in parallel and only serialize
// for the (cheap) commit; conflicting modules serialize through
// retries, producing a state bit-identical to some serial application
// order.

// DefaultMaxRetries is the retry bound of ApplyConcurrent when neither
// WithMaxRetries nor a per-call Budget.MaxRetries sets one.
const DefaultMaxRetries = 8

// Backoff schedule for conflict retries: capped exponential, starting
// small (conflicts usually resolve as soon as the winner's commit
// finishes) and never sleeping long enough to dominate latency.
const (
	retryBaseBackoff = 200 * time.Microsecond
	retryMaxBackoff  = 10 * time.Millisecond
)

// WithMaxRetries bounds the commit retries of every concurrent
// application (Budget.MaxRetries). n > 0 sets the bound, n == 0
// restores DefaultMaxRetries, n < 0 disables retries entirely — the
// first conflict surfaces the *ConflictError.
func WithMaxRetries(n int) Option {
	return func(db *Database) { db.opts.Budget.MaxRetries = n }
}

// ExecConcurrent parses and applies a module like Exec, but
// optimistically: evaluation runs against a snapshot outside the write
// lock and commits via footprint validation, so applications touching
// disjoint predicates proceed in parallel. See ApplyConcurrent for the
// protocol and failure mode.
func (db *Database) ExecConcurrent(src string, options ...CallOption) (*Result, error) {
	return db.ExecConcurrentContext(db.ctx(), src, options...)
}

// ExecConcurrentContext is ExecConcurrent under an explicit context.
func (db *Database) ExecConcurrentContext(ctx context.Context, src string, options ...CallOption) (*Result, error) {
	m, err := parser.ParseModule(src)
	if err != nil {
		return nil, err
	}
	return db.ApplyConcurrentContext(ctx, m, m.Mode, options...)
}

// ApplyConcurrent applies a parsed module with optimistic concurrency
// control: snapshot, evaluate outside the lock, validate the read/write
// footprint against commits since the snapshot, merge the delta under a
// short critical section. Conflicts retry with capped exponential
// backoff up to the retry budget (WithMaxRetries / Budget.MaxRetries,
// default DefaultMaxRetries); exhaustion returns a *ConflictError
// carrying both footprints. All other failure modes (rejection, budget,
// cancellation, panic) are identical to Apply, and the database state
// is untouched on any error.
func (db *Database) ApplyConcurrent(m *Module, mode Mode, options ...CallOption) (*Result, error) {
	return db.ApplyConcurrentContext(db.ctx(), m, mode, options...)
}

// ApplyConcurrentContext is ApplyConcurrent under an explicit context;
// cancellation aborts evaluation between rounds and backoff sleeps
// immediately, surfacing a *CanceledError.
func (db *Database) ApplyConcurrentContext(ctx context.Context, m *Module, mode Mode, options ...CallOption) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// The call configuration cannot change between attempts (SetTracer's
	// contract is that in-flight evaluations keep the tracer they started
	// with), so options and the retry budget resolve once, outside the
	// attempt loop. Only the state/epoch snapshot is re-read per attempt.
	db.mu.RLock()
	opts := applyCallOptions(db.opts, options)
	db.mu.RUnlock()
	opts.Ctx = ctx
	// Request-scoped observability resolves once too: all attempts (and
	// their commit, conflict, retry, and WAL events) belong to the same
	// originating request and the same profile.
	finish := instrumentCall(ctx, &opts, options)
	defer finish()
	tracer := opts.Tracer

	maxRetries := opts.Budget.MaxRetries
	switch {
	case maxRetries == 0:
		maxRetries = DefaultMaxRetries
	case maxRetries < 0:
		maxRetries = 0
	}

	for attempt := 0; ; attempt++ {
		// Snapshot: the published state is frozen and never mutated in
		// place, so holding the pointer outside the lock is safe; the
		// epoch read under the same lock tells validation exactly which
		// commits this evaluation could not have seen.
		db.mu.RLock()
		st := db.st
		epoch := db.log.Epoch()
		deferOK := db.maintDeferUsable()
		db.mu.RUnlock()

		// Deferred validation (view.go): when the maintainer can audit the
		// committed instance incrementally, skip the from-scratch instance
		// computation inside the snapshot application — tryCommit stages
		// the propagation and validates before the commit lands.
		var sr *module.SnapshotResult
		var err error
		if deferOK {
			sr, err = module.ApplySnapshotDeferred(st, m, mode, opts)
		} else {
			sr, err = module.ApplySnapshot(st, m, mode, opts)
		}
		if err != nil {
			return nil, err
		}
		if hook := hooks.ConcurrentPreCommit; hook != nil {
			hook(attempt)
		}

		_, path, pred, theirs, ok, err := db.tryCommit(opts, epoch, sr)
		if err != nil {
			// A WAL failure is not a conflict: the evaluation succeeded
			// but could not be made durable. No retry — the store
			// refuses writes until the database is reopened.
			return nil, err
		}
		if ok {
			if tracer != nil {
				tracer.Event(obs.Event{Kind: obs.KindModuleCommit, Pred: m.Name,
					Round: attempt, Count: len(sr.Adds) + len(sr.Removes), Detail: path})
			}
			return &Result{Answer: sr.Res.Answer, Mode: mode}, nil
		}

		if tracer != nil {
			tracer.Event(obs.Event{Kind: obs.KindModuleConflict, Pred: pred, Round: attempt,
				Detail: "mine: " + sr.Footprint.String() + "; theirs: " + theirs.String()})
		}
		if attempt >= maxRetries {
			cerr := &ConflictError{Pred: pred, Retries: attempt, Mine: sr.Footprint, Theirs: theirs}
			if tracer != nil {
				// The abort event is what flight recorders key their
				// dump on and what the metrics adapter counts under
				// logres_aborts_total{axis="retries"}.
				tracer.Event(obs.Event{Kind: obs.KindAbort, Axis: string(AxisRetries),
					Stratum: -1, Round: attempt, Detail: cerr.Error()})
			}
			return nil, cerr
		}

		backoff := retryBackoff(attempt)
		if tracer != nil {
			// Round is the attempt whose conflict triggered this backoff —
			// the same index the preceding KindModuleConflict carries, so a
			// conflict/retry pair diffs as one attempt in a trace.
			tracer.Event(obs.Event{Kind: obs.KindModuleRetry, Pred: m.Name,
				Round: attempt, Duration: backoff})
		}
		timer := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, &guard.CanceledError{Stratum: -1, Round: attempt, Err: ctx.Err()}
		case <-timer.C:
		}
	}
}

// retryBackoff returns the capped exponential backoff for a retry
// attempt. Doubling stops as soon as the cap is reached, so a large
// attempt count (reachable via WithMaxRetries / Budget.MaxRetries) can
// never shift the duration into overflow — the naive
// `retryBaseBackoff << attempt` wraps negative or zero once attempt
// exceeds ~45, the `> retryMaxBackoff` clamp no longer applies, and the
// timer fires immediately, turning conflict backoff into a hot spin.
func retryBackoff(attempt int) time.Duration {
	d := retryBaseBackoff
	for i := 0; i < attempt; i++ {
		d <<= 1
		if d >= retryMaxBackoff {
			return retryMaxBackoff
		}
	}
	return d
}

// tryCommit is the commit critical section: validate the attempt's
// footprint against the writes committed since its snapshot epoch and
// install the outcome. It returns the committed state (nil for
// read-only), the commit path for tracing, and on failure the
// conflicting predicate plus the committed footprint it collided with.
// On a durable database the commit is WAL-logged before it is
// published; a logging failure (err != nil) fails the application
// without a retry — the store refuses further writes until reopened.
// opts is the applying call's (request-instrumented) configuration: its
// tracer attributes the WAL append and any fsync wait to the request
// that paid for them, and deferred-validation fallbacks validate under
// the call's own budget.
func (db *Database) tryCommit(opts engine.Options, epoch uint64, sr *module.SnapshotResult) (next *module.State, path, pred string, theirs Footprint, ok bool, err error) {
	tracer := opts.Tracer
	db.mu.Lock()
	defer db.mu.Unlock()

	if sr.ReadOnly {
		// Queries validate nothing: the answer was computed against a
		// consistent snapshot, which equals the serial order in which
		// the query ran at its snapshot point.
		return nil, "read-only", "", Footprint{}, true, nil
	}
	if sr.Replace {
		// Whole-state replacement is only sound when nothing committed
		// since the snapshot — it carries no mergeable delta.
		if db.log.Epoch() != epoch {
			return nil, "", "*", Footprint{Universal: true}, false, nil
		}
		if err := db.walAppendReplace(tracer, epoch+1, sr.Res.State); err != nil {
			return nil, "", "", Footprint{}, false, err
		}
		prev := db.st
		db.publish(sr.Res.State)
		db.log.Record(Footprint{Universal: true})
		db.maybeCompact()
		db.maintAfterReplace(tracer, prev)
		return sr.Res.State, "replace", "", Footprint{}, true, nil
	}
	if p, their, valid := db.log.Validate(epoch, sr.Footprint); !valid {
		return nil, "", p, their, false, nil
	}
	if db.log.Epoch() == epoch {
		// Nothing committed since the snapshot: the evaluated result
		// state is already the correct successor.
		next, path = sr.Res.State, "fast"
	} else {
		// Disjoint concurrent commits landed: replay the delta onto the
		// current committed state.
		next, path = module.CommitDelta(db.st, sr), "merge"
	}
	if sr.Deferred {
		// The snapshot application skipped its instance validation; stage
		// the propagation through the maintainer and audit the maintained
		// instance before the commit lands. On the merge path this audits
		// the actually committed state, not just the snapshot result.
		if db.maintDeferUsable() {
			start := time.Now()
			vd, rollback, uerr := db.maint.UpdateStaged(sr.Adds, sr.Removes, next.E, next.Counter)
			if uerr == nil {
				if verr := db.maintValidate(next.S, vd); verr != nil {
					rollback()
					return nil, "", "", Footprint{}, false, fmt.Errorf("module: rejected: %w", verr)
				}
				if err := db.walAppendDelta(tracer, db.log.Epoch()+1, sr); err != nil {
					rollback()
					return nil, "", "", Footprint{}, false, err
				}
				db.publish(next)
				db.log.Record(Footprint{Writes: sr.Footprint.Writes})
				db.maybeCompact()
				ep := db.log.Epoch()
				if tracer != nil {
					tracer.Event(obs.Event{Kind: obs.KindIVMPropagate, Stratum: -1, Round: int(ep),
						Count: len(vd.Adds) + len(vd.Removes), Total: db.maint.Full().TotalSize(),
						Duration: time.Since(start)})
				}
				db.notifySubs(tracer, ep, vd)
				return next, path, "", Footprint{}, true, nil
			}
			// Propagation failed: the maintainer is inconsistent; validate
			// the scratch way below and let maintAfterDelta rebuild it.
			db.maintErr = uerr
		}
		// Staging unavailable (the maintainer went unhealthy since the
		// snapshot): validate from scratch under the lock — rare.
		if _, _, verr := next.Instance(opts); verr != nil {
			return nil, "", "", Footprint{}, false, fmt.Errorf("module: rejected: %w", verr)
		}
	}
	// The delta record replays removes-then-adds onto the predecessor
	// state — exactly what CommitDelta does — so recovery reproduces
	// next byte for byte on both the fast and merge paths.
	if err := db.walAppendDelta(tracer, db.log.Epoch()+1, sr); err != nil {
		return nil, "", "", Footprint{}, false, err
	}
	db.publish(next)
	db.log.Record(Footprint{Writes: sr.Footprint.Writes})
	db.maybeCompact()
	db.maintAfterDelta(tracer, sr.Adds, sr.Removes)
	return next, path, "", Footprint{}, true, nil
}

// CommitEpoch returns the database's current commit epoch — the number
// of state-changing commits recorded so far (introspection/tests).
func (db *Database) CommitEpoch() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.log.Epoch()
}

// commitLogWindow exposes the validation window for tests.
func (db *Database) commitLogWindow() int { return db.log.Window() }
