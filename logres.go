// Package logres is a from-scratch implementation of LOGRES (Cacace,
// Ceri, Crespi-Reghizzi, Tanca, Zicari — SIGMOD 1990): a deductive
// object-oriented database integrating an object-oriented data model
// (classes, oids, generalization hierarchies, object sharing, NF²
// associations, generalized type constructors) with a typed, rule-based
// language under the deterministic inflationary semantics, organized
// around modules with six application modes.
//
// The core workflow:
//
//	db, err := logres.Open(schemaSrc)        // type equations + isa
//	res, err := db.Exec(moduleSrc)           // apply a module (mode-aware)
//	ans, err := db.Query(`?- person(name: X).`)
//
// Schema, modules, rules and goals use the concrete syntax documented in
// the repository README, which covers every construct of the paper.
package logres

import (
	"context"
	"fmt"
	"io"
	"sync"

	"logres/internal/ast"
	"logres/internal/engine"
	"logres/internal/module"
	"logres/internal/parser"
	"logres/internal/storage"
	"logres/internal/types"
	"logres/internal/value"
)

// Mode is a module application mode (§4.1 of the paper).
type Mode = ast.Mode

// The six application modes: Rule Invariant/Addition/Deletion × Data
// Invariant/Variant.
const (
	RIDI = ast.RIDI
	RADI = ast.RADI
	RDDI = ast.RDDI
	RIDV = ast.RIDV
	RADV = ast.RADV
	RDDV = ast.RDDV
)

// Module is a parsed LOGRES module: type equations, rules and an optional
// goal, with an optional declared default mode.
type Module = ast.Module

// Answer is a goal's result: variable names and deduplicated rows.
type Answer = engine.Answer

// Value is a LOGRES runtime value (integers, reals, strings, booleans,
// object references, tuples, sets, multisets, sequences).
type Value = value.Value

// Fact is one ground fact of the database instance.
type Fact = engine.Fact

// Budget bounds every evaluation the database runs, along four axes:
// fixpoint rounds, facts derived beyond the extensional base, invented
// oids, and wall-clock time (armed when each evaluation starts). A zero
// axis is unbounded. Exhausting an axis aborts the evaluation with a
// *BudgetError and leaves the database state untouched.
type Budget = engine.Budget

// BudgetError is the typed abort error of an exhausted budget axis; it
// names the axis and carries the stratum, round, and resource counts at
// the abort. Retrieve it with errors.As.
type BudgetError = engine.BudgetError

// CanceledError is the typed abort error of a context cancellation; it
// unwraps to context.Canceled / context.DeadlineExceeded.
type CanceledError = engine.CanceledError

// PanicError is the typed error a recovered evaluation panic surfaces
// as; the database state is unchanged.
type PanicError = engine.PanicError

// ConflictError is the typed error an optimistic concurrent module
// application (ApplyConcurrent / ExecConcurrent) surfaces when every
// retry's commit validation failed; it names the conflicting predicate
// and carries both footprints. Retrieve it with errors.As.
type ConflictError = engine.ConflictError

// Footprint is the predicate-level read/write access set concurrent
// module applications validate against each other.
type Footprint = engine.Footprint

// Axis names one budget dimension in a BudgetError.
type Axis = engine.Axis

// The budget axes a BudgetError can name (AxisRetries appears only in
// the abort trace event of an exhausted concurrent application — the
// error itself is a *ConflictError).
const (
	AxisRounds   = engine.AxisRounds
	AxisFacts    = engine.AxisFacts
	AxisOIDs     = engine.AxisOIDs
	AxisDeadline = engine.AxisDeadline
	AxisRetries  = engine.AxisRetries
)

// Option configures a Database.
type Option func(*Database)

// WithMaxSteps bounds the number of one-step applications per fixpoint
// (the inflationary semantics does not guarantee termination).
//
// Deprecated: WithMaxSteps is a view onto Budget.MaxRounds; prefer
// WithBudget, which also bounds facts, invented oids, and wall-clock
// time. Both overflow with the same typed *BudgetError.
func WithMaxSteps(n int) Option {
	return func(db *Database) {
		db.opts.MaxSteps = n
		db.opts.Budget.MaxRounds = n
	}
}

// WithBudget bounds every evaluation the database runs; aborts surface
// as *BudgetError and never mutate the database.
func WithBudget(b Budget) Option {
	return func(db *Database) { db.opts.Budget = b }
}

// WithContext attaches a cancellation context to every evaluation the
// database runs; cancellation aborts between fixpoint rounds with a
// *CanceledError, state untouched. The *Context methods override it per
// call.
func WithContext(ctx context.Context) Option {
	return func(db *Database) { db.opts.Ctx = ctx }
}

// WithSemiNaive toggles the semi-naive optimization (default on).
func WithSemiNaive(on bool) Option {
	return func(db *Database) { db.opts.SemiNaive = on }
}

// WithStratification toggles perfect-model (stratified) evaluation
// (default on); when off, programs evaluate as a single inflationary
// block.
func WithStratification(on bool) Option {
	return func(db *Database) { db.opts.Stratify = on }
}

// WithNonInflationary selects the non-inflationary rule semantics for the
// whole database (modules may also opt in individually with a
// `semantics noninflationary.` declaration): derived facts persist only
// while re-derivable; undefined (an error) when no fixpoint is reached.
func WithNonInflationary(on bool) Option {
	return func(db *Database) { db.opts.NonInflationary = on }
}

// WithWorkers sets the number of goroutines used for parallel semi-naive
// evaluation (n <= 0 selects GOMAXPROCS, 1 forces serial). Results are
// bit-identical to serial evaluation for any worker count.
func WithWorkers(n int) Option {
	return func(db *Database) { db.opts.Workers = n }
}

// WithShards sets the number of partitions parallel evaluation splits the
// fact set into, so worker deltas merge concurrently — one goroutine per
// shard (n <= 0 selects GOMAXPROCS, 1 keeps the serial merge). Results
// are bit-identical for any shard count.
func WithShards(n int) Option {
	return func(db *Database) { db.opts.Shards = n }
}

// WithVectorize toggles columnar evaluation: eligible semi-naive strata
// run over dictionary-encoded column batches with vectorized
// select/join/anti-join/filter kernels instead of tuple-at-a-time row
// evaluation. Strata the columnar compiler cannot handle (tuple
// variables, oid invention, class predicates, …) silently fall back to
// the row engine per stratum. Results are bit-identical either way —
// the row engine remains the semantics oracle.
func WithVectorize(on bool) Option {
	return func(db *Database) { db.opts.Vectorize = on }
}

// Database is a LOGRES database: a state (E, R, S) evolved by module
// applications. All methods are safe for concurrent use: read-only
// methods (Query, Instance, Count, Save, …) share an RWMutex read lock
// and run concurrently with each other; module applications take the
// write lock and serialize. The published extensional fact set is kept
// frozen (engine.FactSet.Freeze) so concurrent readers share its indexes
// without lazy mutation.
type Database struct {
	mu   sync.RWMutex
	st   *module.State
	opts engine.Options
	// tracer/metrics are the configured observability sinks; the engine
	// sees their fan-out through opts.Tracer (see rewireTracer).
	tracer  Tracer
	metrics *Metrics
	// log is the committed-write log backing optimistic concurrent
	// application: every state-changing commit records its write
	// footprint at a fresh epoch; ApplyConcurrent validates against the
	// entries committed since its snapshot.
	log *storage.CommitLog
	// store, when non-nil, is the durable half (OpenDurable): every
	// commit appends one WAL record at its epoch before acknowledging.
	store *storage.Store
	// recovery is the report of the recovery that opened this database
	// (nil for fresh or non-durable databases).
	recovery *RecoveryReport
	// Incremental view maintenance (view.go): with WithIncremental the
	// maintainer keeps the derived instance materialized across commits
	// and reads serve from it; maintFP fingerprints the (R, S) pair its
	// program was compiled from; maintErr poisons the fast path after an
	// unrecoverable rebuild (reads fall back to from-scratch).
	incremental bool
	maint       *engine.Maintainer
	maintFP     string
	maintErr    error
	// Live subscriptions (view.go): commits fan their exact view diff
	// out under subMu (always acquired after the write lock, never
	// holding it across a send — sends are non-blocking).
	subMu sync.Mutex
	subs  map[uint64]*Subscription
	subID uint64
}

// publish freezes the state's extensional facts and installs it as the
// current state. Callers must hold the write lock (or be the sole owner,
// as in Open/Load).
func (db *Database) publish(st *module.State) {
	st.E.Freeze()
	db.st = st
}

// Open creates a database over the schema declared in src (domains /
// classes / associations / functions sections; rules and goals are not
// allowed here — apply them as modules).
func Open(src string, options ...Option) (*Database, error) {
	m, err := parser.ParseModule(src)
	if err != nil {
		return nil, err
	}
	if len(m.Rules) > 0 || len(m.Goal) > 0 {
		return nil, fmt.Errorf("logres: Open takes only schema sections; apply rules via Exec")
	}
	if err := m.Schema.Validate(); err != nil {
		return nil, err
	}
	db := &Database{opts: engine.DefaultOptions(), log: storage.NewCommitLog(0)}
	for _, o := range options {
		o(db)
	}
	db.publish(module.NewState(m.Schema))
	if err := db.maintInit(); err != nil {
		return nil, err
	}
	return db, nil
}

// ParseModule parses a module without applying it.
func ParseModule(src string) (*Module, error) {
	m, err := parser.ParseModule(src)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Result is the outcome of a module application.
type Result struct {
	// Answer holds the goal bindings for data-invariant modes with a
	// goal; nil otherwise.
	Answer *Answer
	// Mode is the mode the module was applied with.
	Mode Mode
}

// Exec parses and applies a module with its declared mode (RIDI when none
// is declared). On success the database state advances; on rejection
// (inconsistent result, §4.1) or any abort (budget, cancellation, panic)
// the state is unchanged and the error describes the violation. Per-call
// options (WithCallBudget) tighten the database-wide guardrails for this
// invocation only.
func (db *Database) Exec(src string, options ...CallOption) (*Result, error) {
	return db.ExecContext(db.ctx(), src, options...)
}

// ExecContext is Exec under an explicit cancellation context: canceling
// aborts the in-flight evaluation with a *CanceledError and the database
// state stays bit-identical to its pre-application snapshot.
func (db *Database) ExecContext(ctx context.Context, src string, options ...CallOption) (*Result, error) {
	m, err := parser.ParseModule(src)
	if err != nil {
		return nil, err
	}
	return db.ApplyContext(ctx, m, m.Mode, options...)
}

// Apply applies a parsed module with an explicit mode.
func (db *Database) Apply(m *Module, mode Mode, options ...CallOption) (*Result, error) {
	return db.ApplyContext(db.ctx(), m, mode, options...)
}

// ApplyContext is Apply under an explicit cancellation context.
func (db *Database) ApplyContext(ctx context.Context, m *Module, mode Mode, options ...CallOption) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	opts := applyCallOptions(db.opts, options)
	opts.Ctx = ctx
	finish := instrumentCall(ctx, &opts, options)
	defer finish()
	if db.maintDeferUsable() && module.CanDeferValidation(db.st, m, mode) {
		// Deferred validation (view.go): skip the from-scratch instance
		// computation inside Apply and audit the incrementally maintained
		// instance at commit time instead.
		res, err := module.ApplyDeferred(db.st, m, mode, opts)
		if err != nil {
			return nil, err
		}
		if err := db.commitSerialStaged(opts, res.State); err != nil {
			return nil, err
		}
		return &Result{Answer: res.Answer, Mode: mode}, nil
	}
	res, err := module.Apply(db.st, m, mode, opts)
	if err != nil {
		return nil, err
	}
	if err := db.commitSerial(opts.Tracer, res.State); err != nil {
		return nil, err
	}
	return &Result{Answer: res.Answer, Mode: mode}, nil
}

// commitSerial publishes a state produced under the write lock by a
// serial application and records the commit. Serial paths carry no
// footprint analysis, so the recorded write set is universal — any
// optimistic application in flight across this commit conservatively
// conflicts and retries. Read-only applications (RIDI returns the input
// state unchanged) record nothing. On a durable database the commit is
// WAL-logged (as a whole-state replacement) before it is published; a
// logging failure fails the commit and leaves the state untouched.
// Callers hold the write lock; t is the committing call's tracer (for
// WAL attribution — pass db.opts.Tracer when no per-call tracer
// exists).
func (db *Database) commitSerial(t Tracer, next *module.State) error {
	if next == db.st {
		return nil
	}
	if err := db.walAppendReplace(t, db.log.Epoch()+1, next); err != nil {
		return err
	}
	prev := db.st
	db.publish(next)
	db.log.Record(engine.Footprint{Universal: true})
	db.maybeCompact()
	db.maintAfterReplace(t, prev)
	return nil
}

// Query evaluates a goal (`?- lit, … .`) against the current instance —
// sugar for a RIDI module containing only the goal.
func (db *Database) Query(goalSrc string, options ...CallOption) (*Answer, error) {
	return db.QueryContext(db.ctx(), goalSrc, options...)
}

// QueryContext is Query under an explicit cancellation context.
func (db *Database) QueryContext(ctx context.Context, goalSrc string, options ...CallOption) (*Answer, error) {
	goal, err := parser.ParseGoal(goalSrc)
	if err != nil {
		return nil, err
	}
	m := &ast.Module{Schema: types.NewSchema(), Goal: goal}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if len(options) == 0 {
		// Option-free goals serve straight from the maintained derived
		// set — no per-call budget or profile to honor, and the program
		// is the same one a from-scratch RIDI application would compile.
		if _, _, ok := db.maintRead(); ok {
			return db.maint.Query(goal)
		}
	}
	opts := applyCallOptions(db.opts, options)
	opts.Ctx = ctx
	finish := instrumentCall(ctx, &opts, options)
	defer finish()
	res, err := module.Apply(db.st, m, ast.RIDI, opts)
	if err != nil {
		return nil, err
	}
	return res.Answer, nil
}

// ctx returns the database's configured evaluation context (nil is fine:
// the engine treats it as context.Background()).
func (db *Database) ctx() context.Context { return db.opts.Ctx }

// Instance computes the current database instance I (the persistent rules
// applied to E) and returns its facts.
func (db *Database) Instance() ([]Fact, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	f, _, ok := db.maintRead()
	if !ok {
		var err error
		f, _, err = db.st.Instance(db.opts)
		if err != nil {
			return nil, err
		}
	}
	var out []Fact
	for _, p := range f.Preds() {
		out = append(out, f.Facts(p)...)
	}
	return out, nil
}

// InstanceString renders the current instance deterministically.
func (db *Database) InstanceString() (string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if f, counter, ok := db.maintRead(); ok {
		return engine.ToInstance(f, db.st.S, counter).String(), nil
	}
	_, in, err := db.st.Instance(db.opts)
	if err != nil {
		return "", err
	}
	return in.String(), nil
}

// Count reports the number of facts of a predicate in the current
// instance (derived facts included).
func (db *Database) Count(pred string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	f, _, ok := db.maintRead()
	if !ok {
		var err error
		f, _, err = db.st.Instance(db.opts)
		if err != nil {
			return 0, err
		}
	}
	return f.Size(types.Canon(pred)), nil
}

// EDBCount reports the number of extensional facts of a predicate.
func (db *Database) EDBCount(pred string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.st.E.Size(types.Canon(pred))
}

// RuleCount reports the number of persistent rules.
func (db *Database) RuleCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.st.R)
}

// Materialize makes E coincide with the current instance and clears the
// persistent rules (§4.2, "materializing the instance").
func (db *Database) Materialize() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	st, err := module.Materialize(db.st, db.opts)
	if err != nil {
		return err
	}
	return db.commitSerial(db.opts.Tracer, st)
}

// CheckConsistency verifies Definition 4 and the passive constraints
// against the current instance.
func (db *Database) CheckConsistency() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, _, err := db.st.Instance(db.opts)
	return err
}

// Save writes a snapshot of the database state.
func (db *Database) Save(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return storage.SaveState(w, db.st)
}

// Load reads a snapshot written by Save.
func Load(r io.Reader, options ...Option) (*Database, error) {
	st, err := storage.LoadState(r)
	if err != nil {
		return nil, err
	}
	db := &Database{opts: engine.DefaultOptions(), log: storage.NewCommitLog(0)}
	for _, o := range options {
		o(db)
	}
	db.publish(st)
	if err := db.maintInit(); err != nil {
		return nil, err
	}
	return db, nil
}

// Schema renders the current schema in LOGRES syntax.
func (db *Database) Schema() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.st.S.String()
}

// Register parses a named module and stores it in the database's module
// library without applying it — the paper's §5 "methods and
// encapsulation" direction: a stored module is an encapsulated query or
// update procedure invoked with Call. Snapshots persist the library.
func (db *Database) Register(src string) error {
	m, err := parser.ParseModule(src)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	// Copy-on-write: concurrent applications hold snapshots of db.st and
	// may clone its library outside the lock, so the published state is
	// never mutated in place — a fresh state with a cloned library is
	// built and swapped in. The empty-footprint record bumps the commit
	// epoch so an in-flight whole-state replacement (rule/schema-changing
	// commit) cannot silently drop the registration.
	lib := db.st.Lib
	if lib == nil {
		lib = module.NewLibrary()
	} else {
		lib = lib.Clone()
	}
	if err := lib.Register(m); err != nil {
		return err
	}
	if err := db.walAppendRegister(db.log.Epoch()+1, m); err != nil {
		return err
	}
	next := *db.st
	next.Lib = lib
	db.st = &next
	db.log.Record(engine.Footprint{})
	db.maintAfterRegister(db.opts.Tracer)
	return nil
}

// Call applies a registered module by name with its declared mode.
func (db *Database) Call(name string, options ...CallOption) (*Result, error) {
	return db.CallContext(db.ctx(), name, options...)
}

// CallContext is Call under an explicit cancellation context.
func (db *Database) CallContext(ctx context.Context, name string, options ...CallOption) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.st.Lib == nil {
		// Never mutate the published state in place — concurrent
		// snapshot holders may be cloning it outside the lock.
		return nil, fmt.Errorf("module: no module named %q; registered: none", name)
	}
	opts := applyCallOptions(db.opts, options)
	opts.Ctx = ctx
	finish := instrumentCall(ctx, &opts, options)
	defer finish()
	res, err := db.st.Lib.Call(db.st, name, opts)
	if err != nil {
		return nil, err
	}
	m, _ := db.st.Lib.Get(name)
	if err := db.commitSerial(opts.Tracer, res.State); err != nil {
		return nil, err
	}
	return &Result{Answer: res.Answer, Mode: m.Mode}, nil
}

// Modules lists the registered module names.
func (db *Database) Modules() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.st.Lib == nil {
		return nil
	}
	return db.st.Lib.Names()
}

// Explain compiles the persistent rules, evaluates the current instance,
// and renders the program structure (strata, generated constraints,
// invention) together with the run's statistics — the §5 "design,
// debugging, and monitoring" tooling.
func (db *Database) Explain() (string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	prog, err := engine.Compile(db.st.S, db.st.R, db.opts)
	if err != nil {
		return "", err
	}
	counter := db.st.Counter
	if _, err := prog.Run(db.st.E, &counter); err != nil {
		return "", err
	}
	return prog.Explain(), nil
}
