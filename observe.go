package logres

import (
	"context"
	"io"
	"net/http"
	"time"

	"logres/internal/engine"
	"logres/internal/obs"
)

// Observability surface: evaluation tracing, metrics exposition, and
// per-call guardrail overrides — the §5 "design, debugging, and
// monitoring" tooling made production-shaped. A Database with no tracer
// and no metrics registry pays a nil check per would-be event and
// nothing else.

// Tracer receives typed evaluation events: stratum and round
// boundaries with delta sizes, per-round rule firing counts, oid
// inventions, shard-merge timings, budget consumption, and aborts.
// Implementations must be safe for concurrent use and must not block —
// they run inline with evaluation.
type Tracer = obs.Tracer

// TraceEvent is one typed evaluation event.
type TraceEvent = obs.Event

// TraceKind discriminates trace events.
type TraceKind = obs.Kind

// Metrics is a lock-cheap metrics registry: counters, gauges and log₂
// histograms published via expvar and rendered in Prometheus text
// exposition format.
type Metrics = obs.Metrics

// FlightRecorder is a ring-buffer tracer keeping the last N events and
// dumping them on abort — the post-mortem surface for a query nobody
// was tracing.
type FlightRecorder = obs.FlightRecorder

// Stats is the record of what the last evaluation did, including the
// per-round DeltaCurve (deterministic across serial and parallel
// configurations).
type Stats = engine.Stats

// RoundDelta is one point on a Stats delta curve.
type RoundDelta = engine.RoundDelta

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// NewJSONLTracer returns a tracer writing one JSON object per event to
// w, stamped with arrival timestamps.
func NewJSONLTracer(w io.Writer) *obs.JSONL { return obs.NewJSONL(w) }

// NewCanonicalJSONLTracer is NewJSONLTracer in canonical mode:
// timestamps, durations, and configuration-dependent fields are
// stripped and nondeterministic kinds skipped, so the stream for a
// fixed program is byte-identical across workers × shards
// configurations.
func NewCanonicalJSONLTracer(w io.Writer) *obs.JSONL { return obs.NewCanonicalJSONL(w) }

// NewTextTracer returns a tracer writing human-readable one-line
// renderings of each event to w.
func NewTextTracer(w io.Writer) *obs.Text { return obs.NewText(w) }

// NewFlightRecorder returns a flight recorder holding the last n
// events (n <= 0 selects 256).
func NewFlightRecorder(n int) *FlightRecorder { return obs.NewFlightRecorder(n) }

// MultiTracer fans events out to several tracers (nils are dropped;
// returns nil when none remain).
func MultiTracer(tracers ...Tracer) Tracer { return obs.Multi(tracers...) }

// MetricsHandler returns an http.Handler serving m in Prometheus text
// exposition format, plus /debug/vars and /debug/pprof when mounted
// via the returned mux — see obs.NewServeMux for the full surface.
func MetricsHandler(m *Metrics) http.Handler { return obs.NewServeMux(m) }

// WithTracer attaches a tracer to every evaluation the database runs.
// A nil tracer (the default) keeps the zero-overhead fast path.
func WithTracer(t Tracer) Option {
	return func(db *Database) {
		db.tracer = t
		db.rewireTracer()
	}
}

// WithMetrics attaches a metrics registry: every evaluation updates
// its counters, gauges, and histograms (rounds, firings, invented
// oids, aborts by axis, round/merge durations, fact totals).
func WithMetrics(m *Metrics) Option {
	return func(db *Database) {
		db.metrics = m
		db.rewireTracer()
	}
}

// SetTracer replaces the database's tracer at runtime (nil detaches
// it). Safe for concurrent use; in-flight evaluations keep the tracer
// they started with.
func (db *Database) SetTracer(t Tracer) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tracer = t
	db.rewireTracer()
}

// Metrics returns the database's metrics registry, creating and
// attaching one on first use.
func (db *Database) Metrics() *Metrics {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.metrics == nil {
		db.metrics = obs.NewMetrics()
		db.rewireTracer()
	}
	return db.metrics
}

// rewireTracer recomputes the effective tracer the engine sees: the
// user tracer and the metrics adapter fanned together, or nil when
// neither is attached (the zero-overhead path). Callers hold the write
// lock or are the sole owner (Open/Load options).
func (db *Database) rewireTracer() {
	db.opts.Tracer = obs.Multi(db.tracer, db.metricsTracer())
	if db.store != nil {
		db.store.SetTracer(db.opts.Tracer)
	}
}

func (db *Database) metricsTracer() Tracer {
	if db.metrics == nil {
		return nil
	}
	return db.metrics.Tracer()
}

// Profile is the EXPLAIN-ANALYZE-style account of one call: per-stratum
// wall time, rule firings and delta curve, vectorized-vs-row dispatch
// with kernel breakdowns, optimistic retry count with conflict
// footprints, and WAL append/fsync waits. Request WithCallProfile, or
// the server's ?profile=1 / ExecRequest.Profile over the wire.
type Profile = obs.Profile

// StratumProfile, KernelProfile, and ConflictProfile are the component
// records of a Profile.
type (
	StratumProfile  = obs.StratumProfile
	KernelProfile   = obs.KernelProfile
	ConflictProfile = obs.ConflictProfile
)

// CallOption adjusts one Exec/Query/Apply/Call invocation without
// touching the database-wide configuration.
type CallOption func(*callOpts)

type callOpts struct {
	budget Budget
	// maxRetries overrides (not tightens) the retry bound: negative
	// disables retries, which Tighten cannot express.
	maxRetries int
	// profile is the WithCallProfile destination; non-nil arms a
	// per-call profile collector.
	profile *Profile
}

// WithCallBudget tightens the database-wide budget for one call: each
// armed axis of b replaces the database's bound only when stricter (a
// call can narrow what the database allows, never widen it). Aborts
// surface as the usual typed *BudgetError.
func WithCallBudget(b Budget) CallOption {
	return func(c *callOpts) { c.budget = b }
}

// WithCallMaxRetries overrides the conflict retry bound of one
// concurrent application (ApplyConcurrent / ExecConcurrent): n > 0 sets
// the bound, n < 0 disables retries so the first conflict surfaces the
// *ConflictError, n == 0 inherits the database's setting. Unlike
// WithCallBudget this is an override, not a tightening — a per-request
// "fail fast" needs to express the negative case.
func WithCallMaxRetries(n int) CallOption {
	return func(c *callOpts) { c.maxRetries = n }
}

// WithCallProfile arms profile collection for one call and copies the
// assembled Profile into dst before the call returns (on error paths
// dst holds whatever was collected up to the failure, including the
// abort cause). Profiling fans a collector into the call's tracer, so
// calls without it keep the nil-tracer fast path.
func WithCallProfile(dst *Profile) CallOption {
	return func(c *callOpts) { c.profile = dst }
}

// applyCallOptions folds per-call options into a copy of the engine
// options. The rounds axis also lowers MaxSteps, which backs the
// always-on round bound.
func applyCallOptions(opts engine.Options, cos []CallOption) engine.Options {
	if len(cos) == 0 {
		return opts
	}
	var c callOpts
	for _, o := range cos {
		o(&c)
	}
	opts.Budget = opts.Budget.Tighten(c.budget)
	if n := c.budget.MaxRounds; n > 0 && (opts.MaxSteps == 0 || n < opts.MaxSteps) {
		opts.MaxSteps = n
	}
	if c.maxRetries != 0 {
		opts.Budget.MaxRetries = c.maxRetries
	}
	return opts
}

// callProfileDst extracts the WithCallProfile destination from a call's
// options (nil when profiling was not requested).
func callProfileDst(cos []CallOption) *Profile {
	var c callOpts
	for _, o := range cos {
		o(&c)
	}
	return c.profile
}

// instrumentCall fans request-scoped observability into one call's
// resolved engine options: the context's span (stamping every event the
// call emits — eval rounds, vec kernels, conflict retries, WAL
// append/fsync waits — with the originating request id) and a profile
// collector when WithCallProfile asked for one. Returns a finish func
// the call must run before returning (defer it; it finalizes the
// profile). With no span in the context and no profile request, both
// the options and the finish func are no-ops — the nil-tracer fast
// path and the canonical trace stream are untouched.
func instrumentCall(ctx context.Context, opts *engine.Options, cos []CallOption) func() {
	var span *obs.Span
	if ctx != nil {
		span = obs.SpanFromContext(ctx)
	}
	dst := callProfileDst(cos)
	if span == nil && dst == nil {
		return func() {}
	}
	var col *obs.ProfileCollector
	if dst != nil {
		col = obs.NewProfileCollector()
	}
	start := time.Now()
	tr := opts.Tracer
	if col != nil {
		tr = obs.Multi(tr, col)
	}
	if span != nil {
		tr = span.Instrument(tr)
	}
	opts.Tracer = tr
	return func() {
		if col == nil {
			return
		}
		p := col.Profile(time.Since(start))
		if span != nil {
			p.RequestID, p.TraceID = span.RequestID, span.TraceID
		}
		*dst = *p
	}
}
