package logres

import (
	"bytes"
	"context"
	"testing"

	"logres/internal/obs"
	"logres/internal/parser"
)

// Per-call profiling through the public API: WithCallProfile fills an
// EXPLAIN-ANALYZE-style account of the call, and neither profiling nor
// request spans may perturb the canonical (deterministic) trace stream.

// TestWithCallProfileApply: a concurrent apply fills the profile with
// the committed attempt's strata, rounds, and commit path.
func TestWithCallProfileApply(t *testing.T) {
	db, err := Open(obsSchema)
	if err != nil {
		t.Fatal(err)
	}
	m, err := parser.ParseModule(obsModule)
	if err != nil {
		t.Fatal(err)
	}

	var p Profile
	if _, err := db.ApplyConcurrent(m, m.Mode, WithCallProfile(&p)); err != nil {
		t.Fatal(err)
	}
	if p.WallNS <= 0 || p.EvalNS <= 0 {
		t.Fatalf("profile wall/eval = %d/%d, want > 0", p.WallNS, p.EvalNS)
	}
	if p.Rounds == 0 || p.Facts == 0 || len(p.Strata) == 0 {
		t.Fatalf("profile rounds/facts/strata = %d/%d/%d", p.Rounds, p.Facts, len(p.Strata))
	}
	if p.CommitPath == "" {
		t.Fatal("profile commit path empty")
	}
	// The transitive closure needs several rounds; its delta curve must
	// end at the fixpoint.
	var rounds int
	for _, st := range p.Strata {
		rounds += st.Rounds
		if st.Mode == "" {
			t.Fatalf("stratum %d has no mode", st.Stratum)
		}
	}
	if rounds != p.Rounds {
		t.Fatalf("stratum rounds sum %d != profile rounds %d", rounds, p.Rounds)
	}
}

// TestWithCallProfileQuery: queries profile too (read-only, no commit).
func TestWithCallProfileQuery(t *testing.T) {
	db, err := Open(obsSchema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(obsModule); err != nil {
		t.Fatal(err)
	}
	var p Profile
	ans, err := db.Query("?- tc(src: 1, dst: X).", WithCallProfile(&p))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(ans.Rows))
	}
	if p.Rounds == 0 || len(p.Strata) == 0 {
		t.Fatalf("query profile rounds/strata = %d/%d", p.Rounds, len(p.Strata))
	}
	if p.Retries != 0 || p.WALAppends != 0 {
		t.Fatalf("query profile carries write-side work: %+v", p)
	}
}

// TestProfilingPreservesCanonicalTrace: the acceptance criterion's
// determinism half — running the same module with profiling and a
// request span produces a canonical JSONL stream byte-identical to an
// unprofiled, span-free run.
func TestProfilingPreservesCanonicalTrace(t *testing.T) {
	run := func(profile bool) []byte {
		var buf bytes.Buffer
		db, err := Open(obsSchema, WithTracer(obs.NewCanonicalJSONL(&buf)))
		if err != nil {
			t.Fatal(err)
		}
		m, err := parser.ParseModule(obsModule)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		var opts []CallOption
		if profile {
			span := obs.NewSpan("req-determinism", "trace", "parent")
			span.EnableProfile()
			ctx = obs.ContextWithSpan(ctx, span)
			var p Profile
			opts = append(opts, WithCallProfile(&p))
		}
		if _, err := db.ApplyConcurrentContext(ctx, m, m.Mode, opts...); err != nil {
			t.Fatal(err)
		}
		if _, err := db.QueryContext(ctx, "?- tc(src: 1, dst: X).", opts...); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	plain := run(false)
	profiled := run(true)
	if len(plain) == 0 {
		t.Fatal("canonical trace empty")
	}
	if !bytes.Equal(plain, profiled) {
		t.Fatalf("canonical trace drifted under profiling:\n--- plain ---\n%s--- profiled ---\n%s", plain, profiled)
	}
}

// TestNoSpanNoProfileFastPath: without a span or profile request the
// call options resolve to the exact tracer configured on the database —
// instrumentCall must not wrap anything.
func TestNoSpanNoProfileFastPath(t *testing.T) {
	db, err := Open(obsSchema)
	if err != nil {
		t.Fatal(err)
	}
	var eopts = db.opts
	finish := instrumentCall(context.Background(), &eopts, nil)
	finish()
	if eopts.Tracer != db.opts.Tracer {
		t.Fatal("instrumentCall wrapped the tracer with no span and no profile")
	}
}
