package logres

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"logres/internal/obs"
)

// Observability tests through the public API: tracer and metrics
// attachment, runtime rewiring, the HTTP exposition surface, and
// per-call budget overrides.

const obsSchema = `
associations
  EDGE = (src: integer, dst: integer);
  TC = (src: integer, dst: integer);
`

const obsModule = `
mode radi.
rules
  edge(src: 1, dst: 2).
  edge(src: 2, dst: 3).
  edge(src: 3, dst: 4).
  tc(src: X, dst: Y) <- edge(src: X, dst: Y).
  tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
end.
`

type recordingTracer struct {
	mu     sync.Mutex
	events []TraceEvent
}

func (r *recordingTracer) Event(ev TraceEvent) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

func (r *recordingTracer) count(kind TraceKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ev := range r.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

func TestWithTracerSeesModuleAndRoundEvents(t *testing.T) {
	rt := &recordingTracer{}
	db, err := Open(obsSchema, WithTracer(rt))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(obsModule); err != nil {
		t.Fatal(err)
	}
	if n, err := db.Count("tc"); err != nil || n != 6 {
		t.Fatalf("tc count = %d (%v), want 6", n, err)
	}
	for _, kind := range []TraceKind{obs.KindModuleBegin, obs.KindModuleEnd,
		obs.KindEvalBegin, obs.KindRoundEnd, obs.KindRuleFire, obs.KindEvalEnd} {
		if rt.count(kind) == 0 {
			t.Fatalf("no %s events recorded", kind)
		}
	}
}

func TestSetTracerRewiresAtRuntime(t *testing.T) {
	db, err := Open(obsSchema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(obsModule); err != nil {
		t.Fatal(err)
	}
	rt := &recordingTracer{}
	db.SetTracer(rt)
	if _, err := db.Query(`?- tc(src: 1, dst: X).`); err != nil {
		t.Fatal(err)
	}
	if rt.count(obs.KindEvalEnd) == 0 {
		t.Fatal("attached tracer saw no evaluation")
	}
	before := rt.count(obs.KindEvalEnd)
	db.SetTracer(nil)
	if _, err := db.Query(`?- tc(src: 1, dst: X).`); err != nil {
		t.Fatal(err)
	}
	if rt.count(obs.KindEvalEnd) != before {
		t.Fatal("detached tracer still receiving events")
	}
}

func TestWithMetricsAndHandler(t *testing.T) {
	m := NewMetrics()
	db, err := Open(obsSchema, WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(obsModule); err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("logres_rounds_total").Value(); got == 0 {
		t.Fatal("metrics saw no rounds")
	}
	if got := m.Counter("logres_modules_applied_total").Value(); got == 0 {
		t.Fatal("metrics saw no module application")
	}

	mux := MetricsHandler(m)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics code = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"# TYPE logres_rounds_total counter", "logres_rule_firings_total"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestDatabaseMetricsLazyAttach(t *testing.T) {
	db, err := Open(obsSchema)
	if err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m == nil {
		t.Fatal("Metrics() = nil")
	}
	if db.Metrics() != m {
		t.Fatal("Metrics() not idempotent")
	}
	if _, err := db.Exec(obsModule); err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("logres_rounds_total").Value(); got == 0 {
		t.Fatal("lazily attached metrics saw no rounds")
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "logres_evals_total") {
		t.Fatalf("WriteTo missing eval counter:\n%s", buf.String())
	}
}

// A per-call budget must tighten the database-wide one for that call
// only: the divergent module aborts under the call budget, and a
// following unrestricted call still honours the (loose) database
// budget.
func TestPerCallBudgetOverride(t *testing.T) {
	db := openGuarded(t, WithBudget(Budget{MaxFacts: 1 << 20}))
	before := snapshot(t, db)

	_, err := db.Exec(divergentModule, WithCallBudget(Budget{MaxFacts: 50}))
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v (%T), want *BudgetError", err, err)
	}
	if be.Axis != AxisFacts {
		t.Fatalf("axis = %q, want %q", be.Axis, AxisFacts)
	}
	if !bytes.Equal(before, snapshot(t, db)) {
		t.Fatal("aborted call mutated the database")
	}

	// The override must not stick: a plain query still runs.
	if _, err := db.Query(`?- seed(k: X).`); err != nil {
		t.Fatalf("query after per-call abort: %v", err)
	}

	// A per-call rounds budget tightens MaxSteps as well.
	_, err = db.Exec(divergentModule, WithCallBudget(Budget{MaxRounds: 10}))
	if !errors.As(err, &be) || be.Axis != AxisRounds {
		t.Fatalf("err = %v, want rounds *BudgetError", err)
	}
}

// A per-call budget can only narrow the database budget, never widen it.
func TestPerCallBudgetCannotWiden(t *testing.T) {
	db := openGuarded(t, WithBudget(Budget{MaxFacts: 30}))
	_, err := db.Exec(divergentModule, WithCallBudget(Budget{MaxFacts: 1 << 20}))
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v (%T), want *BudgetError", err, err)
	}
	if be.Axis != AxisFacts || be.Limit != 30 {
		t.Fatalf("axis = %q limit = %d, want facts/30", be.Axis, be.Limit)
	}
}
