package logres

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// Top-level differential property for incremental view maintenance: a
// database opened with WithIncremental must, after every commit of a
// mixed workload (serial and optimistic applications, insertions and
// RDDV deletions), render exactly the instance a from-scratch database
// renders, and persist exactly the same Save bytes — for every workers
// × shards × vectorize combination, over program classes covering
// counting, recursive closure (DRed), stratified negation (suffix
// recomputation), and oid-inventing fallback strata.

const ivmMatrixSchema = `
classes
  MARK = (tag: integer);
associations
  NODE = (n: integer);
  EDGE = (src: integer, dst: integer);
  TC = (src: integer, dst: integer);
  SAME = (a: integer, b: integer);
  UNREACH = (a: integer, b: integer);
`

var ivmMatrixPrograms = []struct {
	name  string
	rules string
}{
	{"counting", `
mode radv.
rules
  same(a: X, b: Y) <- edge(src: X, dst: Y), edge(src: Y, dst: X).
  same(a: X, b: X) <- node(n: X).
end.
`},
	{"closure", `
mode radv.
rules
  tc(src: X, dst: Y) <- edge(src: X, dst: Y).
  tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
end.
`},
	{"negation", `
mode radv.
rules
  tc(src: X, dst: Y) <- edge(src: X, dst: Y).
  tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
  unreach(a: X, b: Y) <- node(n: X), node(n: Y), not tc(src: X, dst: Y).
end.
`},
	{"mixed-fallback", `
mode radv.
rules
  tc(src: X, dst: Y) <- edge(src: X, dst: Y).
  tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
  mark(tag: X) <- node(n: X), not tc(src: X, dst: X).
end.
`},
}

// ivmMatrixCommits is the shared commit script: a base graph, then
// insertions and deletions through both the serial and the optimistic
// commit paths (the rddv modules subtract edge facts from E; the
// persistent rules are untouched, so these exercise delta propagation
// and DRed rederivation rather than a rebuild).
func ivmMatrixCommits() []struct {
	src        string
	concurrent bool
} {
	var base strings.Builder
	base.WriteString("mode ridv.\nrules\n")
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&base, "  edge(src: %d, dst: %d).\n", i, i+1)
		fmt.Fprintf(&base, "  node(n: %d).\n", i)
	}
	base.WriteString("  edge(src: 10, dst: 0).\nend.\n")
	return []struct {
		src        string
		concurrent bool
	}{
		{base.String(), false},
		{"mode ridv.\nrules\n  edge(src: 3, dst: 7).\n  edge(src: 7, dst: 2).\nend.\n", true},
		{"mode rddv.\nrules\n  edge(src: 4, dst: 5).\nend.\n", true},
		{"mode ridv.\nrules\n  edge(src: 5, dst: 4).\n  node(n: 11).\nend.\n", false},
		{"mode rddv.\nrules\n  edge(src: 10, dst: 0).\n  edge(src: 0, dst: 1).\nend.\n", true},
		{"mode ridv.\nrules\n  edge(src: 0, dst: 1).\nend.\n", true},
		{"mode rddv.\nrules\n  node(n: 11).\n  edge(src: 3, dst: 7).\nend.\n", false},
	}
}

// ivmOracleRun replays the script on a plain (from-scratch) database
// and records the instance rendering after every commit plus the final
// Save bytes.
func ivmOracleRun(t *testing.T, rules string) (instances []string, save string) {
	t.Helper()
	db, err := Open(ivmMatrixSchema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(rules); err != nil {
		t.Fatal(err)
	}
	for _, c := range ivmMatrixCommits() {
		if _, err := db.Exec(c.src); err != nil {
			t.Fatal(err)
		}
		in, err := db.InstanceString()
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, in)
	}
	var sb strings.Builder
	if err := db.Save(&sb2{&sb}); err != nil {
		t.Fatal(err)
	}
	return instances, sb.String()
}

func TestIncrementalSaveBytesMatrix(t *testing.T) {
	for _, prog := range ivmMatrixPrograms {
		prog := prog
		t.Run(prog.name, func(t *testing.T) {
			wantInstances, wantSave := ivmOracleRun(t, prog.rules)
			if !strings.Contains(wantInstances[0], "(") {
				t.Fatal("oracle derived nothing")
			}
			for _, workers := range []int{1, 4} {
				for _, shards := range []int{1, 4} {
					for _, vec := range []bool{false, true} {
						db, err := Open(ivmMatrixSchema, WithIncremental(true),
							WithWorkers(workers), WithShards(shards), WithVectorize(vec))
						if err != nil {
							t.Fatal(err)
						}
						if _, err := db.Exec(prog.rules); err != nil {
							t.Fatal(err)
						}
						for i, c := range ivmMatrixCommits() {
							if c.concurrent {
								_, err = db.ExecConcurrent(c.src)
							} else {
								_, err = db.Exec(c.src)
							}
							if err != nil {
								t.Fatal(err)
							}
							got, err := db.InstanceString()
							if err != nil {
								t.Fatal(err)
							}
							if got != wantInstances[i] {
								t.Fatalf("workers=%d shards=%d vectorize=%v commit %d: incremental instance diverges from scratch",
									workers, shards, vec, i)
							}
						}
						var sb strings.Builder
						if err := db.Save(&sb2{&sb}); err != nil {
							t.Fatal(err)
						}
						if sb.String() != wantSave {
							t.Fatalf("workers=%d shards=%d vectorize=%v: Save bytes diverge from scratch",
								workers, shards, vec)
						}
					}
				}
			}
		})
	}
}

// TestSubscribeViewDiffs pins the subscription contract on a single
// writer: one diff per state-changing commit epoch, in order, carrying
// the exact fact-level change; predicate filters narrow the payload but
// never the epoch sequence; Close ends the stream with a nil Err.
func TestSubscribeViewDiffs(t *testing.T) {
	db, err := Open(ivmMatrixSchema, WithIncremental(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(ivmMatrixPrograms[1].rules); err != nil { // closure
		t.Fatal(err)
	}
	sub, err := db.SubscribeView(SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tcOnly, err := db.SubscribeView(SubscribeOptions{Preds: []string{"tc"}})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Epoch != db.CommitEpoch() {
		t.Fatalf("subscription epoch %d, want %d", sub.Epoch, db.CommitEpoch())
	}
	if _, err := db.ExecConcurrent("mode ridv.\nrules\n  edge(src: 1, dst: 2).\n  edge(src: 2, dst: 3).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecConcurrent("mode rddv.\nrules\n  edge(src: 1, dst: 2).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	d1 := <-sub.C
	if d1.Epoch != sub.Epoch+1 {
		t.Fatalf("first diff epoch %d, want %d", d1.Epoch, sub.Epoch+1)
	}
	// edge(1,2), edge(2,3) plus tc over them: 2 base + 3 closure adds.
	if len(d1.Adds) != 5 || len(d1.Removes) != 0 {
		t.Fatalf("first diff: %d adds / %d removes, want 5/0", len(d1.Adds), len(d1.Removes))
	}
	d2 := <-sub.C
	if d2.Epoch != sub.Epoch+2 {
		t.Fatalf("second diff epoch %d, want %d", d2.Epoch, sub.Epoch+2)
	}
	// Deleting edge(1,2) retracts it and tc(1,2), tc(1,3).
	if len(d2.Adds) != 0 || len(d2.Removes) != 3 {
		t.Fatalf("second diff: %d adds / %d removes, want 0/3", len(d2.Adds), len(d2.Removes))
	}
	f1 := <-tcOnly.C
	if len(f1.Adds) != 3 {
		t.Fatalf("filtered first diff: %d adds, want 3 tc facts", len(f1.Adds))
	}
	for _, f := range f1.Adds {
		if f.Pred != "tc" {
			t.Fatalf("filtered diff leaked predicate %q", f.Pred)
		}
	}
	sub.Close()
	if _, ok := <-sub.C; ok && func() bool { _, ok2 := <-sub.C; return ok2 }() {
		t.Fatal("closed subscription kept delivering")
	}
	if sub.Err() != nil {
		t.Fatalf("closed subscription err = %v, want nil", sub.Err())
	}
	tcOnly.Close()
	if db.Subscribers() != 0 {
		t.Fatalf("%d subscribers after close, want 0", db.Subscribers())
	}
}

// TestSubscribeRequiresIncremental pins the typed rejection.
func TestSubscribeRequiresIncremental(t *testing.T) {
	db, err := Open(ivmMatrixSchema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.SubscribeView(SubscribeOptions{}); !errors.Is(err, ErrNotIncremental) {
		t.Fatalf("err = %v, want ErrNotIncremental", err)
	}
}

// TestSlowConsumerDisconnect pins the backpressure contract: a
// subscriber whose buffer is full when a commit fans out is detached
// with a typed *SlowConsumerError and its channel closes; commits are
// never blocked.
func TestSlowConsumerDisconnect(t *testing.T) {
	db, err := Open(ivmMatrixSchema, WithIncremental(true))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := db.SubscribeView(SubscribeOptions{Buffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Three commits against a buffer of two, with nobody receiving: the
	// third fan-out must disconnect the subscriber.
	for i := 0; i < 3; i++ {
		src := fmt.Sprintf("mode ridv.\nrules\n  node(n: %d).\nend.\n", i)
		if _, err := db.ExecConcurrent(src); err != nil {
			t.Fatal(err)
		}
	}
	var got []ViewDiff
	for d := range sub.C {
		got = append(got, d)
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d diffs before disconnect, want 2", len(got))
	}
	var slow *SlowConsumerError
	if !errors.As(sub.Err(), &slow) {
		t.Fatalf("err = %v, want *SlowConsumerError", sub.Err())
	}
	if slow.Buffer != 2 {
		t.Fatalf("SlowConsumerError.Buffer = %d, want 2", slow.Buffer)
	}
	if db.Subscribers() != 0 {
		t.Fatalf("%d subscribers after disconnect, want 0", db.Subscribers())
	}
}

// TestIncrementalRuleChangeRebuild pins the fingerprint fallback: a
// rule-changing commit (RADV) rebuilds the maintenance state and still
// delivers the exact diff to subscribers.
func TestIncrementalRuleChangeRebuild(t *testing.T) {
	db, err := Open(ivmMatrixSchema, WithIncremental(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("mode ridv.\nrules\n  edge(src: 1, dst: 2).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	sub, err := db.SubscribeView(SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(ivmMatrixPrograms[1].rules); err != nil { // install closure rules
		t.Fatal(err)
	}
	d := <-sub.C
	if len(d.Adds) != 1 || d.Adds[0].Pred != "tc" {
		t.Fatalf("rebuild diff = %d adds (%v), want the single tc fact", len(d.Adds), d.Adds)
	}
	got, err := db.InstanceString()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Open(ivmMatrixSchema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Exec("mode ridv.\nrules\n  edge(src: 1, dst: 2).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Exec(ivmMatrixPrograms[1].rules); err != nil {
		t.Fatal(err)
	}
	want, err := plain.InstanceString()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("instance after rule-change rebuild diverges from scratch")
	}
}

// TestIncrementalQueryAndRegister covers the remaining commit shapes:
// option-free queries serve from the maintained set, and a module
// registration (which bumps the epoch without touching the instance)
// delivers its empty per-epoch diff.
func TestIncrementalQueryAndRegister(t *testing.T) {
	db, err := Open(ivmMatrixSchema, WithIncremental(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(ivmMatrixPrograms[1].rules); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("mode ridv.\nrules\n  edge(src: 1, dst: 2).\n  edge(src: 2, dst: 3).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	ans, err := db.Query(`?- tc(src: 1, dst: X).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 2 {
		t.Fatalf("query over maintained set: %d rows, want 2", len(ans.Rows))
	}
	sub, err := db.SubscribeView(SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register("module m1.\nrules\ngoal\n  ?- tc(src: X, dst: Y).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	d := <-sub.C
	if len(d.Adds) != 0 || len(d.Removes) != 0 {
		t.Fatalf("registration diff not empty: %d adds / %d removes", len(d.Adds), len(d.Removes))
	}
	if d.Epoch != sub.Epoch+1 {
		t.Fatalf("registration diff epoch %d, want %d", d.Epoch, sub.Epoch+1)
	}
}
