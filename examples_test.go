package logres

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example main and checks a signature line
// of its output, keeping the examples working end to end.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run the go tool")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"./examples/quickstart", `grandchildren of nonna`},
		{"./examples/football", `wins:`},
		{"./examples/university", `interesting pair: employee "smith"`},
		{"./examples/genealogy", `"ugo" -> {"luca", "nina", "sara"}`},
		{"./examples/updates", `p(4, 5)`},
		{"./examples/powerset", `16 subsets`},
		{"./examples/library", `after restore, methods: [seed_accounts audit report]`},
		{"./examples/registrar", `double-mark update rejected: true`},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", c.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", c.dir, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("output of %s missing %q:\n%s", c.dir, c.want, out)
			}
		})
	}
}
