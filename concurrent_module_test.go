package logres

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"logres/internal/engine"
	"logres/internal/hooks"
)

// ---------------------------------------------------------------------------
// Property test: concurrent application of disjoint modules is equivalent to
// serial application in either order (bit-identical Save output), across
// workers × shards configurations; conflicting modules serialize to one of
// the two serial orders.
// ---------------------------------------------------------------------------

const concurrentSchema = `
associations
  P0 = (x: integer);
  P1 = (x: integer);
  P2 = (x: integer);
  P3 = (x: integer);
  P4 = (x: integer);
  P5 = (x: integer);
`

// randModule builds a random data-variant module confined to the given
// predicate pool: a handful of facts plus, sometimes, a copy rule between
// two pool predicates.
func randModule(rng *rand.Rand, pool []string) string {
	var b strings.Builder
	b.WriteString("mode ridv.\nrules\n")
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		fmt.Fprintf(&b, "  %s(x: %d).\n", pool[rng.Intn(len(pool))], rng.Intn(50))
	}
	if len(pool) > 1 && rng.Intn(2) == 0 {
		from := rng.Intn(len(pool))
		to := (from + 1 + rng.Intn(len(pool)-1)) % len(pool)
		fmt.Fprintf(&b, "  %s(x: X) <- %s(x: X).\n", pool[to], pool[from])
	}
	b.WriteString("end.\n")
	return b.String()
}

func saveBytes(t *testing.T, db *Database) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// serialState opens a fresh database and applies the modules in order with
// the plain (write-locked) path, returning the Save snapshot.
func serialState(t *testing.T, opts []Option, mods ...string) []byte {
	t.Helper()
	db, err := Open(concurrentSchema, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mods {
		if _, err := db.Exec(m); err != nil {
			t.Fatal(err)
		}
	}
	return saveBytes(t, db)
}

// concurrentState opens a fresh database and applies the two modules from
// two goroutines via the optimistic path, returning the Save snapshot and
// the metrics registry for conflict accounting.
func concurrentState(t *testing.T, opts []Option, a, b string) ([]byte, *Metrics) {
	t.Helper()
	m := NewMetrics()
	db, err := Open(concurrentSchema, append([]Option{WithMetrics(m)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, src := range []string{a, b} {
		wg.Add(1)
		go func(src string) {
			defer wg.Done()
			if _, err := db.ExecConcurrent(src); err != nil {
				errs <- err
			}
		}(src)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	return saveBytes(t, db), m
}

func TestConcurrentDisjointEquivalentToSerial(t *testing.T) {
	preds := []string{"p0", "p1", "p2", "p3", "p4", "p5"}
	for _, workers := range []int{1, 4} {
		for _, shards := range []int{1, 4} {
			opts := []Option{WithWorkers(workers), WithShards(shards)}
			rng := rand.New(rand.NewSource(int64(97*workers + shards)))
			for trial := 0; trial < 5; trial++ {
				// Split the predicates into two disjoint pools.
				perm := rng.Perm(len(preds))
				var poolA, poolB []string
				for i, p := range perm {
					if i < 3 {
						poolA = append(poolA, preds[p])
					} else {
						poolB = append(poolB, preds[p])
					}
				}
				a, b := randModule(rng, poolA), randModule(rng, poolB)

				ab := serialState(t, opts, a, b)
				ba := serialState(t, opts, b, a)
				if !bytes.Equal(ab, ba) {
					t.Fatalf("w=%d s=%d trial %d: disjoint serial orders differ\nA:\n%s\nB:\n%s",
						workers, shards, trial, a, b)
				}
				got, m := concurrentState(t, opts, a, b)
				if !bytes.Equal(got, ab) {
					t.Fatalf("w=%d s=%d trial %d: concurrent state differs from serial\nA:\n%s\nB:\n%s",
						workers, shards, trial, a, b)
				}
				// Disjoint footprints must commit without a single conflict.
				if n := m.Counter("logres_module_conflicts_total").Value(); n != 0 {
					t.Fatalf("w=%d s=%d trial %d: %d conflicts on disjoint modules\nA:\n%s\nB:\n%s",
						workers, shards, trial, n, a, b)
				}
			}
		}
	}
}

func TestConcurrentConflictingSerializes(t *testing.T) {
	preds := []string{"p0", "p1", "p2", "p3", "p4", "p5"}
	for _, workers := range []int{1, 4} {
		for _, shards := range []int{1, 4} {
			opts := []Option{WithWorkers(workers), WithShards(shards)}
			rng := rand.New(rand.NewSource(int64(31*workers + shards)))
			for trial := 0; trial < 5; trial++ {
				// Overlapping pools: both modules may read and write the
				// two shared predicates.
				perm := rng.Perm(len(preds))
				shared := []string{preds[perm[0]], preds[perm[1]]}
				poolA := append([]string{preds[perm[2]], preds[perm[3]]}, shared...)
				poolB := append([]string{preds[perm[4]], preds[perm[5]]}, shared...)
				a, b := randModule(rng, poolA), randModule(rng, poolB)

				ab := serialState(t, opts, a, b)
				ba := serialState(t, opts, b, a)
				got, _ := concurrentState(t, opts, a, b)
				if !bytes.Equal(got, ab) && !bytes.Equal(got, ba) {
					t.Fatalf("w=%d s=%d trial %d: concurrent state matches neither serial order\nA:\n%s\nB:\n%s",
						workers, shards, trial, a, b)
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Conflict and retry mechanics.
// ---------------------------------------------------------------------------

// TestConflictRetrySucceeds forces exactly one conflict by committing a
// serial write in the first attempt's validation window, then lets the
// retry land.
func TestConflictRetrySucceeds(t *testing.T) {
	m := NewMetrics()
	db, err := Open(concurrentSchema, WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	hooks.ConcurrentPreCommit = func(attempt int) {
		if attempt == 0 {
			if _, err := db.Exec(`
mode ridv.
rules p0(x: 99).
end.
`); err != nil {
				t.Error(err)
			}
		}
	}
	defer func() { hooks.ConcurrentPreCommit = nil }()

	if _, err := db.ExecConcurrent(`
mode ridv.
rules p1(x: 1).
end.
`); err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if n := db.EDBCount("p1"); n != 1 {
		t.Fatalf("p1 count = %d", n)
	}
	if n := db.EDBCount("p0"); n != 1 {
		t.Fatalf("serial write lost: p0 count = %d", n)
	}
	if n := m.Counter("logres_module_conflicts_total").Value(); n != 1 {
		t.Fatalf("conflicts = %d, want 1", n)
	}
	if n := m.Counter("logres_module_retries_total").Value(); n != 1 {
		t.Fatalf("retries = %d, want 1", n)
	}
	if n := m.Counter("logres_module_commits_total").Value(); n != 1 {
		t.Fatalf("commits = %d, want 1", n)
	}
}

// TestRetryExhaustionReturnsConflictError disables retries and checks the
// typed error carries both footprints.
func TestRetryExhaustionReturnsConflictError(t *testing.T) {
	db, err := Open(concurrentSchema, WithMaxRetries(-1))
	if err != nil {
		t.Fatal(err)
	}
	hooks.ConcurrentPreCommit = func(int) {
		if _, err := db.Exec(`
mode ridv.
rules p0(x: 99).
end.
`); err != nil {
			t.Error(err)
		}
	}
	defer func() { hooks.ConcurrentPreCommit = nil }()

	_, err = db.ExecConcurrent(`
mode ridv.
rules p1(x: 1).
end.
`)
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ConflictError", err)
	}
	// The serial competitor commits a universal write, so the conflict
	// names the wildcard and the error renders both footprints.
	if ce.Pred != "*" {
		t.Fatalf("conflict pred = %q", ce.Pred)
	}
	if !ce.Theirs.Universal {
		t.Fatalf("theirs = %+v, want universal", ce.Theirs)
	}
	for _, want := range []string{"mine:", "theirs:", "writes=[p1]"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	// The failed application must not have leaked any facts.
	if n := db.EDBCount("p1"); n != 0 {
		t.Fatalf("aborted module left %d p1 facts", n)
	}
}

// TestFlightRecorderDumpsOnRetryExhaustion — retry exhaustion is an abort
// like any budget trip: the flight recorder must dump its ring on it.
func TestFlightRecorderDumpsOnRetryExhaustion(t *testing.T) {
	rec := NewFlightRecorder(64)
	var dump bytes.Buffer
	rec.SetDumpOnAbort(&dump)
	db, err := Open(concurrentSchema, WithMaxRetries(-1), WithTracer(rec))
	if err != nil {
		t.Fatal(err)
	}
	hooks.ConcurrentPreCommit = func(int) {
		if _, err := db.Exec(`
mode ridv.
rules p0(x: 99).
end.
`); err != nil {
			t.Error(err)
		}
	}
	defer func() { hooks.ConcurrentPreCommit = nil }()

	_, err = db.ExecConcurrent(`
mode ridv.
rules p1(x: 1).
end.
`)
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ConflictError", err)
	}
	if dump.Len() == 0 {
		t.Fatal("flight recorder did not dump on retry exhaustion")
	}
	for _, want := range []string{"abort", "retries"} {
		if !strings.Contains(dump.String(), want) {
			t.Fatalf("dump missing %q:\n%s", want, dump.String())
		}
	}
}

// TestCanceledBackoffReturnsCanceledError: cancellation during the retry
// backoff surfaces the usual typed *CanceledError.
func TestCanceledBackoffReturnsCanceledError(t *testing.T) {
	db, err := Open(concurrentSchema)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hooks.ConcurrentPreCommit = func(int) {
		// Force a conflict, then cancel: the retry backoff must notice.
		if _, err := db.Exec(`
mode ridv.
rules p0(x: 99).
end.
`); err != nil {
			t.Error(err)
		}
		cancel()
	}
	defer func() { hooks.ConcurrentPreCommit = nil }()

	_, err = db.ExecConcurrentContext(ctx, `
mode ridv.
rules p1(x: 1).
end.
`)
	var canceled *CanceledError
	if !errors.As(err, &canceled) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
}

// TestCommitEpochAdvances: every state-changing commit (serial or
// concurrent) bumps the epoch; reads do not.
func TestCommitEpochAdvances(t *testing.T) {
	db, err := Open(concurrentSchema)
	if err != nil {
		t.Fatal(err)
	}
	e0 := db.CommitEpoch()
	if _, err := db.Exec(`
mode ridv.
rules p0(x: 1).
end.
`); err != nil {
		t.Fatal(err)
	}
	if db.CommitEpoch() != e0+1 {
		t.Fatalf("serial commit epoch = %d, want %d", db.CommitEpoch(), e0+1)
	}
	if _, err := db.ExecConcurrent(`
mode ridv.
rules p1(x: 1).
end.
`); err != nil {
		t.Fatal(err)
	}
	if db.CommitEpoch() != e0+2 {
		t.Fatalf("concurrent commit epoch = %d, want %d", db.CommitEpoch(), e0+2)
	}
	if _, err := db.Query(`?- p0(x: X).`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecConcurrent(`
goal
  ?- p0(x: X).
end.
`); err != nil {
		t.Fatal(err)
	}
	if db.CommitEpoch() != e0+2 {
		t.Fatalf("reads advanced the epoch to %d", db.CommitEpoch())
	}
	if db.commitLogWindow() <= 0 {
		t.Fatal("commit log has no retention window")
	}
}

// TestApplyCallOptionsRoundsCoupleToMaxSteps covers the MaxRounds →
// MaxSteps coupling of per-call budgets: the rounds axis lowers the
// always-on step bound, never raises it.
func TestApplyCallOptionsRoundsCoupleToMaxSteps(t *testing.T) {
	base := engine.Options{MaxSteps: 10}
	if got := applyCallOptions(base, []CallOption{WithCallBudget(Budget{MaxRounds: 3})}); got.MaxSteps != 3 {
		t.Fatalf("stricter rounds did not lower MaxSteps: %d", got.MaxSteps)
	}
	if got := applyCallOptions(base, []CallOption{WithCallBudget(Budget{MaxRounds: 20})}); got.MaxSteps != 10 {
		t.Fatalf("looser rounds changed MaxSteps: %d", got.MaxSteps)
	}
	if got := applyCallOptions(engine.Options{}, []CallOption{WithCallBudget(Budget{MaxRounds: 7})}); got.MaxSteps != 7 {
		t.Fatalf("unbounded base did not adopt the rounds bound: %d", got.MaxSteps)
	}
	if got := applyCallOptions(base, nil); got.MaxSteps != 10 {
		t.Fatalf("no options changed MaxSteps: %d", got.MaxSteps)
	}
	// The budget itself still tightens per axis.
	got := applyCallOptions(engine.Options{Budget: Budget{MaxRounds: 5}},
		[]CallOption{WithCallBudget(Budget{MaxRounds: 9, MaxRetries: 2})})
	if got.Budget.MaxRounds != 5 || got.Budget.MaxRetries != 2 {
		t.Fatalf("budget tighten = %+v", got.Budget)
	}
}
