package logres

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// Subscription stress: N subscribers receiving concurrently with M
// optimistic appliers committing. Every subscriber must observe the
// exact same per-epoch diff sequence — contiguous epochs, no lost,
// duplicated, or reordered diffs — and replaying any subscriber's
// sequence onto the initial derived set must reproduce the final one.
// A deliberately unread subscriber with a tiny buffer must be detached
// with the typed *SlowConsumerError without ever blocking a commit.

func TestSubscriptionStress(t *testing.T) {
	const (
		subscribers = 4
		appliers    = 4
		commits     = 6 // per applier
	)
	db, err := Open(ivmMatrixSchema, WithIncremental(true), WithMaxRetries(1000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(ivmMatrixPrograms[1].rules); err != nil { // closure
		t.Fatal(err)
	}

	total := appliers * commits
	subs := make([]*Subscription, subscribers)
	for i := range subs {
		subs[i], err = db.SubscribeView(SubscribeOptions{Buffer: total + 8})
		if err != nil {
			t.Fatal(err)
		}
	}
	slow, err := db.SubscribeView(SubscribeOptions{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	startEpoch := subs[0].Epoch

	before := map[string]Fact{}
	initial, err := db.Instance()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range initial {
		before[f.Key()] = f
	}

	// Receivers drain concurrently with the appliers (the -race half of
	// the contract: fan-out under commit locks vs. channel receives).
	received := make([][]ViewDiff, subscribers)
	var rg sync.WaitGroup
	for i, s := range subs {
		i, s := i, s
		rg.Add(1)
		go func() {
			defer rg.Done()
			for d := range s.C {
				received[i] = append(received[i], d)
				if len(received[i]) == total {
					s.Close()
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for a := 0; a < appliers; a++ {
		a := a
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < commits; c++ {
				// Disjoint chains per applier; every commit extends one
				// chain by an edge, deriving fresh closure facts.
				src := fmt.Sprintf("mode ridv.\nrules\n  edge(src: %d, dst: %d).\nend.\n",
					a*100+c, a*100+c+1)
				if _, err := db.ExecConcurrent(src); err != nil {
					t.Errorf("applier %d commit %d: %v", a, c, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	rg.Wait()

	// Exactness: every subscriber saw every epoch exactly once, in
	// order, and all sequences agree.
	for i, got := range received {
		if len(got) != total {
			t.Fatalf("subscriber %d: %d diffs, want %d", i, len(got), total)
		}
		for j, d := range got {
			if d.Epoch != startEpoch+uint64(j)+1 {
				t.Fatalf("subscriber %d diff %d: epoch %d, want %d (lost/reordered)",
					i, j, d.Epoch, startEpoch+uint64(j)+1)
			}
			if len(d.Adds) == 0 {
				t.Fatalf("subscriber %d diff %d: empty (every commit derives facts)", i, j)
			}
			ref := received[0][j]
			if len(d.Adds) != len(ref.Adds) || len(d.Removes) != len(ref.Removes) {
				t.Fatalf("subscriber %d diff %d disagrees with subscriber 0", i, j)
			}
			for k := range d.Adds {
				if d.Adds[k].Key() != ref.Adds[k].Key() {
					t.Fatalf("subscriber %d diff %d add %d disagrees with subscriber 0", i, j, k)
				}
			}
		}
		if err := subs[i].Err(); err != nil {
			t.Fatalf("subscriber %d ended with %v", i, err)
		}
	}

	// Replaying subscriber 0's sequence reproduces the final derived set.
	state := map[string]Fact{}
	for k, f := range before {
		state[k] = f
	}
	for _, d := range received[0] {
		for _, f := range d.Removes {
			if _, ok := state[f.Key()]; !ok {
				t.Fatalf("diff at epoch %d removes absent fact %s", d.Epoch, f.Key())
			}
			delete(state, f.Key())
		}
		for _, f := range d.Adds {
			if _, ok := state[f.Key()]; ok {
				t.Fatalf("diff at epoch %d adds present fact %s", d.Epoch, f.Key())
			}
			state[f.Key()] = f
		}
	}
	final, err := db.Instance()
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != len(state) {
		t.Fatalf("replayed %d facts, final instance has %d", len(state), len(final))
	}
	for _, f := range final {
		if _, ok := state[f.Key()]; !ok {
			t.Fatalf("replay misses final fact %s", f.Key())
		}
	}

	// The unread subscriber was disconnected with the typed error, and
	// no commit ever blocked on it (the appliers all finished).
	drained := 0
	for range slow.C {
		drained++
	}
	if drained > 1 {
		t.Fatalf("slow subscriber drained %d diffs from a 1-buffer", drained)
	}
	var se *SlowConsumerError
	if !errors.As(slow.Err(), &se) {
		t.Fatalf("slow subscriber err = %v, want *SlowConsumerError", slow.Err())
	}
	if db.Subscribers() != 0 {
		t.Fatalf("%d subscribers left registered", db.Subscribers())
	}
}
