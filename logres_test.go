package logres

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

const footballSchema = `
domains
  NAME = string;
  ROLE = integer;
  DATE = string;
  SCORE = (home: integer, guest: integer);
classes
  PLAYER = (NAME, roles: {ROLE});
  TEAM = (team_name: NAME, base_players: <PLAYER>, substitutes: {PLAYER});
associations
  GAME = (h_team: TEAM, g_team: TEAM, DATE, SCORE);
  SIGNING = (team: NAME, player: NAME, role: ROLE);
`

func openFootball(t *testing.T) *Database {
	t.Helper()
	db, err := Open(footballSchema)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenRejectsRules(t *testing.T) {
	if _, err := Open(`rules p(x: 1).`); err == nil {
		t.Fatal("Open accepted rules")
	}
}

func TestOpenRejectsInvalidSchema(t *testing.T) {
	if _, err := Open(`classes C = (x: NOPE);`); err == nil {
		t.Fatal("Open accepted invalid schema")
	}
}

func TestFootballEndToEnd(t *testing.T) {
	db := openFootball(t)
	// Load signings, create player objects, then teams with sequences.
	_, err := db.Exec(`
mode ridv.
rules
  signing(team: "milan", player: "rossi", role: 9).
  signing(team: "milan", player: "verdi", role: 7).
  player(self: P, name: N, roles: {R}) <- signing(player: N, role: R).
end.
`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := db.Count("player")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("players = %d", n)
	}
	ans, err := db.Query(`?- player(name: X).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 2 {
		t.Fatalf("rows = %v", ans.Rows)
	}
}

func TestModeSemantics(t *testing.T) {
	db, err := Open(`
domains NAME = string;
associations
  ITALIAN = (name: NAME);
  ROMAN = (name: NAME);
`)
	if err != nil {
		t.Fatal(err)
	}
	// RIDV: facts land in E.
	if _, err := db.Exec(`
mode ridv.
rules
  italian(name: "sara").
  roman(name: "ugo").
end.
`); err != nil {
		t.Fatal(err)
	}
	if db.EDBCount("italian") != 1 {
		t.Fatalf("EDB italian = %d", db.EDBCount("italian"))
	}
	// RADI: rule persists, E unchanged, instance derives.
	if _, err := db.Exec(`
mode radi.
rules
  italian(name: X) <- roman(name: X).
end.
`); err != nil {
		t.Fatal(err)
	}
	if db.RuleCount() != 1 {
		t.Fatalf("rules = %d", db.RuleCount())
	}
	if db.EDBCount("italian") != 1 {
		t.Fatal("RADI touched the EDB")
	}
	n, err := db.Count("italian")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("instance italian = %d", n)
	}
	// Materialize: E = I, rules cleared.
	if err := db.Materialize(); err != nil {
		t.Fatal(err)
	}
	if db.RuleCount() != 0 || db.EDBCount("italian") != 2 {
		t.Fatalf("materialize: rules=%d italian=%d", db.RuleCount(), db.EDBCount("italian"))
	}
}

func TestRejectionKeepsState(t *testing.T) {
	db, err := Open(`
domains NAME = string;
associations
  MARRIED = (name: NAME);
  DIVORCED = (name: NAME);
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`
mode ridv.
rules
  married(name: "x").
  divorced(name: "x").
end.
`); err != nil {
		t.Fatal(err)
	}
	// Adding the denial must be rejected and leave the state usable.
	if _, err := db.Exec(`
mode radi.
rules
  <- married(name: X), divorced(name: X).
end.
`); err == nil {
		t.Fatal("violated denial accepted")
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if db.RuleCount() != 0 {
		t.Fatal("rejected module leaked rules")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := openFootball(t)
	if _, err := db.Exec(`
mode ridv.
rules
  signing(team: "milan", player: "rossi", role: 9).
  player(self: P, name: N, roles: {R}) <- signing(player: N, role: R).
end.
`); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n, err := db2.Count("player")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("players after load = %d", n)
	}
	s1, err := db.InstanceString()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := db2.InstanceString()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("instances differ:\n%s\nvs\n%s", s1, s2)
	}
}

func TestGoalOnlyModuleViaExec(t *testing.T) {
	db := openFootball(t)
	if _, err := db.Exec(`
mode ridv.
rules
  signing(team: "milan", player: "rossi", role: 9).
end.
`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`
goal
  ?- signing(player: X).
end.
`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer == nil || len(res.Answer.Rows) != 1 {
		t.Fatalf("answer = %+v", res.Answer)
	}
}

func TestSchemaRendering(t *testing.T) {
	db := openFootball(t)
	s := db.Schema()
	for _, want := range []string{"classes", "player", "associations", "game"} {
		if !strings.Contains(s, want) {
			t.Errorf("schema missing %q", want)
		}
	}
}

func TestInstanceAccessors(t *testing.T) {
	db := openFootball(t)
	if _, err := db.Exec(`
mode ridv.
rules
  signing(team: "milan", player: "rossi", role: 9).
end.
`); err != nil {
		t.Fatal(err)
	}
	facts, err := db.Instance()
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 1 || facts[0].Pred != "signing" {
		t.Fatalf("facts = %v", facts)
	}
	out, err := db.InstanceString()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "signing") {
		t.Fatalf("InstanceString = %q", out)
	}
}

func TestOptions(t *testing.T) {
	db, err := Open(`associations N = (v: integer);`,
		WithMaxSteps(5), WithSemiNaive(false), WithStratification(false))
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.Exec(`
mode ridv.
rules
  n(v: 0).
  n(v: Y) <- n(v: X), Y = X + 1.
end.
`)
	if err == nil || !strings.Contains(err.Error(), "fixpoint") {
		t.Fatalf("MaxSteps option ignored: %v", err)
	}
	// MaxSteps exhaustion is a budget abort like any other: the typed
	// error carries the axis and the round it tripped at.
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("MaxSteps overflow is not a *BudgetError: %v", err)
	}
	if be.Axis != AxisRounds || be.Limit != 5 {
		t.Fatalf("BudgetError = %+v, want rounds axis with limit 5", be)
	}
}

// The paper's running university example end to end through the public
// API: hierarchy, invention, association join, goal.
func TestUniversityEndToEnd(t *testing.T) {
	db, err := Open(`
domains
  NAME = string;
  COURSE = string;
classes
  PERSON = (name: NAME);
  STUDENT = (PERSON, school: string);
  PROFESSOR = (PERSON, course: COURSE);
  STUDENT isa PERSON;
  PROFESSOR isa PERSON;
associations
  ADVISES = (professor: PROFESSOR, student: STUDENT);
  PAIR = (p_name: NAME, s_name: NAME);
  INTAKE = (name: NAME, kind: string);
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`
mode ridv.
rules
  intake(name: "smith", kind: "student").
  intake(name: "smith", kind: "professor").
  intake(name: "jones", kind: "student").
  student(self: S, name: N, school: "polimi") <- intake(name: N, kind: "student").
  professor(self: P, name: N, course: "db") <- intake(name: N, kind: "professor").
end.
`); err != nil {
		t.Fatal(err)
	}
	// Persons: 2 students + 1 professor = 3 objects (smith has two roles,
	// hence two distinct objects in this modelling — the classes are
	// populated by independent inventions).
	persons, err := db.Count("person")
	if err != nil {
		t.Fatal(err)
	}
	if persons != 3 {
		t.Fatalf("persons = %d", persons)
	}
	// The paper's pair rule through tuple variables.
	if _, err := db.Exec(`
mode radi.
rules
  advises(X1, Y1) <- professor(X1, name: X), student(Y1, name: X).
  pair(p_name: X, s_name: X) <- professor(X1, name: X), student(Y1, name: X), advises(X1, Y1).
end.
`); err != nil {
		t.Fatal(err)
	}
	ans, err := db.Query(`?- pair(p_name: X).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 1 {
		t.Fatalf("pair rows = %v", ans.Rows)
	}
	if ans.Rows[0][0].String() != `"smith"` {
		t.Fatalf("pair = %v", ans.Rows[0])
	}
}
