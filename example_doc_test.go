package logres_test

import (
	"fmt"
	"log"

	"logres"
)

// The classic deductive-database introduction: facts, a recursive rule,
// a goal.
func Example() {
	db, err := logres.Open(`
domains NAME = string;
associations
  PARENT = (par: NAME, chil: NAME);
  ANCESTOR = (anc: NAME, des: NAME);
`)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`
mode ridv.
rules
  parent(par: "rhea", chil: "zeus").
  parent(par: "zeus", chil: "ares").
end.
`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`
mode radi.
rules
  ancestor(anc: X, des: Y) <- parent(par: X, chil: Y).
  ancestor(anc: X, des: Z) <- ancestor(anc: X, des: Y), parent(par: Y, chil: Z).
end.
`); err != nil {
		log.Fatal(err)
	}
	ans, err := db.Query(`?- ancestor(anc: "rhea", des: X).`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range ans.Rows {
		fmt.Println(row[0])
	}
	// Output:
	// "ares"
	// "zeus"
}

// Object creation: an unbound self variable invents oids; the isa
// hierarchy propagates membership with the shared oid.
func ExampleDatabase_Exec_invention() {
	db, err := logres.Open(`
classes
  PERSON = (name: string);
  STUDENT = (PERSON, school: string);
  STUDENT isa PERSON;
associations INTAKE = (name: string);
`)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`
mode ridv.
rules
  intake(name: "ann").
  student(self: S, name: N, school: "polimi") <- intake(name: N).
end.
`); err != nil {
		log.Fatal(err)
	}
	students, _ := db.Count("student")
	persons, _ := db.Count("person")
	fmt.Printf("students=%d persons=%d\n", students, persons)
	// Output:
	// students=1 persons=1
}

// Registered modules act as methods (§5): encapsulated procedures
// invoked by name.
func ExampleDatabase_Call() {
	db, err := logres.Open(`associations COUNTER = (n: integer);`)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Register(`
module init.
mode ridv.
rules
  counter(n: 0).
end.
`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Call("init"); err != nil {
		log.Fatal(err)
	}
	n := db.EDBCount("counter")
	fmt.Println("counters:", n)
	// Output:
	// counters: 1
}
