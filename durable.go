package logres

import (
	"bytes"
	"fmt"
	"time"

	"logres/internal/engine"
	"logres/internal/module"
	"logres/internal/obs"
	"logres/internal/storage"
)

// Durable databases (DESIGN.md §12). A Database opened with OpenDurable
// owns a data directory holding periodic snapshots plus a write-ahead
// log; every commit — serial, optimistic-concurrent, or a module
// registration — appends one record to the log before it is
// acknowledged, so a crash at any point recovers the exact committed
// prefix. Reopening the same directory replays the log onto the newest
// snapshot; replay reproduces the committed state byte for byte (the
// Save output of the recovered database equals the pre-crash one).

// FsyncPolicy selects when WAL appends reach stable storage.
type FsyncPolicy = storage.FsyncPolicy

// The fsync policies: every append, coalesced on an interval, or left
// to the OS page cache.
const (
	FsyncAlways   = storage.FsyncAlways
	FsyncInterval = storage.FsyncInterval
	FsyncOff      = storage.FsyncOff
)

// ParseFsyncPolicy parses "always", "interval", or "off".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return storage.ParseFsyncPolicy(s) }

// RecoveryReport describes what opening an existing data directory
// found: the snapshot it started from, the records replayed, and — when
// the log had a torn or corrupt tail — the non-fatal *RecoveryError the
// store repaired (quarantine + truncate).
type RecoveryReport = storage.Recovery

// RecoveryError is the typed error of a WAL recovery condition: the
// byte offset and epoch where replay stopped, the quarantine file
// holding the unreadable suffix, and the underlying cause.
type RecoveryError = storage.RecoveryError

// DurabilityStatus is a point-in-time summary of a durable database's
// storage: data directory, fsync policy, durable epoch, checkpoint
// epoch, and current WAL size.
type DurabilityStatus = storage.StoreStatus

// Durability configures OpenDurable.
type Durability struct {
	// Dir is the data directory (created if absent).
	Dir string
	// Fsync is the WAL sync policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the coalescing window under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// CompactEvery checkpoints and truncates the WAL once this many
	// records accumulate (default 4096; negative disables).
	CompactEvery int
}

// OpenDurable opens a durable database over dir. A fresh directory is
// initialized from schemaSrc (exactly like Open) with a snapshot at
// epoch 0; a directory that already holds a store is recovered instead
// — the newest verifiable snapshot plus WAL replay — and schemaSrc is
// ignored in favor of the persisted schema. The report is nil on fresh
// creation and describes the recovery otherwise.
func OpenDurable(schemaSrc string, d Durability, options ...Option) (*Database, *RecoveryReport, error) {
	exists, err := storage.Exists(d.Dir)
	if err != nil {
		return nil, nil, err
	}
	sopts := storage.StoreOptions{
		Fsync:         d.Fsync,
		FsyncInterval: d.FsyncInterval,
		CompactEvery:  d.CompactEvery,
	}
	if !exists {
		db, err := Open(schemaSrc, options...)
		if err != nil {
			return nil, nil, err
		}
		store, err := storage.Create(d.Dir, db.st, sopts)
		if err != nil {
			return nil, nil, err
		}
		db.store = store
		store.SetTracer(db.opts.Tracer)
		return db, nil, nil
	}

	store, st, rec, err := storage.Open(d.Dir, sopts)
	if err != nil {
		return nil, nil, err
	}
	db := &Database{opts: engine.DefaultOptions(), log: storage.NewCommitLogAt(rec.Epoch, 0)}
	for _, o := range options {
		o(db)
	}
	db.store = store
	db.recovery = rec
	store.SetTracer(db.opts.Tracer)
	db.publish(st)
	// Maintenance state is derived, not persisted: recovery rebuilds it
	// from the recovered (E, R, S) by recomputation, so the maintained
	// set is byte-identical to a cold from-scratch evaluation.
	if err := db.maintInit(); err != nil {
		return nil, nil, err
	}
	return db, rec, nil
}

// Durable reports whether the database persists commits to a WAL.
func (db *Database) Durable() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.store != nil
}

// Recovery returns the report of the recovery that opened this
// database, or nil (fresh creation, or a non-durable database).
func (db *Database) Recovery() *RecoveryReport {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.recovery
}

// Durability returns the storage status of a durable database; ok is
// false for a database without a store.
func (db *Database) Durability() (DurabilityStatus, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.store == nil {
		return DurabilityStatus{}, false
	}
	return db.store.Status(), true
}

// Sync forces buffered WAL data to stable storage — the drain hook for
// FsyncInterval / FsyncOff databases. A no-op without a store.
func (db *Database) Sync() error {
	db.mu.RLock()
	store := db.store
	db.mu.RUnlock()
	if store == nil {
		return nil
	}
	return store.Sync()
}

// Close syncs and closes the WAL. Subsequent commits fail; read-only
// methods keep working against the in-memory state. A no-op without a
// store.
func (db *Database) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.store == nil {
		return nil
	}
	return db.store.Close()
}

// Compact checkpoints the current committed state as a new snapshot and
// truncates the WAL, bounding recovery time (and the AsOf horizon).
// Compaction also runs automatically every Durability.CompactEvery
// commits.
func (db *Database) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.store == nil {
		return fmt.Errorf("logres: database is not durable")
	}
	return db.store.Compact(db.st, db.log.Epoch())
}

// AsOf reconstructs the committed state as it was at a past commit
// epoch (see CommitEpoch) by replaying the WAL prefix onto the
// checkpoint snapshot, and returns it as a read-only database sharing
// this one's options. History older than the last compaction
// checkpoint is gone (storage.ErrCompacted); future epochs do not
// exist yet.
func (db *Database) AsOf(epoch uint64) (*Database, error) {
	db.mu.RLock()
	store := db.store
	opts := db.opts
	db.mu.RUnlock()
	if store == nil {
		return nil, fmt.Errorf("logres: database is not durable")
	}
	st, err := store.AsOf(epoch)
	if err != nil {
		return nil, err
	}
	past := &Database{opts: opts, log: storage.NewCommitLogAt(epoch, 0)}
	past.publish(st)
	return past, nil
}

// walAppendReplace logs a whole-state replacement commit at epoch. The
// tracer is the committing call's (request-instrumented when the call
// runs under a span) so the append and its fsync wait are attributed;
// nil falls back to the store-wide tracer. No-op without a store.
func (db *Database) walAppendReplace(t Tracer, epoch uint64, st *module.State) error {
	if db.store == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := storage.SaveState(&buf, st); err != nil {
		return fmt.Errorf("logres: serializing commit for wal: %w", err)
	}
	return db.store.AppendWith(t, &storage.WALRecord{
		Type:  storage.RecReplace,
		Epoch: epoch,
		State: buf.Bytes(),
	})
}

// walAppendDelta logs an optimistic delta commit at epoch, attributed
// to the committing call's tracer. No-op without a store.
func (db *Database) walAppendDelta(t Tracer, epoch uint64, sr *module.SnapshotResult) error {
	if db.store == nil {
		return nil
	}
	return db.store.AppendWith(t, &storage.WALRecord{
		Type:         storage.RecDelta,
		Epoch:        epoch,
		Writes:       sr.Footprint.Writes,
		CounterDelta: sr.CounterDelta,
		Removes:      sr.Removes,
		Adds:         sr.Adds,
	})
}

// walAppendRegister logs a module registration at epoch, as the
// module's canonical source (the parser round-trips it on replay).
// No-op without a store.
func (db *Database) walAppendRegister(epoch uint64, m *Module) error {
	if db.store == nil {
		return nil
	}
	return db.store.Append(&storage.WALRecord{
		Type:   storage.RecRegister,
		Epoch:  epoch,
		Source: module.RenderModule(m),
	})
}

// maybeCompact runs a compaction when the WAL has grown past the
// configured threshold. Called under the write lock after a successful
// commit; a compaction failure never fails the commit (the log still
// holds it) — it is only surfaced to the tracer.
func (db *Database) maybeCompact() {
	if db.store == nil || !db.store.ShouldCompact() {
		return
	}
	if err := db.store.Compact(db.st, db.log.Epoch()); err != nil {
		if db.opts.Tracer != nil {
			db.opts.Tracer.Event(TraceEvent{
				Kind:    obs.KindWALCompact,
				Stratum: -1,
				Detail:  "compaction failed: " + err.Error(),
			})
		}
	}
}
