package logres

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// Guardrail tests through the public API: every budget axis aborts a
// divergent module application with a typed error, and the database
// snapshot stays bit-identical to its pre-application state.

const guardSchema = `
classes C = (v: integer);
associations
  SEED = (k: integer);
  N = (v: integer);
`

// A divergent RIDV update: every round derives a new count and invents
// a fresh oid for it, so all four budget axes have something to exhaust
// inside the same diverging stratum.
const divergentModule = `
mode ridv.
rules
  c(self: S, v: 0) <- seed(k: 1).
  c(self: S, v: Y) <- c(v: X), Y = X + 1.
end.
`

func snapshot(t *testing.T, db *Database) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// openGuarded opens a database over guardSchema with one seed fact.
func openGuarded(t *testing.T, options ...Option) *Database {
	t.Helper()
	db, err := Open(guardSchema, options...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("mode ridv.\nrules\n  seed(k: 1).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	return db
}

// Every budget axis must abort the divergent module with a *BudgetError
// and leave the saved snapshot bit-identical, on the serial and parallel
// evaluators alike.
func TestBudgetAbortLeavesDatabaseUntouched(t *testing.T) {
	cases := []struct {
		name   string
		budget Budget
		axis   Axis
	}{
		{"rounds", Budget{MaxRounds: 25}, AxisRounds},
		{"facts", Budget{MaxFacts: 60}, AxisFacts},
		{"oids", Budget{MaxOIDs: 20}, AxisOIDs},
		{"deadline", Budget{Timeout: 25 * time.Millisecond}, AxisDeadline},
	}
	for _, workers := range []int{1, 4} {
		for _, shards := range []int{1, 4} {
			for _, c := range cases {
				t.Run(fmt.Sprintf("%s/workers=%d/shards=%d", c.name, workers, shards), func(t *testing.T) {
					db := openGuarded(t, WithBudget(c.budget), WithWorkers(workers), WithShards(shards))
					before := snapshot(t, db)
					_, err := db.Exec(divergentModule)
					var be *BudgetError
					if !errors.As(err, &be) {
						t.Fatalf("err = %v (%T), want *BudgetError", err, err)
					}
					if be.Axis != c.axis {
						t.Fatalf("axis = %q, want %q", be.Axis, c.axis)
					}
					after := snapshot(t, db)
					if !bytes.Equal(before, after) {
						t.Fatalf("aborted application mutated the database:\nbefore: %s\nafter:  %s", before, after)
					}
				})
			}
		}
	}
}

// Cancellation via WithContext and via the per-call *Context methods
// must abort with a *CanceledError unwrapping to the context cause, DB
// untouched.
func TestCancellationLeavesDatabaseUntouched(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	t.Run("WithContext", func(t *testing.T) {
		db := openGuarded(t)
		before := snapshot(t, db)
		dbCtx, err := Load(bytes.NewReader(before), WithContext(ctx))
		if err != nil {
			t.Fatal(err)
		}
		_, err = dbCtx.Exec(divergentModule)
		var ce *CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %v (%T), want *CanceledError", err, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err does not unwrap to context.Canceled: %v", err)
		}
	})

	t.Run("ExecContext", func(t *testing.T) {
		db := openGuarded(t)
		before := snapshot(t, db)
		_, err := db.ExecContext(ctx, divergentModule)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ExecContext ignored cancellation: %v", err)
		}
		if after := snapshot(t, db); !bytes.Equal(before, after) {
			t.Fatal("canceled ExecContext mutated the database")
		}
	})

	t.Run("QueryContext", func(t *testing.T) {
		db := openGuarded(t)
		_, err := db.QueryContext(ctx, `?- seed(k: X).`)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("QueryContext ignored cancellation: %v", err)
		}
	})

	t.Run("CallContext", func(t *testing.T) {
		db := openGuarded(t)
		if err := db.Register("module diverge.\n" + divergentModule); err != nil {
			t.Fatal(err)
		}
		before := snapshot(t, db)
		_, err := db.CallContext(ctx, "diverge")
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("CallContext ignored cancellation: %v", err)
		}
		if after := snapshot(t, db); !bytes.Equal(before, after) {
			t.Fatal("canceled CallContext mutated the database")
		}
	})
}

// A cancellation mid-evaluation (not pre-canceled) must also abort and
// leave the database untouched.
func TestMidEvaluationCancellation(t *testing.T) {
	db := openGuarded(t)
	before := snapshot(t, db)
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	_, err := db.ExecContext(ctx, divergentModule)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err does not unwrap to context.DeadlineExceeded: %v", err)
	}
	if after := snapshot(t, db); !bytes.Equal(before, after) {
		t.Fatal("deadline-aborted evaluation mutated the database")
	}
}

// A budget abort must not poison the database: the same handle keeps
// answering queries and accepting convergent updates afterwards.
func TestDatabaseUsableAfterAbort(t *testing.T) {
	db := openGuarded(t, WithBudget(Budget{MaxRounds: 25}))
	if _, err := db.Exec(divergentModule); err == nil {
		t.Fatal("divergent module converged")
	}
	ans, err := db.Query(`?- seed(k: X).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 1 {
		t.Fatalf("query after abort returned %d rows, want 1", len(ans.Rows))
	}
	if _, err := db.Exec("mode ridv.\nrules\n  seed(k: 2).\nend.\n"); err != nil {
		t.Fatal(err)
	}
}

// The abort error message names the axis and the location so a user can
// tell which bound fired and where.
func TestAbortErrorMessage(t *testing.T) {
	db := openGuarded(t, WithBudget(Budget{MaxFacts: 60}))
	_, err := db.Exec(divergentModule)
	if err == nil {
		t.Fatal("divergent module converged")
	}
	msg := err.Error()
	for _, want := range []string{"fact budget exhausted", "facts derived"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not mention %q", msg, want)
		}
	}
}
