package logres

import (
	"sync"
	"testing"
	"time"

	"logres/internal/hooks"
	"logres/internal/obs"
)

// TestRetryBackoffNeverOverflows is the regression test for the shift
// overflow in the conflict backoff: `retryBaseBackoff << attempt` wraps
// negative/zero once attempt exceeds ~45 (reachable with a large
// WithMaxRetries / Budget.MaxRetries), the max clamp no longer applies,
// and the retry timer fires immediately — a hot spin. The clamped
// schedule must be strictly positive, monotonically non-decreasing, and
// capped for every attempt index.
func TestRetryBackoffNeverOverflows(t *testing.T) {
	prev := retryBackoff(0)
	if prev != retryBaseBackoff {
		t.Fatalf("retryBackoff(0) = %v, want %v", prev, retryBaseBackoff)
	}
	for attempt := 1; attempt <= 200; attempt++ {
		d := retryBackoff(attempt)
		if d <= 0 {
			t.Fatalf("retryBackoff(%d) = %v, want > 0 (shift overflow)", attempt, d)
		}
		if d < prev {
			t.Fatalf("retryBackoff(%d) = %v < retryBackoff(%d) = %v, want monotone non-decreasing",
				attempt, d, attempt-1, prev)
		}
		if d > retryMaxBackoff {
			t.Fatalf("retryBackoff(%d) = %v exceeds cap %v", attempt, d, retryMaxBackoff)
		}
		prev = d
	}
	// Deep into the formerly-overflowing range the schedule sits at the cap.
	for _, attempt := range []int{46, 50, 63, 64, 100} {
		if d := retryBackoff(attempt); d != retryMaxBackoff {
			t.Fatalf("retryBackoff(%d) = %v, want cap %v", attempt, d, retryMaxBackoff)
		}
	}
	// The old expression really did overflow — document why the clamp
	// exists. (The shift count is a variable so the compiler cannot
	// reject the constant overflow this test is about.)
	shift := 50
	if bad := retryBaseBackoff << shift; bad > 0 && bad <= retryMaxBackoff {
		t.Fatalf("shift expression no longer overflows (%v); reconsider this regression test", bad)
	}
}

// eventRecorder captures trace events for assertions.
type eventRecorder struct {
	mu     sync.Mutex
	events []obs.Event
}

func (r *eventRecorder) Event(ev obs.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

func (r *eventRecorder) byKind(k obs.Kind) []obs.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []obs.Event
	for _, ev := range r.events {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// TestConflictRetryRoundNumbersAgree: the conflict event of attempt N
// and the retry event that follows it must both carry Round N (the
// commit that finally lands carries its own attempt index). Before the
// fix the retry reported attempt+1, so a canonical trace diff showed a
// conflict at round N paired with a retry at round N+1 for the same
// attempt.
func TestConflictRetryRoundNumbersAgree(t *testing.T) {
	rec := &eventRecorder{}
	db, err := Open(concurrentSchema, WithTracer(rec))
	if err != nil {
		t.Fatal(err)
	}
	// Force conflicts on the first two attempts; the third commits.
	hooks.ConcurrentPreCommit = func(attempt int) {
		if attempt < 2 {
			if _, err := db.Exec("mode ridv.\nrules p0(x: " + string(rune('0'+attempt)) + ").\nend.\n"); err != nil {
				t.Error(err)
			}
		}
	}
	defer func() { hooks.ConcurrentPreCommit = nil }()

	if _, err := db.ExecConcurrent("mode ridv.\nrules p1(x: 1).\nend.\n"); err != nil {
		t.Fatalf("retries did not recover: %v", err)
	}

	conflicts := rec.byKind(obs.KindModuleConflict)
	retries := rec.byKind(obs.KindModuleRetry)
	commits := rec.byKind(obs.KindModuleCommit)
	if len(conflicts) != 2 || len(retries) != 2 || len(commits) == 0 {
		t.Fatalf("events: %d conflicts, %d retries, %d commits; want 2, 2, >=1",
			len(conflicts), len(retries), len(commits))
	}
	for i := range conflicts {
		if conflicts[i].Round != i {
			t.Errorf("conflict %d: Round = %d, want %d", i, conflicts[i].Round, i)
		}
		if retries[i].Round != conflicts[i].Round {
			t.Errorf("retry %d: Round = %d, conflict Round = %d; want the same attempt index",
				i, retries[i].Round, conflicts[i].Round)
		}
		if retries[i].Duration <= 0 {
			t.Errorf("retry %d: Duration = %v, want > 0", i, retries[i].Duration)
		}
	}
	if got := commits[len(commits)-1].Round; got != 2 {
		t.Errorf("commit Round = %d, want 2 (third attempt)", got)
	}
}

// TestRetryBackoffSleepsMonotonically drives a large-retry conflict loop
// end to end and asserts the traced backoff durations are monotonically
// non-decreasing and never negative — the observable symptom of the
// overflow was a sudden drop to immediate firing.
func TestRetryBackoffSleepsMonotonically(t *testing.T) {
	rec := &eventRecorder{}
	db, err := Open(concurrentSchema, WithTracer(rec), WithMaxRetries(6))
	if err != nil {
		t.Fatal(err)
	}
	hooks.ConcurrentPreCommit = func(int) {
		// Conflict on every attempt until the budget exhausts.
		if _, err := db.Exec("mode ridv.\nrules p0(x: 7).\nend.\n"); err != nil {
			t.Error(err)
		}
	}
	defer func() { hooks.ConcurrentPreCommit = nil }()

	if _, err := db.ExecConcurrent("mode ridv.\nrules p1(x: 1).\nend.\n"); err == nil {
		t.Fatal("want retry exhaustion, got success")
	}
	retries := rec.byKind(obs.KindModuleRetry)
	if len(retries) != 6 {
		t.Fatalf("retry events = %d, want 6", len(retries))
	}
	var prev time.Duration
	for i, ev := range retries {
		if ev.Duration <= 0 {
			t.Fatalf("retry %d slept %v, want > 0", i, ev.Duration)
		}
		if ev.Duration < prev {
			t.Fatalf("retry %d slept %v < previous %v, want monotone non-decreasing", i, ev.Duration, prev)
		}
		prev = ev.Duration
	}
}
