package logres

// The benchmark harness: one testing.B family per experiment of
// EXPERIMENTS.md (E1–E12). The same workloads back cmd/logres-bench,
// which prints the result tables. Run with:
//
//	go test -bench=. -benchmem
//
// The paper (SIGMOD 1990) contains no quantitative tables; these
// experiments characterize the system the paper describes and the
// ablations DESIGN.md calls out.

import (
	"fmt"
	"io"
	"testing"

	"logres/internal/ast"
	"logres/internal/bench"
	"logres/internal/obs"
)

// E1 — transitive closure: LOGRES naive vs semi-naive vs ALGRES-compiled
// vs the flat Datalog baseline, over chains.
func BenchmarkE1_TC_LogresSemiNaive(b *testing.B) { benchE1Logres(b, true) }
func BenchmarkE1_TC_LogresNaive(b *testing.B)     { benchE1Logres(b, false) }

func benchE1Logres(b *testing.B, semi bool) {
	for _, n := range []int{32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, err := bench.NewLogresTC(bench.Chain(n), semi)
			if err != nil {
				b.Fatal(err)
			}
			want := n * (n + 1) / 2
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				if got != want {
					b.Fatalf("tc = %d, want %d", got, want)
				}
			}
		})
	}
}

func BenchmarkE1_TC_Datalog(b *testing.B) {
	for _, n := range []int{32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, err := bench.NewDatalogTC(bench.Chain(n), true)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := s.Run(); got != n*(n+1)/2 {
					b.Fatalf("tc = %d", got)
				}
			}
		})
	}
}

func BenchmarkE1_TC_Algres(b *testing.B) {
	for _, semi := range []bool{true, false} {
		name := "seminaive"
		if !semi {
			name = "naive"
		}
		for _, workers := range []int{1, 4} {
			for _, n := range []int{32, 128} {
				b.Run(fmt.Sprintf("%s/workers=%d/n=%d", name, workers, n), func(b *testing.B) {
					s, err := bench.NewAlgresTCWorkers(bench.Chain(n), semi, workers)
					if err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						got, err := s.Run()
						if err != nil {
							b.Fatal(err)
						}
						if got != n*(n+1)/2 {
							b.Fatalf("tc = %d", got)
						}
					}
				})
			}
		}
	}
}

// E2 — same generation (nonlinear recursion) over balanced trees.
func BenchmarkE2_SameGeneration(b *testing.B) {
	for _, depth := range []int{3, 5} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			s, err := bench.NewLogresSG(bench.Tree(2, depth), true)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.RunSG(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E3 — oid invention throughput vs plain derivation.
func BenchmarkE3_Invention(b *testing.B) {
	for _, invent := range []bool{true, false} {
		name := "invent"
		pred := "item"
		if !invent {
			name = "derive"
			pred = "flat"
		}
		for _, n := range []int{100, 1000} {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				s, err := bench.NewInvention(n, invent)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					got, err := s.Run(pred)
					if err != nil {
						b.Fatal(err)
					}
					if got != n {
						b.Fatalf("%s = %d", pred, got)
					}
				}
			})
		}
	}
}

// E4 — isa-propagation overhead: hierarchy depth sweep.
func BenchmarkE4_IsaPropagation(b *testing.B) {
	for _, depth := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			s, leaf, err := bench.NewIsaChain(depth, 200)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := s.Run(leaf)
				if err != nil {
					b.Fatal(err)
				}
				if got != 200 {
					b.Fatalf("leaf = %d", got)
				}
			}
		})
	}
}

// E5 — powerset (Example 3.3): built-in heavy, exponential output.
func BenchmarkE5_Powerset(b *testing.B) {
	for _, d := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			s, err := bench.NewPowerset(d)
			if err != nil {
				b.Fatal(err)
			}
			want := 1 << d
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				if got != want {
					b.Fatalf("power = %d", got)
				}
			}
		})
	}
}

// E6 — module application modes over the same update.
func BenchmarkE6_ModuleModes(b *testing.B) {
	for _, mode := range []ast.Mode{ast.RIDI, ast.RADI, ast.RIDV, ast.RADV} {
		b.Run(mode.String(), func(b *testing.B) {
			s, err := bench.NewModeWorkload(200, mode)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				if got != 200 {
					b.Fatalf("copyrel = %d", got)
				}
			}
		})
	}
}

// E7 — stratified vs whole-program inflationary negation.
func BenchmarkE7_Negation(b *testing.B) {
	for _, strat := range []bool{true, false} {
		name := "stratified"
		if !strat {
			name = "inflationary"
		}
		b.Run(name, func(b *testing.B) {
			s, err := bench.NewWinLose(bench.Chain(128), strat)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.RunPred("unreach"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E8 — data-function nesting (descendants per person).
func BenchmarkE8_DataFunctions(b *testing.B) {
	for _, depth := range []int{4, 6} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			s, err := bench.NewDescendants(bench.Tree(2, depth))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.RunPred("ancestor"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E9 — snapshot codec.
func BenchmarkE9_SnapshotEncode(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, err := bench.NewSnapshot(n)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Encode(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE9_SnapshotDecode(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, err := bench.NewSnapshot(n)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Decode(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E10 — ALGRES operator microbenchmarks.
func BenchmarkE10_AlgebraJoin(b *testing.B) {
	for _, n := range []int{1000, 5000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a := bench.NewAlgebraOps(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if a.Join() == 0 {
					b.Fatal("empty join")
				}
			}
		})
	}
}

func BenchmarkE10_AlgebraNestUnnest(b *testing.B) {
	for _, n := range []int{1000, 5000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a := bench.NewAlgebraOps(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.NestUnnest(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E11 — rule semantics: inflationary vs non-inflationary on the same
// closure workload (§1: rules are parametric in their semantics).
func BenchmarkE11_Semantics(b *testing.B) {
	for _, nonInf := range []bool{false, true} {
		name := "inflationary"
		if nonInf {
			name = "noninflationary"
		}
		b.Run(name, func(b *testing.B) {
			s, err := bench.NewLogresTCSemantics(bench.Chain(32), nonInf)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				if got != 32*33/2 {
					b.Fatalf("tc = %d", got)
				}
			}
		})
	}
}

// E12 — parallel semi-naive scaling: the same chain closure at several
// worker × shard counts (results are bit-identical; only wall-clock
// differs).
func BenchmarkE12_ParallelClosure(b *testing.B) {
	for _, cfg := range [][2]int{{1, 1}, {2, 2}, {4, 4}} {
		workers, shards := cfg[0], cfg[1]
		b.Run(fmt.Sprintf("workers=%d/shards=%d", workers, shards), func(b *testing.B) {
			s, err := bench.NewLogresTC(bench.Chain(128), true)
			if err != nil {
				b.Fatal(err)
			}
			s.Program.SetWorkers(workers)
			s.Program.SetShards(shards)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				if got != 128*129/2 {
					b.Fatalf("tc = %d", got)
				}
			}
		})
	}
}

// E14 — tracer overhead: the same chain closure untraced (the nil-check
// fast path), under a JSONL tracer writing to io.Discard, and under the
// metrics adapter. EXPERIMENTS.md records the measured gap; the
// untraced variant must stay within noise of a build without the
// tracing hooks at all.
func BenchmarkE14_TracerOverhead(b *testing.B) {
	variants := []struct {
		name   string
		tracer obs.Tracer
	}{
		{"off", nil},
		{"jsonl", obs.NewJSONL(io.Discard)},
		{"metrics", obs.NewMetrics().Tracer()},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			s, err := bench.NewLogresTC(bench.Chain(128), true)
			if err != nil {
				b.Fatal(err)
			}
			s.Program.SetTracer(v.tracer)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				if got != 128*129/2 {
					b.Fatalf("tc = %d", got)
				}
			}
		})
	}
}
