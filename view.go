package logres

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"logres/internal/engine"
	"logres/internal/instance"
	"logres/internal/module"
	"logres/internal/obs"
	"logres/internal/types"
)

// Incremental view maintenance and live query subscriptions (DESIGN.md
// §14). With WithIncremental the database keeps the derived instance
// materialized across commits: after every commit the extensional delta
// is propagated through the stratification (counting for non-recursive
// strata, DRed delete/rederive for recursive ones) instead of rerunning
// the fixpoint, and reads (Instance, Count, Query) serve from the
// maintained set. Strata outside the eligible fragment — oid invention,
// deletions, negation, data-function reads — are recomputed on top of
// the maintained prefix; a program with no eligible stratum degenerates
// to caching the last full evaluation. Either way the maintained set is
// byte-identical to a from-scratch recomputation.
//
// Live subscriptions ride on the maintained set: SubscribeView delivers
// exactly one ViewDiff per state-changing commit epoch — the exact
// fact-level difference of the derived instance — over a bounded
// channel. A subscriber that falls behind is disconnected with a typed
// *SlowConsumerError rather than ever blocking a commit.

// WithIncremental enables incremental maintenance of the derived
// instance. Commits pay for delta propagation (usually far cheaper than
// the from-scratch evaluation reads would otherwise run); Instance,
// InstanceString, Count, and option-free Query calls then serve from
// the maintained set without re-deriving. Required for SubscribeView.
//
// Maintained reads skip the per-read consistency audit the scratch path
// performs as a side effect of evaluating the instance; commits still
// validate before landing — inside module application, or for
// data-variant commits that change neither rules nor schema via an
// incremental audit of the maintained instance staged ahead of the
// commit (rejections roll the staged update back) — and
// CheckConsistency remains available as an explicit audit.
func WithIncremental(on bool) Option {
	return func(db *Database) { db.incremental = on }
}

// Incremental reports whether the database maintains its derived
// instance incrementally.
func (db *Database) Incremental() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.incremental
}

// ErrNotIncremental is returned by SubscribeView on a database opened
// without WithIncremental.
var ErrNotIncremental = errors.New("logres: live subscriptions require WithIncremental")

// DefaultSubscriptionBuffer is the per-subscription diff buffer when
// SubscribeOptions.Buffer is unset.
const DefaultSubscriptionBuffer = 16

// ViewDiff is the fact-level difference of the derived instance across
// one commit epoch: every fact that became derivable and every fact
// that ceased to be, each sorted by fact key. Subscribers receive
// exactly one ViewDiff per state-changing commit, in epoch order with
// no gaps (a commit that leaves the subscribed predicates unchanged
// delivers an empty diff).
type ViewDiff struct {
	Epoch   uint64
	Adds    []Fact
	Removes []Fact
}

// SlowConsumerError is the typed error a subscription ends with when
// its consumer cannot keep up: the diff for Epoch found the Buffer-deep
// channel full, and the subscription was disconnected rather than
// blocking the commit. Retrieve it with errors.As on Subscription.Err.
type SlowConsumerError struct {
	Epoch  uint64
	Buffer int
}

func (e *SlowConsumerError) Error() string {
	return fmt.Sprintf("logres: subscriber too slow: diff for epoch %d overflowed the %d-entry buffer", e.Epoch, e.Buffer)
}

// SubscribeOptions configures one live subscription.
type SubscribeOptions struct {
	// Preds restricts diffs to these predicates (empty = all). Filtering
	// happens before delivery, so an uninterested subscriber still
	// receives (empty) per-epoch diffs but never the facts.
	Preds []string
	// Buffer is the diff channel capacity (<= 0 selects
	// DefaultSubscriptionBuffer). A commit finding the buffer full
	// disconnects the subscription with a *SlowConsumerError.
	Buffer int
}

// Subscription is one live view subscription. Receive from C until it
// closes, then consult Err: nil after Close, a *SlowConsumerError after
// a backpressure disconnect, or the maintenance failure that tore down
// every subscription.
type Subscription struct {
	// C delivers one ViewDiff per state-changing commit epoch, in
	// order. It closes when the subscription ends.
	C <-chan ViewDiff
	// Epoch is the commit epoch the subscription started at: the first
	// diff delivered (if any commit follows) carries Epoch+1.
	Epoch uint64

	db     *Database
	id     uint64
	ch     chan ViewDiff
	preds  map[string]bool
	buffer int

	mu     sync.Mutex
	err    error
	closed bool
}

// Err reports why the subscription ended; nil while it is live or after
// an explicit Close.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close detaches the subscription and closes C. Idempotent; safe
// concurrently with commits.
func (s *Subscription) Close() {
	s.db.subMu.Lock()
	delete(s.db.subs, s.id)
	s.db.subMu.Unlock()
	s.finish(nil)
}

// finish ends the subscription once, recording the terminal error.
func (s *Subscription) finish(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.err = err
	close(s.ch)
}

// SubscribeView registers a live subscription on the maintained derived
// instance. It requires WithIncremental (ErrNotIncremental otherwise).
func (db *Database) SubscribeView(opts SubscribeOptions) (*Subscription, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if !db.incremental {
		return nil, ErrNotIncremental
	}
	if db.maintErr != nil {
		return nil, fmt.Errorf("logres: incremental maintenance failed: %w", db.maintErr)
	}
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = DefaultSubscriptionBuffer
	}
	var preds map[string]bool
	if len(opts.Preds) > 0 {
		preds = map[string]bool{}
		for _, p := range opts.Preds {
			preds[types.Canon(p)] = true
		}
	}
	s := &Subscription{db: db, ch: make(chan ViewDiff, buffer), preds: preds, buffer: buffer}
	s.C = s.ch
	// Commits notify under the write lock, so registering under the read
	// lock pins the epoch: no diff between reading it and appearing in
	// the fan-out map can be missed or duplicated.
	s.Epoch = db.log.Epoch()
	db.subMu.Lock()
	db.subID++
	s.id = db.subID
	if db.subs == nil {
		db.subs = map[uint64]*Subscription{}
	}
	db.subs[s.id] = s
	db.subMu.Unlock()
	return s, nil
}

// Subscribers reports the number of live subscriptions.
func (db *Database) Subscribers() int {
	db.subMu.Lock()
	defer db.subMu.Unlock()
	return len(db.subs)
}

// notifySubs fans one commit's view delta out to every subscription.
// Called under the write lock (after the commit published), so diffs
// are delivered in epoch order. Sends never block: a full buffer
// disconnects that subscriber with a *SlowConsumerError.
func (db *Database) notifySubs(t Tracer, epoch uint64, vd *engine.ViewDelta) {
	db.subMu.Lock()
	defer db.subMu.Unlock()
	if len(db.subs) == 0 {
		return
	}
	delivered, dropped := 0, 0
	for id, s := range db.subs {
		diff := ViewDiff{Epoch: epoch, Adds: filterFacts(vd.Adds, s.preds), Removes: filterFacts(vd.Removes, s.preds)}
		select {
		case s.ch <- diff:
			delivered++
		default:
			delete(db.subs, id)
			dropped++
			s.finish(&SlowConsumerError{Epoch: epoch, Buffer: s.buffer})
		}
	}
	if t != nil {
		t.Event(obs.Event{Kind: obs.KindSubEmit, Stratum: -1, Round: int(epoch),
			Count: delivered, Total: dropped})
	}
}

// failSubs tears down every subscription with the maintenance error
// that made further exact diffs impossible.
func (db *Database) failSubs(err error) {
	db.subMu.Lock()
	defer db.subMu.Unlock()
	for id, s := range db.subs {
		delete(db.subs, id)
		s.finish(fmt.Errorf("logres: incremental maintenance failed: %w", err))
	}
}

func filterFacts(fs []Fact, preds map[string]bool) []Fact {
	if preds == nil {
		return fs
	}
	var out []Fact
	for _, f := range fs {
		if preds[f.Pred] {
			out = append(out, f)
		}
	}
	return out
}

// maintOptions is the engine configuration of the maintainer's private
// program: the database's evaluation settings (workers, shards,
// vectorize, budget — results are bit-identical across the parallelism
// axes) with observability and cancellation stripped. Maintenance runs
// after the commit landed; aborting it cannot un-commit — a budget
// abort just falls back to recomputation, and if that aborts too the
// fast path is disabled until a later rebuild succeeds. Its internal
// evaluations stay out of the caller's trace stream (the database
// emits one ivm.propagate event per commit instead).
func maintOptions(opts engine.Options) engine.Options {
	opts.Tracer = nil
	opts.Ctx = nil
	return opts
}

// maintFingerprint identifies the (R, S) pair a maintainer's program
// was compiled from, so commits that only move E propagate as deltas
// while rule/schema changes rebuild.
func maintFingerprint(st *module.State) string {
	var b strings.Builder
	b.WriteString(st.S.String())
	b.WriteByte('\n')
	for _, r := range st.R {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// maintInit (re)builds the maintenance state from the published state.
// Callers hold the write lock or are the sole owner (Open/Load).
func (db *Database) maintInit() error {
	if !db.incremental {
		return nil
	}
	prog, err := engine.Compile(db.st.S, db.st.R, maintOptions(db.opts))
	if err != nil {
		return err
	}
	m, err := engine.NewMaintainer(prog, db.st.E, db.st.Counter)
	if err != nil {
		return err
	}
	db.maint, db.maintFP, db.maintErr = m, maintFingerprint(db.st), nil
	return nil
}

// maintRead returns the maintained full derived set and the oid counter
// a from-scratch evaluation would have left, when the incremental fast
// path can serve a read. Callers hold the read lock; the returned set
// is frozen.
func (db *Database) maintRead() (*engine.FactSet, int64, bool) {
	if db.maint == nil || db.maintErr != nil {
		return nil, 0, false
	}
	return db.maint.Full(), db.maint.Counter(), true
}

// maintDeferUsable reports whether commit-time deferred validation can
// run: the maintainer is healthy and synced to the published state's
// program, so a staged propagation plus an audit of the maintained set
// is equivalent to the from-scratch validation Apply would perform.
// Callers hold the write lock.
func (db *Database) maintDeferUsable() bool {
	return db.incremental && db.maint != nil && db.maintErr == nil &&
		maintFingerprint(db.st) == db.maintFP
}

// maintValidate audits the maintained full set after a staged update:
// Definition 4 consistency plus the passive constraints — exactly the
// checks State.Instance performs on the scratch path, against the
// byte-identical maintained set. With no class declarations in scope
// the audit decomposes per tuple (clause (ρ) is the only one with
// content, typing is tuple-local, and deletions cannot invalidate
// anything), so it costs O(changed facts); class machinery falls back
// to the full-instance audit.
func (db *Database) maintValidate(s *types.Schema, vd *engine.ViewDelta) error {
	if len(s.NamesOf(types.DeclClass)) == 0 {
		in := instance.New(s)
		for _, f := range vd.Adds {
			if s.IsFunction(f.Pred) {
				continue // not audited by CheckConsistency either
			}
			if err := in.CheckTuple(f.Pred, f.Tuple); err != nil {
				return fmt.Errorf("module: instance inconsistent: %w", err)
			}
		}
	} else {
		in := engine.ToInstance(db.maint.Full(), s, db.maint.Counter())
		if err := in.CheckConsistency(); err != nil {
			return fmt.Errorf("module: instance inconsistent: %w", err)
		}
	}
	return db.maint.CheckDenials()
}

// commitSerialStaged commits a deferred-validation serial application
// (module.ApplyDeferred): the extensional delta is staged through the
// maintainer first, the maintained instance is audited, and only then
// does the commit land — on rejection or a WAL failure the staged
// update rolls back and the database is untouched. The maintainer ends
// the commit already synced, so the usual post-publish maintenance
// hook is skipped and subscribers are notified directly.
func (db *Database) commitSerialStaged(opts engine.Options, next *module.State) error {
	t := opts.Tracer
	if next == db.st {
		return nil
	}
	adds, removes := diffFrozen(db.st.E, next.E)
	start := time.Now()
	vd, rollback, uerr := db.maint.UpdateStaged(adds, removes, next.E, next.Counter)
	if uerr != nil {
		// Propagation failed (e.g. budget abort mid-update): the
		// maintainer is inconsistent. Validate the scratch way and let
		// the post-commit hook rebuild it.
		db.maintErr = uerr
		if _, _, verr := next.Instance(opts); verr != nil {
			return fmt.Errorf("module: rejected: %w", verr)
		}
		return db.commitSerial(t, next)
	}
	if verr := db.maintValidate(next.S, vd); verr != nil {
		rollback()
		return fmt.Errorf("module: rejected: %w", verr)
	}
	if err := db.walAppendReplace(t, db.log.Epoch()+1, next); err != nil {
		rollback()
		return err
	}
	db.publish(next)
	db.log.Record(engine.Footprint{Universal: true})
	db.maybeCompact()
	epoch := db.log.Epoch()
	if t != nil {
		t.Event(obs.Event{Kind: obs.KindIVMPropagate, Stratum: -1, Round: int(epoch),
			Count: len(vd.Adds) + len(vd.Removes), Total: db.maint.Full().TotalSize(),
			Duration: time.Since(start)})
	}
	db.notifySubs(t, epoch, vd)
	return nil
}

// maintAfterDelta propagates a fact-level commit (the concurrent fast
// and merge paths) through the maintenance state. Called under the
// write lock after the commit published and recorded its epoch.
func (db *Database) maintAfterDelta(t Tracer, adds, removes []Fact) {
	if !db.incremental {
		return
	}
	epoch := db.log.Epoch()
	if db.maint == nil || db.maintErr != nil {
		db.maintRebuild(t, epoch, "recover")
		return
	}
	db.maintPropagate(t, epoch, adds, removes)
}

// maintAfterReplace handles whole-state commits (serial applications,
// rule/schema-changing concurrent commits): when the rules and schema
// are unchanged the commit reduces to an extensional delta and
// propagates; otherwise the maintenance state is rebuilt against the
// new program. prev is the state published before the commit.
func (db *Database) maintAfterReplace(t Tracer, prev *module.State) {
	if !db.incremental {
		return
	}
	epoch := db.log.Epoch()
	if db.maint != nil && db.maintErr == nil && maintFingerprint(db.st) == db.maintFP {
		adds, removes := diffFrozen(prev.E, db.st.E)
		db.maintPropagate(t, epoch, adds, removes)
		return
	}
	db.maintRebuild(t, epoch, "replace")
}

// maintAfterRegister covers module registrations: the commit epoch
// advanced but (E, R, S) did not, so subscribers get their per-epoch
// (empty) diff and the maintenance state is untouched.
func (db *Database) maintAfterRegister(t Tracer) {
	if !db.incremental {
		return
	}
	db.notifySubs(t, db.log.Epoch(), &engine.ViewDelta{})
}

// maintPropagate runs one incremental update and fans the exact diff
// out; a propagation error falls back to a rebuild (always correct).
func (db *Database) maintPropagate(t Tracer, epoch uint64, adds, removes []Fact) {
	start := time.Now()
	vd, err := db.maint.Update(adds, removes, db.st.E, db.st.Counter)
	if err != nil {
		db.maintRebuild(t, epoch, "fallback: "+err.Error())
		return
	}
	if t != nil {
		t.Event(obs.Event{Kind: obs.KindIVMPropagate, Stratum: -1, Round: int(epoch),
			Count: len(vd.Adds) + len(vd.Removes), Total: db.maint.Full().TotalSize(),
			Duration: time.Since(start)})
	}
	db.notifySubs(t, epoch, vd)
}

// maintRebuild recomputes the maintenance state from scratch and diffs
// the old and new full sets so subscribers still see the exact change.
// An unrecoverable rebuild (the new state's program fails to evaluate)
// disables the fast path and fails every subscription — the commit
// itself already landed and is unaffected.
func (db *Database) maintRebuild(t Tracer, epoch uint64, reason string) {
	var oldFull *engine.FactSet
	if db.maint != nil {
		oldFull = db.maint.Full()
	}
	start := time.Now()
	if err := db.maintInit(); err != nil {
		db.maint, db.maintErr = nil, err
		db.failSubs(err)
		return
	}
	if t != nil {
		t.Event(obs.Event{Kind: obs.KindIVMRebuild, Stratum: -1, Round: int(epoch),
			Detail: reason, Duration: time.Since(start)})
	}
	vd := &engine.ViewDelta{}
	if oldFull == nil {
		oldFull = engine.NewFactSet()
	}
	vd.Adds, vd.Removes = diffFrozen(oldFull, db.maint.Full())
	sortFacts(vd.Adds)
	sortFacts(vd.Removes)
	db.notifySubs(t, epoch, vd)
}

// diffFrozen computes the fact-level difference between two fact sets
// (predicate union, membership check per fact).
func diffFrozen(before, after *engine.FactSet) (adds, removes []Fact) {
	for _, p := range after.Preds() {
		for _, f := range after.Facts(p) {
			if !before.Has(f) {
				adds = append(adds, f)
			}
		}
	}
	for _, p := range before.Preds() {
		for _, f := range before.Facts(p) {
			if !after.Has(f) {
				removes = append(removes, f)
			}
		}
	}
	return adds, removes
}

func sortFacts(fs []Fact) {
	sort.Slice(fs, func(i, j int) bool { return fs[i].Key() < fs[j].Key() })
}
