package logres

import (
	"bytes"
	"strings"
	"testing"
)

// Tests of the §1/§5 features: parametric rule semantics, the module
// library ("methods"), and the explain facility.

func TestNonInflationaryModule(t *testing.T) {
	db, err := Open(`
associations
  SEED = (k: integer);
  ONCE = (k: integer);
  BLOCKER = (k: integer);
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`
mode ridv.
rules
  seed(k: 1).
end.
`); err != nil {
		t.Fatal(err)
	}
	// Under the non-inflationary semantics, `once` does not survive the
	// appearance of its blocker.
	if _, err := db.Exec(`
mode ridv.
semantics noninflationary.
rules
  once(k: X) <- seed(k: X), not blocker(k: X).
  blocker(k: X) <- seed(k: X).
end.
`); err != nil {
		t.Fatal(err)
	}
	if n := db.EDBCount("once"); n != 0 {
		t.Fatalf("once = %d, want 0 under non-inflationary semantics", n)
	}
	if n := db.EDBCount("blocker"); n != 1 {
		t.Fatalf("blocker = %d", n)
	}
}

func TestWithNonInflationaryOption(t *testing.T) {
	db, err := Open(`
associations
  SEED = (k: integer);
  FLIP = (k: integer);
`, WithNonInflationary(true), WithMaxSteps(50))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`
mode ridv.
rules
  seed(k: 1).
end.
`); err != nil {
		t.Fatal(err)
	}
	// The oscillating program has no fixpoint: undefined.
	_, err = db.Exec(`
mode ridv.
rules
  flip(k: X) <- seed(k: X), not flip(k: X).
end.
`)
	if err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Fatalf("oscillation not reported: %v", err)
	}
}

func TestModuleLibraryThroughAPI(t *testing.T) {
	db, err := Open(`
domains NAME = string;
associations
  ROMAN = (name: NAME);
  ITALIAN = (name: NAME);
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(`
module promote.
mode ridv.
rules
  italian(name: X) <- roman(name: X).
end.
`); err != nil {
		t.Fatal(err)
	}
	if err := db.Register(`
module census.
rules
goal
  ?- italian(name: X).
end.
`); err != nil {
		t.Fatal(err)
	}
	if got := db.Modules(); len(got) != 2 || got[0] != "promote" {
		t.Fatalf("modules = %v", got)
	}
	if _, err := db.Exec(`
mode ridv.
rules
  roman(name: "ugo").
end.
`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Call("promote"); err != nil {
		t.Fatal(err)
	}
	if db.EDBCount("italian") != 1 {
		t.Fatal("promote did not run")
	}
	res, err := db.Call("census")
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer == nil || len(res.Answer.Rows) != 1 {
		t.Fatalf("census answer = %+v", res.Answer)
	}
	if _, err := db.Call("nosuch"); err == nil {
		t.Fatal("unknown module accepted")
	}
}

func TestLibrarySurvivesSnapshot(t *testing.T) {
	db, err := Open(`associations R = (k: integer);`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(`
module fill.
mode ridv.
rules
  r(k: 7).
end.
`); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Modules(); len(got) != 1 || got[0] != "fill" {
		t.Fatalf("library lost: %v", got)
	}
	if _, err := db2.Call("fill"); err != nil {
		t.Fatal(err)
	}
	if db2.EDBCount("r") != 1 {
		t.Fatal("restored module does not run")
	}
}

func TestExplain(t *testing.T) {
	db, err := Open(`
classes
  PERSON = (name: string);
  STUDENT = (PERSON, school: string);
  STUDENT isa PERSON;
associations
  INTAKE = (name: NAME);
domains NAME = string;
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`
mode ridv.
rules
  intake(name: "ann").
end.
`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`
mode radi.
rules
  student(self: S, name: N, school: "polimi") <- intake(name: N).
end.
`); err != nil {
		t.Fatal(err)
	}
	out, err := db.Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stratified", "[generated]", "[invents oids]", "fired", "oids invented"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	db, err := Open(`associations R = (k: integer);`)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			for i := 0; i < 10; i++ {
				_, err := db.Exec(`
mode ridv.
rules
  r(k: ` + string(rune('0'+g)) + `).
end.
`)
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
		go func() {
			for i := 0; i < 10; i++ {
				if _, err := db.Query(`?- r(k: X).`); err != nil {
					done <- err
					return
				}
				_ = db.EDBCount("r")
				_ = db.RuleCount()
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if n := db.EDBCount("r"); n != 4 {
		t.Fatalf("r = %d, want 4", n)
	}
}
