package logres

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"testing"

	"logres/internal/hooks"
	"logres/internal/storage"
)

const durableSchema = `
associations
  Q0 = (x: integer);
  Q1 = (x: integer);
  Q2 = (x: integer);
  Q3 = (x: integer);
`

func durableMod(pred string, v int) string {
	return fmt.Sprintf("mode ridv.\nrules\n  %s(x: %d).\nend.\n", pred, v)
}

// ---------------------------------------------------------------------------
// Reopen equivalence: recovery reproduces Save bytes exactly
// ---------------------------------------------------------------------------

func TestDurableReopenReproducesState(t *testing.T) {
	dir := t.TempDir()
	db, rec, err := OpenDurable(durableSchema, Durability{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatalf("fresh directory reported a recovery: %+v", rec)
	}
	if !db.Durable() {
		t.Fatal("OpenDurable database is not durable")
	}

	// Exercise every commit shape: serial data commit, optimistic delta
	// commit, rule-adding replacement, module registration, a serial
	// call of the registered module, and materialization.
	if _, err := db.Exec(durableMod("q0", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecConcurrent(durableMod("q1", 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("mode radv.\nrules\n  q2(x: X) <- q0(x: X).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	if err := db.Register("module fill.\nmode ridv.\nrules\n  q3(x: 7).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Call("fill"); err != nil {
		t.Fatal(err)
	}
	if err := db.Materialize(); err != nil {
		t.Fatal(err)
	}
	want := saveBytesDurable(t, db)
	wantEpoch := db.CommitEpoch()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, rec2, err := OpenDurable(durableSchema, Durability{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rec2 == nil || rec2.Tail != nil {
		t.Fatalf("reopen recovery = %+v", rec2)
	}
	if got := saveBytesDurable(t, db2); !bytes.Equal(got, want) {
		t.Fatal("recovered Save bytes differ from pre-close state")
	}
	if db2.CommitEpoch() != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", db2.CommitEpoch(), wantEpoch)
	}
	if rep := db2.Recovery(); rep == nil || rep.Epoch != wantEpoch {
		t.Fatalf("Recovery() = %+v", rep)
	}
	// The recovered library works.
	if _, err := db2.Call("fill"); err != nil {
		t.Fatal(err)
	}
	// The recovered database keeps committing durably.
	if _, err := db2.ExecConcurrent(durableMod("q0", 50)); err != nil {
		t.Fatal(err)
	}
}

func saveBytesDurable(t *testing.T, db *Database) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDurableStatusAndSync(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(durableSchema, Durability{Dir: dir, Fsync: FsyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(durableMod("q0", 1)); err != nil {
		t.Fatal(err)
	}
	st, ok := db.Durability()
	if !ok || st.Dir != dir || st.Epoch != 1 || st.WALRecords != 1 || st.Fsync != FsyncInterval {
		t.Fatalf("Durability() = %+v, %v", st, ok)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	// Non-durable databases answer negatively but never error.
	mem, err := Open(durableSchema)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Durable() {
		t.Fatal("in-memory database claims durability")
	}
	if _, ok := mem.Durability(); ok {
		t.Fatal("in-memory database has a durability status")
	}
	if err := mem.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := mem.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.AsOf(0); err == nil {
		t.Fatal("AsOf on an in-memory database succeeded")
	}
}

// ---------------------------------------------------------------------------
// Point-in-time reads
// ---------------------------------------------------------------------------

func TestDurableAsOf(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(durableSchema, Durability{Dir: dir, Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var byEpoch [][]byte
	byEpoch = append(byEpoch, saveBytesDurable(t, db))
	for i := 0; i < 4; i++ {
		if _, err := db.Exec(durableMod("q0", i)); err != nil {
			t.Fatal(err)
		}
		byEpoch = append(byEpoch, saveBytesDurable(t, db))
	}
	for e := uint64(0); e <= 4; e++ {
		past, err := db.AsOf(e)
		if err != nil {
			t.Fatalf("AsOf(%d): %v", e, err)
		}
		if got := saveBytesDurable(t, past); !bytes.Equal(got, byEpoch[e]) {
			t.Fatalf("AsOf(%d) differs from the live state at that epoch", e)
		}
		// The past view answers queries.
		n, err := past.EDBCount("q0"), error(nil)
		if err != nil || n != int(e) {
			t.Fatalf("AsOf(%d) q0 count = %d", e, n)
		}
	}
	if _, err := db.AsOf(99); err == nil {
		t.Fatal("AsOf(future) succeeded")
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AsOf(1); !errors.Is(err, storage.ErrCompacted) {
		t.Fatalf("AsOf(pre-checkpoint) = %v, want ErrCompacted", err)
	}
}

func TestDurableAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(durableSchema, Durability{Dir: dir, Fsync: FsyncOff, CompactEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 7; i++ {
		if _, err := db.ExecConcurrent(durableMod("q0", i)); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := db.Durability()
	if st.CheckpointEpoch == 0 {
		t.Fatalf("no automatic compaction after 7 commits with CompactEvery=3: %+v", st)
	}
	if st.WALRecords >= 7 {
		t.Fatalf("WAL never truncated: %+v", st)
	}
	// Recovery from the compacted directory reproduces the state.
	want := saveBytesDurable(t, db)
	db.Close()
	db2, _, err := OpenDurable(durableSchema, Durability{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !bytes.Equal(saveBytesDurable(t, db2), want) {
		t.Fatal("post-compaction recovery differs")
	}
}

// ---------------------------------------------------------------------------
// Crash matrix: kill at every durability boundary under concurrency
// ---------------------------------------------------------------------------

// durableOps is the commutative workload of the crash matrix: each op
// adds one distinct fact to its own predicate, so the correct recovered
// state is determined by the SET of committed ops alone — an oracle
// that needs no ordering information from the concurrent run.
type durableOp struct {
	pred string
	val  int
}

func durableOps() []durableOp {
	var ops []durableOp
	for i := 0; i < 12; i++ {
		ops = append(ops, durableOp{pred: fmt.Sprintf("q%d", i%4), val: 1000 + i})
	}
	return ops
}

// runCrashWorkload applies ops concurrently against a durable database
// and returns which ops were acked (committed without error). The
// database is abandoned afterwards, as a crashed process would.
func runCrashWorkload(t *testing.T, dir string, workers, shards int) (acked map[durableOp]bool) {
	t.Helper()
	db, _, err := OpenDurable(durableSchema,
		Durability{Dir: dir, Fsync: FsyncAlways, CompactEvery: 5},
		WithWorkers(workers), WithShards(shards))
	if err != nil {
		// The injected fault can land in Create/Open itself.
		return map[durableOp]bool{}
	}
	ops := durableOps()
	acked = make(map[durableOp]bool, len(ops))
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, 4)
	for _, op := range ops {
		op := op
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := db.ExecConcurrent(durableMod(op.pred, op.val)); err == nil {
				mu.Lock()
				acked[op] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return acked
}

func TestDurableCrashMatrix(t *testing.T) {
	configs := []struct{ workers, shards int }{{1, 1}, {1, 4}, {4, 1}, {4, 4}}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("w%dxs%d", cfg.workers, cfg.shards), func(t *testing.T) {
			// Pass 1: count fault-point crossings in a clean run. Under
			// concurrency the exact count varies slightly run to run
			// (compaction timing); the clean count is a good census of
			// the interesting window.
			var mu sync.Mutex
			crossings := 0
			hooks.StorageFault = func(string) error {
				mu.Lock()
				crossings++
				mu.Unlock()
				return nil
			}
			runCrashWorkload(t, t.TempDir(), cfg.workers, cfg.shards)
			hooks.StorageFault = nil
			if crossings == 0 {
				t.Fatal("workload crossed no fault points")
			}

			// Pass 2: kill at every crossing. Stride 1 for the serial
			// config, wider for the rest to keep the matrix fast.
			stride := 1
			if cfg.workers*cfg.shards > 1 {
				stride = 3
			}
			for k := 0; k < crossings; k += stride {
				k := k
				dir := t.TempDir()
				n := 0
				var killed string
				hooks.StorageFault = func(point string) error {
					mu.Lock()
					defer mu.Unlock()
					n++
					if n-1 == k {
						killed = point
						return errors.New("injected crash")
					}
					return nil
				}
				acked := runCrashWorkload(t, dir, cfg.workers, cfg.shards)
				hooks.StorageFault = nil

				if ok, err := storage.Exists(dir); err != nil || !ok {
					if len(acked) != 0 {
						t.Fatalf("kill@%d(%s): acked %d ops but nothing durable", k, killed, len(acked))
					}
					continue
				}
				db, _, err := OpenDurable(durableSchema, Durability{Dir: dir})
				if err != nil {
					t.Fatalf("kill@%d(%s): recovery failed: %v", k, killed, err)
				}

				// Which ops' facts survived?
				present := map[durableOp]bool{}
				extra := 0
				for _, op := range durableOps() {
					ans, err := db.Query(fmt.Sprintf("?- %s(x: %d).", op.pred, op.val))
					if err != nil {
						t.Fatalf("kill@%d(%s): query: %v", k, killed, err)
					}
					if len(ans.Rows) > 0 {
						present[op] = true
						if !acked[op] {
							extra++
						}
					}
				}
				// Durability: every acked op survived the crash.
				for op := range acked {
					if !present[op] {
						t.Fatalf("kill@%d(%s): acked op %v lost", k, killed, op)
					}
				}
				// Atomicity: at most the single in-flight op may appear
				// beyond the acked set (WAL write completed, ack lost).
				if extra > 1 {
					t.Fatalf("kill@%d(%s): %d unacked ops surfaced", k, killed, extra)
				}

				// Exactness: the recovered Save bytes equal a serial
				// re-application of exactly the present ops.
				ref, err := Open(durableSchema)
				if err != nil {
					t.Fatal(err)
				}
				for _, op := range durableOps() {
					if present[op] {
						if _, err := ref.Exec(durableMod(op.pred, op.val)); err != nil {
							t.Fatal(err)
						}
					}
				}
				if !bytes.Equal(saveBytesDurable(t, db), saveBytesDurable(t, ref)) {
					t.Fatalf("kill@%d(%s): recovered state differs from the committed-set replay", k, killed)
				}
				db.Close()
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Real-process kill: re-exec the test binary and SIGKILL it mid-commit
// ---------------------------------------------------------------------------

// TestDurableKillProcess re-executes the test binary as a child that
// commits in a loop and self-SIGKILLs at a WAL boundary, then recovers
// the directory in this process — the end-to-end version of the
// in-process matrix (the page cache survives a process kill, so the
// unsynced suffix is still expected to be readable).
func TestDurableKillProcess(t *testing.T) {
	if os.Getenv("LOGRES_CRASH_CHILD") == "1" {
		crashChildMain(t)
		return
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "TestDurableKillProcess$")
	cmd.Env = append(os.Environ(), "LOGRES_CRASH_CHILD=1", "LOGRES_CRASH_DIR="+dir)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("child exited cleanly, expected SIGKILL; output:\n%s", out)
	}

	db, rec, err := OpenDurable(durableSchema, Durability{Dir: dir})
	if err != nil {
		t.Fatalf("recovery after real kill failed: %v\nchild output:\n%s", err, out)
	}
	defer db.Close()
	if rec == nil {
		t.Fatal("no recovery report after kill")
	}
	// The child acked epochs 1..5 before raising SIGKILL mid-commit of
	// the sixth; every acked epoch must have survived.
	if rec.Epoch < 5 {
		t.Fatalf("recovered epoch %d, child acked 5; report %+v\nchild output:\n%s", rec.Epoch, rec, out)
	}
	n := db.EDBCount("q0")
	if n != int(rec.Epoch) {
		t.Fatalf("recovered %d facts at epoch %d", n, rec.Epoch)
	}
}

// crashChildMain is the child side: commit five modules, then install a
// fault hook that SIGKILLs this process at the next WAL append — a real
// crash between two durability syscalls.
func crashChildMain(t *testing.T) {
	dir := os.Getenv("LOGRES_CRASH_DIR")
	db, _, err := OpenDurable(durableSchema, Durability{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatalf("child open: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := db.Exec(durableMod("q0", i)); err != nil {
			t.Fatalf("child exec: %v", err)
		}
	}
	hooks.StorageFault = func(point string) error {
		if point == "wal.fsync" {
			p, _ := os.FindProcess(os.Getpid())
			p.Kill()
			select {} // never observed: the signal lands first
		}
		return nil
	}
	_, _ = db.Exec(durableMod("q0", 99))
	t.Fatal("child survived its own SIGKILL")
}
