// Package client is the Go client of the logres-server HTTP/JSON data
// plane, plus the wire types the server and client share. The API is
// versioned under /v1:
//
//	GET    /v1/db                 list databases
//	PUT    /v1/db/{name}          create a database (CreateRequest)
//	GET    /v1/db/{name}          database info (DBInfo)
//	DELETE /v1/db/{name}          drop a database
//	POST   /v1/db/{name}/exec     apply a module (ExecRequest → ExecResponse)
//	POST   /v1/db/{name}/query    evaluate a goal (QueryRequest → NDJSON stream)
//	GET    /v1/db/{name}/instance stream the derived instance (NDJSON)
//	POST   /v1/db/{name}/register store a named module (RegisterRequest)
//	POST   /v1/db/{name}/subscribe live view diffs (SubscribeRequest → NDJSON stream)
//
// Errors carry a JSON ErrorResponse body whose Kind mirrors the
// engine's typed errors: optimistic commit conflicts map to 409 with
// both footprints, budget exhaustion to 422, client cancellation to
// 499, evaluation deadlines to 504 (see internal/server for the full
// table). Streaming responses are NDJSON: a QueryHeader line, then
// QueryChunk lines, then a QueryTrailer — an error mid-stream replaces
// the trailer with an {"error": …} line.
package client

import "time"

// CreateRequest creates a database under PUT /v1/db/{name}.
type CreateRequest struct {
	// Schema is the LOGRES schema source (domains / classes /
	// associations / functions sections).
	Schema string `json:"schema"`
	// Options configures the database; nil takes every default.
	Options *DBOptions `json:"options,omitempty"`
}

// DBOptions is the per-database configuration subset exposed on the
// wire; zero fields keep the engine defaults.
type DBOptions struct {
	// Workers and Shards configure parallel evaluation
	// (logres.WithWorkers / WithShards).
	Workers int `json:"workers,omitempty"`
	Shards  int `json:"shards,omitempty"`
	// MaxRetries bounds optimistic commit retries
	// (logres.WithMaxRetries): 0 = default, negative = fail on the
	// first conflict.
	MaxRetries int `json:"max_retries,omitempty"`
	// Budget bounds every evaluation (logres.WithBudget).
	Budget *BudgetSpec `json:"budget,omitempty"`
	// Incremental maintains the derived instance across commits
	// (logres.WithIncremental), enabling the subscribe endpoint.
	Incremental bool `json:"incremental,omitempty"`
}

// BudgetSpec is the wire form of logres.Budget.
type BudgetSpec struct {
	MaxRounds int `json:"max_rounds,omitempty"`
	MaxFacts  int `json:"max_facts,omitempty"`
	MaxOIDs   int `json:"max_oids,omitempty"`
	// TimeoutMS is the wall-clock bound per evaluation in milliseconds.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Timeout converts the wire form back to a duration.
func (b *BudgetSpec) Timeout() time.Duration { return time.Duration(b.TimeoutMS) * time.Millisecond }

// DBInfo describes one registered database (GET /v1/db/{name}).
type DBInfo struct {
	Name string `json:"name"`
	// Epoch is the commit epoch: the number of state-changing commits.
	Epoch uint64 `json:"epoch"`
	// Rules is the persistent rule count, Modules the stored module
	// library names.
	Rules   int      `json:"rules"`
	Modules []string `json:"modules,omitempty"`
	// Schema renders the current schema in LOGRES syntax.
	Schema string `json:"schema,omitempty"`
	// Incremental reports whether the database maintains its derived
	// instance incrementally (live subscriptions available).
	Incremental bool `json:"incremental,omitempty"`
	// Durability summarizes the database's write-ahead log; nil for an
	// in-memory database.
	Durability *DurabilityInfo `json:"durability,omitempty"`
	// Recovery describes the crash recovery that opened this database;
	// nil for fresh or in-memory databases.
	Recovery *RecoveryInfo `json:"recovery,omitempty"`
}

// DurabilityInfo is the wire form of a durable database's storage
// status (logres.DurabilityStatus).
type DurabilityInfo struct {
	// Fsync is the WAL sync policy ("always", "interval", "off").
	Fsync string `json:"fsync"`
	// Epoch is the durable commit epoch (the last WAL-acknowledged
	// commit), CheckpointEpoch the newest snapshot's epoch — the oldest
	// epoch AsOf queries can still reach.
	Epoch           uint64 `json:"epoch"`
	CheckpointEpoch uint64 `json:"checkpoint_epoch"`
	// WALRecords and WALBytes size the log since the last compaction.
	WALRecords int   `json:"wal_records"`
	WALBytes   int64 `json:"wal_bytes"`
}

// RecoveryInfo is the wire form of a recovery report: what opening the
// database's data directory found and repaired.
type RecoveryInfo struct {
	// SnapshotEpoch is the snapshot recovery started from; Epoch the
	// recovered commit epoch after replaying Replayed WAL records.
	SnapshotEpoch uint64 `json:"snapshot_epoch"`
	Epoch         uint64 `json:"epoch"`
	Replayed      int    `json:"replayed"`
	// TornTail describes the quarantined-and-truncated WAL suffix, if
	// the log had one.
	TornTail string `json:"torn_tail,omitempty"`
	// BadSnapshots lists snapshot files that failed verification and
	// were skipped in favor of an older one.
	BadSnapshots []string `json:"bad_snapshots,omitempty"`
}

// ListResponse is the body of GET /v1/db.
type ListResponse struct {
	Databases []string `json:"databases"`
}

// ExecRequest applies a module under POST /v1/db/{name}/exec. The
// default path is the optimistic concurrent one
// (ExecConcurrentContext): evaluation runs against a snapshot outside
// the write lock and commits via footprint validation, so requests
// touching disjoint predicates proceed in parallel.
type ExecRequest struct {
	// Module is the LOGRES module source.
	Module string `json:"module"`
	// Mode overrides the module's declared application mode
	// ("RIDI" … "RDDV", case-insensitive); empty honours the
	// declaration.
	Mode string `json:"mode,omitempty"`
	// Serial selects the write-locked serial path instead of the
	// optimistic one: no 409s, but applications serialize for their
	// whole evaluation and the commit records a universal footprint.
	Serial bool `json:"serial,omitempty"`
	// MaxRetries overrides the database's conflict retry bound for this
	// request only: 0 = inherit, negative = fail on the first conflict.
	MaxRetries int `json:"max_retries,omitempty"`
	// Profile asks the server for an EXPLAIN-ANALYZE-style Profile of
	// this application in the response.
	Profile bool `json:"profile,omitempty"`
}

// ExecResponse is a successful module application.
type ExecResponse struct {
	// Mode is the mode the module was applied with.
	Mode string `json:"mode"`
	// Answer holds goal bindings for data-invariant modes with a goal.
	Answer *Answer `json:"answer,omitempty"`
	// Epoch is the commit epoch after the application — unchanged for
	// read-only applications.
	Epoch uint64 `json:"epoch"`
	// Profile is the per-request profile when ExecRequest.Profile (or
	// ?profile=1) asked for one.
	Profile *Profile `json:"profile,omitempty"`
}

// Answer is a goal's result: variable names and deduplicated rows of
// their bindings rendered in LOGRES value syntax, in deterministic
// order.
type Answer struct {
	Vars []string   `json:"vars"`
	Rows [][]string `json:"rows"`
}

// QueryRequest evaluates a goal under POST /v1/db/{name}/query.
type QueryRequest struct {
	// Goal is the LOGRES goal source (`?- lit, … .`).
	Goal string `json:"goal"`
	// ChunkSize bounds the rows per streamed QueryChunk (<= 0 selects
	// the server default).
	ChunkSize int `json:"chunk_size,omitempty"`
	// AsOf evaluates the goal against the committed state at a past
	// commit epoch instead of the current one (durable databases only;
	// 0 queries the present). Epochs older than the last compaction
	// checkpoint are gone and rejected.
	AsOf uint64 `json:"as_of,omitempty"`
	// Profile asks the server for a Profile in the query trailer.
	Profile bool `json:"profile,omitempty"`
}

// QueryHeader is the first NDJSON line of a query response.
type QueryHeader struct {
	Vars []string `json:"vars"`
}

// QueryChunk is one NDJSON line of rows; a response carries zero or
// more chunks between header and trailer.
type QueryChunk struct {
	Rows [][]string `json:"rows"`
}

// QueryTrailer is the final NDJSON line of a complete query response.
type QueryTrailer struct {
	Done  bool `json:"done"`
	Total int  `json:"total"`
	// Profile is the per-request profile when QueryRequest.Profile (or
	// ?profile=1) asked for one.
	Profile *Profile `json:"profile,omitempty"`
}

// Profile is the wire form of a per-request profile — the
// EXPLAIN-ANALYZE-style account the server assembles when a request
// asks for profiling: where the time went (per-stratum wall clock, WAL
// sync waits, retry backoff), what the evaluation did (rounds,
// firings, delta curve, vectorized vs row dispatch), and what the
// optimistic commit path cost.
type Profile struct {
	// RequestID / TraceID identify the request the profile describes
	// (the X-Request-ID / traceparent values, minted server-side when
	// the client sent none).
	RequestID string `json:"request_id,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`
	// WallNS is the whole request's server-side wall clock; EvalNS the
	// committed evaluation's.
	WallNS int64 `json:"wall_ns"`
	EvalNS int64 `json:"eval_ns"`
	// Rounds and Firings total over the committed attempt; Facts is the
	// final fact count.
	Rounds  int `json:"rounds"`
	Firings int `json:"firings"`
	Facts   int `json:"facts"`
	// Strata describes the committed attempt, one entry per stratum.
	Strata []StratumProfile `json:"strata,omitempty"`
	// Retries counts optimistic re-evaluations; Conflicts holds one
	// entry per failed commit validation; BackoffNS is the total
	// conflict backoff slept.
	Retries   int               `json:"retries"`
	Conflicts []ConflictProfile `json:"conflicts,omitempty"`
	BackoffNS int64             `json:"backoff_ns,omitempty"`
	// CommitPath is how the winning commit installed its result
	// ("fast", "merge", "replace", "read-only").
	CommitPath string `json:"commit_path,omitempty"`
	// WAL accounting: appended records/bytes and the fsync waits this
	// request paid for.
	WALAppends    int   `json:"wal_appends,omitempty"`
	WALBytes      int64 `json:"wal_bytes,omitempty"`
	WALSyncs      int   `json:"wal_syncs,omitempty"`
	WALSyncWaitNS int64 `json:"wal_sync_wait_ns,omitempty"`
	// Abort carries the abort cause when the request failed mid-flight.
	Abort string `json:"abort,omitempty"`
}

// StratumProfile accounts for one stratum of the committed attempt.
type StratumProfile struct {
	Stratum int `json:"stratum"`
	// Mode is the evaluation mode the planner chose; Vectorized flags
	// the columnar path.
	Mode       string `json:"mode"`
	Vectorized bool   `json:"vectorized,omitempty"`
	Rounds     int    `json:"rounds"`
	WallNS     int64  `json:"wall_ns"`
	Firings    int    `json:"firings"`
	// Delta is the per-round delta curve.
	Delta []int `json:"delta,omitempty"`
	// Facts is the fact count when the stratum closed.
	Facts int `json:"facts"`
	// Kernels breaks down columnar kernel work (vectorized strata only).
	Kernels []KernelProfile `json:"kernels,omitempty"`
}

// KernelProfile is one columnar kernel's aggregate work in one stratum.
type KernelProfile struct {
	Kernel string `json:"kernel"`
	Calls  int    `json:"calls"`
	Rows   int    `json:"rows"`
}

// ConflictProfile is one failed optimistic-commit validation.
type ConflictProfile struct {
	Attempt    int    `json:"attempt"`
	Pred       string `json:"pred,omitempty"`
	Footprints string `json:"footprints,omitempty"`
}

// InstanceFact is one NDJSON line of GET /v1/db/{name}/instance: a
// fact of the derived instance rendered in LOGRES syntax.
type InstanceFact struct {
	Pred string `json:"pred"`
	Fact string `json:"fact"`
}

// RegisterRequest stores a named module in the database's library
// under POST /v1/db/{name}/register.
type RegisterRequest struct {
	Module string `json:"module"`
}

// SubscribeRequest opens a live view subscription under
// POST /v1/db/{name}/subscribe (incremental databases only). The
// response is a long-lived NDJSON stream: one SubscribeHeader line,
// then one DiffEvent line per state-changing commit epoch, in order
// with no gaps. The stream ends with an {"error": …} line when the
// subscription is torn down server-side (slow consumer, maintenance
// failure, server drain); a client that just hangs up gets no line.
type SubscribeRequest struct {
	// Preds restricts diffs to these predicates (empty = all); epochs
	// still arrive as empty DiffEvents when nothing subscribed changed.
	Preds []string `json:"preds,omitempty"`
	// Buffer is the server-side diff buffer (<= 0 selects the server
	// default). A commit finding it full disconnects the subscription
	// with a "slow_consumer" error line.
	Buffer int `json:"buffer,omitempty"`
}

// SubscribeHeader is the first NDJSON line of a subscription: the
// commit epoch the subscription is pinned at (the first DiffEvent, if
// any commit follows, carries Epoch+1) and the canonicalized predicate
// filter.
type SubscribeHeader struct {
	Epoch uint64   `json:"epoch"`
	Preds []string `json:"preds,omitempty"`
}

// DiffFact is one changed fact of a DiffEvent, rendered in LOGRES
// syntax like an InstanceFact.
type DiffFact struct {
	Pred string `json:"pred"`
	Fact string `json:"fact"`
}

// DiffEvent is one NDJSON line of a subscription stream: the exact
// fact-level difference of the derived instance across one commit
// epoch, each side sorted.
type DiffEvent struct {
	Epoch   uint64     `json:"epoch"`
	Adds    []DiffFact `json:"adds,omitempty"`
	Removes []DiffFact `json:"removes,omitempty"`
}

// FootprintJSON is the wire form of a predicate-level access set
// (conflict error bodies carry both sides' footprints).
type FootprintJSON struct {
	Reads     []string `json:"reads,omitempty"`
	Writes    []string `json:"writes,omitempty"`
	Universal bool     `json:"universal,omitempty"`
}

// Error kinds of ErrorResponse.Kind, mirroring the engine's typed
// errors.
const (
	KindInvalid   = "invalid"   // 400: parse/validation/rejection
	KindNotFound  = "not_found" // 404: unknown database
	KindExists    = "exists"    // 409: database already exists
	KindConflict  = "conflict"  // 409: optimistic commit conflict (footprints attached)
	KindBudget    = "budget"    // 422: budget axis exhausted
	KindCanceled  = "canceled"  // 499: request canceled by the client
	KindDeadline  = "deadline"  // 504: evaluation deadline exceeded
	KindPanic     = "panic"     // 500: evaluation panic (state untouched)
	KindInternal  = "internal"  // 500: server-side storage failure
	KindDraining  = "draining"  // 503: server is shutting down
	KindTransport = "transport" // client-side: malformed response
	// KindSlowConsumer ends a subscription stream whose consumer could
	// not keep up with the commit rate (the server-side buffer
	// overflowed); resubscribe with a larger SubscribeRequest.Buffer or
	// drain faster.
	KindSlowConsumer = "slow_consumer"
)

// ErrorResponse is the JSON body of every non-2xx data-plane response.
type ErrorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
	// Conflict payload (Kind == KindConflict): the first conflicting
	// predicate, the retry count, and both footprints.
	Pred    string         `json:"pred,omitempty"`
	Retries int            `json:"retries,omitempty"`
	Mine    *FootprintJSON `json:"mine,omitempty"`
	Theirs  *FootprintJSON `json:"theirs,omitempty"`
	// Budget payload (Kind == KindBudget): the exhausted axis.
	Axis string `json:"axis,omitempty"`
}
