package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestExecRetriesOn409 counts submissions against a fake server that
// conflicts twice before accepting.
func TestExecRetriesOn409(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusConflict)
			_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "lost", Kind: KindConflict})
			return
		}
		_ = json.NewEncoder(w).Encode(ExecResponse{Mode: "RIDV", Epoch: 3})
	}))
	defer ts.Close()

	c := New(ts.URL, WithConflictRetries(2), WithRetryBackoff(time.Microsecond, time.Millisecond))
	res, err := c.Exec(context.Background(), "db", "mode ridv.\nend.\n")
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 3 || calls.Load() != 3 {
		t.Fatalf("res = %+v after %d calls", res, calls.Load())
	}

	// With retries exhausted the conflict surfaces.
	calls.Store(0)
	c = New(ts.URL, WithConflictRetries(1), WithRetryBackoff(time.Microsecond, time.Millisecond))
	_, err = c.Exec(context.Background(), "db", "mode ridv.\nend.\n")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || !apiErr.IsConflict() {
		t.Fatalf("err = %v, want surfaced conflict", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}

	// Serial requests never retry: the serial path cannot conflict, so
	// a 409 would mean something else entirely.
	calls.Store(0)
	c = New(ts.URL, WithConflictRetries(5))
	_, err = c.ExecRequest(context.Background(), "db", ExecRequest{Module: "mode ridv.\nend.\n", Serial: true})
	if !errors.As(err, &apiErr) || calls.Load() != 1 {
		t.Fatalf("serial retried: err = %v, calls = %d", err, calls.Load())
	}
}

// TestClientBackoffClamped mirrors the server-side regression: huge
// attempt counts must not overflow the shift.
func TestClientBackoffClamped(t *testing.T) {
	c := New("http://x", WithRetryBackoff(5*time.Millisecond, 250*time.Millisecond))
	prev := time.Duration(0)
	for attempt := 0; attempt <= 200; attempt++ {
		d := c.backoff(attempt)
		if d <= 0 || d > 250*time.Millisecond {
			t.Fatalf("backoff(%d) = %v out of range", attempt, d)
		}
		if d < prev {
			t.Fatalf("backoff(%d) = %v < backoff(%d) = %v", attempt, d, attempt-1, prev)
		}
		prev = d
	}
	if c.backoff(100) != 250*time.Millisecond {
		t.Fatalf("backoff(100) = %v, want cap", c.backoff(100))
	}
}

func streamServer(body string) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_, _ = w.Write([]byte(body))
	}))
}

// TestQueryStreamTruncated: a stream that dies before the trailer is a
// transport error, not silent partial data.
func TestQueryStreamTruncated(t *testing.T) {
	ts := streamServer(`{"vars":["X"]}
{"rows":[["1"]]}
`)
	defer ts.Close()
	c := New(ts.URL)
	var rows int
	_, err := c.QueryStream(context.Background(), "db", QueryRequest{Goal: "?- p(x: X)."}, func(r [][]string) error {
		rows += len(r)
		return nil
	})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Resp.Kind != KindTransport {
		t.Fatalf("err = %v, want transport error", err)
	}
	if rows != 1 {
		t.Fatalf("rows before truncation = %d, want 1", rows)
	}
}

// TestQueryStreamErrorLine: a mid-stream error object surfaces as the
// typed APIError.
func TestQueryStreamErrorLine(t *testing.T) {
	ts := streamServer(`{"vars":["X"]}
{"rows":[["1"]]}
{"error":{"error":"budget: facts","kind":"budget","axis":"facts"}}
`)
	defer ts.Close()
	c := New(ts.URL)
	_, err := c.QueryStream(context.Background(), "db", QueryRequest{Goal: "?- p(x: X)."}, func([][]string) error {
		return nil
	})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Resp.Kind != KindBudget || apiErr.Resp.Axis != "facts" {
		t.Fatalf("err = %v, want budget error", err)
	}
}

// TestQueryStreamCallbackError: fn's error stops the stream and
// surfaces unchanged.
func TestQueryStreamCallbackError(t *testing.T) {
	ts := streamServer(`{"vars":["X"]}
{"rows":[["1"]]}
{"done":true,"total":1}
`)
	defer ts.Close()
	c := New(ts.URL)
	sentinel := errors.New("stop")
	_, err := c.QueryStream(context.Background(), "db", QueryRequest{Goal: "?- p(x: X)."}, func([][]string) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

// TestResponseErrorNonJSON: a non-JSON error body (a proxy, a panic
// page) still yields a usable APIError.
func TestResponseErrorNonJSON(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer ts.Close()
	c := New(ts.URL)
	_, err := c.List(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadGateway || apiErr.Resp.Kind != KindTransport {
		t.Fatalf("err = %v", err)
	}
	if apiErr.Resp.Error != "bad gateway" {
		t.Fatalf("message = %q", apiErr.Resp.Error)
	}
}

// TestDrainingRetryKnob counts submissions against a fake server that
// is draining twice before accepting, and checks that every verb —
// JSON and streaming — honours the knob.
func TestDrainingRetryKnob(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "server is shutting down", Kind: KindDraining})
			return
		}
		_ = json.NewEncoder(w).Encode(ExecResponse{Mode: "RIDV", Epoch: 3})
	}))
	defer ts.Close()

	c := New(ts.URL, WithDrainingRetries(3), WithRetryBackoff(time.Microsecond, time.Millisecond))
	res, err := c.Exec(context.Background(), "db", "mode ridv.\nend.\n")
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 3 || calls.Load() != 3 {
		t.Fatalf("res = %+v after %d calls", res, calls.Load())
	}

	// Without the knob the 503 surfaces typed, with the Retry-After
	// hint parsed off the header.
	calls.Store(0)
	c = New(ts.URL)
	_, err = c.Exec(context.Background(), "db", "mode ridv.\nend.\n")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || !apiErr.IsDraining() {
		t.Fatalf("err = %v, want surfaced draining", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", calls.Load())
	}

	// Retries exhausted: bounded, then surfaced.
	calls.Store(0)
	c = New(ts.URL, WithDrainingRetries(1), WithRetryBackoff(time.Microsecond, time.Millisecond))
	_, err = c.Exec(context.Background(), "db", "mode ridv.\nend.\n")
	if !errors.As(err, &apiErr) || !apiErr.IsDraining() || calls.Load() != 2 {
		t.Fatalf("err = %v after %d calls, want draining after 2", err, calls.Load())
	}
}

// TestDrainingRetryAfterParsed checks the header forms: seconds parse,
// garbage and negatives are ignored.
func TestDrainingRetryAfterParsed(t *testing.T) {
	for _, tc := range []struct {
		header string
		want   time.Duration
	}{
		{"2", 2 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"soon", 0},
		{"", 0},
	} {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if tc.header != "" {
				w.Header().Set("Retry-After", tc.header)
			}
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "draining", Kind: KindDraining})
		}))
		_, err := New(ts.URL).Info(context.Background(), "db")
		ts.Close()
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("header %q: err = %v", tc.header, err)
		}
		if apiErr.RetryAfter != tc.want {
			t.Fatalf("header %q: RetryAfter = %v, want %v", tc.header, apiErr.RetryAfter, tc.want)
		}
	}
}

// TestDrainingWaitClamped: the server hint never stalls the caller
// past the backoff cap, and beats the schedule when smaller.
func TestDrainingWaitClamped(t *testing.T) {
	c := New("http://x", WithDrainingRetries(5),
		WithRetryBackoff(time.Millisecond, 8*time.Millisecond))
	hint := &APIError{Status: http.StatusServiceUnavailable,
		Resp: ErrorResponse{Kind: KindDraining}, RetryAfter: time.Hour}
	if wait, ok := c.drainingWait(hint, 0); !ok || wait != 8*time.Millisecond {
		t.Fatalf("huge hint: wait = %v, %v", wait, ok)
	}
	hint.RetryAfter = 0
	if wait, ok := c.drainingWait(hint, 1); !ok || wait != 2*time.Millisecond {
		t.Fatalf("no hint: wait = %v, %v", wait, ok)
	}
	if _, ok := c.drainingWait(hint, 5); ok {
		t.Fatal("retry budget not bounded")
	}
	conflict := &APIError{Status: http.StatusConflict, Resp: ErrorResponse{Kind: KindConflict}}
	if _, ok := c.drainingWait(conflict, 0); ok {
		t.Fatal("non-draining error retried")
	}
}
