package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestExecRetriesOn409 counts submissions against a fake server that
// conflicts twice before accepting.
func TestExecRetriesOn409(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusConflict)
			_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "lost", Kind: KindConflict})
			return
		}
		_ = json.NewEncoder(w).Encode(ExecResponse{Mode: "RIDV", Epoch: 3})
	}))
	defer ts.Close()

	c := New(ts.URL, WithConflictRetries(2), WithRetryBackoff(time.Microsecond, time.Millisecond))
	res, err := c.Exec(context.Background(), "db", "mode ridv.\nend.\n")
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 3 || calls.Load() != 3 {
		t.Fatalf("res = %+v after %d calls", res, calls.Load())
	}

	// With retries exhausted the conflict surfaces.
	calls.Store(0)
	c = New(ts.URL, WithConflictRetries(1), WithRetryBackoff(time.Microsecond, time.Millisecond))
	_, err = c.Exec(context.Background(), "db", "mode ridv.\nend.\n")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || !apiErr.IsConflict() {
		t.Fatalf("err = %v, want surfaced conflict", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}

	// Serial requests never retry: the serial path cannot conflict, so
	// a 409 would mean something else entirely.
	calls.Store(0)
	c = New(ts.URL, WithConflictRetries(5))
	_, err = c.ExecRequest(context.Background(), "db", ExecRequest{Module: "mode ridv.\nend.\n", Serial: true})
	if !errors.As(err, &apiErr) || calls.Load() != 1 {
		t.Fatalf("serial retried: err = %v, calls = %d", err, calls.Load())
	}
}

// TestClientBackoffClamped mirrors the server-side regression: huge
// attempt counts must not overflow the shift.
func TestClientBackoffClamped(t *testing.T) {
	c := New("http://x", WithRetryBackoff(5*time.Millisecond, 250*time.Millisecond))
	prev := time.Duration(0)
	for attempt := 0; attempt <= 200; attempt++ {
		d := c.backoff(attempt)
		if d <= 0 || d > 250*time.Millisecond {
			t.Fatalf("backoff(%d) = %v out of range", attempt, d)
		}
		if d < prev {
			t.Fatalf("backoff(%d) = %v < backoff(%d) = %v", attempt, d, attempt-1, prev)
		}
		prev = d
	}
	if c.backoff(100) != 250*time.Millisecond {
		t.Fatalf("backoff(100) = %v, want cap", c.backoff(100))
	}
}

func streamServer(body string) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_, _ = w.Write([]byte(body))
	}))
}

// TestQueryStreamTruncated: a stream that dies before the trailer is a
// transport error, not silent partial data.
func TestQueryStreamTruncated(t *testing.T) {
	ts := streamServer(`{"vars":["X"]}
{"rows":[["1"]]}
`)
	defer ts.Close()
	c := New(ts.URL)
	var rows int
	_, err := c.QueryStream(context.Background(), "db", QueryRequest{Goal: "?- p(x: X)."}, func(r [][]string) error {
		rows += len(r)
		return nil
	})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Resp.Kind != KindTransport {
		t.Fatalf("err = %v, want transport error", err)
	}
	if rows != 1 {
		t.Fatalf("rows before truncation = %d, want 1", rows)
	}
}

// TestQueryStreamErrorLine: a mid-stream error object surfaces as the
// typed APIError.
func TestQueryStreamErrorLine(t *testing.T) {
	ts := streamServer(`{"vars":["X"]}
{"rows":[["1"]]}
{"error":{"error":"budget: facts","kind":"budget","axis":"facts"}}
`)
	defer ts.Close()
	c := New(ts.URL)
	_, err := c.QueryStream(context.Background(), "db", QueryRequest{Goal: "?- p(x: X)."}, func([][]string) error {
		return nil
	})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Resp.Kind != KindBudget || apiErr.Resp.Axis != "facts" {
		t.Fatalf("err = %v, want budget error", err)
	}
}

// TestQueryStreamCallbackError: fn's error stops the stream and
// surfaces unchanged.
func TestQueryStreamCallbackError(t *testing.T) {
	ts := streamServer(`{"vars":["X"]}
{"rows":[["1"]]}
{"done":true,"total":1}
`)
	defer ts.Close()
	c := New(ts.URL)
	sentinel := errors.New("stop")
	_, err := c.QueryStream(context.Background(), "db", QueryRequest{Goal: "?- p(x: X)."}, func([][]string) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

// TestResponseErrorNonJSON: a non-JSON error body (a proxy, a panic
// page) still yields a usable APIError.
func TestResponseErrorNonJSON(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer ts.Close()
	c := New(ts.URL)
	_, err := c.List(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadGateway || apiErr.Resp.Kind != KindTransport {
		t.Fatalf("err = %v", err)
	}
	if apiErr.Resp.Error != "bad gateway" {
		t.Fatalf("message = %q", apiErr.Resp.Error)
	}
}
