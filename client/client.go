package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to one logres-server. The zero retry configuration
// surfaces the first 409 as an *APIError; WithConflictRetries makes the
// client re-submit conflicted applications with capped exponential
// backoff, mirroring the server-side retry loop for callers that would
// rather wait than handle conflicts themselves.
type Client struct {
	base            string
	hc              *http.Client
	conflictRetries int
	drainingRetries int
	retryBase       time.Duration
	retryMax        time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithConflictRetries makes Exec re-submit a module whose application
// failed with 409 (optimistic commit conflict) up to n more times,
// sleeping a capped exponential backoff between submissions. The
// server already retries internally up to its own budget; this knob is
// the second line for workloads that prefer eventual success over a
// surfaced conflict. n <= 0 disables client-side retries (the
// default).
func WithConflictRetries(n int) Option {
	return func(c *Client) { c.conflictRetries = n }
}

// WithDrainingRetries makes every request re-submit after a 503 with
// kind "draining" (the server is shutting down — usually one instance
// behind a balancer rolling over) up to n more times. The wait between
// submissions honours the server's Retry-After hint, clamped into the
// client's backoff schedule so a large hint cannot stall the caller
// beyond the configured cap. n <= 0 disables draining retries (the
// default), surfacing the 503 as an *APIError; IsDraining identifies
// it.
func WithDrainingRetries(n int) Option {
	return func(c *Client) { c.drainingRetries = n }
}

// WithRetryBackoff overrides the client retry backoff schedule (base
// doubling up to max). Zero values keep the defaults (5ms … 250ms).
func WithRetryBackoff(base, max time.Duration) Option {
	return func(c *Client) {
		if base > 0 {
			c.retryBase = base
		}
		if max > 0 {
			c.retryMax = max
		}
	}
}

// New returns a client for the server at baseURL (e.g.
// "http://127.0.0.1:8440").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:      strings.TrimRight(baseURL, "/"),
		hc:        http.DefaultClient,
		retryBase: 5 * time.Millisecond,
		retryMax:  250 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx data-plane response: the HTTP status plus the
// decoded ErrorResponse body.
type APIError struct {
	Status int
	Resp   ErrorResponse
	// RetryAfter is the server's Retry-After hint (zero when absent) —
	// draining responses carry one.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("logres-server: %d %s: %s", e.Status, e.Resp.Kind, e.Resp.Error)
}

// IsConflict reports whether the error is an optimistic commit
// conflict (409 with kind "conflict").
func (e *APIError) IsConflict() bool {
	return e.Status == http.StatusConflict && e.Resp.Kind == KindConflict
}

// IsDraining reports whether the error is the server's shutdown gate
// (503 with kind "draining").
func (e *APIError) IsDraining() bool {
	return e.Status == http.StatusServiceUnavailable && e.Resp.Kind == KindDraining
}

// Create creates a database named name over schema; opts may be nil.
func (c *Client) Create(ctx context.Context, name, schema string, opts *DBOptions) error {
	var info DBInfo
	return c.doJSON(ctx, http.MethodPut, c.dbURL(name), CreateRequest{Schema: schema, Options: opts}, &info)
}

// Drop removes a database.
func (c *Client) Drop(ctx context.Context, name string) error {
	return c.doJSON(ctx, http.MethodDelete, c.dbURL(name), nil, nil)
}

// List names the registered databases.
func (c *Client) List(ctx context.Context) ([]string, error) {
	var resp ListResponse
	if err := c.doJSON(ctx, http.MethodGet, c.base+"/v1/db", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Databases, nil
}

// Info describes one database.
func (c *Client) Info(ctx context.Context, name string) (*DBInfo, error) {
	var info DBInfo
	if err := c.doJSON(ctx, http.MethodGet, c.dbURL(name), nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Exec applies a module through the optimistic concurrent path with
// the module's declared mode, honouring the client's conflict-retry
// knob.
func (c *Client) Exec(ctx context.Context, name, module string) (*ExecResponse, error) {
	return c.ExecRequest(ctx, name, ExecRequest{Module: module})
}

// ExecRequest applies a module with full request control (mode
// override, serial path, per-request retry bound). 409 responses are
// re-submitted per WithConflictRetries unless req.Serial is set (the
// serial path cannot conflict).
func (c *Client) ExecRequest(ctx context.Context, name string, req ExecRequest) (*ExecResponse, error) {
	url := c.dbURL(name) + "/exec"
	for attempt := 0; ; attempt++ {
		var resp ExecResponse
		err := c.doJSON(ctx, http.MethodPost, url, req, &resp)
		if err == nil {
			return &resp, nil
		}
		apiErr, ok := err.(*APIError)
		if !ok || !apiErr.IsConflict() || req.Serial || attempt >= c.conflictRetries {
			return nil, err
		}
		if err := sleepCtx(ctx, c.backoff(attempt)); err != nil {
			return nil, err
		}
	}
}

// backoff returns the capped exponential client backoff for an
// attempt; doubling stops at the cap so large retry budgets cannot
// overflow the shift (the same clamp the server's commit loop uses).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.retryBase
	for i := 0; i < attempt; i++ {
		d <<= 1
		if d >= c.retryMax {
			return c.retryMax
		}
	}
	return d
}

// Query evaluates a goal and collects the full streamed answer.
func (c *Client) Query(ctx context.Context, name, goal string) (*Answer, error) {
	ans := &Answer{}
	vars, err := c.QueryStream(ctx, name, QueryRequest{Goal: goal}, func(rows [][]string) error {
		ans.Rows = append(ans.Rows, rows...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	ans.Vars = vars
	return ans, nil
}

// QueryStream evaluates a goal and hands each streamed chunk of rows
// to fn as it arrives; it returns the goal's variable names. fn
// returning an error stops the stream and surfaces that error.
func (c *Client) QueryStream(ctx context.Context, name string, req QueryRequest, fn func(rows [][]string) error) ([]string, error) {
	vars, _, err := c.queryStream(ctx, name, req, fn)
	return vars, err
}

// QueryProfile evaluates a goal with profiling: it collects the full
// streamed answer and returns the per-request Profile the server
// attached to the query trailer.
func (c *Client) QueryProfile(ctx context.Context, name, goal string) (*Answer, *Profile, error) {
	ans := &Answer{}
	vars, trailer, err := c.queryStream(ctx, name, QueryRequest{Goal: goal, Profile: true}, func(rows [][]string) error {
		ans.Rows = append(ans.Rows, rows...)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	ans.Vars = vars
	return ans, trailer.Profile, nil
}

// queryStream runs the NDJSON query protocol: header line, zero or
// more chunk lines handed to fn, then the trailer (or an error line in
// its place).
func (c *Client) queryStream(ctx context.Context, name string, req QueryRequest, fn func(rows [][]string) error) ([]string, *QueryTrailer, error) {
	body, err := c.doStream(ctx, http.MethodPost, c.dbURL(name)+"/query", req)
	if err != nil {
		return nil, nil, err
	}
	defer body.Close()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)

	if !sc.Scan() {
		return nil, nil, fmt.Errorf("logres-server: empty query stream: %w", sc.Err())
	}
	var header QueryHeader
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil {
		return nil, nil, &APIError{Resp: ErrorResponse{Error: "malformed query header: " + err.Error(), Kind: KindTransport}}
	}
	var done *QueryTrailer
	for sc.Scan() {
		line := sc.Bytes()
		var trailer QueryTrailer
		if err := json.Unmarshal(line, &trailer); err == nil && trailer.Done {
			done = &trailer
			break
		}
		var streamErr struct {
			Error *ErrorResponse `json:"error"`
		}
		if err := json.Unmarshal(line, &streamErr); err == nil && streamErr.Error != nil {
			return header.Vars, nil, &APIError{Resp: *streamErr.Error}
		}
		var chunk QueryChunk
		if err := json.Unmarshal(line, &chunk); err != nil {
			return header.Vars, nil, &APIError{Resp: ErrorResponse{Error: "malformed query chunk: " + err.Error(), Kind: KindTransport}}
		}
		if err := fn(chunk.Rows); err != nil {
			return header.Vars, nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return header.Vars, nil, err
	}
	if done == nil {
		return header.Vars, nil, &APIError{Resp: ErrorResponse{Error: "query stream truncated before trailer", Kind: KindTransport}}
	}
	return header.Vars, done, nil
}

// Instance streams the derived instance and collects its facts.
func (c *Client) Instance(ctx context.Context, name string) ([]InstanceFact, error) {
	body, err := c.doStream(ctx, http.MethodGet, c.dbURL(name)+"/instance", nil)
	if err != nil {
		return nil, err
	}
	defer body.Close()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var facts []InstanceFact
	for sc.Scan() {
		var trailer QueryTrailer
		if err := json.Unmarshal(sc.Bytes(), &trailer); err == nil && trailer.Done {
			return facts, nil
		}
		var f InstanceFact
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			return facts, &APIError{Resp: ErrorResponse{Error: "malformed instance line: " + err.Error(), Kind: KindTransport}}
		}
		facts = append(facts, f)
	}
	if err := sc.Err(); err != nil {
		return facts, err
	}
	return facts, &APIError{Resp: ErrorResponse{Error: "instance stream truncated before trailer", Kind: KindTransport}}
}

// Register stores a named module in the database's library.
func (c *Client) Register(ctx context.Context, name, module string) error {
	return c.doJSON(ctx, http.MethodPost, c.dbURL(name)+"/register", RegisterRequest{Module: module}, nil)
}

// Subscribe opens a live view subscription and blocks, handing every
// per-epoch DiffEvent to fn as it arrives; it returns the
// SubscribeHeader naming the commit epoch the subscription is pinned
// at. The call ends when the server tears the subscription down (a
// "slow_consumer" or "draining" *APIError), when fn returns an error
// (surfaced verbatim), or when ctx is canceled (the usual way to
// unsubscribe client-side — the stream's error is suppressed in favor
// of ctx.Err()). Requires a database created with
// DBOptions.Incremental.
func (c *Client) Subscribe(ctx context.Context, name string, req SubscribeRequest, fn func(DiffEvent) error) (*SubscribeHeader, error) {
	body, err := c.doStream(ctx, http.MethodPost, c.dbURL(name)+"/subscribe", req)
	if err != nil {
		return nil, err
	}
	defer body.Close()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)

	if !sc.Scan() {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("logres-server: empty subscription stream: %w", sc.Err())
	}
	var streamErr struct {
		Error *ErrorResponse `json:"error"`
	}
	if err := json.Unmarshal(sc.Bytes(), &streamErr); err == nil && streamErr.Error != nil {
		return nil, &APIError{Resp: *streamErr.Error}
	}
	var header SubscribeHeader
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil {
		return nil, &APIError{Resp: ErrorResponse{Error: "malformed subscribe header: " + err.Error(), Kind: KindTransport}}
	}
	for sc.Scan() {
		line := sc.Bytes()
		streamErr.Error = nil
		if err := json.Unmarshal(line, &streamErr); err == nil && streamErr.Error != nil {
			return &header, &APIError{Resp: *streamErr.Error}
		}
		var ev DiffEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return &header, &APIError{Resp: ErrorResponse{Error: "malformed diff event: " + err.Error(), Kind: KindTransport}}
		}
		if err := fn(ev); err != nil {
			return &header, err
		}
	}
	// A canceled context tears the connection down mid-read; report the
	// cancellation, not the transport debris it caused.
	if ctx.Err() != nil {
		return &header, ctx.Err()
	}
	if err := sc.Err(); err != nil {
		return &header, err
	}
	return &header, nil
}

// ---------------------------------------------------------------------------
// Transport.
// ---------------------------------------------------------------------------

func (c *Client) dbURL(name string) string {
	return c.base + "/v1/db/" + url.PathEscape(name)
}

// doJSON performs one request with an optional JSON body and decodes a
// JSON response into out (nil discards the body). Non-2xx responses
// decode into an *APIError; 503 draining responses are re-submitted
// per WithDrainingRetries.
func (c *Client) doJSON(ctx context.Context, method, url string, in, out any) error {
	for attempt := 0; ; attempt++ {
		resp, err := c.do(ctx, method, url, in)
		if err != nil {
			return err
		}
		if err := responseError(resp); err != nil {
			resp.Body.Close()
			if wait, retry := c.drainingWait(err, attempt); retry {
				if err := sleepCtx(ctx, wait); err != nil {
					return err
				}
				continue
			}
			return err
		}
		if out == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		resp.Body.Close()
		return err
	}
}

// doStream performs one request and returns the raw body for NDJSON
// consumption; non-2xx responses are decoded and closed here, with
// draining responses re-submitted per WithDrainingRetries (the retry
// happens before any stream byte reached the caller, so it is safe for
// the streaming endpoints too).
func (c *Client) doStream(ctx context.Context, method, url string, in any) (io.ReadCloser, error) {
	for attempt := 0; ; attempt++ {
		resp, err := c.do(ctx, method, url, in)
		if err != nil {
			return nil, err
		}
		if err := responseError(resp); err != nil {
			resp.Body.Close()
			if wait, retry := c.drainingWait(err, attempt); retry {
				if err := sleepCtx(ctx, wait); err != nil {
					return nil, err
				}
				continue
			}
			return nil, err
		}
		return resp.Body, nil
	}
}

// drainingWait decides whether a failed request is re-submitted because
// the server was draining, and how long to wait first: the server's
// Retry-After hint when it beats the exponential schedule, clamped at
// the backoff cap so a large hint cannot stall the caller.
func (c *Client) drainingWait(err error, attempt int) (time.Duration, bool) {
	apiErr, ok := err.(*APIError)
	if !ok || !apiErr.IsDraining() || attempt >= c.drainingRetries {
		return 0, false
	}
	wait := c.backoff(attempt)
	if apiErr.RetryAfter > wait {
		wait = apiErr.RetryAfter
	}
	if wait > c.retryMax {
		wait = c.retryMax
	}
	return wait, true
}

// sleepCtx waits for d or the context, whichever ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

func (c *Client) do(ctx context.Context, method, url string, in any) (*http.Response, error) {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return nil, err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Every request carries a fresh trace identity: the server extracts
	// these into its request span, so slow-query logs, /debug/requests,
	// trace events, and profiles are attributable to this exact call
	// (client-side retries get distinct ids, tying each submission to
	// its own server-side record).
	traceID, spanID := newTraceIDs()
	req.Header.Set("traceparent", traceparent(traceID, spanID))
	req.Header.Set("X-Request-ID", spanID)
	return c.hc.Do(req)
}

func responseError(resp *http.Response) error {
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil
	}
	apiErr := &APIError{Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		// Only the delay-seconds form is produced by logres-server; the
		// HTTP-date form is ignored.
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err := json.Unmarshal(data, &apiErr.Resp); err != nil || apiErr.Resp.Error == "" {
		apiErr.Resp = ErrorResponse{Error: strings.TrimSpace(string(data)), Kind: KindTransport}
		if apiErr.Resp.Error == "" {
			apiErr.Resp.Error = resp.Status
		}
	}
	return apiErr
}
