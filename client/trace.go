package client

import (
	"crypto/rand"
	"encoding/hex"
)

// newTraceIDs mints one W3C trace-context identity: a 16-byte trace id
// and an 8-byte parent (span) id, hex-encoded. The span id doubles as
// the X-Request-ID value, so server logs, trace events, and profiles
// all key on the same identifier the client holds.
func newTraceIDs() (traceID, spanID string) {
	var buf [24]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand failing is effectively unreachable; a fixed
		// identity still yields a well-formed traceparent.
		return "00000000000000000000000000000001", "0000000000000001"
	}
	return hex.EncodeToString(buf[:16]), hex.EncodeToString(buf[16:])
}

// traceparent renders the W3C traceparent header value (version 00,
// sampled flag set — the server traces every request it profiles).
func traceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}
