package types

import (
	"math/rand"
	"testing"
	"testing/quick"

	"logres/internal/value"
)

// Property-based tests of the refinement relation (Appendix A): it must
// be a preorder — reflexive and transitive — on randomly generated type
// descriptors, and tuple refinement must be antitone in the field set.

// genType generates a random type descriptor of bounded depth.
func genType(r *rand.Rand, depth int) Type {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return Int
		case 1:
			return String
		case 2:
			return Real
		default:
			return Bool
		}
	}
	switch r.Intn(5) {
	case 0:
		n := 1 + r.Intn(3)
		fields := make([]Field, n)
		for i := range fields {
			fields[i] = Field{
				Label: string(rune('a' + i)),
				Type:  genType(r, depth-1),
			}
		}
		return Tuple{Fields: fields}
	case 1:
		return Set{Elem: genType(r, depth-1)}
	case 2:
		return Multiset{Elem: genType(r, depth-1)}
	case 3:
		return Sequence{Elem: genType(r, depth-1)}
	default:
		return genType(r, 0)
	}
}

func TestRefinesReflexiveProperty(t *testing.T) {
	s := NewSchema()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ty := genType(r, 3)
		return s.Refines(ty, ty)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// widen produces a refinement of ty by adding tuple fields (rule 4) —
// so ty' ≤ ty must hold.
func widen(r *rand.Rand, ty Type) Type {
	switch x := ty.(type) {
	case Tuple:
		extra := Field{Label: "zz", Type: Int}
		return Tuple{Fields: append(append([]Field{}, x.Fields...), extra)}
	case Set:
		return Set{Elem: widen(r, x.Elem)}
	case Multiset:
		return Multiset{Elem: widen(r, x.Elem)}
	case Sequence:
		return Sequence{Elem: widen(r, x.Elem)}
	}
	return ty
}

func TestWidenedTupleRefinesProperty(t *testing.T) {
	s := NewSchema()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ty := genType(r, 3)
		wider := widen(r, ty)
		return s.Refines(wider, ty)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRefinesTransitiveProperty(t *testing.T) {
	s := NewSchema()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := genType(r, 2)
		b := widen(r, c) // b ≤ c
		a := widen(r, b) // a ≤ b
		// Transitivity: a ≤ c.
		if !s.Refines(a, b) || !s.Refines(b, c) {
			return true // premise failed (e.g. no tuples to widen)
		}
		return s.Refines(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNarrowTupleDoesNotRefineProperty(t *testing.T) {
	s := NewSchema()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := genType(r, 2)
		tup, ok := base.(Tuple)
		if !ok || len(tup.Fields) < 2 {
			return true
		}
		narrow := Tuple{Fields: tup.Fields[:len(tup.Fields)-1]}
		// Dropping a field: narrow must NOT refine the full tuple.
		return !s.Refines(narrow, tup)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckValueNeverPanicsOnRandomTypes(t *testing.T) {
	s := NewSchema()
	_ = s.AddClass("c", Tuple{Fields: []Field{{Label: "v", Type: Int}}})
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ty := genType(r, 3)
		// Checking an arbitrary value against an arbitrary type must not
		// panic (errors are fine).
		_ = s.CheckValue(ty, randomValue(r, 2), NilAllowed)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// randomValue builds a random value of bounded depth.
func randomValue(r *rand.Rand, depth int) value.Value {
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return value.Int(int64(r.Intn(100)))
		case 1:
			return value.Str("s")
		case 2:
			return value.Real(1.5)
		case 3:
			return value.Bool(true)
		default:
			return value.Ref(value.OID(r.Intn(5)))
		}
	}
	switch r.Intn(4) {
	case 0:
		return value.NewTuple(
			value.Field{Label: "a", Value: randomValue(r, depth-1)},
			value.Field{Label: "b", Value: randomValue(r, depth-1)},
		)
	case 1:
		return value.NewSet(randomValue(r, depth-1), randomValue(r, depth-1))
	case 2:
		return value.NewMultiset(randomValue(r, depth-1))
	default:
		return value.NewSequence(randomValue(r, depth-1))
	}
}
