package types

import (
	"strings"
	"testing"
)

// footballSchema builds Example 2.1 of the paper.
func footballSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddDomain("NAME", String))
	must(s.AddDomain("ROLE", Int))
	must(s.AddDomain("DATE", String))
	must(s.AddDomain("SCORE", Tuple{Fields: []Field{{"home", Int}, {"guest", Int}}}))
	must(s.AddClass("PLAYER", Tuple{Fields: []Field{
		{"name", Named{"NAME"}},
		{"roles", Set{Named{"ROLE"}}},
	}}))
	must(s.AddClass("TEAM", Tuple{Fields: []Field{
		{"team_name", Named{"NAME"}},
		{"base_players", Sequence{Named{"PLAYER"}}},
		{"substitutes", Set{Named{"PLAYER"}}},
	}}))
	must(s.AddAssociation("GAME", Tuple{Fields: []Field{
		{"h_team", Named{"TEAM"}},
		{"g_team", Named{"TEAM"}},
		{"date", Named{"DATE"}},
		{"score", Named{"SCORE"}},
	}}))
	return s
}

// universitySchema builds Example 3.1 of the paper.
func universitySchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddDomain("NAME", String))
	must(s.AddDomain("ADDRESS", String))
	must(s.AddDomain("KIND", String))
	must(s.AddDomain("COURSE", String))
	must(s.AddClass("PERSON", Tuple{Fields: []Field{
		{"name", Named{"NAME"}}, {"address", Named{"ADDRESS"}},
	}}))
	must(s.AddClass("SCHOOL", Tuple{Fields: []Field{
		{"name", Named{"NAME"}}, {"address", Named{"ADDRESS"}},
		{"kind", Named{"KIND"}}, {"dean", Named{"PROFESSOR"}},
	}}))
	must(s.AddClass("STUDENT", Tuple{Fields: []Field{
		{"person", Named{"PERSON"}}, {"studschool", Named{"SCHOOL"}},
	}}))
	must(s.AddClass("PROFESSOR", Tuple{Fields: []Field{
		{"person", Named{"PERSON"}}, {"course", Named{"COURSE"}}, {"profschool", Named{"SCHOOL"}},
	}}))
	must(s.AddIsa("STUDENT", "", "PERSON"))
	must(s.AddIsa("PROFESSOR", "", "PERSON"))
	must(s.AddAssociation("ADVISES", Tuple{Fields: []Field{
		{"professor", Named{"PROFESSOR"}}, {"student", Named{"STUDENT"}},
	}}))
	return s
}

func TestFootballSchemaValidates(t *testing.T) {
	s := footballSchema(t)
	if err := s.Validate(); err != nil {
		t.Fatalf("football schema invalid: %v", err)
	}
}

func TestUniversitySchemaValidates(t *testing.T) {
	s := universitySchema(t)
	if err := s.Validate(); err != nil {
		t.Fatalf("university schema invalid: %v", err)
	}
}

func TestCanon(t *testing.T) {
	if Canon("H-TEAM") != "h_team" || Canon("Person") != "person" {
		t.Fatal("Canon wrong")
	}
}

func TestDuplicateDeclarationRejected(t *testing.T) {
	s := NewSchema()
	if err := s.AddDomain("X", Int); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClass("x", Tuple{}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestLookupIsCaseInsensitive(t *testing.T) {
	s := footballSchema(t)
	if _, ok := s.Lookup("PLAYER"); !ok {
		t.Fatal("upper-case lookup failed")
	}
	if _, ok := s.Lookup("player"); !ok {
		t.Fatal("lower-case lookup failed")
	}
	if !s.IsClass("Player") || !s.IsAssociation("game") || !s.IsDomain("score") {
		t.Fatal("kind predicates wrong")
	}
}

func TestEffectiveTupleSplicesInheritance(t *testing.T) {
	s := universitySchema(t)
	eff, err := s.EffectiveTuple("STUDENT")
	if err != nil {
		t.Fatal(err)
	}
	labels := fieldLabels(eff)
	want := []string{"name", "address", "studschool"}
	if strings.Join(labels, ",") != strings.Join(want, ",") {
		t.Fatalf("student effective labels = %v, want %v", labels, want)
	}
	// studschool stays an object reference.
	f, _ := eff.Get("studschool")
	if n, ok := f.Type.(Named); !ok || n.Name != "school" {
		t.Fatalf("studschool type = %v", f.Type)
	}
}

func TestEffectiveTupleAlias(t *testing.T) {
	// Example 3.4: class IP = PAIR (association alias).
	s := NewSchema()
	if err := s.AddDomain("NAME", String); err != nil {
		t.Fatal(err)
	}
	if err := s.AddAssociation("PAIR", Tuple{Fields: []Field{
		{"p_name", Named{"NAME"}}, {"s_name", Named{"NAME"}},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClass("IP", Named{"PAIR"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	eff, err := s.EffectiveTuple("IP")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(fieldLabels(eff), ","); got != "p_name,s_name" {
		t.Fatalf("IP effective labels = %q", got)
	}
}

func TestLabelledIsaEdge(t *testing.T) {
	// EMPL = (emp PERSON, manager PERSON); EMPL emp isa PERSON.
	s := NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddDomain("NAME", String))
	must(s.AddClass("PERSON", Tuple{Fields: []Field{{"name", Named{"NAME"}}}}))
	must(s.AddClass("EMPL", Tuple{Fields: []Field{
		{"emp", Named{"PERSON"}}, {"manager", Named{"PERSON"}},
	}}))
	must(s.AddIsa("EMPL", "emp", "PERSON"))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	eff, err := s.EffectiveTuple("EMPL")
	if err != nil {
		t.Fatal(err)
	}
	// emp splices into "name"; manager stays a reference.
	if got := strings.Join(fieldLabels(eff), ","); got != "name,manager" {
		t.Fatalf("EMPL effective labels = %q", got)
	}
}

func fieldLabels(t Tuple) []string {
	out := make([]string, len(t.Fields))
	for i, f := range t.Fields {
		out[i] = f.Label
	}
	return out
}

func TestAncestorsDescendantsRoots(t *testing.T) {
	s := universitySchema(t)
	if got := s.Ancestors("student"); len(got) != 1 || got[0] != "person" {
		t.Fatalf("Ancestors(student) = %v", got)
	}
	if got := s.Descendants("person"); len(got) != 2 {
		t.Fatalf("Descendants(person) = %v", got)
	}
	if s.Root("student") != "person" || s.Root("person") != "person" || s.Root("school") != "school" {
		t.Fatal("Root wrong")
	}
	if !s.IsaOrEq("student", "person") || !s.IsaOrEq("person", "person") || s.IsaOrEq("person", "student") {
		t.Fatal("IsaOrEq wrong")
	}
	if !s.SameHierarchy("student", "professor") || s.SameHierarchy("student", "school") {
		t.Fatal("SameHierarchy wrong")
	}
}

func TestIsaCycleDetected(t *testing.T) {
	s := NewSchema()
	_ = s.AddClass("A", Tuple{Fields: []Field{{"x", Int}}})
	_ = s.AddClass("B", Tuple{Fields: []Field{{"x", Int}}})
	_ = s.AddIsa("A", "", "B")
	_ = s.AddIsa("B", "", "A")
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestMultipleInheritanceNeedsCommonAncestor(t *testing.T) {
	bad := NewSchema()
	_ = bad.AddClass("A", Tuple{Fields: []Field{{"x", Int}}})
	_ = bad.AddClass("B", Tuple{Fields: []Field{{"y", Int}}})
	_ = bad.AddClass("C", Tuple{Fields: []Field{{"a", Named{"A"}}, {"b", Named{"B"}}}})
	_ = bad.AddIsa("C", "a", "A")
	_ = bad.AddIsa("C", "b", "B")
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "common ancestor") {
		t.Fatalf("disjoint multiple inheritance accepted: %v", err)
	}

	good := NewSchema()
	_ = good.AddClass("R", Tuple{Fields: []Field{{"x", Int}}})
	_ = good.AddClass("A", Tuple{Fields: []Field{{"r", Named{"R"}}, {"y", Int}}})
	_ = good.AddClass("B", Tuple{Fields: []Field{{"r", Named{"R"}}, {"z", Int}}})
	_ = good.AddClass("C", Tuple{Fields: []Field{{"a", Named{"A"}}, {"b", Named{"B"}}}})
	_ = good.AddIsa("A", "r", "R")
	_ = good.AddIsa("B", "r", "R")
	_ = good.AddIsa("C", "a", "A")
	_ = good.AddIsa("C", "b", "B")
	if err := good.Validate(); err != nil {
		t.Fatalf("diamond inheritance rejected: %v", err)
	}
	// Diamond: the shared attribute x is inherited once.
	eff, err := good.EffectiveTuple("C")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(fieldLabels(eff), ","); got != "x,y,z" {
		t.Fatalf("diamond effective labels = %q", got)
	}
}

func TestConflictingInheritedLabelsRejected(t *testing.T) {
	s := NewSchema()
	_ = s.AddClass("A", Tuple{Fields: []Field{{"v", Int}}})
	_ = s.AddClass("B", Tuple{Fields: []Field{{"v", String}}})
	// Put A and B in one hierarchy so the common-ancestor rule passes.
	_ = s.AddClass("R", Tuple{Fields: []Field{}})
	_ = s.AddIsa("A", "", "R")
	_ = s.AddIsa("B", "", "R")
	_ = s.AddClass("C", Tuple{Fields: []Field{{"a", Named{"A"}}, {"b", Named{"B"}}}})
	_ = s.AddIsa("C", "a", "A")
	_ = s.AddIsa("C", "b", "B")
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "rename") {
		t.Fatalf("conflicting inherited labels accepted: %v", err)
	}
}

func TestDomainMayNotContainClass(t *testing.T) {
	s := NewSchema()
	_ = s.AddClass("C", Tuple{Fields: []Field{{"x", Int}}})
	_ = s.AddDomain("D", Set{Named{"C"}})
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "domains may not contain classes") {
		t.Fatalf("domain-with-class accepted: %v", err)
	}
}

func TestAssociationMayNotNestAssociation(t *testing.T) {
	s := NewSchema()
	_ = s.AddAssociation("A", Tuple{Fields: []Field{{"x", Int}}})
	_ = s.AddAssociation("B", Tuple{Fields: []Field{{"a", Named{"A"}}}})
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "embeds association") {
		t.Fatalf("nested association accepted: %v", err)
	}
}

func TestUndeclaredReferenceReported(t *testing.T) {
	s := NewSchema()
	_ = s.AddClass("C", Tuple{Fields: []Field{{"x", Named{"NOPE"}}}})
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("undeclared reference accepted: %v", err)
	}
}

func TestIsaWithoutRefinementRejected(t *testing.T) {
	s := NewSchema()
	_ = s.AddClass("A", Tuple{Fields: []Field{{"x", Int}, {"y", Int}}})
	_ = s.AddClass("B", Tuple{Fields: []Field{{"z", Int}}}) // lacks A's fields
	_ = s.AddIsa("B", "", "A")
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "refinement") {
		t.Fatalf("non-refining isa accepted: %v", err)
	}
}

func TestUnionAndSubtract(t *testing.T) {
	s := footballSchema(t)
	m := NewSchema()
	if err := m.AddAssociation("RESULTLIST", Tuple{Fields: []Field{{"d", Named{"DATE"}}}}); err != nil {
		t.Fatal(err)
	}
	u, err := s.Union(m)
	if err != nil {
		t.Fatal(err)
	}
	if !u.IsAssociation("resultlist") || !u.IsClass("player") {
		t.Fatal("union missing declarations")
	}
	// Identical redeclaration tolerated.
	m2 := NewSchema()
	_ = m2.AddDomain("NAME", String)
	if _, err := s.Union(m2); err != nil {
		t.Fatalf("identical redeclaration rejected: %v", err)
	}
	// Conflicting redeclaration rejected.
	m3 := NewSchema()
	_ = m3.AddDomain("NAME", Int)
	if _, err := s.Union(m3); err == nil {
		t.Fatal("conflicting redeclaration accepted")
	}
	// Subtract removes declarations.
	sub := u.Subtract(m)
	if sub.IsAssociation("resultlist") {
		t.Fatal("subtract did not remove")
	}
	if !sub.IsClass("player") {
		t.Fatal("subtract removed too much")
	}
}

func TestSubtractDropsDanglingIsa(t *testing.T) {
	s := universitySchema(t)
	m := NewSchema()
	_ = m.AddClass("PERSON", Tuple{Fields: []Field{
		{"name", Named{"NAME"}}, {"address", Named{"ADDRESS"}},
	}})
	sub := s.Subtract(m)
	for _, e := range sub.IsaEdges() {
		if e.Super == "person" {
			t.Fatal("dangling isa edge kept after class removal")
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := footballSchema(t)
	c := s.Clone()
	if err := c.AddDomain("EXTRA", Int); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup("extra"); ok {
		t.Fatal("clone shares decl map")
	}
}

func TestSchemaString(t *testing.T) {
	s := universitySchema(t)
	out := s.String()
	for _, want := range []string{"classes", "student isa person", "associations", "advises"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestNamesOfOrder(t *testing.T) {
	s := footballSchema(t)
	doms := s.NamesOf(DeclDomain)
	want := []string{"name", "role", "date", "score"}
	if strings.Join(doms, ",") != strings.Join(want, ",") {
		t.Fatalf("domains = %v, want %v", doms, want)
	}
}

func TestDeclKindAndKindStrings(t *testing.T) {
	for k, want := range map[DeclKind]string{
		DeclDomain: "domain", DeclClass: "class",
		DeclAssociation: "association", DeclFunction: "function",
	} {
		if k.String() != want {
			t.Errorf("%v.String() = %q", int(k), k.String())
		}
	}
	if DeclKind(9).String() == "" {
		t.Error("unknown decl kind empty")
	}
	if Kind(99).String() == "" {
		t.Error("unknown type kind empty")
	}
}

func TestExpandDomainsErrors(t *testing.T) {
	s := NewSchema()
	_ = s.AddDomain("D", Named{"NOPE"})
	if _, err := s.ExpandDomains(Named{"D"}); err == nil {
		t.Fatal("undeclared reference expanded")
	}
	_ = s.AddFunction("F", Int, Int)
	if _, err := s.ExpandDomains(Named{"F"}); err == nil {
		t.Fatal("function expanded as type")
	}
	// Recursive domain detection.
	r := NewSchema()
	_ = r.AddDomain("A", Named{"B"})
	_ = r.AddDomain("B", Named{"A"})
	if _, err := r.ExpandDomains(Named{"A"}); err == nil {
		t.Fatal("recursive domain expanded")
	}
}

func TestExpandDomainsThroughAssociationAlias(t *testing.T) {
	s := footballSchema(t)
	// Expanding an association name yields its effective tuple structure.
	et, err := s.ExpandDomains(Named{"GAME"})
	if err != nil {
		t.Fatal(err)
	}
	tup, ok := et.(Tuple)
	if !ok || len(tup.Fields) != 4 {
		t.Fatalf("expanded game = %v", et)
	}
}

func TestRootOfIsolatedAndCyclic(t *testing.T) {
	s := NewSchema()
	_ = s.AddClass("X", Tuple{Fields: []Field{{Label: "v", Type: Int}}})
	if s.Root("x") != "x" {
		t.Fatal("isolated class root wrong")
	}
	// Cyclic hierarchies: Root degrades gracefully (Validate reports the
	// cycle separately).
	c := NewSchema()
	_ = c.AddClass("A", Tuple{Fields: []Field{{Label: "v", Type: Int}}})
	_ = c.AddClass("B", Tuple{Fields: []Field{{Label: "v", Type: Int}}})
	_ = c.AddIsa("A", "", "B")
	_ = c.AddIsa("B", "", "A")
	_ = c.Root("a") // must not loop forever
}

func TestEffectiveTupleErrors(t *testing.T) {
	s := NewSchema()
	_ = s.AddClass("C", Named{"MISSING"})
	if _, err := s.EffectiveTuple("C"); err == nil {
		t.Fatal("alias of undeclared name accepted")
	}
	if _, err := s.EffectiveTuple("nosuch"); err == nil {
		t.Fatal("effective tuple of undeclared name accepted")
	}
	r := NewSchema()
	_ = r.AddFunction("F", Int, Int)
	_ = r.AddClass("D", Named{"F"})
	if _, err := r.EffectiveTuple("D"); err == nil {
		t.Fatal("alias of function accepted")
	}
	e := NewSchema()
	_ = e.AddClass("E", Set{Int})
	if _, err := e.EffectiveTuple("E"); err == nil {
		t.Fatal("non-tuple class structure accepted")
	}
}
