package types

import (
	"fmt"
	"sort"
	"strings"
)

// DeclKind distinguishes the four kinds of schema declarations.
type DeclKind int

// Declaration kinds.
const (
	DeclDomain DeclKind = iota
	DeclClass
	DeclAssociation
	DeclFunction
)

func (k DeclKind) String() string {
	switch k {
	case DeclDomain:
		return "domain"
	case DeclClass:
		return "class"
	case DeclAssociation:
		return "association"
	case DeclFunction:
		return "function"
	}
	return fmt.Sprintf("declkind(%d)", int(k))
}

// Decl is one schema declaration: a type equation for a domain, class or
// association, or a data-function signature F : Arg → {Result}.
type Decl struct {
	Name string
	Kind DeclKind
	// RHS is the right-hand side of the type equation (domains, classes,
	// associations). Nil for functions.
	RHS Type
	// Arg is the function argument type; nil for nullary functions.
	Arg Type
	// Result is the element type of the function's set-valued result:
	// F : Arg → {Result}.
	Result Type
}

// IsaEdge records a generalization declaration `Sub [Label] isa Super`.
// Label qualifies which RHS component of Sub embodies the inherited part
// (the paper's `EMPL emp ISA PERSON`); empty means the default label (the
// lower-cased superclass name).
type IsaEdge struct {
	Sub   string
	Label string
	Super string
}

// Schema is the static structure of a LOGRES database: the function Σ from
// names to type descriptors plus the isa partial order (Definition 2).
type Schema struct {
	decls map[string]*Decl
	order []string // declaration order, for deterministic iteration
	isa   []IsaEdge

	// caches, invalidated on mutation
	effective map[string]Tuple
}

// Canon normalizes an identifier: LOGRES names are case-insensitive and the
// paper freely mixes PERSON/person; hyphens in the paper's examples (H-TEAM)
// become underscores.
func Canon(name string) string {
	return strings.ReplaceAll(strings.ToLower(name), "-", "_")
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{decls: map[string]*Decl{}}
}

func (s *Schema) invalidate() { s.effective = nil }

// normalizeType canonicalizes every name and label inside a descriptor.
func normalizeType(t Type) Type {
	switch x := t.(type) {
	case nil:
		return nil
	case Named:
		return Named{Name: Canon(x.Name)}
	case Tuple:
		fs := make([]Field, len(x.Fields))
		for i, f := range x.Fields {
			fs[i] = Field{Label: Canon(f.Label), Type: normalizeType(f.Type)}
		}
		return Tuple{Fields: fs}
	case Set:
		return Set{Elem: normalizeType(x.Elem)}
	case Multiset:
		return Multiset{Elem: normalizeType(x.Elem)}
	case Sequence:
		return Sequence{Elem: normalizeType(x.Elem)}
	}
	return t
}

func (s *Schema) add(d *Decl) error {
	d.Name = Canon(d.Name)
	d.RHS = normalizeType(d.RHS)
	d.Arg = normalizeType(d.Arg)
	d.Result = normalizeType(d.Result)
	if d.Name == "" {
		return fmt.Errorf("types: empty declaration name")
	}
	if prev, ok := s.decls[d.Name]; ok {
		return fmt.Errorf("types: %s %q conflicts with existing %s", d.Kind, d.Name, prev.Kind)
	}
	s.decls[d.Name] = d
	s.order = append(s.order, d.Name)
	s.invalidate()
	return nil
}

// AddDomain declares a domain type equation.
func (s *Schema) AddDomain(name string, rhs Type) error {
	return s.add(&Decl{Name: name, Kind: DeclDomain, RHS: rhs})
}

// AddClass declares a class type equation.
func (s *Schema) AddClass(name string, rhs Type) error {
	return s.add(&Decl{Name: name, Kind: DeclClass, RHS: rhs})
}

// AddAssociation declares an association type equation.
func (s *Schema) AddAssociation(name string, rhs Type) error {
	return s.add(&Decl{Name: name, Kind: DeclAssociation, RHS: rhs})
}

// AddFunction declares a data function F : arg → {result}. A nil arg
// declares a nullary function.
func (s *Schema) AddFunction(name string, arg, result Type) error {
	return s.add(&Decl{Name: name, Kind: DeclFunction, Arg: arg, Result: result})
}

// AddIsa declares `sub [label] isa super`.
func (s *Schema) AddIsa(sub, label, super string) error {
	e := IsaEdge{Sub: Canon(sub), Label: Canon(label), Super: Canon(super)}
	for _, x := range s.isa {
		if x == e {
			return fmt.Errorf("types: duplicate isa %s isa %s", e.Sub, e.Super)
		}
	}
	s.isa = append(s.isa, e)
	s.invalidate()
	return nil
}

// Lookup returns the declaration for name.
func (s *Schema) Lookup(name string) (*Decl, bool) {
	d, ok := s.decls[Canon(name)]
	return d, ok
}

// Names returns all declared names in declaration order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// NamesOf returns all names of the given kind, in declaration order.
func (s *Schema) NamesOf(kind DeclKind) []string {
	var out []string
	for _, n := range s.order {
		if s.decls[n].Kind == kind {
			out = append(out, n)
		}
	}
	return out
}

// IsClass reports whether name is a class.
func (s *Schema) IsClass(name string) bool { return s.kindIs(name, DeclClass) }

// IsAssociation reports whether name is an association.
func (s *Schema) IsAssociation(name string) bool { return s.kindIs(name, DeclAssociation) }

// IsDomain reports whether name is a domain.
func (s *Schema) IsDomain(name string) bool { return s.kindIs(name, DeclDomain) }

// IsFunction reports whether name is a data function.
func (s *Schema) IsFunction(name string) bool { return s.kindIs(name, DeclFunction) }

func (s *Schema) kindIs(name string, k DeclKind) bool {
	d, ok := s.decls[Canon(name)]
	return ok && d.Kind == k
}

// IsaEdges returns a copy of the declared isa edges.
func (s *Schema) IsaEdges() []IsaEdge {
	out := make([]IsaEdge, len(s.isa))
	copy(out, s.isa)
	return out
}

// DirectSupers returns the direct superclasses of sub.
func (s *Schema) DirectSupers(sub string) []IsaEdge {
	sub = Canon(sub)
	var out []IsaEdge
	for _, e := range s.isa {
		if e.Sub == sub {
			out = append(out, e)
		}
	}
	return out
}

// DirectSubs returns the direct subclasses of super.
func (s *Schema) DirectSubs(super string) []string {
	super = Canon(super)
	var out []string
	for _, e := range s.isa {
		if e.Super == super {
			out = append(out, e.Sub)
		}
	}
	return out
}

// Ancestors returns the transitive isa-ancestors of c (not including c),
// in deterministic order.
func (s *Schema) Ancestors(c string) []string {
	seen := map[string]bool{}
	var walk func(string)
	walk = func(x string) {
		for _, e := range s.DirectSupers(x) {
			if !seen[e.Super] {
				seen[e.Super] = true
				walk(e.Super)
			}
		}
	}
	walk(Canon(c))
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Descendants returns the transitive isa-descendants of c (not including c).
func (s *Schema) Descendants(c string) []string {
	seen := map[string]bool{}
	var walk func(string)
	walk = func(x string) {
		for _, sub := range s.DirectSubs(x) {
			if !seen[sub] {
				seen[sub] = true
				walk(sub)
			}
		}
	}
	walk(Canon(c))
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IsaOrEq reports whether sub = super or sub transitively isa super.
func (s *Schema) IsaOrEq(sub, super string) bool {
	sub, super = Canon(sub), Canon(super)
	if sub == super {
		return true
	}
	for _, a := range s.Ancestors(sub) {
		if a == super {
			return true
		}
	}
	return false
}

// SameHierarchy reports whether two classes belong to the same
// generalization hierarchy, i.e. share a common ancestor (possibly one of
// the two themselves). Objects of classes in different hierarchies can
// never share an oid (§2.1).
func (s *Schema) SameHierarchy(c1, c2 string) bool {
	c1, c2 = Canon(c1), Canon(c2)
	a1 := append(s.Ancestors(c1), c1)
	a2 := append(s.Ancestors(c2), c2)
	in2 := map[string]bool{}
	for _, x := range a2 {
		in2[x] = true
	}
	for _, x := range a1 {
		if in2[x] {
			return true
		}
	}
	return false
}

// Root returns the root of c's generalization hierarchy. With the
// common-ancestor restriction on multiple inheritance every class reaches a
// unique root; if the schema is invalid and several roots are reachable the
// lexicographically least is returned.
func (s *Schema) Root(c string) string {
	c = Canon(c)
	anc := s.Ancestors(c)
	if len(anc) == 0 {
		return c
	}
	var roots []string
	for _, a := range append(anc, c) {
		if len(s.DirectSupers(a)) == 0 {
			roots = append(roots, a)
		}
	}
	if len(roots) == 0 {
		return c // cyclic; Validate reports this
	}
	sort.Strings(roots)
	return roots[0]
}

// Clone returns a deep copy of the schema. Type descriptors are immutable
// and shared.
func (s *Schema) Clone() *Schema {
	n := NewSchema()
	for _, name := range s.order {
		d := *s.decls[name]
		n.decls[name] = &d
		n.order = append(n.order, name)
	}
	n.isa = append([]IsaEdge{}, s.isa...)
	return n
}

// Union returns s ∪ other (module application S0 ∪ SM). Redeclaring a name
// with an identical equation is tolerated; a conflicting redeclaration is an
// error.
func (s *Schema) Union(other *Schema) (*Schema, error) {
	out := s.Clone()
	for _, name := range other.order {
		d := other.decls[name]
		if prev, ok := out.decls[name]; ok {
			if prev.Kind != d.Kind || !EqualType(prev.RHS, d.RHS) ||
				!EqualType(prev.Arg, d.Arg) || !EqualType(prev.Result, d.Result) {
				return nil, fmt.Errorf("types: union: conflicting redeclaration of %q", name)
			}
			continue
		}
		cp := *d
		out.decls[name] = &cp
		out.order = append(out.order, name)
	}
edges:
	for _, e := range other.isa {
		for _, x := range out.isa {
			if x == e {
				continue edges
			}
		}
		out.isa = append(out.isa, e)
	}
	return out, nil
}

// Subtract returns s − other (module application S0 − SM): declarations and
// isa edges present in other are removed.
func (s *Schema) Subtract(other *Schema) *Schema {
	out := NewSchema()
	for _, name := range s.order {
		if _, drop := other.decls[name]; drop {
			continue
		}
		d := *s.decls[name]
		out.decls[name] = &d
		out.order = append(out.order, name)
	}
edges:
	for _, e := range s.isa {
		for _, x := range other.isa {
			if x == e {
				continue edges
			}
		}
		// Drop edges mentioning removed classes.
		if _, ok := out.decls[e.Sub]; !ok {
			continue
		}
		if _, ok := out.decls[e.Super]; !ok {
			continue
		}
		out.isa = append(out.isa, e)
	}
	return out
}

// String renders the schema as LOGRES declarations.
func (s *Schema) String() string {
	var b strings.Builder
	for _, kind := range []DeclKind{DeclDomain, DeclClass, DeclAssociation, DeclFunction} {
		names := s.NamesOf(kind)
		if len(names) == 0 {
			continue
		}
		switch kind {
		case DeclDomain:
			b.WriteString("domains\n")
		case DeclClass:
			b.WriteString("classes\n")
		case DeclAssociation:
			b.WriteString("associations\n")
		case DeclFunction:
			b.WriteString("functions\n")
		}
		for _, n := range names {
			d := s.decls[n]
			if kind == DeclFunction {
				if d.Arg != nil {
					fmt.Fprintf(&b, "  %s: %s -> {%s};\n", n, d.Arg, d.Result)
				} else {
					fmt.Fprintf(&b, "  %s: -> {%s};\n", n, d.Result)
				}
				continue
			}
			fmt.Fprintf(&b, "  %s = %s;\n", n, d.RHS)
			if kind == DeclClass {
				for _, e := range s.DirectSupers(n) {
					if e.Label != "" && e.Label != Canon(e.Super) {
						fmt.Fprintf(&b, "  %s %s isa %s;\n", n, e.Label, e.Super)
					} else {
						fmt.Fprintf(&b, "  %s isa %s;\n", n, e.Super)
					}
				}
			}
		}
	}
	return b.String()
}
