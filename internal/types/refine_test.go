package types

import (
	"testing"

	"logres/internal/value"
)

func TestRefinesElementary(t *testing.T) {
	s := NewSchema()
	if !s.Refines(Int, Int) || !s.Refines(String, String) {
		t.Fatal("rule 1 fails on elementary types")
	}
	if s.Refines(Int, String) {
		t.Fatal("integer refines string")
	}
	if !s.Refines(Int, Real) {
		t.Fatal("integer should refine real (numeric widening)")
	}
	if s.Refines(Real, Int) {
		t.Fatal("real refines integer")
	}
}

func TestRefinesDomainUnfolding(t *testing.T) {
	s := NewSchema()
	_ = s.AddDomain("NAME", String)
	_ = s.AddDomain("ROLE", Int)
	if !s.Refines(Named{"NAME"}, String) {
		t.Fatal("rule 2: NAME ≤ string fails")
	}
	if s.Refines(Named{"NAME"}, Named{"ROLE"}) {
		t.Fatal("NAME refines ROLE")
	}
	if !s.Compatible(Named{"NAME"}, String) || !s.Compatible(String, Named{"NAME"}) {
		t.Fatal("compatibility must be symmetric-closed")
	}
	if s.Compatible(Named{"NAME"}, Named{"ROLE"}) {
		t.Fatal("distinct domains compatible")
	}
}

func TestRefinesClassHierarchy(t *testing.T) {
	s := universitySchema(t)
	if !s.Refines(Named{"STUDENT"}, Named{"PERSON"}) {
		t.Fatal("STUDENT ≤ PERSON fails")
	}
	if s.Refines(Named{"PERSON"}, Named{"STUDENT"}) {
		t.Fatal("PERSON ≤ STUDENT holds")
	}
	if !s.Compatible(Named{"PERSON"}, Named{"STUDENT"}) {
		t.Fatal("person/student not compatible")
	}
	if s.Refines(Named{"STUDENT"}, Named{"SCHOOL"}) {
		t.Fatal("unrelated classes refine")
	}
}

func TestRefinesTupleRule(t *testing.T) {
	s := NewSchema()
	wide := Tuple{Fields: []Field{{"a", Int}, {"b", String}, {"c", Int}}}
	narrow := Tuple{Fields: []Field{{"b", String}, {"a", Int}}}
	if !s.Refines(wide, narrow) {
		t.Fatal("rule 4: wide tuple should refine narrow tuple")
	}
	if s.Refines(narrow, wide) {
		t.Fatal("narrow tuple refines wide")
	}
	mismatch := Tuple{Fields: []Field{{"a", String}}}
	if s.Refines(wide, mismatch) {
		t.Fatal("component type mismatch ignored")
	}
}

func TestRefinesConstructors(t *testing.T) {
	s := NewSchema()
	if !s.Refines(Set{Int}, Set{Int}) || s.Refines(Set{Int}, Set{String}) {
		t.Fatal("set rule wrong")
	}
	if !s.Refines(Multiset{Int}, Multiset{Real}) {
		t.Fatal("multiset elementwise refinement fails")
	}
	if !s.Refines(Sequence{Int}, Sequence{Int}) {
		t.Fatal("sequence rule wrong")
	}
	if s.Refines(Set{Int}, Multiset{Int}) || s.Refines(Multiset{Int}, Sequence{Int}) {
		t.Fatal("different constructors must not refine")
	}
}

func TestRefinesRecursiveClassesTerminates(t *testing.T) {
	// PROFESSOR and SCHOOL reference each other; Refines must terminate.
	s := universitySchema(t)
	_ = s.Refines(Named{"PROFESSOR"}, Named{"SCHOOL"})
	_ = s.Refines(Named{"SCHOOL"}, Named{"SCHOOL"})
	// Mutually recursive identical structure: coinductive acceptance.
	r := NewSchema()
	_ = r.AddClass("X", Tuple{Fields: []Field{{"next", Named{"Y"}}}})
	_ = r.AddClass("Y", Tuple{Fields: []Field{{"next", Named{"X"}}}})
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if !r.Refines(Named{"X"}, Named{"X"}) {
		t.Fatal("reflexivity fails on recursive class")
	}
}

func TestCheckValueElementaryAndDomains(t *testing.T) {
	s := footballSchema(t)
	if err := s.CheckValue(Named{"NAME"}, value.Str("milan"), NilAllowed); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckValue(Named{"NAME"}, value.Int(3), NilAllowed); err == nil {
		t.Fatal("int accepted for NAME")
	}
	score := value.NewTuple(
		value.Field{Label: "home", Value: value.Int(2)},
		value.Field{Label: "guest", Value: value.Int(1)},
	)
	if err := s.CheckValue(Named{"SCORE"}, score, NilAllowed); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckValue(Real, value.Int(3), NilAllowed); err != nil {
		t.Fatal("int must be accepted for real position")
	}
}

func TestCheckValueClassReferences(t *testing.T) {
	s := universitySchema(t)
	// dean is a class-typed position: oid required.
	if err := s.CheckValue(Named{"PROFESSOR"}, value.Ref(5), NilAllowed); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckValue(Named{"PROFESSOR"}, value.Ref(value.NilOID), NilAllowed); err != nil {
		t.Fatal("nil oid must be legal under NilAllowed")
	}
	if err := s.CheckValue(Named{"PROFESSOR"}, value.Ref(value.NilOID), NilForbidden); err == nil {
		t.Fatal("nil oid accepted under NilForbidden")
	}
	if err := s.CheckValue(Named{"PROFESSOR"}, value.Str("x"), NilAllowed); err == nil {
		t.Fatal("string accepted in class position")
	}
}

func TestCheckValueCollections(t *testing.T) {
	s := footballSchema(t)
	roles := value.NewSet(value.Int(1), value.Int(2))
	if err := s.CheckValue(Set{Named{"ROLE"}}, roles, NilAllowed); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckValue(Set{Named{"ROLE"}}, value.NewSet(value.Str("x")), NilAllowed); err == nil {
		t.Fatal("wrong element type accepted")
	}
	players := value.NewSequence(value.Ref(1), value.Ref(2))
	if err := s.CheckValue(Sequence{Named{"PLAYER"}}, players, NilAllowed); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckValue(Sequence{Named{"PLAYER"}}, value.NewSet(value.Ref(1)), NilAllowed); err == nil {
		t.Fatal("set accepted for sequence")
	}
	if err := s.CheckValue(Multiset{Int}, value.NewMultiset(value.Int(1), value.Int(1)), NilAllowed); err != nil {
		t.Fatal(err)
	}
}

func TestCheckValueMissingTupleComponent(t *testing.T) {
	s := footballSchema(t)
	bad := value.NewTuple(value.Field{Label: "home", Value: value.Int(2)})
	if err := s.CheckValue(Named{"SCORE"}, bad, NilAllowed); err == nil {
		t.Fatal("missing component accepted")
	}
}

func TestEqualType(t *testing.T) {
	a := Tuple{Fields: []Field{{"x", Int}, {"y", Set{String}}}}
	b := Tuple{Fields: []Field{{"x", Int}, {"y", Set{String}}}}
	c := Tuple{Fields: []Field{{"x", Int}, {"y", Set{Int}}}}
	if !EqualType(a, b) || EqualType(a, c) {
		t.Fatal("EqualType wrong on tuples")
	}
	if !EqualType(nil, nil) || EqualType(nil, Int) {
		t.Fatal("EqualType nil handling wrong")
	}
	if EqualType(Set{Int}, Multiset{Int}) {
		t.Fatal("different constructors equal")
	}
	if !EqualType(Named{"a"}, Named{"a"}) || EqualType(Named{"a"}, Named{"b"}) {
		t.Fatal("EqualType wrong on named")
	}
}

func TestTypeStringRendering(t *testing.T) {
	tt := Tuple{Fields: []Field{{"a", Int}, {"b", Set{Named{"role"}}}}}
	if got := tt.String(); got != "(a: integer, b: {role})" {
		t.Fatalf("tuple type string = %q", got)
	}
	if got := (Sequence{Named{"player"}}).String(); got != "<player>" {
		t.Fatalf("sequence type string = %q", got)
	}
	if got := (Multiset{Int}).String(); got != "[integer]" {
		t.Fatalf("multiset type string = %q", got)
	}
}
