package types

import "fmt"

// EffectiveTuple computes the flattened tuple type of a class or
// association: whole-RHS name aliases (the paper's `IP = PAIR`) are
// expanded, and components that embody a declared isa relationship (the
// superclass reference in `STUDENT = (PERSON, SCHOOL); STUDENT isa PERSON`)
// are spliced into the inherited attributes of the superclass. All other
// components are kept verbatim: a class-typed component denotes object
// sharing, a domain-typed component a complex value.
func (s *Schema) EffectiveTuple(name string) (Tuple, error) {
	name = Canon(name)
	if s.effective == nil {
		s.effective = map[string]Tuple{}
	}
	if t, ok := s.effective[name]; ok {
		return t, nil
	}
	t, err := s.effectiveTuple(name, map[string]bool{})
	if err != nil {
		return Tuple{}, err
	}
	s.effective[name] = t
	return t, nil
}

func (s *Schema) effectiveTuple(name string, visiting map[string]bool) (Tuple, error) {
	if visiting[name] {
		return Tuple{}, fmt.Errorf("types: recursive type equation through %q", name)
	}
	visiting[name] = true
	defer delete(visiting, name)

	d, ok := s.decls[name]
	if !ok {
		return Tuple{}, fmt.Errorf("types: undeclared name %q", name)
	}
	rhs := d.RHS
	// Whole-RHS aliases: follow names until a structural type appears.
	for {
		n, isName := rhs.(Named)
		if !isName {
			break
		}
		target := Canon(n.Name)
		td, ok := s.decls[target]
		if !ok {
			return Tuple{}, fmt.Errorf("types: %s %q aliases undeclared %q", d.Kind, name, target)
		}
		if td.Kind == DeclFunction {
			return Tuple{}, fmt.Errorf("types: %s %q aliases function %q", d.Kind, name, target)
		}
		if td.Kind == DeclClass || td.Kind == DeclAssociation {
			return s.effectiveTuple(target, visiting)
		}
		rhs = td.RHS // domain alias; keep unfolding
	}
	tup, ok := rhs.(Tuple)
	if !ok {
		return Tuple{}, fmt.Errorf("types: %s %q must have a tuple structure, got %s", d.Kind, name, rhs)
	}

	var out []Field
	addField := func(f Field) error {
		for _, prev := range out {
			if prev.Label == f.Label {
				if EqualType(prev.Type, f.Type) {
					return nil // repeated inheritance of the same attribute
				}
				return fmt.Errorf("types: %s %q: label %q inherited/declared twice with different types (%s vs %s); rename one component",
					d.Kind, name, f.Label, prev.Type, f.Type)
			}
		}
		out = append(out, f)
		return nil
	}

	for _, f := range tup.Fields {
		if f.Label == "" {
			return Tuple{}, fmt.Errorf("types: %s %q: component %s has no label", d.Kind, name, f.Type)
		}
		if n, isName := f.Type.(Named); isName {
			super := Canon(n.Name)
			if d.Kind == DeclClass && s.isInheritanceComponent(name, f.Label, super) {
				inherited, err := s.effectiveTuple(super, visiting)
				if err != nil {
					return Tuple{}, err
				}
				for _, inf := range inherited.Fields {
					if err := addField(inf); err != nil {
						return Tuple{}, err
					}
				}
				continue
			}
		}
		if err := addField(f); err != nil {
			return Tuple{}, err
		}
	}
	return Tuple{Fields: out}, nil
}

// isInheritanceComponent reports whether the RHS component of sub with the
// given label and class type super embodies a declared `sub [label] isa
// super` edge.
func (s *Schema) isInheritanceComponent(sub, label, super string) bool {
	if !s.IsClass(super) {
		return false
	}
	for _, e := range s.DirectSupers(sub) {
		if e.Super != super {
			continue
		}
		want := e.Label
		if want == "" {
			want = Canon(super)
		}
		if want == label {
			return true
		}
	}
	return false
}

// ExpandDomains resolves domain names inside a type descriptor to their
// structural definitions, leaving class references intact (a class-typed
// position holds an oid at the instance level). Association names are
// illegal inside component positions and reported as errors by Validate;
// here they expand like domains so that diagnostics elsewhere stay sane.
func (s *Schema) ExpandDomains(t Type) (Type, error) {
	return s.expandDomains(t, map[string]bool{})
}

func (s *Schema) expandDomains(t Type, visiting map[string]bool) (Type, error) {
	switch x := t.(type) {
	case Elementary:
		return x, nil
	case Named:
		name := Canon(x.Name)
		d, ok := s.decls[name]
		if !ok {
			return nil, fmt.Errorf("types: undeclared name %q", name)
		}
		switch d.Kind {
		case DeclClass:
			return Named{Name: name}, nil // oid reference
		case DeclFunction:
			return nil, fmt.Errorf("types: function %q used as a type", name)
		default:
			if visiting[name] {
				return nil, fmt.Errorf("types: recursive domain %q", name)
			}
			visiting[name] = true
			defer delete(visiting, name)
			if d.Kind == DeclAssociation {
				eff, err := s.EffectiveTuple(name)
				if err != nil {
					return nil, err
				}
				return s.expandDomains(eff, visiting)
			}
			return s.expandDomains(d.RHS, visiting)
		}
	case Tuple:
		fs := make([]Field, len(x.Fields))
		for i, f := range x.Fields {
			et, err := s.expandDomains(f.Type, visiting)
			if err != nil {
				return nil, err
			}
			fs[i] = Field{Label: f.Label, Type: et}
		}
		return Tuple{Fields: fs}, nil
	case Set:
		e, err := s.expandDomains(x.Elem, visiting)
		if err != nil {
			return nil, err
		}
		return Set{Elem: e}, nil
	case Multiset:
		e, err := s.expandDomains(x.Elem, visiting)
		if err != nil {
			return nil, err
		}
		return Multiset{Elem: e}, nil
	case Sequence:
		e, err := s.expandDomains(x.Elem, visiting)
		if err != nil {
			return nil, err
		}
		return Sequence{Elem: e}, nil
	}
	return nil, fmt.Errorf("types: unknown type %T", t)
}
