package types

// Refinement — Appendix A of the paper.
//
// A type τ1 is a refinement of τ2 (τ1 ≤ τ2) iff one of:
//
//  1. τ1 ∈ D ∪ C ∪ {elementary} and τ1 = τ2;
//  2. τ1 ∈ D ∪ C and Σ(τ1) ≤ τ2;
//  3. τ1, τ2 ∈ C and Σ(τ1) ≤ Σ(τ2);
//  4. tuple rule: τ2's labels are a subset of τ1's, componentwise refining;
//  5–7. set/multiset/sequence rules: elementwise refining.
//
// For classes Σ is taken as the *effective* tuple (inheritance spliced), so
// that `STUDENT = (PERSON, SCHOOL); STUDENT isa PERSON` satisfies
// STUDENT ≤ PERSON as the paper intends. Recursive class references are
// handled coinductively: a revisited pair is assumed to refine.

// Refines reports whether τ1 ≤ τ2 under schema s.
func (s *Schema) Refines(t1, t2 Type) bool {
	return s.refines(t1, t2, map[[2]string]bool{})
}

// Compatible reports whether two types unify, i.e. one refines the other
// (§3.1: "two types are compatible if one is obtained as a refinement of
// the other one").
func (s *Schema) Compatible(t1, t2 Type) bool {
	return s.Refines(t1, t2) || s.Refines(t2, t1)
}

func (s *Schema) refines(t1, t2 Type, visiting map[[2]string]bool) bool {
	// Rule 1: identical elementary or identical names.
	switch x := t1.(type) {
	case Elementary:
		if y, ok := t2.(Elementary); ok {
			if x.K == y.K {
				return true
			}
			// Integers refine reals (numeric widening, in the spirit of the
			// paper's "other elementary types may be added").
			if x.K == KindInt && y.K == KindReal {
				return true
			}
		}
	case Named:
		if y, ok := t2.(Named); ok && Canon(x.Name) == Canon(y.Name) {
			return true
		}
	}

	// Rules 2 and 3: unfold named LHS; for class-class pairs compare
	// effective tuples.
	if n1, ok := t1.(Named); ok {
		name1 := Canon(n1.Name)
		d1, declared := s.decls[name1]
		if !declared {
			return false
		}
		if n2, ok2 := t2.(Named); ok2 {
			name2 := Canon(n2.Name)
			d2, declared2 := s.decls[name2]
			if declared2 && d1.Kind == DeclClass && d2.Kind == DeclClass {
				key := [2]string{name1, name2}
				if visiting[key] {
					return true // coinductive assumption
				}
				visiting[key] = true
				defer delete(visiting, key)
				e1, err1 := s.EffectiveTuple(name1)
				e2, err2 := s.EffectiveTuple(name2)
				if err1 != nil || err2 != nil {
					return false
				}
				return s.refines(e1, e2, visiting)
			}
		}
		// Rule 2: Σ(τ1) ≤ τ2.
		var unfolded Type
		switch d1.Kind {
		case DeclClass, DeclAssociation:
			eff, err := s.EffectiveTuple(name1)
			if err != nil {
				return false
			}
			unfolded = eff
		case DeclDomain:
			unfolded = d1.RHS
		default:
			return false
		}
		key := [2]string{name1, t2.String()}
		if visiting[key] {
			return true
		}
		visiting[key] = true
		defer delete(visiting, key)
		return s.refines(unfolded, t2, visiting)
	}

	// Structural rules 4–7.
	switch x := t1.(type) {
	case Tuple:
		y, ok := t2.(Tuple)
		if !ok {
			return false
		}
		if len(y.Fields) > len(x.Fields) {
			return false
		}
		for _, fy := range y.Fields {
			fx, found := x.Get(fy.Label)
			if !found || !s.refines(fx.Type, fy.Type, visiting) {
				return false
			}
		}
		return true
	case Set:
		y, ok := t2.(Set)
		return ok && s.refines(x.Elem, y.Elem, visiting)
	case Multiset:
		y, ok := t2.(Multiset)
		return ok && s.refines(x.Elem, y.Elem, visiting)
	case Sequence:
		y, ok := t2.(Sequence)
		return ok && s.refines(x.Elem, y.Elem, visiting)
	}
	return false
}
