package types

import (
	"fmt"

	"logres/internal/value"
)

// RefPolicy controls whether nil oids are legal in class-typed positions.
// Class equations accept nil references; associations must reference
// existing objects, so nil is illegal there (§2.1).
type RefPolicy int

// Reference policies.
const (
	NilAllowed RefPolicy = iota
	NilForbidden
)

// CheckValue verifies that v is a legal element of [t] (Appendix A,
// Definition 3), structurally: class-typed positions must hold oid
// references (or nil, policy permitting); domain names are expanded;
// constructors recurse. It does not check that referenced oids exist —
// that is the instance-level referential constraint.
func (s *Schema) CheckValue(t Type, v value.Value, policy RefPolicy) error {
	et, err := s.ExpandDomains(t)
	if err != nil {
		return err
	}
	return s.checkValue(et, v, policy, "")
}

func (s *Schema) checkValue(t Type, v value.Value, policy RefPolicy, path string) error {
	at := func() string {
		if path == "" {
			return ""
		}
		return " at " + path
	}
	switch x := t.(type) {
	case Elementary:
		want := map[Kind]value.Kind{
			KindInt:    value.KindInt,
			KindReal:   value.KindReal,
			KindString: value.KindString,
			KindBool:   value.KindBool,
		}[x.K]
		if v.Kind() == want {
			return nil
		}
		// Integers are legal where reals are expected.
		if x.K == KindReal && v.Kind() == value.KindInt {
			return nil
		}
		return fmt.Errorf("types: expected %s, got %s %s%s", x.K, v.Kind(), v, at())
	case Named: // class reference position
		switch v.Kind() {
		case value.KindOID:
			if value.OID(v.(value.Ref)).IsNil() && policy == NilForbidden {
				return fmt.Errorf("types: nil oid illegal in association component of class %s%s", x.Name, at())
			}
			return nil
		case value.KindNull:
			if policy == NilForbidden {
				return fmt.Errorf("types: nil reference illegal in association component of class %s%s", x.Name, at())
			}
			return nil
		}
		return fmt.Errorf("types: expected reference to class %s, got %s %s%s", x.Name, v.Kind(), v, at())
	case Tuple:
		tv, ok := v.(value.Tuple)
		if !ok {
			return fmt.Errorf("types: expected tuple %s, got %s %s%s", x, v.Kind(), v, at())
		}
		for _, f := range x.Fields {
			fv, found := tv.Get(f.Label)
			if !found {
				return fmt.Errorf("types: tuple %s missing component %q%s", tv, f.Label, at())
			}
			sub := f.Label
			if path != "" {
				sub = path + "." + f.Label
			}
			if err := s.checkValue(f.Type, fv, policy, sub); err != nil {
				return err
			}
		}
		return nil
	case Set:
		sv, ok := v.(value.Set)
		if !ok {
			return fmt.Errorf("types: expected set %s, got %s %s%s", x, v.Kind(), v, at())
		}
		for _, e := range sv.Elems() {
			if err := s.checkValue(x.Elem, e, policy, path+"{}"); err != nil {
				return err
			}
		}
		return nil
	case Multiset:
		mv, ok := v.(value.Multiset)
		if !ok {
			return fmt.Errorf("types: expected multiset %s, got %s %s%s", x, v.Kind(), v, at())
		}
		for _, e := range mv.Elems() {
			if err := s.checkValue(x.Elem, e, policy, path+"[]"); err != nil {
				return err
			}
		}
		return nil
	case Sequence:
		qv, ok := v.(value.Sequence)
		if !ok {
			return fmt.Errorf("types: expected sequence %s, got %s %s%s", x, v.Kind(), v, at())
		}
		for _, e := range qv.Elems() {
			if err := s.checkValue(x.Elem, e, policy, path+"<>"); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("types: unknown type descriptor %T%s", t, at())
}
