// Package types implements the static structure of a LOGRES database:
// type descriptors, type equations, the schema function Σ together with the
// isa hierarchy, the refinement relation τ1 ≤ τ2 of Appendix A, and the
// structural validation rules of §2 of the paper (domains may not contain
// classes, associations may not contain associations, multiple inheritance
// requires a common ancestor, …).
package types

import (
	"strconv"
	"strings"
)

// Kind identifies the shape of a type descriptor.
type Kind int

// The kinds of LOGRES type descriptors (Definition 1 of the paper, plus the
// extra elementary types real and boolean that the paper explicitly allows).
const (
	KindInt Kind = iota
	KindReal
	KindString
	KindBool
	KindNamed // reference to a domain, class, or association name
	KindTuple
	KindSet
	KindMultiset
	KindSequence
)

var kindNames = [...]string{
	KindInt:      "integer",
	KindReal:     "real",
	KindString:   "string",
	KindBool:     "boolean",
	KindNamed:    "named",
	KindTuple:    "tuple",
	KindSet:      "set",
	KindMultiset: "multiset",
	KindSequence: "sequence",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// Type is a LOGRES type descriptor.
type Type interface {
	Kind() Kind
	String() string
}

// Elementary is one of the built-in elementary types.
type Elementary struct{ K Kind }

// Named refers to another schema name (domain, class, or, in association
// positions, a class).
type Named struct{ Name string }

// Field is one labelled component of a tuple type. When a type appears in a
// RHS without an explicit label, the parser labels it with the (lower-cased)
// type name — the paper's convention that names in a RHS must be unique
// unless distinguished by labels.
type Field struct {
	Label string
	Type  Type
}

// Tuple is the tuple (record) constructor.
type Tuple struct{ Fields []Field }

// Set is the set constructor { }.
type Set struct{ Elem Type }

// Multiset is the multiset constructor [ ].
type Multiset struct{ Elem Type }

// Sequence is the sequence constructor < >.
type Sequence struct{ Elem Type }

// Convenience singletons.
var (
	Int    = Elementary{KindInt}
	Real   = Elementary{KindReal}
	String = Elementary{KindString}
	Bool   = Elementary{KindBool}
)

func (e Elementary) Kind() Kind { return e.K }
func (Named) Kind() Kind        { return KindNamed }
func (Tuple) Kind() Kind        { return KindTuple }
func (Set) Kind() Kind          { return KindSet }
func (Multiset) Kind() Kind     { return KindMultiset }
func (Sequence) Kind() Kind     { return KindSequence }

func (e Elementary) String() string { return e.K.String() }
func (n Named) String() string      { return n.Name }

func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range t.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		if f.Label != "" {
			b.WriteString(f.Label)
			b.WriteString(": ")
		}
		b.WriteString(f.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

func (s Set) String() string      { return "{" + s.Elem.String() + "}" }
func (m Multiset) String() string { return "[" + m.Elem.String() + "]" }
func (q Sequence) String() string { return "<" + q.Elem.String() + ">" }

// Get returns the field with the given label.
func (t Tuple) Get(label string) (Field, bool) {
	for _, f := range t.Fields {
		if f.Label == label {
			return f, true
		}
	}
	return Field{}, false
}

// EqualType reports structural equality of two type descriptors.
func EqualType(a, b Type) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a.Kind() != b.Kind() {
		return false
	}
	switch x := a.(type) {
	case Elementary:
		return x.K == b.(Elementary).K
	case Named:
		return x.Name == b.(Named).Name
	case Tuple:
		y := b.(Tuple)
		if len(x.Fields) != len(y.Fields) {
			return false
		}
		for i := range x.Fields {
			if x.Fields[i].Label != y.Fields[i].Label || !EqualType(x.Fields[i].Type, y.Fields[i].Type) {
				return false
			}
		}
		return true
	case Set:
		return EqualType(x.Elem, b.(Set).Elem)
	case Multiset:
		return EqualType(x.Elem, b.(Multiset).Elem)
	case Sequence:
		return EqualType(x.Elem, b.(Sequence).Elem)
	}
	return false
}
