package types

import (
	"errors"
	"fmt"
)

// Validate checks every structural rule of §2 and Appendix A:
//
//   - all referenced names are declared;
//   - domains contain no class or association names (transitively);
//   - associations contain only classes and domains (no nested
//     associations) and class components reference existing classes;
//   - classes contain only classes and domains;
//   - tuple labels are unique (after inheritance splicing);
//   - isa edges connect classes, form a strict partial order (no cycles)
//     and satisfy the refinement condition C1 ≤ C2;
//   - multiple inheritance only among classes sharing a common ancestor;
//   - labelled isa edges name an actual RHS component;
//   - function signatures resolve.
//
// It returns all problems found, joined.
func (s *Schema) Validate() error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("types: "+format, args...))
	}

	// Per-declaration structural checks.
	for _, name := range s.order {
		d := s.decls[name]
		switch d.Kind {
		case DeclDomain:
			s.checkComponent(name, d.RHS, compDomain, report)
		case DeclClass:
			s.checkComponent(name, d.RHS, compClass, report)
			if _, err := s.EffectiveTuple(name); err != nil {
				errs = append(errs, err)
			}
		case DeclAssociation:
			s.checkComponent(name, d.RHS, compAssociation, report)
			if _, err := s.EffectiveTuple(name); err != nil {
				errs = append(errs, err)
			}
		case DeclFunction:
			if d.Arg != nil {
				s.checkComponent(name, d.Arg, compDomain|compAllowClass, report)
			}
			if d.Result == nil {
				report("function %q has no result type", name)
			} else {
				s.checkComponent(name, d.Result, compDomain|compAllowClass, report)
			}
		}
	}

	// isa checks.
	for _, e := range s.isa {
		sub, okSub := s.decls[e.Sub]
		super, okSuper := s.decls[e.Super]
		if !okSub || sub.Kind != DeclClass {
			report("isa: %q is not a declared class", e.Sub)
			continue
		}
		if !okSuper || super.Kind != DeclClass {
			report("isa: %q is not a declared class", e.Super)
			continue
		}
		if e.Sub == e.Super {
			report("isa: %q isa itself", e.Sub)
			continue
		}
	}
	if cyc := s.isaCycle(); cyc != "" {
		report("isa hierarchy contains a cycle through %q", cyc)
		return errors.Join(errs...) // cyclic schemas break the checks below
	}
	for _, e := range s.isa {
		if !s.IsClass(e.Sub) || !s.IsClass(e.Super) {
			continue
		}
		// Labelled edges must name an actual RHS component of class type.
		if err := s.checkIsaLabel(e); err != nil {
			errs = append(errs, err)
		}
		// Refinement condition (Definition 2).
		if !s.Refines(Named{Name: e.Sub}, Named{Name: e.Super}) {
			report("isa: %s is not a refinement of %s", e.Sub, e.Super)
		}
	}
	// Multiple inheritance: direct supers must pairwise share an ancestor.
	for _, name := range s.NamesOf(DeclClass) {
		supers := s.DirectSupers(name)
		for i := 0; i < len(supers); i++ {
			for j := i + 1; j < len(supers); j++ {
				a, b := supers[i].Super, supers[j].Super
				if !s.IsClass(a) || !s.IsClass(b) {
					continue
				}
				if !s.SameHierarchy(a, b) {
					report("multiple inheritance: %s isa %s and %s isa %s, but %s and %s share no common ancestor",
						name, a, name, b, a, b)
				}
			}
		}
	}
	return errors.Join(errs...)
}

type compMode int

const (
	compDomain      compMode = 1 << iota // inside a domain: no classes, no associations
	compClass                            // inside a class RHS: classes + domains
	compAssociation                      // inside an association RHS: classes + domains
	compAllowClass                       // modifier: class references allowed
)

// checkComponent walks a type descriptor checking name resolution, label
// uniqueness, and the containment rules of §2.1.
func (s *Schema) checkComponent(owner string, t Type, mode compMode, report func(string, ...any)) {
	switch x := t.(type) {
	case nil:
		report("%q has no type equation", owner)
	case Elementary:
	case Named:
		name := Canon(x.Name)
		d, ok := s.decls[name]
		if !ok {
			report("%q references undeclared name %q", owner, name)
			return
		}
		switch d.Kind {
		case DeclFunction:
			report("%q references function %q as a type", owner, name)
		case DeclClass:
			if mode&compDomain != 0 && mode&compAllowClass == 0 {
				report("domain %q references class %q (domains may not contain classes)", owner, name)
			}
		case DeclAssociation:
			// An association name is only legal as a whole-RHS alias, which
			// the callers pass directly; nested references are errors for
			// associations ("associations cannot contain other
			// associations") and for domains.
			if mode&compDomain != 0 {
				report("domain %q references association %q", owner, name)
			}
		}
	case Tuple:
		seen := map[string]bool{}
		for _, f := range x.Fields {
			if f.Label == "" {
				report("%q: tuple component %s has no label", owner, f.Type)
			} else if seen[f.Label] {
				report("%q: duplicate label %q", owner, f.Label)
			}
			seen[f.Label] = true
			s.checkNested(owner, f.Type, mode, report)
		}
	case Set:
		s.checkNested(owner, x.Elem, mode, report)
	case Multiset:
		s.checkNested(owner, x.Elem, mode, report)
	case Sequence:
		s.checkNested(owner, x.Elem, mode, report)
	default:
		report("%q: unknown type descriptor %T", owner, t)
	}
}

// checkNested checks a component position (not the whole RHS): here
// association names are always illegal.
func (s *Schema) checkNested(owner string, t Type, mode compMode, report func(string, ...any)) {
	if n, ok := t.(Named); ok {
		name := Canon(n.Name)
		if d, declared := s.decls[name]; declared && d.Kind == DeclAssociation {
			report("%q embeds association %q in a component position", owner, name)
			return
		}
	}
	s.checkComponent(owner, t, mode, report)
}

func (s *Schema) checkIsaLabel(e IsaEdge) error {
	d := s.decls[e.Sub]
	tup, ok := d.RHS.(Tuple)
	if !ok {
		// Alias RHS: the inherited component is implicit; accept.
		return nil
	}
	want := e.Label
	if want == "" {
		want = Canon(e.Super)
	}
	for _, f := range tup.Fields {
		if f.Label != want {
			continue
		}
		if n, isName := f.Type.(Named); isName && Canon(n.Name) == e.Super {
			return nil
		}
		return fmt.Errorf("types: isa %s %s isa %s: component %q is not of class %s",
			e.Sub, e.Label, e.Super, want, e.Super)
	}
	// No matching component: legal only when the subclass repeats the
	// superclass attributes itself (checked by the refinement condition).
	return nil
}

// isaCycle returns a class on an isa cycle, or "".
func (s *Schema) isaCycle() string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var cyc string
	var visit func(string) bool
	visit = func(n string) bool {
		switch color[n] {
		case gray:
			cyc = n
			return true
		case black:
			return false
		}
		color[n] = gray
		for _, e := range s.DirectSupers(n) {
			if visit(e.Super) {
				return true
			}
		}
		color[n] = black
		return false
	}
	for _, e := range s.isa {
		if visit(e.Sub) {
			return cyc
		}
	}
	return ""
}
