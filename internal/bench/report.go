package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a simple aligned-column report, one per experiment.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch x := c.(type) {
		case time.Duration:
			row[i] = formatDuration(x)
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprint(x)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}

// Print writes the aligned table.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// Timed runs f once and returns its duration.
func Timed(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}
