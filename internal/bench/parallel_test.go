package bench

import (
	"testing"

	"logres/internal/engine"
)

// runWorkers evaluates a workload's program at a given worker count and
// returns the full derived fact set.
func runWorkers(t *testing.T, s *TCSetup, workers int) *engine.FactSet {
	t.Helper()
	s.Program.SetWorkers(workers)
	counter := int64(0)
	f, err := s.Program.Run(s.EDB, &counter)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// The experiment workloads (E1 closure, E2 same-generation, E7 stratified
// negation) must derive identical fact sets at Workers=1 and Workers=8.
func TestWorkloadsParallelDeterminism(t *testing.T) {
	cases := []struct {
		name  string
		setup func() (*TCSetup, error)
	}{
		{"E1-chain", func() (*TCSetup, error) { return NewLogresTC(Chain(48), true) }},
		{"E1-random", func() (*TCSetup, error) { return NewLogresTC(Random(24, 96, 5), true) }},
		{"E2-sg", func() (*TCSetup, error) { return NewLogresSG(Tree(2, 4), true) }},
		{"E7-winlose", func() (*TCSetup, error) { return NewWinLose(Chain(32), true) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s1, err := tc.setup()
			if err != nil {
				t.Fatal(err)
			}
			s8, err := tc.setup()
			if err != nil {
				t.Fatal(err)
			}
			f1 := runWorkers(t, s1, 1)
			f8 := runWorkers(t, s8, 8)
			if !f1.Equal(f8) {
				t.Fatalf("Workers=8 diverged from serial: %d vs %d facts",
					f8.TotalSize(), f1.TotalSize())
			}
			if f1.TotalSize() == 0 {
				t.Fatal("workload derived nothing")
			}
		})
	}
}
