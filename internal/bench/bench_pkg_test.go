package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"logres/internal/ast"
)

// Correctness tests of the harness itself: all systems must agree on the
// workloads before their timings mean anything.

func TestGenerators(t *testing.T) {
	if got := len(Chain(5)); got != 5 {
		t.Fatalf("chain = %d edges", got)
	}
	tr := Tree(2, 3)
	if len(tr) != 2+4+8 {
		t.Fatalf("tree = %d edges", len(tr))
	}
	r1 := Random(10, 20, 42)
	r2 := Random(10, 20, 42)
	if len(r1) != 20 || len(r2) != 20 {
		t.Fatal("random size wrong")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("random generator not deterministic")
		}
	}
	for _, e := range r1 {
		if e.From == e.To {
			t.Fatal("self loop generated")
		}
	}
}

func TestAllTCSystemsAgree(t *testing.T) {
	edges := Chain(8)
	want := 8 * 9 / 2 // closure of a chain

	lg, err := NewLogresTC(edges, true)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := lg.Run(); err != nil || got != want {
		t.Fatalf("logres semi = %d (%v), want %d", got, err, want)
	}
	lgN, err := NewLogresTC(edges, false)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := lgN.Run(); err != nil || got != want {
		t.Fatalf("logres naive = %d (%v)", got, err)
	}
	dl, err := NewDatalogTC(edges, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := dl.Run(); got != want {
		t.Fatalf("datalog = %d", got)
	}
	al, err := NewAlgresTC(edges, true)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := al.Run(); err != nil || got != want {
		t.Fatalf("algres = %d (%v)", got, err)
	}
	alN, err := NewAlgresTC(edges, false)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := alN.Run(); err != nil || got != want {
		t.Fatalf("algres naive = %d (%v)", got, err)
	}
}

func TestSameGenerationWorkload(t *testing.T) {
	sg, err := NewLogresSG(Tree(2, 2), true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sg.RunSG()
	if err != nil {
		t.Fatal(err)
	}
	// 7 reflexive + 2 (siblings at level 1) + 12 (pairs at level 2) = 21.
	if got != 21 {
		t.Fatalf("sg = %d, want 21", got)
	}
}

func TestInventionWorkload(t *testing.T) {
	inv, err := NewInvention(10, true)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := inv.Run("item"); err != nil || got != 10 {
		t.Fatalf("invention = %d (%v)", got, err)
	}
	flat, err := NewInvention(10, false)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := flat.Run("flat"); err != nil || got != 10 {
		t.Fatalf("flat = %d (%v)", got, err)
	}
}

func TestIsaChainWorkload(t *testing.T) {
	for _, depth := range []int{0, 3} {
		s, leaf, err := NewIsaChain(depth, 5)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := s.Run(leaf); err != nil || got != 5 {
			t.Fatalf("depth %d: leaf = %d (%v)", depth, got, err)
		}
		if depth > 0 {
			if got, err := s.Run("c0"); err != nil || got != 5 {
				t.Fatalf("depth %d: root = %d (%v)", depth, got, err)
			}
		}
	}
}

func TestPowersetWorkload(t *testing.T) {
	s, err := NewPowerset(4)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s.Run(); err != nil || got != 16 {
		t.Fatalf("powerset = %d (%v), want 16", got, err)
	}
}

func TestWinLoseWorkload(t *testing.T) {
	edges := Chain(4) // reach 0..4; all reachable
	s, err := NewWinLose(edges, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.RunPred("unreach")
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("stratified: unreach = %d", got)
	}
	// Whole-program inflationary evaluation checks the negation against
	// the initial (empty) reach relation in step 1, so every node lands in
	// unreach — exactly the semantic gap E7 demonstrates.
	u, err := NewWinLose(edges, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err = u.RunPred("unreach")
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("whole-program: unreach = %d, want 5", got)
	}
}

func TestDescendantsWorkload(t *testing.T) {
	s, err := NewDescendants(Chain(3)) // 0->1->2->3
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.RunPred("ancestor")
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("ancestor = %d", got)
	}
}

func TestModeWorkloads(t *testing.T) {
	for _, mode := range []ast.Mode{ast.RIDI, ast.RADI, ast.RIDV, ast.RADV} {
		s, err := NewModeWorkload(6, mode)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Run()
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if got != 6 {
			t.Fatalf("mode %s: copyrel = %d", mode, got)
		}
	}
}

func TestSnapshotWorkload(t *testing.T) {
	s, err := NewSnapshot(20)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Encode()
	if err != nil || n == 0 {
		t.Fatalf("encode = %d (%v)", n, err)
	}
	facts, err := s.Decode()
	if err != nil || facts != 39 { // 20 items + 19 links
		t.Fatalf("decode = %d (%v)", facts, err)
	}
}

func TestAlgebraOpsWorkload(t *testing.T) {
	a := NewAlgebraOps(100)
	if a.Join() == 0 {
		t.Fatal("join empty")
	}
	n, err := a.NestUnnest()
	if err != nil || n != 100 {
		t.Fatalf("nest/unnest = %d (%v)", n, err)
	}
}

func TestTablePrinter(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"n", "time"}}
	tb.AddRow(10, 1500*time.Microsecond)
	tb.AddRow(20, 2*time.Second)
	tb.AddRow(30, 500*time.Nanosecond)
	var buf bytes.Buffer
	tb.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== demo", "1.50ms", "2.00s", "0.5µs"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestTimed(t *testing.T) {
	d, err := Timed(func() error { time.Sleep(time.Millisecond); return nil })
	if err != nil || d < time.Millisecond {
		t.Fatalf("timed = %v (%v)", d, err)
	}
}
