package bench

import (
	"bytes"
	"fmt"

	"logres/internal/algres"
	"logres/internal/ast"
	"logres/internal/datalog"
	"logres/internal/engine"
	"logres/internal/module"
	"logres/internal/parser"
	"logres/internal/storage"
	"logres/internal/types"
	"logres/internal/value"
)

// Baseline runners: the flat Datalog engine and the ALGRES algebra
// compiler, on the same closure workloads as the LOGRES engine.

// DatalogTC builds the flat-Datalog closure workload.
type DatalogTC struct {
	Program *datalog.Program
	DB      *datalog.DB
	Semi    bool
}

// NewDatalogTC compiles the baseline closure program.
func NewDatalogTC(edges []Edge, semiNaive bool) (*DatalogTC, error) {
	rules := []datalog.Rule{
		{Head: datalog.Atom{Pred: "tc", Args: []datalog.Term{datalog.V("X"), datalog.V("Y")}},
			Body: []datalog.Atom{{Pred: "edge", Args: []datalog.Term{datalog.V("X"), datalog.V("Y")}}}},
		{Head: datalog.Atom{Pred: "tc", Args: []datalog.Term{datalog.V("X"), datalog.V("Z")}},
			Body: []datalog.Atom{
				{Pred: "tc", Args: []datalog.Term{datalog.V("X"), datalog.V("Y")}},
				{Pred: "edge", Args: []datalog.Term{datalog.V("Y"), datalog.V("Z")}},
			}},
	}
	p, err := datalog.NewProgram(rules)
	if err != nil {
		return nil, err
	}
	db := datalog.NewDB()
	for _, e := range edges {
		db.Add("edge", datalog.Tuple{fmt.Sprint(e.From), fmt.Sprint(e.To)})
	}
	return &DatalogTC{Program: p, DB: db, Semi: semiNaive}, nil
}

// Run evaluates once and returns |tc|.
func (d *DatalogTC) Run() int {
	var out *datalog.DB
	if d.Semi {
		out = d.Program.EvalSemiNaive(d.DB)
	} else {
		out = d.Program.EvalNaive(d.DB)
	}
	return out.Size("tc")
}

// AlgresTC builds the algebra-compiled closure workload.
type AlgresTC struct {
	Program *algres.RuleProgram
	DB      *algres.DB
	Semi    bool
}

// NewAlgresTC compiles the closure rules to algebra (serial joins).
func NewAlgresTC(edges []Edge, semiNaive bool) (*AlgresTC, error) {
	return NewAlgresTCWorkers(edges, semiNaive, 1)
}

// NewAlgresTCWorkers compiles the closure rules to algebra with every
// join/anti-join running on the given worker count.
func NewAlgresTCWorkers(edges []Edge, semiNaive bool, joinWorkers int) (*AlgresTC, error) {
	rules, err := parser.ParseProgram(`
tc(src: X, dst: Y) <- edge(src: X, dst: Y).
tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
`)
	if err != nil {
		return nil, err
	}
	rp, err := algres.CompileRulesOpts(map[string][]string{
		"edge": {"src", "dst"},
		"tc":   {"src", "dst"},
	}, rules, algres.Opts{JoinWorkers: joinWorkers})
	if err != nil {
		return nil, err
	}
	db := algres.NewDB()
	rel := algres.NewRelation("src", "dst")
	for _, e := range edges {
		rel.InsertValues(value.Int(int64(e.From)), value.Int(int64(e.To)))
	}
	db.Set("edge", rel)
	return &AlgresTC{Program: rp, DB: db, Semi: semiNaive}, nil
}

// Run evaluates once and returns |tc|.
func (a *AlgresTC) Run() (int, error) {
	var out *algres.DB
	var err error
	if a.Semi {
		out, err = a.Program.EvalSemiNaive(a.DB.Clone(), 0)
	} else {
		out, err = a.Program.EvalNaive(a.DB.Clone(), 0)
	}
	if err != nil {
		return 0, err
	}
	tc, _ := out.Get("tc")
	return tc.Len(), nil
}

// ModeSetup is the E6 workload: the same n-fact update applied through
// each module mode.
type ModeSetup struct {
	Base *module.State
	Mod  *ast.Module
	Mode ast.Mode
}

// NewModeWorkload builds a state with n existing facts and a module
// inserting n more through a rule.
func NewModeWorkload(n int, mode ast.Mode) (*ModeSetup, error) {
	m, err := parser.ParseModule(`
associations
  OLD = (k: integer);
  NEW = (k: integer);
  COPYREL = (k: integer);
`)
	if err != nil {
		return nil, err
	}
	if err := m.Schema.Validate(); err != nil {
		return nil, err
	}
	st := module.NewState(m.Schema)
	for i := 0; i < n; i++ {
		st.E.Add(engine.Fact{Pred: "old", Tuple: value.NewTuple(
			value.Field{Label: "k", Value: value.Int(int64(i))},
		)})
	}
	rules, err := parser.ParseProgram(`copyrel(k: X) <- old(k: X).`)
	if err != nil {
		return nil, err
	}
	mod := &ast.Module{Schema: types.NewSchema(), Rules: rules}
	if mode.HasGoal() {
		goal, err := parser.ParseGoal(`?- copyrel(k: X).`)
		if err != nil {
			return nil, err
		}
		mod.Goal = goal
	}
	return &ModeSetup{Base: st, Mod: mod, Mode: mode}, nil
}

// Run applies the module once and returns the copy relation's size: the
// goal answer for data-invariant modes (RIDI leaves the state untouched),
// the resulting EDB size for data-variant modes.
func (s *ModeSetup) Run() (int, error) {
	res, err := module.Apply(s.Base, s.Mod, s.Mode, engine.DefaultOptions())
	if err != nil {
		return 0, err
	}
	if res.Answer != nil {
		return len(res.Answer.Rows), nil
	}
	return res.State.E.Size("copyrel"), nil
}

// SnapshotSetup is the E9 workload.
type SnapshotSetup struct {
	State *module.State
	Blob  []byte
}

// NewSnapshot builds a state with n objects and n association tuples and
// its encoded snapshot.
func NewSnapshot(n int) (*SnapshotSetup, error) {
	m, err := parser.ParseModule(`
classes ITEM = (k: integer, name: string);
associations LINKREL = (a: ITEM, b: ITEM);
`)
	if err != nil {
		return nil, err
	}
	st := module.NewState(m.Schema)
	for i := 1; i <= n; i++ {
		st.E.Add(engine.Fact{Pred: "item", IsClass: true, OID: value.OID(i),
			Tuple: value.NewTuple(
				value.Field{Label: "k", Value: value.Int(int64(i))},
				value.Field{Label: "name", Value: value.Str(fmt.Sprintf("item-%d", i))},
			)})
	}
	for i := 1; i < n; i++ {
		st.E.Add(engine.Fact{Pred: "linkrel", Tuple: value.NewTuple(
			value.Field{Label: "a", Value: value.Ref(value.OID(i))},
			value.Field{Label: "b", Value: value.Ref(value.OID(i + 1))},
		)})
	}
	st.Counter = int64(n)
	var buf bytes.Buffer
	if err := storage.SaveState(&buf, st); err != nil {
		return nil, err
	}
	return &SnapshotSetup{State: st, Blob: buf.Bytes()}, nil
}

// Encode writes one snapshot and returns its size.
func (s *SnapshotSetup) Encode() (int, error) {
	var buf bytes.Buffer
	if err := storage.SaveState(&buf, s.State); err != nil {
		return 0, err
	}
	return buf.Len(), nil
}

// Decode reads the snapshot back and returns the fact count.
func (s *SnapshotSetup) Decode() (int, error) {
	st, err := storage.LoadState(bytes.NewReader(s.Blob))
	if err != nil {
		return 0, err
	}
	return st.E.TotalSize(), nil
}

// AlgebraOps is the E10 microbench input: two joinable relations.
type AlgebraOps struct {
	L, R *algres.Relation
}

// NewAlgebraOps builds relations of n tuples.
func NewAlgebraOps(n int) *AlgebraOps {
	l := algres.NewRelation("a", "b")
	r := algres.NewRelation("b", "c")
	for i := 0; i < n; i++ {
		l.InsertValues(value.Int(int64(i)), value.Int(int64(i%97)))
		r.InsertValues(value.Int(int64(i%97)), value.Int(int64(i)))
	}
	return &AlgebraOps{L: l, R: r}
}

// Join runs the natural join and returns its cardinality.
func (a *AlgebraOps) Join() int { return algres.Join(a.L, a.R).Len() }

// JoinWorkers runs the partitioned parallel join and returns its
// cardinality.
func (a *AlgebraOps) JoinWorkers(workers int) int {
	return algres.JoinWorkers(a.L, a.R, workers).Len()
}

// JoinVec runs the vectorized columnar join and returns its cardinality.
func (a *AlgebraOps) JoinVec() int { return algres.JoinVec(a.L, a.R).Len() }

// NestUnnest nests then unnests and returns the restored cardinality.
func (a *AlgebraOps) NestUnnest() (int, error) {
	n, err := algres.Nest(a.L, []string{"a"}, "g")
	if err != nil {
		return 0, err
	}
	u, err := algres.Unnest(n, "g", "a")
	if err != nil {
		return 0, err
	}
	return u.Len(), nil
}
