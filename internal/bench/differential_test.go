package bench

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"logres/internal/algres"
	"logres/internal/datalog"
	"logres/internal/engine"
	"logres/internal/parser"
	"logres/internal/value"
)

// Three-way differential testing: random flat Datalog programs evaluated
// by the LOGRES engine, the ALGRES algebra compiler, and the flat Datalog
// baseline must produce identical relations. This pins the three
// implementations of the shared fragment against each other.

// randProgram generates a random positive program over binary relations
// r0..r2 and two IDB predicates p0, p1 with 2–5 rules.
type randProgram struct {
	src   string
	rules int
}

func genProgram(r *rand.Rand) randProgram {
	edbs := []string{"r0", "r1", "r2"}
	idbs := []string{"p0", "p1"}
	nRules := 2 + r.Intn(4)
	src := ""
	for i := 0; i < nRules; i++ {
		head := idbs[r.Intn(len(idbs))]
		// 1–3 body literals over EDBs and (for recursion) IDBs.
		nLits := 1 + r.Intn(3)
		vars := []string{"X", "Y", "Z", "W"}
		headA := vars[r.Intn(2)]
		headB := vars[r.Intn(2)+1]
		body := ""
		for j := 0; j < nLits; j++ {
			var pred string
			if j == 0 || r.Intn(3) > 0 {
				pred = edbs[r.Intn(len(edbs))]
			} else {
				pred = idbs[r.Intn(len(idbs))]
			}
			a := vars[r.Intn(3)]
			b := vars[r.Intn(3)]
			if j > 0 {
				body += ", "
			}
			body += fmt.Sprintf("%s(a: %s, b: %s)", pred, a, b)
		}
		// Ensure head variables are bound: append one literal binding both.
		body += fmt.Sprintf(", %s(a: %s, b: %s)", edbs[r.Intn(len(edbs))], headA, headB)
		src += fmt.Sprintf("%s(a: %s, b: %s) <- %s.\n", head, headA, headB, body)
	}
	return randProgram{src: src, rules: nRules}
}

func genFacts(r *rand.Rand, n int) [][3]int {
	var out [][3]int // relation index, a, b
	for i := 0; i < n; i++ {
		out = append(out, [3]int{r.Intn(3), r.Intn(4), r.Intn(4)})
	}
	return out
}

func TestDifferentialThreeWay(t *testing.T) {
	schemas := map[string][]string{
		"r0": {"a", "b"}, "r1": {"a", "b"}, "r2": {"a", "b"},
		"p0": {"a", "b"}, "p1": {"a", "b"},
	}
	moduleSrc := `
associations
  R0 = (a: integer, b: integer);
  R1 = (a: integer, b: integer);
  R2 = (a: integer, b: integer);
  P0 = (a: integer, b: integer);
  P1 = (a: integer, b: integer);
`
	m, err := parser.ParseModule(moduleSrc)
	if err != nil {
		t.Fatal(err)
	}

	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := genProgram(r)
		facts := genFacts(r, 6+r.Intn(10))
		rules, err := parser.ParseProgram(prog.src)
		if err != nil {
			t.Fatalf("generated program does not parse: %v\n%s", err, prog.src)
		}

		// 1. LOGRES engine.
		eng, err := engine.Compile(m.Schema, rules, engine.DefaultOptions())
		if err != nil {
			t.Fatalf("engine compile: %v\n%s", err, prog.src)
		}
		edb := engine.NewFactSet()
		for _, f := range facts {
			edb.Add(engine.Fact{Pred: fmt.Sprintf("r%d", f[0]), Tuple: value.NewTuple(
				value.Field{Label: "a", Value: value.Int(int64(f[1]))},
				value.Field{Label: "b", Value: value.Int(int64(f[2]))},
			)})
		}
		counter := int64(0)
		engOut, err := eng.Run(edb, &counter)
		if err != nil {
			t.Fatalf("engine run: %v\n%s", err, prog.src)
		}

		// 2. ALGRES compiler.
		rp, err := algres.CompileRules(schemas, rules)
		if err != nil {
			t.Fatalf("algres compile: %v\n%s", err, prog.src)
		}
		adb := algres.NewDB()
		for i := 0; i < 3; i++ {
			adb.Set(fmt.Sprintf("r%d", i), algres.NewRelation("a", "b"))
		}
		for _, f := range facts {
			rel, _ := adb.Get(fmt.Sprintf("r%d", f[0]))
			rel.InsertValues(value.Int(int64(f[1])), value.Int(int64(f[2])))
		}
		aOut, err := rp.EvalSemiNaive(adb, 0)
		if err != nil {
			t.Fatalf("algres run: %v\n%s", err, prog.src)
		}

		// 3. Flat Datalog baseline.
		var dlRules []datalog.Rule
		for _, ru := range rules {
			dr := datalog.Rule{Head: datalog.Atom{
				Pred: ru.Head.Pred,
				Args: []datalog.Term{datalog.V(ru.Head.Args[0].Term.String()), datalog.V(ru.Head.Args[1].Term.String())},
			}}
			for _, l := range ru.Body {
				dr.Body = append(dr.Body, datalog.Atom{
					Pred: l.Pred,
					Args: []datalog.Term{datalog.V(l.Args[0].Term.String()), datalog.V(l.Args[1].Term.String())},
				})
			}
			dlRules = append(dlRules, dr)
		}
		dp, err := datalog.NewProgram(dlRules)
		if err != nil {
			t.Fatalf("datalog compile: %v\n%s", err, prog.src)
		}
		ddb := datalog.NewDB()
		for _, f := range facts {
			ddb.Add(fmt.Sprintf("r%d", f[0]), datalog.Tuple{fmt.Sprint(f[1]), fmt.Sprint(f[2])})
		}
		dOut := dp.EvalSemiNaive(ddb)

		// Compare the IDB relations across all three.
		for _, pred := range []string{"p0", "p1"} {
			engSet := map[string]bool{}
			for _, fact := range engOut.Facts(pred) {
				a, _ := fact.Tuple.Get("a")
				b, _ := fact.Tuple.Get("b")
				engSet[a.String()+","+b.String()] = true
			}
			aRel, _ := aOut.Get(pred)
			aSet := map[string]bool{}
			if aRel != nil {
				for _, tup := range aRel.Tuples() {
					a, _ := tup.Get("a")
					b, _ := tup.Get("b")
					aSet[a.String()+","+b.String()] = true
				}
			}
			dSet := map[string]bool{}
			for _, tup := range dOut.Tuples(pred) {
				dSet[tup[0]+","+tup[1]] = true
			}
			if len(engSet) != len(aSet) || len(engSet) != len(dSet) {
				t.Fatalf("size mismatch on %s: engine=%d algres=%d datalog=%d\nprogram:\n%s",
					pred, len(engSet), len(aSet), len(dSet), prog.src)
			}
			for k := range engSet {
				if !aSet[k] || !dSet[k] {
					t.Fatalf("tuple %s of %s missing in a baseline\nprogram:\n%s", k, pred, prog.src)
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
