// Package bench provides the workload generators and single-shot runners
// behind the benchmark harness (bench_test.go and cmd/logres-bench): the
// E1–E10 experiments of EXPERIMENTS.md. Each runner performs one complete
// evaluation and returns checkable result counts, so the same code backs
// testing.B benchmarks, the table-printing driver, and correctness tests.
package bench

import (
	"fmt"
	"math/rand"

	"logres/internal/engine"
	"logres/internal/parser"
	"logres/internal/types"
	"logres/internal/value"
)

// Edge is one directed edge of a synthetic graph.
type Edge struct{ From, To int }

// Chain returns the path graph 0 → 1 → … → n.
func Chain(n int) []Edge {
	out := make([]Edge, n)
	for i := 0; i < n; i++ {
		out[i] = Edge{i, i + 1}
	}
	return out
}

// Tree returns a complete tree with the given branching factor and depth
// (edges parent → child), nodes numbered in BFS order.
func Tree(branch, depth int) []Edge {
	var out []Edge
	next := 1
	frontier := []int{0}
	for d := 0; d < depth; d++ {
		var nf []int
		for _, p := range frontier {
			for b := 0; b < branch; b++ {
				out = append(out, Edge{p, next})
				nf = append(nf, next)
				next++
			}
		}
		frontier = nf
	}
	return out
}

// Random returns m random edges over n nodes (no self loops), with a
// deterministic seed.
func Random(n, m int, seed int64) []Edge {
	r := rand.New(rand.NewSource(seed))
	seen := map[[2]int]bool{}
	var out []Edge
	for len(out) < m {
		a, b := r.Intn(n), r.Intn(n)
		if a == b || seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		out = append(out, Edge{a, b})
	}
	return out
}

// tcSchema is the shared schema of the closure experiments.
const tcSchema = `
associations
  EDGE = (src: integer, dst: integer);
  TC = (src: integer, dst: integer);
`

// tcRules is the right-linear transitive-closure program.
const tcRules = `
tc(src: X, dst: Y) <- edge(src: X, dst: Y).
tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
`

// TCSetup holds a compiled LOGRES closure workload.
type TCSetup struct {
	Program *engine.Program
	EDB     *engine.FactSet
}

// NewLogresTC compiles the closure program and materializes the edge
// relation.
func NewLogresTC(edges []Edge, semiNaive bool) (*TCSetup, error) {
	m, err := parser.ParseModule(tcSchema)
	if err != nil {
		return nil, err
	}
	if err := m.Schema.Validate(); err != nil {
		return nil, err
	}
	rules, err := parser.ParseProgram(tcRules)
	if err != nil {
		return nil, err
	}
	opts := engine.DefaultOptions()
	opts.SemiNaive = semiNaive
	prog, err := engine.Compile(m.Schema, rules, opts)
	if err != nil {
		return nil, err
	}
	edb := engine.NewFactSet()
	for _, e := range edges {
		edb.Add(engine.Fact{Pred: "edge", Tuple: value.NewTuple(
			value.Field{Label: "src", Value: value.Int(int64(e.From))},
			value.Field{Label: "dst", Value: value.Int(int64(e.To))},
		)})
	}
	return &TCSetup{Program: prog, EDB: edb}, nil
}

// Run evaluates the closure once and returns the number of derived tc
// tuples.
func (s *TCSetup) Run() (int, error) {
	counter := int64(0)
	f, err := s.Program.Run(s.EDB, &counter)
	if err != nil {
		return 0, err
	}
	return f.Size("tc"), nil
}

// NewLogresTCSemantics builds the closure workload under either the
// inflationary or the non-inflationary semantics (E11).
func NewLogresTCSemantics(edges []Edge, nonInflationary bool) (*TCSetup, error) {
	m, err := parser.ParseModule(tcSchema)
	if err != nil {
		return nil, err
	}
	rules, err := parser.ParseProgram(tcRules)
	if err != nil {
		return nil, err
	}
	opts := engine.DefaultOptions()
	opts.NonInflationary = nonInflationary
	prog, err := engine.Compile(m.Schema, rules, opts)
	if err != nil {
		return nil, err
	}
	edb := engine.NewFactSet()
	for _, e := range edges {
		edb.Add(engine.Fact{Pred: "edge", Tuple: value.NewTuple(
			value.Field{Label: "src", Value: value.Int(int64(e.From))},
			value.Field{Label: "dst", Value: value.Int(int64(e.To))},
		)})
	}
	return &TCSetup{Program: prog, EDB: edb}, nil
}

// sgSchema/sgRules: the same-generation workload (E2, nonlinear
// recursion).
const sgSchema = `
associations
  PAR = (child: integer, parent: integer);
  PERSONREC = (p: integer);
  SG = (a: integer, b: integer);
`

const sgRules = `
sg(a: X, b: X) <- personrec(p: X).
sg(a: X, b: Y) <- par(child: X, parent: XP), sg(a: XP, b: YP), par(child: Y, parent: YP).
`

// NewLogresSG builds the same-generation workload over a tree.
func NewLogresSG(edges []Edge, semiNaive bool) (*TCSetup, error) {
	m, err := parser.ParseModule(sgSchema)
	if err != nil {
		return nil, err
	}
	rules, err := parser.ParseProgram(sgRules)
	if err != nil {
		return nil, err
	}
	opts := engine.DefaultOptions()
	opts.SemiNaive = semiNaive
	prog, err := engine.Compile(m.Schema, rules, opts)
	if err != nil {
		return nil, err
	}
	edb := engine.NewFactSet()
	nodes := map[int]bool{}
	for _, e := range edges {
		nodes[e.From] = true
		nodes[e.To] = true
		edb.Add(engine.Fact{Pred: "par", Tuple: value.NewTuple(
			value.Field{Label: "child", Value: value.Int(int64(e.To))},
			value.Field{Label: "parent", Value: value.Int(int64(e.From))},
		)})
	}
	for n := range nodes {
		edb.Add(engine.Fact{Pred: "personrec", Tuple: value.NewTuple(
			value.Field{Label: "p", Value: value.Int(int64(n))},
		)})
	}
	return &TCSetup{Program: prog, EDB: edb}, nil
}

// RunSG evaluates same-generation and returns |sg|.
func (s *TCSetup) RunSG() (int, error) {
	counter := int64(0)
	f, err := s.Program.Run(s.EDB, &counter)
	if err != nil {
		return 0, err
	}
	return f.Size("sg"), nil
}

// InventionSetup is the E3 workload: one object invented per seed fact.
type InventionSetup struct {
	Program *engine.Program
	EDB     *engine.FactSet
}

// NewInvention builds a workload inventing n objects (invent=true) or
// deriving n flat tuples (invent=false, the plain-derivation baseline).
func NewInvention(n int, invent bool) (*InventionSetup, error) {
	m, err := parser.ParseModule(`
classes ITEM = (k: integer);
associations
  SEED = (k: integer);
  FLAT = (k: integer);
`)
	if err != nil {
		return nil, err
	}
	src := `item(self: X, k: K) <- seed(k: K).`
	if !invent {
		src = `flat(k: K) <- seed(k: K).`
	}
	rules, err := parser.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	prog, err := engine.Compile(m.Schema, rules, engine.DefaultOptions())
	if err != nil {
		return nil, err
	}
	edb := engine.NewFactSet()
	for i := 0; i < n; i++ {
		edb.Add(engine.Fact{Pred: "seed", Tuple: value.NewTuple(
			value.Field{Label: "k", Value: value.Int(int64(i))},
		)})
	}
	return &InventionSetup{Program: prog, EDB: edb}, nil
}

// Run evaluates and returns the number of derived class/assoc facts.
func (s *InventionSetup) Run(pred string) (int, error) {
	counter := int64(0)
	f, err := s.Program.Run(s.EDB, &counter)
	if err != nil {
		return 0, err
	}
	return f.Size(pred), nil
}

// NewIsaChain builds the E4 workload: a k-level hierarchy (or a flat
// class when depth == 0) receiving n objects at the most specific level;
// the generated isa-propagation constraints fan each object out to every
// ancestor.
func NewIsaChain(depth, n int) (*InventionSetup, string, error) {
	src := "classes\n  C0 = (k: integer);\n"
	for d := 1; d <= depth; d++ {
		src += fmt.Sprintf("  C%d = (C%d, k%d: integer);\n", d, d-1, d)
		src += fmt.Sprintf("  C%d isa C%d;\n", d, d-1)
	}
	src += "associations SEED = (k: integer);\n"
	m, err := parser.ParseModule(src)
	if err != nil {
		return nil, "", err
	}
	if err := m.Schema.Validate(); err != nil {
		return nil, "", err
	}
	leaf := fmt.Sprintf("c%d", depth)
	ruleSrc := fmt.Sprintf("%s(self: X, k: K", leaf)
	for d := 1; d <= depth; d++ {
		ruleSrc += fmt.Sprintf(", k%d: K", d)
	}
	ruleSrc += ") <- seed(k: K).\n"
	rules, err := parser.ParseProgram(ruleSrc)
	if err != nil {
		return nil, "", err
	}
	prog, err := engine.Compile(m.Schema, rules, engine.DefaultOptions())
	if err != nil {
		return nil, "", err
	}
	edb := engine.NewFactSet()
	for i := 0; i < n; i++ {
		edb.Add(engine.Fact{Pred: "seed", Tuple: value.NewTuple(
			value.Field{Label: "k", Value: value.Int(int64(i))},
		)})
	}
	return &InventionSetup{Program: prog, EDB: edb}, leaf, nil
}

// PowersetSetup is the E5 workload (Example 3.3 at scale).
type PowersetSetup struct {
	Program *engine.Program
	EDB     *engine.FactSet
}

// NewPowerset builds the powerset program over a d-element relation.
func NewPowerset(d int) (*PowersetSetup, error) {
	m, err := parser.ParseModule(`
domains D = integer;
associations
  R = (d: D);
  POWER = (set: {D});
`)
	if err != nil {
		return nil, err
	}
	rules, err := parser.ParseProgram(`
power(set: X) <- X = {}.
power(set: X) <- r(d: Y), append({}, Y, X).
power(set: X) <- power(set: Y), power(set: Z), union(Y, Z, X).
`)
	if err != nil {
		return nil, err
	}
	prog, err := engine.Compile(m.Schema, rules, engine.DefaultOptions())
	if err != nil {
		return nil, err
	}
	edb := engine.NewFactSet()
	for i := 0; i < d; i++ {
		edb.Add(engine.Fact{Pred: "r", Tuple: value.NewTuple(
			value.Field{Label: "d", Value: value.Int(int64(i))},
		)})
	}
	return &PowersetSetup{Program: prog, EDB: edb}, nil
}

// Run evaluates and returns |power| (must be 2^d).
func (s *PowersetSetup) Run() (int, error) {
	counter := int64(0)
	f, err := s.Program.Run(s.EDB, &counter)
	if err != nil {
		return 0, err
	}
	return f.Size("power"), nil
}

// NewWinLose builds the E7 stratified-negation workload: win(X) ←
// move(X,Y), ¬win(Y) is unstratified; the two-relation version below is
// the stratified proxy (reach/unreach) used to compare stratified against
// whole-program inflationary evaluation.
func NewWinLose(edges []Edge, stratify bool) (*TCSetup, error) {
	m, err := parser.ParseModule(`
associations
  EDGE = (src: integer, dst: integer);
  NODE = (n: integer);
  REACH = (n: integer);
  UNREACH = (n: integer);
`)
	if err != nil {
		return nil, err
	}
	rules, err := parser.ParseProgram(`
reach(n: 0).
reach(n: Y) <- reach(n: X), edge(src: X, dst: Y).
unreach(n: X) <- node(n: X), not reach(n: X).
`)
	if err != nil {
		return nil, err
	}
	opts := engine.DefaultOptions()
	opts.Stratify = stratify
	prog, err := engine.Compile(m.Schema, rules, opts)
	if err != nil {
		return nil, err
	}
	edb := engine.NewFactSet()
	nodes := map[int]bool{}
	for _, e := range edges {
		nodes[e.From] = true
		nodes[e.To] = true
		edb.Add(engine.Fact{Pred: "edge", Tuple: value.NewTuple(
			value.Field{Label: "src", Value: value.Int(int64(e.From))},
			value.Field{Label: "dst", Value: value.Int(int64(e.To))},
		)})
	}
	for n := range nodes {
		edb.Add(engine.Fact{Pred: "node", Tuple: value.NewTuple(
			value.Field{Label: "n", Value: value.Int(int64(n))},
		)})
	}
	return &TCSetup{Program: prog, EDB: edb}, nil
}

// RunPred evaluates and returns the extension size of pred.
func (s *TCSetup) RunPred(pred string) (int, error) {
	counter := int64(0)
	f, err := s.Program.Run(s.EDB, &counter)
	if err != nil {
		return 0, err
	}
	return f.Size(types.Canon(pred)), nil
}

// NewDescendants builds the E8 data-function workload: descendants-per-
// person nested through a data function over a tree.
func NewDescendants(edges []Edge) (*TCSetup, error) {
	m, err := parser.ParseModule(`
associations
  PARENT = (par: integer, chil: integer);
  ANCESTOR = (anc: integer, des: {integer});
functions
  DESCN: integer -> {integer};
`)
	if err != nil {
		return nil, err
	}
	rules, err := parser.ParseProgram(`
member(X, descn(Y)) <- parent(par: Y, chil: X).
member(X, descn(Y)) <- parent(par: Y, chil: Z), member(X, T), T = descn(Z).
ancestor(anc: X, des: Y) <- parent(par: X), Y = descn(X).
`)
	if err != nil {
		return nil, err
	}
	prog, err := engine.Compile(m.Schema, rules, engine.DefaultOptions())
	if err != nil {
		return nil, err
	}
	edb := engine.NewFactSet()
	for _, e := range edges {
		edb.Add(engine.Fact{Pred: "parent", Tuple: value.NewTuple(
			value.Field{Label: "par", Value: value.Int(int64(e.From))},
			value.Field{Label: "chil", Value: value.Int(int64(e.To))},
		)})
	}
	return &TCSetup{Program: prog, EDB: edb}, nil
}
