package guard

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestInactiveGuardChecksNothing(t *testing.T) {
	g := New(nil, Budget{}, 10)
	if g.Active() {
		t.Fatal("zero budget with nil ctx should be inactive")
	}
	if g.TaskAborted() {
		t.Fatal("fresh guard reports aborted")
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Budget{}, 0)
	if !g.Active() {
		t.Fatal("cancellable ctx should arm the guard")
	}
	if err := g.Check(3, func() int { return 7 }, 2); err != nil {
		t.Fatalf("premature abort: %v", err)
	}
	cancel()
	g.SetStratum(1)
	err := g.Check(3, func() int { return 7 }, 2)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CanceledError, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CanceledError does not unwrap to context.Canceled: %v", err)
	}
	if ce.Stratum != 1 || ce.Round != 3 || ce.Facts != 7 || ce.Invented != 2 {
		t.Fatalf("bad attribution: %+v", ce)
	}
	if !g.TaskAborted() {
		t.Fatal("abort not latched for workers")
	}
}

func TestBudgetAxes(t *testing.T) {
	cases := []struct {
		name     string
		budget   Budget
		facts    int
		invented int
		axis     Axis
	}{
		{"facts", Budget{MaxFacts: 5}, 16, 0, AxisFacts}, // baseline 10 → 6 derived
		{"oids", Budget{MaxOIDs: 3}, 10, 4, AxisOIDs},
		{"deadline", Budget{Timeout: time.Nanosecond}, 10, 0, AxisDeadline},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := New(nil, tc.budget, 10)
			if tc.axis == AxisDeadline {
				time.Sleep(time.Millisecond)
			}
			err := g.Check(2, func() int { return tc.facts }, tc.invented)
			var be *BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("want *BudgetError, got %v", err)
			}
			if be.Axis != tc.axis {
				t.Fatalf("axis = %s, want %s", be.Axis, tc.axis)
			}
			if be.Round != 2 {
				t.Fatalf("round = %d", be.Round)
			}
		})
	}
}

func TestBudgetWithinBounds(t *testing.T) {
	g := New(nil, Budget{MaxFacts: 10, MaxOIDs: 10, Timeout: time.Hour}, 0)
	if err := g.Check(0, func() int { return 10 }, 10); err != nil {
		t.Fatalf("bounds are inclusive: %v", err)
	}
}

func TestRoundsExceeded(t *testing.T) {
	g := New(nil, Budget{}, 4)
	g.SetStratum(2)
	be := g.RoundsExceeded(50, 50, 10, 1, "does not guarantee termination")
	if be.Axis != AxisRounds || be.Stratum != 2 || be.Round != 50 || be.Facts != 6 || be.Invented != 1 {
		t.Fatalf("bad attribution: %+v", be)
	}
	if !g.TaskAborted() {
		t.Fatal("rounds abort not latched")
	}
	for _, want := range []string{"no fixpoint within 50 rounds", "stratum 2", "does not guarantee termination"} {
		if !strings.Contains(be.Error(), want) {
			t.Fatalf("Error() = %q missing %q", be.Error(), want)
		}
	}
}

func TestPanicError(t *testing.T) {
	pe := &PanicError{Value: "boom", Context: "rule r"}
	if !strings.Contains(pe.Error(), "boom") || !strings.Contains(pe.Error(), "rule r") {
		t.Fatalf("Error() = %q", pe.Error())
	}
}
