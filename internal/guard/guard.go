// Package guard implements evaluation guardrails: cancellation contexts,
// resource budgets (rounds, derived facts, invented oids, wall-clock),
// and the typed abort errors every evaluator surfaces. LOGRES programs
// with invented oids are not guaranteed to terminate and the
// non-inflationary semantics can oscillate (§3 / Appendix B of the
// paper), so a runaway evaluation must fail bounded, attributable, and
// side-effect-free; this package is the bounded-and-attributable half,
// the module layer's clone discipline is the side-effect-free half.
//
// The guard is checked at round granularity: one branch per fixpoint
// round on the serial fast path when no context or budget is set, so the
// guardrails cost nothing unless they are armed.
package guard

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Budget bounds an evaluation along five independent axes. The zero
// value of an axis leaves it unbounded (rounds fall back to the
// evaluator's default step bound, retries to the concurrent committer's
// default).
type Budget struct {
	// MaxRounds bounds the number of one-step applications (or
	// semi-naive rounds) per fixpoint.
	MaxRounds int
	// MaxFacts bounds the facts derived beyond the initial extension.
	MaxFacts int
	// MaxOIDs bounds the oids invented across the whole evaluation.
	MaxOIDs int
	// Timeout bounds the wall-clock time of one evaluation; the deadline
	// is armed when the evaluation starts.
	Timeout time.Duration
	// MaxRetries bounds the commit retries of one optimistic concurrent
	// module application; exhaustion surfaces as a *ConflictError rather
	// than a *BudgetError (the conflict, not the budget, is the cause).
	MaxRetries int
}

// Tighten combines two budgets into the stricter one per axis: a zero
// axis defers to the other budget, two armed axes keep the smaller
// bound. This is how a per-call budget override composes with the
// database-wide budget — a call can only narrow what the database
// allows, never widen it.
func (b Budget) Tighten(o Budget) Budget {
	r := b
	if o.MaxRounds > 0 && (r.MaxRounds == 0 || o.MaxRounds < r.MaxRounds) {
		r.MaxRounds = o.MaxRounds
	}
	if o.MaxFacts > 0 && (r.MaxFacts == 0 || o.MaxFacts < r.MaxFacts) {
		r.MaxFacts = o.MaxFacts
	}
	if o.MaxOIDs > 0 && (r.MaxOIDs == 0 || o.MaxOIDs < r.MaxOIDs) {
		r.MaxOIDs = o.MaxOIDs
	}
	if o.Timeout > 0 && (r.Timeout == 0 || o.Timeout < r.Timeout) {
		r.Timeout = o.Timeout
	}
	if o.MaxRetries > 0 && (r.MaxRetries == 0 || o.MaxRetries < r.MaxRetries) {
		r.MaxRetries = o.MaxRetries
	}
	return r
}

// Axis names one budget dimension in a *BudgetError.
type Axis string

const (
	AxisRounds   Axis = "rounds"
	AxisFacts    Axis = "facts"
	AxisOIDs     Axis = "oids"
	AxisDeadline Axis = "deadline"
	AxisRetries  Axis = "retries"
)

// BudgetError reports that an evaluation exhausted one budget axis. It
// carries the position of the abort (stratum, round) and the resource
// counts at that point, so every bound violation is attributable.
type BudgetError struct {
	// Axis is the exhausted dimension.
	Axis Axis
	// Limit is the bound that was exceeded: rounds, facts, oids, or
	// nanoseconds for the deadline axis.
	Limit int64
	// Stratum is the evaluation stratum at the abort (-1 when strata do
	// not apply: non-inflationary evaluation, algres closures).
	Stratum int
	// Round is the fixpoint round at the abort.
	Round int
	// Facts is the number of facts derived beyond the initial extension.
	Facts int
	// Invented is the number of oids invented.
	Invented int
	// Detail is an optional semantics note (e.g. the undefinedness of a
	// non-converging non-inflationary program).
	Detail string
}

func (e *BudgetError) Error() string {
	var what string
	switch e.Axis {
	case AxisRounds:
		what = fmt.Sprintf("no fixpoint within %d rounds", e.Limit)
	case AxisFacts:
		what = fmt.Sprintf("fact budget exhausted (%d facts derived, limit %d)", e.Facts, e.Limit)
	case AxisOIDs:
		what = fmt.Sprintf("invented-oid budget exhausted (%d oids invented, limit %d)", e.Invented, e.Limit)
	case AxisDeadline:
		what = fmt.Sprintf("wall-clock budget exhausted (%s)", time.Duration(e.Limit))
	default:
		what = fmt.Sprintf("budget axis %q exhausted", e.Axis)
	}
	s := fmt.Sprintf("evaluation aborted: %s at %s; %d facts derived, %d oids invented",
		what, location(e.Stratum, e.Round), e.Facts, e.Invented)
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// CanceledError reports that an evaluation was canceled through its
// context. It unwraps to the context's error, so
// errors.Is(err, context.Canceled) and context.DeadlineExceeded both
// work.
type CanceledError struct {
	Stratum  int
	Round    int
	Facts    int
	Invented int
	// Err is the context's error (context.Canceled or
	// context.DeadlineExceeded).
	Err error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("evaluation canceled at %s; %d facts derived, %d oids invented: %v",
		location(e.Stratum, e.Round), e.Facts, e.Invented, e.Err)
}

func (e *CanceledError) Unwrap() error { return e.Err }

// PanicError reports a panic converted into an error by a panic-safe
// evaluation boundary (a worker-pool task or the module application
// shield).
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at the recovery point.
	Stack []byte
	// Context locates the panic (e.g. the rule being evaluated).
	Context string
}

func (e *PanicError) Error() string {
	if e.Context != "" {
		return fmt.Sprintf("evaluation panicked in %s: %v", e.Context, e.Value)
	}
	return fmt.Sprintf("evaluation panicked: %v", e.Value)
}

func location(stratum, round int) string {
	if stratum < 0 {
		return fmt.Sprintf("round %d", round)
	}
	return fmt.Sprintf("stratum %d, round %d", stratum, round)
}

// Guard is the per-evaluation check state: the context, the armed
// budget, and the abort flag worker pools poll to stop claiming tasks
// promptly once a sibling failed or the evaluation was canceled.
type Guard struct {
	ctx      context.Context
	budget   Budget
	deadline time.Time
	baseline int // fact count of the initial extension
	stratum  int
	active   bool
	aborted  atomic.Bool
}

// New arms a guard: the deadline starts now, derived-fact counting
// starts from baseline. A nil ctx means no cancellation.
func New(ctx context.Context, b Budget, baseline int) *Guard {
	if ctx == nil {
		ctx = context.Background()
	}
	g := &Guard{ctx: ctx, budget: b, baseline: baseline}
	if b.Timeout > 0 {
		g.deadline = time.Now().Add(b.Timeout)
	}
	g.active = ctx.Done() != nil || b.Timeout > 0 || b.MaxFacts > 0 || b.MaxOIDs > 0
	return g
}

// Active reports whether any axis beyond the rounds bound is armed;
// when false, Check is never called and the guard costs one branch per
// round.
func (g *Guard) Active() bool { return g.active }

// SetStratum records the stratum under evaluation for abort attribution
// (-1 when strata do not apply).
func (g *Guard) SetStratum(i int) { g.stratum = i }

// Stratum returns the stratum recorded by SetStratum.
func (g *Guard) Stratum() int { return g.stratum }

// Budget returns the effective budget the guard enforces — after any
// per-call tightening — so consumption can be reported against it.
func (g *Guard) Budget() Budget { return g.budget }

// Derived converts a total fact count into the derived-beyond-baseline
// count the fact axis meters.
func (g *Guard) Derived(total int) int { return g.derived(total) }

// Abort marks the evaluation as aborted so sibling workers stop
// claiming tasks. Safe for concurrent use.
func (g *Guard) Abort() { g.aborted.Store(true) }

// TaskAborted is the fast per-task check worker claim loops poll: one
// atomic load, plus the context error when cancellation is armed.
func (g *Guard) TaskAborted() bool {
	if g.aborted.Load() {
		return true
	}
	return g.active && g.ctx.Err() != nil
}

// Check enforces the cancellation, deadline, oid and fact axes at round
// granularity. facts is called lazily — only when the fact axis is
// armed or an abort needs its count for attribution.
func (g *Guard) Check(round int, facts func() int, invented int) error {
	if err := g.ctx.Err(); err != nil {
		g.Abort()
		return &CanceledError{Stratum: g.stratum, Round: round, Facts: g.derived(facts()), Invented: invented, Err: err}
	}
	if !g.deadline.IsZero() && time.Now().After(g.deadline) {
		g.Abort()
		return &BudgetError{Axis: AxisDeadline, Limit: int64(g.budget.Timeout), Stratum: g.stratum,
			Round: round, Facts: g.derived(facts()), Invented: invented}
	}
	if g.budget.MaxOIDs > 0 && invented > g.budget.MaxOIDs {
		g.Abort()
		return &BudgetError{Axis: AxisOIDs, Limit: int64(g.budget.MaxOIDs), Stratum: g.stratum,
			Round: round, Facts: g.derived(facts()), Invented: invented}
	}
	if g.budget.MaxFacts > 0 {
		if d := g.derived(facts()); d > g.budget.MaxFacts {
			g.Abort()
			return &BudgetError{Axis: AxisFacts, Limit: int64(g.budget.MaxFacts), Stratum: g.stratum,
				Round: round, Facts: d, Invented: invented}
		}
	}
	return nil
}

// RoundsExceeded builds the rounds-axis abort error and marks the guard
// aborted. total is the current total fact count; detail is the
// caller's semantics note.
func (g *Guard) RoundsExceeded(round, limit, total, invented int, detail string) *BudgetError {
	g.Abort()
	return &BudgetError{Axis: AxisRounds, Limit: int64(limit), Stratum: g.stratum,
		Round: round, Facts: g.derived(total), Invented: invented, Detail: detail}
}

func (g *Guard) derived(total int) int {
	if d := total - g.baseline; d > 0 {
		return d
	}
	return 0
}
