package guard

import (
	"fmt"
	"sort"
	"strings"
)

// Footprint is the predicate-level access set of one module application:
// the predicates it reads and the predicates it writes. Concurrent
// commits validate against each other at this granularity — two
// applications conflict exactly when one's reads-or-writes intersect the
// other's writes (backward optimistic concurrency control).
//
// Beyond declared predicate names, a footprint can carry
// pseudo-predicates for the non-extensional parts of the database state:
// "$schema$" and "$rules$" (every application reads them; schema- or
// rule-changing applications write them) and "$oid$" (the oid counter:
// read and written by applications that invent object identities, so two
// inventive modules always serialize). Data-function extensions appear
// under their "$fn$"-prefixed store names.
//
// Universal marks an application that touches every predicate: on the
// read side (negation with active-domain enumeration scans the whole
// extension; non-inflationary evaluation re-derives from everything) and
// on the write side (whole-state replacement by rule- or schema-changing
// modes). A universal footprint conflicts with everything.
type Footprint struct {
	// Reads and Writes are sorted, deduplicated predicate names.
	Reads  []string
	Writes []string
	// Universal marks a footprint that touches every predicate.
	Universal bool
}

// Normalize sorts and deduplicates both sets in place.
func (f *Footprint) Normalize() {
	f.Reads = dedupSorted(f.Reads)
	f.Writes = dedupSorted(f.Writes)
}

func dedupSorted(s []string) []string {
	if len(s) == 0 {
		return s
	}
	sort.Strings(s)
	out := s[:1]
	for _, p := range s[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// Overlaps reports whether this footprint's reads-or-writes intersect
// the other footprint's writes, returning the first conflicting
// predicate ("*" for universal conflicts). This is the one-directional
// validation check: a committing application calls mine.Overlaps(theirs)
// against every footprint committed since its snapshot.
func (f Footprint) Overlaps(w Footprint) (string, bool) {
	if w.Universal {
		// The other application replaced (or may have touched) the whole
		// state; anything I read or wrote collides. Every real
		// application reads at least $schema$/$rules$, so this fires
		// unconditionally in practice.
		if f.Universal || len(f.Reads) > 0 || len(f.Writes) > 0 {
			return "*", true
		}
		return "", false
	}
	if f.Universal && len(w.Writes) > 0 {
		return "*", true
	}
	set := make(map[string]bool, len(w.Writes))
	for _, p := range w.Writes {
		set[p] = true
	}
	for _, p := range f.Reads {
		if set[p] {
			return p, true
		}
	}
	for _, p := range f.Writes {
		if set[p] {
			return p, true
		}
	}
	return "", false
}

// String renders the footprint compactly: "reads=[a b] writes=[c]"
// with a leading "*" for universal footprints.
func (f Footprint) String() string {
	var b strings.Builder
	if f.Universal {
		b.WriteString("* ")
	}
	b.WriteString("reads=[")
	b.WriteString(strings.Join(f.Reads, " "))
	b.WriteString("] writes=[")
	b.WriteString(strings.Join(f.Writes, " "))
	b.WriteString("]")
	return b.String()
}

// ConflictError reports that an optimistic concurrent module application
// exhausted its retries: every attempt's footprint collided with writes
// committed since the attempt's snapshot. It names both footprints — the
// aborted application's and the committed writes it collided with — so a
// conflict is attributable to specific predicates.
type ConflictError struct {
	// Pred is the first conflicting predicate (a declared predicate, a
	// pseudo-predicate such as "$oid$", or "*" for universal conflicts).
	Pred string
	// Retries is the number of retry attempts beyond the first
	// application (0 when retries were disabled or never permitted).
	Retries int
	// Mine is the aborted application's footprint on its last attempt.
	Mine Footprint
	// Theirs is the committed write footprint the last attempt collided
	// with.
	Theirs Footprint
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("module application aborted after %d retries: conflict on %q (mine: %s; theirs: %s)",
		e.Retries, e.Pred, e.Mine, e.Theirs)
}
