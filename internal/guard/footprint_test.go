package guard

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTightenAllZeroAxes(t *testing.T) {
	// Zero ∘ zero stays zero (unbounded): no axis invents a bound.
	z := Budget{}.Tighten(Budget{})
	if z != (Budget{}) {
		t.Fatalf("zero.Tighten(zero) = %+v, want zero", z)
	}
	// Zero base adopts every armed axis of the override.
	armed := Budget{MaxRounds: 3, MaxFacts: 5, MaxOIDs: 7, Timeout: time.Second, MaxRetries: 2}
	if got := (Budget{}).Tighten(armed); got != armed {
		t.Fatalf("zero.Tighten(armed) = %+v, want %+v", got, armed)
	}
	// Armed base keeps its bounds against a zero override.
	if got := armed.Tighten(Budget{}); got != armed {
		t.Fatalf("armed.Tighten(zero) = %+v, want %+v", got, armed)
	}
}

func TestTightenDeadlineMinOfNonzero(t *testing.T) {
	a := Budget{Timeout: 3 * time.Second}
	b := Budget{Timeout: time.Second}
	if got := a.Tighten(b).Timeout; got != time.Second {
		t.Fatalf("Tighten kept %v, want the stricter 1s", got)
	}
	if got := b.Tighten(a).Timeout; got != time.Second {
		t.Fatalf("Tighten is not order-insensitive for min: %v", got)
	}
	// One-sided: the armed side wins regardless of position.
	if got := (Budget{}).Tighten(b).Timeout; got != time.Second {
		t.Fatalf("zero.Tighten(1s) = %v", got)
	}
	if got := b.Tighten(Budget{}).Timeout; got != time.Second {
		t.Fatalf("1s.Tighten(zero) = %v", got)
	}
}

func TestTightenPerAxisIndependence(t *testing.T) {
	a := Budget{MaxRounds: 10, MaxFacts: 100, MaxRetries: 4}
	b := Budget{MaxRounds: 20, MaxFacts: 50, MaxOIDs: 9, Timeout: time.Minute, MaxRetries: 6}
	got := a.Tighten(b)
	want := Budget{MaxRounds: 10, MaxFacts: 50, MaxOIDs: 9, Timeout: time.Minute, MaxRetries: 4}
	if got != want {
		t.Fatalf("Tighten = %+v, want %+v", got, want)
	}
}

func TestFootprintNormalizeAndOverlaps(t *testing.T) {
	f := Footprint{Reads: []string{"b", "a", "b"}, Writes: []string{"c", "c"}}
	f.Normalize()
	if strings.Join(f.Reads, ",") != "a,b" || strings.Join(f.Writes, ",") != "c" {
		t.Fatalf("Normalize = %+v", f)
	}

	cases := []struct {
		name       string
		mine, them Footprint
		pred       string
		hit        bool
	}{
		{"disjoint", Footprint{Reads: []string{"a"}, Writes: []string{"b"}},
			Footprint{Writes: []string{"c"}}, "", false},
		{"read-write", Footprint{Reads: []string{"a"}},
			Footprint{Writes: []string{"a"}}, "a", true},
		{"write-write", Footprint{Writes: []string{"b"}},
			Footprint{Writes: []string{"b"}}, "b", true},
		{"their reads ignored", Footprint{Writes: []string{"a"}},
			Footprint{Reads: []string{"a"}}, "", false},
		{"universal theirs", Footprint{Reads: []string{"a"}},
			Footprint{Universal: true}, "*", true},
		{"universal mine", Footprint{Universal: true},
			Footprint{Writes: []string{"z"}}, "*", true},
		{"universal vs empty", Footprint{Universal: true},
			Footprint{}, "", false},
		{"empty vs universal", Footprint{},
			Footprint{Universal: true}, "", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pred, hit := tc.mine.Overlaps(tc.them)
			if pred != tc.pred || hit != tc.hit {
				t.Fatalf("Overlaps = (%q, %v), want (%q, %v)", pred, hit, tc.pred, tc.hit)
			}
		})
	}
}

func TestConflictErrorNamesBothFootprints(t *testing.T) {
	err := error(&ConflictError{
		Pred:    "person",
		Retries: 3,
		Mine:    Footprint{Reads: []string{"person"}, Writes: []string{"emp"}},
		Theirs:  Footprint{Writes: []string{"person"}},
	})
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatal("errors.As failed")
	}
	msg := err.Error()
	for _, want := range []string{`conflict on "person"`, "after 3 retries",
		"mine: reads=[person] writes=[emp]", "theirs: reads=[] writes=[person]"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("Error() = %q missing %q", msg, want)
		}
	}
}
