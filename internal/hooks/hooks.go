// Package hooks holds test-only injection points shared across
// packages. Production code paths check these for nil and pay one
// predictable branch; tests in any package of the module (the root
// package's conflict tests, the server's deterministic-409 and
// drain tests) install them to steer otherwise racy interleavings.
package hooks

// ConcurrentPreCommit, when non-nil, runs after the snapshot
// application and before the commit critical section of each optimistic
// attempt (logres.ApplyConcurrentContext) — the injection point
// conflict tests use to commit a competing write in the validation
// window, and drain tests use to hold an apply in flight.
var ConcurrentPreCommit func(attempt int)
