// Package hooks holds test-only injection points shared across
// packages. Production code paths check these for nil and pay one
// predictable branch; tests in any package of the module (the root
// package's conflict tests, the server's deterministic-409 and
// drain tests) install them to steer otherwise racy interleavings.
package hooks

// ConcurrentPreCommit, when non-nil, runs after the snapshot
// application and before the commit critical section of each optimistic
// attempt (logres.ApplyConcurrentContext) — the injection point
// conflict tests use to commit a competing write in the validation
// window, and drain tests use to hold an apply in flight.
var ConcurrentPreCommit func(attempt int)

// StorageFault, when non-nil, runs immediately before every durability
// syscall boundary in internal/storage — each WAL append, fsync,
// truncation and rotation, and each snapshot write, sync and rename
// (the point names are the obs event kinds plus "snapshot.write",
// "snapshot.rename", "dir.sync", "wal.rotate", "wal.truncate",
// "wal.quarantine"). Returning a non-nil error aborts the operation at
// exactly that boundary, leaving on disk only the syscalls that already
// ran — the crash-matrix tests use this to simulate a SIGKILL between
// any two durability syscalls and then recover the directory fresh. The
// hook may also never return (the re-exec SIGKILL test raises the
// signal inside it).
var StorageFault func(point string) error

// Fault invokes StorageFault when installed; production pays one nil
// check per durability boundary.
func Fault(point string) error {
	if StorageFault != nil {
		return StorageFault(point)
	}
	return nil
}
