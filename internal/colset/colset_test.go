package colset

import (
	"fmt"
	"sort"
	"testing"

	"logres/internal/value"
)

func TestDictInterning(t *testing.T) {
	d := NewDict()
	a := d.Code(value.Int(5))
	b := d.Code(value.Int(5))
	if a != b {
		t.Fatalf("same value got codes %d and %d", a, b)
	}
	if c := d.Code(value.Str("5")); c == a {
		t.Fatal("int 5 and string \"5\" share a code")
	}
	// Int and Real with the same numeric rendering are distinct values.
	if d.Code(value.Real(5)) == a {
		t.Fatal("int 5 and real 5.0 share a code")
	}
	if !value.Equal(d.Value(a), value.Int(5)) {
		t.Fatalf("decode(%d) = %v", a, d.Value(a))
	}
	if _, ok := d.Lookup(value.Int(99)); ok {
		t.Fatal("Lookup interned a new value")
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
}

func TestBatchAndSlice(t *testing.T) {
	b := NewBatch(2)
	for i := uint32(0); i < 10; i++ {
		b.AppendRow([]uint32{i, i * i})
	}
	v := b.Slice(3, 7)
	if v.Len() != 4 || v.Col(0)[0] != 3 || v.Col(1)[3] != 36 {
		t.Fatalf("slice view wrong: len=%d", v.Len())
	}
	// Appending to the parent must not disturb the view.
	for i := uint32(10); i < 100; i++ {
		b.AppendRow([]uint32{i, i})
	}
	if v.Len() != 4 || v.Col(0)[0] != 3 || v.Col(1)[3] != 36 {
		t.Fatal("slice view corrupted by parent appends")
	}
}

func TestSelectKernels(t *testing.T) {
	col := []uint32{5, 1, 5, 2, 5}
	sel := SelectEq(col, len(col), nil, 5)
	if fmt.Sprint(sel) != "[0 2 4]" {
		t.Fatalf("SelectEq = %v", sel)
	}
	// Composing with a prior selection keeps input order.
	sel2 := SelectEq(col, len(col), []int32{1, 2, 3, 4}, 5)
	if fmt.Sprint(sel2) != "[2 4]" {
		t.Fatalf("composed SelectEq = %v", sel2)
	}
	a := []uint32{1, 2, 3, 4}
	b := []uint32{1, 0, 3, 0}
	if got := SelectColEq(a, b, 4, nil); fmt.Sprint(got) != "[0 2]" {
		t.Fatalf("SelectColEq = %v", got)
	}
}

// joinRef is the quadratic reference for the pair set.
func joinRef(lkeys [][]uint32, ln int, rkeys [][]uint32, rn int) map[[2]int32]bool {
	out := map[[2]int32]bool{}
	for i := 0; i < ln; i++ {
		for j := 0; j < rn; j++ {
			eq := true
			for c := range lkeys {
				if lkeys[c][i] != rkeys[c][j] {
					eq = false
					break
				}
			}
			if eq {
				out[[2]int32{int32(i), int32(j)}] = true
			}
		}
	}
	return out
}

func TestJoinKernelWidths(t *testing.T) {
	// Exercise all three index shapes: 1, 2, and 3 key columns, with
	// either side smaller.
	for _, w := range []int{1, 2, 3} {
		for _, sizes := range [][2]int{{4, 20}, {20, 4}, {7, 7}, {0, 5}, {5, 0}} {
			ln, rn := sizes[0], sizes[1]
			lkeys := make([][]uint32, w)
			rkeys := make([][]uint32, w)
			for c := 0; c < w; c++ {
				lkeys[c] = make([]uint32, ln)
				rkeys[c] = make([]uint32, rn)
				for i := 0; i < ln; i++ {
					lkeys[c][i] = uint32((i + c) % 3)
				}
				for j := 0; j < rn; j++ {
					rkeys[c][j] = uint32((j + c) % 3)
				}
			}
			lidx, ridx := Join(lkeys, ln, nil, rkeys, rn, nil)
			want := joinRef(lkeys, ln, rkeys, rn)
			if len(lidx) != len(want) {
				t.Fatalf("w=%d %v: %d pairs, want %d", w, sizes, len(lidx), len(want))
			}
			for k := range lidx {
				if !want[[2]int32{lidx[k], ridx[k]}] {
					t.Fatalf("w=%d %v: spurious pair (%d,%d)", w, sizes, lidx[k], ridx[k])
				}
			}
			// Anti-join complements the join on the left side.
			matched := map[int32]bool{}
			for _, l := range lidx {
				matched[l] = true
			}
			anti := AntiJoin(lkeys, ln, nil, rkeys, rn, nil)
			if len(anti)+len(matched) != ln {
				t.Fatalf("w=%d %v: anti %d + matched %d != %d", w, sizes, len(anti), len(matched), ln)
			}
			for _, l := range anti {
				if matched[l] {
					t.Fatalf("w=%d %v: row %d both matched and anti", w, sizes, l)
				}
			}
		}
	}
}

func TestJoinCrossProduct(t *testing.T) {
	lidx, ridx := Join(nil, 3, nil, nil, 4, nil)
	if len(lidx) != 12 || len(ridx) != 12 {
		t.Fatalf("cross product = %d pairs, want 12", len(lidx))
	}
	if anti := AntiJoin(nil, 3, nil, nil, 4, nil); len(anti) != 0 {
		t.Fatalf("0-key anti-join vs non-empty right kept %d rows", len(anti))
	}
	if anti := AntiJoin(nil, 3, nil, nil, 0, nil); len(anti) != 3 {
		t.Fatalf("0-key anti-join vs empty right kept %d rows, want 3", len(anti))
	}
}

func TestJoinRespectsSelections(t *testing.T) {
	lk := [][]uint32{{7, 8, 7, 9}}
	rk := [][]uint32{{7, 7, 8}}
	// Only left rows {0, 3} and right rows {1} are live.
	lidx, ridx := Join(lk, 4, []int32{0, 3}, rk, 3, []int32{1})
	if len(lidx) != 1 || lidx[0] != 0 || ridx[0] != 1 {
		t.Fatalf("selected join = %v/%v", lidx, ridx)
	}
}

func TestDedupAndDiffRows(t *testing.T) {
	cols := [][]uint32{{1, 2, 1, 3, 2}, {0, 0, 0, 1, 0}}
	if got := DedupRows(cols, 5, nil); fmt.Sprint(got) != "[0 1 3]" {
		t.Fatalf("DedupRows = %v", got)
	}
	if got := DedupRows(nil, 5, nil); fmt.Sprint(got) != "[0]" {
		t.Fatalf("0-col DedupRows = %v", got)
	}
	r := [][]uint32{{1, 9}, {0, 9}}
	if got := DiffRows(cols, 5, nil, r, 2, nil); fmt.Sprint(got) != "[1 3 4]" {
		t.Fatalf("DiffRows = %v", got)
	}
}

func TestCodeSetWidths(t *testing.T) {
	for _, w := range []int{0, 1, 2, 3, 5} {
		s := NewCodeSet(w)
		row := make([]uint32, w)
		if !s.Add(row) {
			t.Fatalf("w=%d: first Add reported duplicate", w)
		}
		if s.Add(row) {
			t.Fatalf("w=%d: duplicate Add reported new", w)
		}
		if w > 0 {
			row[w-1] = 42
			if !s.Add(row) {
				t.Fatalf("w=%d: distinct row reported duplicate", w)
			}
		}
		wantLen := 2
		if w == 0 {
			wantLen = 1
		}
		if s.Len() != wantLen {
			t.Fatalf("w=%d: Len = %d, want %d", w, s.Len(), wantLen)
		}
	}
}

func TestGatherAndIdentity(t *testing.T) {
	col := []uint32{10, 11, 12, 13}
	if got := Gather(col, []int32{3, 0, 3}); fmt.Sprint(got) != "[13 10 13]" {
		t.Fatalf("Gather = %v", got)
	}
	id := Identity(4)
	sorted := sort.SliceIsSorted(id, func(i, j int) bool { return id[i] < id[j] })
	if !sorted || len(id) != 4 || id[3] != 3 {
		t.Fatalf("Identity = %v", id)
	}
}
