// Package colset implements the columnar snapshot layout and the
// vectorized kernels behind the engine's and the ALGRES compiler's
// vectorized evaluation paths.
//
// A Batch holds one predicate extension (or one relation) as
// fixed-width columns of uint32 codes — one column per attribute — with
// every value dictionary-encoded through a Dict: two codes are equal
// iff the values they encode are equal (value equality is Key equality,
// so interning by Key is exact, not a hash). Kernels operate on code
// slices and selection vectors; values are decoded back into tuples
// only at the emit boundary.
//
// The layout follows the type-structuring idea of deriving flat
// relational shapes from the declared predicate schema: the engine
// already projects every association fact onto its effective tuple, so
// a null-free fixed-width column per effective label is always
// available (absent components encode the null value's code).
//
// Determinism: every kernel is a pure function of its inputs, and
// outputs preserve probe-side row order, so evaluation over batches
// built in canonical (key-sorted) order is deterministic. Joins build
// their hash index on the smaller input and probe the larger one; the
// result pair set is order-insensitive for the set-semantics callers.
package colset

import (
	"encoding/binary"

	"logres/internal/value"
)

// Dict interns values to dense uint32 codes. Interning is by canonical
// Key, so code equality is exactly value equality.
type Dict struct {
	codes map[string]uint32
	vals  []value.Value
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{codes: make(map[string]uint32)}
}

// Code interns v and returns its code.
func (d *Dict) Code(v value.Value) uint32 {
	k := v.Key()
	if c, ok := d.codes[k]; ok {
		return c
	}
	c := uint32(len(d.vals))
	d.codes[k] = c
	d.vals = append(d.vals, v)
	return c
}

// Lookup returns v's code without interning it. ok is false when v has
// never been seen — useful for constant filters, where an unseen
// constant means an empty selection.
func (d *Dict) Lookup(v value.Value) (uint32, bool) {
	c, ok := d.codes[v.Key()]
	return c, ok
}

// Value decodes a code back to its value.
func (d *Dict) Value(code uint32) value.Value { return d.vals[code] }

// Len reports the number of interned values.
func (d *Dict) Len() int { return len(d.vals) }

// Batch is a columnar batch: len(Cols) attribute columns of equal
// length. The zero-column batch is legal (it still has a row count).
type Batch struct {
	cols [][]uint32
	n    int
}

// NewBatch returns an empty batch with ncols columns.
func NewBatch(ncols int) *Batch {
	return &Batch{cols: make([][]uint32, ncols)}
}

// Len reports the number of rows.
func (b *Batch) Len() int { return b.n }

// NumCols reports the number of columns.
func (b *Batch) NumCols() int { return len(b.cols) }

// Col returns the i-th column (not to be mutated).
func (b *Batch) Col(i int) []uint32 { return b.cols[i] }

// Cols returns the column slice (not to be mutated).
func (b *Batch) Cols() [][]uint32 { return b.cols }

// AppendRow appends one row; len(row) must equal NumCols.
func (b *Batch) AppendRow(row []uint32) {
	for i, c := range row {
		b.cols[i] = append(b.cols[i], c)
	}
	b.n++
}

// Slice returns a view of rows [i, j): the view shares the column
// backing arrays, so it stays valid across later AppendRow calls on the
// parent (appends never move the [i, j) window) but must not be
// appended to itself.
func (b *Batch) Slice(i, j int) *Batch {
	cols := make([][]uint32, len(b.cols))
	for c := range b.cols {
		cols[c] = b.cols[c][i:j:j]
	}
	return &Batch{cols: cols, n: j - i}
}

// Identity returns the selection vector [0, 1, …, n-1].
func Identity(n int) []int32 {
	sel := make([]int32, n)
	for i := range sel {
		sel[i] = int32(i)
	}
	return sel
}

// selCount returns the effective row count of a (rows, sel) pair: nil
// sel selects every row.
func selCount(rows int, sel []int32) int {
	if sel == nil {
		return rows
	}
	return len(sel)
}

// selAt returns the i-th selected row index.
func selAt(sel []int32, i int) int32 {
	if sel == nil {
		return int32(i)
	}
	return sel[i]
}

// SelectEq filters (rows, sel) down to rows whose col value equals
// code. The result is a fresh selection vector in input order.
func SelectEq(col []uint32, rows int, sel []int32, code uint32) []int32 {
	n := selCount(rows, sel)
	out := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		r := selAt(sel, i)
		if col[r] == code {
			out = append(out, r)
		}
	}
	return out
}

// SelectColEq filters (rows, sel) down to rows where columns a and b
// hold equal codes (the intra-tuple duplicate-variable filter).
func SelectColEq(a, b []uint32, rows int, sel []int32) []int32 {
	n := selCount(rows, sel)
	out := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		r := selAt(sel, i)
		if a[r] == b[r] {
			out = append(out, r)
		}
	}
	return out
}

// Gather materializes col at the given row indices.
func Gather(col []uint32, idx []int32) []uint32 {
	out := make([]uint32, len(idx))
	for i, r := range idx {
		out[i] = col[r]
	}
	return out
}

// hashIndex maps packed key codes to build-side row indices. Three key
// widths get three map shapes: one column keys by the code itself, two
// columns pack into a uint64, wider keys pack 4-byte little-endian
// codes into a reused byte buffer keyed as a string.
type hashIndex struct {
	w  int
	m1 map[uint32][]int32
	m2 map[uint64][]int32
	mn map[string][]int32

	buf []byte
}

func buildIndex(keys [][]uint32, rows int, sel []int32) *hashIndex {
	ix := &hashIndex{w: len(keys)}
	n := selCount(rows, sel)
	switch ix.w {
	case 1:
		ix.m1 = make(map[uint32][]int32, n)
		col := keys[0]
		for i := 0; i < n; i++ {
			r := selAt(sel, i)
			ix.m1[col[r]] = append(ix.m1[col[r]], r)
		}
	case 2:
		ix.m2 = make(map[uint64][]int32, n)
		a, b := keys[0], keys[1]
		for i := 0; i < n; i++ {
			r := selAt(sel, i)
			k := uint64(a[r])<<32 | uint64(b[r])
			ix.m2[k] = append(ix.m2[k], r)
		}
	default:
		ix.mn = make(map[string][]int32, n)
		ix.buf = make([]byte, 4*ix.w)
		for i := 0; i < n; i++ {
			r := selAt(sel, i)
			ix.pack(keys, r)
			ix.mn[string(ix.buf)] = append(ix.mn[string(ix.buf)], r)
		}
	}
	return ix
}

func (ix *hashIndex) pack(keys [][]uint32, r int32) {
	for c, col := range keys {
		binary.LittleEndian.PutUint32(ix.buf[4*c:], col[r])
	}
}

// probe returns the build rows matching probe row r of keys. The
// map[string] lookup form avoids allocating for the probe key.
func (ix *hashIndex) probe(keys [][]uint32, r int32) []int32 {
	switch ix.w {
	case 1:
		return ix.m1[keys[0][r]]
	case 2:
		return ix.m2[uint64(keys[0][r])<<32|uint64(keys[1][r])]
	default:
		ix.pack(keys, r)
		return ix.mn[string(ix.buf)]
	}
}

// Join hash-joins the selected rows of two key-column sets and returns
// matching row-index pairs. The index is built on the smaller input and
// the larger side is probed in selection order; the pair set is
// identical either way. Zero key columns mean a cross product.
func Join(lkeys [][]uint32, lrows int, lsel []int32,
	rkeys [][]uint32, rrows int, rsel []int32) (lidx, ridx []int32) {

	ln, rn := selCount(lrows, lsel), selCount(rrows, rsel)
	if ln == 0 || rn == 0 {
		return nil, nil
	}
	if len(lkeys) == 0 {
		lidx = make([]int32, 0, ln*rn)
		ridx = make([]int32, 0, ln*rn)
		for i := 0; i < ln; i++ {
			l := selAt(lsel, i)
			for j := 0; j < rn; j++ {
				lidx = append(lidx, l)
				ridx = append(ridx, selAt(rsel, j))
			}
		}
		return lidx, ridx
	}
	if ln <= rn {
		ix := buildIndex(lkeys, lrows, lsel)
		for j := 0; j < rn; j++ {
			r := selAt(rsel, j)
			for _, l := range ix.probe(rkeys, r) {
				lidx = append(lidx, l)
				ridx = append(ridx, r)
			}
		}
		return lidx, ridx
	}
	ix := buildIndex(rkeys, rrows, rsel)
	for i := 0; i < ln; i++ {
		l := selAt(lsel, i)
		for _, r := range ix.probe(lkeys, l) {
			lidx = append(lidx, l)
			ridx = append(ridx, r)
		}
	}
	return lidx, ridx
}

// AntiJoin returns the selected left rows whose key has no match among
// the selected right rows. Zero key columns mean "drop everything when
// the right side is non-empty".
func AntiJoin(lkeys [][]uint32, lrows int, lsel []int32,
	rkeys [][]uint32, rrows int, rsel []int32) []int32 {

	ln := selCount(lrows, lsel)
	rn := selCount(rrows, rsel)
	if len(lkeys) == 0 {
		if rn > 0 {
			return nil
		}
		out := make([]int32, 0, ln)
		for i := 0; i < ln; i++ {
			out = append(out, selAt(lsel, i))
		}
		return out
	}
	ix := buildIndex(rkeys, rrows, rsel)
	out := make([]int32, 0, ln)
	for i := 0; i < ln; i++ {
		l := selAt(lsel, i)
		if len(ix.probe(lkeys, l)) == 0 {
			out = append(out, l)
		}
	}
	return out
}

// DedupRows returns the first occurrence of each distinct packed row
// among the selected rows, in selection order. With zero columns every
// row is the same row, so at most one survives.
func DedupRows(cols [][]uint32, rows int, sel []int32) []int32 {
	n := selCount(rows, sel)
	if len(cols) == 0 {
		if n == 0 {
			return nil
		}
		return []int32{selAt(sel, 0)}
	}
	seen := newCodeSet(len(cols), n)
	out := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		r := selAt(sel, i)
		if seen.addRow(cols, r) {
			out = append(out, r)
		}
	}
	return out
}

// DiffRows returns the selected left rows whose full packed row does
// not occur among the selected right rows (set difference over whole
// rows; both sides must have the same column count).
func DiffRows(lcols [][]uint32, lrows int, lsel []int32,
	rcols [][]uint32, rrows int, rsel []int32) []int32 {
	return AntiJoin(lcols, lrows, lsel, rcols, rrows, rsel)
}

// CodeSet is a set of packed code rows, used for membership tests at
// the emit boundary (is this derived row already in the base
// extension?). Key packing mirrors hashIndex: one/two columns pack into
// integers, wider rows into a reused byte buffer.
type CodeSet struct {
	w  int
	m1 map[uint32]struct{}
	m2 map[uint64]struct{}
	mn map[string]struct{}

	buf []byte
}

// NewCodeSet returns an empty set for rows of the given width.
func NewCodeSet(width int) *CodeSet { return newCodeSet(width, 0) }

func newCodeSet(width, hint int) *CodeSet {
	s := &CodeSet{w: width}
	switch {
	case width <= 1:
		s.m1 = make(map[uint32]struct{}, hint)
	case width == 2:
		s.m2 = make(map[uint64]struct{}, hint)
	default:
		s.mn = make(map[string]struct{}, hint)
		s.buf = make([]byte, 4*width)
	}
	return s
}

// Len reports the number of distinct rows added.
func (s *CodeSet) Len() int {
	switch {
	case s.w <= 1:
		return len(s.m1)
	case s.w == 2:
		return len(s.m2)
	}
	return len(s.mn)
}

// Add inserts the packed row and reports whether it was new.
// len(row) must equal the set's width (zero-width rows are all equal).
func (s *CodeSet) Add(row []uint32) bool {
	switch {
	case s.w == 0:
		if _, ok := s.m1[0]; ok {
			return false
		}
		s.m1[0] = struct{}{}
		return true
	case s.w == 1:
		if _, ok := s.m1[row[0]]; ok {
			return false
		}
		s.m1[row[0]] = struct{}{}
		return true
	case s.w == 2:
		k := uint64(row[0])<<32 | uint64(row[1])
		if _, ok := s.m2[k]; ok {
			return false
		}
		s.m2[k] = struct{}{}
		return true
	}
	for c, v := range row {
		binary.LittleEndian.PutUint32(s.buf[4*c:], v)
	}
	if _, ok := s.mn[string(s.buf)]; ok {
		return false
	}
	s.mn[string(s.buf)] = struct{}{}
	return true
}

// addRow is Add over one row of a column set.
func (s *CodeSet) addRow(cols [][]uint32, r int32) bool {
	switch {
	case s.w == 0:
		if _, ok := s.m1[0]; ok {
			return false
		}
		s.m1[0] = struct{}{}
		return true
	case s.w == 1:
		c := cols[0][r]
		if _, ok := s.m1[c]; ok {
			return false
		}
		s.m1[c] = struct{}{}
		return true
	case s.w == 2:
		k := uint64(cols[0][r])<<32 | uint64(cols[1][r])
		if _, ok := s.m2[k]; ok {
			return false
		}
		s.m2[k] = struct{}{}
		return true
	}
	for c, col := range cols {
		binary.LittleEndian.PutUint32(s.buf[4*c:], col[r])
	}
	if _, ok := s.mn[string(s.buf)]; ok {
		return false
	}
	s.mn[string(s.buf)] = struct{}{}
	return true
}
