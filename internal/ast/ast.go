// Package ast defines the abstract syntax of the LOGRES rule language:
// terms, labelled arguments, literals (positive and negated, in heads and
// bodies), rules, goals and modules. The three variable kinds of §3.1 —
// ordinary typed variables, oid variables (labelled `self`) and tuple
// variables — are distinguished positionally: an argument labelled `self`
// binds an oid variable, an unlabelled bare variable spanning a class
// predicate's whole argument list is a tuple variable, and everything else
// is an ordinary variable.
package ast

import (
	"strings"

	"logres/internal/types"
	"logres/internal/value"
)

// SelfLabel is the distinguished label that binds oid variables.
const SelfLabel = "self"

// Term is a LOGRES term.
type Term interface {
	isTerm()
	String() string
}

// Const is a constant of an elementary or constructed type.
type Const struct{ Val value.Value }

// Var is a variable occurrence. Its kind (ordinary, oid, tuple) is
// resolved by the engine's analysis from the position it occupies.
type Var struct{ Name string }

// Wildcard is the anonymous variable `_`; each occurrence is distinct.
type Wildcard struct{}

// FuncApp is a data-function application, e.g. desc(X). A nullary function
// is a FuncApp with no arguments.
type FuncApp struct {
	Name string
	Args []Term
}

// BinExpr is an arithmetic expression, e.g. Y + 1.
type BinExpr struct {
	Op   string // + - * / mod
	L, R Term
}

// TupleTerm is a tuple-shaped term: (person: Y, bdate: Z). It also
// represents the parenthesized nested references of the paper's
// `school(dean(self X))`.
type TupleTerm struct{ Args []Arg }

// SetTerm is a set literal {t1, …, tn}.
type SetTerm struct{ Elems []Term }

// MultisetTerm is a multiset literal [t1, …, tn].
type MultisetTerm struct{ Elems []Term }

// SeqTerm is a sequence literal <t1, …, tn>.
type SeqTerm struct{ Elems []Term }

func (Const) isTerm()        {}
func (Var) isTerm()          {}
func (Wildcard) isTerm()     {}
func (FuncApp) isTerm()      {}
func (BinExpr) isTerm()      {}
func (TupleTerm) isTerm()    {}
func (SetTerm) isTerm()      {}
func (MultisetTerm) isTerm() {}
func (SeqTerm) isTerm()      {}

func (c Const) String() string   { return c.Val.String() }
func (v Var) String() string     { return v.Name }
func (Wildcard) String() string  { return "_" }
func (f FuncApp) String() string { return f.Name + "(" + joinTerms(f.Args) + ")" }
func (b BinExpr) String() string { return b.L.String() + " " + b.Op + " " + b.R.String() }
func (t TupleTerm) String() string {
	return "(" + joinArgs(t.Args) + ")"
}
func (s SetTerm) String() string      { return "{" + joinTerms(s.Elems) + "}" }
func (m MultisetTerm) String() string { return "[" + joinTerms(m.Elems) + "]" }
func (q SeqTerm) String() string      { return "<" + joinTerms(q.Elems) + ">" }

func joinTerms(ts []Term) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ", ")
}

// Arg is one (possibly labelled) argument of a literal or tuple term.
type Arg struct {
	Label string // "" for positional/tuple-variable arguments
	Term  Term
}

func (a Arg) String() string {
	if a.Label == "" {
		return a.Term.String()
	}
	return a.Label + ": " + a.Term.String()
}

func joinArgs(args []Arg) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// Literal is one (possibly negated) atom.
type Literal struct {
	Negated bool
	Pred    string // canonical predicate or built-in name
	Args    []Arg
}

// comparisonPreds are the built-in relational predicates, printed infix.
var comparisonPreds = map[string]bool{
	"=": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true,
}

// IsComparison reports whether the literal is a relational built-in.
func (l Literal) IsComparison() bool { return comparisonPreds[l.Pred] }

func (l Literal) String() string {
	var b strings.Builder
	if l.Negated {
		b.WriteString("not ")
	}
	if l.IsComparison() && len(l.Args) == 2 {
		b.WriteString(l.Args[0].Term.String())
		b.WriteString(" " + l.Pred + " ")
		b.WriteString(l.Args[1].Term.String())
		return b.String()
	}
	b.WriteString(l.Pred)
	if len(l.Args) > 0 {
		b.WriteByte('(')
		b.WriteString(joinArgs(l.Args))
		b.WriteByte(')')
	}
	return b.String()
}

// Clone returns a deep copy of the literal (terms are immutable; the arg
// slice is copied).
func (l Literal) Clone() Literal {
	args := make([]Arg, len(l.Args))
	copy(args, l.Args)
	return Literal{Negated: l.Negated, Pred: l.Pred, Args: args}
}

// Rule is `Head ← Body`. A nil Head is a passive integrity constraint
// (denial, §4.2); an empty Body is a fact. A Head with Negated=true is an
// explicit deletion (§3.1).
type Rule struct {
	Head *Literal
	Body []Literal
}

func (r *Rule) String() string {
	var b strings.Builder
	if r.Head != nil {
		b.WriteString(r.Head.String())
	}
	if len(r.Body) > 0 || r.Head == nil {
		b.WriteString(" <- ")
		parts := make([]string, len(r.Body))
		for i, l := range r.Body {
			parts[i] = l.String()
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	b.WriteByte('.')
	return strings.TrimSpace(b.String())
}

// IsFact reports whether the rule is a ground fact (no body).
func (r *Rule) IsFact() bool { return r.Head != nil && len(r.Body) == 0 }

// IsDenial reports whether the rule is a passive constraint.
func (r *Rule) IsDenial() bool { return r.Head == nil }

// Mode is a module application mode (§4.1).
type Mode int

// The six application modes: Rule Invariant/Addition/Deletion × Data
// Invariant/Variant.
const (
	RIDI Mode = iota // ordinary query
	RADI             // add rules to the persistent IDB
	RDDI             // delete rules from the persistent IDB
	RIDV             // update the EDB only
	RADV             // add rules and update the EDB
	RDDV             // delete rules and update the EDB
)

var modeNames = [...]string{"RIDI", "RADI", "RDDI", "RIDV", "RADV", "RDDV"}

func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return "mode?"
}

// ParseMode resolves a mode name.
func ParseMode(s string) (Mode, bool) {
	for i, n := range modeNames {
		if strings.EqualFold(s, n) {
			return Mode(i), true
		}
	}
	return RIDI, false
}

// DataVariant reports whether the mode updates the EDB.
func (m Mode) DataVariant() bool { return m == RIDV || m == RADV || m == RDDV }

// HasGoal reports whether the mode admits a goal answer (only the data-
// invariant modes do, §4.1).
func (m Mode) HasGoal() bool { return !m.DataVariant() }

// Module is the triple (R_M, S_M, G_M) of §4.1, plus an optional name and
// declared default mode.
type Module struct {
	Name   string
	Mode   Mode
	HasMod bool // whether a mode was declared in the source
	// NonInflationary selects the non-inflationary rule semantics for
	// this module's application (§1: modules are parametric in the
	// semantics of their rules).
	NonInflationary bool
	Schema          *types.Schema
	Rules           []*Rule
	Goal            []Literal // conjunctive goal; empty = no goal
}

// VarSet collects the named variables of a slice of literals, in first-
// occurrence order.
func VarSet(lits []Literal) []string {
	var order []string
	seen := map[string]bool{}
	var walk func(Term)
	walk = func(t Term) {
		switch x := t.(type) {
		case Var:
			if !seen[x.Name] {
				seen[x.Name] = true
				order = append(order, x.Name)
			}
		case FuncApp:
			for _, a := range x.Args {
				walk(a)
			}
		case BinExpr:
			walk(x.L)
			walk(x.R)
		case TupleTerm:
			for _, a := range x.Args {
				walk(a.Term)
			}
		case SetTerm:
			for _, e := range x.Elems {
				walk(e)
			}
		case MultisetTerm:
			for _, e := range x.Elems {
				walk(e)
			}
		case SeqTerm:
			for _, e := range x.Elems {
				walk(e)
			}
		}
	}
	for _, l := range lits {
		for _, a := range l.Args {
			walk(a.Term)
		}
	}
	return order
}
