package ast

import (
	"strings"
	"testing"

	"logres/internal/value"
)

func TestTermStrings(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{Const{Val: value.Int(3)}, "3"},
		{Const{Val: value.Str("x")}, `"x"`},
		{Var{Name: "X"}, "X"},
		{Wildcard{}, "_"},
		{FuncApp{Name: "desc", Args: []Term{Var{Name: "Y"}}}, "desc(Y)"},
		{FuncApp{Name: "junior"}, "junior()"},
		{BinExpr{Op: "+", L: Var{Name: "X"}, R: Const{Val: value.Int(1)}}, "X + 1"},
		{TupleTerm{Args: []Arg{{Label: "a", Term: Var{Name: "X"}}, {Term: Const{Val: value.Int(2)}}}}, "(a: X, 2)"},
		{SetTerm{Elems: []Term{Const{Val: value.Int(1)}}}, "{1}"},
		{MultisetTerm{Elems: []Term{Const{Val: value.Int(1)}, Const{Val: value.Int(1)}}}, "[1, 1]"},
		{SeqTerm{Elems: []Term{Var{Name: "A"}, Var{Name: "B"}}}, "<A, B>"},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("%T.String() = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestLiteralStrings(t *testing.T) {
	pos := Literal{Pred: "person", Args: []Arg{
		{Label: SelfLabel, Term: Var{Name: "X"}},
		{Label: "name", Term: Const{Val: value.Str("ann")}},
	}}
	if got := pos.String(); got != `person(self: X, name: "ann")` {
		t.Fatalf("positive literal = %q", got)
	}
	neg := Literal{Negated: true, Pred: "p"}
	if got := neg.String(); got != "not p" {
		t.Fatalf("negated nullary literal = %q", got)
	}
	cmp := Literal{Pred: "<=", Args: []Arg{{Term: Var{Name: "X"}}, {Term: Const{Val: value.Int(3)}}}}
	if got := cmp.String(); got != "X <= 3" {
		t.Fatalf("comparison = %q", got)
	}
	if !cmp.IsComparison() || pos.IsComparison() {
		t.Fatal("IsComparison wrong")
	}
}

func TestLiteralClone(t *testing.T) {
	l := Literal{Pred: "p", Args: []Arg{{Term: Var{Name: "X"}}}}
	cp := l.Clone()
	cp.Args[0] = Arg{Term: Var{Name: "Y"}}
	if l.Args[0].Term.(Var).Name != "X" {
		t.Fatal("Clone shares the arg slice")
	}
}

func TestRuleStringsAndPredicates(t *testing.T) {
	head := Literal{Pred: "q", Args: []Arg{{Term: Var{Name: "X"}}}}
	body := []Literal{{Pred: "p", Args: []Arg{{Term: Var{Name: "X"}}}}}
	r := &Rule{Head: &head, Body: body}
	if got := r.String(); got != "q(X) <- p(X)." {
		t.Fatalf("rule = %q", got)
	}
	fact := &Rule{Head: &head}
	if got := fact.String(); got != "q(X)." {
		t.Fatalf("fact = %q", got)
	}
	if !fact.IsFact() || fact.IsDenial() || r.IsFact() {
		t.Fatal("IsFact/IsDenial wrong")
	}
	denial := &Rule{Body: body}
	if got := denial.String(); !strings.HasPrefix(got, "<- ") {
		t.Fatalf("denial = %q", got)
	}
	if !denial.IsDenial() {
		t.Fatal("denial not detected")
	}
}

func TestModes(t *testing.T) {
	for _, c := range []struct {
		name string
		mode Mode
		dv   bool
	}{
		{"RIDI", RIDI, false}, {"RADI", RADI, false}, {"RDDI", RDDI, false},
		{"RIDV", RIDV, true}, {"RADV", RADV, true}, {"RDDV", RDDV, true},
	} {
		m, ok := ParseMode(c.name)
		if !ok || m != c.mode {
			t.Errorf("ParseMode(%s) = %v, %v", c.name, m, ok)
		}
		if m.String() != c.name {
			t.Errorf("%v.String() = %q", m, m.String())
		}
		if m.DataVariant() != c.dv || m.HasGoal() == c.dv {
			t.Errorf("%s variant flags wrong", c.name)
		}
	}
	if m, ok := ParseMode("ridv"); !ok || m != RIDV {
		t.Error("ParseMode not case-insensitive")
	}
	if _, ok := ParseMode("nope"); ok {
		t.Error("bogus mode parsed")
	}
}

func TestVarSetOrderAndNesting(t *testing.T) {
	lits := []Literal{
		{Pred: "p", Args: []Arg{
			{Term: Var{Name: "B"}},
			{Term: TupleTerm{Args: []Arg{{Label: "x", Term: Var{Name: "A"}}}}},
		}},
		{Pred: "=", Args: []Arg{
			{Term: Var{Name: "C"}},
			{Term: BinExpr{Op: "+", L: Var{Name: "A"}, R: FuncApp{Name: "f", Args: []Term{Var{Name: "D"}}}}},
		}},
		{Pred: "q", Args: []Arg{
			{Term: SetTerm{Elems: []Term{Var{Name: "E"}}}},
			{Term: MultisetTerm{Elems: []Term{Var{Name: "F"}}}},
			{Term: SeqTerm{Elems: []Term{Var{Name: "G"}}}},
		}},
	}
	got := VarSet(lits)
	want := "B,A,C,D,E,F,G"
	if strings.Join(got, ",") != want {
		t.Fatalf("VarSet = %v, want %s", got, want)
	}
}
