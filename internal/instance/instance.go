// Package instance implements LOGRES database instances: the triple
// (ρ, π, ν) of Appendix A — the association assignment, the oid assignment
// and the o-value assignment — together with the legality conditions of
// Definition 4 (isa containment, hierarchy disjointness, typing of
// o-values, and referential constraints between classes).
package instance

import (
	"fmt"
	"sort"
	"strings"

	"logres/internal/types"
	"logres/internal/value"
)

// Instance is one database instance over a schema.
type Instance struct {
	schema *types.Schema

	classes map[string]map[value.OID]bool     // π: class name → set of oids
	ovalues map[value.OID]value.Tuple         // ν: oid → o-value
	assocs  map[string]map[string]value.Tuple // ρ: assoc name → key → tuple

	nextOID int64
}

// New returns an empty instance over the given schema.
func New(schema *types.Schema) *Instance {
	return &Instance{
		schema:  schema,
		classes: map[string]map[value.OID]bool{},
		ovalues: map[value.OID]value.Tuple{},
		assocs:  map[string]map[string]value.Tuple{},
	}
}

// Schema returns the instance's schema.
func (in *Instance) Schema() *types.Schema { return in.schema }

// SetSchema rebinds the instance to a (compatible) schema; used by module
// application which evolves S while keeping the data.
func (in *Instance) SetSchema(s *types.Schema) { in.schema = s }

// NewOID invents a fresh oid (Definition 8, point b).
func (in *Instance) NewOID() value.OID {
	in.nextOID++
	return value.OID(in.nextOID)
}

// OIDCounter returns the current oid counter, for snapshotting.
func (in *Instance) OIDCounter() int64 { return in.nextOID }

// SetOIDCounter restores the oid counter; used when loading snapshots. It
// never lowers the counter.
func (in *Instance) SetOIDCounter(n int64) {
	if n > in.nextOID {
		in.nextOID = n
	}
}

// AddToClass records oid ∈ π(class) and merges the o-value. The o-value of
// an object is shared by every class of its hierarchy; components present
// in v overwrite equally-labelled components of the stored o-value (the ⊕
// composition of Appendix B).
func (in *Instance) AddToClass(class string, oid value.OID, v value.Tuple) {
	class = types.Canon(class)
	set := in.classes[class]
	if set == nil {
		set = map[value.OID]bool{}
		in.classes[class] = set
	}
	set[oid] = true
	if int64(oid) > in.nextOID {
		in.nextOID = int64(oid)
	}
	prev, ok := in.ovalues[oid]
	if !ok {
		in.ovalues[oid] = v
		return
	}
	merged := prev
	for _, f := range v.Fields() {
		merged = merged.With(f.Label, f.Value)
	}
	in.ovalues[oid] = merged
}

// SetOValue overwrites the o-value of an existing object.
func (in *Instance) SetOValue(oid value.OID, v value.Tuple) { in.ovalues[oid] = v }

// RemoveFromClass removes oid from π(class). The o-value is kept while the
// oid belongs to any class and dropped when the last membership goes.
func (in *Instance) RemoveFromClass(class string, oid value.OID) {
	class = types.Canon(class)
	if set := in.classes[class]; set != nil {
		delete(set, oid)
	}
	for _, set := range in.classes {
		if set[oid] {
			return
		}
	}
	delete(in.ovalues, oid)
}

// HasObject reports oid ∈ π(class).
func (in *Instance) HasObject(class string, oid value.OID) bool {
	return in.classes[types.Canon(class)][oid]
}

// OValue returns ν(oid).
func (in *Instance) OValue(oid value.OID) (value.Tuple, bool) {
	v, ok := in.ovalues[oid]
	return v, ok
}

// Objects returns the oids of π(class) in ascending order.
func (in *Instance) Objects(class string) []value.OID {
	set := in.classes[types.Canon(class)]
	out := make([]value.OID, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ClassSize reports |π(class)|.
func (in *Instance) ClassSize(class string) int {
	return len(in.classes[types.Canon(class)])
}

// InsertTuple adds a tuple to ρ(assoc); duplicates are absorbed (an
// association is a set of tuples).
func (in *Instance) InsertTuple(assoc string, t value.Tuple) {
	assoc = types.Canon(assoc)
	m := in.assocs[assoc]
	if m == nil {
		m = map[string]value.Tuple{}
		in.assocs[assoc] = m
	}
	m[t.Key()] = t
}

// RemoveTuple deletes a tuple from ρ(assoc).
func (in *Instance) RemoveTuple(assoc string, t value.Tuple) {
	assoc = types.Canon(assoc)
	if m := in.assocs[assoc]; m != nil {
		delete(m, t.Key())
	}
}

// HasTuple reports t ∈ ρ(assoc).
func (in *Instance) HasTuple(assoc string, t value.Tuple) bool {
	m := in.assocs[types.Canon(assoc)]
	if m == nil {
		return false
	}
	_, ok := m[t.Key()]
	return ok
}

// Tuples returns ρ(assoc) in canonical (key) order.
func (in *Instance) Tuples(assoc string) []value.Tuple {
	m := in.assocs[types.Canon(assoc)]
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]value.Tuple, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// AssocSize reports |ρ(assoc)|.
func (in *Instance) AssocSize(assoc string) int {
	return len(in.assocs[types.Canon(assoc)])
}

// Clone returns a deep-enough copy (values are immutable and shared).
func (in *Instance) Clone() *Instance {
	n := New(in.schema)
	n.nextOID = in.nextOID
	for c, set := range in.classes {
		cp := make(map[value.OID]bool, len(set))
		for o := range set {
			cp[o] = true
		}
		n.classes[c] = cp
	}
	for o, v := range in.ovalues {
		n.ovalues[o] = v
	}
	for a, m := range in.assocs {
		cp := make(map[string]value.Tuple, len(m))
		for k, t := range m {
			cp[k] = t
		}
		n.assocs[a] = cp
	}
	return n
}

// Equal reports whether two instances contain exactly the same memberships,
// o-values and tuples.
func (in *Instance) Equal(other *Instance) bool {
	if len(in.ovalues) != len(other.ovalues) {
		return false
	}
	for o, v := range in.ovalues {
		w, ok := other.ovalues[o]
		if !ok || !value.Equal(v, w) {
			return false
		}
	}
	if !sameMembership(in.classes, other.classes) || !sameMembership(other.classes, in.classes) {
		return false
	}
	return sameTuples(in.assocs, other.assocs) && sameTuples(other.assocs, in.assocs)
}

func sameMembership(a, b map[string]map[value.OID]bool) bool {
	for c, set := range a {
		for o := range set {
			if !b[c][o] {
				return false
			}
		}
	}
	return true
}

func sameTuples(a, b map[string]map[string]value.Tuple) bool {
	for n, m := range a {
		for k := range m {
			if _, ok := b[n][k]; !ok {
				return false
			}
		}
	}
	return true
}

// String renders the instance deterministically, for tests and the CLI.
func (in *Instance) String() string {
	var b strings.Builder
	var classNames []string
	for c := range in.classes {
		if len(in.classes[c]) > 0 {
			classNames = append(classNames, c)
		}
	}
	sort.Strings(classNames)
	for _, c := range classNames {
		fmt.Fprintf(&b, "%s:\n", c)
		for _, o := range in.Objects(c) {
			v := in.ovalues[o]
			eff, err := in.schema.EffectiveTuple(c)
			if err == nil {
				v = Project(v, eff)
			}
			fmt.Fprintf(&b, "  %s %s\n", o, v)
		}
	}
	var assocNames []string
	for a := range in.assocs {
		if len(in.assocs[a]) > 0 {
			assocNames = append(assocNames, a)
		}
	}
	sort.Strings(assocNames)
	for _, a := range assocNames {
		fmt.Fprintf(&b, "%s:\n", a)
		for _, t := range in.Tuples(a) {
			fmt.Fprintf(&b, "  %s\n", t)
		}
	}
	return b.String()
}

// Project restricts an o-value to the components of an effective tuple
// type, in type order (the Π operator of Definition 4). Components missing
// from the o-value are projected to null.
func Project(v value.Tuple, eff types.Tuple) value.Tuple {
	fields := make([]value.Field, len(eff.Fields))
	for i, f := range eff.Fields {
		fv, ok := v.Get(f.Label)
		if !ok {
			fv = value.Null{}
		}
		fields[i] = value.Field{Label: f.Label, Value: fv}
	}
	return value.NewTuple(fields...)
}
