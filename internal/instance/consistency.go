package instance

import (
	"errors"
	"fmt"

	"logres/internal/types"
	"logres/internal/value"
)

// CheckConsistency verifies the legality conditions of Definition 4:
//
//	(a) if C isa C' then π(C) ⊆ π(C');
//	(b) oids shared by two classes imply a common ancestor (the oid
//	    universe is partitioned into disjoint hierarchies);
//	(ν) the projection of each o-value on its class's effective type is a
//	    legal element of that type;
//	(ρ) association tuples are legal elements of the association type and
//	    reference only existing objects (no nil oids); class-to-class
//	    references point to existing objects or are nil.
//
// All violations found are returned, joined.
func (in *Instance) CheckConsistency() error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("instance: "+format, args...))
	}
	s := in.schema

	// (a) isa containment.
	for _, e := range s.IsaEdges() {
		for o := range in.classes[e.Sub] {
			if !in.classes[e.Super][o] {
				report("oid %s is in %s but not in its superclass %s", o, e.Sub, e.Super)
			}
		}
	}

	// (b) hierarchy disjointness.
	owner := map[value.OID]string{}
	for _, c := range s.NamesOf(types.DeclClass) {
		for o := range in.classes[c] {
			if prev, ok := owner[o]; ok && prev != c && !s.SameHierarchy(prev, c) {
				report("oid %s belongs to %s and %s, which share no common ancestor", o, prev, c)
			} else {
				owner[o] = c
			}
		}
	}

	// (ν) o-value typing + class-to-class references.
	for _, c := range s.NamesOf(types.DeclClass) {
		eff, err := s.EffectiveTuple(c)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		for _, o := range in.Objects(c) {
			v, ok := in.ovalues[o]
			if !ok {
				report("oid %s of class %s has no o-value", o, c)
				continue
			}
			proj := Project(v, eff)
			if err := s.CheckValue(eff, proj, types.NilAllowed); err != nil {
				report("o-value of %s in class %s: %v", o, c, err)
				continue
			}
			in.checkRefs(c, eff, proj, true, report)
		}
	}

	// (ρ) association typing + referential integrity.
	for _, a := range s.NamesOf(types.DeclAssociation) {
		eff, err := s.EffectiveTuple(a)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		for _, t := range in.Tuples(a) {
			proj := Project(t, eff)
			if err := s.CheckValue(eff, proj, types.NilForbidden); err != nil {
				report("tuple of %s: %v", a, err)
				continue
			}
			in.checkRefs(a, eff, proj, false, report)
		}
	}
	return errors.Join(errs...)
}

// CheckTuple audits one association tuple against the schema in
// isolation — the per-tuple fragment of CheckConsistency's clause (ρ).
// When the schema declares no classes, clause (ρ) is the only one with
// content and it decomposes per tuple (typing is local and there is no
// referential state a deletion could invalidate), so a caller that
// already knows the rest of the instance is consistent can audit a
// commit by checking just the added tuples.
func (in *Instance) CheckTuple(assoc string, t value.Tuple) error {
	eff, err := in.schema.EffectiveTuple(assoc)
	if err != nil {
		return err
	}
	proj := Project(t, eff)
	if err := in.schema.CheckValue(eff, proj, types.NilForbidden); err != nil {
		return fmt.Errorf("instance: tuple of %s: %v", assoc, err)
	}
	var errs []error
	in.checkRefs(assoc, eff, proj, false, func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("instance: "+format, args...))
	})
	return errors.Join(errs...)
}

// checkRefs walks a typed value and verifies that every class-typed
// position references an existing object of that class (or is nil when
// nilOK holds).
func (in *Instance) checkRefs(owner string, t types.Type, v value.Value, nilOK bool, report func(string, ...any)) {
	switch x := t.(type) {
	case types.Named:
		// Expanded types only keep Named for class references.
		if !in.schema.IsClass(x.Name) {
			// Unexpanded domain: expand and recurse.
			et, err := in.schema.ExpandDomains(x)
			if err == nil {
				in.checkRefs(owner, et, v, nilOK, report)
			}
			return
		}
		ref, ok := v.(value.Ref)
		if !ok {
			if _, isNull := v.(value.Null); isNull && nilOK {
				return
			}
			report("%s: expected reference to %s, got %s", owner, x.Name, v)
			return
		}
		oid := value.OID(ref)
		if oid.IsNil() {
			if !nilOK {
				report("%s: nil oid in association position of class %s", owner, x.Name)
			}
			return
		}
		if !in.classes[types.Canon(x.Name)][oid] {
			report("%s: dangling reference %s to class %s", owner, oid, x.Name)
		}
	case types.Tuple:
		tv, ok := v.(value.Tuple)
		if !ok {
			return
		}
		for _, f := range x.Fields {
			if fv, found := tv.Get(f.Label); found {
				in.checkRefs(owner, f.Type, fv, nilOK, report)
			}
		}
	case types.Set:
		if sv, ok := v.(value.Set); ok {
			for _, e := range sv.Elems() {
				in.checkRefs(owner, x.Elem, e, nilOK, report)
			}
		}
	case types.Multiset:
		if mv, ok := v.(value.Multiset); ok {
			for _, e := range mv.Elems() {
				in.checkRefs(owner, x.Elem, e, nilOK, report)
			}
		}
	case types.Sequence:
		if qv, ok := v.(value.Sequence); ok {
			for _, e := range qv.Elems() {
				in.checkRefs(owner, x.Elem, e, nilOK, report)
			}
		}
	}
}
