package instance

import (
	"strings"
	"testing"

	"logres/internal/types"
	"logres/internal/value"
)

func universitySchema(t *testing.T) *types.Schema {
	t.Helper()
	s := types.NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddDomain("NAME", types.String))
	must(s.AddDomain("ADDRESS", types.String))
	must(s.AddClass("PERSON", types.Tuple{Fields: []types.Field{
		{Label: "name", Type: types.Named{Name: "NAME"}},
		{Label: "address", Type: types.Named{Name: "ADDRESS"}},
	}}))
	must(s.AddClass("SCHOOL", types.Tuple{Fields: []types.Field{
		{Label: "name", Type: types.Named{Name: "NAME"}},
	}}))
	must(s.AddClass("STUDENT", types.Tuple{Fields: []types.Field{
		{Label: "person", Type: types.Named{Name: "PERSON"}},
		{Label: "studschool", Type: types.Named{Name: "SCHOOL"}},
	}}))
	must(s.AddIsa("STUDENT", "", "PERSON"))
	must(s.AddAssociation("ENROLLED", types.Tuple{Fields: []types.Field{
		{Label: "student", Type: types.Named{Name: "STUDENT"}},
		{Label: "school", Type: types.Named{Name: "SCHOOL"}},
	}}))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func personValue(name, addr string) value.Tuple {
	return value.NewTuple(
		value.Field{Label: "name", Value: value.Str(name)},
		value.Field{Label: "address", Value: value.Str(addr)},
	)
}

func TestAddRemoveObjects(t *testing.T) {
	in := New(universitySchema(t))
	o := in.NewOID()
	in.AddToClass("person", o, personValue("ann", "milan"))
	if !in.HasObject("PERSON", o) {
		t.Fatal("object missing after add")
	}
	if in.ClassSize("person") != 1 {
		t.Fatal("class size wrong")
	}
	v, ok := in.OValue(o)
	if !ok {
		t.Fatal("o-value missing")
	}
	if got, _ := v.Get("name"); got != value.Str("ann") {
		t.Fatalf("o-value = %v", v)
	}
	in.RemoveFromClass("person", o)
	if in.HasObject("person", o) {
		t.Fatal("object present after remove")
	}
	if _, ok := in.OValue(o); ok {
		t.Fatal("o-value kept after last membership removed")
	}
}

func TestOValueSharedAcrossHierarchy(t *testing.T) {
	in := New(universitySchema(t))
	o := in.NewOID()
	in.AddToClass("person", o, personValue("bob", "rome"))
	// Student adds the studschool component; name/address merge.
	in.AddToClass("student", o, value.NewTuple(
		value.Field{Label: "studschool", Value: value.Ref(value.NilOID)},
	))
	v, _ := in.OValue(o)
	if got, _ := v.Get("name"); got != value.Str("bob") {
		t.Fatal("merge lost name")
	}
	if _, ok := v.Get("studschool"); !ok {
		t.Fatal("merge lost studschool")
	}
	// Removing from one class keeps the o-value while the other remains.
	in.RemoveFromClass("student", o)
	if _, ok := in.OValue(o); !ok {
		t.Fatal("o-value dropped while person membership remains")
	}
}

func TestOValueOverwriteIsRightBiased(t *testing.T) {
	in := New(universitySchema(t))
	o := in.NewOID()
	in.AddToClass("person", o, personValue("ann", "milan"))
	in.AddToClass("person", o, personValue("ann", "torino"))
	v, _ := in.OValue(o)
	if got, _ := v.Get("address"); got != value.Str("torino") {
		t.Fatalf("⊕ right bias lost: %v", v)
	}
}

func TestAssociationsAreSets(t *testing.T) {
	in := New(universitySchema(t))
	tup := value.NewTuple(
		value.Field{Label: "student", Value: value.Ref(1)},
		value.Field{Label: "school", Value: value.Ref(2)},
	)
	in.InsertTuple("enrolled", tup)
	in.InsertTuple("enrolled", tup)
	if in.AssocSize("enrolled") != 1 {
		t.Fatal("duplicate tuple kept")
	}
	if !in.HasTuple("enrolled", tup) {
		t.Fatal("tuple missing")
	}
	in.RemoveTuple("enrolled", tup)
	if in.AssocSize("enrolled") != 0 {
		t.Fatal("tuple kept after removal")
	}
}

func TestNewOIDMonotonicAndCounterRestore(t *testing.T) {
	in := New(universitySchema(t))
	a, b := in.NewOID(), in.NewOID()
	if b <= a {
		t.Fatal("oids not monotonic")
	}
	in.AddToClass("person", value.OID(100), personValue("x", "y"))
	if c := in.NewOID(); c <= 100 {
		t.Fatalf("counter not advanced past explicit oid: %v", c)
	}
	in.SetOIDCounter(5) // must not lower
	if c := in.NewOID(); c <= 100 {
		t.Fatal("SetOIDCounter lowered the counter")
	}
}

func TestConsistencyHappyPath(t *testing.T) {
	in := New(universitySchema(t))
	school := in.NewOID()
	in.AddToClass("school", school, value.NewTuple(value.Field{Label: "name", Value: value.Str("polimi")}))
	stud := in.NewOID()
	sv := personValue("ann", "milan").With("studschool", value.Ref(school))
	in.AddToClass("person", stud, sv)
	in.AddToClass("student", stud, sv)
	in.InsertTuple("enrolled", value.NewTuple(
		value.Field{Label: "student", Value: value.Ref(stud)},
		value.Field{Label: "school", Value: value.Ref(school)},
	))
	if err := in.CheckConsistency(); err != nil {
		t.Fatalf("consistent instance rejected: %v", err)
	}
}

func TestConsistencyIsaContainmentViolation(t *testing.T) {
	in := New(universitySchema(t))
	stud := in.NewOID()
	sv := personValue("ann", "milan").With("studschool", value.Ref(value.NilOID))
	in.AddToClass("student", stud, sv) // not added to person
	err := in.CheckConsistency()
	if err == nil || !strings.Contains(err.Error(), "superclass") {
		t.Fatalf("isa containment violation missed: %v", err)
	}
}

func TestConsistencyHierarchyDisjointness(t *testing.T) {
	in := New(universitySchema(t))
	o := in.NewOID()
	in.AddToClass("person", o, personValue("x", "y"))
	in.AddToClass("school", o, value.NewTuple(value.Field{Label: "name", Value: value.Str("s")}))
	err := in.CheckConsistency()
	if err == nil || !strings.Contains(err.Error(), "common ancestor") {
		t.Fatalf("disjointness violation missed: %v", err)
	}
}

func TestConsistencyDanglingAssociationRef(t *testing.T) {
	in := New(universitySchema(t))
	in.InsertTuple("enrolled", value.NewTuple(
		value.Field{Label: "student", Value: value.Ref(99)},
		value.Field{Label: "school", Value: value.Ref(98)},
	))
	err := in.CheckConsistency()
	if err == nil || !strings.Contains(err.Error(), "dangling") {
		t.Fatalf("dangling reference missed: %v", err)
	}
}

func TestConsistencyNilInAssociationRejected(t *testing.T) {
	in := New(universitySchema(t))
	school := in.NewOID()
	in.AddToClass("school", school, value.NewTuple(value.Field{Label: "name", Value: value.Str("s")}))
	in.InsertTuple("enrolled", value.NewTuple(
		value.Field{Label: "student", Value: value.Ref(value.NilOID)},
		value.Field{Label: "school", Value: value.Ref(school)},
	))
	err := in.CheckConsistency()
	if err == nil || !strings.Contains(err.Error(), "nil") {
		t.Fatalf("nil oid in association accepted: %v", err)
	}
}

func TestConsistencyNilClassRefAllowed(t *testing.T) {
	in := New(universitySchema(t))
	stud := in.NewOID()
	sv := personValue("ann", "milan").With("studschool", value.Ref(value.NilOID))
	in.AddToClass("person", stud, sv)
	in.AddToClass("student", stud, sv)
	if err := in.CheckConsistency(); err != nil {
		t.Fatalf("nil class-to-class reference rejected: %v", err)
	}
}

func TestConsistencyBadOValueType(t *testing.T) {
	in := New(universitySchema(t))
	o := in.NewOID()
	in.AddToClass("person", o, value.NewTuple(
		value.Field{Label: "name", Value: value.Int(3)}, // wrong type
		value.Field{Label: "address", Value: value.Str("x")},
	))
	err := in.CheckConsistency()
	if err == nil || !strings.Contains(err.Error(), "expected string") {
		t.Fatalf("ill-typed o-value accepted: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	in := New(universitySchema(t))
	o := in.NewOID()
	in.AddToClass("person", o, personValue("a", "b"))
	in.InsertTuple("enrolled", value.NewTuple(
		value.Field{Label: "student", Value: value.Ref(o)},
		value.Field{Label: "school", Value: value.Ref(o)},
	))
	cp := in.Clone()
	if !cp.Equal(in) {
		t.Fatal("clone differs")
	}
	cp.RemoveFromClass("person", o)
	if !in.HasObject("person", o) {
		t.Fatal("clone shares class sets")
	}
	if cp.Equal(in) {
		t.Fatal("Equal missed divergence")
	}
}

func TestProject(t *testing.T) {
	eff := types.Tuple{Fields: []types.Field{
		{Label: "a", Type: types.Int}, {Label: "b", Type: types.String},
	}}
	v := value.NewTuple(
		value.Field{Label: "b", Value: value.Str("x")},
		value.Field{Label: "a", Value: value.Int(1)},
		value.Field{Label: "extra", Value: value.Int(9)},
	)
	p := Project(v, eff)
	if p.Len() != 2 {
		t.Fatalf("projection kept extra fields: %v", p)
	}
	if p.Field(0).Label != "a" || p.Field(1).Label != "b" {
		t.Fatalf("projection order wrong: %v", p)
	}
	// Missing component projects to null.
	p2 := Project(value.NewTuple(), eff)
	if v0 := p2.Field(0).Value; v0.Kind() != value.KindNull {
		t.Fatalf("missing component = %v, want null", v0)
	}
}

func TestStringRendering(t *testing.T) {
	in := New(universitySchema(t))
	o := in.NewOID()
	in.AddToClass("person", o, personValue("ann", "milan"))
	out := in.String()
	if !strings.Contains(out, "person:") || !strings.Contains(out, `"ann"`) {
		t.Fatalf("String() = %q", out)
	}
}

func TestSchemaAccessorsAndSetOValue(t *testing.T) {
	s := universitySchema(t)
	in := New(s)
	if in.Schema() != s {
		t.Fatal("Schema accessor wrong")
	}
	s2 := s.Clone()
	in.SetSchema(s2)
	if in.Schema() != s2 {
		t.Fatal("SetSchema wrong")
	}
	o := in.NewOID()
	in.AddToClass("person", o, personValue("a", "b"))
	in.SetOValue(o, personValue("x", "y"))
	v, _ := in.OValue(o)
	if got, _ := v.Get("name"); got != value.Str("x") {
		t.Fatalf("SetOValue lost: %v", v)
	}
	if in.OIDCounter() == 0 {
		t.Fatal("counter accessor wrong")
	}
}

func TestCheckRefsThroughCollections(t *testing.T) {
	// Class references nested inside sets and sequences are checked.
	s := types.NewSchema()
	_ = s.AddClass("ITEM", types.Tuple{Fields: []types.Field{{Label: "k", Type: types.Int}}})
	_ = s.AddClass("BOX", types.Tuple{Fields: []types.Field{
		{Label: "items", Type: types.Set{Elem: types.Named{Name: "ITEM"}}},
		{Label: "order", Type: types.Sequence{Elem: types.Named{Name: "ITEM"}}},
		{Label: "bag", Type: types.Multiset{Elem: types.Named{Name: "ITEM"}}},
	}})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	in := New(s)
	b := in.NewOID()
	in.AddToClass("box", b, value.NewTuple(
		value.Field{Label: "items", Value: value.NewSet(value.Ref(77))},
		value.Field{Label: "order", Value: value.NewSequence(value.Ref(77))},
		value.Field{Label: "bag", Value: value.NewMultiset(value.Ref(77))},
	))
	err := in.CheckConsistency()
	if err == nil || !strings.Contains(err.Error(), "dangling") {
		t.Fatalf("nested dangling references accepted: %v", err)
	}
}
