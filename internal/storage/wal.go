// Durable write-ahead log: the record format and its framing. A WAL
// file is
//
//	magic "LGWL", version byte,
//	then zero or more framed records:
//	  u32le payload length, u32le CRC32-C of the payload, payload.
//
// Each payload is one replayable commit keyed by its CommitEpoch:
//
//	delta    — a validated optimistic commit's fact delta (the
//	           CommitDelta footprint writes + removes + adds + oid
//	           counter advance from internal/module);
//	replace  — a whole-state replacement (serial commits and
//	           rule/schema-changing modes), embedded as SaveState bytes;
//	register — a module-library registration, embedded as the module's
//	           canonical source.
//
// Record epochs are strictly sequential; recovery replays records onto
// the latest snapshot in epoch order and treats any framing, checksum,
// decode, or continuity failure as a torn tail: the valid prefix is
// kept, the unreadable suffix quarantined (see store.go).
package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"logres/internal/engine"
	"logres/internal/module"
	"logres/internal/parser"
)

const (
	walMagic   = "LGWL"
	walVersion = 1
	// walHeaderLen is the file header size: magic + version byte.
	walHeaderLen = int64(len(walMagic) + 1)
	// walFrameLen is the per-record frame overhead: length + checksum.
	walFrameLen = 8
	// maxWALRecord bounds one record's payload; anything larger in a
	// length prefix is corruption, not data.
	maxWALRecord = 1 << 26 // 64 MiB
)

// RecordType discriminates WAL records.
type RecordType byte

const (
	// RecDelta is a fact-level delta commit.
	RecDelta RecordType = 1
	// RecReplace is a whole-state replacement commit.
	RecReplace RecordType = 2
	// RecRegister is a module-library registration.
	RecRegister RecordType = 3
)

func (t RecordType) String() string {
	switch t {
	case RecDelta:
		return "delta"
	case RecReplace:
		return "replace"
	case RecRegister:
		return "register"
	}
	return fmt.Sprintf("unknown(%d)", byte(t))
}

// WALRecord is one replayable commit. Exactly one payload group is
// populated, per Type.
type WALRecord struct {
	Type  RecordType
	Epoch uint64

	// Delta payload: the committed write footprint, the oid-counter
	// advance, and the extensional delta (removes apply before adds,
	// mirroring module.CommitDelta).
	Writes       []string
	CounterDelta int64
	Removes      []engine.Fact
	Adds         []engine.Fact

	// Replace payload: a complete SaveState snapshot of the new state.
	State []byte

	// Register payload: the registered module's canonical source.
	Source string
}

// encodeRecord renders the record payload (everything inside the frame).
func encodeRecord(rec *WALRecord) ([]byte, error) {
	var buf bytes.Buffer
	w := &writer{w: bufio.NewWriter(&buf)}
	w.byte(byte(rec.Type))
	w.uvarint(rec.Epoch)
	switch rec.Type {
	case RecDelta:
		w.uvarint(uint64(len(rec.Writes)))
		for _, p := range rec.Writes {
			w.str(p)
		}
		w.varint(rec.CounterDelta)
		writeFactList(w, rec.Removes)
		writeFactList(w, rec.Adds)
	case RecReplace:
		w.uvarint(uint64(len(rec.State)))
		w.raw(rec.State)
	case RecRegister:
		w.str(rec.Source)
	default:
		return nil, fmt.Errorf("storage: cannot encode wal record type %d", rec.Type)
	}
	if w.err != nil {
		return nil, w.err
	}
	if err := w.w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeFactList(w *writer, facts []engine.Fact) {
	w.uvarint(uint64(len(facts)))
	for _, f := range facts {
		w.str(f.Pred)
		writeFact(w, f)
	}
}

// decodeRecord parses one framed payload.
func decodeRecord(payload []byte) (*WALRecord, error) {
	r := &reader{r: bufio.NewReader(bytes.NewReader(payload))}
	t, err := r.byte()
	if err != nil {
		return nil, err
	}
	rec := &WALRecord{Type: RecordType(t)}
	if rec.Epoch, err = r.uvarint(); err != nil {
		return nil, err
	}
	switch rec.Type {
	case RecDelta:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if n > maxWALRecord {
			return nil, fmt.Errorf("storage: wal delta writes count %d too large", n)
		}
		rec.Writes = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			p, err := r.str()
			if err != nil {
				return nil, err
			}
			rec.Writes = append(rec.Writes, p)
		}
		if rec.CounterDelta, err = r.varint(); err != nil {
			return nil, err
		}
		if rec.Removes, err = readFactList(r); err != nil {
			return nil, err
		}
		if rec.Adds, err = readFactList(r); err != nil {
			return nil, err
		}
	case RecReplace:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if n > maxWALRecord {
			return nil, fmt.Errorf("storage: wal replace state %d bytes too large", n)
		}
		rec.State = make([]byte, n)
		if _, err := io.ReadFull(r.r, rec.State); err != nil {
			return nil, err
		}
	case RecRegister:
		if rec.Source, err = r.str(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("storage: unknown wal record type %d", t)
	}
	return rec, nil
}

func readFactList(r *reader) ([]engine.Fact, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxWALRecord {
		return nil, fmt.Errorf("storage: wal fact list length %d too large", n)
	}
	facts := make([]engine.Fact, 0, n)
	for i := uint64(0); i < n; i++ {
		pred, err := r.str()
		if err != nil {
			return nil, err
		}
		f, err := readFact(r, pred)
		if err != nil {
			return nil, err
		}
		facts = append(facts, f)
	}
	return facts, nil
}

// frameRecord wraps an encoded payload in its on-disk frame.
func frameRecord(payload []byte) []byte {
	frame := make([]byte, walFrameLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[walFrameLen:], payload)
	return frame
}

// readFrame reads one framed record from r. It distinguishes a clean
// end (io.EOF with no bytes consumed) from a torn or corrupt record
// (any other failure), returning the payload on success.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [walFrameLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		// A clean EOF before any header byte is the end of the log;
		// a partial header is a torn record.
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxWALRecord {
		return nil, fmt.Errorf("storage: wal record length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if sum := crc32.Checksum(payload, castagnoli); sum != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("storage: wal record checksum mismatch")
	}
	return payload, nil
}

// applyRecord replays one WAL record onto st, returning the successor
// state. Delta replay mirrors module.CommitDelta exactly (clone, removes
// then adds, counter advance), so a replayed state's SaveState bytes
// equal the originally committed state's.
func applyRecord(st *module.State, rec *WALRecord) (*module.State, error) {
	switch rec.Type {
	case RecDelta:
		next := &module.State{
			E:       st.E.Clone(),
			R:       st.R,
			S:       st.S,
			Counter: st.Counter + rec.CounterDelta,
			Lib:     st.Lib,
		}
		for _, f := range rec.Removes {
			next.E.Remove(f)
		}
		for _, f := range rec.Adds {
			next.E.Add(f)
		}
		return next, nil
	case RecReplace:
		return LoadState(bytes.NewReader(rec.State))
	case RecRegister:
		m, err := parser.ParseModule(rec.Source)
		if err != nil {
			return nil, fmt.Errorf("storage: replaying registration: %w", err)
		}
		lib := st.Lib
		if lib == nil {
			lib = module.NewLibrary()
		} else {
			lib = lib.Clone()
		}
		if err := lib.Register(m); err != nil {
			return nil, err
		}
		next := *st
		next.Lib = lib
		return &next, nil
	}
	return nil, fmt.Errorf("storage: cannot replay wal record type %d", rec.Type)
}
