// Package storage persists LOGRES database states: a deterministic binary
// codec for values, type descriptors, schemas, fact sets and whole states
// (E, R, S, oid counter). Rules are stored in their canonical surface
// syntax and re-parsed on load (the parser round-trips).
package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"logres/internal/types"
	"logres/internal/value"
)

// castagnoli is the CRC32-C polynomial table shared by the snapshot
// trailer and the WAL record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// value encoding tags
const (
	tagInt byte = iota + 1
	tagReal
	tagString
	tagBool
	tagRef
	tagNull
	tagTuple
	tagSet
	tagMultiset
	tagSequence
)

type writer struct {
	w *bufio.Writer
	// crc, when non-nil, hashes every byte written — the snapshot codec
	// uses it to accumulate the integrity trailer without a second pass.
	crc hash.Hash32
	err error
}

func (w *writer) raw(p []byte) {
	if w.err != nil {
		return
	}
	if w.crc != nil {
		_, _ = w.crc.Write(p)
	}
	_, w.err = w.w.Write(p)
}

func (w *writer) byte(b byte) {
	buf := [1]byte{b}
	w.raw(buf[:])
}

func (w *writer) uvarint(x uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	w.raw(buf[:n])
}

func (w *writer) varint(x int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], x)
	w.raw(buf[:n])
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	if w.err != nil {
		return
	}
	if w.crc != nil {
		_, _ = io.WriteString(w.crc, s)
	}
	_, w.err = w.w.WriteString(s)
}

// byteReader is the input the decoding primitives need; *bufio.Reader
// satisfies it directly, and countingReader wraps one to track the
// consumed offset and accumulate the integrity checksum.
type byteReader interface {
	io.Reader
	io.ByteReader
}

type reader struct {
	r byteReader
}

func (r *reader) byte() (byte, error) { return r.r.ReadByte() }

func (r *reader) uvarint() (uint64, error) { return binary.ReadUvarint(r.r) }

func (r *reader) varint() (int64, error) { return binary.ReadVarint(r.r) }

func (r *reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > 1<<30 {
		return "", fmt.Errorf("storage: string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// countingReader tracks the byte offset consumed by the decoder (for
// ErrCorrupt attribution) and, when crc is set, hashes every byte
// delivered (for the snapshot trailer check). It sits above the bufio
// layer so read-ahead never pollutes the offset or the checksum.
type countingReader struct {
	r   *bufio.Reader
	crc hash.Hash32
	n   int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.n += int64(n)
		if c.crc != nil {
			_, _ = c.crc.Write(p[:n])
		}
	}
	return n, err
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
		if c.crc != nil {
			buf := [1]byte{b}
			_, _ = c.crc.Write(buf[:])
		}
	}
	return b, err
}

// corrupt wraps err as an *ErrCorrupt at the reader's current offset;
// an error that is already attributed passes through unchanged.
func (c *countingReader) corrupt(detail string, err error) error {
	if err == nil {
		return nil
	}
	if _, ok := err.(*ErrCorrupt); ok {
		return err
	}
	return &ErrCorrupt{Offset: c.n, Detail: detail, Err: err}
}

func (w *writer) value(v value.Value) {
	switch x := v.(type) {
	case value.Int:
		w.byte(tagInt)
		w.varint(int64(x))
	case value.Real:
		w.byte(tagReal)
		w.uvarint(math.Float64bits(float64(x)))
	case value.Str:
		w.byte(tagString)
		w.str(string(x))
	case value.Bool:
		w.byte(tagBool)
		if x {
			w.byte(1)
		} else {
			w.byte(0)
		}
	case value.Ref:
		w.byte(tagRef)
		w.varint(int64(x))
	case value.Null:
		w.byte(tagNull)
	case value.Tuple:
		w.byte(tagTuple)
		w.uvarint(uint64(x.Len()))
		for i := 0; i < x.Len(); i++ {
			f := x.Field(i)
			w.str(f.Label)
			w.value(f.Value)
		}
	case value.Set:
		w.byte(tagSet)
		w.elems(x.Elems())
	case value.Multiset:
		w.byte(tagMultiset)
		w.elems(x.Elems())
	case value.Sequence:
		w.byte(tagSequence)
		w.elems(x.Elems())
	default:
		if w.err == nil {
			w.err = fmt.Errorf("storage: cannot encode %T", v)
		}
	}
}

func (w *writer) elems(es []value.Value) {
	w.uvarint(uint64(len(es)))
	for _, e := range es {
		w.value(e)
	}
}

func (r *reader) value() (value.Value, error) {
	tag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagInt:
		x, err := r.varint()
		return value.Int(x), err
	case tagReal:
		bits, err := r.uvarint()
		return value.Real(math.Float64frombits(bits)), err
	case tagString:
		s, err := r.str()
		return value.Str(s), err
	case tagBool:
		b, err := r.byte()
		return value.Bool(b != 0), err
	case tagRef:
		x, err := r.varint()
		return value.Ref(x), err
	case tagNull:
		return value.Null{}, nil
	case tagTuple:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		fields := make([]value.Field, n)
		for i := range fields {
			label, err := r.str()
			if err != nil {
				return nil, err
			}
			v, err := r.value()
			if err != nil {
				return nil, err
			}
			fields[i] = value.Field{Label: label, Value: v}
		}
		return value.NewTuple(fields...), nil
	case tagSet, tagMultiset, tagSequence:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		elems := make([]value.Value, n)
		for i := range elems {
			if elems[i], err = r.value(); err != nil {
				return nil, err
			}
		}
		switch tag {
		case tagSet:
			return value.NewSet(elems...), nil
		case tagMultiset:
			return value.NewMultiset(elems...), nil
		default:
			return value.NewSequence(elems...), nil
		}
	}
	return nil, fmt.Errorf("storage: unknown value tag %d", tag)
}

// type encoding tags
const (
	tyInt byte = iota + 1
	tyReal
	tyString
	tyBool
	tyNamed
	tyTuple
	tySet
	tyMultiset
	tySequence
	tyNil // absent type (nullary function argument)
)

func (w *writer) typ(t types.Type) {
	switch x := t.(type) {
	case nil:
		w.byte(tyNil)
	case types.Elementary:
		switch x.K {
		case types.KindInt:
			w.byte(tyInt)
		case types.KindReal:
			w.byte(tyReal)
		case types.KindString:
			w.byte(tyString)
		case types.KindBool:
			w.byte(tyBool)
		default:
			if w.err == nil {
				w.err = fmt.Errorf("storage: bad elementary kind %v", x.K)
			}
		}
	case types.Named:
		w.byte(tyNamed)
		w.str(x.Name)
	case types.Tuple:
		w.byte(tyTuple)
		w.uvarint(uint64(len(x.Fields)))
		for _, f := range x.Fields {
			w.str(f.Label)
			w.typ(f.Type)
		}
	case types.Set:
		w.byte(tySet)
		w.typ(x.Elem)
	case types.Multiset:
		w.byte(tyMultiset)
		w.typ(x.Elem)
	case types.Sequence:
		w.byte(tySequence)
		w.typ(x.Elem)
	default:
		if w.err == nil {
			w.err = fmt.Errorf("storage: cannot encode type %T", t)
		}
	}
}

func (r *reader) typ() (types.Type, error) {
	tag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tyNil:
		return nil, nil
	case tyInt:
		return types.Int, nil
	case tyReal:
		return types.Real, nil
	case tyString:
		return types.String, nil
	case tyBool:
		return types.Bool, nil
	case tyNamed:
		name, err := r.str()
		return types.Named{Name: name}, err
	case tyTuple:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		fields := make([]types.Field, n)
		for i := range fields {
			label, err := r.str()
			if err != nil {
				return nil, err
			}
			ft, err := r.typ()
			if err != nil {
				return nil, err
			}
			fields[i] = types.Field{Label: label, Type: ft}
		}
		return types.Tuple{Fields: fields}, nil
	case tySet:
		e, err := r.typ()
		return types.Set{Elem: e}, err
	case tyMultiset:
		e, err := r.typ()
		return types.Multiset{Elem: e}, err
	case tySequence:
		e, err := r.typ()
		return types.Sequence{Elem: e}, err
	}
	return nil, fmt.Errorf("storage: unknown type tag %d", tag)
}

func (w *writer) schema(s *types.Schema) {
	names := s.Names()
	w.uvarint(uint64(len(names)))
	for _, n := range names {
		d, _ := s.Lookup(n)
		w.str(d.Name)
		w.byte(byte(d.Kind))
		w.typ(d.RHS)
		w.typ(d.Arg)
		w.typ(d.Result)
	}
	edges := s.IsaEdges()
	w.uvarint(uint64(len(edges)))
	for _, e := range edges {
		w.str(e.Sub)
		w.str(e.Label)
		w.str(e.Super)
	}
}

func (r *reader) schema() (*types.Schema, error) {
	s := types.NewSchema()
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		kind, err := r.byte()
		if err != nil {
			return nil, err
		}
		rhs, err := r.typ()
		if err != nil {
			return nil, err
		}
		arg, err := r.typ()
		if err != nil {
			return nil, err
		}
		result, err := r.typ()
		if err != nil {
			return nil, err
		}
		switch types.DeclKind(kind) {
		case types.DeclDomain:
			err = s.AddDomain(name, rhs)
		case types.DeclClass:
			err = s.AddClass(name, rhs)
		case types.DeclAssociation:
			err = s.AddAssociation(name, rhs)
		case types.DeclFunction:
			err = s.AddFunction(name, arg, result)
		default:
			err = fmt.Errorf("storage: unknown decl kind %d", kind)
		}
		if err != nil {
			return nil, err
		}
	}
	en, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < en; i++ {
		sub, err := r.str()
		if err != nil {
			return nil, err
		}
		label, err := r.str()
		if err != nil {
			return nil, err
		}
		super, err := r.str()
		if err != nil {
			return nil, err
		}
		if err := s.AddIsa(sub, label, super); err != nil {
			return nil, err
		}
	}
	return s, nil
}
