package storage

import (
	"bufio"
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"logres/internal/ast"
	"logres/internal/engine"
	"logres/internal/module"
	"logres/internal/parser"
	"logres/internal/types"
	"logres/internal/value"
)

func roundTripValue(t *testing.T, v value.Value) value.Value {
	t.Helper()
	var buf bytes.Buffer
	w := &writer{w: bufio.NewWriter(&buf)}
	w.value(v)
	if w.err != nil {
		t.Fatal(w.err)
	}
	if err := w.w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := &reader{r: bufio.NewReader(&buf)}
	got, err := r.value()
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestValueRoundTrip(t *testing.T) {
	vals := []value.Value{
		value.Int(-42),
		value.Real(3.5),
		value.Real(math.Inf(-1)),
		value.Str("héllo\nworld"),
		value.Bool(true),
		value.Ref(17),
		value.Null{},
		value.NewTuple(value.Field{Label: "a", Value: value.Int(1)}, value.Field{Label: "b", Value: value.Str("x")}),
		value.NewSet(value.Int(3), value.Int(1)),
		value.NewMultiset(value.Int(1), value.Int(1)),
		value.NewSequence(value.Str("a"), value.Str("b")),
		value.NewTuple(value.Field{Label: "nested", Value: value.NewSet(
			value.NewSequence(value.Int(1), value.Int(2)),
		)}),
	}
	for _, v := range vals {
		got := roundTripValue(t, v)
		if !value.Equal(v, got) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestValueRoundTripProperty(t *testing.T) {
	f := func(xs []int64, ss []string) bool {
		var elems []value.Value
		for _, x := range xs {
			elems = append(elems, value.Int(x))
		}
		for _, s := range ss {
			elems = append(elems, value.Str(s))
		}
		v := value.NewTuple(
			value.Field{Label: "set", Value: value.NewSet(elems...)},
			value.Field{Label: "seq", Value: value.NewSequence(elems...)},
		)
		var buf bytes.Buffer
		w := &writer{w: bufio.NewWriter(&buf)}
		w.value(v)
		if w.err != nil || w.w.Flush() != nil {
			return false
		}
		r := &reader{r: bufio.NewReader(&buf)}
		got, err := r.value()
		return err == nil && value.Equal(v, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeRoundTrip(t *testing.T) {
	tys := []types.Type{
		types.Int, types.Real, types.String, types.Bool,
		types.Named{Name: "person"},
		types.Tuple{Fields: []types.Field{{Label: "a", Type: types.Int}, {Label: "b", Type: types.Set{Elem: types.String}}}},
		types.Multiset{Elem: types.Int},
		types.Sequence{Elem: types.Named{Name: "player"}},
	}
	for _, ty := range tys {
		var buf bytes.Buffer
		w := &writer{w: bufio.NewWriter(&buf)}
		w.typ(ty)
		if w.err != nil {
			t.Fatal(w.err)
		}
		if err := w.w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := &reader{r: bufio.NewReader(&buf)}
		got, err := r.typ()
		if err != nil {
			t.Fatal(err)
		}
		if !types.EqualType(ty, got) {
			t.Errorf("type round trip %v -> %v", ty, got)
		}
	}
}

func buildState(t *testing.T) *module.State {
	t.Helper()
	m, err := parser.ParseModule(`
domains NAME = string;
classes PERSON = (name: NAME);
associations PARENT = (par: PERSON, chil: PERSON);
functions DESC: PERSON -> {PERSON};
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Schema.Validate(); err != nil {
		t.Fatal(err)
	}
	st := module.NewState(m.Schema)
	st.Counter = 7
	st.E.Add(engine.Fact{Pred: "person", IsClass: true, OID: 3,
		Tuple: value.NewTuple(value.Field{Label: "name", Value: value.Str("ann")})})
	st.E.Add(engine.Fact{Pred: "parent", Tuple: value.NewTuple(
		value.Field{Label: "par", Value: value.Ref(3)},
		value.Field{Label: "chil", Value: value.Ref(3)},
	)})
	rules, err := parser.ParseProgram(`member(X, desc(Y)) <- parent(par: Y, chil: X).`)
	if err != nil {
		t.Fatal(err)
	}
	st.R = rules
	return st
}

func TestStateRoundTrip(t *testing.T) {
	st := buildState(t)
	var buf bytes.Buffer
	if err := SaveState(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counter != 7 {
		t.Fatalf("counter = %d", got.Counter)
	}
	if !got.E.Equal(st.E) {
		t.Fatal("facts differ after round trip")
	}
	if len(got.R) != 1 || got.R[0].String() != st.R[0].String() {
		t.Fatalf("rules differ: %v", got.R)
	}
	if !got.S.IsClass("person") || !got.S.IsFunction("desc") {
		t.Fatal("schema lost declarations")
	}
	if err := got.S.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStateRoundTripWithIsa(t *testing.T) {
	m, err := parser.ParseModule(`
classes
  PERSON = (name: string);
  STUDENT = (PERSON, school: string);
  STUDENT isa PERSON;
`)
	if err != nil {
		t.Fatal(err)
	}
	st := module.NewState(m.Schema)
	var buf bytes.Buffer
	if err := SaveState(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.S.IsaEdges()) != 1 {
		t.Fatalf("isa edges = %v", got.S.IsaEdges())
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	if _, err := LoadState(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Bad version.
	var buf bytes.Buffer
	w := &writer{w: bufio.NewWriter(&buf)}
	w.str(magic)
	w.byte(99)
	_ = w.w.Flush()
	if _, err := LoadState(&buf); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version accepted: %v", err)
	}
	// Truncated.
	st := buildState(t)
	var full bytes.Buffer
	if err := SaveState(&full, st); err != nil {
		t.Fatal(err)
	}
	half := full.Bytes()[:full.Len()/2]
	if _, err := LoadState(bytes.NewReader(half)); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestSnapshotUsableAfterLoad(t *testing.T) {
	st := buildState(t)
	var buf bytes.Buffer
	if err := SaveState(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded state evaluates: desc facts derive from parent.
	f, _, err := got.Instance(engine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if f.Size("desc") != 1 {
		t.Fatalf("desc = %d", f.Size("desc"))
	}
	_ = ast.RIDI
}
