// Durable store: a data directory holding periodic full-state
// snapshots plus a write-ahead log of every commit since the newest
// one.
//
// Directory layout:
//
//	snap-%020d.snap   full SaveState snapshot, named by its epoch
//	wal.log           framed records with epoch > the newest snapshot's
//	wal.quarantine.N  unreadable WAL suffix preserved from a recovery
//	                  that found a torn tail at byte offset N
//
// Write protocol. Snapshots are written to a temp file, fsynced,
// renamed into place, and the directory fsynced — a crash at any point
// leaves either the old set of snapshots or the old set plus a complete
// new one. WAL appends write one fully-assembled frame with a single
// write call and sync per the configured policy; a crash mid-append
// leaves a torn final record that recovery detects by its length prefix
// or checksum and quarantines.
//
// Recovery. Open loads the newest snapshot whose checksum verifies
// (falling back across corrupt ones), then replays WAL records in
// strict epoch order. The first unreadable or discontinuous record ends
// the replay: the bytes from there to EOF move to a quarantine file,
// the WAL is truncated to the valid prefix, and the condition is
// reported as a non-fatal *RecoveryError — the database resumes from
// the last durable commit. Because delta replay mirrors
// module.CommitDelta and FactSet ordering is canonical, a recovered
// state's SaveState bytes equal the committed state's exactly.
package storage

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"logres/internal/hooks"
	"logres/internal/module"
	"logres/internal/obs"
)

// FsyncPolicy selects when WAL appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: no acknowledged commit is
	// ever lost, at one fsync per commit.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on the first append after FsyncInterval has
	// elapsed since the last sync (and on explicit Sync/Close): bounded
	// data loss, amortized fsync cost.
	FsyncInterval
	// FsyncOff never syncs automatically: the OS page cache decides.
	// Survives process crashes (the cache outlives the process) but not
	// power loss.
	FsyncOff
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("fsync(%d)", int(p))
}

// ParseFsyncPolicy parses the flag spellings "always", "interval", "off".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("storage: unknown fsync policy %q (want always, interval, or off)", s)
}

// DefaultFsyncInterval is the FsyncInterval coalescing window when none
// is configured.
const DefaultFsyncInterval = 100 * time.Millisecond

// DefaultCompactEvery is the WAL record count that triggers compaction
// when none is configured.
const DefaultCompactEvery = 4096

// StoreOptions configures a Store's durability behavior.
type StoreOptions struct {
	// Fsync is the WAL sync policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the coalescing window under FsyncInterval
	// (default DefaultFsyncInterval).
	FsyncInterval time.Duration
	// CompactEvery triggers compaction once this many records accumulate
	// in the WAL (default DefaultCompactEvery; negative disables).
	CompactEvery int
	// Tracer receives wal.* events (may be nil).
	Tracer obs.Tracer
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = DefaultFsyncInterval
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = DefaultCompactEvery
	}
	return o
}

// Recovery reports what Open found and did. A nil Tail means the log
// was clean; a non-nil Tail is the non-fatal torn-tail condition the
// store already repaired (quarantine + truncate).
type Recovery struct {
	// SnapshotEpoch is the epoch of the snapshot recovery started from.
	SnapshotEpoch uint64
	// Epoch is the recovered commit epoch (snapshot + replayed records).
	Epoch uint64
	// Replayed is the number of WAL records applied.
	Replayed int
	// Tail, when non-nil, describes the torn or corrupt WAL suffix that
	// was quarantined and truncated away.
	Tail *RecoveryError
	// BadSnapshots lists snapshot files that failed verification and
	// were skipped in favor of an older one.
	BadSnapshots []string
}

// StoreStatus is a point-in-time durability summary.
type StoreStatus struct {
	Dir             string
	Fsync           FsyncPolicy
	Epoch           uint64
	CheckpointEpoch uint64
	WALRecords      int
	WALBytes        int64
	Failed          bool
}

// Store is the durable half of a database: it owns the data directory
// and appends one record per commit. The caller (the database's commit
// paths) serializes Append calls under its own write lock; Store's
// mutex additionally protects against concurrent AsOf/Compact/Status.
type Store struct {
	mu   sync.Mutex
	dir  string
	opts StoreOptions

	wal             *os.File
	epoch           uint64 // epoch of the last appended record
	checkpointEpoch uint64 // epoch of the newest snapshot
	walRecords      int
	walBytes        int64 // current WAL file size (header + frames)
	lastSync        time.Time
	unsynced        bool
	failed          bool // a write/sync failed: refuse further appends
	closed          bool

	tracer obs.Tracer
}

func snapName(epoch uint64) string { return fmt.Sprintf("snap-%020d.snap", epoch) }

const walName = "wal.log"

// Exists reports whether dir already holds a store (a snapshot or WAL).
func Exists(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if name == walName || (strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap")) {
			return true, nil
		}
	}
	return false, nil
}

// Create initializes dir with a snapshot of st at epoch 0 and an empty
// WAL, and returns the open store. The directory must not already hold
// a store.
func Create(dir string, st *module.State, opts StoreOptions) (*Store, error) {
	if ok, err := Exists(dir); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("storage: %s already holds a store", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts.withDefaults(), tracer: opts.Tracer}
	if err := s.writeSnapshot(st, 0); err != nil {
		return nil, err
	}
	wal, err := s.newWAL(filepath.Join(dir, walName))
	if err != nil {
		return nil, err
	}
	s.wal = wal
	s.walBytes = walHeaderLen
	s.lastSync = time.Now()
	return s, nil
}

// Open recovers the store in dir: newest verifiable snapshot plus WAL
// replay. It returns the store, the recovered state, and a report of
// what recovery found. A fatal error (no loadable snapshot, unreadable
// directory) returns err != nil; a torn WAL tail is repaired and
// reported via Recovery.Tail instead.
func Open(dir string, opts StoreOptions) (*Store, *module.State, *Recovery, error) {
	s := &Store{dir: dir, opts: opts.withDefaults(), tracer: opts.Tracer}
	rec := &Recovery{}

	st, snapEpoch, bad, err := s.loadNewestSnapshot()
	if err != nil {
		return nil, nil, nil, err
	}
	rec.SnapshotEpoch = snapEpoch
	rec.BadSnapshots = bad
	s.checkpointEpoch = snapEpoch
	s.epoch = snapEpoch

	walPath := filepath.Join(dir, walName)
	st, err = s.replayWAL(walPath, st, rec)
	if err != nil {
		return nil, nil, nil, err
	}
	rec.Epoch = s.epoch

	// Reopen the WAL for appending (replay opened it read-only and may
	// have truncated a torn tail).
	wal, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, nil, err
	}
	end, err := wal.Seek(0, io.SeekEnd)
	if err != nil {
		wal.Close()
		return nil, nil, nil, err
	}
	if end == 0 {
		// The directory had snapshots but no WAL yet (e.g. a crash
		// between snapshot creation and WAL creation): start one.
		if _, err := wal.Write([]byte(walMagic + string(rune(walVersion)))); err != nil {
			wal.Close()
			return nil, nil, nil, err
		}
		end = walHeaderLen
	}
	s.wal = wal
	s.walBytes = end
	s.lastSync = time.Now()

	s.emit(obs.Event{
		Kind:   obs.KindWALRecover,
		Round:  int(s.epoch),
		Count:  rec.Replayed,
		Detail: recoverDetail(rec),
	})
	return s, st, rec, nil
}

func recoverDetail(rec *Recovery) string {
	if rec.Tail == nil {
		return "clean"
	}
	return rec.Tail.Error()
}

// loadNewestSnapshot scans dir for snapshot files and loads the newest
// one whose checksum verifies, skipping (and reporting) corrupt ones.
func (s *Store) loadNewestSnapshot() (*module.State, uint64, []string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, 0, nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap") {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, 0, nil, &RecoveryError{Detail: fmt.Sprintf("no snapshot in %s", s.dir)}
	}
	// Zero-padded epochs sort lexically; walk newest first.
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	var bad []string
	var lastErr error
	for _, name := range names {
		var epoch uint64
		if _, err := fmt.Sscanf(name, "snap-%d.snap", &epoch); err != nil {
			bad = append(bad, name)
			continue
		}
		st, err := loadSnapshotFile(filepath.Join(s.dir, name))
		if err != nil {
			bad = append(bad, name)
			lastErr = err
			continue
		}
		return st, epoch, bad, nil
	}
	return nil, 0, bad, &RecoveryError{
		Detail: fmt.Sprintf("no loadable snapshot in %s (%d corrupt)", s.dir, len(bad)),
		Err:    lastErr,
	}
}

func loadSnapshotFile(path string) (*module.State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadState(f)
}

// replayWAL applies every valid record with epoch > the snapshot epoch.
// The first torn or discontinuous record ends the replay: the suffix is
// quarantined, the file truncated, and rec.Tail set.
func (s *Store) replayWAL(path string, st *module.State, rec *Recovery) (*module.State, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()

	br := bufio.NewReader(f)
	var hdr [walHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return st, nil // empty file: treat as a fresh log
		}
		return s.quarantine(path, st, rec, 0, 0, "truncated wal header", err)
	}
	if string(hdr[:len(walMagic)]) != walMagic || hdr[len(walMagic)] != walVersion {
		return s.quarantine(path, st, rec, 0, 0, fmt.Sprintf("bad wal header %q", hdr[:]), nil)
	}

	offset := walHeaderLen
	for {
		payload, err := readFrame(br)
		if err == io.EOF {
			return st, nil
		}
		if err != nil {
			return s.quarantine(path, st, rec, offset, s.epoch, "unreadable record", err)
		}
		r, err := decodeRecord(payload)
		if err != nil {
			return s.quarantine(path, st, rec, offset, s.epoch, "undecodable record", err)
		}
		if r.Epoch <= s.checkpointEpoch {
			// Already captured by the snapshot (a crash between snapshot
			// rename and WAL rotation leaves such records). Still physically
			// in the log, so it counts toward the compaction trigger.
			s.walRecords++
			offset += int64(walFrameLen + len(payload))
			continue
		}
		if r.Epoch != s.epoch+1 {
			return s.quarantine(path, st, rec, offset, s.epoch,
				fmt.Sprintf("epoch discontinuity: record %d after %d", r.Epoch, s.epoch), nil)
		}
		next, err := applyRecord(st, r)
		if err != nil {
			return s.quarantine(path, st, rec, offset, s.epoch, "unreplayable record", err)
		}
		st = next
		s.epoch = r.Epoch
		rec.Replayed++
		s.walRecords++
		offset += int64(walFrameLen + len(payload))
	}
}

// quarantine preserves the unreadable WAL suffix starting at offset in
// a side file, truncates the WAL to the valid prefix, and records the
// condition as rec.Tail. The replayed prefix state is returned: a torn
// tail is non-fatal.
func (s *Store) quarantine(path string, st *module.State, rec *Recovery, offset int64, epoch uint64, detail string, cause error) (*module.State, error) {
	rerr := &RecoveryError{Offset: offset, Epoch: epoch, Detail: detail, Err: cause}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	tail, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	if len(tail) > 0 {
		qpath := filepath.Join(s.dir, fmt.Sprintf("wal.quarantine.%d", offset))
		if err := hooks.Fault("wal.quarantine"); err != nil {
			return nil, err
		}
		if err := os.WriteFile(qpath, tail, 0o644); err != nil {
			return nil, err
		}
		rerr.Quarantine = qpath
	}
	if err := hooks.Fault("wal.truncate"); err != nil {
		return nil, err
	}
	if offset < walHeaderLen {
		// The header itself was damaged: rewrite a fresh log.
		if err := os.WriteFile(path, []byte(walMagic+string(rune(walVersion))), 0o644); err != nil {
			return nil, err
		}
	} else if err := os.Truncate(path, offset); err != nil {
		return nil, err
	}
	rec.Tail = rerr
	return st, nil
}

// newWAL creates a fresh log file at path with the file header written
// and synced.
func (s *Store) newWAL(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(walMagic + string(rune(walVersion)))); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// Append durably logs one commit record. The record's epoch must be
// exactly one past the last appended epoch (the caller holds the
// database write lock, so commits arrive in epoch order). On a write
// or sync failure the store marks itself failed and refuses further
// appends — the in-memory commit must not be acknowledged.
func (s *Store) Append(rec *WALRecord) error { return s.AppendWith(nil, rec) }

// AppendWith is Append with this record's wal.append / wal.fsync events
// routed to t instead of the store-wide tracer — the per-request
// attribution path. The caller passes its fully fanned per-call tracer
// (the store-wide tracer is a prefix of it, since the database mirrors
// its effective tracer into the store), so process-wide sinks still see
// the events, now stamped with the originating request. t == nil falls
// back to the store-wide tracer.
func (s *Store) AppendWith(t obs.Tracer, rec *WALRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t == nil {
		t = s.tracer
	}
	if s.closed {
		return fmt.Errorf("storage: store is closed")
	}
	if s.failed {
		return fmt.Errorf("storage: store failed a previous write; reopen to recover")
	}
	if rec.Epoch != s.epoch+1 {
		return fmt.Errorf("storage: append epoch %d, want %d", rec.Epoch, s.epoch+1)
	}
	payload, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	frame := frameRecord(payload)
	if err := hooks.Fault("wal.append"); err != nil {
		s.failed = true
		return err
	}
	if _, err := s.wal.Write(frame); err != nil {
		s.failed = true
		return err
	}
	s.epoch = rec.Epoch
	s.walRecords++
	s.walBytes += int64(len(frame))
	s.unsynced = true
	if err := s.maybeSyncLocked(t); err != nil {
		s.failed = true
		return err
	}
	emitTo(t, obs.Event{
		Kind:  obs.KindWALAppend,
		Round: int(rec.Epoch),
		Pred:  rec.Type.String(),
		Count: len(frame),
		Total: int(s.walBytes),
	})
	return nil
}

// maybeSyncLocked applies the fsync policy after an append; the fsync
// event goes to t (the appending call's tracer).
func (s *Store) maybeSyncLocked(t obs.Tracer) error {
	switch s.opts.Fsync {
	case FsyncAlways:
		return s.syncLocked(t, "always")
	case FsyncInterval:
		if time.Since(s.lastSync) >= s.opts.FsyncInterval {
			return s.syncLocked(t, "interval")
		}
	}
	return nil
}

func (s *Store) syncLocked(t obs.Tracer, why string) error {
	if !s.unsynced {
		return nil
	}
	if err := hooks.Fault("wal.fsync"); err != nil {
		return err
	}
	start := time.Now()
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.lastSync = time.Now()
	s.unsynced = false
	emitTo(t, obs.Event{Kind: obs.KindWALSync, Duration: time.Since(start), Detail: why})
	return nil
}

// Sync forces any buffered WAL data to stable storage (drain paths,
// interval-policy shutdown).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.failed {
		return nil
	}
	if err := s.syncLocked(s.tracer, "explicit"); err != nil {
		s.failed = true
		return err
	}
	return nil
}

// ShouldCompact reports whether the WAL has accumulated enough records
// to warrant a checkpoint.
func (s *Store) ShouldCompact() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opts.CompactEvery > 0 && s.walRecords >= s.opts.CompactEvery && !s.failed && !s.closed
}

// Compact checkpoints st (the committed state at epoch) as a new
// snapshot and rotates the WAL, bounding both recovery time and AsOf
// history. Old snapshots beyond the newest two are removed.
func (s *Store) Compact(st *module.State, epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storage: store is closed")
	}
	if s.failed {
		return fmt.Errorf("storage: store failed a previous write; reopen to recover")
	}
	if epoch != s.epoch {
		return fmt.Errorf("storage: compact at epoch %d, but log is at %d", epoch, s.epoch)
	}
	start := time.Now()
	// Make everything the snapshot supersedes durable first, so a crash
	// mid-compaction can always recover from the old snapshot + full log.
	if err := s.syncLocked(s.tracer, "explicit"); err != nil {
		s.failed = true
		return err
	}
	if err := s.writeSnapshot(st, epoch); err != nil {
		return err
	}
	truncated := s.walRecords

	// Rotate: build a fresh log beside the live one, then rename over
	// it. Records already captured by the snapshot die with the old
	// file; a crash between rename and reopen recovers cleanly (the new
	// log is valid and empty).
	tmp := filepath.Join(s.dir, walName+".tmp")
	if err := hooks.Fault("wal.rotate"); err != nil {
		s.failed = true
		return err
	}
	nw, err := s.newWAL(tmp)
	if err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, walName)); err != nil {
		nw.Close()
		return err
	}
	if err := s.syncDir(); err != nil {
		nw.Close()
		s.failed = true
		return err
	}
	old := s.wal
	s.wal = nw
	old.Close()
	s.checkpointEpoch = epoch
	s.walRecords = 0
	s.walBytes = walHeaderLen
	s.unsynced = false
	s.lastSync = time.Now()
	s.pruneSnapshotsLocked()
	s.emit(obs.Event{
		Kind:     obs.KindWALCompact,
		Round:    int(epoch),
		Count:    truncated,
		Duration: time.Since(start),
	})
	return nil
}

// writeSnapshot durably writes st as the snapshot for epoch:
// tmp file → fsync → rename → directory fsync.
func (s *Store) writeSnapshot(st *module.State, epoch uint64) error {
	if err := hooks.Fault("snapshot.write"); err != nil {
		return err
	}
	final := filepath.Join(s.dir, snapName(epoch))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := SaveState(f, st); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := hooks.Fault("snapshot.rename"); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return s.syncDir()
}

func (s *Store) syncDir() error {
	if err := hooks.Fault("dir.sync"); err != nil {
		return err
	}
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// pruneSnapshotsLocked removes all but the newest two snapshots. The
// second-newest is kept as the fallback should the newest prove
// unreadable on a later recovery. Removal failures are ignored — stale
// snapshots are harmless.
func (s *Store) pruneSnapshotsLocked() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names[:max(0, len(names)-2)] {
		os.Remove(filepath.Join(s.dir, name))
	}
}

// AsOf reconstructs the committed state as of epoch by loading the
// checkpoint snapshot and replaying the WAL prefix with epochs up to
// and including it. History older than the checkpoint has been
// compacted away; epochs beyond the current one do not exist yet.
func (s *Store) AsOf(epoch uint64) (*module.State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("storage: store is closed")
	}
	if epoch > s.epoch {
		return nil, fmt.Errorf("storage: epoch %d is in the future (current %d)", epoch, s.epoch)
	}
	if epoch < s.checkpointEpoch {
		return nil, fmt.Errorf("storage: epoch %d predates the checkpoint (%d): %w",
			epoch, s.checkpointEpoch, ErrCompacted)
	}
	// Ensure every frame the replay needs has left the bufio-free write
	// path; Append writes whole frames directly, so a plain read sees
	// them, but unsynced bytes are still fine to read (page cache).
	st, err := loadSnapshotFile(filepath.Join(s.dir, snapName(s.checkpointEpoch)))
	if err != nil {
		return nil, err
	}
	if epoch == s.checkpointEpoch {
		return st, nil
	}
	f, err := os.Open(filepath.Join(s.dir, walName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var hdr [walHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	at := s.checkpointEpoch
	for at < epoch {
		payload, err := readFrame(br)
		if err != nil {
			return nil, fmt.Errorf("storage: as-of replay to epoch %d stopped at %d: %w", epoch, at, err)
		}
		r, err := decodeRecord(payload)
		if err != nil {
			return nil, err
		}
		if r.Epoch <= s.checkpointEpoch {
			continue
		}
		if st, err = applyRecord(st, r); err != nil {
			return nil, err
		}
		at = r.Epoch
	}
	return st, nil
}

// ErrCompacted marks an AsOf request for history the store has already
// compacted away.
var ErrCompacted = errors.New("storage: epoch compacted away")

// Status returns a point-in-time durability summary.
func (s *Store) Status() StoreStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStatus{
		Dir:             s.dir,
		Fsync:           s.opts.Fsync,
		Epoch:           s.epoch,
		CheckpointEpoch: s.checkpointEpoch,
		WALRecords:      s.walRecords,
		WALBytes:        s.walBytes,
		Failed:          s.failed,
	}
}

// Epoch returns the last durably logged epoch.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// SetTracer replaces the wal.* event sink (nil silences it).
func (s *Store) SetTracer(t obs.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = t
}

// Close syncs and closes the WAL. Further operations fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if !s.failed {
		err = s.syncLocked(s.tracer, "explicit")
	}
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

func (s *Store) emit(ev obs.Event) { emitTo(s.tracer, ev) }

func emitTo(t obs.Tracer, ev obs.Event) {
	if t != nil {
		t.Event(ev)
	}
}
