package storage

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// ---------------------------------------------------------------------------
// Snapshot codec hardening: CRC trailer, typed corruption errors,
// legacy-version compatibility.
// ---------------------------------------------------------------------------

func TestSnapshotChecksumDetectsBitFlips(t *testing.T) {
	st := buildState(t)
	var buf bytes.Buffer
	if err := SaveState(&buf, st); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every single-byte flip must be rejected, and always as a typed
	// *ErrCorrupt — never a panic, never an untyped io error.
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x01
		_, err := LoadState(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("bit flip at %d went undetected", i)
		}
		var ce *ErrCorrupt
		if !errors.As(err, &ce) {
			// Structural damage can surface as a reparse error (rules
			// are stored as source text) — those carry context too, but
			// byte-level damage to the binary sections must be typed.
			if !bytes.Contains([]byte(err.Error()), []byte("storage:")) &&
				!bytes.Contains([]byte(err.Error()), []byte("parse")) {
				t.Fatalf("flip at %d: untyped error %v", i, err)
			}
		}
	}
}

func TestSnapshotTruncationIsTyped(t *testing.T) {
	st := buildState(t)
	var buf bytes.Buffer
	if err := SaveState(&buf, st); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, err := LoadState(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d went undetected", cut)
		}
		// The raw io sentinel must never escape undressed: truncation is
		// corruption, attributed to an offset.
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			t.Fatalf("truncation at %d surfaced raw %v", cut, err)
		}
		var ce *ErrCorrupt
		if errors.As(err, &ce) {
			if ce.Offset < 0 || ce.Offset > int64(cut) {
				t.Fatalf("truncation at %d attributed to offset %d", cut, ce.Offset)
			}
			// The underlying io error is wrapped, not replaced.
			if ce.Err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
				t.Fatalf("truncation at %d lost its io cause: %v", cut, err)
			}
		}
	}
}

func TestSnapshotChecksumMismatchDetail(t *testing.T) {
	st := buildState(t)
	var buf bytes.Buffer
	if err := SaveState(&buf, st); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip only the trailer: the body decodes fine, the verification
	// must still fail with the mismatch detail.
	mut := append([]byte(nil), full...)
	mut[len(mut)-1] ^= 0xff
	_, err := LoadState(bytes.NewReader(mut))
	var ce *ErrCorrupt
	if !errors.As(err, &ce) {
		t.Fatalf("trailer flip: %v", err)
	}
	if !bytes.Contains([]byte(ce.Detail), []byte("checksum mismatch")) {
		t.Fatalf("detail = %q", ce.Detail)
	}
}

func TestSnapshotBadMagicAndVersion(t *testing.T) {
	_, err := LoadState(bytes.NewReader([]byte("\x04BLAH rest")))
	var ce *ErrCorrupt
	if !errors.As(err, &ce) || !bytes.Contains([]byte(ce.Detail), []byte("bad magic")) {
		t.Fatalf("bad magic: %v", err)
	}

	st := buildState(t)
	var buf bytes.Buffer
	if err := SaveState(&buf, st); err != nil {
		t.Fatal(err)
	}
	mut := buf.Bytes()
	mut[5] = 200 // the version byte follows the length-prefixed magic
	_, err = LoadState(bytes.NewReader(mut))
	if !errors.As(err, &ce) || !bytes.Contains([]byte(ce.Detail), []byte("unsupported snapshot version")) {
		t.Fatalf("bad version: %v", err)
	}
}

func TestSnapshotLegacyVersionLoads(t *testing.T) {
	st := buildState(t)
	var buf bytes.Buffer
	if err := SaveState(&buf, st); err != nil {
		t.Fatal(err)
	}
	// A v2 snapshot is the v3 body without the trailer: rewrite the
	// version byte and strip the 4-byte CRC.
	legacy := append([]byte(nil), buf.Bytes()...)
	legacy[5] = legacyVersion
	legacy = legacy[:len(legacy)-4]
	got, err := LoadState(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy snapshot rejected: %v", err)
	}
	if got.Counter != st.Counter || !got.E.Equal(st.E) {
		t.Fatal("legacy snapshot decoded incorrectly")
	}
}

func TestErrCorruptFormatting(t *testing.T) {
	base := io.ErrUnexpectedEOF
	e := &ErrCorrupt{Offset: 42, Detail: "fact set", Err: base}
	if !errors.Is(e, io.ErrUnexpectedEOF) {
		t.Fatal("ErrCorrupt does not unwrap its cause")
	}
	if e.Error() == "" || (&ErrCorrupt{Offset: 1, Detail: "x"}).Error() == "" {
		t.Fatal("empty rendering")
	}
	r := &RecoveryError{Offset: 9, Epoch: 3, Quarantine: "q", Detail: "torn", Err: base}
	if !errors.Is(r, io.ErrUnexpectedEOF) {
		t.Fatal("RecoveryError does not unwrap its cause")
	}
	if r.Error() == "" || (&RecoveryError{Detail: "x"}).Error() == "" {
		t.Fatal("empty rendering")
	}
}
