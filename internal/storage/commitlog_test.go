package storage

import (
	"testing"

	"logres/internal/guard"
)

func TestCommitLogDisjointValidates(t *testing.T) {
	l := NewCommitLog(0)
	e0 := l.Epoch()
	l.Record(guard.Footprint{Writes: []string{"a"}})
	l.Record(guard.Footprint{Writes: []string{"b"}})
	if _, _, ok := l.Validate(e0, guard.Footprint{Reads: []string{"c"}, Writes: []string{"d"}}); !ok {
		t.Fatal("disjoint footprint rejected")
	}
	if _, _, ok := l.Validate(l.Epoch(), guard.Footprint{Writes: []string{"a"}}); !ok {
		t.Fatal("up-to-date snapshot rejected")
	}
}

func TestCommitLogConflictNamesPredicate(t *testing.T) {
	l := NewCommitLog(0)
	e0 := l.Epoch()
	l.Record(guard.Footprint{Writes: []string{"x"}})
	pred, theirs, ok := l.Validate(e0, guard.Footprint{Reads: []string{"x"}})
	if ok || pred != "x" {
		t.Fatalf("Validate = (%q, ok=%v), want conflict on x", pred, ok)
	}
	if len(theirs.Writes) != 1 || theirs.Writes[0] != "x" {
		t.Fatalf("theirs = %v", theirs)
	}
}

func TestCommitLogSkipsEntriesBeforeSnapshot(t *testing.T) {
	l := NewCommitLog(0)
	l.Record(guard.Footprint{Writes: []string{"x"}})
	mid := l.Epoch()
	l.Record(guard.Footprint{Writes: []string{"y"}})
	// Snapshot taken after x's commit: only y is validated against.
	if pred, _, ok := l.Validate(mid, guard.Footprint{Reads: []string{"x"}}); !ok {
		t.Fatalf("conflict on pre-snapshot write %q", pred)
	}
	if _, _, ok := l.Validate(mid, guard.Footprint{Reads: []string{"y"}}); ok {
		t.Fatal("missed conflict on post-snapshot write")
	}
}

func TestCommitLogPrunedHistoryConflicts(t *testing.T) {
	l := NewCommitLog(4)
	e0 := l.Epoch()
	for i := 0; i < 10; i++ {
		l.Record(guard.Footprint{Writes: []string{"p"}})
	}
	pred, theirs, ok := l.Validate(e0, guard.Footprint{Reads: []string{"unrelated"}})
	if ok {
		t.Fatal("stale snapshot validated against pruned history")
	}
	if pred != "$pruned$" || !theirs.Universal {
		t.Fatalf("pruned conflict = (%q, %+v)", pred, theirs)
	}
	// A snapshot inside the retained window still validates precisely.
	recent := l.Epoch() - 2
	if _, _, ok := l.Validate(recent, guard.Footprint{Reads: []string{"unrelated"}}); !ok {
		t.Fatal("recent snapshot hit the pruned path")
	}
}

// TestCommitLogValidateWindowBoundary pins the exact edge of the
// retained window: a snapshot at base-1 (one epoch before the oldest
// retained entry) still validates precisely — it sees every retained
// entry — while a snapshot one epoch older falls off the window and
// conservatively conflicts as "$pruned$".
func TestCommitLogValidateWindowBoundary(t *testing.T) {
	const window = 4
	l := NewCommitLog(window)
	// Record window+2 entries so base = 3: epochs 1 and 2 are pruned,
	// epochs 3..6 retained.
	for i := 0; i < window+2; i++ {
		l.Record(guard.Footprint{Writes: []string{"p"}})
	}
	base := l.Epoch() - uint64(window) + 1 // oldest retained epoch

	// since == base-1: the snapshot predates exactly the retained
	// entries, none older — the oldest validatable snapshot.
	if pred, _, ok := l.Validate(base-1, guard.Footprint{Reads: []string{"unrelated"}}); !ok {
		t.Fatalf("since == base-1 hit the pruned path (pred %q), want precise validation", pred)
	}
	// Against the retained window it still detects real conflicts.
	if _, _, ok := l.Validate(base-1, guard.Footprint{Reads: []string{"p"}}); ok {
		t.Fatal("since == base-1 missed a conflict inside the window")
	}
	// since == base-2: one epoch older than the window prunes.
	pred, theirs, ok := l.Validate(base-2, guard.Footprint{Reads: []string{"unrelated"}})
	if ok {
		t.Fatal("since == base-2 validated against pruned history")
	}
	if pred != "$pruned$" || !theirs.Universal {
		t.Fatalf("pruned conflict = (%q, %+v), want ($pruned$, universal)", pred, theirs)
	}
}

func TestCommitLogUniversalCommitConflictsWithEverything(t *testing.T) {
	l := NewCommitLog(0)
	e0 := l.Epoch()
	l.Record(guard.Footprint{Universal: true})
	if _, _, ok := l.Validate(e0, guard.Footprint{Reads: []string{"$schema$"}}); ok {
		t.Fatal("universal committed write did not conflict")
	}
	// An empty footprint (epoch bump only, e.g. module registration)
	// conflicts with nothing.
	e1 := l.Epoch()
	l.Record(guard.Footprint{})
	if _, _, ok := l.Validate(e1, guard.Footprint{Universal: true, Reads: []string{"a"}}); !ok {
		t.Fatal("empty footprint caused a conflict")
	}
}
