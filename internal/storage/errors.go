package storage

import "fmt"

// ErrCorrupt reports that persisted bytes could not be decoded: a failed
// integrity check, a truncation mid-structure, or an impossible length.
// It wraps (never replaces) the underlying error, so callers can still
// reach io.ErrUnexpectedEOF or a CRC detail with errors.Is/As, and it
// carries the byte offset at which decoding stopped so a corrupt file is
// attributable to a position, not just a structure.
type ErrCorrupt struct {
	// Offset is the byte offset (from the start of the stream) at which
	// corruption was detected; -1 when the position is unknown.
	Offset int64
	// Detail names the structure being decoded ("schema", "fact set",
	// "snapshot trailer", …).
	Detail string
	// Err is the underlying cause (io.ErrUnexpectedEOF, a checksum
	// mismatch, a decode error); may be nil for self-evident corruption
	// such as a bad magic number.
	Err error
}

func (e *ErrCorrupt) Error() string {
	msg := fmt.Sprintf("storage: corrupt data at offset %d: %s", e.Offset, e.Detail)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *ErrCorrupt) Unwrap() error { return e.Err }

// RecoveryError describes a write-ahead-log suffix that could not be
// replayed during crash recovery: a torn final record (the crash landed
// mid-append), a bit-flipped record (checksum mismatch), or an epoch
// discontinuity. Recovery is not aborted by a bad tail — the valid
// prefix is recovered, the unreadable suffix is preserved in a
// quarantine file, and this error reports what was set aside. It is
// fatal (returned as the error of Open) only when no usable state could
// be reconstructed at all.
type RecoveryError struct {
	// Offset is the WAL byte offset of the first unreadable record.
	Offset int64
	// Epoch is the last commit epoch recovered before the bad tail.
	Epoch uint64
	// Quarantine is the path the unreadable suffix was preserved at
	// (empty when there were no bytes to preserve or quarantining
	// itself failed).
	Quarantine string
	// Detail describes what was wrong with the record at Offset.
	Detail string
	// Err is the underlying decode error, when one exists.
	Err error
}

func (e *RecoveryError) Error() string {
	msg := fmt.Sprintf("storage: recovery stopped at wal offset %d (epoch %d): %s", e.Offset, e.Epoch, e.Detail)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *RecoveryError) Unwrap() error { return e.Err }
