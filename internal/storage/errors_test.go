package storage

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"logres/internal/ast"
	"logres/internal/module"
	"logres/internal/parser"
	"logres/internal/types"
	"logres/internal/value"
)

// Error-path tests for the codec: unknown tags, truncation mid-structure,
// oversized strings, unencodable values, library round trips.

func TestDecodeUnknownValueTag(t *testing.T) {
	r := &reader{r: bufio.NewReader(bytes.NewReader([]byte{0xFF}))}
	if _, err := r.value(); err == nil {
		t.Fatal("unknown value tag accepted")
	}
}

func TestDecodeUnknownTypeTag(t *testing.T) {
	r := &reader{r: bufio.NewReader(bytes.NewReader([]byte{0xFF}))}
	if _, err := r.typ(); err == nil {
		t.Fatal("unknown type tag accepted")
	}
}

func TestDecodeOversizedString(t *testing.T) {
	var buf bytes.Buffer
	w := &writer{w: bufio.NewWriter(&buf)}
	w.uvarint(1 << 40) // absurd length prefix
	_ = w.w.Flush()
	r := &reader{r: bufio.NewReader(&buf)}
	if _, err := r.str(); err == nil || !strings.Contains(err.Error(), "too large") {
		t.Fatalf("oversized string accepted: %v", err)
	}
}

func TestTruncatedComposite(t *testing.T) {
	var buf bytes.Buffer
	w := &writer{w: bufio.NewWriter(&buf)}
	w.value(value.NewTuple(
		value.Field{Label: "a", Value: value.NewSet(value.Int(1), value.Int(2))},
	))
	_ = w.w.Flush()
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		r := &reader{r: bufio.NewReader(bytes.NewReader(full[:cut]))}
		if _, err := r.value(); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(full))
		}
	}
}

func TestSnapshotWithLibraryAndSemantics(t *testing.T) {
	s := types.NewSchema()
	if err := s.AddAssociation("r", types.Tuple{Fields: []types.Field{{Label: "k", Type: types.Int}}}); err != nil {
		t.Fatal(err)
	}
	st := module.NewState(s)
	lib := st.Lib
	m := mustParseModule(t, `
module probe.
mode radv.
semantics noninflationary.
rules
  r(k: 1).
end.
`)
	if err := lib.Register(m); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveState(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pm, ok := got.Lib.Get("probe")
	if !ok {
		t.Fatal("library module lost")
	}
	if !pm.NonInflationary || pm.Mode.String() != "RADV" {
		t.Fatalf("module metadata corrupted: %+v", pm)
	}
}

func TestSnapshotNilLibrary(t *testing.T) {
	s := types.NewSchema()
	st := module.NewState(s)
	st.Lib = nil // legacy states may have no library
	var buf bytes.Buffer
	if err := SaveState(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lib == nil {
		t.Fatal("loader must always provide a library")
	}
}

func TestWriterErrorSticky(t *testing.T) {
	var buf bytes.Buffer
	w := &writer{w: bufio.NewWriter(&buf)}
	w.value(struct{ value.Value }{}) // unencodable wrapper type
	if w.err == nil {
		t.Fatal("unencodable value accepted")
	}
	// Subsequent writes keep the error.
	w.str("x")
	w.byte(1)
	if w.err == nil {
		t.Fatal("error not sticky")
	}
}

func mustParseModule(t *testing.T, src string) *ast.Module {
	t.Helper()
	m, err := parser.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
