package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"logres/internal/engine"
	"logres/internal/module"
	"logres/internal/parser"
	"logres/internal/value"
)

// fuzzBaseState builds the snapshot state every fuzz case recovers onto
// (buildState needs *testing.T, so this is its *testing.F-friendly twin).
func fuzzBaseState(f *testing.F) (*module.State, []byte) {
	f.Helper()
	m, err := parser.ParseModule(`
classes PERSON = (name: string);
associations PARENT = (par: PERSON, chil: PERSON);
`)
	if err != nil {
		f.Fatal(err)
	}
	st := module.NewState(m.Schema)
	st.Counter = 2
	st.E.Add(engine.Fact{Pred: "person", IsClass: true, OID: 1,
		Tuple: value.NewTuple(value.Field{Label: "name", Value: value.Str("ann")})})
	var buf bytes.Buffer
	if err := SaveState(&buf, st); err != nil {
		f.Fatal(err)
	}
	return st, buf.Bytes()
}

// FuzzWALRecover feeds arbitrary bytes to the WAL recovery path: for
// any mutation — truncations, bit flips, garbage — Open must not panic,
// and must either recover a valid prefix (possibly reporting the torn
// tail as a *RecoveryError) or fail with a typed error. A recovered
// store must be reopenable cleanly (recovery repaired the log).
func FuzzWALRecover(f *testing.F) {
	_, snapBytes := fuzzBaseState(f)

	// Seed corpus: a valid log with three records, then pre-damaged
	// variants, so coverage starts at the interesting boundaries.
	var valid bytes.Buffer
	valid.WriteString(walMagic)
	valid.WriteByte(walVersion)
	for e := uint64(1); e <= 3; e++ {
		payload, err := encodeRecord(&WALRecord{Type: RecDelta, Epoch: e,
			Writes: []string{"parent"},
			Adds: []engine.Fact{{Pred: "extra", Tuple: value.NewTuple(
				value.Field{Label: "x", Value: value.Int(int64(e))})}}})
		if err != nil {
			f.Fatal(err)
		}
		valid.Write(frameRecord(payload))
	}
	vb := valid.Bytes()
	f.Add(vb)
	f.Add(vb[:len(vb)-3])
	f.Add(vb[:walHeaderLen])
	f.Add([]byte{})
	f.Add([]byte("not a wal at all"))
	flipped := append([]byte(nil), vb...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, walBytes []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapName(0)), snapBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walName), walBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		s, st, rec, err := Open(dir, StoreOptions{Fsync: FsyncOff})
		if err != nil {
			// Fatal recovery is acceptable for arbitrary input only as a
			// typed error, never a panic (the panic case fails the fuzz
			// run itself).
			return
		}
		if st == nil || rec == nil {
			t.Fatal("successful recovery returned nil state or report")
		}
		if rec.Epoch < rec.SnapshotEpoch {
			t.Fatalf("recovered epoch %d below snapshot %d", rec.Epoch, rec.SnapshotEpoch)
		}
		// The recovered state must serialize — recovery never hands back
		// a half-applied state.
		var buf bytes.Buffer
		if err := SaveState(&buf, st); err != nil {
			t.Fatalf("recovered state does not serialize: %v", err)
		}
		s.Close()

		// Recovery repaired the log in place: a second open is clean and
		// reproduces the same state.
		s2, st2, rec2, err := Open(dir, StoreOptions{Fsync: FsyncOff})
		if err != nil {
			t.Fatalf("reopen after repair: %v", err)
		}
		defer s2.Close()
		if rec2.Tail != nil {
			t.Fatalf("repaired log still reports a tail: %v", rec2.Tail)
		}
		if rec2.Epoch != rec.Epoch {
			t.Fatalf("reopen epoch %d != first recovery %d", rec2.Epoch, rec.Epoch)
		}
		var buf2 bytes.Buffer
		if err := SaveState(&buf2, st2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("recovery is not idempotent")
		}
	})
}

// FuzzWALRecordDecode feeds arbitrary payloads to the record decoder:
// it must never panic, only return records or errors.
func FuzzWALRecordDecode(f *testing.F) {
	for _, rec := range []*WALRecord{
		{Type: RecDelta, Epoch: 1, Writes: []string{"p"}, Adds: []engine.Fact{{
			Pred: "p", Tuple: value.NewTuple(value.Field{Label: "x", Value: value.Int(4)})}}},
		{Type: RecReplace, Epoch: 2, State: []byte("snapshot")},
		{Type: RecRegister, Epoch: 3, Source: "module m.\nrules\nend.\n"},
	} {
		payload, err := encodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := decodeRecord(payload)
		if err == nil && rec == nil {
			t.Fatal("nil record without error")
		}
	})
}
