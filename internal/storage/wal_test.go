package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"logres/internal/engine"
	"logres/internal/hooks"
	"logres/internal/module"
	"logres/internal/value"
)

// ---------------------------------------------------------------------------
// WAL record codec
// ---------------------------------------------------------------------------

func intFact(pred string, x int) engine.Fact {
	return engine.Fact{Pred: pred, Tuple: value.NewTuple(
		value.Field{Label: "x", Value: value.Int(int64(x))})}
}

func TestWALRecordRoundTrip(t *testing.T) {
	recs := []*WALRecord{
		{Type: RecDelta, Epoch: 1, Writes: []string{"p", "q"}, CounterDelta: 3,
			Removes: []engine.Fact{intFact("p", 1)},
			Adds:    []engine.Fact{intFact("p", 2), intFact("q", 9)}},
		{Type: RecReplace, Epoch: 2, State: []byte("opaque snapshot bytes")},
		{Type: RecRegister, Epoch: 3, Source: "module m;\nmode ridv.\nrules p(x: 1).\nend.\n"},
		{Type: RecDelta, Epoch: 4}, // empty delta (registration-like epoch bump)
	}
	for _, rec := range recs {
		payload, err := encodeRecord(rec)
		if err != nil {
			t.Fatalf("encode %v: %v", rec.Type, err)
		}
		got, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("decode %v: %v", rec.Type, err)
		}
		if got.Type != rec.Type || got.Epoch != rec.Epoch {
			t.Fatalf("round trip header: got %v/%d, want %v/%d", got.Type, got.Epoch, rec.Type, rec.Epoch)
		}
		if got.CounterDelta != rec.CounterDelta || len(got.Writes) != len(rec.Writes) ||
			len(got.Removes) != len(rec.Removes) || len(got.Adds) != len(rec.Adds) {
			t.Fatalf("delta payload mismatch: %+v vs %+v", got, rec)
		}
		if !bytes.Equal(got.State, rec.State) || got.Source != rec.Source {
			t.Fatalf("payload mismatch: %+v vs %+v", got, rec)
		}
	}
}

func TestWALFrameRejectsCorruption(t *testing.T) {
	payload, err := encodeRecord(&WALRecord{Type: RecDelta, Epoch: 1, Adds: []engine.Fact{intFact("p", 1)}})
	if err != nil {
		t.Fatal(err)
	}
	frame := frameRecord(payload)
	if got, err := readFrame(bytes.NewReader(frame)); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("clean frame: %v", err)
	}
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		if _, err := readFrame(bytes.NewReader(mut)); err == nil {
			// A flip in the length prefix can still frame correctly only
			// if it points past the buffer — which errors. A flip anywhere
			// else must break the checksum.
			t.Fatalf("bit flip at %d went undetected", i)
		}
	}
	for cut := 1; cut < len(frame); cut++ {
		if _, err := readFrame(bytes.NewReader(frame[:cut])); err == nil {
			t.Fatalf("truncation at %d went undetected", cut)
		}
	}
}

// ---------------------------------------------------------------------------
// Store lifecycle: create, append, recover
// ---------------------------------------------------------------------------

func stateBytes(t *testing.T, st *module.State) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveState(&buf, st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// appendDelta appends a single-fact delta at the store's next epoch and
// returns the successor state.
func appendDelta(t *testing.T, s *Store, st *module.State, n int) *module.State {
	t.Helper()
	rec := &WALRecord{Type: RecDelta, Epoch: s.Epoch() + 1,
		Writes: []string{"parent"}, Adds: []engine.Fact{intFact("extra", n)}}
	if err := s.Append(rec); err != nil {
		t.Fatal(err)
	}
	next, err := applyRecord(st, rec)
	if err != nil {
		t.Fatal(err)
	}
	return next
}

func TestStoreCreateAppendRecover(t *testing.T) {
	dir := t.TempDir()
	st := buildState(t)
	s, err := Create(dir, st, StoreOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	want := st
	for i := 0; i < 5; i++ {
		want = appendDelta(t, s, want, i)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, got, rec, err := Open(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.Tail != nil {
		t.Fatalf("clean log reported tail: %v", rec.Tail)
	}
	if rec.Replayed != 5 || rec.Epoch != 5 || rec.SnapshotEpoch != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	if !bytes.Equal(stateBytes(t, got), stateBytes(t, want)) {
		t.Fatal("recovered state differs from committed state")
	}
	// The replayed records must be carried into the live counters so the
	// compaction trigger does not undercount after a restart.
	if st := s2.Status(); st.WALRecords != 5 || st.WALBytes <= walHeaderLen {
		t.Fatalf("status after recovery = %+v", st)
	}
	// The reopened store continues the epoch sequence.
	if err := s2.Append(&WALRecord{Type: RecDelta, Epoch: 6, Adds: []engine.Fact{intFact("extra", 6)}}); err != nil {
		t.Fatal(err)
	}
	if st := s2.Status(); st.WALRecords != 6 {
		t.Fatalf("WALRecords after post-recovery append = %d, want 6", st.WALRecords)
	}
}

func TestStoreAppendEpochDiscipline(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, buildState(t), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(&WALRecord{Type: RecDelta, Epoch: 5}); err == nil {
		t.Fatal("append with a gapped epoch succeeded")
	}
	if err := s.Append(&WALRecord{Type: RecDelta, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(&WALRecord{Type: RecDelta, Epoch: 1}); err == nil {
		t.Fatal("duplicate epoch append succeeded")
	}
}

func TestStoreRecoverReplaceAndRegister(t *testing.T) {
	dir := t.TempDir()
	st := buildState(t)
	s, err := Create(dir, st, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Replace with a state carrying a different counter.
	st2 := st.Clone()
	st2.Counter = 99
	if err := s.Append(&WALRecord{Type: RecReplace, Epoch: 1, State: stateBytes(t, st2)}); err != nil {
		t.Fatal(err)
	}
	// Register a module.
	src := "module helper.\nmode ridv.\nrules\n  parent(par: X, chil: X) <- parent(par: X, chil: X).\nend.\n"
	if err := s.Append(&WALRecord{Type: RecRegister, Epoch: 2, Source: src}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	_, got, rec, err := Open(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != 2 || rec.Tail != nil {
		t.Fatalf("recovery = %+v", rec)
	}
	if got.Counter != 99 {
		t.Fatalf("replace not replayed: counter = %d", got.Counter)
	}
	if got.Lib == nil {
		t.Fatal("register not replayed")
	}
	if _, ok := got.Lib.Get("helper"); !ok {
		t.Fatalf("library misses helper: %v", got.Lib.Names())
	}
}

// ---------------------------------------------------------------------------
// Torn tails and corruption
// ---------------------------------------------------------------------------

// buildStoreDir populates a fresh store with n delta records and returns
// the directory, the per-epoch expected Save bytes (index e = state at
// epoch e), and the WAL size.
func buildStoreDir(t *testing.T, n int) (string, [][]byte) {
	t.Helper()
	dir := t.TempDir()
	st := buildState(t)
	s, err := Create(dir, st, StoreOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	expected := [][]byte{stateBytes(t, st)}
	cur := st
	for i := 0; i < n; i++ {
		cur = appendDelta(t, s, cur, i)
		expected = append(expected, stateBytes(t, cur))
	}
	s.Close()
	return dir, expected
}

func TestStoreTornTailTruncation(t *testing.T) {
	dir, expected := buildStoreDir(t, 4)
	walPath := filepath.Join(dir, walName)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(full) - 1; cut > int(walHeaderLen); cut-- {
		if err := os.WriteFile(walPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// Remove quarantine files from earlier iterations.
		qs, _ := filepath.Glob(filepath.Join(dir, "wal.quarantine.*"))
		for _, q := range qs {
			os.Remove(q)
		}
		s, got, rec, err := Open(dir, StoreOptions{})
		if err != nil {
			t.Fatalf("cut %d: fatal recovery: %v", cut, err)
		}
		if int(rec.Epoch) != rec.Replayed {
			t.Fatalf("cut %d: epoch %d != replayed %d", cut, rec.Epoch, rec.Replayed)
		}
		if !bytes.Equal(stateBytes(t, got), expected[rec.Epoch]) {
			t.Fatalf("cut %d: recovered state is not the epoch-%d prefix", cut, rec.Epoch)
		}
		if cut < len(full) {
			// Some suffix was unreadable: either it was past the last
			// complete record boundary of an earlier record... any cut
			// strictly inside the file must lose at least the final
			// record, so a full replay of all 4 is impossible.
			if rec.Epoch == 4 {
				t.Fatalf("cut %d: replayed all records from a truncated log", cut)
			}
			if rec.Tail == nil {
				// A cut exactly on a record boundary looks like a clean
				// shorter log — no tail to report.
				continue
			}
			if rec.Tail.Quarantine != "" {
				if _, err := os.Stat(rec.Tail.Quarantine); err != nil {
					t.Fatalf("cut %d: quarantine missing: %v", cut, err)
				}
			}
			// Recovery must have repaired the log: reopening is clean.
			s.Close()
			s2, got2, rec2, err := Open(dir, StoreOptions{})
			if err != nil {
				t.Fatalf("cut %d: reopen: %v", cut, err)
			}
			if rec2.Tail != nil {
				t.Fatalf("cut %d: repaired log still reports tail: %v", cut, rec2.Tail)
			}
			if !bytes.Equal(stateBytes(t, got2), stateBytes(t, got)) {
				t.Fatalf("cut %d: repaired recovery differs", cut)
			}
			s2.Close()
			continue
		}
		s.Close()
	}
}

func TestStoreBitFlipTail(t *testing.T) {
	dir, expected := buildStoreDir(t, 3)
	walPath := filepath.Join(dir, walName)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the final record's frame.
	mut := append([]byte(nil), full...)
	mut[len(mut)-3] ^= 0xff
	if err := os.WriteFile(walPath, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	s, got, rec, err := Open(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("fatal recovery: %v", err)
	}
	defer s.Close()
	if rec.Tail == nil {
		t.Fatal("bit flip in the final record went unreported")
	}
	var rerr *RecoveryError
	if !errors.As(error(rec.Tail), &rerr) {
		t.Fatalf("tail is %T", rec.Tail)
	}
	if rec.Epoch != 2 {
		t.Fatalf("recovered epoch = %d, want 2 (prefix before the flipped record)", rec.Epoch)
	}
	if !bytes.Equal(stateBytes(t, got), expected[2]) {
		t.Fatal("recovered state is not the valid prefix")
	}
	if rec.Tail.Quarantine == "" {
		t.Fatal("flipped suffix was not quarantined")
	}
	q, err := os.ReadFile(rec.Tail.Quarantine)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q, mut[rec.Tail.Offset:]) {
		t.Fatal("quarantine does not hold the unreadable suffix")
	}
}

func TestStoreEpochDiscontinuityQuarantined(t *testing.T) {
	dir, expected := buildStoreDir(t, 2)
	// Append a record with a gapped epoch directly to the file.
	payload, err := encodeRecord(&WALRecord{Type: RecDelta, Epoch: 9, Adds: []engine.Fact{intFact("extra", 9)}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frameRecord(payload)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, got, rec, err := Open(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("fatal recovery: %v", err)
	}
	defer s.Close()
	if rec.Tail == nil || rec.Epoch != 2 {
		t.Fatalf("recovery = %+v", rec)
	}
	if !bytes.Equal(stateBytes(t, got), expected[2]) {
		t.Fatal("recovered state is not the valid prefix")
	}
}

func TestStoreCorruptSnapshotFallsBack(t *testing.T) {
	dir, _ := buildStoreDir(t, 2)
	st := buildState(t)
	// Write a newer snapshot, then corrupt it: recovery must fall back
	// to the older epoch-0 snapshot and replay the full WAL.
	snap := filepath.Join(dir, snapName(7))
	b := stateBytes(t, st)
	b[len(b)-1] ^= 0xff // break the CRC trailer
	if err := os.WriteFile(snap, b, 0o644); err != nil {
		t.Fatal(err)
	}
	s, _, rec, err := Open(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("fatal recovery: %v", err)
	}
	defer s.Close()
	if len(rec.BadSnapshots) != 1 || rec.BadSnapshots[0] != snapName(7) {
		t.Fatalf("bad snapshots = %v", rec.BadSnapshots)
	}
	if rec.SnapshotEpoch != 0 || rec.Epoch != 2 {
		t.Fatalf("recovery = %+v", rec)
	}
}

func TestStoreNoSnapshotIsFatal(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walName), []byte(walMagic+"\x01"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err := Open(dir, StoreOptions{})
	var rerr *RecoveryError
	if !errors.As(err, &rerr) {
		t.Fatalf("err = %v, want *RecoveryError", err)
	}
}

// ---------------------------------------------------------------------------
// Compaction and point-in-time reads
// ---------------------------------------------------------------------------

func TestStoreCompactionAndAsOf(t *testing.T) {
	dir := t.TempDir()
	st := buildState(t)
	s, err := Create(dir, st, StoreOptions{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var expected [][]byte
	expected = append(expected, stateBytes(t, st))
	cur := st
	for i := 0; i < 6; i++ {
		cur = appendDelta(t, s, cur, i)
		expected = append(expected, stateBytes(t, cur))
	}

	// Every epoch is reachable before compaction.
	for e := uint64(0); e <= 6; e++ {
		got, err := s.AsOf(e)
		if err != nil {
			t.Fatalf("AsOf(%d): %v", e, err)
		}
		if !bytes.Equal(stateBytes(t, got), expected[e]) {
			t.Fatalf("AsOf(%d) state differs", e)
		}
	}
	if _, err := s.AsOf(7); err == nil {
		t.Fatal("AsOf(future) succeeded")
	}

	if err := s.Compact(cur, 6); err != nil {
		t.Fatal(err)
	}
	if st := s.Status(); st.CheckpointEpoch != 6 || st.WALRecords != 0 {
		t.Fatalf("post-compaction status = %+v", st)
	}
	// History below the checkpoint is gone.
	if _, err := s.AsOf(3); !errors.Is(err, ErrCompacted) {
		t.Fatalf("AsOf(compacted) = %v, want ErrCompacted", err)
	}
	if got, err := s.AsOf(6); err != nil || !bytes.Equal(stateBytes(t, got), expected[6]) {
		t.Fatalf("AsOf(checkpoint): %v", err)
	}

	// The store keeps working past the checkpoint, and recovery starts
	// from the new snapshot.
	cur = appendDelta(t, s, cur, 100)
	s.Close()
	_, got, rec, err := Open(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotEpoch != 6 || rec.Epoch != 7 || rec.Replayed != 1 {
		t.Fatalf("post-compaction recovery = %+v", rec)
	}
	if !bytes.Equal(stateBytes(t, got), stateBytes(t, cur)) {
		t.Fatal("post-compaction recovery differs")
	}
}

func TestStoreShouldCompactThreshold(t *testing.T) {
	dir := t.TempDir()
	st := buildState(t)
	s, err := Create(dir, st, StoreOptions{Fsync: FsyncOff, CompactEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cur := st
	for i := 0; i < 2; i++ {
		cur = appendDelta(t, s, cur, i)
		if s.ShouldCompact() {
			t.Fatalf("ShouldCompact at %d records", i+1)
		}
	}
	cur = appendDelta(t, s, cur, 2)
	if !s.ShouldCompact() {
		t.Fatal("ShouldCompact false at threshold")
	}
	if err := s.Compact(cur, 3); err != nil {
		t.Fatal(err)
	}
	if s.ShouldCompact() {
		t.Fatal("ShouldCompact true right after compaction")
	}
}

func TestStoreSnapshotPruning(t *testing.T) {
	dir := t.TempDir()
	st := buildState(t)
	s, err := Create(dir, st, StoreOptions{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cur := st
	for e := uint64(1); e <= 3; e++ {
		cur = appendDelta(t, s, cur, int(e))
		if err := s.Compact(cur, e); err != nil {
			t.Fatal(err)
		}
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("retained snapshots = %v, want newest 2", snaps)
	}
}

// ---------------------------------------------------------------------------
// Fsync policies
// ---------------------------------------------------------------------------

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
	}{{"always", FsyncAlways}, {"Interval", FsyncInterval}, {" off ", FsyncOff}} {
		got, err := ParseFsyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() == "" {
			t.Fatal("empty String()")
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy parsed")
	}
}

func TestStoreFsyncPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			st := buildState(t)
			s, err := Create(dir, st, StoreOptions{Fsync: policy})
			if err != nil {
				t.Fatal(err)
			}
			cur := st
			for i := 0; i < 3; i++ {
				cur = appendDelta(t, s, cur, i)
			}
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			s.Close()
			_, got, rec, err := Open(dir, StoreOptions{})
			if err != nil || rec.Epoch != 3 {
				t.Fatalf("recovery under %v: %+v, %v", policy, rec, err)
			}
			if !bytes.Equal(stateBytes(t, got), stateBytes(t, cur)) {
				t.Fatal("recovered state differs")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Crash matrix: kill at every injection point, recover, verify
// ---------------------------------------------------------------------------

var errCrash = errors.New("injected crash")

// crashWorkload drives a store through a scripted life: create, five
// appends, a compaction, two more appends. It returns the expected Save
// bytes per epoch (from a parallel in-memory replay) and the number of
// acked appends. Any storage error aborts the workload (the simulated
// process dies).
func crashWorkload(t *testing.T, dir string) (expected [][]byte, acked uint64) {
	t.Helper()
	st := buildState(t)
	expected = [][]byte{stateBytes(t, st)}
	cur := st
	// Precompute the full expected history; the crash decides how much
	// of it materializes.
	for i := 0; i < 7; i++ {
		rec := &WALRecord{Type: RecDelta, Epoch: uint64(i + 1),
			Writes: []string{"parent"}, Adds: []engine.Fact{intFact("extra", i)}}
		next, err := applyRecord(cur, rec)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
		expected = append(expected, stateBytes(t, cur))
	}

	s, err := Create(dir, st, StoreOptions{Fsync: FsyncAlways, CompactEvery: -1})
	if err != nil {
		return expected, 0
	}
	defer s.Close()
	run := st
	for i := 0; i < 7; i++ {
		rec := &WALRecord{Type: RecDelta, Epoch: uint64(i + 1),
			Writes: []string{"parent"}, Adds: []engine.Fact{intFact("extra", i)}}
		if err := s.Append(rec); err != nil {
			return expected, acked
		}
		acked = uint64(i + 1)
		next, err := applyRecord(run, rec)
		if err != nil {
			t.Fatal(err)
		}
		run = next
		if i == 4 {
			// Mid-life compaction: crashes inside it exercise the
			// snapshot-write, rename, dir-sync and rotation windows.
			if err := s.Compact(run, rec.Epoch); err != nil {
				return expected, acked
			}
		}
	}
	return expected, acked
}

func TestStoreCrashMatrix(t *testing.T) {
	// Pass 1: count fault-point crossings in a clean run.
	var points []string
	hooks.StorageFault = func(point string) error {
		points = append(points, point)
		return nil
	}
	crashWorkload(t, t.TempDir())
	hooks.StorageFault = nil
	if len(points) == 0 {
		t.Fatal("workload crossed no fault points")
	}

	// Pass 2: crash at every crossing in turn, then recover and verify.
	for k := range points {
		k := k
		t.Run(fmt.Sprintf("kill@%d:%s", k, points[k]), func(t *testing.T) {
			dir := t.TempDir()
			crossings := 0
			hooks.StorageFault = func(point string) error {
				crossings++
				if crossings-1 == k {
					return errCrash
				}
				return nil
			}
			expected, acked := crashWorkload(t, dir)
			hooks.StorageFault = nil

			if ok, err := Exists(dir); err != nil || !ok {
				// The crash predates any durable artifact (snapshot
				// creation failed): nothing to recover.
				if acked != 0 {
					t.Fatalf("acked %d appends but nothing durable", acked)
				}
				return
			}
			s, got, rec, err := Open(dir, StoreOptions{})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer s.Close()
			// Durability: every acked append survives; at most the one
			// in-flight operation may additionally have reached disk.
			if rec.Epoch < acked || rec.Epoch > acked+1 {
				t.Fatalf("recovered epoch %d, acked %d", rec.Epoch, acked)
			}
			if !bytes.Equal(stateBytes(t, got), expected[rec.Epoch]) {
				t.Fatalf("recovered state is not the epoch-%d state", rec.Epoch)
			}
		})
	}
}
