package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"strings"

	"logres/internal/engine"
	"logres/internal/module"
	"logres/internal/parser"
	"logres/internal/value"
)

// Snapshot format:
//
//	magic "LGRS", version byte,
//	schema, rule text (canonical syntax), fact set, oid counter,
//	module library sources,
//	CRC32-C trailer (v3+) over every preceding byte.
//
// Corruption — a failed trailer check, truncation mid-structure, a bad
// magic or version — surfaces as a typed *ErrCorrupt carrying the byte
// offset, wrapping (not replacing) the underlying io error.
const (
	magic   = "LGRS"
	version = 3 // v3 added the CRC32-C integrity trailer
	// legacyVersion snapshots (no trailer) are still readable.
	legacyVersion = 2
)

// SaveState writes a complete database state.
func SaveState(dst io.Writer, st *module.State) error {
	w := &writer{w: bufio.NewWriter(dst), crc: crc32.New(castagnoli)}
	w.str(magic)
	w.byte(version)
	w.schema(st.S)

	var rules strings.Builder
	for _, r := range st.R {
		rules.WriteString(r.String())
		rules.WriteByte('\n')
	}
	w.str(rules.String())

	writeFactSet(w, st.E)
	w.varint(st.Counter)

	var libSources []string
	if st.Lib != nil {
		libSources = st.Lib.Sources()
	}
	w.uvarint(uint64(len(libSources)))
	for _, src := range libSources {
		w.str(src)
	}

	// Integrity trailer: CRC32-C of everything written so far. The
	// trailer itself is not hashed.
	sum := w.crc.Sum32()
	w.crc = nil
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], sum)
	w.raw(trailer[:])

	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

func writeFactSet(w *writer, fs *engine.FactSet) {
	preds := fs.Preds()
	w.uvarint(uint64(len(preds)))
	for _, p := range preds {
		facts := fs.Facts(p)
		w.str(p)
		w.uvarint(uint64(len(facts)))
		for _, f := range facts {
			writeFact(w, f)
		}
	}
}

// writeFact encodes one fact (shared by the snapshot fact-set section
// and the WAL delta records): class marker (+oid), then the tuple.
func writeFact(w *writer, f engine.Fact) {
	if f.IsClass {
		w.byte(1)
		w.varint(int64(f.OID))
	} else {
		w.byte(0)
	}
	w.value(f.Tuple)
}

// readFact decodes one fact with its predicate already known.
func readFact(r *reader, pred string) (engine.Fact, error) {
	isClass, err := r.byte()
	if err != nil {
		return engine.Fact{}, err
	}
	f := engine.Fact{Pred: pred}
	if isClass == 1 {
		f.IsClass = true
		oid, err := r.varint()
		if err != nil {
			return engine.Fact{}, err
		}
		f.OID = value.OID(oid)
	}
	v, err := r.value()
	if err != nil {
		return engine.Fact{}, err
	}
	t, ok := v.(value.Tuple)
	if !ok {
		return engine.Fact{}, fmt.Errorf("storage: fact payload is not a tuple")
	}
	f.Tuple = t
	return f, nil
}

// LoadState reads a database state written by SaveState. Decoding
// failures — short reads, bad tags, a trailer mismatch — surface as a
// typed *ErrCorrupt attributed to the byte offset where decoding
// stopped, wrapping the underlying error.
func LoadState(src io.Reader) (*module.State, error) {
	cr := &countingReader{r: bufio.NewReader(src), crc: crc32.New(castagnoli)}
	r := &reader{r: cr}
	m, err := r.str()
	if err != nil {
		return nil, cr.corrupt("magic", err)
	}
	if m != magic {
		return nil, &ErrCorrupt{Offset: 0, Detail: fmt.Sprintf("bad magic %q", m)}
	}
	v, err := r.byte()
	if err != nil {
		return nil, cr.corrupt("version", err)
	}
	if v != version && v != legacyVersion {
		return nil, &ErrCorrupt{Offset: cr.n, Detail: fmt.Sprintf("unsupported snapshot version %d", v)}
	}
	schema, err := r.schema()
	if err != nil {
		return nil, cr.corrupt("schema", err)
	}
	ruleText, err := r.str()
	if err != nil {
		return nil, cr.corrupt("rule text", err)
	}
	st := module.NewState(schema)
	if strings.TrimSpace(ruleText) != "" {
		rules, err := parser.ParseProgram(ruleText)
		if err != nil {
			return nil, fmt.Errorf("storage: reparsing rules: %w", err)
		}
		st.R = rules
	}
	fs, err := readFactSet(r)
	if err != nil {
		return nil, cr.corrupt("fact set", err)
	}
	st.E = fs
	counter, err := r.varint()
	if err != nil {
		return nil, cr.corrupt("oid counter", err)
	}
	st.Counter = counter

	nLib, err := r.uvarint()
	if err != nil {
		return nil, cr.corrupt("library", err)
	}
	sources := make([]string, 0, nLib)
	for i := uint64(0); i < nLib; i++ {
		src, err := r.str()
		if err != nil {
			return nil, cr.corrupt("library", err)
		}
		sources = append(sources, src)
	}
	if err := st.Lib.LoadSources(sources); err != nil {
		return nil, err
	}

	if v >= version {
		// The body checksum stops here; the trailer bytes that follow
		// are read outside the hash comparison.
		sum := cr.crc.Sum32()
		var trailer [4]byte
		if _, err := io.ReadFull(cr, trailer[:]); err != nil {
			return nil, cr.corrupt("snapshot trailer", err)
		}
		if got := binary.LittleEndian.Uint32(trailer[:]); got != sum {
			return nil, &ErrCorrupt{Offset: cr.n - 4,
				Detail: fmt.Sprintf("snapshot checksum mismatch: trailer %08x, computed %08x", got, sum)}
		}
	} else {
		// A genuine legacy snapshot ends exactly at the body. Trailing
		// bytes mean this is a v3 file whose version byte was damaged
		// into the legacy value — which would silently skip the checksum
		// — so they are corruption, not slack.
		if _, err := cr.ReadByte(); err != io.EOF {
			return nil, &ErrCorrupt{Offset: cr.n,
				Detail: fmt.Sprintf("trailing data after legacy (v%d) snapshot body", v)}
		}
	}
	return st, nil
}

func readFactSet(r *reader) (*engine.FactSet, error) {
	fs := engine.NewFactSet()
	np, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < np; i++ {
		pred, err := r.str()
		if err != nil {
			return nil, err
		}
		nf, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < nf; j++ {
			f, err := readFact(r, pred)
			if err != nil {
				return nil, err
			}
			fs.Add(f)
		}
	}
	return fs, nil
}
