package storage

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"logres/internal/engine"
	"logres/internal/module"
	"logres/internal/parser"
	"logres/internal/value"
)

// Snapshot format:
//
//	magic "LGRS", version byte,
//	schema, rule text (canonical syntax), fact set, oid counter.
const (
	magic   = "LGRS"
	version = 2 // v2 added the module library section
)

// SaveState writes a complete database state.
func SaveState(dst io.Writer, st *module.State) error {
	w := &writer{w: bufio.NewWriter(dst)}
	w.str(magic)
	w.byte(version)
	w.schema(st.S)

	var rules strings.Builder
	for _, r := range st.R {
		rules.WriteString(r.String())
		rules.WriteByte('\n')
	}
	w.str(rules.String())

	writeFactSet(w, st.E)
	w.varint(st.Counter)

	var libSources []string
	if st.Lib != nil {
		libSources = st.Lib.Sources()
	}
	w.uvarint(uint64(len(libSources)))
	for _, src := range libSources {
		w.str(src)
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

func writeFactSet(w *writer, fs *engine.FactSet) {
	preds := fs.Preds()
	w.uvarint(uint64(len(preds)))
	for _, p := range preds {
		facts := fs.Facts(p)
		w.str(p)
		w.uvarint(uint64(len(facts)))
		for _, f := range facts {
			if f.IsClass {
				w.byte(1)
				w.varint(int64(f.OID))
			} else {
				w.byte(0)
			}
			w.value(f.Tuple)
		}
	}
}

// LoadState reads a database state written by SaveState.
func LoadState(src io.Reader) (*module.State, error) {
	r := &reader{r: bufio.NewReader(src)}
	m, err := r.str()
	if err != nil {
		return nil, err
	}
	if m != magic {
		return nil, fmt.Errorf("storage: bad magic %q", m)
	}
	v, err := r.byte()
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("storage: unsupported snapshot version %d", v)
	}
	schema, err := r.schema()
	if err != nil {
		return nil, err
	}
	ruleText, err := r.str()
	if err != nil {
		return nil, err
	}
	st := module.NewState(schema)
	if strings.TrimSpace(ruleText) != "" {
		rules, err := parser.ParseProgram(ruleText)
		if err != nil {
			return nil, fmt.Errorf("storage: reparsing rules: %w", err)
		}
		st.R = rules
	}
	fs, err := readFactSet(r)
	if err != nil {
		return nil, err
	}
	st.E = fs
	counter, err := r.varint()
	if err != nil {
		return nil, err
	}
	st.Counter = counter

	nLib, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	sources := make([]string, 0, nLib)
	for i := uint64(0); i < nLib; i++ {
		src, err := r.str()
		if err != nil {
			return nil, err
		}
		sources = append(sources, src)
	}
	if err := st.Lib.LoadSources(sources); err != nil {
		return nil, err
	}
	return st, nil
}

func readFactSet(r *reader) (*engine.FactSet, error) {
	fs := engine.NewFactSet()
	np, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < np; i++ {
		pred, err := r.str()
		if err != nil {
			return nil, err
		}
		nf, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < nf; j++ {
			isClass, err := r.byte()
			if err != nil {
				return nil, err
			}
			f := engine.Fact{Pred: pred}
			if isClass == 1 {
				f.IsClass = true
				oid, err := r.varint()
				if err != nil {
					return nil, err
				}
				f.OID = value.OID(oid)
			}
			v, err := r.value()
			if err != nil {
				return nil, err
			}
			t, ok := v.(value.Tuple)
			if !ok {
				return nil, fmt.Errorf("storage: fact payload is not a tuple")
			}
			f.Tuple = t
			fs.Add(f)
		}
	}
	return fs, nil
}
