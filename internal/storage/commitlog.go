// Commit log for optimistic concurrent module application: a monotonic
// epoch counter plus a bounded ring of committed write footprints. A
// concurrent application snapshots the epoch with the state, evaluates
// outside the lock, and validates its footprint against every entry
// committed since its snapshot (backward optimistic concurrency
// control): a collision between its reads-or-writes and a committed
// write set forces a retry from a fresh snapshot.
//
// The ring is bounded so a long-lived database cannot accumulate
// unbounded validation history; a validator whose snapshot predates the
// retained window is conservatively treated as conflicting (it cannot
// prove disjointness against writes it can no longer see).
package storage

import (
	"sync"

	"logres/internal/guard"
)

// DefaultCommitLogWindow is the number of committed write footprints the
// log retains for validation. Snapshots older than the window force a
// conservative conflict; with short optimistic critical sections the
// window only needs to cover the commits that can land during one
// apply, so a few hundred entries is generous.
const DefaultCommitLogWindow = 512

// CommitLog is safe for concurrent use, but the intended discipline is
// the database's: Epoch is read under the same lock as the state
// snapshot, Validate and Record run inside the commit critical section.
type CommitLog struct {
	mu      sync.Mutex
	epoch   uint64            // epoch of the newest committed entry
	base    uint64            // epoch of the oldest retained entry
	entries []guard.Footprint // entries[i] committed at epoch base+uint64(i)
	window  int
}

// NewCommitLog returns a log retaining at most window entries
// (DefaultCommitLogWindow when window <= 0).
func NewCommitLog(window int) *CommitLog {
	return NewCommitLogAt(0, window)
}

// NewCommitLogAt returns an empty log whose next recorded commit gets
// epoch+1 — the recovery path uses it so a restarted database continues
// the epoch sequence its WAL left off at. The validation history starts
// empty: no optimistic snapshot can predate the restart, so there is
// nothing to validate against.
func NewCommitLogAt(epoch uint64, window int) *CommitLog {
	if window <= 0 {
		window = DefaultCommitLogWindow
	}
	return &CommitLog{epoch: epoch, base: epoch + 1, window: window}
}

// Epoch returns the epoch of the newest committed write. A snapshot
// taken now has seen every write up to and including this epoch.
func (l *CommitLog) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// Record appends one committed write footprint and returns its epoch.
// The oldest entry is evicted once the window is full.
func (l *CommitLog) Record(fp guard.Footprint) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.epoch++
	l.entries = append(l.entries, fp)
	if len(l.entries) > l.window {
		drop := len(l.entries) - l.window
		l.entries = append(l.entries[:0], l.entries[drop:]...)
		l.base += uint64(drop)
	}
	return l.epoch
}

// Validate checks fp against every footprint committed after the
// snapshot epoch since. It returns the first conflicting predicate and
// the committed footprint it collided with, or ok=true when fp is
// disjoint from all of them. A since older than the retained window is
// a conservative conflict ("$pruned$").
func (l *CommitLog) Validate(since uint64, fp guard.Footprint) (pred string, theirs guard.Footprint, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if since >= l.epoch {
		return "", guard.Footprint{}, true
	}
	if since+1 < l.base {
		// History pruned: writes committed in (since, base) are gone.
		return "$pruned$", guard.Footprint{Universal: true}, false
	}
	for e := since + 1; e <= l.epoch; e++ {
		committed := l.entries[e-l.base]
		if p, hit := fp.Overlaps(committed); hit {
			return p, committed, false
		}
	}
	return "", guard.Footprint{}, true
}

// Window returns the retention bound (for introspection and tests).
func (l *CommitLog) Window() int { return l.window }
