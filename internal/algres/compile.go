package algres

import (
	"fmt"

	"logres/internal/ast"
	"logres/internal/value"
)

// A compiler from flat Datalog rules (positive and stratified-negative
// literals over flat relations, plus comparisons) to algebra expressions,
// evaluated naively or semi-naively through the closure operator. This is
// the paper's implementation route: LOGRES rules translate to ALGRES
// algebra (§5, [Ca90]).

// binding maps one relation attribute to a variable or constant.
type attrBinding struct {
	attr string
	v    string      // variable name ("" when constant)
	k    value.Value // constant (nil when variable)
}

type bodyAtom struct {
	pred     string
	negated  bool
	bindings []attrBinding
}

type comparison struct {
	op     string
	lv, rv string // variable names ("" = constant)
	lk, rk value.Value
}

type algRule struct {
	headPred string
	head     []attrBinding
	atoms    []bodyAtom
	cmps     []comparison
}

// RuleProgram is a compiled flat-Datalog program.
type RuleProgram struct {
	rules   []*algRule
	schemas map[string][]string
	opts    Opts
}

// CompileRules compiles rules against relation schemas (name → attribute
// list). Supported: positive/negated predicate literals with labelled or
// positional variable/constant arguments, and comparison literals between
// variables and constants. Heads must be positive with all variables
// bound by positive body literals.
func CompileRules(schemas map[string][]string, rules []*ast.Rule) (*RuleProgram, error) {
	return CompileRulesOpts(schemas, rules, Opts{})
}

// CompileRulesOpts is CompileRules configured by an options struct:
// opts.JoinWorkers is threaded into every join and anti-join the compiled
// rules evaluate, and opts.MaxSteps is the default fixpoint bound.
func CompileRulesOpts(schemas map[string][]string, rules []*ast.Rule, opts Opts) (*RuleProgram, error) {
	rp := &RuleProgram{schemas: schemas, opts: opts}
	for _, r := range rules {
		ar, err := compileAlgRule(schemas, r)
		if err != nil {
			return nil, fmt.Errorf("%v (in rule %s)", err, r)
		}
		rp.rules = append(rp.rules, ar)
	}
	return rp, nil
}

func compileAlgRule(schemas map[string][]string, r *ast.Rule) (*algRule, error) {
	if r.Head == nil {
		return nil, fmt.Errorf("algres: denials are not supported by the algebra compiler")
	}
	if r.Head.Negated {
		return nil, fmt.Errorf("algres: deletion heads are not supported by the algebra compiler")
	}
	ar := &algRule{headPred: r.Head.Pred}
	hb, err := bindArgs(schemas, r.Head.Pred, r.Head.Args)
	if err != nil {
		return nil, err
	}
	ar.head = hb
	bound := map[string]bool{}
	for _, l := range r.Body {
		if l.IsComparison() {
			c, err := compileComparison(l)
			if err != nil {
				return nil, err
			}
			ar.cmps = append(ar.cmps, c)
			continue
		}
		ab, err := bindArgs(schemas, l.Pred, l.Args)
		if err != nil {
			return nil, err
		}
		ar.atoms = append(ar.atoms, bodyAtom{pred: l.Pred, negated: l.Negated, bindings: ab})
		if !l.Negated {
			for _, b := range ab {
				if b.v != "" {
					bound[b.v] = true
				}
			}
		}
	}
	for _, b := range ar.head {
		if b.v != "" && !bound[b.v] {
			return nil, fmt.Errorf("algres: unsafe rule: head variable %s unbound", b.v)
		}
	}
	for _, c := range ar.cmps {
		for _, v := range []string{c.lv, c.rv} {
			if v != "" && !bound[v] {
				return nil, fmt.Errorf("algres: unsafe rule: comparison variable %s unbound", v)
			}
		}
	}
	for _, a := range ar.atoms {
		if !a.negated {
			continue
		}
		for _, b := range a.bindings {
			if b.v != "" && !bound[b.v] {
				return nil, fmt.Errorf("algres: unsafe rule: negated variable %s unbound", b.v)
			}
		}
	}
	return ar, nil
}

func bindArgs(schemas map[string][]string, pred string, args []ast.Arg) ([]attrBinding, error) {
	attrs, ok := schemas[pred]
	if !ok {
		return nil, fmt.Errorf("algres: unknown relation %q", pred)
	}
	claimed := map[string]bool{}
	var out []attrBinding
	var positional []ast.Term
	for _, a := range args {
		if a.Label == "" {
			positional = append(positional, a.Term)
			continue
		}
		found := false
		for _, at := range attrs {
			if at == a.Label {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("algres: relation %q has no attribute %q", pred, a.Label)
		}
		claimed[a.Label] = true
		b, err := termBinding(a.Label, a.Term)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	var remaining []string
	for _, at := range attrs {
		if !claimed[at] {
			remaining = append(remaining, at)
		}
	}
	if len(positional) > len(remaining) {
		return nil, fmt.Errorf("algres: %q: too many positional arguments", pred)
	}
	for i, t := range positional {
		b, err := termBinding(remaining[i], t)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

func termBinding(attr string, t ast.Term) (attrBinding, error) {
	switch x := t.(type) {
	case ast.Var:
		return attrBinding{attr: attr, v: x.Name}, nil
	case ast.Const:
		return attrBinding{attr: attr, k: x.Val}, nil
	case ast.Wildcard:
		return attrBinding{attr: attr}, nil
	}
	return attrBinding{}, fmt.Errorf("algres: unsupported term %s", t)
}

func compileComparison(l ast.Literal) (comparison, error) {
	c := comparison{op: l.Pred}
	if l.Negated {
		return c, fmt.Errorf("algres: negated comparisons are not supported")
	}
	side := func(t ast.Term) (string, value.Value, error) {
		switch x := t.(type) {
		case ast.Var:
			return x.Name, nil, nil
		case ast.Const:
			return "", x.Val, nil
		}
		return "", nil, fmt.Errorf("algres: unsupported comparison operand %s", t)
	}
	var err error
	c.lv, c.lk, err = side(l.Args[0].Term)
	if err != nil {
		return c, err
	}
	c.rv, c.rk, err = side(l.Args[1].Term)
	return c, err
}

// varCol names the join column of a variable.
func varCol(v string) string { return "?" + v }

// evalRule evaluates one rule against db, returning the head relation.
func (rp *RuleProgram) evalRule(db *DB, ar *algRule, deltaPred string, delta *Relation) (*Relation, error) {
	var joined *Relation
	usedDelta := deltaPred == ""
	for _, atom := range ar.atoms {
		if atom.negated {
			continue
		}
		src, ok := db.Get(atom.pred)
		if !ok {
			src = NewRelation(rp.schemas[atom.pred]...)
		}
		if !usedDelta && atom.pred == deltaPred {
			src = delta
			usedDelta = true
		}
		rel, err := atomRelation(src, atom)
		if err != nil {
			return nil, err
		}
		if joined == nil {
			joined = rel
		} else {
			joined = rp.opts.join(joined, rel)
		}
	}
	if joined == nil {
		// Body of constants/facts only.
		joined = NewRelation()
		joined.Insert(value.NewTuple())
	}
	// Comparisons.
	for _, c := range ar.cmps {
		cc := c
		joined = Select(joined, func(t value.Tuple) bool {
			lv := cc.lk
			if cc.lv != "" {
				lv, _ = t.Get(varCol(cc.lv))
			}
			rv := cc.rk
			if cc.rv != "" {
				rv, _ = t.Get(varCol(cc.rv))
			}
			if lv == nil || rv == nil {
				return false
			}
			switch cc.op {
			case "=":
				return value.Equal(lv, rv)
			case "!=":
				return !value.Equal(lv, rv)
			case "<":
				return value.Compare(lv, rv) < 0
			case "<=":
				return value.Compare(lv, rv) <= 0
			case ">":
				return value.Compare(lv, rv) > 0
			case ">=":
				return value.Compare(lv, rv) >= 0
			}
			return false
		})
	}
	// Negated atoms: anti-join.
	for _, atom := range ar.atoms {
		if !atom.negated {
			continue
		}
		src, ok := db.Get(atom.pred)
		if !ok {
			src = NewRelation(rp.schemas[atom.pred]...)
		}
		rel, err := atomRelation(src, atom)
		if err != nil {
			return nil, err
		}
		joined = rp.opts.antiJoin(joined, rel)
	}
	// Head projection.
	out := NewRelation(rp.schemas[ar.headPred]...)
	for _, t := range joined.Tuples() {
		fields := make([]value.Field, 0, len(ar.head))
		for _, b := range ar.head {
			if b.v != "" {
				v, _ := t.Get(varCol(b.v))
				fields = append(fields, value.Field{Label: b.attr, Value: v})
			} else if b.k != nil {
				fields = append(fields, value.Field{Label: b.attr, Value: b.k})
			}
		}
		out.Insert(value.NewTuple(fields...))
	}
	return out, nil
}

// atomRelation restricts and renames a relation per the atom's bindings:
// constant selections, duplicate-variable selections, projection onto the
// variable columns.
func atomRelation(src *Relation, atom bodyAtom) (*Relation, error) {
	rel := src
	seen := map[string]string{} // var → first attr
	mapping := map[string]string{}
	var cols []string
	for _, b := range atom.bindings {
		switch {
		case b.k != nil:
			rel = SelectEqConst(rel, b.attr, b.k)
		case b.v != "":
			if first, dup := seen[b.v]; dup {
				rel = SelectEqAttr(rel, first, b.attr)
			} else {
				seen[b.v] = b.attr
				mapping[b.attr] = varCol(b.v)
				cols = append(cols, b.attr)
			}
		}
	}
	proj, err := Project(rel, cols...)
	if err != nil {
		return nil, err
	}
	return Rename(proj, mapping), nil
}

// EvalNaive computes the program's least fixpoint by naive iteration
// through the closure operator.
func (rp *RuleProgram) EvalNaive(db *DB, maxSteps int) (*DB, error) {
	o := rp.opts
	if maxSteps > 0 {
		o.MaxSteps = maxSteps
	}
	rp.ensureIDB(db)
	return FixpointOpts(db, func(cur *DB) (map[string]*Relation, error) {
		updates := map[string]*Relation{}
		for _, ar := range rp.rules {
			rel, err := rp.evalRule(cur, ar, "", nil)
			if err != nil {
				return nil, err
			}
			if prev, ok := updates[ar.headPred]; ok {
				merged, err := Union(prev, rel)
				if err != nil {
					return nil, err
				}
				updates[ar.headPred] = merged
			} else {
				updates[ar.headPred] = rel
			}
		}
		return updates, nil
	}, o)
}

// EvalSemiNaive computes the same fixpoint with delta iteration.
func (rp *RuleProgram) EvalSemiNaive(db *DB, maxSteps int) (*DB, error) {
	if maxSteps <= 0 {
		maxSteps = rp.opts.MaxSteps
	}
	if maxSteps <= 0 {
		maxSteps = 1_000_000
	}
	g := newRoundGuard(rp.opts)
	cur := db.Clone()
	rp.ensureIDB(cur)

	// Round 0: full evaluation.
	deltas := map[string]*Relation{}
	for _, ar := range rp.rules {
		rel, err := rp.evalRule(cur, ar, "", nil)
		if err != nil {
			return nil, err
		}
		dst, _ := cur.Get(ar.headPred)
		d := deltas[ar.headPred]
		if d == nil {
			d = NewRelation(rp.schemas[ar.headPred]...)
			deltas[ar.headPred] = d
		}
		for _, t := range rel.Tuples() {
			if !dst.Has(t) {
				d.Insert(t)
			}
		}
	}
	for round := 0; ; round++ {
		if round >= maxSteps {
			return nil, g.rounds(maxSteps, "semi-naive iteration did not converge")
		}
		if err := g.check(round); err != nil {
			return nil, err
		}
		total := 0
		for _, d := range deltas {
			total += d.Len()
		}
		if total == 0 {
			return cur, nil
		}
		// Merge deltas.
		for pred, d := range deltas {
			dst, _ := cur.Get(pred)
			for _, t := range d.Tuples() {
				if dst.Insert(t) {
					g.inserted++
				}
			}
		}
		next := map[string]*Relation{}
		for _, ar := range rp.rules {
			for _, atom := range ar.atoms {
				if atom.negated {
					continue
				}
				d := deltas[atom.pred]
				if d == nil || d.Len() == 0 {
					continue
				}
				rel, err := rp.evalRule(cur, ar, atom.pred, d)
				if err != nil {
					return nil, err
				}
				dst, _ := cur.Get(ar.headPred)
				nd := next[ar.headPred]
				if nd == nil {
					nd = NewRelation(rp.schemas[ar.headPred]...)
					next[ar.headPred] = nd
				}
				for _, t := range rel.Tuples() {
					if !dst.Has(t) {
						nd.Insert(t)
					}
				}
			}
		}
		deltas = next
	}
}

// ensureIDB creates empty relations for all head predicates.
func (rp *RuleProgram) ensureIDB(db *DB) {
	for _, ar := range rp.rules {
		if _, ok := db.Get(ar.headPred); !ok {
			db.Set(ar.headPred, NewRelation(rp.schemas[ar.headPred]...))
		}
	}
	for _, ar := range rp.rules {
		for _, atom := range ar.atoms {
			if _, ok := db.Get(atom.pred); !ok {
				db.Set(atom.pred, NewRelation(rp.schemas[atom.pred]...))
			}
		}
	}
}
