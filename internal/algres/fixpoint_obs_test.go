package algres

import (
	"testing"

	"logres/internal/obs"
)

type collectTracer struct{ events []obs.Event }

func (c *collectTracer) Event(ev obs.Event) { c.events = append(c.events, ev) }

// The ALGRES fixpoint reports one closure.round event per round with the
// per-round insertion count and the cumulative total.
func TestFixpointClosureRoundEvents(t *testing.T) {
	edges := edgeRel([2]int64{1, 2}, [2]int64{2, 3}, [2]int64{3, 4})
	ct := &collectTracer{}
	tc, err := TransitiveClosureOpts(edges, "src", "dst", Opts{Tracer: ct})
	if err != nil {
		t.Fatal(err)
	}
	if tc.Len() != 6 {
		t.Fatalf("closure = %d, want 6", tc.Len())
	}
	if len(ct.events) == 0 {
		t.Fatal("no closure.round events recorded")
	}
	last := -1
	total := 0
	for _, ev := range ct.events {
		if ev.Kind != obs.KindClosureRound {
			t.Fatalf("unexpected event kind %q", ev.Kind)
		}
		if ev.Round != last+1 {
			t.Fatalf("round %d follows %d, want consecutive", ev.Round, last)
		}
		last = ev.Round
		total += ev.Count
		if ev.Total != total {
			t.Fatalf("round %d: Total = %d, want cumulative %d", ev.Round, ev.Total, total)
		}
	}
	// The final round inserts nothing (convergence).
	if ct.events[len(ct.events)-1].Count != 0 {
		t.Fatalf("final round inserted %d tuples, want 0", ct.events[len(ct.events)-1].Count)
	}
}
