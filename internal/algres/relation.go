// Package algres implements the ALGRES substrate the paper prototypes
// LOGRES on (§1, §5): a main-memory extended relational algebra over NF²
// (non-first-normal-form) relations — selection, projection, renaming,
// natural join, set operations, extension, nesting/unnesting, grouping
// with aggregates, and a liberal fixpoint (closure) operator. A compiler
// from flat Datalog rules to algebra expressions reproduces the paper's
// implementation strategy ("translation of the LOGRES data model into the
// relational one").
package algres

import (
	"fmt"
	"sort"
	"strings"

	"logres/internal/value"
)

// Relation is an NF² relation: a named attribute list and a set of tuples.
// Attribute values may themselves be tuples, sets, multisets or sequences.
type Relation struct {
	attrs []string
	rows  map[string]value.Tuple
}

// NewRelation returns an empty relation with the given attributes.
func NewRelation(attrs ...string) *Relation {
	as := make([]string, len(attrs))
	copy(as, attrs)
	return &Relation{attrs: as, rows: map[string]value.Tuple{}}
}

// Attrs returns the attribute names in order.
func (r *Relation) Attrs() []string {
	out := make([]string, len(r.attrs))
	copy(out, r.attrs)
	return out
}

// HasAttr reports whether the relation has the named attribute.
func (r *Relation) HasAttr(name string) bool {
	for _, a := range r.attrs {
		if a == name {
			return true
		}
	}
	return false
}

// Len reports the number of tuples.
func (r *Relation) Len() int { return len(r.rows) }

// Insert adds a tuple. The tuple is normalized to the relation's attribute
// order; missing attributes become null. It reports whether the relation
// grew.
func (r *Relation) Insert(t value.Tuple) bool {
	norm := r.normalize(t)
	k := norm.Key()
	if _, ok := r.rows[k]; ok {
		return false
	}
	r.rows[k] = norm
	return true
}

// InsertValues adds a tuple given positionally.
func (r *Relation) InsertValues(vals ...value.Value) bool {
	if len(vals) != len(r.attrs) {
		panic(fmt.Sprintf("algres: %d values for %d attributes", len(vals), len(r.attrs)))
	}
	fields := make([]value.Field, len(vals))
	for i, v := range vals {
		fields[i] = value.Field{Label: r.attrs[i], Value: v}
	}
	return r.Insert(value.NewTuple(fields...))
}

// Has reports membership.
func (r *Relation) Has(t value.Tuple) bool {
	_, ok := r.rows[r.normalize(t).Key()]
	return ok
}

func (r *Relation) normalize(t value.Tuple) value.Tuple {
	fields := make([]value.Field, len(r.attrs))
	for i, a := range r.attrs {
		v, ok := t.Get(a)
		if !ok {
			v = value.Null{}
		}
		fields[i] = value.Field{Label: a, Value: v}
	}
	return value.NewTuple(fields...)
}

// Tuples returns the tuples in canonical order.
func (r *Relation) Tuples() []value.Tuple {
	keys := make([]string, 0, len(r.rows))
	for k := range r.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]value.Tuple, len(keys))
	for i, k := range keys {
		out[i] = r.rows[k]
	}
	return out
}

// Clone returns a deep-enough copy (tuples are immutable).
func (r *Relation) Clone() *Relation {
	n := NewRelation(r.attrs...)
	for k, t := range r.rows {
		n.rows[k] = t
	}
	return n
}

// Equal reports whether two relations hold exactly the same tuples over
// the same attributes.
func (r *Relation) Equal(o *Relation) bool {
	if len(r.attrs) != len(o.attrs) || len(r.rows) != len(o.rows) {
		return false
	}
	for i := range r.attrs {
		if r.attrs[i] != o.attrs[i] {
			return false
		}
	}
	for k := range r.rows {
		if _, ok := o.rows[k]; !ok {
			return false
		}
	}
	return true
}

// String renders the relation deterministically.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString("(" + strings.Join(r.attrs, ", ") + ")\n")
	for _, t := range r.Tuples() {
		b.WriteString("  " + t.String() + "\n")
	}
	return b.String()
}

// DB is a named collection of relations — the evaluation environment of
// algebra expressions.
type DB struct {
	rels map[string]*Relation
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{rels: map[string]*Relation{}} }

// Set binds a relation name.
func (db *DB) Set(name string, r *Relation) { db.rels[name] = r }

// Get returns the named relation.
func (db *DB) Get(name string) (*Relation, bool) {
	r, ok := db.rels[name]
	return r, ok
}

// Names returns the bound names, sorted.
func (db *DB) Names() []string {
	out := make([]string, 0, len(db.rels))
	for n := range db.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone returns a copy sharing no relation structure.
func (db *DB) Clone() *DB {
	n := NewDB()
	for name, r := range db.rels {
		n.rels[name] = r.Clone()
	}
	return n
}
