package algres

// Vectorized ALGRES operators. Each operator dictionary-encodes its
// input relations into columnar batches (internal/colset), runs the
// uint32-code kernel, and materializes the result from the original
// tuples — no value is decoded through the dictionary, and no per-tuple
// key string is built on the probe path. Every operator is
// differentially tested against its row counterpart: same relation,
// same canonical order.

import (
	"fmt"

	"logres/internal/colset"
	"logres/internal/value"
)

// encodeCols encodes the named attributes of the tuples (assumed
// normalized to the relation's attribute order) into one code column
// per attribute.
func encodeCols(d *colset.Dict, r *Relation, tuples []value.Tuple, attrs []string) [][]uint32 {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		idx[i] = -1
		for j, ra := range r.attrs {
			if ra == a {
				idx[i] = j
				break
			}
		}
	}
	cols := make([][]uint32, len(attrs))
	for c := range cols {
		cols[c] = make([]uint32, len(tuples))
	}
	for ti, t := range tuples {
		for c, j := range idx {
			v := value.Value(value.Null{})
			if j >= 0 {
				v = t.Field(j).Value
			}
			cols[c][ti] = d.Code(v)
		}
	}
	return cols
}

// sharedAttrs returns l's attributes also present in r, in l order.
func sharedAttrs(l, r *Relation) []string {
	var shared []string
	for _, a := range l.attrs {
		if r.HasAttr(a) {
			shared = append(shared, a)
		}
	}
	return shared
}

// JoinVec is the vectorized natural join: identical to Join, computed
// by a hash join over dictionary codes.
func JoinVec(l, rR *Relation) *Relation {
	shared := sharedAttrs(l, rR)
	attrs := append([]string{}, l.attrs...)
	for _, a := range rR.attrs {
		if !l.HasAttr(a) {
			attrs = append(attrs, a)
		}
	}
	out := NewRelation(attrs...)
	lts, rts := l.Tuples(), rR.Tuples()
	d := colset.NewDict()
	lkeys := encodeCols(d, l, lts, shared)
	rkeys := encodeCols(d, rR, rts, shared)
	lidx, ridx := colset.Join(lkeys, len(lts), nil, rkeys, len(rts), nil)
	var rExtra []int
	for j, a := range rR.attrs {
		if !l.HasAttr(a) {
			rExtra = append(rExtra, j)
		}
	}
	for k := range lidx {
		lt, rt := lts[lidx[k]], rts[ridx[k]]
		fields := make([]value.Field, 0, len(attrs))
		for i := 0; i < lt.Len(); i++ {
			fields = append(fields, lt.Field(i))
		}
		for _, j := range rExtra {
			fields = append(fields, rt.Field(j))
		}
		out.Insert(value.NewTuple(fields...))
	}
	return out
}

// AntiJoinVec is the vectorized anti-join: the tuples of l with no
// partner in r on the shared attributes.
func AntiJoinVec(l, rR *Relation) *Relation {
	shared := sharedAttrs(l, rR)
	out := NewRelation(l.attrs...)
	lts, rts := l.Tuples(), rR.Tuples()
	d := colset.NewDict()
	lkeys := encodeCols(d, l, lts, shared)
	rkeys := encodeCols(d, rR, rts, shared)
	for _, i := range colset.AntiJoin(lkeys, len(lts), nil, rkeys, len(rts), nil) {
		out.Insert(lts[i])
	}
	return out
}

// SelectEqConstVec is the vectorized SelectEqConst: one column scan
// against one interned code.
func SelectEqConstVec(r *Relation, attr string, v value.Value) *Relation {
	out := NewRelation(r.attrs...)
	if !r.HasAttr(attr) {
		return out
	}
	ts := r.Tuples()
	d := colset.NewDict()
	col := encodeCols(d, r, ts, []string{attr})[0]
	code, ok := d.Lookup(v)
	if !ok {
		// v was never interned while encoding the column, so no tuple
		// holds it.
		return out
	}
	for _, i := range colset.SelectEq(col, len(ts), nil, code) {
		out.Insert(ts[i])
	}
	return out
}

// SelectEqAttrVec is the vectorized SelectEqAttr: two columns compared
// code against code.
func SelectEqAttrVec(r *Relation, a, b string) *Relation {
	out := NewRelation(r.attrs...)
	if !r.HasAttr(a) || !r.HasAttr(b) {
		return out
	}
	ts := r.Tuples()
	d := colset.NewDict()
	cols := encodeCols(d, r, ts, []string{a, b})
	for _, i := range colset.SelectColEq(cols[0], cols[1], len(ts), nil) {
		out.Insert(ts[i])
	}
	return out
}

// ProjectVec is the vectorized Project: duplicate elimination runs on
// packed code rows before any projected tuple is materialized.
func ProjectVec(r *Relation, attrs ...string) (*Relation, error) {
	for _, a := range attrs {
		if !r.HasAttr(a) {
			return nil, fmt.Errorf("algres: project: unknown attribute %q", a)
		}
	}
	out := NewRelation(attrs...)
	ts := r.Tuples()
	d := colset.NewDict()
	cols := encodeCols(d, r, ts, attrs)
	for _, i := range colset.DedupRows(cols, len(ts), nil) {
		t := ts[i]
		fields := make([]value.Field, len(attrs))
		for c, a := range attrs {
			v, _ := t.Get(a)
			fields[c] = value.Field{Label: a, Value: v}
		}
		out.Insert(value.NewTuple(fields...))
	}
	return out, nil
}

// UnionVec is the vectorized Union: the right side's novel rows are
// found by a full-width code diff, so only genuinely new tuples pay a
// map insert.
func UnionVec(r, s *Relation) (*Relation, error) {
	if err := sameSchema(r, s); err != nil {
		return nil, err
	}
	out := r.Clone()
	rts, sts := r.Tuples(), s.Tuples()
	d := colset.NewDict()
	rcols := encodeCols(d, r, rts, r.attrs)
	scols := encodeCols(d, s, sts, s.attrs)
	for _, i := range colset.DiffRows(scols, len(sts), nil, rcols, len(rts), nil) {
		out.Insert(sts[i])
	}
	return out, nil
}

// DiffVec is the vectorized Diff: r − s by full-width code anti-join.
func DiffVec(r, s *Relation) (*Relation, error) {
	if err := sameSchema(r, s); err != nil {
		return nil, err
	}
	out := NewRelation(r.attrs...)
	rts, sts := r.Tuples(), s.Tuples()
	d := colset.NewDict()
	rcols := encodeCols(d, r, rts, r.attrs)
	scols := encodeCols(d, s, sts, s.attrs)
	for _, i := range colset.DiffRows(rcols, len(rts), nil, scols, len(sts), nil) {
		out.Insert(rts[i])
	}
	return out, nil
}

// join/antiJoin are the Opts-level dispatchers the compiled-rule
// pipeline and the closure operators route through.
func (o Opts) join(l, r *Relation) *Relation {
	if o.Vectorize {
		return JoinVec(l, r)
	}
	return JoinWorkers(l, r, o.JoinWorkers)
}

func (o Opts) antiJoin(l, r *Relation) *Relation {
	if o.Vectorize {
		return AntiJoinVec(l, r)
	}
	return AntiJoinWorkers(l, r, o.JoinWorkers)
}
