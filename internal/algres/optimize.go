package algres

// A rewrite-based optimizer for algebra expressions. Passes:
//
//  1. selection cascade merging:      σc1(σc2(E))       → σ(c1 ∧ c2)(E)
//  2. selection pushdown over joins:  σc(E1 ⋈ E2)       → σc(E1) ⋈ E2
//     (when E1 covers c's attributes; conjunctions split first)
//  3. selection pushdown over set ops and rename
//  4. projection cascade fusion:      π a(π b(E))       → π a(E)
//  5. projection pushdown over join:  π a(E1 ⋈ E2)      → π(E1') ⋈ π(E2')
//     keeping the needed and join attributes on each side.
//
// Rewrites are semantics-preserving for set relations and applied to a
// fixpoint; Optimize never fails — expressions it cannot improve are
// returned unchanged.

// Optimize rewrites an expression given a catalog of base relation
// schemas.
func Optimize(e Expr, catalog map[string][]string) Expr {
	for i := 0; i < 10; i++ {
		next, changed := rewrite(e, catalog)
		e = next
		if !changed {
			break
		}
	}
	return e
}

// splitConj splits a condition into conjuncts.
func splitConj(c Cond) []Cond {
	if a, ok := c.(And); ok {
		return append(splitConj(a.L), splitConj(a.R)...)
	}
	return []Cond{c}
}

func conjoin(cs []Cond) Cond {
	c := cs[0]
	for _, x := range cs[1:] {
		c = And{L: c, R: x}
	}
	return c
}

func covers(attrs []string, cond Cond) bool {
	have := map[string]bool{}
	for _, a := range attrs {
		have[a] = true
	}
	for _, a := range cond.CondAttrs() {
		if !have[a] {
			return false
		}
	}
	return true
}

func rewrite(e Expr, cat map[string][]string) (Expr, bool) {
	switch x := e.(type) {
	case SelectE:
		in, changed := rewrite(x.Input, cat)
		x.Input = in
		// 1. cascade merging
		if inner, ok := x.Input.(SelectE); ok {
			return SelectE{Input: inner.Input, Cond: And{L: x.Cond, R: inner.Cond}}, true
		}
		// 2. pushdown over join, conjunct by conjunct
		if j, ok := x.Input.(JoinE); ok {
			lAttrs, errL := j.L.Attrs(cat)
			rAttrs, errR := j.R.Attrs(cat)
			if errL == nil && errR == nil {
				var pushL, pushR, keep []Cond
				for _, c := range splitConj(x.Cond) {
					switch {
					case covers(lAttrs, c):
						pushL = append(pushL, c)
					case covers(rAttrs, c):
						pushR = append(pushR, c)
					default:
						keep = append(keep, c)
					}
				}
				if len(pushL) > 0 || len(pushR) > 0 {
					l, r := j.L, j.R
					if len(pushL) > 0 {
						l = SelectE{Input: l, Cond: conjoin(pushL)}
					}
					if len(pushR) > 0 {
						r = SelectE{Input: r, Cond: conjoin(pushR)}
					}
					var out Expr = JoinE{L: l, R: r, Workers: j.Workers}
					if len(keep) > 0 {
						out = SelectE{Input: out, Cond: conjoin(keep)}
					}
					return out, true
				}
			}
		}
		// 3. pushdown over set operations (both sides share the schema)
		switch s := x.Input.(type) {
		case UnionE:
			return UnionE{L: SelectE{Input: s.L, Cond: x.Cond}, R: SelectE{Input: s.R, Cond: x.Cond}}, true
		case DiffE:
			return DiffE{L: SelectE{Input: s.L, Cond: x.Cond}, R: SelectE{Input: s.R, Cond: x.Cond}}, true
		case IntersectE:
			return IntersectE{L: SelectE{Input: s.L, Cond: x.Cond}, R: SelectE{Input: s.R, Cond: x.Cond}}, true
		}
		return x, changed
	case ProjectE:
		in, changed := rewrite(x.Input, cat)
		x.Input = in
		// 4. cascade fusion
		if inner, ok := x.Input.(ProjectE); ok {
			return ProjectE{Input: inner.Input, Cols: x.Cols}, true
		}
		// 5. pushdown over join
		if j, ok := x.Input.(JoinE); ok {
			lAttrs, errL := j.L.Attrs(cat)
			rAttrs, errR := j.R.Attrs(cat)
			if errL == nil && errR == nil {
				shared := map[string]bool{}
				rHas := map[string]bool{}
				for _, a := range rAttrs {
					rHas[a] = true
				}
				for _, a := range lAttrs {
					if rHas[a] {
						shared[a] = true
					}
				}
				needed := map[string]bool{}
				for _, a := range x.Cols {
					needed[a] = true
				}
				keepSide := func(attrs []string) []string {
					var out []string
					for _, a := range attrs {
						if needed[a] || shared[a] {
							out = append(out, a)
						}
					}
					return out
				}
				lKeep, rKeep := keepSide(lAttrs), keepSide(rAttrs)
				// Only rewrite if it actually narrows a side (otherwise we
				// loop forever re-introducing identical projections).
				if len(lKeep) < len(lAttrs) || len(rKeep) < len(rAttrs) {
					return ProjectE{
						Input: JoinE{
							L:       ProjectE{Input: j.L, Cols: lKeep},
							R:       ProjectE{Input: j.R, Cols: rKeep},
							Workers: j.Workers,
						},
						Cols: x.Cols,
					}, true
				}
			}
		}
		return x, changed
	case RenameE:
		in, changed := rewrite(x.Input, cat)
		x.Input = in
		return x, changed
	case JoinE:
		l, cl := rewrite(x.L, cat)
		r, cr := rewrite(x.R, cat)
		return JoinE{L: l, R: r, Workers: x.Workers}, cl || cr
	case UnionE:
		l, cl := rewrite(x.L, cat)
		r, cr := rewrite(x.R, cat)
		return UnionE{L: l, R: r}, cl || cr
	case DiffE:
		l, cl := rewrite(x.L, cat)
		r, cr := rewrite(x.R, cat)
		return DiffE{L: l, R: r}, cl || cr
	case IntersectE:
		l, cl := rewrite(x.L, cat)
		r, cr := rewrite(x.R, cat)
		return IntersectE{L: l, R: r}, cl || cr
	case NestE:
		in, changed := rewrite(x.Input, cat)
		x.Input = in
		return x, changed
	case UnnestE:
		in, changed := rewrite(x.Input, cat)
		x.Input = in
		return x, changed
	case GroupE:
		in, changed := rewrite(x.Input, cat)
		x.Input = in
		return x, changed
	case FixE:
		base, cb := rewrite(x.Base, cat)
		// The step expression references the fixpoint relation, whose
		// schema equals the base's; extend the catalog for it.
		stepCat := cat
		if attrs, err := base.Attrs(cat); err == nil {
			stepCat = map[string][]string{}
			for k, v := range cat {
				stepCat[k] = v
			}
			stepCat[x.Name] = attrs
		}
		step, cs := rewrite(x.Step, stepCat)
		x.Base, x.Step = base, step
		return x, cb || cs
	}
	return e, false
}
