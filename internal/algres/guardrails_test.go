package algres

import (
	"context"
	"errors"
	"testing"
	"time"

	"logres/internal/guard"
	"logres/internal/parser"
	"logres/internal/value"
)

// Guardrail tests for the closure operator: the same typed abort errors
// the rule engine produces must surface from algebra-level fixpoints.

// countStep is a divergent closure body: each round derives n+1 from n.
func countStep(cur *DB) (map[string]*Relation, error) {
	n, _ := cur.Get("n")
	out := NewRelation("n")
	for _, t := range n.Tuples() {
		v, _ := t.Get("n")
		out.InsertValues(value.Int(int64(v.(value.Int)) + 1))
	}
	return map[string]*Relation{"n": out}, nil
}

func countDB() *DB {
	db := NewDB()
	r := NewRelation("n")
	r.InsertValues(value.Int(0))
	db.Set("n", r)
	return db
}

func TestFixpointFactBudget(t *testing.T) {
	_, err := FixpointOpts(countDB(), countStep, Opts{MaxFacts: 30})
	var be *guard.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v (%T), want *guard.BudgetError", err, err)
	}
	if be.Axis != guard.AxisFacts {
		t.Fatalf("axis = %q, want facts", be.Axis)
	}
	if be.Facts <= 30 {
		t.Fatalf("Facts = %d, want > 30", be.Facts)
	}
}

func TestFixpointDeadline(t *testing.T) {
	_, err := FixpointOpts(countDB(), countStep, Opts{Timeout: 10 * time.Millisecond})
	var be *guard.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v (%T), want *guard.BudgetError", err, err)
	}
	if be.Axis != guard.AxisDeadline {
		t.Fatalf("axis = %q, want deadline", be.Axis)
	}
}

func TestFixpointCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := FixpointOpts(countDB(), countStep, Opts{Ctx: ctx})
	var ce *guard.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *guard.CanceledError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err does not unwrap to context.Canceled: %v", err)
	}
}

func TestFixpointRoundsIsBudgetError(t *testing.T) {
	_, err := Fixpoint(countDB(), countStep, 10)
	var be *guard.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v (%T), want *guard.BudgetError", err, err)
	}
	if be.Axis != guard.AxisRounds || be.Limit != 10 {
		t.Fatalf("BudgetError = %+v, want rounds axis with limit 10", be)
	}
}

// The compiled-rule evaluators must observe the same budget opts. The
// algebra compiler has no arithmetic, so divergence is simulated with a
// closure whose work (a 60-node chain, ~1800 tc tuples, ~60 rounds)
// overruns every axis long before convergence.
func TestEvalSemiNaiveBudget(t *testing.T) {
	rules, err := parser.ParseProgram(`
tc(a: X, b: Y) <- edge(a: X, b: Y).
tc(a: X, b: Z) <- tc(a: X, b: Y), edge(a: Y, b: Z).
`)
	if err != nil {
		t.Fatal(err)
	}
	schemas := map[string][]string{"edge": {"a", "b"}, "tc": {"a", "b"}}
	chain := func() *DB {
		db := NewDB()
		e := NewRelation("a", "b")
		for i := int64(0); i < 60; i++ {
			e.InsertValues(value.Int(i), value.Int(i+1))
		}
		db.Set("edge", e)
		return db
	}
	for _, tc := range []struct {
		name string
		opts Opts
		axis guard.Axis
	}{
		{"facts", Opts{MaxFacts: 25}, guard.AxisFacts},
		{"deadline", Opts{Timeout: time.Nanosecond}, guard.AxisDeadline},
		{"rounds", Opts{MaxSteps: 15}, guard.AxisRounds},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rp, err := CompileRulesOpts(schemas, rules, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			_, err = rp.EvalSemiNaive(chain(), 0)
			var be *guard.BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("err = %v (%T), want *guard.BudgetError", err, err)
			}
			if be.Axis != tc.axis {
				t.Fatalf("axis = %q, want %q", be.Axis, tc.axis)
			}
		})
	}
}

func TestTransitiveClosureCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := TransitiveClosureOpts(edgeRel([2]int64{1, 2}, [2]int64{2, 3}), "src", "dst", Opts{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("closure ignored cancellation: %v", err)
	}
}
