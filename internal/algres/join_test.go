package algres

import (
	"fmt"
	"testing"

	"logres/internal/value"
)

// Regression tests for the smaller-side-build hash join: the result —
// contents and canonical Tuples() order — must be identical whichever
// relation the index is built on, must match a nested-loop reference,
// and must be stable across worker counts.

// nestedLoopJoin is the quadratic reference implementation.
func nestedLoopJoin(l, r *Relation) *Relation {
	var shared []string
	for _, a := range l.attrs {
		if r.HasAttr(a) {
			shared = append(shared, a)
		}
	}
	attrs := append([]string{}, l.attrs...)
	for _, a := range r.attrs {
		if !l.HasAttr(a) {
			attrs = append(attrs, a)
		}
	}
	out := NewRelation(attrs...)
	for _, lt := range l.Tuples() {
		for _, rt := range r.Tuples() {
			match := true
			for _, a := range shared {
				lv, _ := lt.Get(a)
				rv, _ := rt.Get(a)
				if !value.Equal(lv, rv) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			fields := make([]value.Field, 0, len(attrs))
			for i := 0; i < lt.Len(); i++ {
				fields = append(fields, lt.Field(i))
			}
			for i := 0; i < rt.Len(); i++ {
				f := rt.Field(i)
				if !l.HasAttr(f.Label) {
					fields = append(fields, f)
				}
			}
			out.Insert(value.NewTuple(fields...))
		}
	}
	return out
}

func joinCase(ln, rn int) (*Relation, *Relation) {
	l := NewRelation("a", "b")
	for i := 0; i < ln; i++ {
		l.InsertValues(value.Int(int64(i)), value.Int(int64(i%5)))
	}
	r := NewRelation("b", "c")
	for i := 0; i < rn; i++ {
		r.InsertValues(value.Int(int64(i%5)), value.Str(fmt.Sprintf("c%d", i)))
	}
	return l, r
}

func TestJoinSmallerSideBuild(t *testing.T) {
	cases := []struct{ name string; ln, rn int }{
		{"left-smaller", 4, 40},
		{"right-smaller", 40, 4},
		{"equal", 8, 8},
		{"left-empty", 0, 8},
		{"right-empty", 8, 0},
		{"parallel-sized", 600, 20},
	}
	for _, tc := range cases {
		l, r := joinCase(tc.ln, tc.rn)
		want := nestedLoopJoin(l, r)
		for _, workers := range []int{1, 4} {
			got := JoinWorkers(l, r, workers)
			if !got.Equal(want) {
				t.Fatalf("%s workers=%d: join = %d tuples, reference = %d",
					tc.name, workers, got.Len(), want.Len())
			}
			// Canonical order: Tuples() must enumerate identically.
			gt, wt := got.Tuples(), want.Tuples()
			for i := range wt {
				if gt[i].Key() != wt[i].Key() {
					t.Fatalf("%s workers=%d: tuple order diverges at %d: %s vs %s",
						tc.name, workers, i, gt[i], wt[i])
				}
			}
		}
	}
}

// With no shared attributes the join degenerates to a Cartesian
// product; the build-side choice must not change that.
func TestJoinCartesianEitherBuildSide(t *testing.T) {
	small := NewRelation("a")
	small.InsertValues(value.Int(1))
	small.InsertValues(value.Int(2))
	big := NewRelation("z")
	for i := 0; i < 9; i++ {
		big.InsertValues(value.Str(fmt.Sprintf("v%d", i)))
	}
	ab := JoinWorkers(small, big, 1)
	ba := JoinWorkers(big, small, 1)
	if ab.Len() != 18 || ba.Len() != 18 {
		t.Fatalf("cartesian sizes = %d, %d, want 18", ab.Len(), ba.Len())
	}
	if !ab.Equal(nestedLoopJoin(small, big)) || !ba.Equal(nestedLoopJoin(big, small)) {
		t.Fatal("cartesian join diverged from nested-loop reference")
	}
}

// The output attribute order must stay left-then-right-extras even when
// the index is built on the left (smaller) side.
func TestJoinAttrOrderWithLeftBuild(t *testing.T) {
	l := NewRelation("x", "k")
	l.InsertValues(value.Int(1), value.Int(7))
	r := NewRelation("k", "y")
	for i := 0; i < 6; i++ {
		r.InsertValues(value.Int(7), value.Int(int64(i)))
	}
	out := JoinWorkers(l, r, 1)
	if got, want := fmt.Sprint(out.Attrs()), "[x k y]"; got != want {
		t.Fatalf("attrs = %s, want %s", got, want)
	}
	if out.Len() != 6 {
		t.Fatalf("len = %d, want 6", out.Len())
	}
}
