package algres

import (
	"fmt"
	"testing"

	"logres/internal/value"
)

// JoinWorkers must produce exactly the serial join for any worker count,
// on inputs large enough to cross the parallel cutoff.
func TestJoinWorkersDeterminism(t *testing.T) {
	l := NewRelation("a", "b")
	r := NewRelation("b", "c")
	for i := int64(0); i < 600; i++ {
		l.InsertValues(value.Int(i), value.Int(i%37))
		r.InsertValues(value.Int(i%37), value.Int(i*3))
	}
	serial := JoinWorkers(l, r, 1)
	for _, workers := range []int{2, 4, 8, 1000} {
		got := JoinWorkers(l, r, workers)
		if !got.Equal(serial) {
			t.Fatalf("workers=%d: %d tuples, serial has %d", workers, got.Len(), serial.Len())
		}
	}
	if Join(l, r).Len() != serial.Len() {
		t.Fatal("Join disagrees with JoinWorkers(…, 1)")
	}
}

// Cartesian product (no shared attributes) through the parallel path.
func TestJoinWorkersProduct(t *testing.T) {
	l := NewRelation("a")
	r := NewRelation("b")
	for i := int64(0); i < 300; i++ {
		l.InsertValues(value.Int(i))
	}
	for i := int64(0); i < 5; i++ {
		r.InsertValues(value.Int(i))
	}
	got := JoinWorkers(l, r, 8)
	if got.Len() != 1500 {
		t.Fatalf("product size %d, want 1500", got.Len())
	}
	if !got.Equal(JoinWorkers(l, r, 1)) {
		t.Fatal("parallel product differs from serial")
	}
}

// Empty sides must not wedge the pool.
func TestJoinWorkersEmpty(t *testing.T) {
	l := NewRelation("a", "b")
	r := NewRelation("b", "c")
	if got := JoinWorkers(l, r, 8); got.Len() != 0 {
		t.Fatalf("empty join produced %d tuples", got.Len())
	}
	l.InsertValues(value.Int(1), value.Int(2))
	if got := JoinWorkers(l, r, 8); got.Len() != 0 {
		t.Fatalf("join with empty right produced %d tuples", got.Len())
	}
}

func BenchmarkJoinWorkers(b *testing.B) {
	l := NewRelation("a", "b")
	r := NewRelation("b", "c")
	for i := int64(0); i < 4096; i++ {
		l.InsertValues(value.Int(i), value.Int(i%97))
		r.InsertValues(value.Int(i%97), value.Int(i*3))
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				JoinWorkers(l, r, workers)
			}
		})
	}
}
