package algres

import (
	"fmt"
	"testing"

	"logres/internal/value"
)

// Differential tests: every vectorized operator must produce a relation
// Equal to its row counterpart (same tuples, same canonical order is
// implied by Relation's keyed storage), on relations mixing value
// kinds, nulls, duplicates-on-key, and empty inputs.

func vecTestRelations() (*Relation, *Relation) {
	l := NewRelation("a", "b", "c")
	for i := 0; i < 25; i++ {
		var b value.Value = value.Int(int64(i % 4))
		if i%7 == 0 {
			b = value.Null{}
		}
		l.InsertValues(value.Int(int64(i)), b, value.Str(fmt.Sprintf("s%d", i%3)))
	}
	r := NewRelation("b", "d")
	for i := 0; i < 13; i++ {
		var b value.Value = value.Int(int64(i % 5))
		if i%6 == 0 {
			b = value.Null{}
		}
		r.InsertValues(b, value.Str(fmt.Sprintf("d%d", i)))
	}
	return l, r
}

func TestVecOperatorsMatchRowOperators(t *testing.T) {
	l, r := vecTestRelations()
	empty := NewRelation("b", "d")

	if got, want := JoinVec(l, r), Join(l, r); !got.Equal(want) {
		t.Fatalf("JoinVec = %d tuples, Join = %d", got.Len(), want.Len())
	}
	if got, want := JoinVec(l, empty), Join(l, empty); !got.Equal(want) {
		t.Fatal("JoinVec on empty right diverged")
	}
	if got, want := AntiJoinVec(l, r), AntiJoin(l, r); !got.Equal(want) {
		t.Fatalf("AntiJoinVec = %d tuples, AntiJoin = %d", got.Len(), want.Len())
	}
	if got, want := AntiJoinVec(l, empty), AntiJoin(l, empty); !got.Equal(want) {
		t.Fatal("AntiJoinVec on empty right diverged")
	}
	for _, v := range []value.Value{value.Int(2), value.Null{}, value.Str("missing")} {
		got, want := SelectEqConstVec(l, "b", v), SelectEqConst(l, "b", v)
		if !got.Equal(want) {
			t.Fatalf("SelectEqConstVec(b, %v) = %d tuples, row = %d", v, got.Len(), want.Len())
		}
	}
	if got, want := SelectEqAttrVec(l, "a", "b"), SelectEqAttr(l, "a", "b"); !got.Equal(want) {
		t.Fatal("SelectEqAttrVec diverged")
	}
	gotP, err1 := ProjectVec(l, "b", "c")
	wantP, err2 := Project(l, "b", "c")
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !gotP.Equal(wantP) {
		t.Fatalf("ProjectVec = %d tuples, Project = %d", gotP.Len(), wantP.Len())
	}
	if _, err := ProjectVec(l, "nope"); err == nil {
		t.Fatal("ProjectVec accepted an unknown attribute")
	}

	// Union/Diff need same-schema relations.
	s := NewRelation("a", "b", "c")
	for i := 20; i < 35; i++ {
		s.InsertValues(value.Int(int64(i)), value.Int(int64(i%4)), value.Str("s0"))
	}
	gotU, err1 := UnionVec(l, s)
	wantU, err2 := Union(l, s)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !gotU.Equal(wantU) {
		t.Fatalf("UnionVec = %d tuples, Union = %d", gotU.Len(), wantU.Len())
	}
	gotD, err1 := DiffVec(l, s)
	wantD, err2 := Diff(l, s)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !gotD.Equal(wantD) {
		t.Fatalf("DiffVec = %d tuples, Diff = %d", gotD.Len(), wantD.Len())
	}
	if _, err := UnionVec(l, r); err == nil {
		t.Fatal("UnionVec accepted mismatched schemas")
	}
}

// The compiled-rule pipeline and the closure operator must produce
// identical results with Vectorize on and off.
func TestVectorizedClosureMatchesRow(t *testing.T) {
	edges := NewRelation("from", "to")
	for i := 0; i < 30; i++ {
		edges.InsertValues(value.Int(int64(i)), value.Int(int64(i+1)))
	}
	edges.InsertValues(value.Int(30), value.Int(0)) // a cycle for good measure

	row, err := TransitiveClosureOpts(edges, "from", "to", Opts{})
	if err != nil {
		t.Fatal(err)
	}
	vec, err := TransitiveClosureOpts(edges, "from", "to", Opts{Vectorize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(row) {
		t.Fatalf("vectorized closure = %d tuples, row = %d", vec.Len(), row.Len())
	}
}
