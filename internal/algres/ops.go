package algres

import (
	"fmt"
	"sort"
	"sync"

	"logres/internal/value"
)

// The extended relational algebra. All operators are pure: they return
// fresh relations.

// Select returns the tuples satisfying pred.
func Select(r *Relation, pred func(value.Tuple) bool) *Relation {
	out := NewRelation(r.attrs...)
	for _, t := range r.Tuples() {
		if pred(t) {
			out.Insert(t)
		}
	}
	return out
}

// SelectEqConst selects tuples whose attribute equals a constant.
func SelectEqConst(r *Relation, attr string, v value.Value) *Relation {
	return Select(r, func(t value.Tuple) bool {
		got, ok := t.Get(attr)
		return ok && value.Equal(got, v)
	})
}

// SelectEqAttr selects tuples where two attributes are equal.
func SelectEqAttr(r *Relation, a, b string) *Relation {
	return Select(r, func(t value.Tuple) bool {
		va, okA := t.Get(a)
		vb, okB := t.Get(b)
		return okA && okB && value.Equal(va, vb)
	})
}

// Project restricts the relation to the given attributes (duplicates
// eliminated, as associations are sets).
func Project(r *Relation, attrs ...string) (*Relation, error) {
	for _, a := range attrs {
		if !r.HasAttr(a) {
			return nil, fmt.Errorf("algres: project: unknown attribute %q", a)
		}
	}
	out := NewRelation(attrs...)
	for _, t := range r.Tuples() {
		fields := make([]value.Field, len(attrs))
		for i, a := range attrs {
			v, _ := t.Get(a)
			fields[i] = value.Field{Label: a, Value: v}
		}
		out.Insert(value.NewTuple(fields...))
	}
	return out, nil
}

// Rename renames attributes according to the mapping.
func Rename(r *Relation, mapping map[string]string) *Relation {
	attrs := make([]string, len(r.attrs))
	for i, a := range r.attrs {
		if n, ok := mapping[a]; ok {
			attrs[i] = n
		} else {
			attrs[i] = a
		}
	}
	out := NewRelation(attrs...)
	for _, t := range r.Tuples() {
		fields := make([]value.Field, t.Len())
		for i := 0; i < t.Len(); i++ {
			f := t.Field(i)
			label := f.Label
			if n, ok := mapping[label]; ok {
				label = n
			}
			fields[i] = value.Field{Label: label, Value: f.Value}
		}
		out.Insert(value.NewTuple(fields...))
	}
	return out
}

// Join computes the natural join: tuples agreeing on all shared
// attributes, concatenated. With no shared attributes it degenerates to
// the Cartesian product.
func Join(l, rR *Relation) *Relation { return JoinWorkers(l, rR, 1) }

// joinParallelCutoff is the left-side size below which JoinWorkers stays
// serial: partitioning tiny probes costs more than it saves.
const joinParallelCutoff = 256

// appendKey appends t's packed join key on the shared attributes to
// buf (reused across tuples: the repeated string-concatenation key
// builder allocated per tuple per probe).
func appendKey(buf []byte, t value.Tuple, shared []string) []byte {
	buf = buf[:0]
	for _, a := range shared {
		v, _ := t.Get(a)
		buf = append(buf, v.Key()...)
		buf = append(buf, 0)
	}
	return buf
}

// JoinWorkers is Join with the probe side partitioned across a worker
// pool. The hash index is built once on the smaller relation and shared
// read-only; each worker probes a contiguous slice of the larger side's
// tuples (taken in canonical order) into a private buffer with a
// private key buffer, and the buffers are merged in partition order.
// The result relation is canonical (a set keyed by tuple identity), so
// it is identical for any worker count and either build side.
func JoinWorkers(l, rR *Relation, workers int) *Relation {
	var shared []string
	for _, a := range l.attrs {
		if rR.HasAttr(a) {
			shared = append(shared, a)
		}
	}
	attrs := append([]string{}, l.attrs...)
	for _, a := range rR.attrs {
		if !l.HasAttr(a) {
			attrs = append(attrs, a)
		}
	}
	out := NewRelation(attrs...)

	// Build on the smaller side, probe the larger: the index costs one
	// map insert per build tuple, the probe side only lookups.
	build, probeRel := rR, l
	buildIsRight := true
	if l.Len() < rR.Len() {
		build, probeRel = l, rR
		buildIsRight = false
	}
	index := make(map[string][]value.Tuple, build.Len())
	var buf []byte
	for _, t := range build.Tuples() {
		buf = appendKey(buf, t, shared)
		index[string(buf)] = append(index[string(buf)], t)
	}

	// combine concatenates a left and a right tuple in output attribute
	// order (left attributes, then right extras), whichever side was
	// probed.
	combine := func(lt, rt value.Tuple) value.Tuple {
		fields := make([]value.Field, 0, len(attrs))
		for i := 0; i < lt.Len(); i++ {
			fields = append(fields, lt.Field(i))
		}
		for i := 0; i < rt.Len(); i++ {
			f := rt.Field(i)
			if !l.HasAttr(f.Label) {
				fields = append(fields, f)
			}
		}
		return value.NewTuple(fields...)
	}
	probe := func(pts []value.Tuple, emit func(value.Tuple)) {
		buf := make([]byte, 0, 64)
		for _, pt := range pts {
			buf = appendKey(buf, pt, shared)
			for _, bt := range index[string(buf)] {
				if buildIsRight {
					emit(combine(pt, bt))
				} else {
					emit(combine(bt, pt))
				}
			}
		}
	}

	probeTuples := probeRel.Tuples()
	if workers > len(probeTuples) {
		workers = len(probeTuples)
	}
	if workers <= 1 || len(probeTuples) < joinParallelCutoff {
		probe(probeTuples, func(t value.Tuple) { out.Insert(t) })
		return out
	}
	parts := make([][]value.Tuple, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*len(probeTuples)/workers, (w+1)*len(probeTuples)/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			probe(probeTuples[lo:hi], func(t value.Tuple) { parts[w] = append(parts[w], t) })
		}(w, lo, hi)
	}
	wg.Wait()
	for _, part := range parts {
		for _, t := range part {
			out.Insert(t)
		}
	}
	return out
}

// AntiJoin returns the tuples of l with no join partner in r (the
// complement used for safe negation).
func AntiJoin(l, rR *Relation) *Relation { return AntiJoinWorkers(l, rR, 1) }

// AntiJoinWorkers is AntiJoin with the probe side partitioned across a
// worker pool, mirroring JoinWorkers: the membership index is built once
// and shared read-only, each worker filters a contiguous slice of the left
// tuples into a private buffer, and the buffers are concatenated in
// partition order — identical to the serial anti-join for any worker
// count.
func AntiJoinWorkers(l, rR *Relation, workers int) *Relation {
	var shared []string
	for _, a := range l.attrs {
		if rR.HasAttr(a) {
			shared = append(shared, a)
		}
	}
	// Membership is asymmetric (which left tuples have partners), so the
	// index is always on the right; only the key building is shared with
	// JoinWorkers' reused-buffer scheme.
	present := make(map[string]bool, rR.Len())
	var buf []byte
	for _, t := range rR.Tuples() {
		buf = appendKey(buf, t, shared)
		present[string(buf)] = true
	}
	out := NewRelation(l.attrs...)
	left := l.Tuples()
	if workers > len(left) {
		workers = len(left)
	}
	if workers <= 1 || len(left) < joinParallelCutoff {
		for _, t := range left {
			buf = appendKey(buf, t, shared)
			if !present[string(buf)] {
				out.Insert(t)
			}
		}
		return out
	}
	parts := make([][]value.Tuple, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*len(left)/workers, (w+1)*len(left)/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			buf := make([]byte, 0, 64)
			for _, t := range left[lo:hi] {
				buf = appendKey(buf, t, shared)
				if !present[string(buf)] {
					parts[w] = append(parts[w], t)
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, part := range parts {
		for _, t := range part {
			out.Insert(t)
		}
	}
	return out
}

// Union computes r ∪ s (schemas must match).
func Union(r, s *Relation) (*Relation, error) {
	if err := sameSchema(r, s); err != nil {
		return nil, err
	}
	out := r.Clone()
	for _, t := range s.Tuples() {
		out.Insert(t)
	}
	return out, nil
}

// Diff computes r − s.
func Diff(r, s *Relation) (*Relation, error) {
	if err := sameSchema(r, s); err != nil {
		return nil, err
	}
	out := NewRelation(r.attrs...)
	for _, t := range r.Tuples() {
		if !s.Has(t) {
			out.Insert(t)
		}
	}
	return out, nil
}

// Intersect computes r ∩ s.
func Intersect(r, s *Relation) (*Relation, error) {
	if err := sameSchema(r, s); err != nil {
		return nil, err
	}
	out := NewRelation(r.attrs...)
	for _, t := range r.Tuples() {
		if s.Has(t) {
			out.Insert(t)
		}
	}
	return out, nil
}

func sameSchema(r, s *Relation) error {
	if len(r.attrs) != len(s.attrs) {
		return fmt.Errorf("algres: schema mismatch: %v vs %v", r.attrs, s.attrs)
	}
	for i := range r.attrs {
		if r.attrs[i] != s.attrs[i] {
			return fmt.Errorf("algres: schema mismatch: %v vs %v", r.attrs, s.attrs)
		}
	}
	return nil
}

// Extend appends a computed attribute.
func Extend(r *Relation, attr string, f func(value.Tuple) value.Value) *Relation {
	attrs := append(append([]string{}, r.attrs...), attr)
	out := NewRelation(attrs...)
	for _, t := range r.Tuples() {
		out.Insert(t.With(attr, f(t)))
	}
	return out
}

// Nest groups tuples by the non-nested attributes and collects the nested
// attributes' sub-tuples into a set-valued attribute `as` (the ν operator
// of NF² algebra).
func Nest(r *Relation, nested []string, as string) (*Relation, error) {
	isNested := map[string]bool{}
	for _, a := range nested {
		if !r.HasAttr(a) {
			return nil, fmt.Errorf("algres: nest: unknown attribute %q", a)
		}
		isNested[a] = true
	}
	var keep []string
	for _, a := range r.attrs {
		if !isNested[a] {
			keep = append(keep, a)
		}
	}
	groups := map[string][]value.Value{}
	reps := map[string]value.Tuple{}
	for _, t := range r.Tuples() {
		kf := make([]value.Field, len(keep))
		for i, a := range keep {
			v, _ := t.Get(a)
			kf[i] = value.Field{Label: a, Value: v}
		}
		keyTuple := value.NewTuple(kf...)
		k := keyTuple.Key()
		reps[k] = keyTuple
		nf := make([]value.Field, len(nested))
		for i, a := range nested {
			v, _ := t.Get(a)
			nf[i] = value.Field{Label: a, Value: v}
		}
		var elem value.Value
		if len(nested) == 1 {
			elem = nf[0].Value
		} else {
			elem = value.NewTuple(nf...)
		}
		groups[k] = append(groups[k], elem)
	}
	out := NewRelation(append(append([]string{}, keep...), as)...)
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out.Insert(reps[k].With(as, value.NewSet(groups[k]...)))
	}
	return out, nil
}

// Unnest flattens a set/multiset/sequence-valued attribute: one output
// tuple per element (the μ operator). Single-attribute elements take the
// name `as`; tuple elements contribute their own components.
func Unnest(r *Relation, attr, as string) (*Relation, error) {
	if !r.HasAttr(attr) {
		return nil, fmt.Errorf("algres: unnest: unknown attribute %q", attr)
	}
	var keep []string
	for _, a := range r.attrs {
		if a != attr {
			keep = append(keep, a)
		}
	}
	out := NewRelation(append(append([]string{}, keep...), as)...)
	for _, t := range r.Tuples() {
		cv, _ := t.Get(attr)
		var elems []value.Value
		switch x := cv.(type) {
		case value.Set:
			elems = x.Elems()
		case value.Multiset:
			elems = x.Elems()
		case value.Sequence:
			elems = x.Elems()
		default:
			return nil, fmt.Errorf("algres: unnest: attribute %q holds %s, not a collection", attr, cv.Kind())
		}
		base := make([]value.Field, len(keep))
		for i, a := range keep {
			v, _ := t.Get(a)
			base[i] = value.Field{Label: a, Value: v}
		}
		for _, el := range elems {
			out.Insert(value.NewTuple(append(append([]value.Field{}, base...), value.Field{Label: as, Value: el})...))
		}
	}
	return out, nil
}

// AggKind enumerates the grouping aggregates.
type AggKind int

// Aggregates.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
)

// GroupAggregate groups by the given attributes and computes one aggregate
// over another attribute into `as`.
func GroupAggregate(r *Relation, groupBy []string, agg AggKind, over, as string) (*Relation, error) {
	for _, a := range append(append([]string{}, groupBy...), over) {
		if !r.HasAttr(a) {
			return nil, fmt.Errorf("algres: group: unknown attribute %q", a)
		}
	}
	type acc struct {
		rep    value.Tuple
		count  int64
		sum    float64
		allInt bool
		isum   int64
		min    value.Value
		max    value.Value
	}
	groups := map[string]*acc{}
	for _, t := range r.Tuples() {
		kf := make([]value.Field, len(groupBy))
		for i, a := range groupBy {
			v, _ := t.Get(a)
			kf[i] = value.Field{Label: a, Value: v}
		}
		keyTuple := value.NewTuple(kf...)
		k := keyTuple.Key()
		g := groups[k]
		if g == nil {
			g = &acc{rep: keyTuple, allInt: true}
			groups[k] = g
		}
		v, _ := t.Get(over)
		g.count++
		if i, ok := v.(value.Int); ok {
			g.isum += int64(i)
			g.sum += float64(i)
		} else if f, ok := v.(value.Real); ok {
			g.allInt = false
			g.sum += float64(f)
		}
		if g.min == nil || value.Compare(v, g.min) < 0 {
			g.min = v
		}
		if g.max == nil || value.Compare(v, g.max) > 0 {
			g.max = v
		}
	}
	out := NewRelation(append(append([]string{}, groupBy...), as)...)
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := groups[k]
		var v value.Value
		switch agg {
		case AggCount:
			v = value.Int(g.count)
		case AggSum:
			if g.allInt {
				v = value.Int(g.isum)
			} else {
				v = value.Real(g.sum)
			}
		case AggMin:
			v = g.min
		case AggMax:
			v = g.max
		}
		out.Insert(g.rep.With(as, v))
	}
	return out, nil
}
