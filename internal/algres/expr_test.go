package algres

import (
	"strings"
	"testing"
	"testing/quick"

	"logres/internal/value"
)

func exprDB() (*DB, map[string][]string) {
	db := NewDB()
	emp := NewRelation("name", "dept", "salary")
	emp.InsertValues(value.Str("ann"), value.Str("eng"), value.Int(90))
	emp.InsertValues(value.Str("bob"), value.Str("eng"), value.Int(70))
	emp.InsertValues(value.Str("cho"), value.Str("ops"), value.Int(80))
	dept := NewRelation("dept", "city")
	dept.InsertValues(value.Str("eng"), value.Str("milano"))
	dept.InsertValues(value.Str("ops"), value.Str("roma"))
	db.Set("emp", emp)
	db.Set("dept", dept)
	cat := map[string][]string{
		"emp":  {"name", "dept", "salary"},
		"dept": {"dept", "city"},
	}
	return db, cat
}

func TestExprEval(t *testing.T) {
	db, _ := exprDB()
	e := ProjectE{
		Input: SelectE{
			Input: JoinE{L: Scan{Name: "emp"}, R: Scan{Name: "dept"}},
			Cond: And{
				L: EqConst{Attr: "city", Val: value.Str("milano")},
				R: Cmp{Op: ">", Attr: "salary", Val: value.Int(75)},
			},
		},
		Cols: []string{"name"},
	}
	out, err := e.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("result = %s", out)
	}
	if v, _ := out.Tuples()[0].Get("name"); v != value.Str("ann") {
		t.Fatalf("result = %s", out)
	}
}

func TestExprConditions(t *testing.T) {
	tup := value.NewTuple(
		value.Field{Label: "a", Value: value.Int(1)},
		value.Field{Label: "b", Value: value.Int(1)},
		value.Field{Label: "c", Value: value.Int(5)},
	)
	cases := []struct {
		c    Cond
		want bool
	}{
		{EqConst{Attr: "a", Val: value.Int(1)}, true},
		{EqConst{Attr: "a", Val: value.Int(2)}, false},
		{EqAttr{A: "a", B: "b"}, true},
		{EqAttr{A: "a", B: "c"}, false},
		{Cmp{Op: "<", Attr: "c", Val: value.Int(9)}, true},
		{Cmp{Op: ">=", Attr: "c", Val: value.Int(5)}, true},
		{Cmp{Op: "!=", Attr: "c", Val: value.Int(5)}, false},
		{And{L: EqAttr{A: "a", B: "b"}, R: Cmp{Op: ">", Attr: "c", Val: value.Int(1)}}, true},
		{Or{L: EqConst{Attr: "a", Val: value.Int(9)}, R: EqAttr{A: "a", B: "b"}}, true},
		{Not{C: EqAttr{A: "a", B: "b"}}, false},
	}
	for _, c := range cases {
		if got := c.c.Holds(tup); got != c.want {
			t.Errorf("%s = %v, want %v", c.c, got, c.want)
		}
	}
}

func TestExprSetOpsAndRename(t *testing.T) {
	db, _ := exprDB()
	eng := SelectE{Input: Scan{Name: "emp"}, Cond: EqConst{Attr: "dept", Val: value.Str("eng")}}
	rich := SelectE{Input: Scan{Name: "emp"}, Cond: Cmp{Op: ">=", Attr: "salary", Val: value.Int(80)}}
	u, err := (UnionE{L: eng, R: rich}).Eval(db)
	if err != nil || u.Len() != 3 {
		t.Fatalf("union = %v (%v)", u.Len(), err)
	}
	d, err := (DiffE{L: eng, R: rich}).Eval(db)
	if err != nil || d.Len() != 1 {
		t.Fatalf("diff = %v (%v)", d.Len(), err)
	}
	i, err := (IntersectE{L: eng, R: rich}).Eval(db)
	if err != nil || i.Len() != 1 {
		t.Fatalf("intersect = %v (%v)", i.Len(), err)
	}
	rn, err := (RenameE{Input: Scan{Name: "dept"}, Mapping: map[string]string{"city": "location"}}).Eval(db)
	if err != nil || !rn.HasAttr("location") {
		t.Fatalf("rename = %v (%v)", rn.Attrs(), err)
	}
}

func TestExprGroupNest(t *testing.T) {
	db, _ := exprDB()
	g, err := (GroupE{Input: Scan{Name: "emp"}, By: []string{"dept"}, Agg: AggSum, Over: "salary", As: "total"}).Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range g.Tuples() {
		d, _ := tup.Get("dept")
		total, _ := tup.Get("total")
		if d == value.Str("eng") && total != value.Int(160) {
			t.Fatalf("eng total = %v", total)
		}
	}
	n, err := (NestE{Input: Scan{Name: "emp"}, Nested: []string{"name", "salary"}, As: "staff"}).Eval(db)
	if err != nil || n.Len() != 2 {
		t.Fatalf("nest = %v (%v)", n.Len(), err)
	}
	un, err := (UnnestE{Input: NestE{Input: Scan{Name: "emp"}, Nested: []string{"name"}, As: "g"}, Attr: "g", As: "name"}).Eval(db)
	if err != nil || un.Len() != 3 {
		t.Fatalf("unnest = %v (%v)", un.Len(), err)
	}
}

func TestExprFixClosure(t *testing.T) {
	db := NewDB()
	edge := NewRelation("a", "b")
	for i := int64(0); i < 4; i++ {
		edge.InsertValues(value.Int(i), value.Int(i+1))
	}
	db.Set("edge", edge)
	tc := FixE{
		Name: "tc",
		Base: Scan{Name: "edge"},
		Step: RenameE{
			Input: ProjectE{
				Input: JoinE{
					L: RenameE{Input: Scan{Name: "tc"}, Mapping: map[string]string{"b": "m"}},
					R: RenameE{Input: Scan{Name: "edge"}, Mapping: map[string]string{"a": "m"}},
				},
				Cols: []string{"a", "b"},
			},
			Mapping: map[string]string{},
		},
	}
	out, err := tc.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 {
		t.Fatalf("closure = %d, want 10", out.Len())
	}
}

func TestExprAttrs(t *testing.T) {
	_, cat := exprDB()
	cases := []struct {
		e    Expr
		want string
	}{
		{Scan{Name: "emp"}, "name,dept,salary"},
		{ProjectE{Input: Scan{Name: "emp"}, Cols: []string{"name"}}, "name"},
		{JoinE{L: Scan{Name: "emp"}, R: Scan{Name: "dept"}}, "name,dept,salary,city"},
		{RenameE{Input: Scan{Name: "dept"}, Mapping: map[string]string{"dept": "d"}}, "d,city"},
		{NestE{Input: Scan{Name: "emp"}, Nested: []string{"name"}, As: "g"}, "dept,salary,g"},
		{UnnestE{Input: Scan{Name: "emp"}, Attr: "salary", As: "s"}, "name,dept,s"},
		{GroupE{Input: Scan{Name: "emp"}, By: []string{"dept"}, Agg: AggCount, Over: "name", As: "n"}, "dept,n"},
	}
	for _, c := range cases {
		got, err := c.e.Attrs(cat)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(got, ",") != c.want {
			t.Errorf("%s attrs = %v, want %s", c.e, got, c.want)
		}
	}
	if _, err := (Scan{Name: "nope"}).Attrs(cat); err == nil {
		t.Fatal("unknown scan attrs accepted")
	}
}

func TestOptimizerPushdownOverJoin(t *testing.T) {
	_, cat := exprDB()
	e := SelectE{
		Input: JoinE{L: Scan{Name: "emp"}, R: Scan{Name: "dept"}},
		Cond: And{
			L: EqConst{Attr: "salary", Val: value.Int(90)},     // left side only
			R: EqConst{Attr: "city", Val: value.Str("milano")}, // right side only
		},
	}
	opt := Optimize(e, cat)
	s := opt.String()
	// The selections must sit below the join now.
	if !strings.Contains(s, "join") {
		t.Fatalf("optimized = %s", s)
	}
	if strings.HasPrefix(s, "select") {
		t.Fatalf("selection not pushed below join: %s", s)
	}
	// Results agree.
	db, _ := exprDB()
	r1, err := e.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := opt.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2) {
		t.Fatalf("optimizer changed the result:\n%s\nvs\n%s", r1, r2)
	}
}

func TestOptimizerCascades(t *testing.T) {
	_, cat := exprDB()
	e := SelectE{
		Input: SelectE{
			Input: Scan{Name: "emp"},
			Cond:  Cmp{Op: ">", Attr: "salary", Val: value.Int(60)},
		},
		Cond: EqConst{Attr: "dept", Val: value.Str("eng")},
	}
	opt := Optimize(e, cat)
	if strings.Count(opt.String(), "select") != 1 {
		t.Fatalf("selection cascade not merged: %s", opt)
	}
	p := ProjectE{
		Input: ProjectE{Input: Scan{Name: "emp"}, Cols: []string{"name", "dept"}},
		Cols:  []string{"name"},
	}
	popt := Optimize(p, cat)
	if strings.Count(popt.String(), "project") != 1 {
		t.Fatalf("projection cascade not fused: %s", popt)
	}
}

func TestOptimizerProjectionPushdown(t *testing.T) {
	db, cat := exprDB()
	e := ProjectE{
		Input: JoinE{L: Scan{Name: "emp"}, R: Scan{Name: "dept"}},
		Cols:  []string{"name", "city"},
	}
	opt := Optimize(e, cat)
	// Each join side should be narrowed (salary dropped on the left).
	if !strings.Contains(opt.String(), "project[name,dept](emp)") {
		t.Fatalf("left side not narrowed: %s", opt)
	}
	r1, err := e.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := opt.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2) {
		t.Fatal("projection pushdown changed the result")
	}
}

func TestOptimizerSetOpPushdown(t *testing.T) {
	db, cat := exprDB()
	e := SelectE{
		Input: UnionE{L: Scan{Name: "emp"}, R: Scan{Name: "emp"}},
		Cond:  EqConst{Attr: "dept", Val: value.Str("eng")},
	}
	opt := Optimize(e, cat)
	if strings.HasPrefix(opt.String(), "select") {
		t.Fatalf("selection not pushed into union: %s", opt)
	}
	r1, _ := e.Eval(db)
	r2, err := opt.Eval(db)
	if err != nil || !r1.Equal(r2) {
		t.Fatalf("set-op pushdown wrong (%v)", err)
	}
}

// Property: optimization preserves results for random select-join-project
// pipelines.
func TestOptimizerSoundnessProperty(t *testing.T) {
	db, cat := exprDB()
	f := func(sal uint8, pickCity, pickProj bool) bool {
		var cond Cond = Cmp{Op: ">", Attr: "salary", Val: value.Int(int64(sal % 100))}
		if pickCity {
			cond = And{L: cond, R: EqConst{Attr: "city", Val: value.Str("milano")}}
		}
		var e Expr = SelectE{
			Input: JoinE{L: Scan{Name: "emp"}, R: Scan{Name: "dept"}},
			Cond:  cond,
		}
		if pickProj {
			e = ProjectE{Input: e, Cols: []string{"name", "city"}}
		}
		opt := Optimize(e, cat)
		r1, err1 := e.Eval(db)
		r2, err2 := opt.Eval(db)
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Equal(r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizerInsideFix(t *testing.T) {
	db := NewDB()
	edge := NewRelation("a", "b")
	for i := int64(0); i < 5; i++ {
		edge.InsertValues(value.Int(i), value.Int(i+1))
	}
	db.Set("edge", edge)
	cat := map[string][]string{"edge": {"a", "b"}}
	tc := FixE{
		Name: "tc",
		Base: Scan{Name: "edge"},
		Step: SelectE{ // a silly always-true selection to be rewritten
			Input: SelectE{
				Input: ProjectE{
					Input: JoinE{
						L: RenameE{Input: Scan{Name: "tc"}, Mapping: map[string]string{"b": "m"}},
						R: RenameE{Input: Scan{Name: "edge"}, Mapping: map[string]string{"a": "m"}},
					},
					Cols: []string{"a", "b"},
				},
				Cond: Cmp{Op: ">=", Attr: "a", Val: value.Int(0)},
			},
			Cond: Cmp{Op: ">=", Attr: "b", Val: value.Int(0)},
		},
	}
	opt := Optimize(tc, cat)
	r1, err1 := tc.Eval(db)
	r2, err2 := opt.Eval(db)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !r1.Equal(r2) {
		t.Fatal("fix optimization changed the result")
	}
}
