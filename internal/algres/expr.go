package algres

import (
	"fmt"
	"sort"
	"strings"

	"logres/internal/value"
)

// Composable algebra expressions — the query-language face of the ALGRES
// substrate. An Expr evaluates against a DB to a relation; the liberal
// closure operator is the Fix expression. The optimizer in optimize.go
// rewrites expression trees (selection pushdown, projection fusion,
// cascade merging) before evaluation.

// Expr is an algebra expression.
type Expr interface {
	// Eval computes the expression over the database.
	Eval(db *DB) (*Relation, error)
	// Attrs reports the output attributes given a catalog of base
	// relation schemas.
	Attrs(catalog map[string][]string) ([]string, error)
	String() string
}

// Cond is a selection condition.
type Cond interface {
	Holds(t value.Tuple) bool
	// CondAttrs lists the attributes the condition reads.
	CondAttrs() []string
	String() string
}

// EqConst selects attr = value.
type EqConst struct {
	Attr string
	Val  value.Value
}

// EqAttr selects a = b.
type EqAttr struct{ A, B string }

// Cmp selects attr OP value for OP ∈ {<, <=, >, >=, !=}.
type Cmp struct {
	Op   string
	Attr string
	Val  value.Value
}

// And conjoins conditions.
type And struct{ L, R Cond }

// Or disjoins conditions.
type Or struct{ L, R Cond }

// Not negates a condition.
type Not struct{ C Cond }

func (c EqConst) Holds(t value.Tuple) bool {
	v, ok := t.Get(c.Attr)
	return ok && value.Equal(v, c.Val)
}
func (c EqConst) CondAttrs() []string { return []string{c.Attr} }
func (c EqConst) String() string      { return c.Attr + " = " + c.Val.String() }

func (c EqAttr) Holds(t value.Tuple) bool {
	a, okA := t.Get(c.A)
	b, okB := t.Get(c.B)
	return okA && okB && value.Equal(a, b)
}
func (c EqAttr) CondAttrs() []string { return []string{c.A, c.B} }
func (c EqAttr) String() string      { return c.A + " = " + c.B }

func (c Cmp) Holds(t value.Tuple) bool {
	v, ok := t.Get(c.Attr)
	if !ok {
		return false
	}
	cmp := value.Compare(v, c.Val)
	switch c.Op {
	case "<":
		return cmp < 0
	case "<=":
		return cmp <= 0
	case ">":
		return cmp > 0
	case ">=":
		return cmp >= 0
	case "!=":
		return cmp != 0
	}
	return false
}
func (c Cmp) CondAttrs() []string { return []string{c.Attr} }
func (c Cmp) String() string      { return c.Attr + " " + c.Op + " " + c.Val.String() }

func (c And) Holds(t value.Tuple) bool { return c.L.Holds(t) && c.R.Holds(t) }
func (c And) CondAttrs() []string      { return append(c.L.CondAttrs(), c.R.CondAttrs()...) }
func (c And) String() string           { return "(" + c.L.String() + " and " + c.R.String() + ")" }

func (c Or) Holds(t value.Tuple) bool { return c.L.Holds(t) || c.R.Holds(t) }
func (c Or) CondAttrs() []string      { return append(c.L.CondAttrs(), c.R.CondAttrs()...) }
func (c Or) String() string           { return "(" + c.L.String() + " or " + c.R.String() + ")" }

func (c Not) Holds(t value.Tuple) bool { return !c.C.Holds(t) }
func (c Not) CondAttrs() []string      { return c.C.CondAttrs() }
func (c Not) String() string           { return "not " + c.C.String() }

// Scan reads a base relation.
type Scan struct{ Name string }

// SelectE filters by a condition.
type SelectE struct {
	Input Expr
	Cond  Cond
}

// ProjectE projects onto attributes.
type ProjectE struct {
	Input Expr
	Cols  []string
}

// RenameE renames attributes.
type RenameE struct {
	Input   Expr
	Mapping map[string]string
}

// JoinE is the natural join. Workers > 1 partitions the probe side across
// a worker pool (see JoinWorkers); the result is identical either way.
type JoinE struct {
	L, R    Expr
	Workers int
}

// UnionE, DiffE, IntersectE are the set operations.
type UnionE struct{ L, R Expr }

// DiffE is set difference.
type DiffE struct{ L, R Expr }

// IntersectE is set intersection.
type IntersectE struct{ L, R Expr }

// NestE nests attributes into a set-valued attribute.
type NestE struct {
	Input  Expr
	Nested []string
	As     string
}

// UnnestE flattens a collection-valued attribute.
type UnnestE struct {
	Input Expr
	Attr  string
	As    string
}

// GroupE groups and aggregates.
type GroupE struct {
	Input Expr
	By    []string
	Agg   AggKind
	Over  string
	As    string
}

// FixE is the liberal closure operator: the named relation starts as
// Base's value and Step is iterated (it may Scan the name) with its
// results unioned in, until fixpoint.
type FixE struct {
	Name string
	Base Expr
	Step Expr
	// MaxSteps bounds iteration; 0 means the package default.
	MaxSteps int
}

func (e Scan) Eval(db *DB) (*Relation, error) {
	r, ok := db.Get(e.Name)
	if !ok {
		return nil, fmt.Errorf("algres: unknown relation %q", e.Name)
	}
	return r, nil
}

func (e SelectE) Eval(db *DB) (*Relation, error) {
	in, err := e.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	return Select(in, e.Cond.Holds), nil
}

func (e ProjectE) Eval(db *DB) (*Relation, error) {
	in, err := e.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	return Project(in, e.Cols...)
}

func (e RenameE) Eval(db *DB) (*Relation, error) {
	in, err := e.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	return Rename(in, e.Mapping), nil
}

func (e JoinE) Eval(db *DB) (*Relation, error) {
	l, err := e.L.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := e.R.Eval(db)
	if err != nil {
		return nil, err
	}
	return JoinWorkers(l, r, e.Workers), nil
}

func (e UnionE) Eval(db *DB) (*Relation, error) { return evalBinary(db, e.L, e.R, Union) }
func (e DiffE) Eval(db *DB) (*Relation, error)  { return evalBinary(db, e.L, e.R, Diff) }
func (e IntersectE) Eval(db *DB) (*Relation, error) {
	return evalBinary(db, e.L, e.R, Intersect)
}

func evalBinary(db *DB, le, re Expr, op func(*Relation, *Relation) (*Relation, error)) (*Relation, error) {
	l, err := le.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := re.Eval(db)
	if err != nil {
		return nil, err
	}
	return op(l, r)
}

func (e NestE) Eval(db *DB) (*Relation, error) {
	in, err := e.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	return Nest(in, e.Nested, e.As)
}

func (e UnnestE) Eval(db *DB) (*Relation, error) {
	in, err := e.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	return Unnest(in, e.Attr, e.As)
}

func (e GroupE) Eval(db *DB) (*Relation, error) {
	in, err := e.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	return GroupAggregate(in, e.By, e.Agg, e.Over, e.As)
}

func (e FixE) Eval(db *DB) (*Relation, error) {
	base, err := e.Base.Eval(db)
	if err != nil {
		return nil, err
	}
	work := db.Clone()
	work.Set(e.Name, base.Clone())
	out, err := Fixpoint(work, func(cur *DB) (map[string]*Relation, error) {
		step, err := e.Step.Eval(cur)
		if err != nil {
			return nil, err
		}
		return map[string]*Relation{e.Name: step}, nil
	}, e.MaxSteps)
	if err != nil {
		return nil, err
	}
	r, _ := out.Get(e.Name)
	return r, nil
}

// Attrs implementations.

func (e Scan) Attrs(cat map[string][]string) ([]string, error) {
	attrs, ok := cat[e.Name]
	if !ok {
		return nil, fmt.Errorf("algres: unknown relation %q", e.Name)
	}
	return attrs, nil
}

func (e SelectE) Attrs(cat map[string][]string) ([]string, error) { return e.Input.Attrs(cat) }

func (e ProjectE) Attrs(map[string][]string) ([]string, error) { return e.Cols, nil }

func (e RenameE) Attrs(cat map[string][]string) ([]string, error) {
	in, err := e.Input.Attrs(cat)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(in))
	for i, a := range in {
		if n, ok := e.Mapping[a]; ok {
			out[i] = n
		} else {
			out[i] = a
		}
	}
	return out, nil
}

func (e JoinE) Attrs(cat map[string][]string) ([]string, error) {
	l, err := e.L.Attrs(cat)
	if err != nil {
		return nil, err
	}
	r, err := e.R.Attrs(cat)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	for _, a := range append(append([]string{}, l...), r...) {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out, nil
}

func (e UnionE) Attrs(cat map[string][]string) ([]string, error)     { return e.L.Attrs(cat) }
func (e DiffE) Attrs(cat map[string][]string) ([]string, error)      { return e.L.Attrs(cat) }
func (e IntersectE) Attrs(cat map[string][]string) ([]string, error) { return e.L.Attrs(cat) }

func (e NestE) Attrs(cat map[string][]string) ([]string, error) {
	in, err := e.Input.Attrs(cat)
	if err != nil {
		return nil, err
	}
	nested := map[string]bool{}
	for _, a := range e.Nested {
		nested[a] = true
	}
	var out []string
	for _, a := range in {
		if !nested[a] {
			out = append(out, a)
		}
	}
	return append(out, e.As), nil
}

func (e UnnestE) Attrs(cat map[string][]string) ([]string, error) {
	in, err := e.Input.Attrs(cat)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, a := range in {
		if a != e.Attr {
			out = append(out, a)
		}
	}
	return append(out, e.As), nil
}

func (e GroupE) Attrs(map[string][]string) ([]string, error) {
	return append(append([]string{}, e.By...), e.As), nil
}

func (e FixE) Attrs(cat map[string][]string) ([]string, error) { return e.Base.Attrs(cat) }

// String renderings.

func (e Scan) String() string { return e.Name }
func (e SelectE) String() string {
	return "select[" + e.Cond.String() + "](" + e.Input.String() + ")"
}
func (e ProjectE) String() string {
	return "project[" + strings.Join(e.Cols, ",") + "](" + e.Input.String() + ")"
}
func (e RenameE) String() string {
	pairs := make([]string, 0, len(e.Mapping))
	for k, v := range e.Mapping {
		pairs = append(pairs, k+"->"+v)
	}
	sort.Strings(pairs)
	return "rename[" + strings.Join(pairs, ",") + "](" + e.Input.String() + ")"
}
func (e JoinE) String() string      { return "(" + e.L.String() + " join " + e.R.String() + ")" }
func (e UnionE) String() string     { return "(" + e.L.String() + " union " + e.R.String() + ")" }
func (e DiffE) String() string      { return "(" + e.L.String() + " minus " + e.R.String() + ")" }
func (e IntersectE) String() string { return "(" + e.L.String() + " intersect " + e.R.String() + ")" }
func (e NestE) String() string {
	return "nest[" + strings.Join(e.Nested, ",") + " as " + e.As + "](" + e.Input.String() + ")"
}
func (e UnnestE) String() string {
	return "unnest[" + e.Attr + " as " + e.As + "](" + e.Input.String() + ")"
}
func (e GroupE) String() string {
	return fmt.Sprintf("group[%s; agg%d(%s) as %s](%s)",
		strings.Join(e.By, ","), e.Agg, e.Over, e.As, e.Input.String())
}
func (e FixE) String() string {
	return "fix[" + e.Name + " := " + e.Base.String() + "; " + e.Step.String() + "]"
}
