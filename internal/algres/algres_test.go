package algres

import (
	"strings"
	"testing"
	"testing/quick"

	"logres/internal/parser"
	"logres/internal/value"
)

func edgeRel(pairs ...[2]int64) *Relation {
	r := NewRelation("src", "dst")
	for _, p := range pairs {
		r.InsertValues(value.Int(p[0]), value.Int(p[1]))
	}
	return r
}

func TestRelationBasics(t *testing.T) {
	r := NewRelation("a", "b")
	if !r.InsertValues(value.Int(1), value.Str("x")) {
		t.Fatal("insert reported no growth")
	}
	if r.InsertValues(value.Int(1), value.Str("x")) {
		t.Fatal("duplicate insert grew the relation")
	}
	if r.Len() != 1 || !r.HasAttr("a") || r.HasAttr("z") {
		t.Fatal("basic accessors wrong")
	}
	// Insertion normalizes attribute order.
	r.Insert(value.NewTuple(
		value.Field{Label: "b", Value: value.Str("y")},
		value.Field{Label: "a", Value: value.Int(2)},
	))
	tup := r.Tuples()[0]
	if tup.Field(0).Label != "a" {
		t.Fatalf("normalization failed: %v", tup)
	}
	cp := r.Clone()
	cp.InsertValues(value.Int(9), value.Str("z"))
	if r.Len() == cp.Len() {
		t.Fatal("clone shares storage")
	}
	if !r.Equal(r.Clone()) || r.Equal(cp) {
		t.Fatal("Equal wrong")
	}
}

func TestSelectProjectRename(t *testing.T) {
	r := edgeRel([2]int64{1, 2}, [2]int64{2, 3}, [2]int64{1, 1})
	sel := SelectEqConst(r, "src", value.Int(1))
	if sel.Len() != 2 {
		t.Fatalf("select = %d", sel.Len())
	}
	eq := SelectEqAttr(r, "src", "dst")
	if eq.Len() != 1 {
		t.Fatalf("selectEqAttr = %d", eq.Len())
	}
	p, err := Project(r, "src")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 { // duplicates eliminated
		t.Fatalf("project = %d", p.Len())
	}
	if _, err := Project(r, "zzz"); err == nil {
		t.Fatal("bad project accepted")
	}
	rn := Rename(r, map[string]string{"src": "from"})
	if !rn.HasAttr("from") || rn.HasAttr("src") {
		t.Fatal("rename wrong")
	}
}

func TestJoinAndAntiJoin(t *testing.T) {
	l := edgeRel([2]int64{1, 2}, [2]int64{2, 3})
	r := NewRelation("dst", "w")
	r.InsertValues(value.Int(2), value.Str("x"))
	j := Join(l, r)
	if j.Len() != 1 {
		t.Fatalf("join = %d", j.Len())
	}
	tup := j.Tuples()[0]
	if v, _ := tup.Get("w"); v != value.Str("x") {
		t.Fatalf("join tuple = %v", tup)
	}
	// Cartesian product when no shared attributes.
	q := NewRelation("z")
	q.InsertValues(value.Int(7))
	q.InsertValues(value.Int(8))
	prod := Join(l, q)
	if prod.Len() != 4 {
		t.Fatalf("product = %d", prod.Len())
	}
	aj := AntiJoin(l, r)
	if aj.Len() != 1 {
		t.Fatalf("antijoin = %d", aj.Len())
	}
	if v, _ := aj.Tuples()[0].Get("dst"); v != value.Int(3) {
		t.Fatalf("antijoin tuple = %v", aj.Tuples()[0])
	}
}

func TestSetOperations(t *testing.T) {
	a := edgeRel([2]int64{1, 2}, [2]int64{2, 3})
	b := edgeRel([2]int64{2, 3}, [2]int64{3, 4})
	u, err := Union(a, b)
	if err != nil || u.Len() != 3 {
		t.Fatalf("union = %v %v", u.Len(), err)
	}
	d, err := Diff(a, b)
	if err != nil || d.Len() != 1 {
		t.Fatalf("diff = %v %v", d.Len(), err)
	}
	i, err := Intersect(a, b)
	if err != nil || i.Len() != 1 {
		t.Fatalf("intersect = %v %v", i.Len(), err)
	}
	bad := NewRelation("x")
	if _, err := Union(a, bad); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

func TestExtend(t *testing.T) {
	r := edgeRel([2]int64{1, 2})
	e := Extend(r, "sum", func(t value.Tuple) value.Value {
		a, _ := t.Get("src")
		b, _ := t.Get("dst")
		return value.Int(int64(a.(value.Int)) + int64(b.(value.Int)))
	})
	if v, _ := e.Tuples()[0].Get("sum"); v != value.Int(3) {
		t.Fatalf("extend = %v", e.Tuples()[0])
	}
}

func TestNestUnnestRoundTrip(t *testing.T) {
	r := edgeRel([2]int64{1, 2}, [2]int64{1, 3}, [2]int64{2, 4})
	n, err := Nest(r, []string{"dst"}, "dsts")
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 2 {
		t.Fatalf("nest = %d groups", n.Len())
	}
	for _, tup := range n.Tuples() {
		src, _ := tup.Get("src")
		ds, _ := tup.Get("dsts")
		set := ds.(value.Set)
		if src == value.Int(1) && set.Len() != 2 {
			t.Fatalf("group 1 = %v", set)
		}
	}
	u, err := Unnest(n, "dsts", "dst")
	if err != nil {
		t.Fatal(err)
	}
	// Round trip restores the original tuples (module attribute order).
	back, err := Project(u, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("unnest = %d", back.Len())
	}
	if _, err := Unnest(r, "src", "x"); err == nil {
		t.Fatal("unnest of scalar accepted")
	}
}

// Property: nest then unnest preserves the tuple set for random binary
// relations.
func TestNestUnnestProperty(t *testing.T) {
	f := func(pairs [][2]int8) bool {
		r := NewRelation("src", "dst")
		for _, p := range pairs {
			r.InsertValues(value.Int(int64(p[0])), value.Int(int64(p[1])))
		}
		n, err := Nest(r, []string{"dst"}, "g")
		if err != nil {
			return false
		}
		u, err := Unnest(n, "g", "dst")
		if err != nil {
			return false
		}
		back, err := Project(u, "src", "dst")
		if err != nil {
			return false
		}
		return back.Equal(r) || (r.Len() == 0 && back.Len() == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupAggregate(t *testing.T) {
	r := edgeRel([2]int64{1, 2}, [2]int64{1, 4}, [2]int64{2, 10})
	for _, tc := range []struct {
		agg  AggKind
		want map[int64]int64
	}{
		{AggCount, map[int64]int64{1: 2, 2: 1}},
		{AggSum, map[int64]int64{1: 6, 2: 10}},
		{AggMin, map[int64]int64{1: 2, 2: 10}},
		{AggMax, map[int64]int64{1: 4, 2: 10}},
	} {
		g, err := GroupAggregate(r, []string{"src"}, tc.agg, "dst", "v")
		if err != nil {
			t.Fatal(err)
		}
		for _, tup := range g.Tuples() {
			src, _ := tup.Get("src")
			v, _ := tup.Get("v")
			if want := tc.want[int64(src.(value.Int))]; v != value.Int(want) {
				t.Errorf("agg %v group %v = %v, want %d", tc.agg, src, v, want)
			}
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	edges := edgeRel([2]int64{1, 2}, [2]int64{2, 3}, [2]int64{3, 4})
	tc, err := TransitiveClosure(edges, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if tc.Len() != 6 {
		t.Fatalf("closure = %d, want 6", tc.Len())
	}
	probe := NewRelation("src", "dst")
	probe.InsertValues(value.Int(1), value.Int(4))
	if !tc.Has(probe.Tuples()[0]) {
		t.Fatal("1->4 missing")
	}
}

func TestFixpointDivergenceGuard(t *testing.T) {
	db := NewDB()
	counterRel := NewRelation("n")
	counterRel.InsertValues(value.Int(0))
	db.Set("n", counterRel)
	_, err := Fixpoint(db, func(cur *DB) (map[string]*Relation, error) {
		n, _ := cur.Get("n")
		out := NewRelation("n")
		for _, t := range n.Tuples() {
			v, _ := t.Get("n")
			out.InsertValues(value.Int(int64(v.(value.Int)) + 1))
		}
		return map[string]*Relation{"n": out}, nil
	}, 10)
	if err == nil || !strings.Contains(err.Error(), "converge") {
		t.Fatalf("divergence not caught: %v", err)
	}
}

func compileTC(t *testing.T) *RuleProgram {
	t.Helper()
	rules, err := parser.ParseProgram(`
tc(a: X, b: Y) <- edge(a: X, b: Y).
tc(a: X, b: Z) <- tc(a: X, b: Y), edge(a: Y, b: Z).
`)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := CompileRules(map[string][]string{
		"edge": {"a", "b"},
		"tc":   {"a", "b"},
	}, rules)
	if err != nil {
		t.Fatal(err)
	}
	return rp
}

func chainDB(n int) *DB {
	db := NewDB()
	e := NewRelation("a", "b")
	for i := 0; i < n; i++ {
		e.InsertValues(value.Int(int64(i)), value.Int(int64(i+1)))
	}
	db.Set("edge", e)
	return db
}

func TestCompiledRulesNaive(t *testing.T) {
	rp := compileTC(t)
	out, err := rp.EvalNaive(chainDB(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	tc, _ := out.Get("tc")
	if tc.Len() != 10 { // 4+3+2+1
		t.Fatalf("tc = %d, want 10", tc.Len())
	}
}

func TestCompiledRulesSemiNaiveAgrees(t *testing.T) {
	rp := compileTC(t)
	n, err := rp.EvalNaive(chainDB(6), 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := rp.EvalSemiNaive(chainDB(6), 0)
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := n.Get("tc")
	ts, _ := s.Get("tc")
	if !tn.Equal(ts) {
		t.Fatalf("naive %d vs semi-naive %d", tn.Len(), ts.Len())
	}
}

func TestCompiledNegationAndComparison(t *testing.T) {
	rules, err := parser.ParseProgram(`
big(a: X) <- node(a: X), X > 2, not small(a: X).
`)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := CompileRules(map[string][]string{
		"node": {"a"}, "small": {"a"}, "big": {"a"},
	}, rules)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	nodes := NewRelation("a")
	for i := int64(1); i <= 5; i++ {
		nodes.InsertValues(value.Int(i))
	}
	small := NewRelation("a")
	small.InsertValues(value.Int(4))
	db.Set("node", nodes)
	db.Set("small", small)
	out, err := rp.EvalNaive(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	big, _ := out.Get("big")
	if big.Len() != 2 { // 3 and 5
		t.Fatalf("big = %d: %s", big.Len(), big)
	}
}

func TestCompiledConstantsAndDuplicateVars(t *testing.T) {
	rules, err := parser.ParseProgram(`
loop(a: X) <- edge(a: X, b: X).
fromone(b: Y) <- edge(a: 1, b: Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := CompileRules(map[string][]string{
		"edge": {"a", "b"}, "loop": {"a"}, "fromone": {"b"},
	}, rules)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	e := edgeRel([2]int64{1, 2}, [2]int64{3, 3})
	db.Set("edge", Rename(e, map[string]string{"src": "a", "dst": "b"}))
	out, err := rp.EvalNaive(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	loop, _ := out.Get("loop")
	if loop.Len() != 1 {
		t.Fatalf("loop = %d", loop.Len())
	}
	f1, _ := out.Get("fromone")
	if f1.Len() != 1 {
		t.Fatalf("fromone = %d", f1.Len())
	}
}

func TestCompilerRejections(t *testing.T) {
	schemas := map[string][]string{"p": {"a"}, "q": {"a"}}
	for _, src := range []string{
		`p(a: X) <- q(a: Y).`,              // unsafe head
		`not p(a: X) <- q(a: X).`,          // deletion head
		`<- q(a: X).`,                      // denial
		`p(a: X) <- q(a: X), not r(a: X).`, // unknown relation
	} {
		rules, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := CompileRules(schemas, rules); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}
