package algres

import "fmt"

// The liberal closure operator. ALGRES exposes a fixpoint construct whose
// body is an arbitrary algebra expression over the database; the paper
// ("the very liberal structure of the closure operation in ALGRES makes
// it possible to change the semantics of rules very easily") relies on it
// to prototype the various rule semantics. Step receives the current
// database and returns the relations to merge; Fixpoint iterates to
// convergence.

// Opts configures closure evaluation. The zero value is the serial
// default.
type Opts struct {
	// MaxSteps bounds fixpoint iteration (0 = the package default, 1e6).
	MaxSteps int
	// JoinWorkers is the worker count threaded into every join and
	// anti-join (≤ 1 = serial). Results are identical for any value — the
	// parallel operators merge partition buffers in order.
	JoinWorkers int
}

// StepFunc computes one closure step: given the current database it
// returns new contents for some relations (unioned into the database).
type StepFunc func(db *DB) (map[string]*Relation, error)

// Fixpoint iterates step until the database stops changing, up to
// maxSteps (0 = 1e6).
func Fixpoint(db *DB, step StepFunc, maxSteps int) (*DB, error) {
	return FixpointOpts(db, step, Opts{MaxSteps: maxSteps})
}

// FixpointOpts is Fixpoint configured by an options struct.
func FixpointOpts(db *DB, step StepFunc, opts Opts) (*DB, error) {
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1_000_000
	}
	cur := db.Clone()
	for i := 0; i < maxSteps; i++ {
		updates, err := step(cur)
		if err != nil {
			return nil, err
		}
		changed := false
		for name, add := range updates {
			dst, ok := cur.Get(name)
			if !ok {
				dst = NewRelation(add.Attrs()...)
				cur.Set(name, dst)
			}
			for _, t := range add.Tuples() {
				if dst.Insert(t) {
					changed = true
				}
			}
		}
		if !changed {
			return cur, nil
		}
	}
	return nil, fmt.Errorf("algres: fixpoint did not converge within %d steps", maxSteps)
}

// TransitiveClosure is the classic closure instance: given a binary
// relation over (from, to), it computes its transitive closure.
func TransitiveClosure(edges *Relation, from, to string) (*Relation, error) {
	return TransitiveClosureOpts(edges, from, to, Opts{})
}

// TransitiveClosureOpts is TransitiveClosure with the step's join running
// on opts.JoinWorkers workers.
func TransitiveClosureOpts(edges *Relation, from, to string, opts Opts) (*Relation, error) {
	if !edges.HasAttr(from) || !edges.HasAttr(to) {
		return nil, fmt.Errorf("algres: closure: missing attributes %q/%q", from, to)
	}
	base, err := Project(edges, from, to)
	if err != nil {
		return nil, err
	}
	db := NewDB()
	db.Set("tc", base.Clone())
	db.Set("edge", base)
	result, err := FixpointOpts(db, func(db *DB) (map[string]*Relation, error) {
		tc, _ := db.Get("tc")
		e, _ := db.Get("edge")
		// tc(from, to) ⋈ edge(to=from', to') — rename to line up the join.
		mid := Rename(tc, map[string]string{from: "$a", to: "$m"})
		step := Rename(e, map[string]string{from: "$m", to: "$b"})
		joined := JoinWorkers(mid, step, opts.JoinWorkers)
		proj, err := Project(joined, "$a", "$b")
		if err != nil {
			return nil, err
		}
		next := Rename(proj, map[string]string{"$a": from, "$b": to})
		return map[string]*Relation{"tc": next}, nil
	}, opts)
	if err != nil {
		return nil, err
	}
	tc, _ := result.Get("tc")
	return tc, nil
}
