package algres

import (
	"context"
	"fmt"
	"time"

	"logres/internal/guard"
	"logres/internal/obs"
)

// The liberal closure operator. ALGRES exposes a fixpoint construct whose
// body is an arbitrary algebra expression over the database; the paper
// ("the very liberal structure of the closure operation in ALGRES makes
// it possible to change the semantics of rules very easily") relies on it
// to prototype the various rule semantics. Step receives the current
// database and returns the relations to merge; Fixpoint iterates to
// convergence.

// Opts configures closure evaluation. The zero value is the serial
// unbounded default.
type Opts struct {
	// MaxSteps bounds fixpoint iteration (0 = the package default, 1e6).
	MaxSteps int
	// JoinWorkers is the worker count threaded into every join and
	// anti-join (≤ 1 = serial). Results are identical for any value — the
	// parallel operators merge partition buffers in order.
	JoinWorkers int
	// Vectorize routes every join and anti-join through the columnar
	// kernels (JoinVec/AntiJoinVec: dictionary-encoded key columns, hash
	// join on uint32 codes) instead of the row operators. Results are
	// identical; JoinWorkers is ignored on the vectorized path (the
	// kernels are batch-at-a-time).
	Vectorize bool
	// Ctx cancels the closure between rounds; aborts surface as
	// *guard.CanceledError. nil means no cancellation.
	Ctx context.Context
	// MaxFacts bounds the tuples inserted across all rounds
	// (0 = unlimited); exhaustion surfaces as *guard.BudgetError.
	MaxFacts int
	// Timeout bounds the closure's wall-clock time (0 = unlimited); the
	// deadline is armed when the closure starts.
	Timeout time.Duration
	// Tracer receives one closure.round event per fixpoint round (nil =
	// no tracing; the off path is a nil check per round).
	Tracer obs.Tracer
}

// roundGuard is the per-closure guardrail state shared by Fixpoint and
// the semi-naive compiler loop; checks run at round granularity, so the
// zero-budget fast path costs one branch per round.
type roundGuard struct {
	ctx      context.Context
	deadline time.Time
	maxFacts int
	timeout  time.Duration
	inserted int
}

func newRoundGuard(opts Opts) *roundGuard {
	g := &roundGuard{ctx: opts.Ctx, maxFacts: opts.MaxFacts, timeout: opts.Timeout}
	if opts.Timeout > 0 {
		g.deadline = time.Now().Add(opts.Timeout)
	}
	return g
}

// check enforces cancellation, deadline, and the fact budget at the top
// of round i. Closures have no strata, so aborts attribute stratum -1.
func (g *roundGuard) check(i int) error {
	if g.ctx != nil {
		if err := g.ctx.Err(); err != nil {
			return &guard.CanceledError{Stratum: -1, Round: i, Facts: g.inserted, Err: err}
		}
	}
	if !g.deadline.IsZero() && time.Now().After(g.deadline) {
		return &guard.BudgetError{Axis: guard.AxisDeadline, Limit: int64(g.timeout), Stratum: -1, Round: i, Facts: g.inserted}
	}
	if g.maxFacts > 0 && g.inserted > g.maxFacts {
		return &guard.BudgetError{Axis: guard.AxisFacts, Limit: int64(g.maxFacts), Stratum: -1, Round: i, Facts: g.inserted}
	}
	return nil
}

// rounds builds the rounds-axis abort error.
func (g *roundGuard) rounds(limit int, detail string) *guard.BudgetError {
	return &guard.BudgetError{Axis: guard.AxisRounds, Limit: int64(limit), Stratum: -1, Round: limit, Facts: g.inserted, Detail: detail}
}

// StepFunc computes one closure step: given the current database it
// returns new contents for some relations (unioned into the database).
type StepFunc func(db *DB) (map[string]*Relation, error)

// Fixpoint iterates step until the database stops changing, up to
// maxSteps (0 = 1e6).
func Fixpoint(db *DB, step StepFunc, maxSteps int) (*DB, error) {
	return FixpointOpts(db, step, Opts{MaxSteps: maxSteps})
}

// FixpointOpts is Fixpoint configured by an options struct; the context
// and budget axes are checked between rounds and surface as the same
// typed errors the rule engine produces.
func FixpointOpts(db *DB, step StepFunc, opts Opts) (*DB, error) {
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1_000_000
	}
	g := newRoundGuard(opts)
	cur := db.Clone()
	for i := 0; i < maxSteps; i++ {
		if err := g.check(i); err != nil {
			return nil, err
		}
		var start time.Time
		if opts.Tracer != nil {
			start = time.Now()
		}
		updates, err := step(cur)
		if err != nil {
			return nil, err
		}
		before := g.inserted
		changed := false
		for name, add := range updates {
			dst, ok := cur.Get(name)
			if !ok {
				dst = NewRelation(add.Attrs()...)
				cur.Set(name, dst)
			}
			for _, t := range add.Tuples() {
				if dst.Insert(t) {
					changed = true
					g.inserted++
				}
			}
		}
		if opts.Tracer != nil {
			opts.Tracer.Event(obs.Event{
				Kind:     obs.KindClosureRound,
				Stratum:  -1,
				Round:    i,
				Count:    g.inserted - before,
				Total:    g.inserted,
				Duration: time.Since(start),
			})
		}
		if !changed {
			return cur, nil
		}
	}
	return nil, g.rounds(maxSteps, "the closure did not converge")
}

// TransitiveClosure is the classic closure instance: given a binary
// relation over (from, to), it computes its transitive closure.
func TransitiveClosure(edges *Relation, from, to string) (*Relation, error) {
	return TransitiveClosureOpts(edges, from, to, Opts{})
}

// TransitiveClosureOpts is TransitiveClosure with the step's join running
// on opts.JoinWorkers workers and the closure under opts' context and
// budget.
func TransitiveClosureOpts(edges *Relation, from, to string, opts Opts) (*Relation, error) {
	if !edges.HasAttr(from) || !edges.HasAttr(to) {
		return nil, fmt.Errorf("algres: closure: missing attributes %q/%q", from, to)
	}
	base, err := Project(edges, from, to)
	if err != nil {
		return nil, err
	}
	db := NewDB()
	db.Set("tc", base.Clone())
	db.Set("edge", base)
	result, err := FixpointOpts(db, func(db *DB) (map[string]*Relation, error) {
		tc, _ := db.Get("tc")
		e, _ := db.Get("edge")
		// tc(from, to) ⋈ edge(to=from', to') — rename to line up the join.
		mid := Rename(tc, map[string]string{from: "$a", to: "$m"})
		step := Rename(e, map[string]string{from: "$m", to: "$b"})
		joined := opts.join(mid, step)
		proj, err := Project(joined, "$a", "$b")
		if err != nil {
			return nil, err
		}
		next := Rename(proj, map[string]string{"$a": from, "$b": to})
		return map[string]*Relation{"tc": next}, nil
	}, opts)
	if err != nil {
		return nil, err
	}
	tc, _ := result.Get("tc")
	return tc, nil
}
