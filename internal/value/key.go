package value

import (
	"encoding/binary"
	"math"
	"strconv"
	"strings"
)

// Canonical keys.
//
// Key returns a string encoding with two properties the engine relies on:
//
//  1. injectivity — two values have the same key iff they are structurally
//     equal;
//  2. order preservation within a kind — for elementary values, the
//     byte-wise order of keys matches value order, so sets (which sort by
//     key) iterate in natural order.
//
// The encoding starts with a one-byte kind tag so different kinds never
// collide, followed by an order-preserving payload. Composite payloads use
// length-prefixed child keys.

const (
	tagInt      = 'i'
	tagReal     = 'r'
	tagString   = 's'
	tagBool     = 'b'
	tagOID      = 'o'
	tagNull     = 'n'
	tagTuple    = 't'
	tagSet      = 'S'
	tagMultiset = 'M'
	tagSequence = 'Q'
)

// orderedInt64 encodes an int64 as 8 big-endian bytes with the sign bit
// flipped, so that unsigned byte order equals signed integer order.
func orderedInt64(x int64) string {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(x)^(1<<63))
	return string(buf[:])
}

// orderedFloat64 encodes a float64 preserving order: positive floats flip
// the sign bit, negative floats flip all bits.
func orderedFloat64(f float64) string {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], bits)
	return string(buf[:])
}

func (v Int) Key() string  { return string(tagInt) + orderedInt64(int64(v)) }
func (v Real) Key() string { return string(tagReal) + orderedFloat64(float64(v)) }
func (v Str) Key() string  { return string(tagString) + string(v) }
func (v Bool) Key() string {
	if v {
		return string(tagBool) + "1"
	}
	return string(tagBool) + "0"
}
func (v Ref) Key() string { return string(tagOID) + orderedInt64(int64(v)) }
func (Null) Key() string  { return string(tagNull) }

func compositeKey(tag byte, parts []string) string {
	var b strings.Builder
	b.WriteByte(tag)
	b.WriteString(strconv.Itoa(len(parts)))
	for _, p := range parts {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(len(p)))
		b.WriteByte(':')
		b.WriteString(p)
	}
	return b.String()
}

func (t Tuple) Key() string {
	parts := make([]string, 0, 2*len(t.fields))
	for _, f := range t.fields {
		parts = append(parts, f.Label, f.Value.Key())
	}
	return compositeKey(tagTuple, parts)
}

func elemsKey(tag byte, elems []Value) string {
	parts := make([]string, len(elems))
	for i, e := range elems {
		parts[i] = e.Key()
	}
	return compositeKey(tag, parts)
}

func (s Set) Key() string      { return elemsKey(tagSet, s.elems) }
func (m Multiset) Key() string { return elemsKey(tagMultiset, m.elems) }
func (q Sequence) Key() string { return elemsKey(tagSequence, q.elems) }
