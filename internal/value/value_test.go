package value

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestOIDNil(t *testing.T) {
	if !NilOID.IsNil() {
		t.Fatal("NilOID.IsNil() = false")
	}
	if OID(7).IsNil() {
		t.Fatal("OID(7).IsNil() = true")
	}
	if got := NilOID.String(); got != "nil" {
		t.Fatalf("NilOID.String() = %q", got)
	}
	if got := OID(42).String(); got != "&42" {
		t.Fatalf("OID(42).String() = %q", got)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInt: "integer", KindReal: "real", KindString: "string",
		KindBool: "boolean", KindOID: "oid", KindTuple: "tuple",
		KindSet: "set", KindMultiset: "multiset", KindSequence: "sequence",
		KindNull: "null",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestElementaryKeysInjective(t *testing.T) {
	vals := []Value{
		Int(-5), Int(0), Int(5), Int(1 << 40),
		Real(-3.5), Real(0), Real(2.25),
		Str(""), Str("a"), Str("ab"),
		Bool(false), Bool(true),
		Ref(0), Ref(1), Ref(99),
		Null{},
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision: %v and %v share key %q", prev, v, k)
		}
		seen[k] = v
	}
}

func TestIntKeyOrderMatchesValueOrder(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := Int(a).Key(), Int(b).Key()
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		}
		return ka == kb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRealKeyOrderMatchesValueOrder(t *testing.T) {
	f := func(a, b float64) bool {
		ka, kb := Real(a).Key(), Real(b).Key()
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		case a == b:
			return ka == kb
		}
		return true // NaN involved; no ordering claim
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetDedupAndOrder(t *testing.T) {
	s := NewSet(Int(3), Int(1), Int(3), Int(2), Int(1))
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	got := make([]int64, 0, 3)
	for _, e := range s.Elems() {
		got = append(got, int64(e.(Int)))
	}
	want := []int64{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("elems = %v, want %v", got, want)
	}
}

func TestSetContainsAddUnionIntersectDiff(t *testing.T) {
	s := NewSet(Int(1), Int(2))
	if !s.Contains(Int(1)) || s.Contains(Int(9)) {
		t.Fatal("Contains wrong")
	}
	s2 := s.Add(Int(3))
	if s2.Len() != 3 || s.Len() != 2 {
		t.Fatal("Add must be persistent")
	}
	if got := s.Add(Int(2)); got.Len() != 2 {
		t.Fatal("Add of existing element changed size")
	}
	u := s.Union(NewSet(Int(2), Int(4)))
	if u.Len() != 3 || !u.Contains(Int(4)) {
		t.Fatalf("Union = %v", u)
	}
	i := s.Intersect(NewSet(Int(2), Int(4)))
	if i.Len() != 1 || !i.Contains(Int(2)) {
		t.Fatalf("Intersect = %v", i)
	}
	d := s.Diff(NewSet(Int(2)))
	if d.Len() != 1 || !d.Contains(Int(1)) {
		t.Fatalf("Diff = %v", d)
	}
}

func TestMultisetKeepsDuplicates(t *testing.T) {
	m := NewMultiset(Int(2), Int(1), Int(2))
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	if m.Count(Int(2)) != 2 || m.Count(Int(1)) != 1 || m.Count(Int(9)) != 0 {
		t.Fatal("Count wrong")
	}
	m2 := m.Add(Int(1))
	if m2.Count(Int(1)) != 2 || m.Count(Int(1)) != 1 {
		t.Fatal("Add must be persistent")
	}
}

func TestSequencePreservesOrder(t *testing.T) {
	q := NewSequence(Int(3), Int(1), Int(2))
	if q.Len() != 3 || q.At(0) != Int(3) || q.At(2) != Int(2) {
		t.Fatalf("sequence = %v", q)
	}
	q2 := q.Append(Int(9))
	if q2.Len() != 4 || q.Len() != 3 || q2.At(3) != Int(9) {
		t.Fatal("Append must be persistent")
	}
}

func TestSetVsMultisetVsSequenceKeysDiffer(t *testing.T) {
	es := []Value{Int(1), Int(2)}
	keys := []string{
		NewSet(es...).Key(),
		NewMultiset(es...).Key(),
		NewSequence(es...).Key(),
	}
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[i] == keys[j] {
				t.Fatalf("constructor kinds %d and %d share key %q", i, j, keys[i])
			}
		}
	}
}

func TestTupleAccessors(t *testing.T) {
	tp := NewTuple(Field{"name", Str("ann")}, Field{"age", Int(3)})
	if tp.Len() != 2 {
		t.Fatalf("Len = %d", tp.Len())
	}
	v, ok := tp.Get("age")
	if !ok || v != Int(3) {
		t.Fatalf("Get(age) = %v, %v", v, ok)
	}
	if _, ok := tp.Get("missing"); ok {
		t.Fatal("Get(missing) found")
	}
	tp2 := tp.With("age", Int(4))
	if v, _ := tp2.Get("age"); v != Int(4) {
		t.Fatal("With did not replace")
	}
	if v, _ := tp.Get("age"); v != Int(3) {
		t.Fatal("With mutated the receiver")
	}
	tp3 := tp.With("extra", Bool(true))
	if tp3.Len() != 3 {
		t.Fatal("With did not append new label")
	}
}

func TestTupleKeyDistinguishesLabels(t *testing.T) {
	a := NewTuple(Field{"x", Int(1)}, Field{"y", Int(2)})
	b := NewTuple(Field{"y", Int(1)}, Field{"x", Int(2)})
	if a.Key() == b.Key() {
		t.Fatal("tuples with different labels share a key")
	}
}

// Key injectivity hazard: composite encodings must not allow a boundary
// confusion like ("ab","c") vs ("a","bc").
func TestCompositeKeyBoundaries(t *testing.T) {
	a := NewSequence(Str("ab"), Str("c"))
	b := NewSequence(Str("a"), Str("bc"))
	if a.Key() == b.Key() {
		t.Fatal("sequence key boundary collision")
	}
	c := NewTuple(Field{"ab", Str("c")})
	d := NewTuple(Field{"a", Str("bc")})
	if c.Key() == d.Key() {
		t.Fatal("tuple key boundary collision")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(NewSet(Int(1), Int(2)), NewSet(Int(2), Int(1))) {
		t.Fatal("sets with same elements must be equal")
	}
	if Equal(NewSequence(Int(1), Int(2)), NewSequence(Int(2), Int(1))) {
		t.Fatal("sequences with different order must differ")
	}
	if !Equal(nil, nil) || Equal(nil, Int(0)) || Equal(Int(0), nil) {
		t.Fatal("nil handling wrong")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Real(1.5), Real(2.5), -1},
		{Str("a"), Str("b"), -1},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
		{Ref(1), Ref(2), -1},
		{Int(1), Real(1.5), -1}, // numeric cross-kind
		{Real(0.5), Int(1), -1},
		{Int(2), Real(2), 0},
	}
	for _, c := range cases {
		if got := sign(Compare(c.a, c.b)); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestStringRendering(t *testing.T) {
	tp := NewTuple(Field{"n", Str("x")}, Field{"", Int(1)})
	if got := tp.String(); got != `(n: "x", 1)` {
		t.Fatalf("tuple string = %q", got)
	}
	if got := NewSet(Int(2), Int(1)).String(); got != "{1, 2}" {
		t.Fatalf("set string = %q", got)
	}
	if got := NewMultiset(Int(1), Int(1)).String(); got != "[1, 1]" {
		t.Fatalf("multiset string = %q", got)
	}
	if got := NewSequence(Int(2), Int(1)).String(); got != "<2, 1>" {
		t.Fatalf("sequence string = %q", got)
	}
}

// Property: set construction is order-insensitive.
func TestSetOrderInsensitiveProperty(t *testing.T) {
	f := func(xs []int64, seed int64) bool {
		vals := make([]Value, len(xs))
		for i, x := range xs {
			vals[i] = Int(x)
		}
		shuf := make([]Value, len(vals))
		copy(shuf, vals)
		r := rand.New(rand.NewSource(seed))
		r.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		return NewSet(vals...).Key() == NewSet(shuf...).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: multiset construction is order-insensitive but multiplicity-
// sensitive.
func TestMultisetProperties(t *testing.T) {
	f := func(xs []int8) bool {
		vals := make([]Value, len(xs))
		for i, x := range xs {
			vals[i] = Int(int64(x))
		}
		rev := make([]Value, len(vals))
		for i, v := range vals {
			rev[len(vals)-1-i] = v
		}
		m1, m2 := NewMultiset(vals...), NewMultiset(rev...)
		if m1.Key() != m2.Key() {
			return false
		}
		// Total multiplicity equals input length.
		return m1.Len() == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is a consistent total order for integers that matches
// the sort of keys.
func TestCompareMatchesKeyOrder(t *testing.T) {
	f := func(xs []int64) bool {
		vals := make([]Value, len(xs))
		for i, x := range xs {
			vals[i] = Int(x)
		}
		byCompare := make([]Value, len(vals))
		copy(byCompare, vals)
		sort.SliceStable(byCompare, func(i, j int) bool { return Compare(byCompare[i], byCompare[j]) < 0 })
		byKey := make([]Value, len(vals))
		copy(byKey, vals)
		sort.SliceStable(byKey, func(i, j int) bool { return byKey[i].Key() < byKey[j].Key() })
		for i := range byCompare {
			if !Equal(byCompare[i], byKey[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAsFloatPanicsOnNonNumeric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AsFloat(Str("x"))
}

func TestIsNaN(t *testing.T) {
	if IsNaN(Int(1)) || IsNaN(Real(1)) {
		t.Fatal("false positive")
	}
}

func TestKindAndStringOfAllValues(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Int(1), KindInt, "1"},
		{Real(1.5), KindReal, "1.5"},
		{Str("x"), KindString, `"x"`},
		{Bool(true), KindBool, "true"},
		{Ref(2), KindOID, "&2"},
		{Null{}, KindNull, "null"},
		{NewTuple(Field{"a", Int(1)}), KindTuple, "(a: 1)"},
		{NewSet(Int(1)), KindSet, "{1}"},
		{NewMultiset(Int(1)), KindMultiset, "[1]"},
		{NewSequence(Int(1)), KindSequence, "<1>"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("%T string = %q, want %q", c.v, got, c.str)
		}
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestTupleFieldAccessor(t *testing.T) {
	tp := NewTuple(Field{"a", Int(1)}, Field{"b", Str("x")})
	f := tp.Field(1)
	if f.Label != "b" || f.Value != Str("x") {
		t.Fatalf("Field(1) = %v", f)
	}
	fs := tp.Fields()
	fs[0].Value = Int(99)
	if v, _ := tp.Get("a"); v != Int(1) {
		t.Fatal("Fields() aliases internal storage")
	}
}

func TestMultisetSequenceElems(t *testing.T) {
	m := NewMultiset(Int(2), Int(1), Int(2))
	if len(m.Elems()) != 3 {
		t.Fatalf("multiset elems = %v", m.Elems())
	}
	q := NewSequence(Int(9), Int(8))
	if len(q.Elems()) != 2 || q.Elems()[0] != Int(9) {
		t.Fatalf("sequence elems = %v", q.Elems())
	}
}
