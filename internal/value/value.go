// Package value implements the LOGRES value model: elementary values
// (integers, reals, strings, booleans), object identifiers (oids), and the
// generalized constructors of the paper — tuples, sets, multisets and
// sequences — together with canonical encoding, ordering and deep equality.
//
// Values are immutable once constructed. Sets and multisets keep their
// elements in canonical (sorted-by-key) order so that structural equality,
// hashing and deterministic iteration are cheap.
package value

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// OID is an object identifier. Oids are managed by the system and never
// visible to users (§2.1 of the paper). The zero OID is the distinguished
// nil oid, a legal value for class references inside classes but not inside
// associations.
type OID int64

// NilOID is the nil object identifier.
const NilOID OID = 0

// IsNil reports whether o is the nil oid.
func (o OID) IsNil() bool { return o == NilOID }

func (o OID) String() string {
	if o == NilOID {
		return "nil"
	}
	return "&" + strconv.FormatInt(int64(o), 10)
}

// Kind identifies the dynamic kind of a Value.
type Kind int

// The kinds of LOGRES values.
const (
	KindInt Kind = iota
	KindReal
	KindString
	KindBool
	KindOID
	KindTuple
	KindSet
	KindMultiset
	KindSequence
	KindNull
)

var kindNames = [...]string{
	KindInt:      "integer",
	KindReal:     "real",
	KindString:   "string",
	KindBool:     "boolean",
	KindOID:      "oid",
	KindTuple:    "tuple",
	KindSet:      "set",
	KindMultiset: "multiset",
	KindSequence: "sequence",
	KindNull:     "null",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// Value is a LOGRES runtime value.
type Value interface {
	// Kind reports the dynamic kind of the value.
	Kind() Kind
	// Key returns a canonical encoding of the value. Two values are equal
	// iff their keys are equal; keys of values of the same kind sort in
	// value order.
	Key() string
	// String renders the value in LOGRES surface syntax.
	String() string
}

// Int is an integer value.
type Int int64

// Real is a floating-point value.
type Real float64

// Str is a string value.
type Str string

// Bool is a boolean value.
type Bool bool

// Ref is an object reference (an oid used as a value).
type Ref OID

// Null is the null value, used for unset optional components.
type Null struct{}

// Field is one labelled component of a tuple.
type Field struct {
	Label string
	Value Value
}

// Tuple is a labelled record. Field order is significant and follows the
// schema's type equation.
type Tuple struct {
	fields []Field
}

// Set is a duplicate-free collection in canonical order.
type Set struct {
	elems []Value // sorted by Key, no duplicates
}

// Multiset is a collection with duplicates, kept in canonical order.
type Multiset struct {
	elems []Value // sorted by Key, duplicates adjacent
}

// Sequence is an ordered collection.
type Sequence struct {
	elems []Value
}

// Kind implementations.

func (Int) Kind() Kind      { return KindInt }
func (Real) Kind() Kind     { return KindReal }
func (Str) Kind() Kind      { return KindString }
func (Bool) Kind() Kind     { return KindBool }
func (Ref) Kind() Kind      { return KindOID }
func (Null) Kind() Kind     { return KindNull }
func (Tuple) Kind() Kind    { return KindTuple }
func (Set) Kind() Kind      { return KindSet }
func (Multiset) Kind() Kind { return KindMultiset }
func (Sequence) Kind() Kind { return KindSequence }

// String implementations.

func (v Int) String() string  { return strconv.FormatInt(int64(v), 10) }
func (v Real) String() string { return strconv.FormatFloat(float64(v), 'g', -1, 64) }
func (v Str) String() string  { return strconv.Quote(string(v)) }
func (v Bool) String() string { return strconv.FormatBool(bool(v)) }
func (v Ref) String() string  { return OID(v).String() }
func (Null) String() string   { return "null" }

func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range t.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		if f.Label != "" {
			b.WriteString(f.Label)
			b.WriteString(": ")
		}
		b.WriteString(f.Value.String())
	}
	b.WriteByte(')')
	return b.String()
}

func (s Set) String() string      { return bracketed('{', '}', s.elems) }
func (m Multiset) String() string { return bracketed('[', ']', m.elems) }
func (q Sequence) String() string { return bracketed('<', '>', q.elems) }

func bracketed(open, close byte, elems []Value) string {
	var b strings.Builder
	b.WriteByte(open)
	for i, e := range elems {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	b.WriteByte(close)
	return b.String()
}

// Constructors.

// NewTuple builds a tuple from the given fields. The field slice is copied.
func NewTuple(fields ...Field) Tuple {
	fs := make([]Field, len(fields))
	copy(fs, fields)
	return Tuple{fields: fs}
}

// NewSet builds a set, deduplicating and canonically ordering elems.
func NewSet(elems ...Value) Set {
	es := canonicalize(elems, true)
	return Set{elems: es}
}

// NewMultiset builds a multiset, canonically ordering elems.
func NewMultiset(elems ...Value) Multiset {
	es := canonicalize(elems, false)
	return Multiset{elems: es}
}

// NewSequence builds a sequence preserving order.
func NewSequence(elems ...Value) Sequence {
	es := make([]Value, len(elems))
	copy(es, elems)
	return Sequence{elems: es}
}

func canonicalize(elems []Value, dedup bool) []Value {
	es := make([]Value, len(elems))
	copy(es, elems)
	sort.SliceStable(es, func(i, j int) bool { return es[i].Key() < es[j].Key() })
	if !dedup {
		return es
	}
	out := es[:0]
	var prev string
	for i, e := range es {
		k := e.Key()
		if i == 0 || k != prev {
			out = append(out, e)
			prev = k
		}
	}
	return out
}

// Tuple accessors.

// Len reports the number of fields.
func (t Tuple) Len() int { return len(t.fields) }

// Field returns the i-th field.
func (t Tuple) Field(i int) Field { return t.fields[i] }

// Fields returns a copy of the field slice.
func (t Tuple) Fields() []Field {
	fs := make([]Field, len(t.fields))
	copy(fs, t.fields)
	return fs
}

// Get returns the value of the field with the given label.
func (t Tuple) Get(label string) (Value, bool) {
	for _, f := range t.fields {
		if f.Label == label {
			return f.Value, true
		}
	}
	return nil, false
}

// With returns a copy of t with the labelled field replaced (or appended if
// absent).
func (t Tuple) With(label string, v Value) Tuple {
	fs := t.Fields()
	for i := range fs {
		if fs[i].Label == label {
			fs[i].Value = v
			return Tuple{fields: fs}
		}
	}
	fs = append(fs, Field{Label: label, Value: v})
	return Tuple{fields: fs}
}

// Collection accessors.

// Len reports the number of elements.
func (s Set) Len() int { return len(s.elems) }

// Elems returns the canonical element slice (not to be mutated).
func (s Set) Elems() []Value { return s.elems }

// Contains reports whether v is a member of the set.
func (s Set) Contains(v Value) bool {
	k := v.Key()
	i := sort.Search(len(s.elems), func(i int) bool { return s.elems[i].Key() >= k })
	return i < len(s.elems) && s.elems[i].Key() == k
}

// Add returns s ∪ {v}.
func (s Set) Add(v Value) Set {
	if s.Contains(v) {
		return s
	}
	return NewSet(append(append([]Value{}, s.elems...), v)...)
}

// Union returns s ∪ o.
func (s Set) Union(o Set) Set {
	return NewSet(append(append([]Value{}, s.elems...), o.elems...)...)
}

// Intersect returns s ∩ o.
func (s Set) Intersect(o Set) Set {
	var out []Value
	for _, e := range s.elems {
		if o.Contains(e) {
			out = append(out, e)
		}
	}
	return NewSet(out...)
}

// Diff returns s − o.
func (s Set) Diff(o Set) Set {
	var out []Value
	for _, e := range s.elems {
		if !o.Contains(e) {
			out = append(out, e)
		}
	}
	return NewSet(out...)
}

// Len reports the number of elements (counting duplicates).
func (m Multiset) Len() int { return len(m.elems) }

// Elems returns the canonical element slice (not to be mutated).
func (m Multiset) Elems() []Value { return m.elems }

// Count reports the multiplicity of v.
func (m Multiset) Count(v Value) int {
	k := v.Key()
	n := 0
	for _, e := range m.elems {
		if e.Key() == k {
			n++
		}
	}
	return n
}

// Add returns m ⊎ {v}.
func (m Multiset) Add(v Value) Multiset {
	return NewMultiset(append(append([]Value{}, m.elems...), v)...)
}

// Len reports the number of elements.
func (q Sequence) Len() int { return len(q.elems) }

// Elems returns the element slice (not to be mutated).
func (q Sequence) Elems() []Value { return q.elems }

// At returns the i-th element.
func (q Sequence) At(i int) Value { return q.elems[i] }

// Append returns q with v appended.
func (q Sequence) Append(v Value) Sequence {
	return Sequence{elems: append(append([]Value{}, q.elems...), v)}
}

// Equal reports deep structural equality of two values.
func Equal(a, b Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Key() == b.Key()
}

// Compare orders two values. Values of different kinds order by kind; within
// a kind, elementary values order naturally and composites lexicographically.
func Compare(a, b Value) int {
	if a.Kind() != b.Kind() {
		// Numeric cross-kind comparison: integers and reals compare by value.
		if isNumeric(a) && isNumeric(b) {
			return compareFloat(AsFloat(a), AsFloat(b))
		}
		return int(a.Kind()) - int(b.Kind())
	}
	switch x := a.(type) {
	case Int:
		y := b.(Int)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case Real:
		return compareFloat(float64(x), float64(b.(Real)))
	case Str:
		return strings.Compare(string(x), string(b.(Str)))
	case Bool:
		y := b.(Bool)
		switch {
		case !bool(x) && bool(y):
			return -1
		case bool(x) && !bool(y):
			return 1
		}
		return 0
	case Ref:
		y := b.(Ref)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	default:
		return strings.Compare(a.Key(), b.Key())
	}
}

func compareFloat(x, y float64) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	}
	return 0
}

func isNumeric(v Value) bool {
	k := v.Kind()
	return k == KindInt || k == KindReal
}

// AsFloat converts a numeric value to float64. It panics on non-numeric
// values; callers must check kinds first.
func AsFloat(v Value) float64 {
	switch x := v.(type) {
	case Int:
		return float64(x)
	case Real:
		return float64(x)
	}
	panic(fmt.Sprintf("value: AsFloat on %s", v.Kind()))
}

// IsNaN reports whether v is a floating NaN (never produced by the engine,
// but guarded against in ordering code).
func IsNaN(v Value) bool {
	r, ok := v.(Real)
	return ok && math.IsNaN(float64(r))
}
