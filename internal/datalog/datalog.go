// Package datalog is a compact, value-oriented flat Datalog engine used as
// the "conventional deductive database" baseline in the benchmark harness:
// positional atoms over flat relations, stratified negation, naive and
// semi-naive bottom-up evaluation. It deliberately has none of LOGRES's
// object features (no oids, no constructors, no inheritance), so
// comparisons isolate the cost of the object machinery.
package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Term is a variable (Var) or constant (Const).
type Term struct {
	Var   string // non-empty for variables
	Const string // constant symbol when Var == ""
}

// V makes a variable term.
func V(name string) Term { return Term{Var: name} }

// C makes a constant term.
func C(sym string) Term { return Term{Const: sym} }

// Atom is pred(t1, …, tn), positional.
type Atom struct {
	Pred    string
	Negated bool
	Args    []Term
}

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		if t.Var != "" {
			parts[i] = t.Var
		} else {
			parts[i] = t.Const
		}
	}
	s := a.Pred + "(" + strings.Join(parts, ",") + ")"
	if a.Negated {
		return "not " + s
	}
	return s
}

// Rule is Head ← Body.
type Rule struct {
	Head Atom
	Body []Atom
}

func (r Rule) String() string {
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return r.Head.String() + " <- " + strings.Join(parts, ", ")
}

// Tuple is one ground fact's argument vector.
type Tuple []string

func (t Tuple) key() string { return strings.Join(t, "\x00") }

// DB maps predicate names to their extensions.
type DB struct {
	rels map[string]map[string]Tuple
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{rels: map[string]map[string]Tuple{}} }

// Add inserts a fact; it reports growth.
func (db *DB) Add(pred string, t Tuple) bool {
	m := db.rels[pred]
	if m == nil {
		m = map[string]Tuple{}
		db.rels[pred] = m
	}
	k := t.key()
	if _, ok := m[k]; ok {
		return false
	}
	m[k] = t
	return true
}

// Has reports membership.
func (db *DB) Has(pred string, t Tuple) bool {
	_, ok := db.rels[pred][t.key()]
	return ok
}

// Size reports |pred|.
func (db *DB) Size(pred string) int { return len(db.rels[pred]) }

// Tuples returns pred's extension in deterministic order.
func (db *DB) Tuples(pred string) []Tuple {
	m := db.rels[pred]
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Tuple, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// Clone copies the database.
func (db *DB) Clone() *DB {
	n := NewDB()
	for p, m := range db.rels {
		cp := make(map[string]Tuple, len(m))
		for k, t := range m {
			cp[k] = t
		}
		n.rels[p] = cp
	}
	return n
}

// Program is a checked rule set with strata.
type Program struct {
	rules  []Rule
	strata [][]Rule
}

// NewProgram validates the rules (safety: head and negated variables bound
// by positive body atoms) and computes a stratification; it errors on
// negative cycles.
func NewProgram(rules []Rule) (*Program, error) {
	for _, r := range rules {
		if r.Head.Negated {
			return nil, fmt.Errorf("datalog: negated head in %s", r)
		}
		bound := map[string]bool{}
		for _, a := range r.Body {
			if a.Negated {
				continue
			}
			for _, t := range a.Args {
				if t.Var != "" {
					bound[t.Var] = true
				}
			}
		}
		for _, t := range r.Head.Args {
			if t.Var != "" && !bound[t.Var] {
				return nil, fmt.Errorf("datalog: unsafe rule %s: head variable %s", r, t.Var)
			}
		}
		for _, a := range r.Body {
			if !a.Negated {
				continue
			}
			for _, t := range a.Args {
				if t.Var != "" && !bound[t.Var] {
					return nil, fmt.Errorf("datalog: unsafe rule %s: negated variable %s", r, t.Var)
				}
			}
		}
	}
	strata, err := stratify(rules)
	if err != nil {
		return nil, err
	}
	return &Program{rules: rules, strata: strata}, nil
}

// stratify orders rules into strata; negation must not occur in a cycle.
func stratify(rules []Rule) ([][]Rule, error) {
	level := map[string]int{}
	preds := map[string]bool{}
	for _, r := range rules {
		preds[r.Head.Pred] = true
		for _, a := range r.Body {
			preds[a.Pred] = true
		}
	}
	n := len(preds)
	// Bellman-Ford style level assignment.
	for i := 0; i <= n*n+1; i++ {
		changed := false
		for _, r := range rules {
			h := level[r.Head.Pred]
			for _, a := range r.Body {
				want := level[a.Pred]
				if a.Negated {
					want++
				}
				if want > h {
					h = want
				}
			}
			if h > level[r.Head.Pred] {
				level[r.Head.Pred] = h
				changed = true
			}
		}
		if !changed {
			break
		}
		if i == n*n+1 {
			return nil, fmt.Errorf("datalog: program is not stratified")
		}
	}
	maxLevel := 0
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	out := make([][]Rule, maxLevel+1)
	for _, r := range rules {
		l := level[r.Head.Pred]
		out[l] = append(out[l], r)
	}
	var strata [][]Rule
	for _, s := range out {
		if len(s) > 0 {
			strata = append(strata, s)
		}
	}
	return strata, nil
}

type bindings map[string]string

// matchAtom enumerates extensions of env matching a positive atom.
func matchAtom(db *DB, a Atom, env bindings, yield func(bindings)) {
	for _, t := range db.Tuples(a.Pred) {
		if len(t) != len(a.Args) {
			continue
		}
		e2 := env
		copied := false
		ok := true
		for i, arg := range a.Args {
			want := arg.Const
			if arg.Var != "" {
				if b, bound := e2[arg.Var]; bound {
					want = b
				} else {
					if !copied {
						e2 = cloneB(e2)
						copied = true
					}
					e2[arg.Var] = t[i]
					continue
				}
			}
			if want != t[i] {
				ok = false
				break
			}
		}
		if ok {
			if !copied {
				e2 = cloneB(e2)
			}
			yield(e2)
		}
	}
}

func cloneB(b bindings) bindings {
	n := make(bindings, len(b)+2)
	for k, v := range b {
		n[k] = v
	}
	return n
}

func ground(a Atom, env bindings) Tuple {
	t := make(Tuple, len(a.Args))
	for i, arg := range a.Args {
		if arg.Var != "" {
			t[i] = env[arg.Var]
		} else {
			t[i] = arg.Const
		}
	}
	return t
}

// evalRule enumerates the rule's derivations; when deltaPos ≥ 0, that body
// atom ranges over delta instead of db.
func evalRule(db *DB, r Rule, deltaPos int, delta *DB, yield func(Tuple)) {
	// Order: positives first (delta-substituted), then negatives as checks.
	var positives, negatives []Atom
	posIdx := -1
	for i, a := range r.Body {
		if a.Negated {
			negatives = append(negatives, a)
			continue
		}
		if i == deltaPos {
			posIdx = len(positives)
		}
		positives = append(positives, a)
	}
	var rec func(i int, env bindings)
	rec = func(i int, env bindings) {
		if i >= len(positives) {
			for _, neg := range negatives {
				if db.Has(neg.Pred, ground(neg, env)) {
					return
				}
			}
			yield(ground(r.Head, env))
			return
		}
		src := db
		if i == posIdx {
			src = delta
		}
		matchAtom(src, positives[i], env, func(e2 bindings) { rec(i+1, e2) })
	}
	rec(0, bindings{})
}

// EvalNaive computes the stratified least model by naive iteration.
func (p *Program) EvalNaive(db *DB) *DB {
	cur := db.Clone()
	for _, stratum := range p.strata {
		for {
			changed := false
			for _, r := range stratum {
				evalRule(cur, r, -1, nil, func(t Tuple) {
					if cur.Add(r.Head.Pred, t) {
						changed = true
					}
				})
			}
			if !changed {
				break
			}
		}
	}
	return cur
}

// EvalSemiNaive computes the same model with delta iteration.
func (p *Program) EvalSemiNaive(db *DB) *DB {
	cur := db.Clone()
	for _, stratum := range p.strata {
		delta := NewDB()
		for _, r := range stratum {
			evalRule(cur, r, -1, nil, func(t Tuple) {
				if !cur.Has(r.Head.Pred, t) {
					delta.Add(r.Head.Pred, t)
				}
			})
		}
		for {
			empty := true
			for p2 := range delta.rels {
				if delta.Size(p2) > 0 {
					empty = false
					break
				}
			}
			if empty {
				break
			}
			for p2 := range delta.rels {
				for _, t := range delta.Tuples(p2) {
					cur.Add(p2, t)
				}
			}
			next := NewDB()
			for _, r := range stratum {
				for i, a := range r.Body {
					if a.Negated || delta.Size(a.Pred) == 0 {
						continue
					}
					evalRule(cur, r, i, delta, func(t Tuple) {
						if !cur.Has(r.Head.Pred, t) {
							next.Add(r.Head.Pred, t)
						}
					})
				}
			}
			delta = next
		}
	}
	return cur
}
