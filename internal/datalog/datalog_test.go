package datalog

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func tcRules() []Rule {
	return []Rule{
		{Head: Atom{Pred: "tc", Args: []Term{V("X"), V("Y")}},
			Body: []Atom{{Pred: "edge", Args: []Term{V("X"), V("Y")}}}},
		{Head: Atom{Pred: "tc", Args: []Term{V("X"), V("Z")}},
			Body: []Atom{
				{Pred: "tc", Args: []Term{V("X"), V("Y")}},
				{Pred: "edge", Args: []Term{V("Y"), V("Z")}},
			}},
	}
}

func chain(n int) *DB {
	db := NewDB()
	for i := 0; i < n; i++ {
		db.Add("edge", Tuple{fmt.Sprint(i), fmt.Sprint(i + 1)})
	}
	return db
}

func TestTransitiveClosureNaive(t *testing.T) {
	p, err := NewProgram(tcRules())
	if err != nil {
		t.Fatal(err)
	}
	out := p.EvalNaive(chain(4))
	if out.Size("tc") != 10 {
		t.Fatalf("tc = %d, want 10", out.Size("tc"))
	}
	if !out.Has("tc", Tuple{"0", "4"}) {
		t.Fatal("0->4 missing")
	}
}

func TestSemiNaiveAgreesWithNaive(t *testing.T) {
	p, err := NewProgram(tcRules())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint8) bool {
		n := int(seed%16) + 2
		a := p.EvalNaive(chain(n))
		b := p.EvalSemiNaive(chain(n))
		if a.Size("tc") != b.Size("tc") {
			return false
		}
		for _, tup := range a.Tuples("tc") {
			if !b.Has("tc", tup) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStratifiedNegation(t *testing.T) {
	rules := append(tcRules(),
		Rule{Head: Atom{Pred: "unreach", Args: []Term{V("X"), V("Y")}},
			Body: []Atom{
				{Pred: "node", Args: []Term{V("X")}},
				{Pred: "node", Args: []Term{V("Y")}},
				{Pred: "tc", Negated: true, Args: []Term{V("X"), V("Y")}},
			}},
	)
	p, err := NewProgram(rules)
	if err != nil {
		t.Fatal(err)
	}
	db := chain(2) // 0->1->2
	for i := 0; i <= 2; i++ {
		db.Add("node", Tuple{fmt.Sprint(i)})
	}
	out := p.EvalSemiNaive(db)
	// 9 pairs − 3 reachable = 6 unreachable.
	if out.Size("unreach") != 6 {
		t.Fatalf("unreach = %d", out.Size("unreach"))
	}
}

func TestUnstratifiedRejected(t *testing.T) {
	rules := []Rule{
		{Head: Atom{Pred: "p", Args: []Term{V("X")}},
			Body: []Atom{
				{Pred: "q", Args: []Term{V("X")}},
				{Pred: "p", Negated: true, Args: []Term{V("X")}},
			}},
	}
	if _, err := NewProgram(rules); err == nil || !strings.Contains(err.Error(), "stratified") {
		t.Fatalf("negative cycle accepted: %v", err)
	}
}

func TestUnsafeRulesRejected(t *testing.T) {
	bad := []Rule{
		{Head: Atom{Pred: "p", Args: []Term{V("X")}}, Body: []Atom{{Pred: "q", Args: []Term{V("Y")}}}},
	}
	if _, err := NewProgram(bad); err == nil {
		t.Fatal("unsafe head accepted")
	}
	bad2 := []Rule{
		{Head: Atom{Pred: "p", Args: []Term{V("X")}},
			Body: []Atom{
				{Pred: "q", Args: []Term{V("X")}},
				{Pred: "r", Negated: true, Args: []Term{V("Z")}},
			}},
	}
	if _, err := NewProgram(bad2); err == nil {
		t.Fatal("unsafe negation accepted")
	}
	bad3 := []Rule{
		{Head: Atom{Pred: "p", Negated: true, Args: []Term{V("X")}},
			Body: []Atom{{Pred: "q", Args: []Term{V("X")}}}},
	}
	if _, err := NewProgram(bad3); err == nil {
		t.Fatal("negated head accepted")
	}
}

func TestConstantsAndRepeatedVars(t *testing.T) {
	rules := []Rule{
		{Head: Atom{Pred: "loop", Args: []Term{V("X")}},
			Body: []Atom{{Pred: "edge", Args: []Term{V("X"), V("X")}}}},
		{Head: Atom{Pred: "fromzero", Args: []Term{V("Y")}},
			Body: []Atom{{Pred: "edge", Args: []Term{C("0"), V("Y")}}}},
	}
	p, err := NewProgram(rules)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	db.Add("edge", Tuple{"0", "1"})
	db.Add("edge", Tuple{"2", "2"})
	out := p.EvalNaive(db)
	if out.Size("loop") != 1 || !out.Has("loop", Tuple{"2"}) {
		t.Fatal("repeated var match wrong")
	}
	if out.Size("fromzero") != 1 || !out.Has("fromzero", Tuple{"1"}) {
		t.Fatal("constant match wrong")
	}
}

func TestDBBasics(t *testing.T) {
	db := NewDB()
	if !db.Add("p", Tuple{"a"}) || db.Add("p", Tuple{"a"}) {
		t.Fatal("Add dedup wrong")
	}
	cp := db.Clone()
	cp.Add("p", Tuple{"b"})
	if db.Size("p") != 1 || cp.Size("p") != 2 {
		t.Fatal("clone shares storage")
	}
	if got := db.Tuples("p"); len(got) != 1 || got[0][0] != "a" {
		t.Fatalf("tuples = %v", got)
	}
}

func TestAtomRuleString(t *testing.T) {
	r := tcRules()[1]
	s := r.String()
	if !strings.Contains(s, "tc(X,Z) <- tc(X,Y), edge(Y,Z)") {
		t.Fatalf("rule string = %q", s)
	}
	na := Atom{Pred: "p", Negated: true, Args: []Term{C("a")}}
	if na.String() != "not p(a)" {
		t.Fatalf("atom string = %q", na.String())
	}
}

func TestSameGeneration(t *testing.T) {
	// Nonlinear recursion: sg(X,Y) <- sg(X1,Y1) with parents.
	rules := []Rule{
		{Head: Atom{Pred: "sg", Args: []Term{V("X"), V("X")}},
			Body: []Atom{{Pred: "person", Args: []Term{V("X")}}}},
		{Head: Atom{Pred: "sg", Args: []Term{V("X"), V("Y")}},
			Body: []Atom{
				{Pred: "par", Args: []Term{V("X"), V("XP")}},
				{Pred: "sg", Args: []Term{V("XP"), V("YP")}},
				{Pred: "par", Args: []Term{V("Y"), V("YP")}},
			}},
	}
	p, err := NewProgram(rules)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	// Balanced binary tree of depth 2: root r; children a,b; grandchildren.
	db.Add("par", Tuple{"a", "r"})
	db.Add("par", Tuple{"b", "r"})
	db.Add("par", Tuple{"aa", "a"})
	db.Add("par", Tuple{"ab", "a"})
	db.Add("par", Tuple{"ba", "b"})
	for _, n := range []string{"r", "a", "b", "aa", "ab", "ba"} {
		db.Add("person", Tuple{n})
	}
	out := p.EvalSemiNaive(db)
	if !out.Has("sg", Tuple{"a", "b"}) || !out.Has("sg", Tuple{"aa", "ba"}) {
		t.Fatalf("sg missing pairs: %v", out.Tuples("sg"))
	}
	if out.Has("sg", Tuple{"a", "aa"}) {
		t.Fatal("cross-generation pair derived")
	}
}
