package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stats records what an evaluation did — the paper's §5 asks for "tools
// supporting the design, debugging, and monitoring of LOGRES databases
// and programs"; this is the monitoring half. Collected on every Run.
type Stats struct {
	// Steps is the total number of one-step operator applications (or
	// semi-naive rounds) across all strata.
	Steps int
	// Strata is the number of evaluation strata used.
	Strata int
	// SemiNaiveStrata counts strata that ran under delta iteration.
	SemiNaiveStrata int
	// VectorizedStrata counts semi-naive strata that ran on the columnar
	// engine (a subset of SemiNaiveStrata).
	VectorizedStrata int
	// Firings maps rule ids to the number of head instantiations
	// (valuations that reached the head, including suppressed ones).
	Firings map[int]int
	// Invented is the number of oids invented.
	Invented int
	// Workers is the worker count the evaluation ran with (1 = serial).
	Workers int
	// Shards is the FactSet shard count parallel evaluation partitioned
	// the extension into (1 = unsharded serial merge).
	Shards int
	// RoundTimings records the wall-clock duration and task count of each
	// parallel semi-naive round (empty for serial evaluations).
	RoundTimings []RoundTiming
	// MergeTimings records the per-shard wall-clock of each parallel
	// ordered delta merge (empty for serial or single-shard evaluations).
	MergeTimings []MergeTiming
	// DeltaCurve records, per fixpoint round, how many facts the round
	// contributed and the resulting total — the convergence curve of the
	// run, in evaluation order across strata. Deterministic: parallel
	// configurations record the same curve as serial.
	DeltaCurve []RoundDelta
	// Abort is "" when the run reached a fixpoint; otherwise the abort
	// class: an exhausted budget axis ("rounds", "facts", "oids",
	// "deadline"), "canceled", "panic", or "error".
	Abort string
	// AbortStratum/AbortRound locate the abort (stratum -1 when strata
	// do not apply). Meaningful only when Abort is non-empty.
	AbortStratum, AbortRound int
}

// recordAbort classifies the error a run returned.
func (st *Stats) recordAbort(err error) {
	var be *BudgetError
	var ce *CanceledError
	var pe *PanicError
	switch {
	case errors.As(err, &be):
		st.Abort = string(be.Axis)
		st.AbortStratum, st.AbortRound = be.Stratum, be.Round
	case errors.As(err, &ce):
		st.Abort = "canceled"
		st.AbortStratum, st.AbortRound = ce.Stratum, ce.Round
	case errors.As(err, &pe):
		st.Abort = "panic"
	default:
		st.Abort = "error"
	}
}

// RoundDelta is one point on a run's convergence curve: the fact-count
// change one fixpoint round produced.
type RoundDelta struct {
	// Stratum is the evaluation stratum the round ran in (-1 for
	// non-stratified operators that report no stratum).
	Stratum int
	// Round is the round index within its stratum (0 = the full pass).
	Round int
	// Delta is the number of facts the round contributed (for the general
	// operator: the signed change, deletions included).
	Delta int
	// Total is the fact count after the round.
	Total int
}

// RoundTiming is the timing record of one parallel semi-naive round.
type RoundTiming struct {
	// Round is the round index within its stratum (0 = the full pass).
	Round int
	// Tasks is the number of (rule × delta-position × chunk) tasks the
	// round fanned out.
	Tasks int
	// Duration is the round's wall-clock time, task generation included.
	Duration time.Duration
}

// MergeTiming is the timing record of one parallel ordered delta merge:
// how long each shard goroutine spent applying its partition.
type MergeTiming struct {
	// Round is the semi-naive round the merge belongs to (0 = round 0's
	// task-result merge).
	Round int
	// Shards is the merge fan-out.
	Shards int
	// ShardDurations is the per-shard wall-clock, indexed by shard.
	ShardDurations []time.Duration
}

func newStats() *Stats { return &Stats{Firings: map[int]int{}} }

// LastStats returns the statistics of the most recent Run (nil before any
// run).
func (p *Program) LastStats() *Stats { return p.stats }

// Explain renders the compiled program structure and, when available, the
// last run's statistics.
func (p *Program) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program: %d rules", len(p.rules))
	if len(p.denials) > 0 {
		fmt.Fprintf(&b, ", %d denials", len(p.denials))
	}
	if p.stratified {
		fmt.Fprintf(&b, ", stratified into %d strata\n", len(p.strata))
	} else {
		b.WriteString(", NOT stratified (whole-program inflationary)\n")
	}
	for i, stratum := range p.strata {
		mode := "one-step inflationary"
		if p.opts.SemiNaive && stratumSemiNaiveEligible(stratum) {
			mode = "semi-naive"
			if p.opts.Vectorize && stratumVectorizable(stratum) {
				mode = "semi-naive (vectorized)"
			}
		}
		if p.opts.NonInflationary {
			mode = "non-inflationary"
		}
		fmt.Fprintf(&b, "stratum %d (%s):\n", i, mode)
		for _, r := range stratum {
			tag := ""
			if r.generated {
				tag = "  [generated]"
			}
			if r.inventive {
				tag += "  [invents oids]"
			}
			fmt.Fprintf(&b, "  #%d %s%s\n", r.id, r, tag)
		}
	}
	for _, d := range p.denials {
		fmt.Fprintf(&b, "denial: %s\n", d)
	}
	if st := p.stats; st != nil {
		fmt.Fprintf(&b, "last run: %d steps, %d oids invented\n", st.Steps, st.Invented)
		if st.Abort != "" {
			fmt.Fprintf(&b, "  aborted (%s) at stratum %d, round %d\n", st.Abort, st.AbortStratum, st.AbortRound)
		}
		if st.Workers > 1 {
			// Workers/Shards are only informative when the last run actually
			// fanned out; serial runs record Workers == 1.
			fmt.Fprintf(&b, "workers: %d\n", st.Workers)
			if st.Shards > 1 {
				fmt.Fprintf(&b, "shards: %d\n", st.Shards)
			}
		}
		if len(st.RoundTimings) > 0 {
			var total time.Duration
			var tasks int
			for _, rt := range st.RoundTimings {
				total += rt.Duration
				tasks += rt.Tasks
			}
			fmt.Fprintf(&b, "  parallel semi-naive: %d rounds, %d tasks, %s total\n",
				len(st.RoundTimings), tasks, total)
		}
		if len(st.MergeTimings) > 0 {
			var longest, sum time.Duration
			for _, mt := range st.MergeTimings {
				for _, d := range mt.ShardDurations {
					sum += d
					if d > longest {
						longest = d
					}
				}
			}
			fmt.Fprintf(&b, "  sharded merges: %d merges × %d shards, %s critical path, %s aggregate\n",
				len(st.MergeTimings), st.Shards, longest, sum)
		}
		if len(st.DeltaCurve) > 0 {
			b.WriteString("  delta curve:")
			last := -2
			for _, rd := range st.DeltaCurve {
				if rd.Stratum != last {
					fmt.Fprintf(&b, " [s%d]", rd.Stratum)
					last = rd.Stratum
				}
				fmt.Fprintf(&b, " %+d", rd.Delta)
			}
			b.WriteString("\n")
		}
		// Rules of the stratum a budget abort stopped in get tagged so the
		// firing table attributes the exhausted axis to its rules.
		aborted := map[int]bool{}
		if st.Abort != "" && st.AbortStratum >= 0 && st.AbortStratum < len(p.strata) {
			for _, r := range p.strata[st.AbortStratum] {
				aborted[r.id] = true
			}
		}
		var ids []int
		for id := range st.Firings {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			tag := ""
			if aborted[id] {
				tag = fmt.Sprintf("  [stratum %d aborted: %s]", st.AbortStratum, st.Abort)
			}
			fmt.Fprintf(&b, "  rule #%d fired %d times%s\n", id, st.Firings[id], tag)
		}
	}
	return b.String()
}
