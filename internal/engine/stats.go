package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stats records what an evaluation did — the paper's §5 asks for "tools
// supporting the design, debugging, and monitoring of LOGRES databases
// and programs"; this is the monitoring half. Collected on every Run.
type Stats struct {
	// Steps is the total number of one-step operator applications (or
	// semi-naive rounds) across all strata.
	Steps int
	// Strata is the number of evaluation strata used.
	Strata int
	// SemiNaiveStrata counts strata that ran under delta iteration.
	SemiNaiveStrata int
	// Firings maps rule ids to the number of head instantiations
	// (valuations that reached the head, including suppressed ones).
	Firings map[int]int
	// Invented is the number of oids invented.
	Invented int
	// Workers is the worker count the evaluation ran with (1 = serial).
	Workers int
	// RoundTimings records the wall-clock duration and task count of each
	// parallel semi-naive round (empty for serial evaluations).
	RoundTimings []RoundTiming
}

// RoundTiming is the timing record of one parallel semi-naive round.
type RoundTiming struct {
	// Round is the round index within its stratum (0 = the full pass).
	Round int
	// Tasks is the number of (rule × delta-position × chunk) tasks the
	// round fanned out.
	Tasks int
	// Duration is the round's wall-clock time, task generation included.
	Duration time.Duration
}

func newStats() *Stats { return &Stats{Firings: map[int]int{}} }

// LastStats returns the statistics of the most recent Run (nil before any
// run).
func (p *Program) LastStats() *Stats { return p.stats }

// Explain renders the compiled program structure and, when available, the
// last run's statistics.
func (p *Program) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program: %d rules", len(p.rules))
	if len(p.denials) > 0 {
		fmt.Fprintf(&b, ", %d denials", len(p.denials))
	}
	if p.stratified {
		fmt.Fprintf(&b, ", stratified into %d strata\n", len(p.strata))
	} else {
		b.WriteString(", NOT stratified (whole-program inflationary)\n")
	}
	for i, stratum := range p.strata {
		mode := "one-step inflationary"
		if p.opts.SemiNaive && stratumSemiNaiveEligible(stratum) {
			mode = "semi-naive"
		}
		if p.opts.NonInflationary {
			mode = "non-inflationary"
		}
		fmt.Fprintf(&b, "stratum %d (%s):\n", i, mode)
		for _, r := range stratum {
			tag := ""
			if r.generated {
				tag = "  [generated]"
			}
			if r.inventive {
				tag += "  [invents oids]"
			}
			fmt.Fprintf(&b, "  #%d %s%s\n", r.id, r, tag)
		}
	}
	for _, d := range p.denials {
		fmt.Fprintf(&b, "denial: %s\n", d)
	}
	if st := p.stats; st != nil {
		fmt.Fprintf(&b, "last run: %d steps, %d oids invented\n", st.Steps, st.Invented)
		if st.Workers > 0 {
			fmt.Fprintf(&b, "workers: %d\n", st.Workers)
		}
		if len(st.RoundTimings) > 0 {
			var total time.Duration
			var tasks int
			for _, rt := range st.RoundTimings {
				total += rt.Duration
				tasks += rt.Tasks
			}
			fmt.Fprintf(&b, "  parallel semi-naive: %d rounds, %d tasks, %s total\n",
				len(st.RoundTimings), tasks, total)
		}
		var ids []int
		for id := range st.Firings {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			fmt.Fprintf(&b, "  rule #%d fired %d times\n", id, st.Firings[id])
		}
	}
	return b.String()
}
