package engine

import (
	"sort"
	"time"

	"logres/internal/guard"
	"logres/internal/obs"
)

// Trace emission helpers. Every evaluation path — the serial and
// parallel one-step operators, serial and parallel semi-naive
// iteration, and the non-inflationary operator — reports through these
// so the event stream has one shape regardless of configuration:
//
//	eval.begin
//	  stratum.begin
//	    round.begin
//	    (oid.invent …)        — in evaluation order
//	    (rule.fire …)         — per-round firing diffs, rule-id order
//	    round.end             — delta size and new total
//	    (budget …)            — consumption against each armed axis
//	  stratum.end
//	eval.end | abort
//
// Deterministic kinds carry only evaluation-determined payloads, so for
// a fixed program the canonical stream is byte-identical across
// workers × shards configurations (the parallel operators already
// guarantee bit-identical results and firing counts; these helpers emit
// from the orchestrating goroutine at the same boundaries the serial
// engine hits).
//
// The tracer-off fast path is a nil check per call site; no time.Now,
// no allocation.

// tracing reports whether a tracer is attached.
func (p *Program) tracing() bool { return p.opts.Tracer != nil }

// emit sends one event to the attached tracer.
func (p *Program) emit(ev obs.Event) {
	if t := p.opts.Tracer; t != nil {
		t.Event(ev)
	}
}

// traceNow is time.Now gated on tracing, so untraced rounds never read
// the clock for the tracer's benefit.
func (p *Program) traceNow() time.Time {
	if p.tracing() {
		return time.Now()
	}
	return time.Time{}
}

// traceSince converts a traceNow mark into an elapsed duration.
func (p *Program) traceSince(start time.Time) time.Duration {
	if start.IsZero() {
		return 0
	}
	return time.Since(start)
}

// curStratum returns the stratum for event attribution (-1 when strata
// do not apply).
func (p *Program) curStratum() int {
	if p.guard == nil {
		return 0
	}
	return p.guard.Stratum()
}

// traceEvalBegin opens the run's event stream.
func (p *Program) traceEvalBegin(f0 *FactSet) {
	if !p.tracing() {
		return
	}
	p.emit(obs.Event{
		Kind:    obs.KindEvalBegin,
		Workers: p.opts.Workers,
		Shards:  p.opts.Shards,
		Count:   len(p.strata),
		Total:   f0.TotalSize(),
	})
}

// traceEvalEnd closes a successful run.
func (p *Program) traceEvalEnd(f *FactSet, start time.Time) {
	if !p.tracing() {
		return
	}
	p.emit(obs.Event{
		Kind:     obs.KindEvalEnd,
		Count:    p.stats.Steps,
		Total:    f.TotalSize(),
		Duration: p.traceSince(start),
	})
}

// traceAbort reports an aborted run, attributing the budget axis when
// the error is a *BudgetError.
func (p *Program) traceAbort(err error) {
	if !p.tracing() {
		return
	}
	st := p.stats
	ev := obs.Event{Kind: obs.KindAbort, Detail: err.Error()}
	if st != nil {
		ev.Axis, ev.Stratum, ev.Round = st.Abort, st.AbortStratum, st.AbortRound
	}
	p.emit(ev)
}

// traceStratumBegin opens one stratum's events.
func (p *Program) traceStratumBegin(stratum int, rules []*crule, mode string) {
	if !p.tracing() {
		return
	}
	p.emit(obs.Event{Kind: obs.KindStratumBegin, Stratum: stratum, Count: len(rules), Detail: mode})
}

// traceStratumEnd closes one stratum's events.
func (p *Program) traceStratumEnd(stratum int, f *FactSet) {
	if !p.tracing() {
		return
	}
	p.emit(obs.Event{Kind: obs.KindStratumEnd, Stratum: stratum, Total: f.TotalSize()})
}

// traceRoundBegin opens one fixpoint round.
func (p *Program) traceRoundBegin(round int) {
	if !p.tracing() {
		return
	}
	p.emit(obs.Event{Kind: obs.KindRoundBegin, Stratum: p.curStratum(), Round: round})
}

// traceRoundEnd emits the round's firing diffs and closing event, and
// records the round on the stats delta curve. delta is the number of
// facts the round contributed (signed under the general operator),
// total the fact count after the round.
func (p *Program) traceRoundEnd(round, delta, total int, start time.Time) {
	stratum := p.curStratum()
	if p.stats != nil {
		p.stats.DeltaCurve = append(p.stats.DeltaCurve, RoundDelta{
			Stratum: stratum, Round: round, Delta: delta, Total: total,
		})
	}
	if !p.tracing() {
		return
	}
	p.traceFirings(stratum, round)
	p.emit(obs.Event{
		Kind:     obs.KindRoundEnd,
		Stratum:  stratum,
		Round:    round,
		Count:    delta,
		Total:    total,
		Duration: p.traceSince(start),
	})
	p.traceBudget(round, total)
}

// traceFirings diffs the cumulative firing counts against the previous
// round boundary and emits one rule.fire event per rule that fired, in
// rule-id order (deterministic regardless of evaluation order).
func (p *Program) traceFirings(stratum, round int) {
	if p.stats == nil {
		return
	}
	if p.lastFirings == nil {
		p.lastFirings = map[int]int{}
	}
	var ids []int
	for id, n := range p.stats.Firings {
		if n > p.lastFirings[id] {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		n := p.stats.Firings[id]
		p.emit(obs.Event{
			Kind:    obs.KindRuleFire,
			Stratum: stratum,
			Round:   round,
			Rule:    id,
			Count:   n - p.lastFirings[id],
		})
		p.lastFirings[id] = n
	}
}

// traceBudget reports consumption against each armed budget axis at a
// round boundary — the streaming view of what a later *BudgetError
// would attribute.
func (p *Program) traceBudget(round, total int) {
	g := p.guard
	if g == nil {
		return
	}
	b := g.Budget()
	stratum := g.Stratum()
	if max := p.opts.MaxSteps; b.MaxRounds > 0 || max > 0 {
		limit := int64(max)
		if b.MaxRounds > 0 {
			limit = int64(b.MaxRounds)
		}
		p.emit(obs.Event{Kind: obs.KindBudget, Stratum: stratum, Round: round,
			Axis: string(guard.AxisRounds), Count: round + 1, Limit: limit})
	}
	if b.MaxFacts > 0 {
		p.emit(obs.Event{Kind: obs.KindBudget, Stratum: stratum, Round: round,
			Axis: string(guard.AxisFacts), Count: g.Derived(total), Limit: int64(b.MaxFacts)})
	}
	if b.MaxOIDs > 0 {
		p.emit(obs.Event{Kind: obs.KindBudget, Stratum: stratum, Round: round,
			Axis: string(guard.AxisOIDs), Count: p.invented(), Limit: int64(b.MaxOIDs)})
	}
}

// traceInvent reports one invented oid. Called from instantiateHead on
// the orchestrating goroutine only (worker tasks never invent: parallel
// semi-naive strata are invention-free and the parallel one-step
// operator sequences inventive rules serially), so invention events are
// emitted in the bit-identical serial order.
func (c *evalCtx) traceInvent(r *crule, pred string, oid int64) {
	t := c.p.opts.Tracer
	if t == nil || !c.orchestrator {
		return
	}
	c.p.emit(obs.Event{
		Kind:    obs.KindOIDInvent,
		Stratum: c.p.curStratum(),
		Round:   c.round,
		Rule:    r.id,
		Pred:    pred,
		OID:     oid,
	})
}

// traceMerge reports one parallel sharded delta merge (a
// nondeterministic-kind event: serial configurations never emit it).
// traceParallelDispatch reports one round actually fanning out to the
// worker pool (rounds under snParallelCutoff run inline and emit
// nothing). Nondeterministic kind: present only on parallel
// configurations.
func (p *Program) traceParallelDispatch(round, tasks, probe int) {
	if !p.tracing() {
		return
	}
	p.emit(obs.Event{
		Kind:    obs.KindParallelDispatch,
		Stratum: p.curStratum(),
		Round:   round,
		Count:   tasks,
		Total:   probe,
	})
}

func (p *Program) traceMerge(round int, ms MergeStats) {
	if !p.tracing() || len(ms.ShardDurations) == 0 {
		return
	}
	var longest time.Duration
	for _, d := range ms.ShardDurations {
		if d > longest {
			longest = d
		}
	}
	p.emit(obs.Event{Kind: obs.KindMerge, Round: round, Shards: ms.Shards, Duration: longest})
}
