package engine

import (
	"strings"
	"testing"
)

// Tests of the non-inflationary semantics (§1: rules are parametric in
// their semantics).

func noninfOpts() Options {
	o := DefaultOptions()
	o.NonInflationary = true
	return o
}

func TestNoninfAgreesOnPositivePrograms(t *testing.T) {
	// On positive programs both semantics compute the least model.
	schemaSrc := parentSchema
	rulesSrc := `
anc(anc: X, des: Y) <- parent(par: X, chil: Y).
anc(anc: X, des: Z) <- anc(anc: X, des: Y), parent(par: Y, chil: Z).
`
	schema := schemaOf(t, schemaSrc)
	edb := seedEDB(t, schema, `
parent(par: "a", chil: "b").
parent(par: "b", chil: "c").
parent(par: "c", chil: "d").
`)
	pInf, err := tryBuild(schemaSrc, rulesSrc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pNon, err := tryBuild(schemaSrc, rulesSrc, noninfOpts())
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := int64(0), int64(0)
	fInf, err := pInf.Run(edb, &c1)
	if err != nil {
		t.Fatal(err)
	}
	fNon, err := pNon.Run(edb, &c2)
	if err != nil {
		t.Fatal(err)
	}
	if !fInf.Equal(fNon) {
		t.Fatalf("semantics disagree on a positive program:\ninf: %v\nnon: %v",
			tuples(fInf, "anc"), tuples(fNon, "anc"))
	}
}

func TestNoninfDropsNonRederivableFacts(t *testing.T) {
	// Derived facts persist only while re-derivable: a derived fact whose
	// premise is gone from E is not part of the non-inflationary
	// instance, while the inflationary instance keeps it once derived
	// (here it never had the premise, so both agree) — the interesting
	// case is a fact derivable in early steps only. `once` is derivable
	// at step 1 from seed; `blocker` then kills the derivation; under
	// inflationary semantics `once` survives, under non-inflationary it
	// vanishes at the fixpoint.
	schemaSrc := `
associations
  SEED = (k: integer);
  ONCE = (k: integer);
  BLOCKER = (k: integer);
`
	rulesSrc := `
once(k: X) <- seed(k: X), not blocker(k: X).
blocker(k: X) <- seed(k: X).
`
	schema := schemaOf(t, schemaSrc)
	edb := seedEDB(t, schema, `seed(k: 1).`)

	optsInf := DefaultOptions()
	optsInf.Stratify = false // force whole-program evaluation for parity
	pInf, err := tryBuild(schemaSrc, rulesSrc, optsInf)
	if err != nil {
		t.Fatal(err)
	}
	c1 := int64(0)
	fInf, err := pInf.Run(edb, &c1)
	if err != nil {
		t.Fatal(err)
	}
	if fInf.Size("once") != 1 {
		t.Fatalf("inflationary once = %d, want 1 (kept once derived)", fInf.Size("once"))
	}

	pNon, err := tryBuild(schemaSrc, rulesSrc, noninfOpts())
	if err != nil {
		t.Fatal(err)
	}
	c2 := int64(0)
	fNon, err := pNon.Run(edb, &c2)
	if err != nil {
		t.Fatal(err)
	}
	if fNon.Size("once") != 0 {
		t.Fatalf("non-inflationary once = %d, want 0 (no longer derivable)", fNon.Size("once"))
	}
	if fNon.Size("blocker") != 1 {
		t.Fatalf("blocker = %d", fNon.Size("blocker"))
	}
}

func TestNoninfUndefinedOnOscillation(t *testing.T) {
	// flip(X) <- seed(X), not flip(X): classic two-cycle, no fixpoint —
	// the semantics is undefined and reported as an error.
	schemaSrc := `
associations
  SEED = (k: integer);
  FLIP = (k: integer);
`
	schema := schemaOf(t, schemaSrc)
	edb := seedEDB(t, schema, `seed(k: 1).`)
	opts := noninfOpts()
	opts.MaxSteps = 100
	p, err := tryBuild(schemaSrc, `flip(k: X) <- seed(k: X), not flip(k: X).`, opts)
	if err != nil {
		t.Fatal(err)
	}
	c := int64(0)
	if _, err := p.Run(edb, &c); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Fatalf("oscillating program not reported: %v", err)
	}
}

func TestNoninfPreservesEDB(t *testing.T) {
	// The extensional base always persists, even when a deletion rule
	// targets it and its premise disappears: deletions only win while
	// derivable in the step.
	schemaSrc := `
associations
  KEEPREL = (k: integer);
  DERIVED = (k: integer);
`
	schema := schemaOf(t, schemaSrc)
	edb := seedEDB(t, schema, `keeprel(k: 1). keeprel(k: 2).`)
	p, err := tryBuild(schemaSrc, `derived(k: X) <- keeprel(k: X).`, noninfOpts())
	if err != nil {
		t.Fatal(err)
	}
	c := int64(0)
	f, err := p.Run(edb, &c)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size("keeprel") != 2 || f.Size("derived") != 2 {
		t.Fatalf("keeprel=%d derived=%d", f.Size("keeprel"), f.Size("derived"))
	}
}

func TestNoninfInventionStable(t *testing.T) {
	// Invention under the non-inflationary operator re-emits the
	// satisfying object instead of re-inventing, so the object population
	// stabilizes with exactly one object per seed.
	schemaSrc := `
classes ITEM = (k: integer);
associations SEED = (k: integer);
`
	schema := schemaOf(t, schemaSrc)
	edb := seedEDB(t, schema, `seed(k: 1). seed(k: 2).`)
	p, err := tryBuild(schemaSrc, `item(self: X, k: K) <- seed(k: K).`, noninfOpts())
	if err != nil {
		t.Fatal(err)
	}
	c := int64(0)
	f, err := p.Run(edb, &c)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size("item") != 2 {
		t.Fatalf("items = %d, want 2", f.Size("item"))
	}
}
