package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"logres/internal/ast"
)

// Incremental view maintenance (DESIGN.md §14). A Maintainer carries the
// per-stratum support state needed to update a program's derived fact
// set in time proportional to the base-fact delta instead of re-running
// the fixpoint: the counting algorithm for non-recursive strata and
// DRed-style delete/rederive for recursive ones (Gupta, Mumick &
// Subrahmanian, "Maintaining Views Incrementally").
//
// Only a prefix of the stratification is maintained incrementally: the
// first stratum whose rules fall outside the eligible fragment (oid
// invention, class or function heads, deletions, negated predicate
// literals, data-function reads) starts the *suffix*, which is always
// recomputed from scratch via Program.RunFrom on top of the maintained
// prefix. The split is per database, decided once at build time; a
// program with no eligible stratum degenerates to caching the last full
// evaluation, which is still enough to serve reads and subscriptions
// without re-deriving per query.
//
// A Maintainer is single-writer: Update and Rebuild must be externally
// serialized (the Database holds its write lock across them). The
// maintained full set is frozen after every update, so any number of
// readers may consult Full() concurrently with each other.

const (
	maintCounting = iota // non-recursive stratum: derivation counts
	maintDRed            // recursive stratum: delete/rederive
)

// maintPlan is the maintenance strategy and support state of one
// eligible stratum.
type maintPlan struct {
	kind      int
	stratum   []*crule
	heads     map[string]bool // predicates this stratum defines
	bodyPreds map[string]bool // positive predicate literals read by the stratum
	counts    map[string]int  // counting only: derivations per head-fact key
}

// Maintainer holds the incremental state of one program over one
// extensional database.
type Maintainer struct {
	prog  *Program
	plans []*maintPlan
	// suffix is the index of the first stratum that is recomputed from
	// scratch; len(strata) when the whole program is maintained.
	suffix int
	// owner maps every head predicate to the index of its defining
	// stratum (a predicate is defined in exactly one stratum: all rules
	// with the same head predicate share a dependency-graph node, hence
	// an SCC, hence a stratum).
	owner map[string]int
	// suffixHeads are the predicates the suffix recomputation can
	// change — the head predicates (including deletion targets) of every
	// suffix stratum.
	suffixHeads map[string]bool

	baseE *FactSet // the committed extensional set the state is synced to
	view  *FactSet // the materialized eligible prefix
	full  *FactSet // the complete derived set (== view when suffix is empty)
	// spare and catchUp double-buffer the view when the whole program is
	// maintained: spare is the view published two epochs ago — no longer
	// reachable by readers, since the Database's write lock serializes
	// Update against every maintained read and readers materialize their
	// results under the read lock — and catchUp is the net view change
	// that brings it up to the current view. Reusing it makes an update
	// O(delta): the spare's merged views and component indexes are
	// maintained in place instead of being cloned and rebuilt per commit.
	spare   *FactSet
	catchUp *ViewDelta
	// fullCounter is the oid counter after the full evaluation — what a
	// from-scratch run starting at the committed state counter would
	// leave behind, so ToInstance(full, schema, fullCounter) is
	// byte-identical to a recomputation.
	fullCounter int64
}

// ViewDelta is the exact fact-level difference of the full derived set
// across one Update: every fact that became derivable and every fact
// that ceased to be, each sorted by fact key, with no overlaps and no
// duplicates.
type ViewDelta struct {
	Adds    []Fact
	Removes []Fact
}

// Empty reports whether the delta changes nothing.
func (d *ViewDelta) Empty() bool { return len(d.Adds) == 0 && len(d.Removes) == 0 }

// NewMaintainer builds the incremental maintenance state for prog over
// the extensional set e (which must be the committed, frozen base) and
// the committed oid counter. The program must be dedicated to the
// maintainer — Update and Rebuild run it — so callers compile their own
// Program rather than sharing one that serves queries concurrently.
func NewMaintainer(prog *Program, e *FactSet, counter int64) (*Maintainer, error) {
	m := &Maintainer{prog: prog, owner: map[string]int{}, suffixHeads: map[string]bool{}}
	m.suffix = len(prog.strata)
	if prog.opts.NonInflationary {
		// The non-inflationary operator deletes non-rederivable facts on
		// every step; no stratum is incrementally maintainable, and the
		// maintainer degenerates to a full-evaluation cache.
		m.suffix = 0
	} else {
		for i, stratum := range prog.strata {
			plan, ok := maintClassify(stratum)
			if !ok {
				m.suffix = i
				break
			}
			m.plans = append(m.plans, plan)
		}
	}
	for i, stratum := range prog.strata {
		for _, r := range stratum {
			if r.head != nil {
				m.owner[r.head.pred] = i
				if i >= m.suffix {
					m.suffixHeads[r.head.pred] = true
				}
			}
		}
	}
	if err := m.Rebuild(e, counter); err != nil {
		return nil, err
	}
	return m, nil
}

// maintClassify decides whether a stratum is incrementally maintainable
// and, if so, by which algorithm. The fragment is deliberately
// conservative — falling back to recomputation is always correct:
// association heads only (no oid invention, no o-value composition, no
// function-extension definitions), no deletions, no head tuple
// variables, no negated predicate literals, and no data-function reads.
// Non-recursive strata use counting; recursive ones use DRed.
func maintClassify(stratum []*crule) (*maintPlan, bool) {
	if len(stratum) == 0 {
		return &maintPlan{kind: maintCounting, heads: map[string]bool{}, bodyPreds: map[string]bool{}, counts: map[string]int{}}, true
	}
	heads := map[string]bool{}
	bodyPreds := map[string]bool{}
	for _, r := range stratum {
		h := r.head
		if h == nil || h.kind != hAssoc || h.negated || h.tupleVar != "" || r.inventive {
			return nil, false
		}
		for _, l := range r.body {
			switch l.kind {
			case pkClass, pkAssoc:
				if l.negated {
					return nil, false
				}
				bodyPreds[l.pred] = true
			case pkCompare, pkBuiltin:
				// Pure given the no-function-read condition below: they
				// evaluate over the bindings, never over the fact set.
			default:
				return nil, false
			}
		}
		if len(ruleFuncReadsAll(r)) > 0 {
			return nil, false
		}
		heads[h.pred] = true
	}
	kind := maintCounting
	for p := range heads {
		if bodyPreds[p] {
			kind = maintDRed
			break
		}
	}
	return &maintPlan{kind: kind, stratum: stratum, heads: heads, bodyPreds: bodyPreds, counts: map[string]int{}}, true
}

// EligibleStrata returns how many leading strata are incrementally
// maintained and the total stratum count.
func (m *Maintainer) EligibleStrata() (prefix, total int) {
	return m.suffix, len(m.prog.strata)
}

// Full returns the maintained full derived set. It is frozen; callers
// must treat it as read-only.
func (m *Maintainer) Full() *FactSet { return m.full }

// Counter returns the oid counter after the full evaluation.
func (m *Maintainer) Counter() int64 { return m.fullCounter }

// Query evaluates a conjunctive goal against the maintained derived set.
func (m *Maintainer) Query(goal []ast.Literal) (*Answer, error) {
	return m.prog.Query(m.full, goal)
}

// CheckDenials re-checks the program's passive constraints against the
// maintained derived set.
func (m *Maintainer) CheckDenials() error { return m.prog.CheckDenials(m.full) }

// Rebuild discards all incremental state and recomputes it from the
// given committed base. Used at construction, after a fallback (an
// Update error leaves the maintainer inconsistent), and after commits
// the propagation rules do not cover (whole-state replacement).
func (m *Maintainer) Rebuild(e *FactSet, counter int64) error {
	m.baseE = e
	m.spare, m.catchUp = nil, nil
	view := e.Clone()
	for _, plan := range m.plans {
		plan.counts = map[string]int{}
		if err := m.initStratum(plan, view); err != nil {
			return err
		}
	}
	m.view = view
	return m.recomputeSuffix(counter)
}

// initStratum materializes one eligible stratum into view and seeds its
// support state. The derived set is identical to what the engine's own
// evaluation produces for the stratum: the eligible fragment is
// monotone, so the inflationary fixpoint is the classical least
// fixpoint.
func (m *Maintainer) initStratum(plan *maintPlan, view *FactSet) error {
	c := &evalCtx{p: m.prog, f: view, counter: new(int64), deltaIdx: -1}
	if plan.kind == maintCounting {
		// Non-recursive: a single pass per rule enumerates every
		// derivation. Head facts cannot feed the stratum's own bodies.
		for _, r := range plan.stratum {
			err := c.matchBody(r.body, 0, newEnv(), func(e *env) error {
				fact, err := c.buildAssocFact(r.head, e)
				if err != nil {
					return err
				}
				plan.counts[fact.Key()]++
				view.Add(fact)
				return nil
			})
			if err != nil {
				return fmt.Errorf("%w (in rule %s)", err, r)
			}
		}
		return nil
	}
	// Recursive: a small semi-naive least fixpoint. DRed keeps no
	// per-derivation state; deletions rediscover support by rederivation.
	delta := NewFactSet()
	for _, r := range plan.stratum {
		err := c.matchBody(r.body, 0, newEnv(), func(e *env) error {
			fact, err := c.buildAssocFact(r.head, e)
			if err != nil {
				return err
			}
			if view.Add(fact) {
				delta.Add(fact)
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("%w (in rule %s)", err, r)
		}
	}
	for delta.TotalSize() > 0 {
		next := NewFactSet()
		if err := m.deltaRound(c, plan, delta, view, view, func(fact Fact) error {
			if view.Add(fact) {
				next.Add(fact)
			}
			return nil
		}); err != nil {
			return err
		}
		delta = next
	}
	return nil
}

// deltaRound runs one delta-restricted round over a stratum: for every
// rule and every positive predicate position whose predicate occurs in
// delta, enumerate the valuations with that position over delta,
// earlier positions over pre, and later positions over post, and hand
// each derived head fact to emit.
func (m *Maintainer) deltaRound(c *evalCtx, plan *maintPlan, delta, pre, post *FactSet, emit func(Fact) error) error {
	for _, r := range plan.stratum {
		for pos, l := range r.body {
			if l.kind != pkClass && l.kind != pkAssoc {
				continue
			}
			if delta.Size(l.pred) == 0 {
				continue
			}
			err := c.matchBodyDeltaFirst(r.body, pos, delta, pre, post, newEnv(), func(e *env) error {
				fact, err := c.buildAssocFact(r.head, e)
				if err != nil {
					return err
				}
				return emit(fact)
			})
			if err != nil {
				return fmt.Errorf("%w (in rule %s)", err, r)
			}
		}
	}
	return nil
}

// matchBodyDeltaFirst enumerates the valuations of body with the
// positive predicate literal at position pos over delta, positions
// before it over pre, and positions after it over post. The delta
// literal — usually far more selective than a leading unbound scan —
// is enumerated first; the remaining literals keep their relative
// order, so every comparison and builtin still evaluates after all the
// predicate literals originally to its left, and the valuation set is
// order-independent (the eligible fragment has no negation).
func (c *evalCtx) matchBodyDeltaFirst(body []resolvedLit, pos int, delta, pre, post *FactSet, e *env, yield func(*env) error) error {
	return c.matchPositive(body[pos], delta, e, func(e2 *env) error {
		return c.matchBodyMixed(body, 0, pos, pre, post, e2, yield)
	})
}

// matchBodyMixed walks every body position except pos (already bound by
// matchBodyDeltaFirst): positions before pos match pre, positions after
// it match post. Non-predicate literals (comparisons, builtins)
// evaluate as usual.
func (c *evalCtx) matchBodyMixed(body []resolvedLit, i, pos int, pre, post *FactSet, e *env, yield func(*env) error) error {
	if i >= len(body) {
		return yield(e)
	}
	if i == pos {
		return c.matchBodyMixed(body, i+1, pos, pre, post, e, yield)
	}
	next := func(e2 *env) error {
		return c.matchBodyMixed(body, i+1, pos, pre, post, e2, yield)
	}
	l := body[i]
	if (l.kind == pkClass || l.kind == pkAssoc) && !l.negated {
		src := post
		if i < pos {
			src = pre
		}
		return c.matchPositive(l, src, e, next)
	}
	return c.matchLit(l, e, next)
}

// recomputeSuffix re-evaluates the ineligible suffix (if any) on top of
// the maintained prefix and freezes the resulting full set for
// concurrent readers.
func (m *Maintainer) recomputeSuffix(counter int64) error {
	if m.suffix >= len(m.prog.strata) {
		m.full = m.view
		if mo := int64(m.view.MaxOID()); mo > counter {
			counter = mo
		}
		m.fullCounter = counter
		m.full.Freeze()
		return nil
	}
	c := counter
	full, err := m.prog.RunFrom(context.Background(), m.suffix, m.view.Clone(), &c)
	if err != nil {
		return err
	}
	m.full = full
	m.fullCounter = c
	m.full.Freeze()
	return nil
}

// Update propagates one committed base-fact delta (removes applied
// before adds, exactly the commit order) through the maintained prefix,
// recomputes the suffix when one exists, and returns the exact
// difference of the full derived set. newE is the newly committed
// (frozen) extensional set and counter the committed oid counter.
//
// On error the maintainer is inconsistent and must be Rebuilt before
// further use; the caller decides whether to pay for that eagerly or on
// the next commit.
func (m *Maintainer) Update(adds, removes []Fact, newE *FactSet, counter int64) (*ViewDelta, error) {
	vd, _, err := m.UpdateStaged(adds, removes, newE, counter)
	return vd, err
}

// UpdateStaged is Update for callers that audit the result before
// committing: alongside the delta it returns a rollback restoring the
// maintainer to its exact pre-update state (view, full set, support
// counts, base), for when commit-time validation rejects the update or
// the commit cannot be made durable. The rollback is valid only until
// the next Update, UpdateStaged, or Rebuild; on error it is nil and
// the maintainer must be Rebuilt as with Update.
func (m *Maintainer) UpdateStaged(adds, removes []Fact, newE *FactSet, counter int64) (*ViewDelta, func(), error) {
	prevView, prevFull := m.view, m.full
	prevBaseE, prevCounter := m.baseE, m.fullCounter
	undoCounts := map[*maintPlan]map[string]int{}

	// Normalize against the base the state is synced to: a remove of an
	// absent fact and an add of a present one are no-ops, and a fact
	// both removed and re-added (removes apply first) nets out.
	addKeys := map[string]bool{}
	for _, f := range adds {
		addKeys[f.Key()] = true
	}
	var effAdds, effRemoves []Fact
	for _, f := range removes {
		if m.baseE.Has(f) && !addKeys[f.Key()] {
			effRemoves = append(effRemoves, f)
		}
	}
	seen := map[string]bool{}
	for _, f := range adds {
		if k := f.Key(); !m.baseE.Has(f) && !seen[k] {
			seen[k] = true
			effAdds = append(effAdds, f)
		}
	}

	oldView, oldFull := m.view, m.full
	newView := m.takeScratch()
	waveAdds, waveRemoves := NewFactSet(), NewFactSet()
	pendAdds := map[int][]Fact{}
	pendRemoves := map[int][]Fact{}

	// Base changes to predicates owned by an eligible stratum are folded
	// into that stratum's pass (presence there also depends on derivation
	// support); everything else — pure extensional predicates and
	// suffix-owned ones — applies directly and joins the wave.
	for _, f := range effRemoves {
		if si, ok := m.owner[f.Pred]; ok && si < m.suffix {
			pendRemoves[si] = append(pendRemoves[si], f)
			continue
		}
		if newView.Remove(f) {
			waveRemoves.Add(f)
		}
	}
	for _, f := range effAdds {
		if si, ok := m.owner[f.Pred]; ok && si < m.suffix {
			pendAdds[si] = append(pendAdds[si], f)
			continue
		}
		if newView.Add(f) {
			waveAdds.Add(f)
		}
	}

	for si, plan := range m.plans {
		var err error
		if plan.kind == maintCounting {
			undo := map[string]int{}
			undoCounts[plan] = undo
			err = m.updateCounting(plan, pendAdds[si], pendRemoves[si], oldView, newView, waveAdds, waveRemoves, undo)
		} else {
			err = m.updateDRed(plan, pendAdds[si], pendRemoves[si], oldView, newView, waveAdds, waveRemoves)
		}
		if err != nil {
			return nil, nil, err
		}
	}

	m.view = newView
	m.baseE = newE
	if err := m.recomputeSuffix(counter); err != nil {
		return nil, nil, err
	}

	// The net view change: the wave records every presence transition,
	// except that DRed's delete-then-rederive can put one fact in both
	// halves (net unchanged).
	viewDiff := &ViewDelta{}
	for _, p := range waveAdds.Preds() {
		for _, f := range waveAdds.Facts(p) {
			if !waveRemoves.Has(f) {
				viewDiff.Adds = append(viewDiff.Adds, f)
			}
		}
	}
	for _, p := range waveRemoves.Preds() {
		for _, f := range waveRemoves.Facts(p) {
			if !waveAdds.Has(f) {
				viewDiff.Removes = append(viewDiff.Removes, f)
			}
		}
	}

	vd := &ViewDelta{}
	if m.suffix >= len(m.prog.strata) {
		// The view is the full set, so the net wave is the exact
		// difference — and the retired view becomes the next update's
		// scratch copy, to be caught up by that same diff.
		vd.Adds, vd.Removes = viewDiff.Adds, viewDiff.Removes
		m.spare, m.catchUp = oldView, viewDiff
	} else {
		// The suffix can only change its own head predicates; everything
		// else changed exactly as the wave says. Diffing the affected
		// predicates of the two frozen full sets covers both.
		cand := map[string]bool{}
		for p := range m.suffixHeads {
			cand[p] = true
		}
		for _, p := range waveAdds.Preds() {
			cand[p] = true
		}
		for _, p := range waveRemoves.Preds() {
			cand[p] = true
		}
		preds := make([]string, 0, len(cand))
		for p := range cand {
			preds = append(preds, p)
		}
		sort.Strings(preds)
		for _, p := range preds {
			for _, f := range m.full.Facts(p) {
				if !oldFull.Has(f) {
					vd.Adds = append(vd.Adds, f)
				}
			}
			for _, f := range oldFull.Facts(p) {
				if !m.full.Has(f) {
					vd.Removes = append(vd.Removes, f)
				}
			}
		}
	}
	sort.Slice(vd.Adds, func(i, j int) bool { return vd.Adds[i].Key() < vd.Adds[j].Key() })
	sort.Slice(vd.Removes, func(i, j int) bool { return vd.Removes[i].Key() < vd.Removes[j].Key() })
	rollback := func() {
		m.view, m.full = prevView, prevFull
		m.baseE, m.fullCounter = prevBaseE, prevCounter
		// The scratch copy was consumed and mutated; the next update
		// falls back to cloning.
		m.spare, m.catchUp = nil, nil
		for plan, undo := range undoCounts {
			for k, v := range undo {
				if v == 0 {
					delete(plan.counts, k)
				} else {
					plan.counts[k] = v
				}
			}
		}
	}
	return vd, rollback, nil
}

// takeScratch returns the working copy an update mutates: the spare
// view double-buffer caught up to the current view when one is
// available — an O(delta) replay that preserves the spare's
// incrementally maintained merged views and component indexes — or a
// fresh clone otherwise. The spare is consumed either way, so an
// update that fails mid-propagation never leaves a half-mutated spare
// behind (the next update falls back to cloning).
func (m *Maintainer) takeScratch() *FactSet {
	sp, cu := m.spare, m.catchUp
	m.spare, m.catchUp = nil, nil
	if sp == nil || cu == nil {
		return m.view.Clone()
	}
	sp.Thaw()
	for _, f := range cu.Removes {
		sp.Remove(f)
	}
	for _, f := range cu.Adds {
		sp.Add(f)
	}
	if sp.TotalSize() != m.view.TotalSize() {
		// Defensive: the replay drifted from the published view (it never
		// should — the catch-up is the exact net difference).
		return m.view.Clone()
	}
	return sp
}

// updateCounting propagates a delta through one non-recursive stratum:
// a signed delta-position pass per rule computes the change in
// derivation count per head fact, and presence flips (a fact is present
// iff it is extensional or has positive support) extend the wave.
func (m *Maintainer) updateCounting(plan *maintPlan, pAdds, pRems []Fact, oldView, newView, waveAdds, waveRemoves *FactSet, undo map[string]int) error {
	type deltaEntry struct {
		fact Fact
		d    int
	}
	delta := map[string]*deltaEntry{}
	c := &evalCtx{p: m.prog, f: newView, counter: new(int64), deltaIdx: -1}
	for _, signed := range []struct {
		fs *FactSet
		d  int
	}{{waveAdds, 1}, {waveRemoves, -1}} {
		sign := signed.d
		if err := m.deltaRound(c, plan, signed.fs, newView, oldView, func(fact Fact) error {
			k := fact.Key()
			de := delta[k]
			if de == nil {
				de = &deltaEntry{fact: fact}
				delta[k] = de
			}
			de.d += sign
			return nil
		}); err != nil {
			return err
		}
	}

	touched := map[string]Fact{}
	for k, de := range delta {
		touched[k] = de.fact
	}
	eAdd := map[string]bool{}
	eRem := map[string]bool{}
	for _, f := range pAdds {
		k := f.Key()
		touched[k] = f
		eAdd[k] = true
	}
	for _, f := range pRems {
		k := f.Key()
		touched[k] = f
		eRem[k] = true
	}
	keys := make([]string, 0, len(touched))
	for k := range touched {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fact := touched[k]
		d := 0
		if de := delta[k]; de != nil {
			d = de.d
		}
		cntOld := plan.counts[k]
		cntNew := cntOld + d
		if cntNew < 0 {
			return fmt.Errorf("engine: negative support count %d for %s", cntNew, fact)
		}
		inEold := m.baseE.Has(fact)
		inEnew := (inEold && !eRem[k]) || eAdd[k]
		presentOld := inEold || cntOld > 0
		presentNew := inEnew || cntNew > 0
		if cntNew != cntOld {
			undo[k] = cntOld
		}
		if cntNew == 0 {
			delete(plan.counts, k)
		} else {
			plan.counts[k] = cntNew
		}
		switch {
		case presentOld && !presentNew:
			if newView.Remove(fact) {
				waveRemoves.Add(fact)
			}
		case !presentOld && presentNew:
			if newView.Add(fact) {
				waveAdds.Add(fact)
			}
		}
	}
	return nil
}

// updateDRed propagates a delta through one recursive stratum with
// delete/rederive: (1) overestimate the deletions by closing the
// removed facts under the rules over the *old* view, (2) remove the
// overestimate and rederive every member that still has support
// (extensional or derivational) from surviving facts, to a fixpoint,
// (3) propagate the insertions semi-naively over the new view.
func (m *Maintainer) updateDRed(plan *maintPlan, pAdds, pRems []Fact, oldView, newView, waveAdds, waveRemoves *FactSet) error {
	c := &evalCtx{p: m.prog, f: newView, counter: new(int64), deltaIdx: -1}
	eAdd := map[string]bool{}
	eRem := map[string]bool{}
	for _, f := range pAdds {
		eAdd[f.Key()] = true
	}
	for _, f := range pRems {
		eRem[f.Key()] = true
	}
	inEnew := func(f Fact) bool {
		k := f.Key()
		if eAdd[k] {
			return true
		}
		return m.baseE.Has(f) && !eRem[k]
	}

	// Phase 1: deletion overestimate over the old view.
	overdel := NewFactSet()
	frontier := NewFactSet()
	for _, f := range pRems {
		if oldView.Has(f) {
			overdel.Add(f)
			frontier.Add(f)
		}
	}
	for p := range plan.bodyPreds {
		if plan.heads[p] {
			continue // own heads enter via the closure below
		}
		for _, f := range waveRemoves.Facts(p) {
			frontier.Add(f)
		}
	}
	for frontier.TotalSize() > 0 {
		next := NewFactSet()
		if err := m.deltaRound(c, plan, frontier, oldView, oldView, func(fact Fact) error {
			if oldView.Has(fact) && overdel.Add(fact) {
				next.Add(fact)
			}
			return nil
		}); err != nil {
			return err
		}
		frontier = next
	}

	// Phase 2: delete the overestimate, then rederive survivors to a
	// fixpoint (a rederived fact can support further rederivations).
	pending := map[string]Fact{}
	for _, p := range overdel.Preds() {
		for _, f := range overdel.Facts(p) {
			newView.Remove(f)
			pending[f.Key()] = f
		}
	}
	for changed := true; changed; {
		changed = false
		keys := make([]string, 0, len(pending))
		for k := range pending {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			f := pending[k]
			ok := inEnew(f)
			if !ok {
				var err error
				ok, err = m.derivable(c, plan, f, newView)
				if err != nil {
					return err
				}
			}
			if ok {
				newView.Add(f)
				delete(pending, k)
				changed = true
			}
		}
	}
	for _, f := range pending {
		waveRemoves.Add(f)
	}

	// Phase 3: insertions, semi-naive over the new view (which already
	// contains each frontier).
	frontier = NewFactSet()
	for p := range plan.bodyPreds {
		if plan.heads[p] {
			continue
		}
		for _, f := range waveAdds.Facts(p) {
			frontier.Add(f)
		}
	}
	for _, f := range pAdds {
		if newView.Add(f) {
			frontier.Add(f)
			waveAdds.Add(f)
		}
	}
	for frontier.TotalSize() > 0 {
		next := NewFactSet()
		if err := m.deltaRound(c, plan, frontier, newView, newView, func(fact Fact) error {
			if newView.Add(fact) {
				next.Add(fact)
				waveAdds.Add(fact)
			}
			return nil
		}); err != nil {
			return err
		}
		frontier = next
	}
	return nil
}

// derivable reports whether some rule of the stratum derives target
// from view. The head is pre-unified with the target where that is
// cheap (constant and variable components); every candidate valuation
// is verified by rebuilding the head fact.
func (m *Maintainer) derivable(c *evalCtx, plan *maintPlan, target Fact, view *FactSet) (bool, error) {
	saved := c.f
	c.f = view
	defer func() { c.f = saved }()
	targetKey := target.Key()
	for _, r := range plan.stratum {
		if r.head.pred != target.Pred {
			continue
		}
		e := newEnv()
		ruleOK := true
		for _, comp := range r.head.comps {
			v, found := target.Tuple.Get(comp.label)
			if !found {
				continue
			}
			ok, err := matchTerm(comp.term, v, e, view)
			if err != nil {
				// Not pre-bindable (e.g. arithmetic over unbound
				// variables); the rebuild check below still verifies.
				continue
			}
			if !ok {
				ruleOK = false
				break
			}
		}
		if !ruleOK {
			continue
		}
		found := false
		err := c.matchBody(r.body, 0, e, func(e2 *env) error {
			h, err := c.buildAssocFact(r.head, e2)
			if err != nil {
				return err
			}
			if h.Key() == targetKey {
				found = true
				return errStopEnum
			}
			return nil
		})
		if err != nil && !errors.Is(err, errStopEnum) {
			return false, err
		}
		if found {
			return true, nil
		}
	}
	return false, nil
}
