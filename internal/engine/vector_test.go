package engine

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"logres/internal/obs"
)

// Differential tests of the columnar evaluation path: for every program
// and EDB, the vectorized engine must produce the same facts, the same
// Firings, and the same convergence curve as the row engine, across the
// full workers × shards × vectorize matrix.

const vecSchema = `
associations
  EDGE = (src: integer, dst: integer);
  TC = (src: integer, dst: integer);
  SAME = (a: integer, b: integer);
  LOOP = (a: integer);
  FAR = (src: integer, dst: integer);
  HUB = (a: integer);
  PAIR = (a: integer, b: integer);
`

// vecPrograms exercises every construct the columnar plan compiler
// accepts — joins, bound negation, constants in atoms and heads,
// duplicate variables, comparisons, cross products — plus one rule
// (Y = 7 with Y unbound) the compiler must reject, so its stratum
// falls back to the row engine inside an otherwise vectorized run.
var vecPrograms = map[string]string{
	"closure": closureRules,
	"negation": closureRules + `
same(a: X, b: Y) <- edge(src: X, dst: Y), not tc(src: Y, dst: X).
`,
	"filters": closureRules + `
loop(a: X) <- tc(src: X, dst: X).
far(src: X, dst: Y) <- tc(src: X, dst: Y), X < Y, X != 2.
hub(a: X) <- edge(src: X, dst: 3).
hub(a: 99) <- loop(a: _).
pair(a: X, b: Y) <- hub(a: X), loop(a: Y).
`,
	"fallback-mix": closureRules + `
loop(a: X) <- tc(src: X, dst: X).
pair(a: X, b: Y) <- loop(a: X), Y = 7.
`,
}

func vecEDBs() map[string]*FactSet {
	return map[string]*FactSet{
		"chain":  chainEdgeFacts(40),
		"random": randomEdgeFacts(12, 40, 7),
		"dense":  randomEdgeFacts(6, 60, 11),
		"empty":  NewFactSet(),
	}
}

// TestVectorizedMatrixDifferential is the satellite matrix: row serial
// is the oracle; every {workers, shards} ∈ {1,4}² × vectorize {off,on}
// configuration must agree on the result set, and the vectorized serial
// run must also reproduce the oracle's Firings and DeltaCurve exactly
// (same rounds, same per-rule valuation counts).
func TestVectorizedMatrixDifferential(t *testing.T) {
	for pname, rules := range vecPrograms {
		p, err := tryBuild(vecSchema, rules,
			Options{MaxSteps: 10000, SemiNaive: true, Stratify: true, Workers: 1, Shards: 1})
		if err != nil {
			t.Fatalf("%s: %v", pname, err)
		}
		for ename, edb := range vecEDBs() {
			c0 := int64(0)
			p.SetVectorize(false)
			p.SetWorkers(1)
			p.SetShards(1)
			oracle, err := p.Run(edb.Clone(), &c0)
			if err != nil {
				t.Fatalf("%s/%s oracle: %v", pname, ename, err)
			}
			oracleStats := *p.LastStats()

			for _, workers := range []int{1, 4} {
				for _, shards := range []int{1, 4} {
					for _, vec := range []bool{false, true} {
						c := int64(0)
						p.SetWorkers(workers)
						p.SetShards(shards)
						p.SetVectorize(vec)
						got, err := p.Run(edb.Clone(), &c)
						if err != nil {
							t.Fatalf("%s/%s w=%d s=%d vec=%v: %v", pname, ename, workers, shards, vec, err)
						}
						if !got.Equal(oracle) {
							t.Fatalf("%s/%s w=%d s=%d vec=%v: diverged from row serial (%d vs %d facts)",
								pname, ename, workers, shards, vec, got.TotalSize(), oracle.TotalSize())
						}
						st := p.LastStats()
						if vec && workers == 1 && shards == 1 {
							if fmt.Sprint(st.Firings) != fmt.Sprint(oracleStats.Firings) {
								t.Fatalf("%s/%s vectorized Firings = %v, row = %v",
									pname, ename, st.Firings, oracleStats.Firings)
							}
							if fmt.Sprint(st.DeltaCurve) != fmt.Sprint(oracleStats.DeltaCurve) {
								t.Fatalf("%s/%s vectorized DeltaCurve = %v, row = %v",
									pname, ename, st.DeltaCurve, oracleStats.DeltaCurve)
							}
							if st.Steps != oracleStats.Steps {
								t.Fatalf("%s/%s vectorized Steps = %d, row = %d",
									pname, ename, st.Steps, oracleStats.Steps)
							}
						}
						if vec && ename == "chain" && st.VectorizedStrata == 0 && pname != "fallback-mix" {
							t.Fatalf("%s/%s: vectorize on but VectorizedStrata = 0", pname, ename)
						}
					}
				}
			}
		}
	}
}

// The stratum holding the inexpressible rule must fall back to the row
// engine while the closure stratum stays columnar.
func TestVectorizedFallbackIsPerStratum(t *testing.T) {
	p, err := tryBuild(vecSchema, vecPrograms["fallback-mix"],
		Options{MaxSteps: 10000, SemiNaive: true, Stratify: true, Workers: 1, Shards: 1, Vectorize: true})
	if err != nil {
		t.Fatal(err)
	}
	c := int64(0)
	if _, err := p.Run(chainEdgeFacts(10), &c); err != nil {
		t.Fatal(err)
	}
	st := p.LastStats()
	if st.VectorizedStrata == 0 {
		t.Fatalf("no stratum vectorized: %+v", st)
	}
	if st.VectorizedStrata >= st.SemiNaiveStrata {
		t.Fatalf("every semi-naive stratum vectorized (%d of %d); the Y = 7 stratum should have fallen back",
			st.VectorizedStrata, st.SemiNaiveStrata)
	}
	if !strings.Contains(p.Explain(), "semi-naive (vectorized)") {
		t.Fatalf("Explain does not show the vectorized mode:\n%s", p.Explain())
	}
}

// The vectorized path's deterministic trace stream must be identical
// run to run, and must contain the vec.kernel counters.
func TestVectorizedTraceDeterministic(t *testing.T) {
	stream := func() string {
		var buf bytes.Buffer
		p, err := tryBuild(vecSchema, vecPrograms["negation"],
			Options{MaxSteps: 10000, SemiNaive: true, Stratify: true, Workers: 1, Shards: 1,
				Vectorize: true, Tracer: obs.NewCanonicalJSONL(&buf)})
		if err != nil {
			t.Fatal(err)
		}
		c := int64(0)
		if _, err := p.Run(chainEdgeFacts(20), &c); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := stream(), stream()
	if a != b {
		t.Fatalf("vectorized canonical trace not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, string(obs.KindVecKernel)) {
		t.Fatalf("trace has no %s events:\n%s", obs.KindVecKernel, a)
	}
	for _, kernel := range []string{"join", "emit"} {
		if !strings.Contains(a, fmt.Sprintf("%q", kernel)) {
			t.Fatalf("trace has no %s kernel counter:\n%s", kernel, a)
		}
	}
}

// Empty-body fact rules compile to a unit-valuation pass: one firing in
// round 0, constants decoded straight into the head.
func TestVectorizedEmptyBodyRule(t *testing.T) {
	p, err := tryBuild(vecSchema, `
hub(a: 5).
loop(a: X) <- hub(a: X).
`, Options{MaxSteps: 100, SemiNaive: true, Stratify: true, Workers: 1, Shards: 1, Vectorize: true})
	if err != nil {
		t.Fatal(err)
	}
	c := int64(0)
	f, err := p.Run(NewFactSet(), &c)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size("hub") != 1 || f.Size("loop") != 1 {
		t.Fatalf("hub=%d loop=%d, want 1/1", f.Size("hub"), f.Size("loop"))
	}
	if p.LastStats().VectorizedStrata == 0 {
		t.Fatal("fact rules did not take the columnar path")
	}
}
