package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"logres/internal/value"
)

// Tests of the parallel semi-naive engine and the incremental FactSet
// caches that back it.

func edgeFact(a, b int) Fact {
	return Fact{Pred: "edge", Tuple: value.NewTuple(
		value.Field{Label: "src", Value: value.Int(int64(a))},
		value.Field{Label: "dst", Value: value.Int(int64(b))},
	)}
}

// chainEdgeFacts builds the EDB of a linear chain 0 → 1 → … → n.
func chainEdgeFacts(n int) *FactSet {
	fs := NewFactSet()
	for i := 0; i < n; i++ {
		fs.Add(edgeFact(i, i+1))
	}
	return fs
}

// Parallel evaluation must be bit-identical to serial for every worker
// count, on both random graphs and deep chains (many rounds, small deltas).
func TestParallelDeterminism(t *testing.T) {
	opts := Options{MaxSteps: 10000, SemiNaive: true, Stratify: true, Workers: 1}
	serial, err := tryBuild(edgeSchema, closureRules, opts)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := tryBuild(edgeSchema, closureRules, opts)
	if err != nil {
		t.Fatal(err)
	}

	edbs := map[string]*FactSet{
		"chain":  chainEdgeFacts(40),
		"random": randomEdgeFacts(12, 40, 7),
		"dense":  randomEdgeFacts(6, 60, 11),
		"empty":  NewFactSet(),
	}
	for name, edb := range edbs {
		for _, workers := range []int{2, 3, 8} {
			c1, c2 := int64(0), int64(0)
			serial.SetWorkers(1)
			fS, err := serial.Run(edb.Clone(), &c1)
			if err != nil {
				t.Fatalf("%s serial: %v", name, err)
			}
			parallel.SetWorkers(workers)
			fP, err := parallel.Run(edb.Clone(), &c2)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if !fS.Equal(fP) {
				t.Fatalf("%s: workers=%d diverged from serial (%d vs %d facts)",
					name, workers, fS.TotalSize(), fP.TotalSize())
			}
			if c1 != c2 {
				t.Fatalf("%s: oid counters diverged: %d vs %d", name, c1, c2)
			}
		}
	}
}

// A stratified program with negation: the negated stratum still runs
// delta iteration (fully bound negation carries no adVars), and the
// parallel result must match serial exactly.
func TestParallelDeterminismNegation(t *testing.T) {
	rules := closureRules + `
same(a: X, b: Y) <- edge(src: X, dst: Y), not tc(src: Y, dst: X).
`
	opts := Options{MaxSteps: 10000, SemiNaive: true, Stratify: true, Workers: 1}
	p, err := tryBuild(edgeSchema, rules, opts)
	if err != nil {
		t.Fatal(err)
	}
	edb := randomEdgeFacts(10, 35, 3)
	c1 := int64(0)
	p.SetWorkers(1)
	fS, err := p.Run(edb.Clone(), &c1)
	if err != nil {
		t.Fatal(err)
	}
	c2 := int64(0)
	p.SetWorkers(8)
	fP, err := p.Run(edb.Clone(), &c2)
	if err != nil {
		t.Fatal(err)
	}
	if !fS.Equal(fP) {
		t.Fatalf("negation program diverged: %d vs %d facts", fS.TotalSize(), fP.TotalSize())
	}
}

// A program with oid invention: inventive strata stay on the serial
// one-step operator even when Workers > 1, so parallel runs remain
// bit-identical (same oids, same counter).
func TestParallelDeterminismInvention(t *testing.T) {
	schema := `
classes
  NODE = (tag: integer);
associations
  EDGE = (src: integer, dst: integer);
  TC = (src: integer, dst: integer);
`
	rules := closureRules + `
node(self: N, tag: X) <- tc(src: X, dst: Y).
`
	opts := Options{MaxSteps: 10000, SemiNaive: true, Stratify: true, Workers: 1}
	p, err := tryBuild(schema, rules, opts)
	if err != nil {
		t.Fatal(err)
	}
	edb := chainEdgeFacts(12)
	c1 := int64(0)
	p.SetWorkers(1)
	fS, err := p.Run(edb.Clone(), &c1)
	if err != nil {
		t.Fatal(err)
	}
	c2 := int64(0)
	p.SetWorkers(8)
	fP, err := p.Run(edb.Clone(), &c2)
	if err != nil {
		t.Fatal(err)
	}
	if !fS.Equal(fP) {
		t.Fatal("invention program diverged between serial and parallel")
	}
	if c1 != c2 {
		t.Fatalf("oid counters diverged: %d vs %d", c1, c2)
	}
	if fS.Size("node") == 0 {
		t.Fatal("expected invented node facts")
	}
}

// Workers and per-round timings must surface through Stats and Explain.
func TestParallelStats(t *testing.T) {
	opts := Options{MaxSteps: 10000, SemiNaive: true, Stratify: true, Workers: 4}
	p, err := tryBuild(edgeSchema, closureRules, opts)
	if err != nil {
		t.Fatal(err)
	}
	c := int64(0)
	if _, err := p.Run(chainEdgeFacts(20), &c); err != nil {
		t.Fatal(err)
	}
	st := p.LastStats()
	if st.Workers != 4 {
		t.Fatalf("Stats.Workers = %d, want 4", st.Workers)
	}
	if len(st.RoundTimings) == 0 {
		t.Fatal("expected per-round timings for a parallel run")
	}
	if st.RoundTimings[0].Tasks == 0 {
		t.Fatal("round 0 recorded zero tasks")
	}
	out := p.Explain()
	if !strings.Contains(out, "workers: 4") {
		t.Fatalf("Explain missing worker count:\n%s", out)
	}
	if !strings.Contains(out, "parallel semi-naive") {
		t.Fatalf("Explain missing parallel round summary:\n%s", out)
	}
}

// SetWorkers normalizes non-positive counts to GOMAXPROCS and Compile
// applies the same default.
func TestWorkersNormalization(t *testing.T) {
	p, err := tryBuild(edgeSchema, closureRules, Options{MaxSteps: 100, SemiNaive: true, Stratify: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Workers() < 1 {
		t.Fatalf("default workers = %d, want >= 1", p.Workers())
	}
	p.SetWorkers(0)
	if p.Workers() < 1 {
		t.Fatalf("SetWorkers(0) left workers = %d, want >= 1", p.Workers())
	}
	p.SetWorkers(3)
	if p.Workers() != 3 {
		t.Fatalf("SetWorkers(3) left workers = %d", p.Workers())
	}
}

// Incremental cache maintenance: once a predicate's cache exists, interleaved
// Add/lookup rounds must never trigger a from-scratch rebuild (the pre-PR
// behaviour invalidated the whole cache on every Add).
func TestFactSetIncrementalCache(t *testing.T) {
	fs := NewFactSet()
	for i := 0; i < 8; i++ {
		fs.Add(edgeFact(i, i+1))
	}
	fs.Facts("edge") // build the cache
	fs.FactsByComponent("edge", "src", value.Int(0))
	base := fs.rebuilds
	for i := 8; i < 200; i++ {
		fs.Add(edgeFact(i, i+1))
		if got := fs.FactsByComponent("edge", "src", value.Int(int64(i))); len(got) != 1 {
			t.Fatalf("after add %d: bucket size %d, want 1", i, len(got))
		}
		if len(fs.Facts("edge")) != i+1 {
			t.Fatalf("after add %d: list size %d, want %d", i, len(fs.Facts("edge")), i+1)
		}
	}
	if fs.rebuilds != base {
		t.Fatalf("interleaved Add/lookup rebuilt the cache %d times, want 0", fs.rebuilds-base)
	}
	// Removals must also maintain incrementally.
	for i := 8; i < 50; i++ {
		fs.Remove(edgeFact(i, i+1))
		if got := fs.FactsByComponent("edge", "src", value.Int(int64(i))); len(got) != 0 {
			t.Fatalf("after remove %d: bucket size %d, want 0", i, len(got))
		}
	}
	if fs.rebuilds != base {
		t.Fatalf("interleaved Remove/lookup rebuilt the cache %d times, want 0", fs.rebuilds-base)
	}
	if fs.Size("edge") != 158 {
		t.Fatalf("size = %d, want 158", fs.Size("edge"))
	}

	// Clone must carry the caches copy-on-write: reads and incremental
	// writes on the clone stay rebuild-free, and the source is untouched.
	cl := fs.Clone()
	if len(cl.Facts("edge")) != fs.Size("edge") {
		t.Fatal("clone lost facts")
	}
	cl.Add(edgeFact(500, 501))
	if got := cl.FactsByComponent("edge", "src", value.Int(500)); len(got) != 1 {
		t.Fatalf("clone bucket size %d after add, want 1", len(got))
	}
	if cl.rebuilds != 0 {
		t.Fatalf("reads on a clone rebuilt the cache %d times, want 0", cl.rebuilds)
	}
	if fs.Has(edgeFact(500, 501)) {
		t.Fatal("clone mutation leaked into the source")
	}
	if got := fs.FactsByComponent("edge", "src", value.Int(500)); len(got) != 0 {
		t.Fatalf("source bucket sees clone's fact: %v", got)
	}
	if fs.rebuilds != base {
		t.Fatalf("cloning rebuilt the source cache %d times, want 0", fs.rebuilds-base)
	}

	// Compose and Minus clone internally; their results must keep the
	// caches too (the pre-PR Clone dropped all predCache state, costing an
	// O(n log n) rebuild per predicate on first read).
	small := NewFactSet()
	small.Add(edgeFact(600, 601))
	comp := fs.Compose(small)
	if got := comp.FactsByComponent("edge", "src", value.Int(600)); len(got) != 1 {
		t.Fatalf("compose bucket size %d, want 1", len(got))
	}
	if comp.rebuilds != 0 {
		t.Fatalf("Compose result rebuilt the cache %d times, want 0", comp.rebuilds)
	}
	min := fs.Minus(small)
	_ = min.Facts("edge")
	if min.rebuilds != 0 {
		t.Fatalf("Minus result rebuilt the cache %d times, want 0", min.rebuilds)
	}
}

// Facts() must stay in strict key order on an unfrozen set even after
// incremental appends.
func TestFactSetKeyOrderAfterAdds(t *testing.T) {
	fs := NewFactSet()
	for i := 0; i < 5; i++ {
		fs.Add(edgeFact(9-i, i))
	}
	fs.Facts("edge")
	for i := 5; i < 10; i++ {
		fs.Add(edgeFact(9-i, i))
	}
	facts := fs.Facts("edge")
	for i := 1; i < len(facts); i++ {
		if facts[i-1].Key() >= facts[i].Key() {
			t.Fatalf("facts out of key order at %d: %q >= %q", i, facts[i-1].Key(), facts[i].Key())
		}
	}
}

// Class-fact replacement (⊕ right bias) must keep the cache consistent.
func TestFactSetCacheClassReplace(t *testing.T) {
	fs := NewFactSet()
	mk := func(oid int64, tag int64) Fact {
		return Fact{Pred: "node", IsClass: true, OID: value.OID(oid), Tuple: value.NewTuple(
			value.Field{Label: "tag", Value: value.Int(tag)},
		)}
	}
	fs.Add(mk(1, 10))
	fs.Add(mk(2, 20))
	fs.Facts("node")
	fs.FactsByComponent("node", "tag", value.Int(10))
	fs.Add(mk(1, 11)) // same oid, new o-value: replace
	if n := len(fs.Facts("node")); n != 2 {
		t.Fatalf("list size %d after replace, want 2", n)
	}
	if got := fs.FactsByComponent("node", "tag", value.Int(10)); len(got) != 0 {
		t.Fatalf("stale bucket for replaced o-value: %v", got)
	}
	if got := fs.FactsByComponent("node", "tag", value.Int(11)); len(got) != 1 {
		t.Fatalf("missing bucket for new o-value: %v", got)
	}
}

// A frozen FactSet must be safe for unsynchronized concurrent readers
// (validated under -race) and must reject mutation.
func TestFrozenConcurrentReaders(t *testing.T) {
	fs := randomEdgeFacts(20, 200, 5)
	fs.Freeze()
	if !fs.Frozen() {
		t.Fatal("Frozen() = false after Freeze")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := value.Int(int64((g*31 + i) % 20))
				_ = fs.Facts("edge")
				_ = fs.FactsByComponent("edge", "src", v)
				_ = fs.FactsByComponent("edge", "dst", v)
				_ = fs.FactsByComponent("edge", "missing", value.Null{})
				_ = fs.Has(edgeFact(i%20, (i+1)%20))
				_ = fs.Size("edge")
			}
		}(g)
	}
	wg.Wait()

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Add on frozen set did not panic")
			}
		}()
		fs.Add(edgeFact(99, 99))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Remove on frozen set did not panic")
			}
		}()
		fs.Remove(edgeFact(0, 1))
	}()

	fs.Thaw()
	if !fs.Add(edgeFact(99, 99)) {
		t.Fatal("Add after Thaw failed")
	}
}

// Freeze on a frozen set is a no-op; a missing label on a frozen set routes
// null lookups to the whole extension.
func TestFrozenNullComponent(t *testing.T) {
	fs := chainEdgeFacts(5)
	fs.Freeze()
	fs.Freeze()
	all := fs.FactsByComponent("edge", "nolabel", value.Null{})
	if len(all) != 5 {
		t.Fatalf("null lookup on absent label returned %d facts, want 5", len(all))
	}
	if got := fs.FactsByComponent("edge", "nolabel", value.Int(1)); got != nil {
		t.Fatalf("non-null lookup on absent label returned %v, want nil", got)
	}
	if got := fs.Facts("ghost"); got != nil {
		t.Fatalf("Facts on absent pred of frozen set returned %v, want nil", got)
	}
}

// Parallel evaluation under the race detector: the full engine path with
// many workers sharing a frozen snapshot.
func TestParallelRace(t *testing.T) {
	opts := Options{MaxSteps: 10000, SemiNaive: true, Stratify: true, Workers: 8}
	p, err := tryBuild(edgeSchema, closureRules, opts)
	if err != nil {
		t.Fatal(err)
	}
	c := int64(0)
	f, err := p.Run(randomEdgeFacts(15, 120, 9), &c)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size("tc") == 0 {
		t.Fatal("no closure facts derived")
	}
}

// BenchmarkFactSetIncremental measures interleaved Add + indexed lookup —
// the access pattern of a semi-naive round. Before incremental maintenance
// every Add discarded the sorted slice and component index, making each
// round O(n log n); now it is O(1) amortized per fact.
func BenchmarkFactSetIncremental(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fs := NewFactSet()
				fs.Facts("edge")
				for j := 0; j < n; j++ {
					fs.Add(edgeFact(j, j+1))
					_ = fs.FactsByComponent("edge", "src", value.Int(int64(j)))
				}
			}
		})
	}
}

// BenchmarkParallelClosure compares serial and parallel chain closure.
func BenchmarkParallelClosure(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := Options{MaxSteps: 100000, SemiNaive: true, Stratify: true, Workers: workers}
			p, err := tryBuild(edgeSchema, closureRules, opts)
			if err != nil {
				b.Fatal(err)
			}
			edb := chainEdgeFacts(128)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := int64(0)
				if _, err := p.Run(edb.Clone(), &c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
