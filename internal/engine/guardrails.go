package engine

import (
	"context"
	"fmt"
	"runtime/debug"

	"logres/internal/guard"
)

// Budget bounds an evaluation along four axes: fixpoint rounds, facts
// derived beyond the initial extension, invented oids, and wall-clock
// time. The zero value imposes only the Options.MaxSteps round bound.
type Budget = guard.Budget

// BudgetError reports that an evaluation exhausted one budget axis,
// carrying the stratum, round, and resource counts at the abort.
type BudgetError = guard.BudgetError

// CanceledError reports a context cancellation; it unwraps to
// context.Canceled / context.DeadlineExceeded.
type CanceledError = guard.CanceledError

// PanicError reports a panic converted into an error by a panic-safe
// evaluation boundary.
type PanicError = guard.PanicError

// Axis names one budget dimension in a *BudgetError.
type Axis = guard.Axis

// The budget axes a *BudgetError names.
const (
	AxisRounds   = guard.AxisRounds
	AxisFacts    = guard.AxisFacts
	AxisOIDs     = guard.AxisOIDs
	AxisDeadline = guard.AxisDeadline
)

// inactiveGuard backs evaluation paths that run outside Run (Query,
// CheckDenials): a guard with no context and no budget.
var inactiveGuard = guard.New(context.Background(), Budget{}, 0)

// curGuard returns the run's guard (never nil).
func (p *Program) curGuard() *guard.Guard {
	if p.guard == nil {
		return inactiveGuard
	}
	return p.guard
}

func (p *Program) invented() int {
	if p.stats != nil {
		return p.stats.Invented
	}
	return 0
}

// checkRound enforces the guard between fixpoint rounds: the rounds
// bound always, the cancellation/deadline/fact/oid axes only when a
// context or budget is armed — one extra branch per round on the serial
// fast path. detail is the caller's semantics note for the rounds axis.
func (p *Program) checkRound(round int, cur *FactSet, detail string) error {
	g := p.curGuard()
	if round >= p.opts.MaxSteps {
		return g.RoundsExceeded(round, p.opts.MaxSteps, cur.TotalSize(), p.invented(), detail)
	}
	if !g.Active() {
		return nil
	}
	return g.Check(round, cur.TotalSize, p.invented())
}

// testWorkerPanic, when non-nil, runs at the start of every worker-pool
// task — the panic-injection hook the guardrail tests use to poison a
// rule body inside a worker.
var testWorkerPanic func(r *crule)

// runShielded executes one worker task with panic recovery: a panic
// becomes a *PanicError and aborts the guard so sibling workers stop
// claiming tasks promptly instead of deadlocking the ordered merge.
// Ordinary errors abort siblings too — the evaluation fails either way.
func (p *Program) runShielded(r *crule, task func() error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			p.curGuard().Abort()
			err = &PanicError{Value: rec, Stack: debug.Stack(), Context: fmt.Sprintf("rule %s", r)}
		}
	}()
	if hook := testWorkerPanic; hook != nil {
		hook(r)
	}
	if err := task(); err != nil {
		p.curGuard().Abort()
		return fmt.Errorf("%v (in rule %s)", err, r)
	}
	return nil
}
