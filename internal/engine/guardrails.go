package engine

import (
	"context"
	"fmt"
	"runtime/debug"

	"logres/internal/guard"
	"logres/internal/obs"
)

// Budget bounds an evaluation along four axes: fixpoint rounds, facts
// derived beyond the initial extension, invented oids, and wall-clock
// time. The zero value imposes only the Options.MaxSteps round bound.
type Budget = guard.Budget

// BudgetError reports that an evaluation exhausted one budget axis,
// carrying the stratum, round, and resource counts at the abort.
type BudgetError = guard.BudgetError

// CanceledError reports a context cancellation; it unwraps to
// context.Canceled / context.DeadlineExceeded.
type CanceledError = guard.CanceledError

// PanicError reports a panic converted into an error by a panic-safe
// evaluation boundary.
type PanicError = guard.PanicError

// ConflictError reports that an optimistic concurrent module application
// exhausted its retries, naming both colliding footprints.
type ConflictError = guard.ConflictError

// Footprint is the predicate-level access set concurrent commits
// validate against each other.
type Footprint = guard.Footprint

// Axis names one budget dimension in a *BudgetError.
type Axis = guard.Axis

// The budget axes a *BudgetError names.
const (
	AxisRounds   = guard.AxisRounds
	AxisFacts    = guard.AxisFacts
	AxisOIDs     = guard.AxisOIDs
	AxisDeadline = guard.AxisDeadline
	AxisRetries  = guard.AxisRetries
)

// inactiveGuard backs evaluation paths that run outside Run (Query,
// CheckDenials): a guard with no context and no budget.
var inactiveGuard = guard.New(context.Background(), Budget{}, 0)

// curGuard returns the run's guard (never nil).
func (p *Program) curGuard() *guard.Guard {
	if p.guard == nil {
		return inactiveGuard
	}
	return p.guard
}

// armedGuard returns the run's guard only when a cancellation or budget
// axis is armed — the evalCtx in-round check is wired to this, so the
// unguarded hot path carries a nil and skips the check entirely.
func (p *Program) armedGuard() *guard.Guard {
	if g := p.guard; g != nil && g.Active() {
		return g
	}
	return nil
}

// inRoundCheckInterval is the fact-iteration granularity of the
// cooperative in-round guard check: every N candidate facts enumerated
// by rule matching, the armed guard's cancellation/deadline/fact/oid
// axes are re-checked, so a single cross-product round cannot overrun
// its deadline by more than N iterations. A variable so tests can
// lower it.
var inRoundCheckInterval = 1 << 12

// inRoundCheck polls the armed guard mid-round. The fact count it
// reports is coarse: the frozen base extension plus this context's head
// instantiations (facts derived mid-round live in private deltas the
// base set cannot see, and duplicates are counted) — an overestimate
// never more than one interval stale. A trip emits a guard.check trace
// event before surfacing the typed abort error.
func (c *evalCtx) inRoundCheck(l resolvedLit) error {
	invented := 0
	if c.stats != nil {
		invented = c.stats.Invented
	}
	err := c.g.Check(c.round, func() int { return c.f.TotalSize() + c.emitted }, invented)
	if err != nil {
		if t := c.p.opts.Tracer; t != nil {
			t.Event(obs.Event{
				Kind:    obs.KindGuardCheck,
				Stratum: c.g.Stratum(),
				Round:   c.round,
				Pred:    l.pred,
				Detail:  err.Error(),
			})
		}
	}
	return err
}

func (p *Program) invented() int {
	if p.stats != nil {
		return p.stats.Invented
	}
	return 0
}

// checkRound enforces the guard between fixpoint rounds: the rounds
// bound always, the cancellation/deadline/fact/oid axes only when a
// context or budget is armed — one extra branch per round on the serial
// fast path. detail is the caller's semantics note for the rounds axis.
func (p *Program) checkRound(round int, cur *FactSet, detail string) error {
	g := p.curGuard()
	if round >= p.opts.MaxSteps {
		return g.RoundsExceeded(round, p.opts.MaxSteps, cur.TotalSize(), p.invented(), detail)
	}
	if !g.Active() {
		return nil
	}
	return g.Check(round, cur.TotalSize, p.invented())
}

// testWorkerPanic, when non-nil, runs at the start of every worker-pool
// task — the panic-injection hook the guardrail tests use to poison a
// rule body inside a worker.
var testWorkerPanic func(r *crule)

// runShielded executes one worker task with panic recovery: a panic
// becomes a *PanicError and aborts the guard so sibling workers stop
// claiming tasks promptly instead of deadlocking the ordered merge.
// Ordinary errors abort siblings too — the evaluation fails either way.
func (p *Program) runShielded(r *crule, task func() error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			p.curGuard().Abort()
			err = &PanicError{Value: rec, Stack: debug.Stack(), Context: fmt.Sprintf("rule %s", r)}
		}
	}()
	if hook := testWorkerPanic; hook != nil {
		hook(r)
	}
	if err := task(); err != nil {
		p.curGuard().Abort()
		return fmt.Errorf("%w (in rule %s)", err, r)
	}
	return nil
}
