package engine

import (
	"fmt"

	"logres/internal/ast"
	"logres/internal/types"
)

// predKind classifies a body literal's predicate.
type predKind int

const (
	pkClass predKind = iota
	pkAssoc
	pkBuiltin // member, union, …
	pkCompare // = != < <= > >=
)

// compArg is one resolved component argument: the effective-tuple label it
// addresses and the term supplied for it.
type compArg struct {
	label string
	term  ast.Term
}

// resolvedLit is a compiled body literal.
type resolvedLit struct {
	kind    predKind
	pred    string
	negated bool

	// class/association literals
	selfTerm  ast.Term  // classes only; nil if absent
	comps     []compArg // labelled component arguments
	tupleVars []string  // variables bound to the whole object/tuple
	eff       types.Tuple

	// builtins and comparisons
	args []ast.Term

	// negation support: unbound variables enumerated over the active
	// domain, with their active-domain keys (filled by the ordering pass).
	adVars []adVar
}

type adVar struct {
	name string
	key  string // active-domain key of the variable's declared type
}

// headKind classifies rule heads.
type headKind int

const (
	hClass headKind = iota
	hAssoc
	hFunc // member(X, f(…)) — data-function definition
)

// headSpec is a compiled rule head.
type headSpec struct {
	kind    headKind
	pred    string
	negated bool
	eff     types.Tuple

	selfTerm ast.Term // classes: the self argument (a Var or bound term)
	selfVar  string   // name of the self variable, "" if none
	comps    []compArg
	tupleVar string // head whole-tuple variable, "" if none
	copyFrom string // tuple variable of the body literal supplying values
	// for the invention-copy case (§3.1 case a)

	fnArg    ast.Term // function heads: argument term (nil for nullary)
	fnMember ast.Term // function heads: member term
}

// crule is a compiled rule: resolved head, body in evaluation order.
type crule struct {
	id        int
	src       *ast.Rule
	head      *headSpec // nil for denials
	body      []resolvedLit
	vars      []string // all rule variables, for valuation-domain identity
	inventive bool
	generated bool // produced by constraint generation, not user-written
}

func (r *crule) String() string {
	if r.src != nil {
		return r.src.String()
	}
	return fmt.Sprintf("generated rule #%d", r.id)
}

// builtinArity maps builtin names to their arities.
var builtinArity = map[string]int{
	"member": 2, "union": 3, "append": 3, "intersection": 3,
	"difference": 3, "count": 2, "sum": 2, "min": 2, "max": 2,
	"avg": 2, "length": 2, "nth": 3,
}

// resolveLiteral compiles one body or goal literal against the schema.
func resolveLiteral(s *types.Schema, lit ast.Literal) (resolvedLit, error) {
	if lit.IsComparison() {
		if len(lit.Args) != 2 {
			return resolvedLit{}, fmt.Errorf("engine: comparison %q needs 2 arguments", lit.Pred)
		}
		return resolvedLit{
			kind: pkCompare, pred: lit.Pred, negated: lit.Negated,
			args: []ast.Term{lit.Args[0].Term, lit.Args[1].Term},
		}, nil
	}
	if n, ok := builtinArity[lit.Pred]; ok {
		if len(lit.Args) != n {
			return resolvedLit{}, fmt.Errorf("engine: builtin %s expects %d arguments, got %d", lit.Pred, n, len(lit.Args))
		}
		args := make([]ast.Term, len(lit.Args))
		for i, a := range lit.Args {
			if a.Label != "" {
				return resolvedLit{}, fmt.Errorf("engine: builtin %s takes no labelled arguments", lit.Pred)
			}
			args[i] = a.Term
		}
		return resolvedLit{kind: pkBuiltin, pred: lit.Pred, negated: lit.Negated, args: args}, nil
	}
	d, ok := s.Lookup(lit.Pred)
	if !ok {
		return resolvedLit{}, fmt.Errorf("engine: unknown predicate %q", lit.Pred)
	}
	switch d.Kind {
	case types.DeclFunction:
		return resolvedLit{}, fmt.Errorf("engine: function %q used as a predicate; use member(X, %s(…))", lit.Pred, lit.Pred)
	case types.DeclDomain:
		return resolvedLit{}, fmt.Errorf("engine: domain %q used as a predicate", lit.Pred)
	}
	eff, err := s.EffectiveTuple(lit.Pred)
	if err != nil {
		return resolvedLit{}, err
	}
	rl := resolvedLit{pred: lit.Pred, negated: lit.Negated, eff: eff}
	if d.Kind == types.DeclClass {
		rl.kind = pkClass
	} else {
		rl.kind = pkAssoc
	}
	if err := resolveArgs(&rl.selfTerm, &rl.comps, &rl.tupleVars, lit.Args, eff, rl.kind == pkClass, lit.Pred); err != nil {
		return resolvedLit{}, err
	}
	return rl, nil
}

// resolveArgs maps a literal's argument list onto the predicate's effective
// tuple:
//
//   - `self: t` binds the oid (classes only);
//   - `label: t` binds the named component;
//   - in class literals, unlabelled bare variables are tuple variables
//     binding the whole object, and unlabelled non-variable terms fill the
//     unclaimed components positionally;
//   - in association literals, when the unlabelled arguments exactly fill
//     the unclaimed components they map positionally; a single unlabelled
//     bare variable that cannot (arity mismatch) is a tuple variable.
func resolveArgs(selfTerm *ast.Term, comps *[]compArg, tupleVars *[]string,
	args []ast.Arg, eff types.Tuple, isClass bool, pred string) error {

	claimed := map[string]bool{}
	var unlabelled []ast.Term
	for _, a := range args {
		if a.Label == ast.SelfLabel {
			if !isClass {
				return fmt.Errorf("engine: self argument on non-class predicate %q", pred)
			}
			if *selfTerm != nil {
				return fmt.Errorf("engine: duplicate self argument on %q", pred)
			}
			*selfTerm = a.Term
			continue
		}
		if a.Label != "" {
			if _, ok := eff.Get(a.Label); !ok {
				return fmt.Errorf("engine: %q has no component %q", pred, a.Label)
			}
			if claimed[a.Label] {
				return fmt.Errorf("engine: duplicate component %q on %q", a.Label, pred)
			}
			claimed[a.Label] = true
			*comps = append(*comps, compArg{label: a.Label, term: a.Term})
			continue
		}
		unlabelled = append(unlabelled, a.Term)
	}
	// Remaining (unclaimed) components in declaration order.
	var remaining []string
	for _, f := range eff.Fields {
		if !claimed[f.Label] {
			remaining = append(remaining, f.Label)
		}
	}
	if isClass {
		var positional []ast.Term
		for _, t := range unlabelled {
			switch x := t.(type) {
			case ast.Var:
				*tupleVars = append(*tupleVars, x.Name)
			case ast.Wildcard:
				// matches anything; ignore
			default:
				positional = append(positional, t)
			}
		}
		if len(positional) > len(remaining) {
			return fmt.Errorf("engine: %q: %d positional arguments for %d free components", pred, len(positional), len(remaining))
		}
		for i, t := range positional {
			*comps = append(*comps, compArg{label: remaining[i], term: t})
		}
		return nil
	}
	// Associations.
	if len(unlabelled) == 0 {
		return nil
	}
	if len(unlabelled) == len(remaining) {
		for i, t := range unlabelled {
			*comps = append(*comps, compArg{label: remaining[i], term: t})
		}
		return nil
	}
	if len(unlabelled) == 1 {
		if v, ok := unlabelled[0].(ast.Var); ok {
			*tupleVars = append(*tupleVars, v.Name)
			return nil
		}
	}
	return fmt.Errorf("engine: %q: cannot map %d unlabelled arguments onto %d free components",
		pred, len(unlabelled), len(remaining))
}

// resolveHead compiles a rule head.
func resolveHead(s *types.Schema, lit ast.Literal) (*headSpec, error) {
	if lit.IsComparison() {
		return nil, fmt.Errorf("engine: comparison %q cannot be a rule head", lit.Pred)
	}
	if lit.Pred == "member" {
		// Data-function definition: member(X, f(arg)).
		if len(lit.Args) != 2 {
			return nil, fmt.Errorf("engine: head member needs 2 arguments")
		}
		app, ok := lit.Args[1].Term.(ast.FuncApp)
		if !ok {
			return nil, fmt.Errorf("engine: head member's second argument must be a function application")
		}
		d, ok := s.Lookup(app.Name)
		if !ok || d.Kind != types.DeclFunction {
			return nil, fmt.Errorf("engine: %q is not a declared function", app.Name)
		}
		h := &headSpec{kind: hFunc, pred: types.Canon(app.Name), negated: lit.Negated,
			fnMember: lit.Args[0].Term}
		switch {
		case d.Arg == nil && len(app.Args) == 0:
		case d.Arg != nil && len(app.Args) == 1:
			h.fnArg = app.Args[0]
		default:
			return nil, fmt.Errorf("engine: function %q arity mismatch", app.Name)
		}
		return h, nil
	}
	if _, ok := builtinArity[lit.Pred]; ok {
		return nil, fmt.Errorf("engine: builtin %q cannot be a rule head", lit.Pred)
	}
	d, ok := s.Lookup(lit.Pred)
	if !ok {
		return nil, fmt.Errorf("engine: unknown head predicate %q", lit.Pred)
	}
	if d.Kind == types.DeclDomain || d.Kind == types.DeclFunction {
		return nil, fmt.Errorf("engine: %s %q cannot be a rule head", d.Kind, lit.Pred)
	}
	eff, err := s.EffectiveTuple(lit.Pred)
	if err != nil {
		return nil, err
	}
	h := &headSpec{pred: lit.Pred, negated: lit.Negated, eff: eff}
	if d.Kind == types.DeclClass {
		h.kind = hClass
	} else {
		h.kind = hAssoc
	}
	var tupleVars []string
	if err := resolveArgs(&h.selfTerm, &h.comps, &tupleVars, lit.Args, eff, h.kind == hClass, lit.Pred); err != nil {
		return nil, err
	}
	if len(tupleVars) > 1 {
		return nil, fmt.Errorf("engine: head %q has %d tuple variables", lit.Pred, len(tupleVars))
	}
	if len(tupleVars) == 1 {
		h.tupleVar = tupleVars[0]
	}
	if h.selfTerm != nil {
		if v, ok := h.selfTerm.(ast.Var); ok {
			h.selfVar = v.Name
		}
	}
	if h.kind == hAssoc && h.selfTerm != nil {
		return nil, fmt.Errorf("engine: association head %q cannot have a self argument", lit.Pred)
	}
	return h, nil
}
