package engine

import (
	"strings"
	"testing"

	"logres/internal/ast"
	"logres/internal/parser"
	"logres/internal/types"
	"logres/internal/value"
)

// build compiles a schema (module syntax) and rules (bare rule syntax).
func build(t *testing.T, schemaSrc, rulesSrc string) *Program {
	t.Helper()
	p, err := tryBuild(schemaSrc, rulesSrc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func tryBuild(schemaSrc, rulesSrc string, opts Options) (*Program, error) {
	m, err := parser.ParseModule(schemaSrc)
	if err != nil {
		return nil, err
	}
	if err := m.Schema.Validate(); err != nil {
		return nil, err
	}
	rules, err := parser.ParseProgram(rulesSrc)
	if err != nil {
		return nil, err
	}
	return Compile(m.Schema, rules, opts)
}

// run evaluates the program from an empty extensional database.
func run(t *testing.T, p *Program) *FactSet {
	t.Helper()
	counter := int64(0)
	f, err := p.Run(NewFactSet(), &counter)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// seedEDB materializes a set of ground facts (written as fact rules) into
// an extensional fact set. The paper keeps E separate from R: facts in R
// re-assert themselves at every step, so update programs with deletions
// must receive their base data through E (module application does this;
// tests use this helper).
func seedEDB(t *testing.T, schema *types.Schema, factsSrc string) *FactSet {
	t.Helper()
	rules, err := parser.ParseProgram(factsSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(schema, rules, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	counter := int64(0)
	f, err := p.Run(NewFactSet(), &counter)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// schemaOf parses a module source and returns its validated schema.
func schemaOf(t *testing.T, src string) *types.Schema {
	t.Helper()
	m, err := parser.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Schema.Validate(); err != nil {
		t.Fatal(err)
	}
	return m.Schema
}

// tuples renders an association's extension as sorted "a=1,b=2" strings.
func tuples(f *FactSet, pred string) []string {
	var out []string
	for _, fact := range f.Facts(pred) {
		var parts []string
		for _, fl := range fact.Tuple.Fields() {
			parts = append(parts, fl.Label+"="+fl.Value.String())
		}
		out = append(out, strings.Join(parts, ","))
	}
	return out
}

const parentSchema = `
domains NAME = string;
associations
  PARENT = (par: NAME, chil: NAME);
  ANC = (anc: NAME, des: NAME);
`

func TestTransitiveClosure(t *testing.T) {
	p := build(t, parentSchema, `
parent(par: "a", chil: "b").
parent(par: "b", chil: "c").
parent(par: "c", chil: "d").
anc(anc: X, des: Y) <- parent(par: X, chil: Y).
anc(anc: X, des: Z) <- anc(anc: X, des: Y), parent(par: Y, chil: Z).
`)
	f := run(t, p)
	if got := f.Size("anc"); got != 6 {
		t.Fatalf("anc size = %d, want 6\n%v", got, tuples(f, "anc"))
	}
	want := Fact{Pred: "anc", Tuple: value.NewTuple(
		value.Field{Label: "anc", Value: value.Str("a")},
		value.Field{Label: "des", Value: value.Str("d")},
	)}
	if !f.Has(want) {
		t.Fatalf("missing a->d: %v", tuples(f, "anc"))
	}
}

func TestSemiNaiveMatchesNaive(t *testing.T) {
	rules := `
parent(par: "a", chil: "b").
parent(par: "b", chil: "c").
parent(par: "c", chil: "d").
parent(par: "b", chil: "e").
anc(anc: X, des: Y) <- parent(par: X, chil: Y).
anc(anc: X, des: Z) <- anc(anc: X, des: Y), parent(par: Y, chil: Z).
`
	pNaive, err := tryBuild(parentSchema, rules, Options{MaxSteps: 1000, SemiNaive: false, Stratify: true})
	if err != nil {
		t.Fatal(err)
	}
	pSemi, err := tryBuild(parentSchema, rules, Options{MaxSteps: 1000, SemiNaive: true, Stratify: true})
	if err != nil {
		t.Fatal(err)
	}
	fN, fS := run(t, pNaive), run(t, pSemi)
	if !fN.Equal(fS) {
		t.Fatalf("semi-naive diverges:\nnaive: %v\nsemi: %v", tuples(fN, "anc"), tuples(fS, "anc"))
	}
}

func TestStratifiedNegation(t *testing.T) {
	p := build(t, `
domains N = integer;
associations
  EDGE = (src: N, dst: N);
  REACH = (n: N);
  UNREACH = (n: N);
  NODE = (n: N);
`, `
edge(src: 1, dst: 2).
edge(src: 2, dst: 3).
node(n: 1). node(n: 2). node(n: 3). node(n: 4).
reach(n: 1).
reach(n: Y) <- reach(n: X), edge(src: X, dst: Y).
unreach(n: X) <- node(n: X), not reach(n: X).
`)
	if !p.Stratified() {
		t.Fatal("program should be stratified")
	}
	f := run(t, p)
	if got := tuples(f, "unreach"); len(got) != 1 || got[0] != "n=4" {
		t.Fatalf("unreach = %v", got)
	}
}

func TestNegationActiveDomain(t *testing.T) {
	// X occurs only in the negated literal: it ranges over the active
	// domain of its declared type.
	p := build(t, `
domains N = integer;
associations
  P = (n: N);
  Q = (n: N);
  R = (n: N);
`, `
p(n: 1). p(n: 2). p(n: 3).
q(n: 2).
r(n: X) <- not q(n: X), p(n: X).
`)
	f := run(t, p)
	got := tuples(f, "r")
	if len(got) != 2 || got[0] != "n=1" || got[1] != "n=3" {
		t.Fatalf("r = %v", got)
	}
}

func TestNegationPureActiveDomain(t *testing.T) {
	// The negated literal is the only binder: X must still enumerate the
	// active domain of N, which includes values from p even though the
	// check is against q.
	p := build(t, `
domains N = integer;
associations
  P = (n: N);
  Q = (n: N);
  R = (n: N);
`, `
p(n: 1). p(n: 2).
q(n: 2).
r(n: X) <- not q(n: X).
`)
	f := run(t, p)
	got := tuples(f, "r")
	if len(got) != 1 || got[0] != "n=1" {
		t.Fatalf("r = %v", got)
	}
}

// Example 4.2 of the paper: update tuples with an even first field by
// adding 1 to the second field, deleting the old tuples.
func TestExample42UpdateWithDeletion(t *testing.T) {
	schemaSrc := `
associations
  P = (d1: integer, d2: integer);
  MODP = (d1: integer, d2: integer);
  EVEN = (n: integer);
`
	schema := schemaOf(t, schemaSrc)
	edb := seedEDB(t, schema, `
p(d1: 1, d2: 1). p(d1: 2, d2: 2). p(d1: 3, d2: 3). p(d1: 4, d2: 4).
even(n: 2). even(n: 4).
`)
	p := build(t, schemaSrc, `
p(d1: X, d2: Z) <- p(d1: X, d2: Y), even(n: X), Z = Y + 1, not modp(d1: X, d2: Y).
modp(d1: X, d2: Z) <- p(d1: X, d2: Y), even(n: X), Z = Y + 1, not modp(d1: X, d2: Y).
not p(Y) <- p(Y), Y = (d1: X, d2: W), even(n: X), not modp(Y).
`)
	counter := int64(0)
	f, err := p.Run(edb, &counter)
	if err != nil {
		t.Fatal(err)
	}
	got := tuples(f, "p")
	want := []string{"d1=1,d2=1", "d1=2,d2=3", "d1=3,d2=3", "d1=4,d2=5"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("p = %v, want %v", got, want)
	}
}

// Example 3.3: the powerset of R through Append and Union (result-last
// convention of Definition 6).
func TestExample33Powerset(t *testing.T) {
	p := build(t, `
domains D = integer;
associations
  R = (d: D);
  POWER = (set: {D});
`, `
r(d: 1). r(d: 2). r(d: 3).
power(set: X) <- X = {}.
power(set: X) <- r(d: Y), append({}, Y, X).
power(set: X) <- power(set: Y), power(set: Z), union(Y, Z, X).
`)
	f := run(t, p)
	if got := f.Size("power"); got != 8 {
		t.Fatalf("powerset size = %d, want 8\n%v", got, tuples(f, "power"))
	}
}

// Example 3.2: recursive descendants via a data function, then nesting the
// result into an association.
func TestExample32Descendants(t *testing.T) {
	p := build(t, `
domains NAME = string;
associations
  PARENT = (par: NAME, chil: NAME);
  ANCESTOR = (anc: NAME, des: {NAME});
functions
  DESC: NAME -> {NAME};
`, `
parent(par: "x", chil: "y").
parent(par: "y", chil: "z").
member(X, desc(Y)) <- parent(par: Y, chil: X).
member(X, desc(Y)) <- parent(par: Y, chil: Z), member(X, T), T = desc(Z).
ancestor(anc: X, des: Y) <- parent(par: X), Y = desc(X).
`)
	f := run(t, p)
	got := tuples(f, "ancestor")
	want := []string{`anc="x",des={"y", "z"}`, `anc="y",des={"z"}`}
	if strings.Join(got, " | ") != strings.Join(want, " | ") {
		t.Fatalf("ancestor = %v", got)
	}
}

// Example 2.2: nullary function naming the extension of a type.
func TestNullaryFunction(t *testing.T) {
	p := build(t, `
domains NAME = string;
associations
  PERSONREC = (name: NAME, age: integer);
  KIDS = (name: NAME);
functions
  JUNIOR: -> {NAME};
`, `
personrec(name: "ann", age: 12).
personrec(name: "bob", age: 40).
member(X, junior()) <- personrec(name: X, age: A), A <= 18.
kids(name: X) <- member(X, T), T = junior().
`)
	f := run(t, p)
	got := tuples(f, "kids")
	if len(got) != 1 || got[0] != `name="ann"` {
		t.Fatalf("kids = %v", got)
	}
}

func TestBuiltins(t *testing.T) {
	p := build(t, `
domains D = integer;
associations
  IN = (s: {D});
  OUT = (tag: string, v: integer);
  SEQIN = (q: <D>);
  SEQOUT = (v: integer);
`, `
in(s: {1, 2, 3, 4}).
out(tag: "count", v: N) <- in(s: S), count(S, N).
out(tag: "sum", v: N) <- in(s: S), sum(S, N).
out(tag: "min", v: N) <- in(s: S), min(S, N).
out(tag: "max", v: N) <- in(s: S), max(S, N).
seqin(q: <7, 8, 9>).
seqout(v: X) <- seqin(q: Q), nth(Q, 2, X).
seqout(v: N) <- seqin(q: Q), length(Q, N).
`)
	f := run(t, p)
	got := strings.Join(tuples(f, "out"), " ")
	for _, want := range []string{`tag="count",v=4`, `tag="sum",v=10`, `tag="min",v=1`, `tag="max",v=4`} {
		if !strings.Contains(got, want) {
			t.Errorf("out missing %q: %s", want, got)
		}
	}
	sq := strings.Join(tuples(f, "seqout"), " ")
	if !strings.Contains(sq, "v=8") || !strings.Contains(sq, "v=3") {
		t.Errorf("seqout = %s", sq)
	}
}

func TestSetOpsBuiltins(t *testing.T) {
	p := build(t, `
domains D = integer;
associations
  A = (s: {D});
  B = (s: {D});
  RES = (tag: string, s: {D});
`, `
a(s: {1, 2, 3}).
b(s: {2, 3, 4}).
res(tag: "union", s: Z) <- a(s: X), b(s: Y), union(X, Y, Z).
res(tag: "inter", s: Z) <- a(s: X), b(s: Y), intersection(X, Y, Z).
res(tag: "diff", s: Z) <- a(s: X), b(s: Y), difference(X, Y, Z).
`)
	f := run(t, p)
	got := strings.Join(tuples(f, "res"), " | ")
	for _, want := range []string{
		`tag="union",s={1, 2, 3, 4}`,
		`tag="inter",s={2, 3}`,
		`tag="diff",s={1}`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("res missing %q: %s", want, got)
		}
	}
}

func TestArithmeticAndComparisons(t *testing.T) {
	p := build(t, `
associations
  N = (v: integer);
  OUT = (v: integer);
`, `
n(v: 10).
out(v: X) <- n(v: Y), X = Y * 2 + 1.
out(v: X) <- n(v: Y), X = Y mod 3.
out(v: X) <- n(v: Y), X = Y / 2, Y > 5, Y != 11, Y >= 10, Y <= 10, Y < 11.
`)
	f := run(t, p)
	got := strings.Join(tuples(f, "out"), " ")
	for _, want := range []string{"v=21", "v=1", "v=5"} {
		if !strings.Contains(got, want) {
			t.Errorf("out missing %q: %s", want, got)
		}
	}
}

func TestGoalQuery(t *testing.T) {
	p := build(t, parentSchema, `
parent(par: "a", chil: "b").
parent(par: "b", chil: "c").
anc(anc: X, des: Y) <- parent(par: X, chil: Y).
anc(anc: X, des: Z) <- anc(anc: X, des: Y), parent(par: Y, chil: Z).
`)
	f := run(t, p)
	goal, err := parser.ParseGoal(`?- anc(anc: "a", des: X).`)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := p.Query(f, goal)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Vars) != 1 || ans.Vars[0] != "X" {
		t.Fatalf("vars = %v", ans.Vars)
	}
	if len(ans.Rows) != 2 {
		t.Fatalf("rows = %v", ans.Rows)
	}
	if ans.Rows[0][0] != value.Str("b") || ans.Rows[1][0] != value.Str("c") {
		t.Fatalf("rows = %v", ans.Rows)
	}
}

func TestDenials(t *testing.T) {
	p := build(t, `
domains NAME = string;
associations
  MARRIED = (name: NAME);
  DIVORCED = (name: NAME);
`, `
married(name: "x").
divorced(name: "x").
<- married(name: X), divorced(name: X).
`)
	f := run(t, p)
	if err := p.CheckDenials(f); err == nil || !strings.Contains(err.Error(), "integrity violation") {
		t.Fatalf("denial not detected: %v", err)
	}
}

func TestUnknownPredicateRejected(t *testing.T) {
	if _, err := tryBuild(parentSchema, `anc(anc: X, des: Y) <- nosuch(par: X, chil: Y).`, DefaultOptions()); err == nil {
		t.Fatal("unknown predicate accepted")
	}
}

func TestUnknownLabelRejected(t *testing.T) {
	if _, err := tryBuild(parentSchema, `anc(anc: X, des: Y) <- parent(nolabel: X, chil: Y).`, DefaultOptions()); err == nil {
		t.Fatal("unknown label accepted")
	}
}

func TestUnsafeHeadRejected(t *testing.T) {
	if _, err := tryBuild(parentSchema, `anc(anc: X, des: Y) <- parent(par: X).`, DefaultOptions()); err == nil {
		t.Fatal("unbound head variable accepted")
	}
}

func TestUnsafeBodyRejected(t *testing.T) {
	// Z + 1 can never be evaluated.
	if _, err := tryBuild(parentSchema, `anc(anc: X, des: Y) <- parent(par: X, chil: Y), W = Z + 1.`, DefaultOptions()); err == nil {
		t.Fatal("unorderable body accepted")
	}
}

func TestTypeMismatchRejected(t *testing.T) {
	// chil is a NAME (string); 3 is an integer.
	if _, err := tryBuild(parentSchema, `anc(anc: X, des: X) <- parent(par: X, chil: 3).`, DefaultOptions()); err == nil {
		t.Fatal("ill-typed constant accepted")
	}
}

func TestIncompatibleVarTypesRejected(t *testing.T) {
	src := `
domains NAME = string;
associations
  P = (a: NAME, b: integer);
  Q = (x: NAME);
`
	if _, err := tryBuild(src, `q(x: X) <- p(a: X, b: X).`, DefaultOptions()); err == nil {
		t.Fatal("incompatible variable types accepted")
	}
}

func TestMaxStepsGuard(t *testing.T) {
	// A rule that grows forever: n(v: X+1) <- n(v: X).
	p, err := tryBuild(`associations N = (v: integer);`,
		`n(v: 0). n(v: Y) <- n(v: X), Y = X + 1.`,
		Options{MaxSteps: 50, SemiNaive: false, Stratify: true})
	if err != nil {
		t.Fatal(err)
	}
	counter := int64(0)
	if _, err := p.Run(NewFactSet(), &counter); err == nil || !strings.Contains(err.Error(), "fixpoint") {
		t.Fatalf("non-terminating program not caught: %v", err)
	}
}

func TestStrataStructure(t *testing.T) {
	p := build(t, `
associations
  E = (a: integer, b: integer);
  TC = (a: integer, b: integer);
  NOTC = (a: integer, b: integer);
`, `
tc(a: X, b: Y) <- e(a: X, b: Y).
tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).
notc(a: X, b: Y) <- e(a: X, b: Y), not tc(a: X, b: Y).
`)
	if !p.Stratified() {
		t.Fatal("should be stratified")
	}
	if len(p.strata) < 2 {
		t.Fatalf("strata = %d, want >= 2", len(p.strata))
	}
}

func TestUnstratifiedFallsBack(t *testing.T) {
	p := build(t, `
associations
  P = (n: integer);
  Q = (n: integer);
`, `
p(n: 1).
q(n: X) <- p(n: X), not q(n: X).
`)
	if p.Stratified() {
		t.Fatal("negative cycle should be unstratified")
	}
	// Whole-program inflationary still assigns a meaning.
	f := run(t, p)
	if f.Size("q") != 1 {
		t.Fatalf("q = %v", tuples(f, "q"))
	}
}

func TestFunctionDependencyIsStrict(t *testing.T) {
	// member/f defined from p; g reads f's extension: f must be complete
	// before g evaluates, i.e. they are in different strata.
	p := build(t, `
associations
  P = (n: integer);
  G = (s: {integer});
functions
  F: integer -> {integer};
`, `
p(n: 1). p(n: 2).
member(X, f(Y)) <- p(n: Y), p(n: X).
g(s: S) <- p(n: Y), S = f(Y).
`)
	if !p.Stratified() {
		t.Fatal("should be stratified")
	}
	if len(p.strata) < 2 {
		t.Fatalf("function read should force a new stratum; strata = %d", len(p.strata))
	}
	f := run(t, p)
	got := tuples(f, "g")
	if len(got) != 1 || got[0] != "s={1, 2}" {
		t.Fatalf("g = %v", got)
	}
}

func TestDeterminism(t *testing.T) {
	src := `
parent(par: "a", chil: "b").
parent(par: "b", chil: "c").
anc(anc: X, des: Y) <- parent(par: X, chil: Y).
anc(anc: X, des: Z) <- anc(anc: X, des: Y), parent(par: Y, chil: Z).
`
	p1 := build(t, parentSchema, src)
	p2 := build(t, parentSchema, src)
	if !run(t, p1).Equal(run(t, p2)) {
		t.Fatal("two runs diverge")
	}
}

func TestGeneratedRuleCount(t *testing.T) {
	m, err := parser.ParseModule(`
classes
  PERSON = (name: string);
  STUDENT = (PERSON, school: string);
  STUDENT isa PERSON;
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m.Schema, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRules() != 1 {
		t.Fatalf("generated rules = %d, want 1 isa-propagation rule", p.NumRules())
	}
}

func TestWildcardInBody(t *testing.T) {
	p := build(t, parentSchema, `
parent(par: "a", chil: "b").
parent(par: "b", chil: "c").
anc(anc: X, des: X) <- parent(par: X, chil: _).
`)
	f := run(t, p)
	if f.Size("anc") != 2 {
		t.Fatalf("anc = %v", tuples(f, "anc"))
	}
}

func TestFactSetOps(t *testing.T) {
	mk := func(pred string, n int64) Fact {
		return Fact{Pred: pred, Tuple: value.NewTuple(value.Field{Label: "v", Value: value.Int(n)})}
	}
	a := NewFactSet()
	a.Add(mk("p", 1))
	a.Add(mk("p", 2))
	b := NewFactSet()
	b.Add(mk("p", 2))
	b.Add(mk("p", 3))
	if u := a.Compose(b); u.TotalSize() != 3 {
		t.Fatalf("compose size = %d", u.TotalSize())
	}
	if m := a.Minus(b); m.TotalSize() != 1 || !m.Has(mk("p", 1)) {
		t.Fatalf("minus = %v", m.Preds())
	}
	if i := a.Intersect(b); i.TotalSize() != 1 || !i.Has(mk("p", 2)) {
		t.Fatal("intersect wrong")
	}
	if !a.Clone().Equal(a) {
		t.Fatal("clone not equal")
	}
}

func TestComposeClassRightBias(t *testing.T) {
	mkc := func(oid value.OID, v int64) Fact {
		return Fact{Pred: "c", IsClass: true, OID: oid, Tuple: value.NewTuple(value.Field{Label: "v", Value: value.Int(v)})}
	}
	left := NewFactSet()
	left.Add(mkc(1, 10))
	left.Add(mkc(2, 20))
	right := NewFactSet()
	right.Add(mkc(1, 99))
	out := left.Compose(right)
	if out.Size("c") != 2 {
		t.Fatalf("size = %d", out.Size("c"))
	}
	f, ok := out.HasOID("c", 1)
	if !ok {
		t.Fatal("oid 1 missing")
	}
	if got, _ := f.Tuple.Get("v"); got != value.Int(99) {
		t.Fatalf("⊕ right bias violated: %v", f.Tuple)
	}
}

func TestDeletionHeadDeletesFunctionFact(t *testing.T) {
	p := build(t, `
associations
  P = (n: integer);
  BAD = (n: integer);
  DROPPED = (n: integer);
functions
  F: integer -> {integer};
`, `
p(n: 1). p(n: 2).
bad(n: 2).
member(X, f(X)) <- p(n: X), not dropped(n: X).
dropped(n: X) <- bad(n: X).
not member(X, f(X)) <- dropped(n: X).
`)
	f := run(t, p)
	if f.Size("f") != 1 {
		t.Fatalf("function facts = %v", tuples(f, "f"))
	}
}

func TestVarSet(t *testing.T) {
	rules, err := parser.ParseProgram(`p(a: X, b: Y) <- q(X, Z), r(s: (t: W)).`)
	if err != nil {
		t.Fatal(err)
	}
	var lits []ast.Literal
	lits = append(lits, *rules[0].Head)
	lits = append(lits, rules[0].Body...)
	got := ast.VarSet(lits)
	if strings.Join(got, ",") != "X,Y,Z,W" {
		t.Fatalf("VarSet = %v", got)
	}
}

func TestCompileErrorsMentionRule(t *testing.T) {
	_, err := tryBuild(parentSchema, `anc(anc: X, des: Y) <- nosuch(X, Y).`, DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "in rule") {
		t.Fatalf("error lacks rule context: %v", err)
	}
}

var _ = types.Canon // keep import for helper extensions
