package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Parallel semi-naive evaluation. A semi-naive-eligible stratum is monotone:
// no deletions, no oid invention, no o-value overwrites (see
// stratumSemiNaiveEligible), so every derivation is a pure value-level fact
// and the union of the per-pass deltas does not depend on execution order.
// Each round's (rule × delta-position) passes are therefore split into
// tasks — additionally chunking the facts the first body literal ranges
// over, so a single recursive rule still saturates the pool — and run on a
// worker pool. Workers match against a frozen snapshot of the current fact
// set (pre-built sorted slices and component buckets, no lazy cache
// mutation; see FactSet.Freeze) and accumulate into private delta sets;
// the merge walks tasks in deterministic task order, making the result
// bit-identical to serial evaluation for any worker count.

// snTask is one unit of parallel work: one rule, one delta position (-1 for
// the round-0 full pass), and optionally a chunk of the facts the first
// body literal ranges over (chunk ⊆ delta when deltaPos == 0, chunk ⊆ the
// current extension otherwise).
type snTask struct {
	rule     *crule
	deltaPos int
	chunk    []Fact
	chunked  bool
}

// chunkableFirst reports whether a rule's first (ordered) body literal is a
// positive predicate literal whose extension can be partitioned.
func chunkableFirst(r *crule) (resolvedLit, bool) {
	if len(r.body) == 0 {
		return resolvedLit{}, false
	}
	l := r.body[0]
	if (l.kind == pkClass || l.kind == pkAssoc) && !l.negated {
		return l, true
	}
	return resolvedLit{}, false
}

// chunkBounds returns the [lo, hi) ranges that split n items into a few
// chunks per worker (empty ranges omitted).
func chunkBounds(n, workers int) [][2]int {
	k := 4 * workers
	if k > n {
		k = n
	}
	bounds := make([][2]int, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := i*n/k, (i+1)*n/k
		if lo < hi {
			bounds = append(bounds, [2]int{lo, hi})
		}
	}
	return bounds
}

// appendChunked splits facts into a few chunks per worker and appends one
// task per non-empty chunk.
func appendChunked(tasks []snTask, r *crule, deltaPos int, facts []Fact, workers int) []snTask {
	for _, b := range chunkBounds(len(facts), workers) {
		tasks = append(tasks, snTask{rule: r, deltaPos: deltaPos, chunk: facts[b[0]:b[1]], chunked: true})
	}
	return tasks
}

// round0Tasks builds the full-evaluation pass of every rule.
func round0Tasks(stratum []*crule, cur *FactSet, workers int) []snTask {
	var tasks []snTask
	for _, r := range stratum {
		if l0, ok := chunkableFirst(r); ok {
			tasks = appendChunked(tasks, r, -1, cur.Facts(l0.pred), workers)
		} else {
			tasks = append(tasks, snTask{rule: r, deltaPos: -1})
		}
	}
	return tasks
}

// deltaTasks builds the per-round passes: one task group per (rule,
// delta-position) whose delta extension is non-empty.
func deltaTasks(stratum []*crule, cur, delta *FactSet, workers int) []snTask {
	var tasks []snTask
	for _, r := range stratum {
		for pos, l := range r.body {
			if l.kind != pkClass && l.kind != pkAssoc {
				continue
			}
			if l.negated {
				continue
			}
			if delta.Size(l.pred) == 0 {
				continue
			}
			if pos == 0 {
				// The delta-restricted literal is the partition axis.
				tasks = appendChunked(tasks, r, 0, delta.Facts(l.pred), workers)
				continue
			}
			if l0, ok := chunkableFirst(r); ok {
				tasks = appendChunked(tasks, r, pos, cur.Facts(l0.pred), workers)
			} else {
				tasks = append(tasks, snTask{rule: r, deltaPos: pos})
			}
		}
	}
	return tasks
}

// runSNTask evaluates one task into the private delta out. The context's
// fact set (and delta, if any) must be frozen.
func (c *evalCtx) runSNTask(t snTask, out *FactSet) error {
	r := t.rule
	dminus := NewFactSet() // defensively unused: eligible strata never delete
	yield := func(e *env) error {
		return c.instantiateHead(r, e, out, dminus)
	}
	if !t.chunked {
		if t.deltaPos < 0 {
			return c.matchBody(r.body, 0, newEnv(), yield)
		}
		return c.matchBodyDelta(r.body, 0, t.deltaPos, c.delta, newEnv(), yield)
	}
	for _, fact := range t.chunk {
		e := newEnv()
		ok, err := c.matchFact(r.body[0], fact, e)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if t.deltaPos <= 0 {
			if err := c.matchBody(r.body, 1, e, yield); err != nil {
				return err
			}
		} else {
			if err := c.matchBodyDelta(r.body, 1, t.deltaPos, c.delta, e, yield); err != nil {
				return err
			}
		}
	}
	return nil
}

// snParallelCutoff is the live probe size (round 0: the current
// extension; delta rounds: the delta — the same per-round signal
// Stats.DeltaCurve records) below which a parallel round skips worker
// fan-out and runs its passes inline: partitioning and merging a
// near-empty round costs more than the matching itself. The convergence
// tail of a deep recursion (many rounds of tiny deltas) is the common
// case. A variable so tests can move it.
var snParallelCutoff = 256

// runSNTasks runs one round's tasks and merges the private deltas (and
// per-task stats) in task order; the merge fans one goroutine per
// FactSet shard (Options.Shards) and stays bit-identical to the serial
// task-order merge. Rounds whose probe size is under snParallelCutoff
// run the same task list inline on this goroutine instead (identical
// results: same tasks, same order, same dedup) and record no
// parallel.dispatch event.
func (p *Program) runSNTasks(round int, tasks []snTask, cur, delta *FactSet, counter *int64, probe int) (*FactSet, error) {
	if probe < snParallelCutoff {
		return p.runSNTasksInline(round, tasks, cur, delta, counter)
	}
	p.traceParallelDispatch(round, len(tasks), probe)
	workers := p.opts.Workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	results := make([]*FactSet, len(tasks))
	taskStats := make([]*Stats, len(tasks))
	errs := make([]error, len(tasks))
	base := *counter
	g := p.curGuard()
	var nextTask int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&nextTask, 1)
				if i >= int64(len(tasks)) || g.TaskAborted() {
					return
				}
				t := tasks[i]
				out := NewFactSetShards(p.opts.Shards)
				var st *Stats
				if p.stats != nil {
					st = newStats()
				}
				localCounter := base
				c := &evalCtx{p: p, f: cur, counter: &localCounter, deltaIdx: -1, delta: delta, stats: st,
					g: p.armedGuard(), round: round}
				errs[i] = p.runShielded(t.rule, func() error { return c.runSNTask(t, out) })
				results[i], taskStats[i] = out, st
			}
		}()
	}
	wg.Wait()

	for i := range tasks {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if taskStats[i] != nil {
			if taskStats[i].Invented > 0 {
				return nil, fmt.Errorf("engine: internal: oid invention inside a parallel semi-naive stratum")
			}
			if p.stats != nil {
				for id, n := range taskStats[i].Firings {
					p.stats.Firings[id] += n
				}
			}
		}
	}
	if g.TaskAborted() {
		// Cancellation stopped workers mid-round without a task error;
		// surface it rather than merging a partial task set.
		if err := g.Check(round, cur.TotalSize, p.invented()); err != nil {
			return nil, err
		}
	}
	merged := NewFactSetShards(p.opts.Shards)
	p.recordMerge(round, merged.MergeOrdered(results))
	return merged, nil
}

// runSNTasksInline is the small-round fast path: the round's tasks run
// sequentially on the calling goroutine, emitting straight into one
// delta set in task order — the same fact set the worker-pool path
// produces by ordered merge, without goroutines, private deltas, or
// per-task stats.
func (p *Program) runSNTasksInline(round int, tasks []snTask, cur, delta *FactSet, counter *int64) (*FactSet, error) {
	out := NewFactSetShards(p.opts.Shards)
	c := &evalCtx{p: p, f: cur, counter: counter, deltaIdx: -1, delta: delta,
		stats: p.stats, g: p.armedGuard(), round: round, orchestrator: true}
	for _, t := range tasks {
		if err := p.runShielded(t.rule, func() error { return c.runSNTask(t, out) }); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// semiNaiveParallel is the worker-pool delta iteration; results are
// identical to semiNaiveSerial.
func (p *Program) semiNaiveParallel(stratum []*crule, f *FactSet, counter *int64) (*FactSet, error) {
	workers := p.opts.Workers
	if p.stats != nil {
		p.stats.Workers = workers
		p.stats.Shards = p.opts.Shards
	}
	cur := f.CloneShards(p.opts.Shards)
	cur.FreezeParallel(workers)

	p.traceRoundBegin(0)
	start := time.Now()
	tasks := round0Tasks(stratum, cur, workers)
	delta, err := p.runSNTasks(0, tasks, cur, nil, counter, cur.TotalSize())
	if err != nil {
		cur.Thaw()
		return nil, err
	}
	p.recordRound(0, len(tasks), time.Since(start))
	p.traceRoundEnd(0, delta.TotalSize(), cur.TotalSize(), start)

	for round := 0; delta.TotalSize() > 0; round++ {
		if err := p.checkRound(round, cur, "semi-naive delta iteration"); err != nil {
			cur.Thaw()
			return nil, err
		}
		if p.stats != nil {
			p.stats.Steps++
		}
		p.traceRoundBegin(round + 1)
		start := time.Now()
		cur.Thaw()
		p.recordMerge(round+1, cur.MergeOrdered([]*FactSet{delta}))
		cur.FreezeParallel(workers)
		delta.FreezeParallel(workers)
		tasks := deltaTasks(stratum, cur, delta, workers)
		next, err := p.runSNTasks(round+1, tasks, cur, delta, counter, delta.TotalSize())
		if err != nil {
			cur.Thaw()
			return nil, err
		}
		p.recordRound(round+1, len(tasks), time.Since(start))
		p.traceRoundEnd(round+1, next.TotalSize(), cur.TotalSize(), start)
		delta = next
	}
	cur.Thaw()
	return cur, nil
}

// recordRound appends one per-round parallel timing record to the stats.
func (p *Program) recordRound(round, tasks int, d time.Duration) {
	if p.stats == nil {
		return
	}
	p.stats.RoundTimings = append(p.stats.RoundTimings, RoundTiming{Round: round, Tasks: tasks, Duration: d})
}

// recordMerge appends the per-shard timing record of one ordered delta
// merge to the stats (single-shard serial merges are skipped) and
// emits the corresponding merge trace event.
func (p *Program) recordMerge(round int, ms MergeStats) {
	p.traceMerge(round, ms)
	if p.stats == nil || len(ms.ShardDurations) == 0 {
		return
	}
	p.stats.MergeTimings = append(p.stats.MergeTimings, MergeTiming{
		Round:          round,
		Shards:         ms.Shards,
		ShardDurations: ms.ShardDurations,
	})
}
