package engine

import (
	"sort"

	"logres/internal/ast"
)

// Stratification (§3.1): LOGRES programs stratified with respect to
// negation and data functions are evaluated stratum by stratum (each
// stratum under inflationary semantics), which yields the perfect model;
// non-stratified programs fall back to whole-program inflationary
// evaluation, which the paper also admits ("it can also be assigned a
// meaning, by computing it as a whole still under inflationary semantics").
//
// The dependency graph has one node per predicate (classes, associations,
// data functions). A rule with head h and body literal over b contributes
// an edge h → b; the edge is *strict* when the body literal is negated,
// when the rule reads a data function's extension through a function
// application (the whole extension must be complete before use), or when
// the head is a deletion. A program is stratified iff no strict edge lies
// on a cycle.

type depEdge struct {
	from, to string
	strict   bool
}

// computeStrata partitions p.rules into evaluation strata.
func (p *Program) computeStrata() {
	nodes := map[string]bool{}
	var edges []depEdge
	headOf := func(r *crule) string { return r.head.pred }

	for _, r := range p.rules {
		h := headOf(r)
		nodes[h] = true
		strictAll := r.head.negated // deletions depend strictly on their body
		for _, l := range r.body {
			switch l.kind {
			case pkClass, pkAssoc:
				nodes[l.pred] = true
				edges = append(edges, depEdge{from: h, to: l.pred, strict: strictAll || l.negated})
			}
		}
		// Data functions read anywhere in the rule are strict dependencies.
		for _, fn := range ruleFuncReads(r) {
			nodes[fn] = true
			edges = append(edges, depEdge{from: h, to: fn, strict: true})
		}
	}

	// Strongly connected components (iterative Tarjan).
	comp := sccs(nodes, edges)

	// A strict edge inside one component breaks stratification.
	p.stratified = true
	for _, e := range edges {
		if e.strict && comp[e.from] == comp[e.to] {
			p.stratified = false
			break
		}
	}
	if !p.stratified || !p.opts.Stratify {
		p.strata = [][]*crule{append([]*crule{}, p.rules...)}
		return
	}

	// Topological order of components: stratum(c) = 1 + max over deps.
	level := map[int]int{}
	adj := map[int]map[int]bool{}
	for _, e := range edges {
		cf, ct := comp[e.from], comp[e.to]
		if cf == ct {
			continue
		}
		if adj[cf] == nil {
			adj[cf] = map[int]bool{}
		}
		adj[cf][ct] = true
	}
	var depth func(c int, visiting map[int]bool) int
	depth = func(c int, visiting map[int]bool) int {
		if l, ok := level[c]; ok {
			return l
		}
		if visiting[c] {
			return 0 // inter-component cycles cannot occur in a condensation
		}
		visiting[c] = true
		max := 0
		for d := range adj[c] {
			if l := depth(d, visiting) + 1; l > max {
				max = l
			}
		}
		delete(visiting, c)
		level[c] = max
		return max
	}
	maxLevel := 0
	for _, c := range comp {
		if l := depth(c, map[int]bool{}); l > maxLevel {
			maxLevel = l
		}
	}
	byLevel := make([][]*crule, maxLevel+1)
	for _, r := range p.rules {
		l := level[comp[headOf(r)]]
		byLevel[l] = append(byLevel[l], r)
	}
	for _, s := range byLevel {
		if len(s) > 0 {
			p.strata = append(p.strata, s)
		}
	}
	if len(p.strata) == 0 {
		p.strata = [][]*crule{{}}
	}
}

// ruleFuncReads returns the data functions whose extension the rule reads
// through function-application terms (in body literals or the head). A
// recursive function definition's read of its own function is excluded:
// such recursion is an ordinary positive cycle (the member set grows
// monotonically under the inflationary operator), not a stratification
// violation — the paper's Example 3.2 relies on this. Use
// ruleFuncReadsAll when self-reads matter (semi-naive eligibility).
func ruleFuncReads(r *crule) []string {
	out := ruleFuncReadsAll(r)
	if r.head != nil && r.head.kind == hFunc {
		filtered := out[:0]
		for _, fn := range out {
			if fn != r.head.pred {
				filtered = append(filtered, fn)
			}
		}
		out = filtered
	}
	return out
}

// ruleFuncReadsAll is ruleFuncReads including a defining rule's read of its
// own function.
func ruleFuncReadsAll(r *crule) []string {
	seen := map[string]bool{}
	var walk func(t ast.Term)
	walk = func(t ast.Term) {
		switch x := t.(type) {
		case ast.FuncApp:
			seen[x.Name] = true
			for _, a := range x.Args {
				walk(a)
			}
		case ast.BinExpr:
			walk(x.L)
			walk(x.R)
		case ast.TupleTerm:
			for _, a := range x.Args {
				walk(a.Term)
			}
		case ast.SetTerm:
			for _, e := range x.Elems {
				walk(e)
			}
		case ast.MultisetTerm:
			for _, e := range x.Elems {
				walk(e)
			}
		case ast.SeqTerm:
			for _, e := range x.Elems {
				walk(e)
			}
		}
	}
	for _, l := range r.body {
		if l.selfTerm != nil {
			walk(l.selfTerm)
		}
		for _, c := range l.comps {
			walk(c.term)
		}
		for _, a := range l.args {
			walk(a)
		}
	}
	if h := r.head; h != nil {
		if h.selfTerm != nil {
			walk(h.selfTerm)
		}
		for _, c := range h.comps {
			walk(c.term)
		}
		if h.kind == hFunc {
			// The head literal member(X, f(a)) itself is a definition, not
			// a read, so the head's own FuncApp is never walked — only its
			// argument and member terms.
			if h.fnArg != nil {
				walk(h.fnArg)
			}
			walk(h.fnMember)
		}
	}
	var out []string
	for fn := range seen {
		out = append(out, fn)
	}
	sort.Strings(out)
	return out
}

// sccs computes strongly connected components; it returns a map from node
// to component id.
func sccs(nodes map[string]bool, edges []depEdge) map[string]int {
	adj := map[string][]string{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	comp := map[string]int{}
	counter, compID := 0, 0

	type frame struct {
		node string
		ei   int
	}
	var visit func(root string)
	visit = func(root string) {
		frames := []frame{{node: root}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.node]) {
				next := adj[f.node][f.ei]
				f.ei++
				if _, seen := index[next]; !seen {
					index[next] = counter
					low[next] = counter
					counter++
					stack = append(stack, next)
					onStack[next] = true
					frames = append(frames, frame{node: next})
				} else if onStack[next] {
					if index[next] < low[f.node] {
						low[f.node] = index[next]
					}
				}
				continue
			}
			// Pop.
			if low[f.node] == index[f.node] {
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp[top] = compID
					if top == f.node {
						break
					}
				}
				compID++
			}
			n := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[n] < low[parent.node] {
					low[parent.node] = low[n]
				}
			}
		}
	}
	for _, n := range order {
		if _, seen := index[n]; !seen {
			visit(n)
		}
	}
	return comp
}
