package engine

import (
	"fmt"

	"logres/internal/value"
)

// Built-in predicates (§3.1). Built-ins are untyped; their arguments must
// be bound by ordinary literals (enforced by the body-ordering pass). They
// do not add expressive power but make programs far more concise.
//
// Conventions follow Definition 6: for the three-argument set operations
// the LAST argument is the result, e.g. union(X, Y, Z) holds iff
// Z = X ∪ Y.

func (c *evalCtx) evalBuiltin(l resolvedLit, e *env, yield func(*env) error) error {
	switch l.pred {
	case "member":
		return c.builtinMember(l, e, yield)
	case "union", "intersection", "difference", "append", "nth":
		return c.builtinTernary(l, e, yield)
	case "count", "sum", "min", "max", "avg", "length":
		return c.builtinAggregate(l, e, yield)
	}
	return fmt.Errorf("engine: unknown builtin %q", l.pred)
}

// collectionElems returns the elements of any collection value.
func collectionElems(v value.Value) ([]value.Value, error) {
	switch x := v.(type) {
	case value.Set:
		return x.Elems(), nil
	case value.Multiset:
		return x.Elems(), nil
	case value.Sequence:
		return x.Elems(), nil
	}
	return nil, fmt.Errorf("engine: expected a collection, got %s", v.Kind())
}

func (c *evalCtx) builtinMember(l resolvedLit, e *env, yield func(*env) error) error {
	coll, err := evalTerm(l.args[1], e, c.f)
	if err != nil {
		return err
	}
	elems, err := collectionElems(coll)
	if err != nil {
		return err
	}
	if l.negated {
		x, err := evalTerm(l.args[0], e, c.f)
		if err != nil {
			return err
		}
		for _, el := range elems {
			if value.Equal(el, x) {
				return nil
			}
		}
		return yield(e)
	}
	for _, el := range elems {
		e2 := e.clone()
		ok, err := matchTerm(l.args[0], el, e2, c.f)
		if err != nil {
			return err
		}
		if ok {
			if err := yield(e2); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *evalCtx) builtinTernary(l resolvedLit, e *env, yield func(*env) error) error {
	a, err := evalTerm(l.args[0], e, c.f)
	if err != nil {
		return err
	}
	b, err := evalTerm(l.args[1], e, c.f)
	if err != nil {
		return err
	}
	var result value.Value
	switch l.pred {
	case "union":
		result, err = unionValues(a, b)
	case "intersection":
		result, err = intersectionValues(a, b)
	case "difference":
		result, err = differenceValues(a, b)
	case "append":
		result, err = appendValue(a, b)
	case "nth":
		result, err = nthValue(a, b)
		if err == nil && result == nil {
			return nil // index out of range: no valuation
		}
	}
	if err != nil {
		return err
	}
	if l.negated {
		got, err := evalTerm(l.args[2], e, c.f)
		if err != nil {
			return err
		}
		if !value.Equal(got, result) {
			return yield(e)
		}
		return nil
	}
	e2 := e.clone()
	ok, err := matchTerm(l.args[2], result, e2, c.f)
	if err != nil {
		return err
	}
	if ok {
		return yield(e2)
	}
	return nil
}

func unionValues(a, b value.Value) (value.Value, error) {
	switch x := a.(type) {
	case value.Set:
		if y, ok := b.(value.Set); ok {
			return x.Union(y), nil
		}
	case value.Multiset:
		if y, ok := b.(value.Multiset); ok {
			elems := append(append([]value.Value{}, x.Elems()...), y.Elems()...)
			return value.NewMultiset(elems...), nil
		}
	case value.Sequence:
		if y, ok := b.(value.Sequence); ok {
			elems := append(append([]value.Value{}, x.Elems()...), y.Elems()...)
			return value.NewSequence(elems...), nil
		}
	}
	return nil, fmt.Errorf("engine: union on incompatible collections %s and %s", a.Kind(), b.Kind())
}

func intersectionValues(a, b value.Value) (value.Value, error) {
	x, okA := a.(value.Set)
	y, okB := b.(value.Set)
	if !okA || !okB {
		return nil, fmt.Errorf("engine: intersection needs sets, got %s and %s", a.Kind(), b.Kind())
	}
	return x.Intersect(y), nil
}

func differenceValues(a, b value.Value) (value.Value, error) {
	x, okA := a.(value.Set)
	y, okB := b.(value.Set)
	if !okA || !okB {
		return nil, fmt.Errorf("engine: difference needs sets, got %s and %s", a.Kind(), b.Kind())
	}
	return x.Diff(y), nil
}

// appendValue adds one element to a collection: append(S, E, S') with
// S' = S ∪ {E} for sets, additive for multisets, and at-the-end for
// sequences.
func appendValue(coll, elem value.Value) (value.Value, error) {
	switch x := coll.(type) {
	case value.Set:
		return x.Add(elem), nil
	case value.Multiset:
		return x.Add(elem), nil
	case value.Sequence:
		return x.Append(elem), nil
	}
	return nil, fmt.Errorf("engine: append needs a collection, got %s", coll.Kind())
}

// nthValue returns the i-th (1-based) element of a sequence, or nil when
// out of range.
func nthValue(coll, idx value.Value) (value.Value, error) {
	q, ok := coll.(value.Sequence)
	if !ok {
		return nil, fmt.Errorf("engine: nth needs a sequence, got %s", coll.Kind())
	}
	i, ok := idx.(value.Int)
	if !ok {
		return nil, fmt.Errorf("engine: nth index must be an integer, got %s", idx.Kind())
	}
	if i < 1 || int(i) > q.Len() {
		return nil, nil
	}
	return q.At(int(i) - 1), nil
}

func (c *evalCtx) builtinAggregate(l resolvedLit, e *env, yield func(*env) error) error {
	coll, err := evalTerm(l.args[0], e, c.f)
	if err != nil {
		return err
	}
	elems, err := collectionElems(coll)
	if err != nil {
		return err
	}
	var result value.Value
	switch l.pred {
	case "count", "length":
		result = value.Int(len(elems))
	case "sum":
		allInt := true
		var fsum float64
		var isum int64
		for _, el := range elems {
			f, ok := numeric(el)
			if !ok {
				return fmt.Errorf("engine: sum over non-numeric element %s", el)
			}
			fsum += f
			if i, isInt := el.(value.Int); isInt {
				isum += int64(i)
			} else {
				allInt = false
			}
		}
		if allInt {
			result = value.Int(isum)
		} else {
			result = value.Real(fsum)
		}
	case "min", "max":
		if len(elems) == 0 {
			return nil // no valuation on empty input
		}
		best := elems[0]
		for _, el := range elems[1:] {
			cmp := value.Compare(el, best)
			if (l.pred == "min" && cmp < 0) || (l.pred == "max" && cmp > 0) {
				best = el
			}
		}
		result = best
	case "avg":
		if len(elems) == 0 {
			return nil
		}
		var fsum float64
		for _, el := range elems {
			f, ok := numeric(el)
			if !ok {
				return fmt.Errorf("engine: avg over non-numeric element %s", el)
			}
			fsum += f
		}
		result = value.Real(fsum / float64(len(elems)))
	}
	if l.negated {
		got, err := evalTerm(l.args[1], e, c.f)
		if err != nil {
			return err
		}
		if !value.Equal(got, result) {
			return yield(e)
		}
		return nil
	}
	e2 := e.clone()
	ok, err := matchTerm(l.args[1], result, e2, c.f)
	if err != nil {
		return err
	}
	if ok {
		return yield(e2)
	}
	return nil
}
