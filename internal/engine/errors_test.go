package engine

import (
	"strings"
	"testing"

	"logres/internal/ast"
	"logres/internal/parser"
)

// Compile-time rejection tests: each program violates one rule of the
// analysis and must be refused with a pointed message.

func expectCompileError(t *testing.T, schemaSrc, rulesSrc, wantSubstr string) {
	t.Helper()
	_, err := tryBuild(schemaSrc, rulesSrc, DefaultOptions())
	if err == nil {
		t.Fatalf("accepted: %s", rulesSrc)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q lacks %q", err, wantSubstr)
	}
}

const errSchema = `
domains NAME = string;
classes
  A = (v: NAME);
  B = (u: NAME);
associations
  P = (x: NAME);
  Q = (x: NAME, y: integer);
functions
  F: NAME -> {NAME};
`

func TestCompileRejections(t *testing.T) {
	cases := []struct{ rules, want string }{
		{`p(x: X) <- f(X).`, "used as a predicate"},
		{`p(x: X) <- name(X).`, "used as a predicate"},
		{`name(X) <- p(x: X).`, "cannot be a rule head"},
		{`member(X, g(Y)) <- p(x: X), p(x: Y).`, "not a declared function"},
		{`member(X, f(Y, Z)) <- p(x: X), p(x: Y), p(x: Z).`, "arity mismatch"},
		{`count(S, N) <- p(x: S), p(x: N).`, "cannot be a rule head"},
		{`p(x: X) <- q(x: X), member(X).`, "expects 2 arguments"},
		{`p(x: X) <- q(x: X, z: 1).`, `no component "z"`},
		{`p(x: X) <- q(x: X, x: X).`, "duplicate component"},
		{`p(self: X) <- q(x: X).`, "self argument on non-class"},
		{`a(self: X, self: Y) <- a(v: V), p(x: V).`, "duplicate self"},
		{`q(x: X, y: Y) <- p(x: X).`, "does not occur in the body"},
		{`p(x: X) <- X = Y.`, "unsafe rule"},
		{`p(x: X) <- q(1, 2, 3).`, "cannot map"},
		{`not a(self: X) <- p(x: N).`, "unbound self"},
		{`b(X) <- a(X).`, "hierarch"},
		{`p(x: X) <- q(x: X), X < Y, q(x: Y).`, ""}, // ordering saves this one: no error
	}
	for _, c := range cases {
		if c.want == "" {
			if _, err := tryBuild(errSchema, c.rules, DefaultOptions()); err != nil {
				t.Errorf("rejected valid rule %q: %v", c.rules, err)
			}
			continue
		}
		expectCompileError(t, errSchema, c.rules, c.want)
	}
}

func TestHeadComparisonRejected(t *testing.T) {
	// Comparisons cannot be heads; the parser cannot even produce one, so
	// drive resolveHead directly through a goal-less check: "=" as head
	// pred arrives via hand-built AST in practice — covered by the parse
	// layer, so here we assert the engine's own guard on builtins.
	expectCompileError(t, errSchema, `union(X, Y, Z) <- p(x: X), p(x: Y), p(x: Z).`, "cannot be a rule head")
}

func TestClassPositionalOverflowRejected(t *testing.T) {
	expectCompileError(t, errSchema, `a(self: S, "x", "y") <- p(x: X).`, "positional arguments")
}

func TestGoalErrors(t *testing.T) {
	p := build(t, errSchema, `p(x: "v").`)
	f := run(t, p)
	for _, bad := range []string{
		`?- nosuch(x: X).`,
		`?- p(z: X).`,
		`?- X = Y.`,
	} {
		goal, err := parseGoal(bad)
		if err != nil {
			t.Fatalf("parse %q: %v", bad, err)
		}
		if _, err := p.Query(f, goal); err == nil {
			t.Errorf("goal accepted: %s", bad)
		}
	}
}

func TestRuntimeComparisonKindError(t *testing.T) {
	p := build(t, `
associations
  M = (a: integer, b: string);
  OUT = (a: integer);
`, `
m(a: 1, b: "x").
out(a: A) <- m(a: A, b: B), A < B.
`)
	counter := int64(0)
	if _, err := p.Run(NewFactSet(), &counter); err == nil || !strings.Contains(err.Error(), "cannot compare") {
		t.Fatalf("cross-kind comparison accepted: %v", err)
	}
}

func TestMemberOverNonCollection(t *testing.T) {
	p := build(t, `
associations
  M = (a: integer);
  OUT = (a: integer);
`, `
m(a: 1).
out(a: X) <- m(a: A), member(X, A).
`)
	counter := int64(0)
	if _, err := p.Run(NewFactSet(), &counter); err == nil || !strings.Contains(err.Error(), "collection") {
		t.Fatalf("member over scalar accepted: %v", err)
	}
}

// parseGoal is a tiny local helper aliasing the parser.
func parseGoal(src string) ([]ast.Literal, error) { return parser.ParseGoal(src) }
