package engine

import (
	"testing"

	"logres/internal/obs"
)

// Tests of trace-driven parallel dispatch: rounds whose live probe size
// is under snParallelCutoff must run inline — zero parallel.dispatch
// events — while big rounds still fan out, and both paths stay
// bit-identical to serial.

func runWithDispatchMetrics(t *testing.T, edb *FactSet, workers int) (*FactSet, int64) {
	t.Helper()
	m := obs.NewMetrics()
	p, err := tryBuild(edgeSchema, closureRules,
		Options{MaxSteps: 10000, SemiNaive: true, Stratify: true,
			Workers: workers, Shards: workers, Tracer: m.Tracer()})
	if err != nil {
		t.Fatal(err)
	}
	c := int64(0)
	f, err := p.Run(edb, &c)
	if err != nil {
		t.Fatal(err)
	}
	return f, m.Counter("logres_parallel_dispatches_total").Value()
}

func TestTinyRoundsRecordZeroParallelDispatches(t *testing.T) {
	if snParallelCutoff < 30 {
		t.Skip("cutoff lowered elsewhere")
	}
	f, dispatches := runWithDispatchMetrics(t, chainEdgeFacts(20), 4)
	if dispatches != 0 {
		t.Fatalf("chain-20 with workers=4 recorded %d parallel dispatches, want 0 (all rounds under the cutoff)", dispatches)
	}
	serial, _ := runWithDispatchMetrics(t, chainEdgeFacts(20), 1)
	if !f.Equal(serial) {
		t.Fatal("inline small-round path diverged from serial")
	}
}

func TestBigRoundsStillDispatch(t *testing.T) {
	// With the cutoff lowered, the early rounds (probe ≥ 8) fan out
	// while the convergence tail (delta shrinking below 8 facts per
	// round) runs inline — both in one run.
	old := snParallelCutoff
	snParallelCutoff = 8
	defer func() { snParallelCutoff = old }()
	f, dispatches := runWithDispatchMetrics(t, chainEdgeFacts(40), 4)
	if dispatches == 0 {
		t.Fatal("chain-40 with cutoff 8 recorded no parallel dispatches")
	}
	serial, _ := runWithDispatchMetrics(t, chainEdgeFacts(40), 1)
	if !f.Equal(serial) {
		t.Fatal("mixed inline/fan-out run diverged from serial")
	}
}

// Lowering the cutoff to zero restores unconditional fan-out, and the
// result is still identical — the inline path is an optimization, not a
// semantic switch.
func TestDispatchCutoffZeroRestoresFanOut(t *testing.T) {
	old := snParallelCutoff
	snParallelCutoff = 0
	defer func() { snParallelCutoff = old }()
	f, dispatches := runWithDispatchMetrics(t, chainEdgeFacts(20), 4)
	if dispatches == 0 {
		t.Fatal("cutoff 0 still skipped fan-out")
	}
	snParallelCutoff = old
	g, _ := runWithDispatchMetrics(t, chainEdgeFacts(20), 4)
	if !f.Equal(g) {
		t.Fatal("fan-out and inline paths disagree")
	}
}
