package engine

import (
	"strings"
	"testing"

	"logres/internal/parser"
	"logres/internal/value"
)

// Targeted tests for evaluation corners: arithmetic on mixed types,
// builtin modes (negated, multiset/sequence variants), active-domain
// walks over constructed values, object binding upgrades, and error
// paths.

func TestEvalArithVariants(t *testing.T) {
	cases := []struct {
		op   string
		l, r value.Value
		want value.Value
	}{
		{"+", value.Str("a"), value.Str("b"), value.Str("ab")},
		{"+", value.NewSet(value.Int(1)), value.NewSet(value.Int(2)), value.NewSet(value.Int(1), value.Int(2))},
		{"+", value.NewSequence(value.Int(1)), value.NewSequence(value.Int(2)), value.NewSequence(value.Int(1), value.Int(2))},
		{"+", value.Int(2), value.Real(0.5), value.Real(2.5)},
		{"-", value.Real(2.5), value.Int(1), value.Real(1.5)},
		{"*", value.Real(2), value.Real(3), value.Real(6)},
		{"/", value.Real(5), value.Real(2), value.Real(2.5)},
		{"+", value.Int(2), value.Int(3), value.Int(5)},
		{"-", value.Int(2), value.Int(3), value.Int(-1)},
		{"*", value.Int(2), value.Int(3), value.Int(6)},
		{"/", value.Int(7), value.Int(2), value.Int(3)},
		{"mod", value.Int(7), value.Int(2), value.Int(1)},
	}
	for _, c := range cases {
		got, err := evalArith(c.op, c.l, c.r)
		if err != nil {
			t.Errorf("%v %s %v: %v", c.l, c.op, c.r, err)
			continue
		}
		if !value.Equal(got, c.want) {
			t.Errorf("%v %s %v = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
	// Error paths.
	for _, bad := range []struct {
		op   string
		l, r value.Value
	}{
		{"/", value.Int(1), value.Int(0)},
		{"mod", value.Int(1), value.Int(0)},
		{"/", value.Real(1), value.Real(0)},
		{"+", value.Bool(true), value.Int(1)},
		{"mod", value.Real(1), value.Real(2)},
	} {
		if _, err := evalArith(bad.op, bad.l, bad.r); err == nil {
			t.Errorf("%v %s %v accepted", bad.l, bad.op, bad.r)
		}
	}
}

func TestBindObjectUpgrade(t *testing.T) {
	e := newEnv()
	// Plain oid binding first, object binding second: upgrade.
	if !e.bindValue("X", value.Ref(7)) {
		t.Fatal("bindValue failed")
	}
	ob := objBinding{class: "c", oid: 7, tuple: value.NewTuple()}
	if !e.bindObject("X", ob) {
		t.Fatal("upgrade rejected")
	}
	b, _ := e.lookup("X")
	if b.obj == nil {
		t.Fatal("binding not upgraded to object")
	}
	// Mismatched oid fails.
	if e.bindObject("X", objBinding{oid: 8}) {
		t.Fatal("oid mismatch accepted")
	}
	// Non-oid value conflicts with an object binding.
	e2 := newEnv()
	e2.bindValue("Y", value.Int(3))
	if e2.bindObject("Y", ob) {
		t.Fatal("int vs object accepted")
	}
	// Two object bindings: same oid ok, different oid rejected.
	e3 := newEnv()
	e3.bindObject("Z", ob)
	if !e3.bindObject("Z", objBinding{oid: 7}) {
		t.Fatal("same-oid rebind rejected")
	}
	if e3.bindObject("Z", objBinding{oid: 9}) {
		t.Fatal("different-oid rebind accepted")
	}
}

func TestBuiltinMultisetSequenceVariants(t *testing.T) {
	p := build(t, `
domains D = integer;
associations
  MSIN = (m: [D]);
  SQIN = (q: <D>);
  OUT = (tag: string, m: [D]);
  SOUT = (tag: string, q: <D>);
  CNT = (tag: string, n: integer);
  AVGOUT = (v: real);
`, `
msin(m: [1, 1, 2]).
sqin(q: <3, 4>).
out(tag: "union", m: Z) <- msin(m: X), union(X, X, Z).
out(tag: "append", m: Z) <- msin(m: X), append(X, 9, Z).
sout(tag: "union", q: Z) <- sqin(q: X), union(X, X, Z).
sout(tag: "append", q: Z) <- sqin(q: X), append(X, 9, Z).
cnt(tag: "ms", n: N) <- msin(m: X), count(X, N).
avgout(v: V) <- sqin(q: X), avg(X, V).
`)
	f := run(t, p)
	got := strings.Join(tuples(f, "out"), " | ")
	if !strings.Contains(got, "m=[1, 1, 1, 1, 2, 2]") {
		t.Errorf("multiset union: %s", got)
	}
	if !strings.Contains(got, "m=[1, 1, 2, 9]") {
		t.Errorf("multiset append: %s", got)
	}
	sq := strings.Join(tuples(f, "sout"), " | ")
	if !strings.Contains(sq, "q=<3, 4, 3, 4>") {
		t.Errorf("sequence union (concat): %s", sq)
	}
	if !strings.Contains(sq, "q=<3, 4, 9>") {
		t.Errorf("sequence append: %s", sq)
	}
	if c := strings.Join(tuples(f, "cnt"), " "); !strings.Contains(c, "n=3") {
		t.Errorf("multiset count: %s", c)
	}
	if a := strings.Join(tuples(f, "avgout"), " "); !strings.Contains(a, "v=3.5") {
		t.Errorf("avg: %s", a)
	}
}

func TestBuiltinNegatedModes(t *testing.T) {
	p := build(t, `
domains D = integer;
associations
  IN = (s: {D});
  OUT = (tag: string);
`, `
in(s: {1, 2}).
out(tag: "notmember") <- in(s: S), not member(9, S).
out(tag: "notcount") <- in(s: S), not count(S, 5).
out(tag: "notunion") <- in(s: S), not union(S, S, {1}).
`)
	f := run(t, p)
	got := strings.Join(tuples(f, "out"), " ")
	for _, want := range []string{"notmember", "notcount", "notunion"} {
		if !strings.Contains(got, want) {
			t.Errorf("out missing %q: %s", want, got)
		}
	}
}

func TestBuiltinErrorPaths(t *testing.T) {
	// Union of incompatible collections is a runtime error.
	p := build(t, `
domains D = integer;
associations
  A = (s: {D});
  B = (m: [D]);
  OUT = (tag: string);
`, `
a(s: {1}).
b(m: [1]).
out(tag: "x") <- a(s: S), b(m: M), union(S, M, Z).
`)
	counter := int64(0)
	if _, err := p.Run(NewFactSet(), &counter); err == nil || !strings.Contains(err.Error(), "union") {
		t.Fatalf("incompatible union accepted: %v", err)
	}
	// min over an empty collection yields no valuation (not an error).
	p2 := build(t, `
domains D = integer;
associations
  A = (s: {D});
  OUT = (v: integer);
`, `
a(s: {}).
out(v: V) <- a(s: S), min(S, V).
`)
	f := run(t, p2)
	if f.Size("out") != 0 {
		t.Fatal("min over empty set produced a valuation")
	}
	// sum over non-numeric elements errors.
	p3 := build(t, `
associations
  A = (s: {string});
  OUT = (v: integer);
`, `
a(s: {"x"}).
out(v: V) <- a(s: S), sum(S, V).
`)
	if _, err := p3.Run(NewFactSet(), &counter); err == nil || !strings.Contains(err.Error(), "sum") {
		t.Fatalf("sum over strings accepted: %v", err)
	}
}

func TestNthOutOfRange(t *testing.T) {
	p := build(t, `
domains D = integer;
associations
  Q = (q: <D>);
  OUT = (v: integer);
`, `
q(q: <1, 2>).
out(v: V) <- q(q: S), nth(S, 5, V).
out(v: V) <- q(q: S), nth(S, 0, V).
`)
	f := run(t, p)
	if f.Size("out") != 0 {
		t.Fatalf("out-of-range nth produced %v", tuples(f, "out"))
	}
}

func TestActiveDomainOverConstructedValues(t *testing.T) {
	// Values inside sets and nested tuples feed the active domain of
	// their declared types.
	p := build(t, `
domains
  NAME = string;
  INFO = (tag: NAME);
associations
  BAG = (names: {NAME}, info: INFO);
  SEEN = (n: NAME);
  MISSING = (n: NAME);
`, `
bag(names: {"a", "b"}, info: (tag: "c")).
seen(n: "a").
missing(n: X) <- not seen(n: X).
`)
	f := run(t, p)
	got := strings.Join(tuples(f, "missing"), " ")
	// Active domain of NAME includes b (set element) and c (nested tuple).
	if !strings.Contains(got, `n="b"`) || !strings.Contains(got, `n="c"`) {
		t.Fatalf("active domain incomplete: %s", got)
	}
	if strings.Contains(got, `n="a"`) {
		t.Fatalf("negation wrong: %s", got)
	}
}

func TestFactStringAndFunctionStore(t *testing.T) {
	cf := Fact{Pred: "c", IsClass: true, OID: 3, Tuple: value.NewTuple(
		value.Field{Label: "v", Value: value.Int(1)})}
	if got := cf.String(); !strings.Contains(got, "&3") {
		t.Fatalf("class fact string = %q", got)
	}
	af := Fact{Pred: "a", Tuple: value.NewTuple()}
	if got := af.String(); got != "a()" {
		t.Fatalf("assoc fact string = %q", got)
	}
	if functionStore("f") == "f" {
		t.Fatal("function store name must not collide with the function")
	}
}

func TestAssocHeadTupleVarWithOverride(t *testing.T) {
	// A head association built from a tuple variable with one component
	// overridden.
	p := build(t, `
associations
  SRC = (a: integer, b: integer);
  DST = (a: integer, b: integer);
`, `
src(a: 1, b: 2).
dst(b: 9, a: A) <- src(T), T = (a: A, b: B).
`)
	f := run(t, p)
	got := tuples(f, "dst")
	if len(got) != 1 || got[0] != "a=1,b=9" {
		t.Fatalf("dst = %v", got)
	}
}

func TestQueryWithBuiltinsAndNegation(t *testing.T) {
	p := build(t, `
domains D = integer;
associations
  S = (set: {D});
  T = (v: integer);
`, `
s(set: {1, 2, 3}).
t(v: 2).
`)
	f := run(t, p)
	goal, err := parser.ParseGoal(`?- s(set: S), member(X, S), not t(v: X).`)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := p.Query(f, goal)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 2 {
		t.Fatalf("rows = %v", ans.Rows)
	}
}

func TestCandidateFactsSelfLookup(t *testing.T) {
	// Joining through a bound self variable goes through the oid map.
	p2 := build(t, `
classes C = (v: integer);
associations
  SEED = (k: integer);
  L = (ref: C);
  OUT = (v: integer);
`, `
seed(k: 1).
c(self: X, v: K) <- seed(k: K).
l(ref: X) <- c(self: X).
out(v: V) <- l(ref: R), c(self: R, v: V).
`)
	f := run(t, p2)
	if got := tuples(f, "out"); len(got) != 1 || got[0] != "v=1" {
		t.Fatalf("out = %v", got)
	}
}
