package engine

// Vectorized semi-naive evaluation: eligible strata run over columnar
// batches (internal/colset) instead of per-fact env matching. The plan
// compiler turns each rule body into a sequence of steps executed at
// their body-order positions — constant/duplicate selections, hash
// joins on dictionary codes, anti-joins for negation, comparison
// filters — and decodes codes back into facts only at the emit
// boundary. The row engine remains the semantics oracle: a stratum is
// vectorized only when every construct it uses has an exact columnar
// counterpart (association atoms and heads with variable/constant
// arguments, bound negation, bound comparisons), and everything else
// falls back to the row paths. Results, Stats.Firings, and the
// deterministic trace stream are identical to the serial row engine.

import (
	"fmt"
	"sort"

	"logres/internal/ast"
	"logres/internal/colset"
	"logres/internal/guard"
	"logres/internal/obs"
	"logres/internal/types"
	"logres/internal/value"
)

// vecPred is one tracked predicate: its effective-tuple labels, its
// columnar batch (base extension + per-round delta appends, in
// canonical order), and — for head predicates — the membership set of
// packed code rows used for the emit-boundary duplicate filter.
type vecPred struct {
	pred   string
	labels []string
	batch  *colset.Batch
	member *colset.CodeSet // nil unless the pred is a head in this stratum
}

type vecStepKind int

const (
	stepAtom vecStepKind = iota
	stepAnti
	stepFilter
)

// vecStep is one body literal compiled to a columnar operation. Steps
// are 1:1 with body literals and run at their body-order positions, so
// the valuation multiset reaching each step equals the row engine's.
type vecStep struct {
	kind vecStepKind

	// stepAtom / stepAnti
	vp         *vecPred
	constCols  []int // atom label indices filtered to a constant
	constVals  []value.Value
	constCodes []uint32
	dupA, dupB []int // intra-atom duplicate-variable label pairs
	keyAccCols []int // join keys: accumulated valuation columns …
	keyAtom    []int // … against these atom label indices
	newAtom    []int // atom label indices binding new variables …
	newAccCols []int // … into these valuation columns

	// stepFilter
	op             string
	neg            bool
	lCol, rCol     int // valuation column, or -1 for a constant
	lConst, rConst value.Value
	lCode, rCode   uint32
	cmpCache       map[uint64]cmpResult // order-op memo, keyed by code pair
}

type cmpResult struct {
	holds bool
	err   error
}

// vecRule is one compiled rule: its steps, the positions eligible for
// delta substitution, and the head layout (per effective label either a
// valuation column or a constant).
type vecRule struct {
	r        *crule
	steps    []vecStep
	posSteps []int // step indices of positive atoms, in body order
	nvars    int

	headPred   *vecPred
	headCols   []int // per label: valuation column, or -1
	headConsts []value.Value
	headCodes  []uint32
}

type kernelStat struct{ calls, rows int }

// vecStratum is the compiled plan plus per-evaluation state (dictionary,
// batches, kernel counters) for one stratum.
type vecStratum struct {
	p     *Program
	preds map[string]*vecPred
	order []*vecPred // first-mention order, for deterministic binding
	rules []*vecRule

	dict    *colset.Dict
	g       *guard.Guard
	emitted int
	kernels map[string]*kernelStat
}

// stratumVectorizable reports whether every rule of the stratum
// compiles to a columnar plan (used by Explain; the dispatch path
// compiles the plan once and keeps it).
func stratumVectorizable(stratum []*crule) bool {
	_, ok := compileVecStratum(stratum)
	return ok
}

// vecPlan compiles the stratum's columnar plan when vectorization is
// enabled and every rule is expressible.
func (p *Program) vecPlan(stratum []*crule) (*vecStratum, bool) {
	if !p.opts.Vectorize {
		return nil, false
	}
	return compileVecStratum(stratum)
}

func compileVecStratum(stratum []*crule) (*vecStratum, bool) {
	vs := &vecStratum{preds: map[string]*vecPred{}}
	for _, r := range stratum {
		vr, ok := vs.compileVecRule(r)
		if !ok {
			return nil, false
		}
		vs.rules = append(vs.rules, vr)
	}
	return vs, true
}

func (vs *vecStratum) trackPred(pred string, eff types.Tuple) *vecPred {
	if vp, ok := vs.preds[pred]; ok {
		return vp
	}
	labels := make([]string, len(eff.Fields))
	for i, f := range eff.Fields {
		labels[i] = f.Label
	}
	vp := &vecPred{pred: pred, labels: labels}
	vs.preds[pred] = vp
	vs.order = append(vs.order, vp)
	return vp
}

func (vs *vecStratum) compileVecRule(r *crule) (*vecRule, bool) {
	h := r.head
	if h == nil || h.kind != hAssoc || h.negated || h.tupleVar != "" ||
		h.copyFrom != "" || h.selfTerm != nil {
		return nil, false
	}
	vr := &vecRule{r: r}
	varCols := map[string]int{}
	ncols := 0
	for _, l := range r.body {
		switch l.kind {
		case pkAssoc:
			if len(l.tupleVars) > 0 || l.selfTerm != nil {
				return nil, false
			}
			if l.negated && len(l.adVars) > 0 {
				return nil, false
			}
			st := vecStep{kind: stepAtom, vp: vs.trackPred(l.pred, l.eff)}
			if l.negated {
				st.kind = stepAnti
			}
			labelIdx := map[string]int{}
			for i, lab := range st.vp.labels {
				labelIdx[lab] = i
			}
			atomVar := map[string]int{} // var → first atom label index
			for _, comp := range l.comps {
				li, ok := labelIdx[comp.label]
				if !ok {
					return nil, false
				}
				switch t := comp.term.(type) {
				case ast.Wildcard:
				case ast.Const:
					st.constCols = append(st.constCols, li)
					st.constVals = append(st.constVals, t.Val)
				case ast.Var:
					if first, dup := atomVar[t.Name]; dup {
						st.dupA = append(st.dupA, first)
						st.dupB = append(st.dupB, li)
						continue
					}
					atomVar[t.Name] = li
					if ac, bound := varCols[t.Name]; bound {
						st.keyAccCols = append(st.keyAccCols, ac)
						st.keyAtom = append(st.keyAtom, li)
					} else {
						if l.negated {
							// Unbound variables in negation range over the
							// active domain; the row engine keeps those.
							return nil, false
						}
						st.newAtom = append(st.newAtom, li)
						st.newAccCols = append(st.newAccCols, ncols)
						varCols[t.Name] = ncols
						ncols++
					}
				default:
					return nil, false
				}
			}
			if !l.negated {
				vr.posSteps = append(vr.posSteps, len(vr.steps))
			}
			vr.steps = append(vr.steps, st)
		case pkCompare:
			st := vecStep{kind: stepFilter, op: l.pred, neg: l.negated, lCol: -1, rCol: -1}
			bindArg := func(t ast.Term, col *int, cv *value.Value) bool {
				switch x := t.(type) {
				case ast.Var:
					c, bound := varCols[x.Name]
					if !bound {
						// An unbound side of "=" binds through unification;
						// keep that on the row engine.
						return false
					}
					*col = c
					return true
				case ast.Const:
					*cv = x.Val
					return true
				}
				return false
			}
			if !bindArg(l.args[0], &st.lCol, &st.lConst) || !bindArg(l.args[1], &st.rCol, &st.rConst) {
				return nil, false
			}
			vr.steps = append(vr.steps, st)
		default:
			return nil, false
		}
	}
	hp := vs.trackPred(h.pred, h.eff)
	vr.headPred = hp
	vr.headCols = make([]int, len(hp.labels))
	vr.headConsts = make([]value.Value, len(hp.labels))
	for li := range vr.headCols {
		vr.headCols[li] = -1
		vr.headConsts[li] = value.Null{}
	}
	for _, comp := range h.comps {
		li := -1
		for i, lab := range hp.labels {
			if lab == comp.label {
				li = i
				break
			}
		}
		if li < 0 {
			return nil, false
		}
		switch t := comp.term.(type) {
		case ast.Var:
			c, bound := varCols[t.Name]
			if !bound {
				return nil, false
			}
			vr.headCols[li] = c
		case ast.Const:
			vr.headConsts[li] = t.Val
		default:
			return nil, false
		}
	}
	vr.nvars = ncols
	return vr, true
}

// bind builds the per-evaluation state: the shared dictionary, one
// batch per tracked predicate from the frozen snapshot (canonical
// key-sorted order), membership sets for head predicates, and interned
// constant codes. cur must be frozen.
func (vs *vecStratum) bind(p *Program, cur *FactSet) {
	vs.p = p
	vs.g = p.armedGuard()
	vs.dict = colset.NewDict()
	vs.kernels = map[string]*kernelStat{}
	headPreds := map[string]bool{}
	for _, vr := range vs.rules {
		headPreds[vr.headPred.pred] = true
	}
	for _, vp := range vs.order {
		vp.batch = colset.NewBatch(len(vp.labels))
		if headPreds[vp.pred] {
			vp.member = colset.NewCodeSet(len(vp.labels))
		}
		vs.appendFacts(vp, cur.Facts(vp.pred))
	}
	for _, vr := range vs.rules {
		for si := range vr.steps {
			st := &vr.steps[si]
			switch st.kind {
			case stepAtom, stepAnti:
				st.constCodes = make([]uint32, len(st.constVals))
				for k, v := range st.constVals {
					st.constCodes[k] = vs.dict.Code(v)
				}
			case stepFilter:
				if st.lCol < 0 {
					st.lCode = vs.dict.Code(st.lConst)
				}
				if st.rCol < 0 {
					st.rCode = vs.dict.Code(st.rConst)
				}
				st.cmpCache = nil
			}
		}
		vr.headCodes = make([]uint32, len(vr.headConsts))
		for li, v := range vr.headConsts {
			if vr.headCols[li] < 0 {
				vr.headCodes[li] = vs.dict.Code(v)
			}
		}
	}
}

// appendFacts encodes facts onto vp's batch. Only canonical facts —
// association tuples with exactly the effective labels in declaration
// order, the shape every derived fact has — enter the membership set:
// a non-canonical base fact never Key-equals a derived fact, so the
// row engine's Has filter would not suppress the derivation either.
func (vs *vecStratum) appendFacts(vp *vecPred, facts []Fact) {
	row := make([]uint32, len(vp.labels))
	for _, fact := range facts {
		canonical := vp.member != nil && !fact.IsClass && fact.Tuple.Len() == len(vp.labels)
		for li, lab := range vp.labels {
			v, ok := fact.Tuple.Get(lab)
			if !ok {
				v = value.Null{}
			}
			row[li] = vs.dict.Code(v)
			if canonical && fact.Tuple.Field(li).Label != lab {
				canonical = false
			}
		}
		vp.batch.AppendRow(row)
		if canonical {
			vp.member.Add(row)
		}
	}
}

// appendDelta appends the round's merged delta onto each tracked batch
// and returns per-predicate views of just the appended rows, used as
// the delta side of the round's passes.
func (vs *vecStratum) appendDelta(delta *FactSet) map[string]*colset.Batch {
	out := map[string]*colset.Batch{}
	for _, vp := range vs.order {
		if delta.Size(vp.pred) == 0 {
			continue
		}
		start := vp.batch.Len()
		vs.appendFacts(vp, delta.Facts(vp.pred))
		out[vp.pred] = vp.batch.Slice(start, vp.batch.Len())
	}
	return out
}

func (vs *vecStratum) record(kernel string, rows int) {
	ks := vs.kernels[kernel]
	if ks == nil {
		ks = &kernelStat{}
		vs.kernels[kernel] = ks
	}
	ks.calls++
	ks.rows += rows
}

// atomSel applies the constant and duplicate-variable filters of an
// atom step; nil means every row.
func (vs *vecStratum) atomSel(st *vecStep, src *colset.Batch) []int32 {
	var sel []int32
	rows := src.Len()
	for k, li := range st.constCols {
		sel = colset.SelectEq(src.Col(li), rows, sel, st.constCodes[k])
		vs.record("select", len(sel))
	}
	for k := range st.dupA {
		sel = colset.SelectColEq(src.Col(st.dupA[k]), src.Col(st.dupB[k]), rows, sel)
		vs.record("select", len(sel))
	}
	return sel
}

// runPass evaluates one rule pass: the full pass (deltaStep < 0) or one
// delta-substituted pass. New facts land in out; cur is the merged
// current set (for guard reporting only — duplicate suppression runs on
// the membership sets).
func (vs *vecStratum) runPass(vr *vecRule, deltaStep int, dbatch *colset.Batch, round int, out, cur *FactSet) error {
	cols := make([][]uint32, vr.nvars)
	n := 1 // the unit valuation: one row, no columns
	for si := range vr.steps {
		st := &vr.steps[si]
		switch st.kind {
		case stepAtom:
			src := st.vp.batch
			if si == deltaStep {
				src = dbatch
			}
			sel := vs.atomSel(st, src)
			lkeys := make([][]uint32, len(st.keyAccCols))
			for k, ac := range st.keyAccCols {
				lkeys[k] = cols[ac]
			}
			rkeys := make([][]uint32, len(st.keyAtom))
			for k, li := range st.keyAtom {
				rkeys[k] = src.Col(li)
			}
			lidx, ridx := colset.Join(lkeys, n, nil, rkeys, src.Len(), sel)
			vs.record("join", len(lidx))
			for ci, col := range cols {
				if col != nil {
					cols[ci] = colset.Gather(col, lidx)
				}
			}
			for k, li := range st.newAtom {
				cols[st.newAccCols[k]] = colset.Gather(src.Col(li), ridx)
			}
			n = len(lidx)
		case stepAnti:
			src := st.vp.batch
			sel := vs.atomSel(st, src)
			lkeys := make([][]uint32, len(st.keyAccCols))
			for k, ac := range st.keyAccCols {
				lkeys[k] = cols[ac]
			}
			rkeys := make([][]uint32, len(st.keyAtom))
			for k, li := range st.keyAtom {
				rkeys[k] = src.Col(li)
			}
			keep := colset.AntiJoin(lkeys, n, nil, rkeys, src.Len(), sel)
			vs.record("antijoin", len(keep))
			for ci, col := range cols {
				if col != nil {
					cols[ci] = colset.Gather(col, keep)
				}
			}
			n = len(keep)
		case stepFilter:
			keep, err := vs.runFilter(st, cols, n)
			if err != nil {
				return err
			}
			vs.record("filter", len(keep))
			for ci, col := range cols {
				if col != nil {
					cols[ci] = colset.Gather(col, keep)
				}
			}
			n = len(keep)
		}
		if n == 0 {
			return nil
		}
	}
	return vs.emit(vr, cols, n, round, out, cur)
}

// runFilter evaluates a comparison step over the accumulated valuation
// rows. Equality is code equality; ordering comparisons decode through
// the dictionary and reuse compareValues, so type errors surface
// exactly as on the row engine. Results are memoized per code pair.
func (vs *vecStratum) runFilter(st *vecStep, cols [][]uint32, n int) ([]int32, error) {
	code := func(col int, c uint32, i int) uint32 {
		if col >= 0 {
			return cols[col][i]
		}
		return c
	}
	keep := make([]int32, 0, n)
	if st.op == "=" || st.op == "!=" {
		want := st.op == "="
		if st.neg {
			want = !want
		}
		for i := 0; i < n; i++ {
			eq := code(st.lCol, st.lCode, i) == code(st.rCol, st.rCode, i)
			if eq == want {
				keep = append(keep, int32(i))
			}
		}
		return keep, nil
	}
	if st.cmpCache == nil {
		st.cmpCache = map[uint64]cmpResult{}
	}
	for i := 0; i < n; i++ {
		lc := code(st.lCol, st.lCode, i)
		rc := code(st.rCol, st.rCode, i)
		k := uint64(lc)<<32 | uint64(rc)
		res, ok := st.cmpCache[k]
		if !ok {
			holds, err := compareValues(st.op, vs.dict.Value(lc), vs.dict.Value(rc))
			res = cmpResult{holds: holds, err: err}
			st.cmpCache[k] = res
		}
		if res.err != nil {
			return nil, res.err
		}
		holds := res.holds
		if st.neg {
			holds = !holds
		}
		if holds {
			keep = append(keep, int32(i))
		}
	}
	return keep, nil
}

// emit decodes the surviving valuations into head facts. Firings count
// every valuation (exactly like instantiateHead); the membership set
// suppresses facts already present in the merged current set or already
// derived this stratum — the same facts the row engine's Has filter
// suppresses — before any tuple is materialized.
func (vs *vecStratum) emit(vr *vecRule, cols [][]uint32, n, round int, out, cur *FactSet) error {
	if vs.p.stats != nil {
		vs.p.stats.Firings[vr.r.id] += n
	}
	hp := vr.headPred
	row := make([]uint32, len(hp.labels))
	fields := make([]value.Field, len(hp.labels))
	added := 0
	for i := 0; i < n; i++ {
		vs.emitted++
		if vs.g != nil && vs.emitted%inRoundCheckInterval == 0 {
			if err := vs.guardCheck(round, cur, hp.pred); err != nil {
				return err
			}
		}
		for li := range hp.labels {
			if c := vr.headCols[li]; c >= 0 {
				row[li] = cols[c][i]
			} else {
				row[li] = vr.headCodes[li]
			}
		}
		if !hp.member.Add(row) {
			continue
		}
		for li, lab := range hp.labels {
			fields[li] = value.Field{Label: lab, Value: vs.dict.Value(row[li])}
		}
		out.Add(Fact{Pred: hp.pred, Tuple: value.NewTuple(fields...)})
		added++
	}
	vs.record("emit", added)
	return nil
}

// guardCheck mirrors evalCtx.inRoundCheck for the vectorized emit loop.
func (vs *vecStratum) guardCheck(round int, cur *FactSet, pred string) error {
	invented := 0
	if st := vs.p.stats; st != nil {
		invented = st.Invented
	}
	err := vs.g.Check(round, func() int { return cur.TotalSize() + vs.emitted }, invented)
	if err != nil && vs.p.opts.Tracer != nil {
		vs.p.emit(obs.Event{
			Kind:    obs.KindGuardCheck,
			Stratum: vs.g.Stratum(),
			Round:   round,
			Pred:    pred,
			Detail:  err.Error(),
		})
	}
	return err
}

// traceVecKernels reports the stratum's kernel counters as
// deterministic vec.kernel events, in kernel-name order.
func (vs *vecStratum) traceVecKernels(stratum int) {
	p := vs.p
	if !p.tracing() {
		return
	}
	names := make([]string, 0, len(vs.kernels))
	for name := range vs.kernels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ks := vs.kernels[name]
		p.emit(obs.Event{
			Kind:    obs.KindVecKernel,
			Stratum: stratum,
			Pred:    name,
			Count:   ks.calls,
			Total:   ks.rows,
			Detail:  "vectorize",
		})
	}
}

// semiNaiveVectorized is delta iteration over columnar batches. The
// round structure — full round 0, then one delta-substituted pass per
// positive atom position with a non-empty delta — and every trace/stat
// boundary mirror semiNaiveSerial exactly.
func (p *Program) semiNaiveVectorized(vs *vecStratum, f *FactSet, counter *int64) (*FactSet, error) {
	cur := f.Clone()
	// The freeze builds every tracked predicate's merged view once, and
	// the batches are encoded from that canonical snapshot; after that
	// the batches are maintained incrementally (delta appends), so the
	// set is thawed again for the per-round merges.
	cur.Freeze()
	vs.bind(p, cur)
	cur.Thaw()

	stratum := p.curStratum()
	p.traceRoundBegin(0)
	start := p.traceNow()
	delta := NewFactSet()
	for _, vr := range vs.rules {
		if err := vs.runPass(vr, -1, nil, 0, delta, cur); err != nil {
			return nil, fmt.Errorf("%w (in rule %s)", err, vr.r)
		}
	}
	p.traceRoundEnd(0, delta.TotalSize(), cur.TotalSize(), start)
	for round := 0; delta.TotalSize() > 0; round++ {
		if err := p.checkRound(round, cur, "semi-naive delta iteration"); err != nil {
			return nil, err
		}
		if p.stats != nil {
			p.stats.Steps++
		}
		p.traceRoundBegin(round + 1)
		start := p.traceNow()
		cur.Merge(delta)
		dbatches := vs.appendDelta(delta)
		vs.emitted = 0
		next := NewFactSet()
		for _, vr := range vs.rules {
			for _, si := range vr.posSteps {
				st := &vr.steps[si]
				db := dbatches[st.vp.pred]
				if db == nil {
					continue
				}
				if err := vs.runPass(vr, si, db, round+1, next, cur); err != nil {
					return nil, fmt.Errorf("%w (in rule %s)", err, vr.r)
				}
			}
		}
		p.traceRoundEnd(round+1, next.TotalSize(), cur.TotalSize(), start)
		delta = next
	}
	vs.traceVecKernels(stratum)
	return cur, nil
}
