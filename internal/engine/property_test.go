package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"logres/internal/value"
)

// Property-based tests of the engine's semantic invariants.

// randomEdgeFacts builds a deterministic random edge EDB.
func randomEdgeFacts(n, m int, seed int64) *FactSet {
	r := rand.New(rand.NewSource(seed))
	fs := NewFactSet()
	for i := 0; i < m; i++ {
		a, b := r.Intn(n), r.Intn(n)
		fs.Add(Fact{Pred: "edge", Tuple: value.NewTuple(
			value.Field{Label: "src", Value: value.Int(int64(a))},
			value.Field{Label: "dst", Value: value.Int(int64(b))},
		)})
	}
	return fs
}

const edgeSchema = `
associations
  EDGE = (src: integer, dst: integer);
  TC = (src: integer, dst: integer);
  SAME = (a: integer, b: integer);
`

const closureRules = `
tc(src: X, dst: Y) <- edge(src: X, dst: Y).
tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
`

// Property: semi-naive and naive evaluation agree on random graphs.
func TestSemiNaiveEqualsNaiveProperty(t *testing.T) {
	naive, err := tryBuild(edgeSchema, closureRules,
		Options{MaxSteps: 10000, SemiNaive: false, Stratify: true})
	if err != nil {
		t.Fatal(err)
	}
	semi, err := tryBuild(edgeSchema, closureRules,
		Options{MaxSteps: 10000, SemiNaive: true, Stratify: true})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, nodes, edges uint8) bool {
		n := int(nodes%8) + 2
		m := int(edges%20) + 1
		edb := randomEdgeFacts(n, m, seed)
		c1, c2 := int64(0), int64(0)
		fN, err1 := naive.Run(edb, &c1)
		fS, err2 := semi.Run(edb, &c2)
		if err1 != nil || err2 != nil {
			return false
		}
		return fN.Equal(fS)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: inflationary evaluation of positive programs is monotone in
// the EDB — adding edges never removes closure facts.
func TestMonotonicityProperty(t *testing.T) {
	p, err := tryBuild(edgeSchema, closureRules, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, nodes, edges uint8) bool {
		n := int(nodes%8) + 2
		m := int(edges%15) + 1
		small := randomEdgeFacts(n, m, seed)
		big := small.Clone()
		big.Add(Fact{Pred: "edge", Tuple: value.NewTuple(
			value.Field{Label: "src", Value: value.Int(0)},
			value.Field{Label: "dst", Value: value.Int(1)},
		)})
		c1, c2 := int64(0), int64(0)
		fSmall, err1 := p.Run(small, &c1)
		fBig, err2 := p.Run(big, &c2)
		if err1 != nil || err2 != nil {
			return false
		}
		for _, fact := range fSmall.Facts("tc") {
			if !fBig.Has(fact) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: closure results agree with a reference Floyd–Warshall style
// computation.
func TestClosureAgainstReference(t *testing.T) {
	p, err := tryBuild(edgeSchema, closureRules, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, nodes, edges uint8) bool {
		n := int(nodes%7) + 2
		m := int(edges%18) + 1
		edb := randomEdgeFacts(n, m, seed)
		c := int64(0)
		out, err := p.Run(edb, &c)
		if err != nil {
			return false
		}
		// Reference closure.
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = make([]bool, n)
		}
		for _, fact := range edb.Facts("edge") {
			a, _ := fact.Tuple.Get("src")
			b, _ := fact.Tuple.Get("dst")
			reach[a.(value.Int)][b.(value.Int)] = true
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		want := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if reach[i][j] {
					want++
				}
			}
		}
		return out.Size("tc") == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Determinacy (Appendix B): programs with invention define results up to
// oid renaming. Running the same program from EDBs that differ only in a
// permutation of fact insertion order yields isomorphic instances — and
// since evaluation is deterministic over canonical fact order, actually
// identical ones.
func TestDeterminacyUnderInsertionOrder(t *testing.T) {
	schemaSrc := `
classes ITEM = (k: integer);
associations SEED = (k: integer);
`
	p, err := tryBuild(schemaSrc, `item(self: X, k: K) <- seed(k: K).`, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f := func(xs []int8, seed int64) bool {
		mk := func(order []int8) (*FactSet, int64) {
			fs := NewFactSet()
			for _, x := range order {
				fs.Add(Fact{Pred: "seed", Tuple: value.NewTuple(
					value.Field{Label: "k", Value: value.Int(int64(x))},
				)})
			}
			c := int64(0)
			out, err := p.Run(fs, &c)
			if err != nil {
				return nil, 0
			}
			return out, c
		}
		shuffled := append([]int8{}, xs...)
		r := rand.New(rand.NewSource(seed))
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		f1, _ := mk(xs)
		f2, _ := mk(shuffled)
		if f1 == nil || f2 == nil {
			return false
		}
		// Same object count and same multiset of o-values.
		if f1.Size("item") != f2.Size("item") {
			return false
		}
		vals := map[string]int{}
		for _, fact := range f1.Facts("item") {
			vals[fact.Tuple.Key()]++
		}
		for _, fact := range f2.Facts("item") {
			vals[fact.Tuple.Key()]--
		}
		for _, n := range vals {
			if n != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the inflationary fixpoint is idempotent — running the program
// on its own output adds nothing.
func TestFixpointIdempotent(t *testing.T) {
	p, err := tryBuild(edgeSchema, closureRules, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, nodes, edges uint8) bool {
		n := int(nodes%8) + 2
		m := int(edges%15) + 1
		edb := randomEdgeFacts(n, m, seed)
		c := int64(0)
		once, err := p.Run(edb, &c)
		if err != nil {
			return false
		}
		twice, err := p.Run(once, &c)
		if err != nil {
			return false
		}
		return once.Equal(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: ⊕ composition is associative on disjoint-oid operands and the
// right bias resolves conflicts.
func TestComposeProperties(t *testing.T) {
	mk := func(oid int64, v int64) Fact {
		return Fact{Pred: "c", IsClass: true, OID: value.OID(oid),
			Tuple: value.NewTuple(value.Field{Label: "v", Value: value.Int(v)})}
	}
	f := func(xs []uint8) bool {
		a, b := NewFactSet(), NewFactSet()
		for i, x := range xs {
			fact := mk(int64(x%16)+1, int64(i))
			if i%2 == 0 {
				a.Add(fact)
			} else {
				b.Add(fact)
			}
		}
		ab := a.Compose(b)
		// Every oid of b must carry b's o-value in the composition.
		for _, fact := range b.Facts("c") {
			got, ok := ab.HasOID("c", fact.OID)
			if !ok || got.Key() != fact.Key() {
				return false
			}
		}
		// Every oid only in a survives unchanged.
		for _, fact := range a.Facts("c") {
			if _, inB := b.HasOID("c", fact.OID); inB {
				continue
			}
			got, ok := ab.HasOID("c", fact.OID)
			if !ok || got.Key() != fact.Key() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: FactSet operations respect set laws on association facts.
func TestFactSetAlgebraProperties(t *testing.T) {
	mk := func(x uint8) Fact {
		return Fact{Pred: "p", Tuple: value.NewTuple(
			value.Field{Label: "v", Value: value.Int(int64(x))},
		)}
	}
	build := func(xs []uint8) *FactSet {
		fs := NewFactSet()
		for _, x := range xs {
			fs.Add(mk(x))
		}
		return fs
	}
	f := func(xs, ys []uint8) bool {
		a, b := build(xs), build(ys)
		u := a.Compose(b)
		i := a.Intersect(b)
		d := a.Minus(b)
		// |A ∪ B| = |A| + |B| − |A ∩ B|
		if u.TotalSize() != a.TotalSize()+b.TotalSize()-i.TotalSize() {
			return false
		}
		// A − B and A ∩ B partition A.
		if d.TotalSize()+i.TotalSize() != a.TotalSize() {
			return false
		}
		// (A − B) ∩ B = ∅
		if d.Intersect(b).TotalSize() != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Stats sanity: firing counts and step counts are populated.
func TestStatsPopulated(t *testing.T) {
	p := build(t, edgeSchema, fmt.Sprintf("edge(src: 1, dst: 2).\n%s", closureRules))
	_ = run(t, p)
	st := p.LastStats()
	if st == nil || st.Steps == 0 {
		t.Fatalf("stats = %+v", st)
	}
	total := 0
	for _, n := range st.Firings {
		total += n
	}
	if total == 0 {
		t.Fatal("no firings recorded")
	}
	out := p.Explain()
	if out == "" {
		t.Fatal("empty explain")
	}
}
