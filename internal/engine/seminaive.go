package engine

import "fmt"

// Semi-naive evaluation. Inside a stratum whose rules are monotone — no
// deletions, no oid invention, no o-value overwrites (class heads), and no
// active-domain enumeration in negations — the inflationary fixpoint
// coincides with the classical least fixpoint, and delta iteration applies:
// each round only joins derivations that use at least one fact discovered
// in the previous round. This is the optimization the ALGRES closure
// operator enables in the paper's prototype; experiment E1 quantifies the
// gap against naive iteration.

// stratumSemiNaiveEligible reports whether delta iteration is sound for
// every rule of the stratum.
func stratumSemiNaiveEligible(stratum []*crule) bool {
	headPreds := map[string]bool{}
	for _, r := range stratum {
		if r.head == nil {
			return false
		}
		headPreds[r.head.pred] = true
	}
	for _, r := range stratum {
		if r.head.negated || r.inventive {
			return false
		}
		if r.head.kind == hClass {
			// Class heads may overwrite o-values through ⊕; keep them on
			// the general operator.
			return false
		}
		for _, l := range r.body {
			if l.negated && len(l.adVars) > 0 {
				return false
			}
		}
		// A rule that reads a data function defined in this stratum sees
		// new facts without a positive literal over them; delta
		// restriction would miss those derivations.
		for _, fn := range ruleFuncReadsAll(r) {
			if headPreds[fn] {
				return false
			}
		}
	}
	return true
}

// semiNaive runs delta iteration over one stratum, fanning the per-round
// passes across a worker pool when Options.Workers > 1.
func (p *Program) semiNaive(stratum []*crule, f *FactSet, counter *int64) (*FactSet, error) {
	if p.opts.Workers > 1 {
		return p.semiNaiveParallel(stratum, f, counter)
	}
	return p.semiNaiveSerial(stratum, f, counter)
}

// semiNaiveSerial is the single-goroutine delta iteration.
func (p *Program) semiNaiveSerial(stratum []*crule, f *FactSet, counter *int64) (*FactSet, error) {
	cur := f.Clone()

	// Round 0: full evaluation of every rule against the initial set.
	p.traceRoundBegin(0)
	start := p.traceNow()
	delta := NewFactSet()
	c := &evalCtx{p: p, f: cur, counter: counter, deltaIdx: -1, stats: p.stats,
		g: p.armedGuard(), orchestrator: true}
	dminus := NewFactSet()
	for _, r := range stratum {
		err := c.matchBody(r.body, 0, newEnv(), func(e *env) error {
			return c.instantiateHead(r, e, delta, dminus)
		})
		if err != nil {
			return nil, fmt.Errorf("%w (in rule %s)", err, r)
		}
	}
	p.traceRoundEnd(0, delta.TotalSize(), cur.TotalSize(), start)
	for round := 0; delta.TotalSize() > 0; round++ {
		if err := p.checkRound(round, cur, "semi-naive delta iteration"); err != nil {
			return nil, err
		}
		if p.stats != nil {
			p.stats.Steps++
		}
		p.traceRoundBegin(round + 1)
		start := p.traceNow()
		cur.Merge(delta)
		next := NewFactSet()
		c := &evalCtx{p: p, f: cur, counter: counter, stats: p.stats,
			g: p.armedGuard(), round: round + 1, orchestrator: true}
		for _, r := range stratum {
			// One pass per body literal position: that literal ranges over
			// the delta, the others over the full current set.
			for pos, l := range r.body {
				if l.kind != pkClass && l.kind != pkAssoc {
					continue
				}
				if l.negated {
					continue
				}
				if delta.Size(l.pred) == 0 {
					continue
				}
				err := c.matchBodyDelta(r.body, 0, pos, delta, newEnv(), func(e *env) error {
					dplus := NewFactSet()
					if err := c.instantiateHead(r, e, dplus, NewFactSet()); err != nil {
						return err
					}
					for _, pred := range dplus.Preds() {
						for _, fact := range dplus.Facts(pred) {
							if !cur.Has(fact) {
								next.Add(fact)
							}
						}
					}
					return nil
				})
				if err != nil {
					return nil, fmt.Errorf("%w (in rule %s)", err, r)
				}
			}
		}
		p.traceRoundEnd(round+1, next.TotalSize(), cur.TotalSize(), start)
		delta = next
	}
	return cur, nil
}

// matchBodyDelta is matchBody with the literal at deltaPos restricted to
// the delta fact set.
func (c *evalCtx) matchBodyDelta(body []resolvedLit, i, deltaPos int, delta *FactSet, e *env, yield func(*env) error) error {
	if i >= len(body) {
		return yield(e)
	}
	next := func(e2 *env) error {
		return c.matchBodyDelta(body, i+1, deltaPos, delta, e2, yield)
	}
	l := body[i]
	if i == deltaPos && (l.kind == pkClass || l.kind == pkAssoc) && !l.negated {
		return c.matchPositive(l, delta, e, next)
	}
	return c.matchLit(l, e, next)
}
