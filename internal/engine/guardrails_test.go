package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// Tests of the evaluation guardrails: divergent programs must abort with
// typed, attributable errors under every budget axis, on the serial and
// the parallel engine alike, and a panicking worker must surface an
// error instead of hanging the merge.

// A semi-naive-eligible divergent program: the counting rule derives one
// new fact per round forever.
const countingSchema = `associations N = (v: integer);`
const countingRules = `
n(v: 0).
n(v: Y) <- n(v: X), Y = X + 1.
`

// A divergent inventive program: every round derives a new value and
// invents a fresh oid for it. Inventive strata run on the serial
// one-step operator regardless of Workers.
const inventiveSchema = `
classes C = (v: integer);
associations SEED = (k: integer);
`
const inventiveRules = `
c(self: S, v: 0) <- seed(k: 1).
c(self: S, v: Y) <- c(v: X), Y = X + 1.
`

func guardOpts(workers, shards int, b Budget) Options {
	return Options{MaxSteps: 1 << 30, SemiNaive: true, Stratify: true,
		Workers: workers, Shards: shards, Budget: b}
}

// Every budget axis must stop the counting program, for serial and
// parallel workers and shard counts, with a *BudgetError naming the axis.
func TestDivergenceAbortsUnderEveryAxis(t *testing.T) {
	cases := []struct {
		name   string
		budget Budget
		axis   Axis
	}{
		{"rounds", Budget{MaxRounds: 20}, AxisRounds},
		{"facts", Budget{MaxFacts: 40}, AxisFacts},
		{"deadline", Budget{Timeout: 20 * time.Millisecond}, AxisDeadline},
	}
	for _, workers := range []int{1, 4} {
		for _, shards := range []int{1, 4} {
			for _, c := range cases {
				t.Run(fmt.Sprintf("%s/workers=%d/shards=%d", c.name, workers, shards), func(t *testing.T) {
					p, err := tryBuild(countingSchema, countingRules, guardOpts(workers, shards, c.budget))
					if err != nil {
						t.Fatal(err)
					}
					counter := int64(0)
					_, err = p.Run(NewFactSet(), &counter)
					if err == nil {
						t.Fatal("divergent program terminated")
					}
					var be *BudgetError
					if !errors.As(err, &be) {
						t.Fatalf("err = %v (%T), want *BudgetError", err, err)
					}
					if be.Axis != c.axis {
						t.Fatalf("axis = %q, want %q (err: %v)", be.Axis, c.axis, err)
					}
					if st := p.LastStats(); st.Abort != string(c.axis) {
						t.Fatalf("Stats.Abort = %q, want %q", st.Abort, c.axis)
					}
				})
			}
		}
	}
}

// The invented-oid axis must stop the inventive program; the abort error
// carries the oid count for attribution.
func TestDivergenceAbortsOnOIDBudget(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			opts := guardOpts(workers, 1, Budget{MaxOIDs: 25})
			p, err := tryBuild(inventiveSchema, inventiveRules, opts)
			if err != nil {
				t.Fatal(err)
			}
			schema := schemaOf(t, inventiveSchema)
			edb := seedEDB(t, schema, `seed(k: 1).`)
			counter := int64(0)
			_, err = p.Run(edb, &counter)
			var be *BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("err = %v (%T), want *BudgetError", err, err)
			}
			if be.Axis != AxisOIDs {
				t.Fatalf("axis = %q, want oids", be.Axis)
			}
			if be.Invented <= 25 {
				t.Fatalf("Invented = %d, want > 25", be.Invented)
			}
		})
	}
}

// The non-inflationary oscillator has no fixpoint: the rounds budget
// must trip with the undefined-semantics note, and the facts/deadline
// axes must trip it too.
func TestOscillatorAborts(t *testing.T) {
	schemaSrc := `
associations
  SEED = (k: integer);
  FLIP = (k: integer);
  N = (v: integer);
`
	// The oscillator alone adds no new facts after round 1; the counting
	// rule keeps the extension growing so facts/deadline have something
	// to measure while flip flips.
	rulesSrc := `
flip(k: X) <- seed(k: X), not flip(k: X).
n(v: 0).
n(v: Y) <- n(v: X), Y = X + 1.
`
	schema := schemaOf(t, schemaSrc)
	cases := []struct {
		name   string
		budget Budget
		axis   Axis
	}{
		{"rounds", Budget{MaxRounds: 30}, AxisRounds},
		{"facts", Budget{MaxFacts: 50}, AxisFacts},
		{"deadline", Budget{Timeout: 20 * time.Millisecond}, AxisDeadline},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opts := guardOpts(1, 1, c.budget)
			opts.NonInflationary = true
			p, err := tryBuild(schemaSrc, rulesSrc, opts)
			if err != nil {
				t.Fatal(err)
			}
			edb := seedEDB(t, schema, `seed(k: 7).`)
			counter := int64(0)
			_, err = p.Run(edb, &counter)
			var be *BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("err = %v (%T), want *BudgetError", err, err)
			}
			if be.Axis != c.axis {
				t.Fatalf("axis = %q, want %q", be.Axis, c.axis)
			}
		})
	}
}

// Cancellation aborts the evaluation with a *CanceledError that unwraps
// to the context's cause, on serial and parallel paths.
func TestCancellationAborts(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("canceled/workers=%d", workers), func(t *testing.T) {
			p, err := tryBuild(countingSchema, countingRules, guardOpts(workers, 4, Budget{}))
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			counter := int64(0)
			_, err = p.RunContext(ctx, NewFactSet(), &counter)
			var ce *CanceledError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v (%T), want *CanceledError", err, err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err does not unwrap to context.Canceled: %v", err)
			}
			if st := p.LastStats(); st.Abort != "canceled" {
				t.Fatalf("Stats.Abort = %q, want canceled", st.Abort)
			}
		})
		t.Run(fmt.Sprintf("deadline/workers=%d", workers), func(t *testing.T) {
			p, err := tryBuild(countingSchema, countingRules, guardOpts(workers, 4, Budget{}))
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			counter := int64(0)
			_, err = p.RunContext(ctx, NewFactSet(), &counter)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err does not unwrap to context.DeadlineExceeded: %v", err)
			}
		})
	}
}

// A panic inside a worker-pool task must surface as a *PanicError — the
// evaluation returns instead of deadlocking the ordered merge, and the
// panic is attributed to the rule that blew up.
func TestWorkerPanicBecomesError(t *testing.T) {
	testWorkerPanic = func(r *crule) { panic("injected worker panic") }
	defer func() { testWorkerPanic = nil }()

	opts := Options{MaxSteps: 10000, SemiNaive: true, Stratify: true, Workers: 4, Shards: 4}
	p, err := tryBuild(edgeSchema, closureRules, opts)
	if err != nil {
		t.Fatal(err)
	}
	counter := int64(0)
	_, err = p.Run(chainEdgeFacts(30), &counter)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "injected worker panic" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error lost the stack")
	}
	if st := p.LastStats(); st.Abort != "panic" {
		t.Fatalf("Stats.Abort = %q, want panic", st.Abort)
	}
}

// An inactive guard must not change results: the same program run with
// and without an (unexhausted) budget computes identical fact sets.
func TestGuardrailsPreserveResults(t *testing.T) {
	plain, err := tryBuild(edgeSchema, closureRules, Options{MaxSteps: 10000, SemiNaive: true, Stratify: true, Workers: 4, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := tryBuild(edgeSchema, closureRules, guardOpts(4, 4, Budget{MaxFacts: 1 << 20, MaxOIDs: 1 << 20, Timeout: time.Minute}))
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := int64(0), int64(0)
	f1, err := plain.Run(chainEdgeFacts(20), &c1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := budgeted.Run(chainEdgeFacts(20), &c2)
	if err != nil {
		t.Fatal(err)
	}
	if !f1.Equal(f2) {
		t.Fatal("an unexhausted budget changed the result")
	}
}
