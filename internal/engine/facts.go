// Package engine implements the LOGRES rule engine: compile-time analysis
// (typing, safety, oid-unification legality, stratification), the
// inflationary deterministic semantics of Appendix B (valuation domains,
// invented oids, Δ+/Δ−, the non-commutative composition ⊕ and the one-step
// inflationary operator), a semi-naive optimization for positive strata,
// the built-in predicates of §3.1, and the integrity constraints generated
// from type equations.
package engine

import (
	"sort"
	"strings"

	"logres/internal/instance"
	"logres/internal/types"
	"logres/internal/value"
)

// Fact is one ground fact. Class facts carry the object's oid and the
// projection of its o-value; association and data-function facts carry a
// tuple. Data-function facts for F : T → {T'} are stored under the function
// name with tuple (arg: a, member: m); nullary functions omit arg.
type Fact struct {
	Pred    string
	IsClass bool
	OID     value.OID // class facts only
	Tuple   value.Tuple
}

// FuncArgLabel and FuncMemberLabel are the component labels of data-
// function facts.
const (
	FuncArgLabel    = "arg"
	FuncMemberLabel = "member"
)

// Key returns the identity of the fact (pred + oid + tuple).
func (f Fact) Key() string {
	var b strings.Builder
	b.WriteString(f.Pred)
	b.WriteByte('/')
	if f.IsClass {
		b.WriteString(f.OID.String())
		b.WriteByte('/')
	}
	b.WriteString(f.Tuple.Key())
	return b.String()
}

func (f Fact) String() string {
	if f.IsClass {
		return f.Pred + "(" + f.OID.String() + ", " + f.Tuple.String() + ")"
	}
	return f.Pred + f.Tuple.String()
}

// FactSet is a set of ground facts indexed by predicate. Class predicates
// additionally index facts by oid so that the right-biased composition ⊕
// can resolve o-value conflicts.
type FactSet struct {
	byPred map[string]map[string]Fact    // pred → fact key → fact
	byOID  map[string]map[value.OID]Fact // class pred → oid → fact

	// caches, invalidated per predicate on mutation
	sorted map[string][]Fact                       // pred → facts in key order
	index  map[string]map[string]map[string][]Fact // pred → label → value key → facts
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{
		byPred: map[string]map[string]Fact{},
		byOID:  map[string]map[value.OID]Fact{},
	}
}

func (s *FactSet) invalidate(pred string) {
	if s.sorted != nil {
		delete(s.sorted, pred)
	}
	if s.index != nil {
		delete(s.index, pred)
	}
}

// FactsByComponent returns the facts of pred whose labelled component
// equals v, using (and lazily building) a hash index. The returned slice
// must not be mutated; ordering within a bucket follows fact key order.
func (s *FactSet) FactsByComponent(pred, label string, v value.Value) []Fact {
	if s.index == nil {
		s.index = map[string]map[string]map[string][]Fact{}
	}
	byLabel := s.index[pred]
	if byLabel == nil {
		byLabel = map[string]map[string][]Fact{}
		s.index[pred] = byLabel
	}
	idx, ok := byLabel[label]
	if !ok {
		idx = map[string][]Fact{}
		for _, f := range s.Facts(pred) {
			cv, found := f.Tuple.Get(label)
			if !found {
				cv = value.Null{}
			}
			k := cv.Key()
			idx[k] = append(idx[k], f)
		}
		byLabel[label] = idx
	}
	return idx[v.Key()]
}

// Add inserts a fact. For class facts an existing fact with the same oid is
// replaced (the newer o-value wins — the ⊕ bias); the method reports
// whether the set changed.
func (s *FactSet) Add(f Fact) bool {
	m := s.byPred[f.Pred]
	if m == nil {
		m = map[string]Fact{}
		s.byPred[f.Pred] = m
	}
	s.invalidate(f.Pred)
	if f.IsClass {
		om := s.byOID[f.Pred]
		if om == nil {
			om = map[value.OID]Fact{}
			s.byOID[f.Pred] = om
		}
		if prev, ok := om[f.OID]; ok {
			if prev.Key() == f.Key() {
				return false
			}
			delete(m, prev.Key())
		}
		om[f.OID] = f
		m[f.Key()] = f
		return true
	}
	k := f.Key()
	if _, ok := m[k]; ok {
		return false
	}
	m[k] = f
	return true
}

// Remove deletes a fact by exact identity; it reports whether it was
// present.
func (s *FactSet) Remove(f Fact) bool {
	m := s.byPred[f.Pred]
	if m == nil {
		return false
	}
	k := f.Key()
	if _, ok := m[k]; !ok {
		return false
	}
	s.invalidate(f.Pred)
	delete(m, k)
	if f.IsClass {
		if om := s.byOID[f.Pred]; om != nil {
			if cur, ok := om[f.OID]; ok && cur.Key() == k {
				delete(om, f.OID)
			}
		}
	}
	return true
}

// Has reports exact membership.
func (s *FactSet) Has(f Fact) bool {
	m := s.byPred[f.Pred]
	if m == nil {
		return false
	}
	_, ok := m[f.Key()]
	return ok
}

// HasOID reports whether the class predicate contains the oid, and returns
// its current o-value projection.
func (s *FactSet) HasOID(pred string, oid value.OID) (Fact, bool) {
	om := s.byOID[pred]
	if om == nil {
		return Fact{}, false
	}
	f, ok := om[oid]
	return f, ok
}

// Facts returns the facts of a predicate in deterministic (key) order.
// The returned slice is cached and must not be mutated.
func (s *FactSet) Facts(pred string) []Fact {
	if cached, ok := s.sorted[pred]; ok {
		return cached
	}
	m := s.byPred[pred]
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Fact, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	if s.sorted == nil {
		s.sorted = map[string][]Fact{}
	}
	s.sorted[pred] = out
	return out
}

// Size reports the number of facts for a predicate.
func (s *FactSet) Size(pred string) int { return len(s.byPred[pred]) }

// TotalSize reports the total number of facts.
func (s *FactSet) TotalSize() int {
	n := 0
	for _, m := range s.byPred {
		n += len(m)
	}
	return n
}

// Preds returns the predicates with at least one fact, sorted.
func (s *FactSet) Preds() []string {
	var out []string
	for p, m := range s.byPred {
		if len(m) > 0 {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy.
func (s *FactSet) Clone() *FactSet {
	n := NewFactSet()
	for p, m := range s.byPred {
		cp := make(map[string]Fact, len(m))
		for k, f := range m {
			cp[k] = f
		}
		n.byPred[p] = cp
	}
	for p, om := range s.byOID {
		cp := make(map[value.OID]Fact, len(om))
		for o, f := range om {
			cp[o] = f
		}
		n.byOID[p] = cp
	}
	return n
}

// Equal reports whether two sets contain exactly the same facts.
func (s *FactSet) Equal(o *FactSet) bool {
	if s.TotalSize() != o.TotalSize() {
		return false
	}
	for p, m := range s.byPred {
		om := o.byPred[p]
		for k := range m {
			if _, ok := om[k]; !ok {
				return false
			}
		}
	}
	return true
}

// Compose computes s ⊕ d (Appendix B): the union of the two sets, except
// that class facts of s whose oid also appears in d with a different
// o-value are replaced by d's fact. ⊕ is non-commutative; the receiver is
// the left operand. A fresh set is returned.
func (s *FactSet) Compose(d *FactSet) *FactSet {
	out := s.Clone()
	out.Merge(d)
	return out
}

// Merge is the in-place ⊕: it adds every fact of d into s (right bias for
// class facts) and reports whether s changed.
func (s *FactSet) Merge(d *FactSet) bool {
	changed := false
	for _, p := range d.Preds() {
		for _, f := range d.Facts(p) {
			if s.Add(f) {
				changed = true
			}
		}
	}
	return changed
}

// Minus returns s − d (exact-identity removal).
func (s *FactSet) Minus(d *FactSet) *FactSet {
	out := s.Clone()
	for _, p := range d.Preds() {
		for _, f := range d.Facts(p) {
			out.Remove(f)
		}
	}
	return out
}

// Intersect returns s ∩ d (exact identity).
func (s *FactSet) Intersect(d *FactSet) *FactSet {
	out := NewFactSet()
	for _, p := range s.Preds() {
		for _, f := range s.Facts(p) {
			if d.Has(f) {
				out.Add(f)
			}
		}
	}
	return out
}

// FromInstance converts an instance into a fact set: one class fact per
// class membership (o-value projected on the class's effective type) and
// one fact per association tuple.
func FromInstance(in *instance.Instance) (*FactSet, error) {
	s := in.Schema()
	fs := NewFactSet()
	for _, c := range s.NamesOf(types.DeclClass) {
		eff, err := s.EffectiveTuple(c)
		if err != nil {
			return nil, err
		}
		for _, oid := range in.Objects(c) {
			v, _ := in.OValue(oid)
			fs.Add(Fact{Pred: c, IsClass: true, OID: oid, Tuple: instance.Project(v, eff)})
		}
	}
	for _, a := range s.NamesOf(types.DeclAssociation) {
		for _, t := range in.Tuples(a) {
			fs.Add(Fact{Pred: a, Tuple: t})
		}
	}
	for _, fn := range s.NamesOf(types.DeclFunction) {
		for _, t := range in.Tuples(functionStore(fn)) {
			fs.Add(Fact{Pred: fn, Tuple: t})
		}
	}
	return fs, nil
}

// functionStore names the hidden association backing a data function.
func functionStore(fn string) string { return "$fn$" + fn }

// ToInstance converts a fact set into an instance over the schema,
// reconciling class facts across a generalization hierarchy (an oid's
// o-value is the ⊕ of its projections; later components win, but since all
// class facts of one oid stem from one o-value they agree).
func ToInstance(fs *FactSet, schema *types.Schema, oidCounter int64) *instance.Instance {
	in := instance.New(schema)
	in.SetOIDCounter(oidCounter)
	for _, p := range fs.Preds() {
		if schema.IsClass(p) {
			for _, f := range fs.Facts(p) {
				in.AddToClass(p, f.OID, f.Tuple)
			}
			continue
		}
		if schema.IsFunction(p) {
			for _, f := range fs.Facts(p) {
				in.InsertTuple(functionStore(p), f.Tuple)
			}
			continue
		}
		for _, f := range fs.Facts(p) {
			in.InsertTuple(p, f.Tuple)
		}
	}
	return in
}

// MaxOID returns the largest oid mentioned by any class fact.
func (s *FactSet) MaxOID() value.OID {
	var max value.OID
	for _, om := range s.byOID {
		for o := range om {
			if o > max {
				max = o
			}
		}
	}
	return max
}
