// Package engine implements the LOGRES rule engine: compile-time analysis
// (typing, safety, oid-unification legality, stratification), the
// inflationary deterministic semantics of Appendix B (valuation domains,
// invented oids, Δ+/Δ−, the non-commutative composition ⊕ and the one-step
// inflationary operator), a semi-naive optimization for positive strata,
// the built-in predicates of §3.1, and the integrity constraints generated
// from type equations.
package engine

import (
	"sort"
	"strings"

	"logres/internal/instance"
	"logres/internal/types"
	"logres/internal/value"
)

// Fact is one ground fact. Class facts carry the object's oid and the
// projection of its o-value; association and data-function facts carry a
// tuple. Data-function facts for F : T → {T'} are stored under the function
// name with tuple (arg: a, member: m); nullary functions omit arg.
type Fact struct {
	Pred    string
	IsClass bool
	OID     value.OID // class facts only
	Tuple   value.Tuple
}

// FuncArgLabel and FuncMemberLabel are the component labels of data-
// function facts.
const (
	FuncArgLabel    = "arg"
	FuncMemberLabel = "member"
)

// Key returns the identity of the fact (pred + oid + tuple).
func (f Fact) Key() string {
	var b strings.Builder
	b.WriteString(f.Pred)
	b.WriteByte('/')
	if f.IsClass {
		b.WriteString(f.OID.String())
		b.WriteByte('/')
	}
	b.WriteString(f.Tuple.Key())
	return b.String()
}

func (f Fact) String() string {
	if f.IsClass {
		return f.Pred + "(" + f.OID.String() + ", " + f.Tuple.String() + ")"
	}
	return f.Pred + f.Tuple.String()
}

var nullKey = value.Null{}.Key()

// predCache is the per-predicate access structure: the predicate's facts as
// a slice (a key-sorted prefix of length sortedLen followed by facts in
// insertion order) plus hash buckets per component label. Both are
// maintained incrementally on Add/Remove instead of being discarded and
// rebuilt from scratch (the pre-PR behaviour made every semi-naive round
// pay an O(n log n) re-sort and an O(n) index rebuild of the recursive
// predicate).
type predCache struct {
	list      []Fact
	keys      []string                     // keys[i] == list[i].Key(), kept to avoid re-deriving
	sortedLen int                          // list[:sortedLen] is in strictly ascending key order
	index     map[string]map[string][]Fact // label → value key → facts
	labels    map[string]bool              // labels occurring in any fact
}

// FactSet is a set of ground facts indexed by predicate. Class predicates
// additionally index facts by oid so that the right-biased composition ⊕
// can resolve o-value conflicts.
//
// A FactSet can be frozen (Freeze): all per-predicate caches and component
// buckets are pre-built, reads never mutate shared state (safe for
// concurrent readers), and Add/Remove panic. Thaw re-enables mutation.
type FactSet struct {
	byPred map[string]map[string]Fact    // pred → fact key → fact
	byOID  map[string]map[value.OID]Fact // class pred → oid → fact

	caches map[string]*predCache
	frozen bool

	// rebuilds counts from-scratch cache constructions; the incremental-
	// maintenance regression test asserts it stays flat across mutations.
	rebuilds int
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{
		byPred: map[string]map[string]Fact{},
		byOID:  map[string]map[value.OID]Fact{},
	}
}

// buildCache constructs the cache for a predicate from scratch, in strict
// key order.
func (s *FactSet) buildCache(pred string) *predCache {
	m := s.byPred[pred]
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	c := &predCache{
		list:      make([]Fact, len(keys)),
		keys:      keys,
		sortedLen: len(keys),
		index:     map[string]map[string][]Fact{},
		labels:    map[string]bool{},
	}
	for i, k := range keys {
		f := m[k]
		c.list[i] = f
		for _, fl := range f.Tuple.Fields() {
			c.labels[fl.Label] = true
		}
	}
	if s.caches == nil {
		s.caches = map[string]*predCache{}
	}
	s.caches[pred] = c
	s.rebuilds++
	return c
}

// flushCache restores strict key order by merging the insertion-ordered
// tail into the sorted prefix (fresh backing arrays, so previously returned
// slices stay valid).
func (c *predCache) flushCache() {
	n := len(c.list)
	if c.sortedLen == n {
		return
	}
	tailF := append([]Fact{}, c.list[c.sortedLen:]...)
	tailK := append([]string{}, c.keys[c.sortedLen:]...)
	sort.Sort(&factsByKey{facts: tailF, keys: tailK})
	mergedF := make([]Fact, 0, n)
	mergedK := make([]string, 0, n)
	i, j := 0, 0
	for i < c.sortedLen && j < len(tailK) {
		if c.keys[i] <= tailK[j] {
			mergedF = append(mergedF, c.list[i])
			mergedK = append(mergedK, c.keys[i])
			i++
		} else {
			mergedF = append(mergedF, tailF[j])
			mergedK = append(mergedK, tailK[j])
			j++
		}
	}
	mergedF = append(append(mergedF, c.list[i:c.sortedLen]...), tailF[j:]...)
	mergedK = append(append(mergedK, c.keys[i:c.sortedLen]...), tailK[j:]...)
	c.list, c.keys, c.sortedLen = mergedF, mergedK, n
}

type factsByKey struct {
	facts []Fact
	keys  []string
}

func (a *factsByKey) Len() int           { return len(a.keys) }
func (a *factsByKey) Less(i, j int) bool { return a.keys[i] < a.keys[j] }
func (a *factsByKey) Swap(i, j int) {
	a.facts[i], a.facts[j] = a.facts[j], a.facts[i]
	a.keys[i], a.keys[j] = a.keys[j], a.keys[i]
}

// buildBucket constructs the component buckets of one label from the
// current list order.
func (c *predCache) buildBucket(label string) map[string][]Fact {
	idx := map[string][]Fact{}
	for _, f := range c.list {
		cv, found := f.Tuple.Get(label)
		if !found {
			cv = value.Null{}
		}
		k := cv.Key()
		idx[k] = append(idx[k], f)
	}
	c.index[label] = idx
	return idx
}

// cacheAdd maintains the cache for one inserted fact: O(1) list append plus
// one bucket append per already-built label index.
func (c *predCache) cacheAdd(f Fact, key string) {
	c.list = append(c.list, f)
	c.keys = append(c.keys, key)
	for label, idx := range c.index {
		cv, found := f.Tuple.Get(label)
		if !found {
			cv = value.Null{}
		}
		k := cv.Key()
		idx[k] = append(idx[k], f)
	}
	for _, fl := range f.Tuple.Fields() {
		c.labels[fl.Label] = true
	}
}

// cacheRemove maintains the cache for one removed fact (fresh slices so
// previously returned ones stay valid).
func (c *predCache) cacheRemove(f Fact, key string) {
	pos := -1
	for i, k := range c.keys {
		if k == key {
			pos = i
			break
		}
	}
	if pos < 0 {
		return
	}
	c.list = append(append([]Fact{}, c.list[:pos]...), c.list[pos+1:]...)
	c.keys = append(append([]string{}, c.keys[:pos]...), c.keys[pos+1:]...)
	if pos < c.sortedLen {
		c.sortedLen--
	}
	for label, idx := range c.index {
		cv, found := f.Tuple.Get(label)
		if !found {
			cv = value.Null{}
		}
		k := cv.Key()
		bucket := idx[k]
		for i := range bucket {
			if bucket[i].Pred == f.Pred && bucket[i].Key() == key {
				idx[k] = append(append([]Fact{}, bucket[:i]...), bucket[i+1:]...)
				break
			}
		}
	}
}

// Freeze pre-builds every predicate's cache and component buckets and marks
// the set read-only: subsequent Facts/FactsByComponent calls never mutate
// shared state, making the set safe for concurrent readers; Add and Remove
// panic until Thaw. Freezing an already frozen set is a no-op.
func (s *FactSet) Freeze() {
	if s.frozen {
		return
	}
	for pred := range s.byPred {
		c := s.caches[pred]
		if c == nil {
			c = s.buildCache(pred)
		}
		for label := range c.labels {
			if _, ok := c.index[label]; !ok {
				c.buildBucket(label)
			}
		}
	}
	s.frozen = true
}

// Thaw re-enables mutation after Freeze.
func (s *FactSet) Thaw() { s.frozen = false }

// Frozen reports whether the set is frozen.
func (s *FactSet) Frozen() bool { return s.frozen }

// FactsByComponent returns the facts of pred whose labelled component
// equals v, through the component hash index. The returned slice must not
// be mutated. On an unfrozen set the index is built on demand and bucket
// order follows fact key order; on a frozen set all buckets are pre-built
// and the lookup is read-only.
func (s *FactSet) FactsByComponent(pred, label string, v value.Value) []Fact {
	c := s.caches[pred]
	if c == nil {
		if s.frozen {
			return nil // a frozen set has caches for every stored predicate
		}
		c = s.buildCache(pred)
	}
	idx, ok := c.index[label]
	if !ok {
		if s.frozen {
			// The label occurs in no fact of pred (Freeze pre-builds every
			// occurring label), so every fact holds null for it.
			if v.Key() == nullKey {
				return c.list
			}
			return nil
		}
		c.flushCache() // keep bucket order = key order on unfrozen sets
		idx = c.buildBucket(label)
	}
	return idx[v.Key()]
}

// Add inserts a fact. For class facts an existing fact with the same oid is
// replaced (the newer o-value wins — the ⊕ bias); the method reports
// whether the set changed. Add panics on a frozen set.
func (s *FactSet) Add(f Fact) bool {
	if s.frozen {
		panic("engine: Add on frozen FactSet")
	}
	m := s.byPred[f.Pred]
	if m == nil {
		m = map[string]Fact{}
		s.byPred[f.Pred] = m
	}
	c := s.caches[f.Pred]
	if f.IsClass {
		om := s.byOID[f.Pred]
		if om == nil {
			om = map[value.OID]Fact{}
			s.byOID[f.Pred] = om
		}
		k := f.Key()
		if prev, ok := om[f.OID]; ok {
			pk := prev.Key()
			if pk == k {
				return false
			}
			delete(m, pk)
			if c != nil {
				c.cacheRemove(prev, pk)
			}
		}
		om[f.OID] = f
		m[k] = f
		if c != nil {
			c.cacheAdd(f, k)
		}
		return true
	}
	k := f.Key()
	if _, ok := m[k]; ok {
		return false
	}
	m[k] = f
	if c != nil {
		c.cacheAdd(f, k)
	}
	return true
}

// Remove deletes a fact by exact identity; it reports whether it was
// present. Remove panics on a frozen set.
func (s *FactSet) Remove(f Fact) bool {
	if s.frozen {
		panic("engine: Remove on frozen FactSet")
	}
	m := s.byPred[f.Pred]
	if m == nil {
		return false
	}
	k := f.Key()
	if _, ok := m[k]; !ok {
		return false
	}
	delete(m, k)
	if c := s.caches[f.Pred]; c != nil {
		c.cacheRemove(f, k)
	}
	if f.IsClass {
		if om := s.byOID[f.Pred]; om != nil {
			if cur, ok := om[f.OID]; ok && cur.Key() == k {
				delete(om, f.OID)
			}
		}
	}
	return true
}

// Has reports exact membership.
func (s *FactSet) Has(f Fact) bool {
	m := s.byPred[f.Pred]
	if m == nil {
		return false
	}
	_, ok := m[f.Key()]
	return ok
}

// HasOID reports whether the class predicate contains the oid, and returns
// its current o-value projection.
func (s *FactSet) HasOID(pred string, oid value.OID) (Fact, bool) {
	om := s.byOID[pred]
	if om == nil {
		return Fact{}, false
	}
	f, ok := om[oid]
	return f, ok
}

// Facts returns the facts of a predicate. On an unfrozen set the slice is
// in deterministic (key) order; on a frozen set it is the key-sorted prefix
// followed by post-build insertions in insertion order (still deterministic
// given the same mutation history — strict key order is restored on the
// first unfrozen call). The returned slice must not be mutated.
func (s *FactSet) Facts(pred string) []Fact {
	c := s.caches[pred]
	if c == nil {
		if s.frozen {
			return nil // a frozen set has caches for every stored predicate
		}
		c = s.buildCache(pred)
	}
	if !s.frozen {
		c.flushCache()
	}
	return c.list
}

// Size reports the number of facts for a predicate.
func (s *FactSet) Size(pred string) int { return len(s.byPred[pred]) }

// TotalSize reports the total number of facts.
func (s *FactSet) TotalSize() int {
	n := 0
	for _, m := range s.byPred {
		n += len(m)
	}
	return n
}

// Preds returns the predicates with at least one fact, sorted.
func (s *FactSet) Preds() []string {
	var out []string
	for p, m := range s.byPred {
		if len(m) > 0 {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy. The copy is unfrozen and starts without
// caches.
func (s *FactSet) Clone() *FactSet {
	n := NewFactSet()
	for p, m := range s.byPred {
		cp := make(map[string]Fact, len(m))
		for k, f := range m {
			cp[k] = f
		}
		n.byPred[p] = cp
	}
	for p, om := range s.byOID {
		cp := make(map[value.OID]Fact, len(om))
		for o, f := range om {
			cp[o] = f
		}
		n.byOID[p] = cp
	}
	return n
}

// Equal reports whether two sets contain exactly the same facts.
func (s *FactSet) Equal(o *FactSet) bool {
	if s.TotalSize() != o.TotalSize() {
		return false
	}
	for p, m := range s.byPred {
		om := o.byPred[p]
		for k := range m {
			if _, ok := om[k]; !ok {
				return false
			}
		}
	}
	return true
}

// Compose computes s ⊕ d (Appendix B): the union of the two sets, except
// that class facts of s whose oid also appears in d with a different
// o-value are replaced by d's fact. ⊕ is non-commutative; the receiver is
// the left operand. A fresh set is returned.
func (s *FactSet) Compose(d *FactSet) *FactSet {
	out := s.Clone()
	out.Merge(d)
	return out
}

// Merge is the in-place ⊕: it adds every fact of d into s (right bias for
// class facts) and reports whether s changed.
func (s *FactSet) Merge(d *FactSet) bool {
	changed := false
	for _, p := range d.Preds() {
		for _, f := range d.Facts(p) {
			if s.Add(f) {
				changed = true
			}
		}
	}
	return changed
}

// Minus returns s − d (exact-identity removal).
func (s *FactSet) Minus(d *FactSet) *FactSet {
	out := s.Clone()
	for _, p := range d.Preds() {
		for _, f := range d.Facts(p) {
			out.Remove(f)
		}
	}
	return out
}

// Intersect returns s ∩ d (exact identity).
func (s *FactSet) Intersect(d *FactSet) *FactSet {
	out := NewFactSet()
	for _, p := range s.Preds() {
		for _, f := range s.Facts(p) {
			if d.Has(f) {
				out.Add(f)
			}
		}
	}
	return out
}

// FromInstance converts an instance into a fact set: one class fact per
// class membership (o-value projected on the class's effective type) and
// one fact per association tuple.
func FromInstance(in *instance.Instance) (*FactSet, error) {
	s := in.Schema()
	fs := NewFactSet()
	for _, c := range s.NamesOf(types.DeclClass) {
		eff, err := s.EffectiveTuple(c)
		if err != nil {
			return nil, err
		}
		for _, oid := range in.Objects(c) {
			v, _ := in.OValue(oid)
			fs.Add(Fact{Pred: c, IsClass: true, OID: oid, Tuple: instance.Project(v, eff)})
		}
	}
	for _, a := range s.NamesOf(types.DeclAssociation) {
		for _, t := range in.Tuples(a) {
			fs.Add(Fact{Pred: a, Tuple: t})
		}
	}
	for _, fn := range s.NamesOf(types.DeclFunction) {
		for _, t := range in.Tuples(functionStore(fn)) {
			fs.Add(Fact{Pred: fn, Tuple: t})
		}
	}
	return fs, nil
}

// functionStore names the hidden association backing a data function.
func functionStore(fn string) string { return "$fn$" + fn }

// ToInstance converts a fact set into an instance over the schema,
// reconciling class facts across a generalization hierarchy (an oid's
// o-value is the ⊕ of its projections; later components win, but since all
// class facts of one oid stem from one o-value they agree).
func ToInstance(fs *FactSet, schema *types.Schema, oidCounter int64) *instance.Instance {
	in := instance.New(schema)
	in.SetOIDCounter(oidCounter)
	for _, p := range fs.Preds() {
		if schema.IsClass(p) {
			for _, f := range fs.Facts(p) {
				in.AddToClass(p, f.OID, f.Tuple)
			}
			continue
		}
		if schema.IsFunction(p) {
			for _, f := range fs.Facts(p) {
				in.InsertTuple(functionStore(p), f.Tuple)
			}
			continue
		}
		for _, f := range fs.Facts(p) {
			in.InsertTuple(p, f.Tuple)
		}
	}
	return in
}

// MaxOID returns the largest oid mentioned by any class fact.
func (s *FactSet) MaxOID() value.OID {
	var max value.OID
	for _, om := range s.byOID {
		for o := range om {
			if o > max {
				max = o
			}
		}
	}
	return max
}
