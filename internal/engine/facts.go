// Package engine implements the LOGRES rule engine: compile-time analysis
// (typing, safety, oid-unification legality, stratification), the
// inflationary deterministic semantics of Appendix B (valuation domains,
// invented oids, Δ+/Δ−, the non-commutative composition ⊕ and the one-step
// inflationary operator), a semi-naive optimization for positive strata,
// the built-in predicates of §3.1, and the integrity constraints generated
// from type equations.
package engine

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"logres/internal/instance"
	"logres/internal/types"
	"logres/internal/value"
)

// Fact is one ground fact. Class facts carry the object's oid and the
// projection of its o-value; association and data-function facts carry a
// tuple. Data-function facts for F : T → {T'} are stored under the function
// name with tuple (arg: a, member: m); nullary functions omit arg.
type Fact struct {
	Pred    string
	IsClass bool
	OID     value.OID // class facts only
	Tuple   value.Tuple
}

// FuncArgLabel and FuncMemberLabel are the component labels of data-
// function facts.
const (
	FuncArgLabel    = "arg"
	FuncMemberLabel = "member"
)

// Key returns the identity of the fact (pred + oid + tuple).
func (f Fact) Key() string {
	var b strings.Builder
	b.WriteString(f.Pred)
	b.WriteByte('/')
	if f.IsClass {
		b.WriteString(f.OID.String())
		b.WriteByte('/')
	}
	b.WriteString(f.Tuple.Key())
	return b.String()
}

func (f Fact) String() string {
	if f.IsClass {
		return f.Pred + "(" + f.OID.String() + ", " + f.Tuple.String() + ")"
	}
	return f.Pred + f.Tuple.String()
}

var nullKey = value.Null{}.Key()

// predCache is the per-predicate access structure: the predicate's facts as
// a slice (a key-sorted prefix of length sortedLen followed by facts in
// insertion order) plus hash buckets per component label. Both are
// maintained incrementally on Add/Remove instead of being discarded and
// rebuilt from scratch (the pre-PR behaviour made every semi-naive round
// pay an O(n log n) re-sort and an O(n) index rebuild of the recursive
// predicate).
//
// A predCache may be shared copy-on-write between a FactSet and its clones:
// refs counts the owners beyond the first, and every mutation goes through
// cow() so a shared cache is never written through.
type predCache struct {
	list      []Fact
	keys      []string                     // keys[i] == list[i].Key(), kept to avoid re-deriving
	sortedLen int                          // list[:sortedLen] is in strictly ascending key order
	index     map[string]map[string][]Fact // label → value key → facts
	labels    map[string]bool              // labels occurring in any fact

	refs int32 // owners beyond the first (accessed atomically)
}

// share registers one more owner (used by Clone).
func (c *predCache) share() { atomic.AddInt32(&c.refs, 1) }

// cow returns a cache safe to mutate: the receiver when it has a single
// owner, otherwise a private copy (the bucket index is dropped and rebuilt
// lazily — an O(n) build per queried label, never a re-sort). The caller
// must store the returned cache back in place of the receiver.
func (c *predCache) cow() *predCache {
	if atomic.LoadInt32(&c.refs) == 0 {
		return c
	}
	atomic.AddInt32(&c.refs, -1)
	n := &predCache{
		list:      append([]Fact{}, c.list...),
		keys:      append([]string{}, c.keys...),
		sortedLen: c.sortedLen,
		index:     map[string]map[string][]Fact{},
		labels:    make(map[string]bool, len(c.labels)),
	}
	for l := range c.labels {
		n.labels[l] = true
	}
	return n
}

// dropCache releases one ownership reference when a cache is discarded
// (merged-view invalidation before a sharded merge).
func dropCache(c *predCache) {
	if c != nil && atomic.LoadInt32(&c.refs) > 0 {
		atomic.AddInt32(&c.refs, -1)
	}
}

// factShard is one partition of a sharded FactSet: the facts whose keys
// (oids, for class facts) hash to the shard, plus the shard's incrementally
// maintained caches. Shard caches exist only on multi-shard sets and only
// once a parallel operation has built them.
type factShard struct {
	byPred map[string]map[string]Fact    // pred → fact key → fact
	byOID  map[string]map[value.OID]Fact // class pred → oid → fact
	caches map[string]*predCache
}

// FactSet is a set of ground facts indexed by predicate. Class predicates
// additionally index facts by oid so that the right-biased composition ⊕
// can resolve o-value conflicts.
//
// Storage is partitioned into shards (NewFactSetShards): association and
// function facts are routed by a hash of their key, class facts by a hash
// of their oid — so the ⊕ replacement of an object's o-value (remove old
// key, insert new key, same oid) always stays within one shard, which lets
// MergeOrdered apply worker deltas with one goroutine per shard. Reads go
// through a merged per-predicate view that is maintained incrementally by
// single-writer mutations and reassembled by a sort-free k-way merge of the
// shard caches after a parallel merge. NewFactSet builds a single-shard set
// whose behaviour (and cost) matches the unsharded original exactly.
//
// A FactSet can be frozen (Freeze): all per-predicate views and component
// buckets are pre-built, reads never mutate shared state (safe for
// concurrent readers), and Add/Remove panic. Thaw re-enables mutation.
type FactSet struct {
	shards []factShard
	merged map[string]*predCache // pred → merged read view (absent = stale)
	frozen bool

	// rebuilds counts from-scratch (sorting) constructions of merged views;
	// the incremental-maintenance regression test asserts it stays flat
	// across mutations, clones, and parallel merges.
	rebuilds int
}

// NewFactSet returns an empty single-shard fact set.
func NewFactSet() *FactSet { return NewFactSetShards(1) }

// NewFactSetShards returns an empty fact set partitioned into n shards
// (values < 1 mean one shard).
func NewFactSetShards(n int) *FactSet {
	if n < 1 {
		n = 1
	}
	s := &FactSet{
		shards: make([]factShard, n),
		merged: map[string]*predCache{},
	}
	for i := range s.shards {
		s.shards[i].byPred = map[string]map[string]Fact{}
		s.shards[i].byOID = map[string]map[value.OID]Fact{}
	}
	return s
}

// ShardCount reports the number of shards.
func (s *FactSet) ShardCount() int { return len(s.shards) }

func fnv1aString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// oidShardIn routes a class fact by its oid so that o-value replacement
// stays within one shard.
func oidShardIn(o value.OID, n int) int {
	h := uint64(o)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(n))
}

// shardOf routes a fact (with its precomputed key) to its shard.
func (s *FactSet) shardOf(f Fact, key string) int {
	n := len(s.shards)
	if n == 1 {
		return 0
	}
	if f.IsClass {
		return oidShardIn(f.OID, n)
	}
	return int(fnv1aString(key) % uint32(n))
}

// --- merged view construction --------------------------------------------

// buildMergedView assembles the merged read view of one predicate without
// storing it. When every non-empty shard has an up-to-date shard cache the
// view is a sort-free k-way merge of the shard lists (rebuilt == false);
// otherwise it is built from scratch in strict key order.
func (s *FactSet) buildMergedView(pred string) (c *predCache, rebuilt bool) {
	if len(s.shards) > 1 {
		var parts []*predCache
		ok := true
		for si := range s.shards {
			sh := &s.shards[si]
			if len(sh.byPred[pred]) == 0 {
				continue
			}
			if sh.caches[pred] == nil {
				ok = false
				break
			}
			parts = append(parts, s.flushedShardCache(si, pred))
		}
		if ok {
			return mergeSortedCaches(parts), false
		}
	}
	total := 0
	for si := range s.shards {
		total += len(s.shards[si].byPred[pred])
	}
	facts := make([]Fact, 0, total)
	keys := make([]string, 0, total)
	for si := range s.shards {
		for k, f := range s.shards[si].byPred[pred] {
			keys = append(keys, k)
			facts = append(facts, f)
		}
	}
	sort.Sort(&factsByKey{facts: facts, keys: keys})
	c = &predCache{
		list:      facts,
		keys:      keys,
		sortedLen: len(keys),
		index:     map[string]map[string][]Fact{},
		labels:    map[string]bool{},
	}
	for _, f := range facts {
		for _, fl := range f.Tuple.Fields() {
			c.labels[fl.Label] = true
		}
	}
	return c, true
}

// mergeSortedCaches k-way merges fully sorted shard caches (disjoint key
// sets) into one merged view in strict key order — no sorting.
func mergeSortedCaches(parts []*predCache) *predCache {
	total := 0
	for _, p := range parts {
		total += len(p.list)
	}
	c := &predCache{
		list:   make([]Fact, 0, total),
		keys:   make([]string, 0, total),
		index:  map[string]map[string][]Fact{},
		labels: map[string]bool{},
	}
	pos := make([]int, len(parts))
	for {
		best := -1
		for i, p := range parts {
			if pos[i] >= len(p.keys) {
				continue
			}
			if best < 0 || p.keys[pos[i]] < parts[best].keys[pos[best]] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		c.list = append(c.list, parts[best].list[pos[best]])
		c.keys = append(c.keys, parts[best].keys[pos[best]])
		pos[best]++
	}
	c.sortedLen = len(c.keys)
	for _, p := range parts {
		for l := range p.labels {
			c.labels[l] = true
		}
	}
	return c
}

// mergedCache returns the stored merged view of pred, assembling it when
// absent (from-scratch assemblies count as rebuilds).
func (s *FactSet) mergedCache(pred string) *predCache {
	c := s.merged[pred]
	if c == nil {
		var rebuilt bool
		c, rebuilt = s.buildMergedView(pred)
		s.merged[pred] = c
		if rebuilt {
			s.rebuilds++
		}
	}
	return c
}

// mutableMerged returns the merged view of pred ready for in-place cache
// maintenance (copy-on-write when shared), or nil when no view is stored.
func (s *FactSet) mutableMerged(pred string) *predCache {
	c := s.merged[pred]
	if c == nil {
		return nil
	}
	if cc := c.cow(); cc != c {
		s.merged[pred] = cc
		c = cc
	}
	return c
}

// flushedMerged restores strict key order on the stored merged view
// (copy-on-write when shared) and returns it.
func (s *FactSet) flushedMerged(pred string, c *predCache) *predCache {
	if c.sortedLen == len(c.list) {
		return c
	}
	if cc := c.cow(); cc != c {
		s.merged[pred] = cc
		c = cc
	}
	c.flushCache()
	return c
}

// --- shard cache maintenance ---------------------------------------------

// ensureShardCache builds (once) and returns the shard-local cache of pred
// on shard si. Safe to call from the shard's own merge goroutine: it only
// touches shard-local state.
func (s *FactSet) ensureShardCache(si int, pred string) *predCache {
	sh := &s.shards[si]
	if c := sh.caches[pred]; c != nil {
		return c
	}
	m := sh.byPred[pred]
	facts := make([]Fact, 0, len(m))
	keys := make([]string, 0, len(m))
	for k, f := range m {
		keys = append(keys, k)
		facts = append(facts, f)
	}
	sort.Sort(&factsByKey{facts: facts, keys: keys})
	c := &predCache{
		list:      facts,
		keys:      keys,
		sortedLen: len(keys),
		index:     map[string]map[string][]Fact{},
		labels:    map[string]bool{},
	}
	for _, f := range facts {
		for _, fl := range f.Tuple.Fields() {
			c.labels[fl.Label] = true
		}
	}
	if sh.caches == nil {
		sh.caches = map[string]*predCache{}
	}
	sh.caches[pred] = c
	return c
}

// mutableShardCache returns shard si's cache of pred ready for mutation
// (copy-on-write when shared), or nil when the shard has no cache for it.
func (s *FactSet) mutableShardCache(si int, pred string) *predCache {
	sh := &s.shards[si]
	c := sh.caches[pred]
	if c == nil {
		return nil
	}
	if cc := c.cow(); cc != c {
		sh.caches[pred] = cc
		c = cc
	}
	return c
}

// flushedShardCache restores key order on shard si's cache of pred.
func (s *FactSet) flushedShardCache(si int, pred string) *predCache {
	sh := &s.shards[si]
	c := sh.caches[pred]
	if c == nil {
		return nil
	}
	if c.sortedLen != len(c.list) {
		if cc := c.cow(); cc != c {
			sh.caches[pred] = cc
			c = cc
		}
		c.flushCache()
	}
	return c
}

// flushCache restores strict key order by merging the insertion-ordered
// tail into the sorted prefix (fresh backing arrays, so previously returned
// slices stay valid).
func (c *predCache) flushCache() {
	n := len(c.list)
	if c.sortedLen == n {
		return
	}
	tailF := append([]Fact{}, c.list[c.sortedLen:]...)
	tailK := append([]string{}, c.keys[c.sortedLen:]...)
	sort.Sort(&factsByKey{facts: tailF, keys: tailK})
	mergedF := make([]Fact, 0, n)
	mergedK := make([]string, 0, n)
	i, j := 0, 0
	for i < c.sortedLen && j < len(tailK) {
		if c.keys[i] <= tailK[j] {
			mergedF = append(mergedF, c.list[i])
			mergedK = append(mergedK, c.keys[i])
			i++
		} else {
			mergedF = append(mergedF, tailF[j])
			mergedK = append(mergedK, tailK[j])
			j++
		}
	}
	mergedF = append(append(mergedF, c.list[i:c.sortedLen]...), tailF[j:]...)
	mergedK = append(append(mergedK, c.keys[i:c.sortedLen]...), tailK[j:]...)
	c.list, c.keys, c.sortedLen = mergedF, mergedK, n
}

type factsByKey struct {
	facts []Fact
	keys  []string
}

func (a *factsByKey) Len() int           { return len(a.keys) }
func (a *factsByKey) Less(i, j int) bool { return a.keys[i] < a.keys[j] }
func (a *factsByKey) Swap(i, j int) {
	a.facts[i], a.facts[j] = a.facts[j], a.facts[i]
	a.keys[i], a.keys[j] = a.keys[j], a.keys[i]
}

// buildBucket constructs the component buckets of one label from the
// current list order.
func (c *predCache) buildBucket(label string) map[string][]Fact {
	idx := map[string][]Fact{}
	for _, f := range c.list {
		cv, found := f.Tuple.Get(label)
		if !found {
			cv = value.Null{}
		}
		k := cv.Key()
		idx[k] = append(idx[k], f)
	}
	c.index[label] = idx
	return idx
}

// cacheAdd maintains the cache for one inserted fact: O(1) list append plus
// one bucket append per already-built label index.
func (c *predCache) cacheAdd(f Fact, key string) {
	c.list = append(c.list, f)
	c.keys = append(c.keys, key)
	for label, idx := range c.index {
		cv, found := f.Tuple.Get(label)
		if !found {
			cv = value.Null{}
		}
		k := cv.Key()
		idx[k] = append(idx[k], f)
	}
	for _, fl := range f.Tuple.Fields() {
		c.labels[fl.Label] = true
	}
}

// cacheRemove maintains the cache for one removed fact (fresh slices so
// previously returned ones stay valid).
func (c *predCache) cacheRemove(f Fact, key string) {
	pos := -1
	for i, k := range c.keys {
		if k == key {
			pos = i
			break
		}
	}
	if pos < 0 {
		return
	}
	c.list = append(append([]Fact{}, c.list[:pos]...), c.list[pos+1:]...)
	c.keys = append(append([]string{}, c.keys[:pos]...), c.keys[pos+1:]...)
	if pos < c.sortedLen {
		c.sortedLen--
	}
	for label, idx := range c.index {
		cv, found := f.Tuple.Get(label)
		if !found {
			cv = value.Null{}
		}
		k := cv.Key()
		bucket := idx[k]
		for i := range bucket {
			if bucket[i].Pred == f.Pred && bucket[i].Key() == key {
				idx[k] = append(append([]Fact{}, bucket[:i]...), bucket[i+1:]...)
				break
			}
		}
	}
}

// --- freeze ---------------------------------------------------------------

// Freeze pre-builds every predicate's merged view and component buckets and
// marks the set read-only: subsequent Facts/FactsByComponent calls never
// mutate shared state, making the set safe for concurrent readers; Add and
// Remove panic until Thaw. Freezing an already frozen set is a no-op.
func (s *FactSet) Freeze() { s.freeze(1) }

// FreezeParallel is Freeze with the per-shard cache builds and per-
// predicate view/bucket builds fanned across up to workers goroutines.
func (s *FactSet) FreezeParallel(workers int) { s.freeze(workers) }

func (s *FactSet) freeze(workers int) {
	if s.frozen {
		return
	}
	seen := map[string]bool{}
	var preds []string
	for si := range s.shards {
		for p := range s.shards[si].byPred {
			if !seen[p] {
				seen[p] = true
				preds = append(preds, p)
			}
		}
	}
	sort.Strings(preds)

	// Phase A (multi-shard only): for every predicate whose merged view is
	// missing — and must therefore be reassembled in Phase B — build and
	// flush the shard caches so the view assembles by k-way merge instead
	// of sorting. Phase B runs per predicate, so it must not flush shard
	// caches itself (the per-shard cache maps would see concurrent
	// copy-on-write stores); one Phase A goroutine owns one whole shard, so
	// all its map writes are disjoint. Predicates with a live incrementally
	// maintained view skip this entirely.
	if len(s.shards) > 1 {
		need := map[string]bool{}
		for _, p := range preds {
			if s.merged[p] == nil {
				need[p] = true
			}
		}
		if len(need) > 0 {
			runIndexed(len(s.shards), workers, func(si int) {
				for p := range s.shards[si].byPred {
					if need[p] {
						s.ensureShardCache(si, p)
						s.flushedShardCache(si, p)
					}
				}
			})
		}
	}

	// Phase B: assemble each predicate's frozen view (flushed, all occurring
	// labels bucketed) without touching shared maps; publish serially.
	type frozenView struct {
		c       *predCache
		rebuilt bool
	}
	views := make([]frozenView, len(preds))
	runIndexed(len(preds), workers, func(i int) {
		views[i].c, views[i].rebuilt = s.prepareFrozen(preds[i])
	})
	for i, p := range preds {
		s.merged[p] = views[i].c
		if views[i].rebuilt {
			s.rebuilds++
		}
	}
	s.frozen = true
}

// prepareFrozen returns pred's fully built frozen view. It never writes to
// s.merged or shard cache maps (safe to run per-predicate in parallel);
// shared caches are copied on write before any in-place normalization.
func (s *FactSet) prepareFrozen(pred string) (*predCache, bool) {
	c := s.merged[pred]
	rebuilt := false
	if c == nil {
		c, rebuilt = s.buildMergedView(pred)
	}
	if c.sortedLen != len(c.list) {
		if cc := c.cow(); cc != c {
			c = cc
		}
		c.flushCache()
	}
	missing := false
	for label := range c.labels {
		if _, ok := c.index[label]; !ok {
			missing = true
			break
		}
	}
	if missing {
		if cc := c.cow(); cc != c {
			c = cc
		}
		for label := range c.labels {
			if _, ok := c.index[label]; !ok {
				c.buildBucket(label)
			}
		}
	}
	return c, rebuilt
}

// runIndexed applies fn to 0..n-1, on up to workers goroutines.
func runIndexed(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1)
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
}

// Thaw re-enables mutation after Freeze.
func (s *FactSet) Thaw() { s.frozen = false }

// Frozen reports whether the set is frozen.
func (s *FactSet) Frozen() bool { return s.frozen }

// --- reads ----------------------------------------------------------------

// FactsByComponent returns the facts of pred whose labelled component
// equals v, through the component hash index. The returned slice must not
// be mutated. On an unfrozen set the index is built on demand and bucket
// order follows fact key order; on a frozen set all buckets are pre-built
// and the lookup is read-only.
func (s *FactSet) FactsByComponent(pred, label string, v value.Value) []Fact {
	c := s.merged[pred]
	if c == nil {
		if s.frozen {
			return nil // a frozen set has views for every stored predicate
		}
		c = s.mergedCache(pred)
	}
	idx, ok := c.index[label]
	if !ok {
		if s.frozen {
			// The label occurs in no fact of pred (Freeze pre-builds every
			// occurring label), so every fact holds null for it.
			if v.Key() == nullKey {
				return c.list
			}
			return nil
		}
		c = s.flushedMerged(pred, c) // keep bucket order = key order
		if cc := c.cow(); cc != c {
			s.merged[pred] = cc
			c = cc
		}
		idx = c.buildBucket(label)
	}
	return idx[v.Key()]
}

// Facts returns the facts of a predicate. On an unfrozen set the slice is
// in deterministic (key) order; on a frozen set it is the key-sorted prefix
// followed by post-build insertions in insertion order (still deterministic
// given the same mutation history — strict key order is restored on the
// first unfrozen call). The returned slice must not be mutated.
func (s *FactSet) Facts(pred string) []Fact {
	c := s.merged[pred]
	if c == nil {
		if s.frozen {
			return nil // a frozen set has views for every stored predicate
		}
		c = s.mergedCache(pred)
	}
	if !s.frozen {
		c = s.flushedMerged(pred, c)
	}
	return c.list
}

// Has reports exact membership.
func (s *FactSet) Has(f Fact) bool {
	k := f.Key()
	m := s.shards[s.shardOf(f, k)].byPred[f.Pred]
	if m == nil {
		return false
	}
	_, ok := m[k]
	return ok
}

// HasOID reports whether the class predicate contains the oid, and returns
// its current o-value projection.
func (s *FactSet) HasOID(pred string, oid value.OID) (Fact, bool) {
	si := 0
	if len(s.shards) > 1 {
		si = oidShardIn(oid, len(s.shards))
	}
	om := s.shards[si].byOID[pred]
	if om == nil {
		return Fact{}, false
	}
	f, ok := om[oid]
	return f, ok
}

// Size reports the number of facts for a predicate.
func (s *FactSet) Size(pred string) int {
	n := 0
	for si := range s.shards {
		n += len(s.shards[si].byPred[pred])
	}
	return n
}

// TotalSize reports the total number of facts.
func (s *FactSet) TotalSize() int {
	n := 0
	for si := range s.shards {
		for _, m := range s.shards[si].byPred {
			n += len(m)
		}
	}
	return n
}

// Preds returns the predicates with at least one fact, sorted.
func (s *FactSet) Preds() []string {
	var out []string
	if len(s.shards) == 1 {
		for p, m := range s.shards[0].byPred {
			if len(m) > 0 {
				out = append(out, p)
			}
		}
	} else {
		counts := map[string]int{}
		for si := range s.shards {
			for p, m := range s.shards[si].byPred {
				counts[p] += len(m)
			}
		}
		for p, n := range counts {
			if n > 0 {
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}

// MaxOID returns the largest oid mentioned by any class fact.
func (s *FactSet) MaxOID() value.OID {
	var max value.OID
	for si := range s.shards {
		for _, om := range s.shards[si].byOID {
			for o := range om {
				if o > max {
					max = o
				}
			}
		}
	}
	return max
}

// --- mutation -------------------------------------------------------------

// Add inserts a fact. For class facts an existing fact with the same oid is
// replaced (the newer o-value wins — the ⊕ bias); the method reports
// whether the set changed. Add panics on a frozen set.
func (s *FactSet) Add(f Fact) bool {
	if s.frozen {
		panic("engine: Add on frozen FactSet")
	}
	k := f.Key()
	return s.addShard(s.shardOf(f, k), f, k, true)
}

// addShard inserts f (with precomputed key k) into shard si, maintaining
// the shard cache when present. When global is true the merged view cache
// is maintained as well; per-shard merge goroutines pass false (the merged
// map is shared across shards — MergeOrdered maintains or invalidates the
// touched views in its serial prologue/epilogue instead).
func (s *FactSet) addShard(si int, f Fact, k string, global bool) bool {
	sh := &s.shards[si]
	m := sh.byPred[f.Pred]
	if m == nil {
		m = map[string]Fact{}
		sh.byPred[f.Pred] = m
	}
	if f.IsClass {
		om := sh.byOID[f.Pred]
		if om == nil {
			om = map[value.OID]Fact{}
			sh.byOID[f.Pred] = om
		}
		if prev, ok := om[f.OID]; ok {
			pk := prev.Key()
			if pk == k {
				return false
			}
			delete(m, pk)
			if global {
				if c := s.mutableMerged(f.Pred); c != nil {
					c.cacheRemove(prev, pk)
				}
			}
			if c := s.mutableShardCache(si, f.Pred); c != nil {
				c.cacheRemove(prev, pk)
			}
		}
		om[f.OID] = f
		m[k] = f
		if global {
			if c := s.mutableMerged(f.Pred); c != nil {
				c.cacheAdd(f, k)
			}
		}
		if c := s.mutableShardCache(si, f.Pred); c != nil {
			c.cacheAdd(f, k)
		}
		return true
	}
	if _, ok := m[k]; ok {
		return false
	}
	m[k] = f
	if global {
		if c := s.mutableMerged(f.Pred); c != nil {
			c.cacheAdd(f, k)
		}
	}
	if c := s.mutableShardCache(si, f.Pred); c != nil {
		c.cacheAdd(f, k)
	}
	return true
}

// Remove deletes a fact by exact identity; it reports whether it was
// present. Remove panics on a frozen set.
func (s *FactSet) Remove(f Fact) bool {
	if s.frozen {
		panic("engine: Remove on frozen FactSet")
	}
	k := f.Key()
	si := s.shardOf(f, k)
	sh := &s.shards[si]
	m := sh.byPred[f.Pred]
	if m == nil {
		return false
	}
	if _, ok := m[k]; !ok {
		return false
	}
	delete(m, k)
	if c := s.mutableMerged(f.Pred); c != nil {
		c.cacheRemove(f, k)
	}
	if c := s.mutableShardCache(si, f.Pred); c != nil {
		c.cacheRemove(f, k)
	}
	if f.IsClass {
		if om := sh.byOID[f.Pred]; om != nil {
			if cur, ok := om[f.OID]; ok && cur.Key() == k {
				delete(om, f.OID)
			}
		}
	}
	return true
}

// --- parallel ordered merge ----------------------------------------------

// MergeStats reports how an ordered merge ran: the shard fan-out and the
// wall-clock each shard goroutine spent applying its partition of the
// deltas (empty for the serial single-shard path).
type MergeStats struct {
	Shards         int
	ShardDurations []time.Duration
	Changed        bool
}

// MergeOrdered applies the deltas to s in order — equivalent to calling
// s.Merge(d) for each delta left to right — with one goroutine per shard
// when s and all deltas share a multi-shard layout. Each goroutine walks
// the deltas in the given order restricted to its shard; because facts are
// routed by key hash (oid hash for class facts, so ⊕ replacement is shard-
// local) the per-shard application order matches the serial order
// restricted to that shard, and within one delta keys (and oids) are
// distinct, so the result is bit-identical to the serial merge for any
// shard count. Shard caches are built on first use and maintained
// incrementally. Merged views are also maintained incrementally when the
// deltas carry no class facts (the semi-naive case); deltas with class
// facts invalidate the touched views, which reassemble sort-free from the
// shard caches on the next read or freeze. MergeOrdered panics on a
// frozen set.
func (s *FactSet) MergeOrdered(deltas []*FactSet) MergeStats {
	if s.frozen {
		panic("engine: MergeOrdered on frozen FactSet")
	}
	n := len(s.shards)
	sameLayout := n > 1
	for _, d := range deltas {
		if len(d.shards) != n {
			sameLayout = false
			break
		}
	}
	if !sameLayout {
		st := MergeStats{Shards: 1}
		for _, d := range deltas {
			if s.Merge(d) {
				st.Changed = true
			}
		}
		return st
	}
	touched := map[string]bool{}
	hasClass := false
	for _, d := range deltas {
		for si := range d.shards {
			for p, m := range d.shards[si].byPred {
				if len(m) > 0 {
					touched[p] = true
				}
			}
			for _, om := range d.shards[si].byOID {
				if len(om) > 0 {
					hasClass = true
				}
			}
		}
	}
	st := MergeStats{Shards: n}
	if len(touched) == 0 {
		return st
	}
	// Class facts can replace an existing fact with the same oid (⊕), which
	// would need ordered removals from the shared merged views; drop the
	// touched views and let the next read reassemble them from the shard
	// caches. Pure association deltas — every semi-naive round — keep the
	// merged views live instead: each shard goroutine records what it
	// actually inserted and a serial epilogue appends those facts in the
	// exact serial merge order, so view and bucket maintenance stays
	// O(|delta|) per round rather than O(|set|).
	incremental := !hasClass
	var added [][]map[string]bool
	if incremental {
		added = make([][]map[string]bool, len(deltas))
		for di := range added {
			added[di] = make([]map[string]bool, n)
		}
	} else {
		for p := range touched {
			if c := s.merged[p]; c != nil {
				dropCache(c)
				delete(s.merged, p)
			}
		}
	}
	st.ShardDurations = make([]time.Duration, n)
	changed := make([]bool, n)
	var wg sync.WaitGroup
	for si := 0; si < n; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			start := time.Now()
			for p := range touched {
				s.ensureShardCache(si, p)
			}
			for di, d := range deltas {
				for _, m := range d.shards[si].byPred {
					for k, f := range m {
						if s.addShard(si, f, k, false) {
							changed[si] = true
							if incremental {
								am := added[di][si]
								if am == nil {
									am = map[string]bool{}
									added[di][si] = am
								}
								am[k] = true
							}
						}
					}
				}
			}
			st.ShardDurations[si] = time.Since(start)
		}(si)
	}
	wg.Wait()
	if incremental {
		// Append the inserted facts to the live merged views in the order a
		// serial s.Merge(d) sequence would have: delta order, predicates
		// sorted, keys sorted within each predicate. Views that were never
		// built stay absent and assemble lazily from the shard caches.
		for di, d := range deltas {
			for _, p := range d.Preds() {
				c := s.mutableMerged(p)
				if c == nil {
					continue
				}
				for _, f := range d.Facts(p) {
					k := f.Key()
					if am := added[di][s.shardOf(f, k)]; am != nil && am[k] {
						c.cacheAdd(f, k)
					}
				}
			}
		}
	}
	for _, c := range changed {
		if c {
			st.Changed = true
		}
	}
	return st
}

// --- set operations -------------------------------------------------------

// Clone returns a deep copy with the same shard layout. The copy is
// unfrozen; the per-predicate views and shard caches are carried over and
// shared copy-on-write, so reads after Compose/Minus keep the incremental
// caches instead of paying a from-scratch O(n log n) rebuild per predicate.
func (s *FactSet) Clone() *FactSet {
	n := NewFactSetShards(len(s.shards))
	for si := range s.shards {
		sh, dst := &s.shards[si], &n.shards[si]
		for p, m := range sh.byPred {
			cp := make(map[string]Fact, len(m))
			for k, f := range m {
				cp[k] = f
			}
			dst.byPred[p] = cp
		}
		for p, om := range sh.byOID {
			cp := make(map[value.OID]Fact, len(om))
			for o, f := range om {
				cp[o] = f
			}
			dst.byOID[p] = cp
		}
		if len(sh.caches) > 0 {
			dst.caches = make(map[string]*predCache, len(sh.caches))
			for p, c := range sh.caches {
				c.share()
				dst.caches[p] = c
			}
		}
	}
	for p, c := range s.merged {
		c.share()
		n.merged[p] = c
	}
	return n
}

// CloneShards returns a deep copy redistributed over n shards. When n
// matches the receiver's layout this is Clone; otherwise every fact is
// re-routed by hash and caches are rebuilt lazily.
func (s *FactSet) CloneShards(n int) *FactSet {
	if n < 1 {
		n = 1
	}
	if n == len(s.shards) {
		return s.Clone()
	}
	out := NewFactSetShards(n)
	for si := range s.shards {
		for p, m := range s.shards[si].byPred {
			for k, f := range m {
				dst := &out.shards[out.shardOf(f, k)]
				dm := dst.byPred[p]
				if dm == nil {
					dm = map[string]Fact{}
					dst.byPred[p] = dm
				}
				dm[k] = f
				if f.IsClass {
					om := dst.byOID[p]
					if om == nil {
						om = map[value.OID]Fact{}
						dst.byOID[p] = om
					}
					om[f.OID] = f
				}
			}
		}
	}
	return out
}

// Equal reports whether two sets contain exactly the same facts (the shard
// layouts need not match).
func (s *FactSet) Equal(o *FactSet) bool {
	if s.TotalSize() != o.TotalSize() {
		return false
	}
	for si := range s.shards {
		for p, m := range s.shards[si].byPred {
			for k, f := range m {
				om := o.shards[o.shardOf(f, k)].byPred[p]
				if om == nil {
					return false
				}
				if _, ok := om[k]; !ok {
					return false
				}
			}
		}
	}
	return true
}

// Compose computes s ⊕ d (Appendix B): the union of the two sets, except
// that class facts of s whose oid also appears in d with a different
// o-value are replaced by d's fact. ⊕ is non-commutative; the receiver is
// the left operand. A fresh set is returned.
func (s *FactSet) Compose(d *FactSet) *FactSet {
	out := s.Clone()
	out.Merge(d)
	return out
}

// Merge is the in-place ⊕: it adds every fact of d into s (right bias for
// class facts) and reports whether s changed.
func (s *FactSet) Merge(d *FactSet) bool {
	changed := false
	for _, p := range d.Preds() {
		for _, f := range d.Facts(p) {
			if s.Add(f) {
				changed = true
			}
		}
	}
	return changed
}

// Minus returns s − d (exact-identity removal).
func (s *FactSet) Minus(d *FactSet) *FactSet {
	out := s.Clone()
	for _, p := range d.Preds() {
		for _, f := range d.Facts(p) {
			out.Remove(f)
		}
	}
	return out
}

// Intersect returns s ∩ d (exact identity).
func (s *FactSet) Intersect(d *FactSet) *FactSet {
	out := NewFactSet()
	for _, p := range s.Preds() {
		for _, f := range s.Facts(p) {
			if d.Has(f) {
				out.Add(f)
			}
		}
	}
	return out
}

// FromInstance converts an instance into a fact set: one class fact per
// class membership (o-value projected on the class's effective type) and
// one fact per association tuple.
func FromInstance(in *instance.Instance) (*FactSet, error) {
	s := in.Schema()
	fs := NewFactSet()
	for _, c := range s.NamesOf(types.DeclClass) {
		eff, err := s.EffectiveTuple(c)
		if err != nil {
			return nil, err
		}
		for _, oid := range in.Objects(c) {
			v, _ := in.OValue(oid)
			fs.Add(Fact{Pred: c, IsClass: true, OID: oid, Tuple: instance.Project(v, eff)})
		}
	}
	for _, a := range s.NamesOf(types.DeclAssociation) {
		for _, t := range in.Tuples(a) {
			fs.Add(Fact{Pred: a, Tuple: t})
		}
	}
	for _, fn := range s.NamesOf(types.DeclFunction) {
		for _, t := range in.Tuples(functionStore(fn)) {
			fs.Add(Fact{Pred: fn, Tuple: t})
		}
	}
	return fs, nil
}

// functionStore names the hidden association backing a data function.
func functionStore(fn string) string { return "$fn$" + fn }

// ToInstance converts a fact set into an instance over the schema,
// reconciling class facts across a generalization hierarchy (an oid's
// o-value is the ⊕ of its projections; later components win, but since all
// class facts of one oid stem from one o-value they agree).
func ToInstance(fs *FactSet, schema *types.Schema, oidCounter int64) *instance.Instance {
	in := instance.New(schema)
	in.SetOIDCounter(oidCounter)
	for _, p := range fs.Preds() {
		if schema.IsClass(p) {
			for _, f := range fs.Facts(p) {
				in.AddToClass(p, f.OID, f.Tuple)
			}
			continue
		}
		if schema.IsFunction(p) {
			for _, f := range fs.Facts(p) {
				in.InsertTuple(functionStore(p), f.Tuple)
			}
			continue
		}
		for _, f := range fs.Facts(p) {
			in.InsertTuple(p, f.Tuple)
		}
	}
	return in
}
