package engine

import "fmt"

// Non-inflationary semantics. The paper's introduction makes modules and
// databases "parametric with respect to the semantics of the rules they
// support (e.g. inflationary vs non-inflationary)" and describes only the
// inflationary variant in detail; the non-inflationary counterpart (the
// DL-style semantics of [Abit88a] the paper cites) is implemented here:
//
//	F0 = E
//	F_{i+1} = (E ⊕ Δ+(R, F_i)) − Δ−(R, F_i)
//
// Derived facts persist only while re-derivable from the current state;
// the extensional base E always persists. The semantics is *partial*: if
// the sequence never stabilizes the result is undefined (an error). Under
// this operator the head-satisfiability suppression of Definition 7 must
// not drop facts — a satisfied head re-emits the satisfying facts so they
// survive the step — while oid invention keeps its dedup discipline (an
// object is re-emitted, not re-invented).

// oneStepNoninf applies the non-inflationary operator once. step is the
// fixpoint round, used to attribute trace events and in-round aborts.
func (p *Program) oneStepNoninf(step int, rules []*crule, e, f *FactSet, counter *int64) (*FactSet, bool, error) {
	c := &evalCtx{p: p, f: f, counter: counter, deltaIdx: -1, reemit: true, stats: p.stats,
		g: p.armedGuard(), round: step, orchestrator: true}
	dplus, dminus := NewFactSet(), NewFactSet()
	for _, r := range rules {
		yield := func(env2 *env) error {
			return c.instantiateHead(r, env2, dplus, dminus)
		}
		if r.inventive {
			seen := map[string]bool{}
			inner := yield
			yield = func(env2 *env) error {
				k := env2.key(r.vars)
				if seen[k] {
					return nil
				}
				seen[k] = true
				return inner(env2)
			}
		}
		if err := c.matchBody(r.body, 0, newEnv(), yield); err != nil {
			return nil, false, fmt.Errorf("%w (in rule %s)", err, r)
		}
	}
	next := e.Clone()
	next.Merge(dplus)
	for _, pr := range dminus.Preds() {
		for _, fact := range dminus.Facts(pr) {
			next.Remove(fact)
		}
	}
	return next, !next.Equal(f), nil
}

// runNoninflationary iterates the non-inflationary operator to a fixpoint
// over the whole program (stratification does not apply: the operator is
// non-monotone by construction).
func (p *Program) runNoninflationary(e *FactSet, counter *int64) (*FactSet, error) {
	if m := int64(e.MaxOID()); m > *counter {
		*counter = m
	}
	f := e.Clone()
	var rules []*crule
	for _, stratum := range p.strata {
		rules = append(rules, stratum...)
	}
	p.traceStratumBegin(-1, rules, "non-inflationary")
	for step := 0; ; step++ {
		if err := p.checkRound(step, f, "the non-inflationary semantics is undefined when no fixpoint is reached"); err != nil {
			return nil, err
		}
		p.traceRoundBegin(step)
		start := p.traceNow()
		next, changed, err := p.oneStepNoninf(step, rules, e, f, counter)
		if err != nil {
			return nil, err
		}
		if p.stats != nil {
			p.stats.Steps++
		}
		p.traceRoundEnd(step, next.TotalSize()-f.TotalSize(), next.TotalSize(), start)
		if !changed {
			p.traceStratumEnd(-1, next)
			return next, nil
		}
		f = next
	}
}
