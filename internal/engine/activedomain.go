package engine

import (
	"sort"

	"logres/internal/types"
	"logres/internal/value"
)

// The active domain (§2.1): "the set of elements of that type present in a
// given state of the database". It is the range of the implicit
// quantifiers in rules, used when variables occur only in negated
// literals.
//
// The domain is indexed by the *declared* type of each position: a
// variable typed NAME enumerates the NAME-typed component values present
// anywhere in the current fact set; a variable typed by a class enumerates
// that class's current oids; an association tuple variable enumerates the
// association's current tuples (key "$tuple$<assoc>").

type activeDomain struct {
	vals map[string]map[string]value.Value // adKey → value key → value
}

func (ad *activeDomain) add(key string, v value.Value) {
	m := ad.vals[key]
	if m == nil {
		m = map[string]value.Value{}
		ad.vals[key] = m
	}
	m[v.Key()] = v
}

// values returns the domain of a key in deterministic order.
func (ad *activeDomain) values(key string) []value.Value {
	m := ad.vals[key]
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]value.Value, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// buildActiveDomain scans a fact set, recording every component value
// under the declared type of its position.
func buildActiveDomain(schema *types.Schema, f *FactSet) *activeDomain {
	ad := &activeDomain{vals: map[string]map[string]value.Value{}}
	for _, pred := range f.Preds() {
		d, ok := schema.Lookup(pred)
		if !ok {
			continue
		}
		switch d.Kind {
		case types.DeclClass:
			eff, err := schema.EffectiveTuple(pred)
			if err != nil {
				continue
			}
			for _, fact := range f.Facts(pred) {
				ad.add(pred, value.Ref(fact.OID))
				ad.walkTuple(schema, eff, fact.Tuple)
			}
		case types.DeclAssociation:
			eff, err := schema.EffectiveTuple(pred)
			if err != nil {
				continue
			}
			for _, fact := range f.Facts(pred) {
				ad.add("$tuple$"+pred, fact.Tuple)
				ad.walkTuple(schema, eff, fact.Tuple)
			}
		case types.DeclFunction:
			for _, fact := range f.Facts(pred) {
				if d.Arg != nil {
					if av, ok := fact.Tuple.Get(FuncArgLabel); ok {
						ad.walkTyped(schema, d.Arg, av)
					}
				}
				if mv, ok := fact.Tuple.Get(FuncMemberLabel); ok {
					ad.walkTyped(schema, d.Result, mv)
				}
			}
		}
	}
	return ad
}

func (ad *activeDomain) walkTuple(schema *types.Schema, eff types.Tuple, t value.Tuple) {
	for _, field := range eff.Fields {
		v, ok := t.Get(field.Label)
		if !ok || v.Kind() == value.KindNull {
			continue
		}
		ad.walkTyped(schema, field.Type, v)
	}
}

// walkTyped records v under its declared type's key and recurses into
// constructed values.
func (ad *activeDomain) walkTyped(schema *types.Schema, t types.Type, v value.Value) {
	if t == nil || v == nil || v.Kind() == value.KindNull {
		return
	}
	ad.add(adKeyOf(t), v)
	switch x := t.(type) {
	case types.Named:
		name := types.Canon(x.Name)
		d, ok := schema.Lookup(name)
		if !ok {
			return
		}
		if d.Kind == types.DeclDomain {
			// Also index under the unfolded structural type, so variables
			// typed by the underlying structure see domain-typed values.
			ad.walkTyped(schema, d.RHS, v)
		}
	case types.Tuple:
		if tv, ok := v.(value.Tuple); ok {
			ad.walkTuple(schema, x, tv)
		}
	case types.Set:
		if sv, ok := v.(value.Set); ok {
			for _, el := range sv.Elems() {
				ad.walkTyped(schema, x.Elem, el)
			}
		}
	case types.Multiset:
		if mv, ok := v.(value.Multiset); ok {
			for _, el := range mv.Elems() {
				ad.walkTyped(schema, x.Elem, el)
			}
		}
	case types.Sequence:
		if qv, ok := v.(value.Sequence); ok {
			for _, el := range qv.Elems() {
				ad.walkTyped(schema, x.Elem, el)
			}
		}
	}
}
