package engine

import (
	"fmt"
	"sort"
	"strings"

	"logres/internal/ast"
	"logres/internal/value"
)

// objBinding is the binding of a tuple variable ranging over a class: the
// object's oid together with its o-value projection, so that both identity
// (oid) and attribute values are available.
type objBinding struct {
	class string
	oid   value.OID
	tuple value.Tuple
}

// binding is one variable binding: either a plain value or an object.
type binding struct {
	val value.Value
	obj *objBinding
}

// coerce renders the binding as a value: objects coerce to their oid
// reference (object identity), as in the paper's equivalence between tuple
// variables and oid variables in association positions.
func (b binding) coerce() value.Value {
	if b.obj != nil {
		return value.Ref(b.obj.oid)
	}
	return b.val
}

// env is an immutable-by-convention variable environment; extend copies.
type env struct {
	m map[string]binding
}

func newEnv() *env { return &env{m: map[string]binding{}} }

func (e *env) clone() *env {
	n := make(map[string]binding, len(e.m)+2)
	for k, v := range e.m {
		n[k] = v
	}
	return &env{m: n}
}

func (e *env) lookup(name string) (binding, bool) {
	b, ok := e.m[name]
	return b, ok
}

func (e *env) bound(name string) bool {
	_, ok := e.m[name]
	return ok
}

// bindValue unifies name with a plain value. It reports whether the
// environment remains consistent.
func (e *env) bindValue(name string, v value.Value) bool {
	if prev, ok := e.m[name]; ok {
		return value.Equal(prev.coerce(), v)
	}
	e.m[name] = binding{val: v}
	return true
}

// bindObject unifies name with an object. A previous plain oid binding
// upgrades to an object binding so attribute values become reachable.
func (e *env) bindObject(name string, ob objBinding) bool {
	if prev, ok := e.m[name]; ok {
		if prev.obj != nil {
			return prev.obj.oid == ob.oid
		}
		if r, isRef := prev.val.(value.Ref); isRef {
			if value.OID(r) != ob.oid {
				return false
			}
			e.m[name] = binding{obj: &ob}
			return true
		}
		return false
	}
	e.m[name] = binding{obj: &ob}
	return true
}

// key renders a deterministic signature of the environment restricted to
// the given variables; used as the valuation-domain identity b(r).
func (e *env) key(vars []string) string {
	parts := make([]string, 0, len(vars))
	sorted := append([]string{}, vars...)
	sort.Strings(sorted)
	for _, v := range sorted {
		if b, ok := e.m[v]; ok {
			parts = append(parts, v+"="+b.coerce().Key())
		}
	}
	return strings.Join(parts, ";")
}

// evalTerm evaluates a term to a value. All variables must be bound;
// function applications read the data function's extension from F.
func evalTerm(t ast.Term, e *env, f *FactSet) (value.Value, error) {
	switch x := t.(type) {
	case ast.Const:
		return x.Val, nil
	case ast.Var:
		b, ok := e.lookup(x.Name)
		if !ok {
			return nil, fmt.Errorf("engine: unbound variable %s", x.Name)
		}
		return b.coerce(), nil
	case ast.Wildcard:
		return nil, fmt.Errorf("engine: wildcard is not a value")
	case ast.FuncApp:
		return evalFuncApp(x, e, f)
	case ast.BinExpr:
		l, err := evalTerm(x.L, e, f)
		if err != nil {
			return nil, err
		}
		r, err := evalTerm(x.R, e, f)
		if err != nil {
			return nil, err
		}
		return evalArith(x.Op, l, r)
	case ast.TupleTerm:
		fields := make([]value.Field, len(x.Args))
		for i, a := range x.Args {
			v, err := evalTerm(a.Term, e, f)
			if err != nil {
				return nil, err
			}
			fields[i] = value.Field{Label: a.Label, Value: v}
		}
		return value.NewTuple(fields...), nil
	case ast.SetTerm:
		elems, err := evalElems(x.Elems, e, f)
		if err != nil {
			return nil, err
		}
		return value.NewSet(elems...), nil
	case ast.MultisetTerm:
		elems, err := evalElems(x.Elems, e, f)
		if err != nil {
			return nil, err
		}
		return value.NewMultiset(elems...), nil
	case ast.SeqTerm:
		elems, err := evalElems(x.Elems, e, f)
		if err != nil {
			return nil, err
		}
		return value.NewSequence(elems...), nil
	}
	return nil, fmt.Errorf("engine: cannot evaluate term %T", t)
}

func evalElems(ts []ast.Term, e *env, f *FactSet) ([]value.Value, error) {
	out := make([]value.Value, len(ts))
	for i, t := range ts {
		v, err := evalTerm(t, e, f)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// evalFuncApp evaluates a data-function application f(a) to the set of
// members recorded for argument a (the function's extension is the hidden
// association of (arg, member) facts).
func evalFuncApp(app ast.FuncApp, e *env, f *FactSet) (value.Value, error) {
	var argVal value.Value
	if len(app.Args) == 1 {
		v, err := evalTerm(app.Args[0], e, f)
		if err != nil {
			return nil, err
		}
		argVal = v
	} else if len(app.Args) > 1 {
		return nil, fmt.Errorf("engine: function %q applied to %d arguments", app.Name, len(app.Args))
	}
	var members []value.Value
	for _, fact := range f.Facts(app.Name) {
		if argVal != nil {
			got, ok := fact.Tuple.Get(FuncArgLabel)
			if !ok || !value.Equal(got, argVal) {
				continue
			}
		}
		if m, ok := fact.Tuple.Get(FuncMemberLabel); ok {
			members = append(members, m)
		}
	}
	return value.NewSet(members...), nil
}

// evalArith computes arithmetic; + also concatenates strings and merges
// collections of matching kinds.
func evalArith(op string, l, r value.Value) (value.Value, error) {
	if op == "+" {
		switch x := l.(type) {
		case value.Str:
			if y, ok := r.(value.Str); ok {
				return x + y, nil
			}
		case value.Set:
			if y, ok := r.(value.Set); ok {
				return x.Union(y), nil
			}
		case value.Sequence:
			if y, ok := r.(value.Sequence); ok {
				elems := append(append([]value.Value{}, x.Elems()...), y.Elems()...)
				return value.NewSequence(elems...), nil
			}
		}
	}
	li, lInt := l.(value.Int)
	ri, rInt := r.(value.Int)
	if lInt && rInt {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			if ri == 0 {
				return nil, fmt.Errorf("engine: division by zero")
			}
			return li / ri, nil
		case "mod":
			if ri == 0 {
				return nil, fmt.Errorf("engine: modulo by zero")
			}
			return li % ri, nil
		}
	}
	lf, lNum := numeric(l)
	rf, rNum := numeric(r)
	if lNum && rNum {
		switch op {
		case "+":
			return value.Real(lf + rf), nil
		case "-":
			return value.Real(lf - rf), nil
		case "*":
			return value.Real(lf * rf), nil
		case "/":
			if rf == 0 {
				return nil, fmt.Errorf("engine: division by zero")
			}
			return value.Real(lf / rf), nil
		}
	}
	return nil, fmt.Errorf("engine: cannot apply %q to %s and %s", op, l.Kind(), r.Kind())
}

func numeric(v value.Value) (float64, bool) {
	switch x := v.(type) {
	case value.Int:
		return float64(x), true
	case value.Real:
		return float64(x), true
	}
	return 0, false
}

// matchTerm unifies a pattern term against a value, extending e in place.
// Non-pattern subterms (function applications, arithmetic, collection
// literals) are evaluated and compared.
func matchTerm(t ast.Term, v value.Value, e *env, f *FactSet) (bool, error) {
	switch x := t.(type) {
	case ast.Var:
		return e.bindValue(x.Name, v), nil
	case ast.Wildcard:
		return true, nil
	case ast.Const:
		return value.Equal(x.Val, v), nil
	case ast.TupleTerm:
		tv, ok := v.(value.Tuple)
		if !ok {
			return false, nil
		}
		for i, a := range x.Args {
			var comp value.Value
			if a.Label == ast.SelfLabel || a.Label != "" {
				c, found := tv.Get(a.Label)
				if !found {
					return false, nil
				}
				comp = c
			} else {
				if i >= tv.Len() {
					return false, nil
				}
				comp = tv.Field(i).Value
			}
			ok, err := matchTerm(a.Term, comp, e, f)
			if err != nil || !ok {
				return ok, err
			}
		}
		return true, nil
	default:
		got, err := evalTerm(t, e, f)
		if err != nil {
			return false, err
		}
		return value.Equal(got, v), nil
	}
}

// isPattern reports whether a term can be matched against a value without
// its variables being bound first.
func isPattern(t ast.Term) bool {
	switch x := t.(type) {
	case ast.Var, ast.Wildcard, ast.Const:
		return true
	case ast.TupleTerm:
		for _, a := range x.Args {
			if !isPattern(a.Term) {
				return false
			}
		}
		return true
	}
	return false
}

// termVars collects the variable names of a term, in order.
func termVars(t ast.Term) []string {
	var out []string
	var walk func(ast.Term)
	walk = func(t ast.Term) {
		switch x := t.(type) {
		case ast.Var:
			out = append(out, x.Name)
		case ast.FuncApp:
			for _, a := range x.Args {
				walk(a)
			}
		case ast.BinExpr:
			walk(x.L)
			walk(x.R)
		case ast.TupleTerm:
			for _, a := range x.Args {
				walk(a.Term)
			}
		case ast.SetTerm:
			for _, e := range x.Elems {
				walk(e)
			}
		case ast.MultisetTerm:
			for _, e := range x.Elems {
				walk(e)
			}
		case ast.SeqTerm:
			for _, e := range x.Elems {
				walk(e)
			}
		}
	}
	walk(t)
	return out
}

// evaluable reports whether all variables of t are in bound.
func evaluable(t ast.Term, bound map[string]bool) bool {
	if _, isWild := t.(ast.Wildcard); isWild {
		return false
	}
	for _, v := range termVars(t) {
		if !bound[v] {
			return false
		}
	}
	return true
}

// patternVars returns the variables a pattern would bind.
func patternVars(t ast.Term) []string {
	if !isPattern(t) {
		return nil
	}
	return termVars(t)
}
