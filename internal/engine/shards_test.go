package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"logres/internal/value"
)

// Tests of the sharded FactSet: extensional equivalence with the unsharded
// layout under randomized operation interleavings, and bit-identical
// parallel evaluation across the worker × shard matrix.

func classTagFact(oid int64, tag int64) Fact {
	return Fact{Pred: "node", IsClass: true, OID: value.OID(oid), Tuple: value.NewTuple(
		value.Field{Label: "tag", Value: value.Int(tag)},
	)}
}

// randomFact draws either an association or a class fact, from a small
// domain so Adds collide with Removes and class replacements actually
// happen.
func randomFact(r *rand.Rand) Fact {
	if r.Intn(3) == 0 {
		return classTagFact(int64(r.Intn(12)+1), int64(r.Intn(5)))
	}
	return edgeFact(r.Intn(24), r.Intn(24))
}

// assertSameFacts checks extensional equality and that every predicate
// enumerates in the same order on both layouts (the k-way shard merge must
// be transparent).
func assertSameFacts(t *testing.T, step int, ref, got *FactSet) {
	t.Helper()
	if !ref.Equal(got) || !got.Equal(ref) {
		t.Fatalf("step %d: sharded set diverged (%d vs %d facts)", step, ref.TotalSize(), got.TotalSize())
	}
	for _, p := range ref.Preds() {
		rf, gf := ref.Facts(p), got.Facts(p)
		if len(rf) != len(gf) {
			t.Fatalf("step %d: %s: %d vs %d facts", step, p, len(rf), len(gf))
		}
		for i := range rf {
			if rf[i].Key() != gf[i].Key() {
				t.Fatalf("step %d: %s[%d]: order diverged: %q vs %q", step, p, i, rf[i].Key(), gf[i].Key())
			}
		}
	}
}

// Property: a sharded FactSet is extensionally identical to the unsharded
// reference — same facts, same enumeration order — after any interleaving
// of Add, Remove, reads, Freeze/Thaw, Clone, Compose, Minus, and ordered
// parallel merges. Run under -race this also exercises the merge and
// freeze goroutines.
func TestFactSetShardEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2, 7, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(1000 + shards)))
			ref := NewFactSet()
			got := NewFactSetShards(shards)
			for step := 0; step < 600; step++ {
				switch op := r.Intn(12); {
				case op < 5: // add
					f := randomFact(r)
					ref.Add(f)
					got.Add(f)
				case op < 7: // remove
					f := randomFact(r)
					ref.Remove(f)
					got.Remove(f)
				case op == 7: // cached reads
					pred := []string{"edge", "node"}[r.Intn(2)]
					_ = ref.Facts(pred)
					_ = got.Facts(pred)
					v := value.Int(int64(r.Intn(24)))
					_ = ref.FactsByComponent("edge", "src", v)
					_ = got.FactsByComponent("edge", "src", v)
				case op == 8: // freeze (parallel on the sharded set), read, thaw
					ref.Freeze()
					got.FreezeParallel(1 + r.Intn(4))
					assertSameFacts(t, step, ref, got)
					ref.Thaw()
					got.Thaw()
				case op == 9: // clone (copy-on-write cache carry)
					ref, got = ref.Clone(), got.Clone()
				case op == 10: // compose ⊕ / minus with a small random set
					d := NewFactSet()
					for i := 0; i < r.Intn(6); i++ {
						d.Add(randomFact(r))
					}
					if r.Intn(2) == 0 {
						ref, got = ref.Compose(d), got.Compose(d)
					} else {
						ref, got = ref.Minus(d), got.Minus(d)
					}
				default: // ordered parallel merge of several task deltas
					var refDeltas, gotDeltas []*FactSet
					for i := 0; i < 3; i++ {
						rd, gd := NewFactSet(), NewFactSetShards(shards)
						for j := 0; j < r.Intn(8); j++ {
							f := randomFact(r)
							rd.Add(f)
							gd.Add(f)
						}
						refDeltas = append(refDeltas, rd)
						gotDeltas = append(gotDeltas, gd)
					}
					for _, d := range refDeltas {
						ref.Merge(d)
					}
					ms := got.MergeOrdered(gotDeltas)
					if want := shards > 1; (ms.Shards > 1) != want {
						t.Fatalf("step %d: MergeOrdered used %d shards on a %d-shard set", step, ms.Shards, shards)
					}
				}
				if step%50 == 0 {
					assertSameFacts(t, step, ref, got)
				}
			}
			assertSameFacts(t, 600, ref, got)
			if got.ShardCount() != shards {
				t.Fatalf("shard count drifted to %d", got.ShardCount())
			}
		})
	}
}

// The full worker × shard matrix must be bit-identical to serial
// evaluation — same facts, same oid counters — on eligible (semi-naive)
// and negation-bearing programs.
func TestParallelDeterminismMatrix(t *testing.T) {
	programs := map[string]string{
		"closure": closureRules,
		"negation": closureRules + `
same(a: X, b: Y) <- edge(src: X, dst: Y), not tc(src: Y, dst: X).
`,
	}
	for name, rules := range programs {
		p, err := tryBuild(edgeSchema, rules, Options{MaxSteps: 10000, SemiNaive: true, Stratify: true, Workers: 1, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		edb := randomEdgeFacts(12, 60, 21)
		c0 := int64(0)
		want, err := p.Run(edb.Clone(), &c0)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			for _, shards := range []int{1, 4, 16} {
				p.SetWorkers(workers)
				p.SetShards(shards)
				c := int64(0)
				got, err := p.Run(edb.Clone(), &c)
				if err != nil {
					t.Fatalf("%s workers=%d shards=%d: %v", name, workers, shards, err)
				}
				if !want.Equal(got) {
					t.Fatalf("%s: workers=%d shards=%d diverged (%d vs %d facts)",
						name, workers, shards, want.TotalSize(), got.TotalSize())
				}
				if c != c0 {
					t.Fatalf("%s: workers=%d shards=%d counter %d, want %d", name, workers, shards, c, c0)
				}
			}
		}
		p.SetWorkers(1)
		p.SetShards(1)
	}
}

// Non-eligible strata — oid invention and deletion heads — now run their
// matching passes on the worker pool (round-0 parallel matching) with
// effects sequenced at merge; results must stay bit-identical to serial.
func TestParallelDeterminismDeletion(t *testing.T) {
	schema := `
classes C = (v: integer);
associations
  SEED = (v: integer);
  KILL = (v: integer);
`
	rules := `
c(v: V) <- seed(v: V), not kill(v: V).
not c(v: V) <- kill(v: V).
`
	p, err := tryBuild(schema, rules, Options{MaxSteps: 10000, SemiNaive: true, Stratify: true, Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(pred string, v int) Fact {
		return Fact{Pred: pred, Tuple: value.NewTuple(
			value.Field{Label: "v", Value: value.Int(int64(v))},
		)}
	}
	edb := NewFactSet()
	for i := 0; i < 40; i++ {
		edb.Add(mk("seed", i))
		if i%3 == 0 {
			edb.Add(mk("kill", i))
		}
	}
	c0 := int64(0)
	want, err := p.Run(edb.Clone(), &c0)
	if err != nil {
		t.Fatal(err)
	}
	if want.Size("c") == 0 || c0 == 0 {
		t.Fatal("deletion program derived nothing")
	}
	for _, workers := range []int{2, 4, 8} {
		p.SetWorkers(workers)
		c := int64(0)
		got, err := p.Run(edb.Clone(), &c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !want.Equal(got) {
			t.Fatalf("workers=%d: deletion program diverged (%d vs %d facts)",
				workers, want.TotalSize(), got.TotalSize())
		}
		if c != c0 {
			t.Fatalf("workers=%d: oid counter %d, want %d", workers, c, c0)
		}
	}
}

// BenchmarkFactSetMergeParallel measures the contended step of parallel
// evaluation: folding many worker deltas into the current extension. With
// one shard the merge serializes on the single merged view; with several
// the deltas apply concurrently, one goroutine per shard.
func BenchmarkFactSetMergeParallel(b *testing.B) {
	const baseN, deltas, perDelta = 20000, 8, 1000
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			base := NewFactSetShards(shards)
			for i := 0; i < baseN; i++ {
				base.Add(edgeFact(i, i+1))
			}
			base.FreezeParallel(shards) // warm caches: the steady state between rounds
			base.Thaw()
			ds := make([]*FactSet, deltas)
			for d := range ds {
				ds[d] = NewFactSetShards(shards)
				for j := 0; j < perDelta; j++ {
					ds[d].Add(edgeFact(baseN+d*perDelta+j, j))
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cur := base.Clone()
				cur.Facts("edge") // realistic: the view exists before the round
				b.StartTimer()
				cur.MergeOrdered(ds)
			}
		})
	}
}
