package engine

import "sort"

// RuleFootprint is the static predicate-level access analysis of one
// compiled program: which predicates an evaluation may read and which it
// may write. The module layer widens it with mode- and schema-level
// accesses (pseudo-predicates, referential-integrity reads) to build the
// guard.Footprint that optimistic concurrent application validates.
//
// The analysis is conservative in the only direction that is sound for
// concurrency control: it may over-approximate (report an access that
// never happens at runtime — a spurious conflict costs a retry) but
// never under-approximates (miss an access — that would admit a
// non-serializable interleaving).
type RuleFootprint struct {
	// Reads are the predicates any rule or denial body may match against:
	// class and association predicates, plus the "$fn$"-prefixed store
	// names of data functions read through function-application terms.
	Reads []string
	// Writes are the predicates any rule head may derive into, closed
	// under rule chaining: if a rule's body reads a written predicate,
	// its head is written too. The closure covers the generated
	// isa-propagation rules, so writing a subclass also writes its
	// transitive superclasses.
	Writes []string
	// Deletes is the subset of Writes produced by negated (deleting)
	// heads.
	Deletes []string
	// Inventive reports whether any rule invents oids (the evaluation
	// advances the oid counter).
	Inventive bool
	// Universal reports that the evaluation may read the entire
	// extension: some negated literal enumerates unbound variables over
	// the active domain, which is built by scanning every predicate.
	Universal bool
}

// headStore names the FactSet predicate a head derives into.
func headStore(h *headSpec) string {
	if h.kind == hFunc {
		return functionStore(h.pred)
	}
	return h.pred
}

// Footprint computes the program's static read/write footprint. User
// rule bodies always count as reads; the bodies of generated
// isa-propagation rules do not — a generated rule only re-derives facts
// already present in a consistent extension unless its body predicate is
// itself written, and in that case the propagated facts derive from this
// evaluation's own writes, which the chaining closure already covers.
func (p *Program) Footprint() RuleFootprint {
	reads := map[string]bool{}
	writes := map[string]bool{}
	deletes := map[string]bool{}
	var fp RuleFootprint

	scanBody := func(r *crule) {
		for _, l := range r.body {
			if l.kind == pkClass || l.kind == pkAssoc {
				reads[l.pred] = true
			}
			if len(l.adVars) > 0 {
				fp.Universal = true
			}
		}
		for _, fn := range ruleFuncReadsAll(r) {
			reads[functionStore(fn)] = true
		}
	}

	// Seeds: every user-written rule may fire; generated rules only
	// chain.
	for _, r := range p.rules {
		if r.generated {
			continue
		}
		scanBody(r)
		writes[headStore(r.head)] = true
		if r.head.negated {
			deletes[headStore(r.head)] = true
		}
		if r.inventive {
			fp.Inventive = true
		}
	}
	for _, r := range p.denials {
		scanBody(r)
	}

	// Chaining closure over all rules (generated included): a rule whose
	// body — predicate literals or function-application reads — touches
	// a written predicate may derive from this evaluation's own writes,
	// so its head is written too.
	for changed := true; changed; {
		changed = false
		for _, r := range p.rules {
			h := headStore(r.head)
			if writes[h] && (!r.head.negated || deletes[h]) {
				continue
			}
			fires := false
			for _, l := range r.body {
				if (l.kind == pkClass || l.kind == pkAssoc) && writes[l.pred] {
					fires = true
					break
				}
			}
			if !fires {
				for _, fn := range ruleFuncReadsAll(r) {
					if writes[functionStore(fn)] {
						fires = true
						break
					}
				}
			}
			if fires {
				if !writes[h] {
					writes[h] = true
					changed = true
				}
				if r.head.negated && !deletes[h] {
					deletes[h] = true
					changed = true
				}
			}
		}
	}

	fp.Reads = sortedKeys(reads)
	fp.Writes = sortedKeys(writes)
	fp.Deletes = sortedKeys(deletes)
	return fp
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FunctionStore exposes the hidden store name backing a data function
// ("$fn$" + name) so the module layer can name function extensions in
// footprints and deltas.
func FunctionStore(fn string) string { return functionStore(fn) }
