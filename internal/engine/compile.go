package engine

import (
	"context"
	"fmt"
	"runtime"

	"logres/internal/ast"
	"logres/internal/guard"
	"logres/internal/obs"
	"logres/internal/types"
)

// Options tunes compilation and evaluation.
type Options struct {
	// MaxSteps bounds the number of one-step applications per fixpoint;
	// the paper's semantics does not guarantee termination (Appendix B),
	// so runaway programs are reported as errors. 0 means the default.
	// Budget.MaxRounds, when set, takes precedence.
	MaxSteps int
	// Budget bounds evaluation resources (rounds, derived facts,
	// invented oids, wall-clock); exhausting an axis aborts with a
	// *BudgetError. The zero value applies only the MaxSteps bound.
	Budget Budget
	// Ctx cancels evaluation between fixpoint rounds; aborts surface as
	// *CanceledError and leave the caller's state untouched. nil means
	// context.Background(). Program.RunContext overrides it per call.
	Ctx context.Context
	// SemiNaive enables delta iteration on eligible strata.
	SemiNaive bool
	// Stratify enables perfect-model evaluation (inflationary semantics
	// within each stratum) for stratified programs; when false, or when
	// the program is not stratified, the whole program is evaluated under
	// inflationary semantics as a single block.
	Stratify bool
	// NonInflationary selects the non-inflationary semantics (the paper's
	// §1: rules are parametric in their semantics): derived facts persist
	// only while re-derivable, the extensional base always persists, and
	// the result is undefined (an error) when no fixpoint is reached.
	// Stratification and semi-naive evaluation do not apply.
	NonInflationary bool
	// Workers is the number of worker goroutines parallel semi-naive
	// evaluation fans out to. Values ≤ 1 select the serial engine; 0 (the
	// zero value) means runtime.GOMAXPROCS(0). Results are bit-identical
	// for every worker count.
	Workers int
	// Shards is the number of FactSet shards parallel evaluation
	// partitions the current extension and deltas into; worker deltas are
	// merged with one goroutine per shard. Values ≤ 0 (including the zero
	// value) mean runtime.GOMAXPROCS(0); 1 keeps the serial merge. Results
	// are bit-identical for every shard count.
	Shards int
	// Tracer receives typed evaluation events (stratum/round boundaries,
	// rule firings, oid invention, merges, budget consumption, aborts).
	// nil (the default) disables tracing; every emission site is behind a
	// nil check, so the untraced hot path pays nothing.
	Tracer obs.Tracer
	// Vectorize evaluates eligible semi-naive strata over columnar
	// batches (internal/colset): frozen snapshots are dictionary-encoded
	// into per-predicate column batches and rule bodies run as vectorized
	// select/join/anti-join kernels, decoding back to facts only at the
	// emit boundary. Strata using oid invention, deletion, class heads,
	// tuple variables, or active-domain negation stay on the row engine,
	// which remains the semantics oracle; results are bit-identical
	// either way.
	Vectorize bool
}

// DefaultOptions returns the standard evaluation options.
func DefaultOptions() Options {
	return Options{MaxSteps: 100000, SemiNaive: true, Stratify: true, Workers: runtime.GOMAXPROCS(0), Shards: runtime.GOMAXPROCS(0)}
}

// Program is a compiled rule set, ready to evaluate.
type Program struct {
	schema  *types.Schema
	opts    Options
	rules   []*crule
	denials []*crule

	strata     [][]*crule
	stratified bool
	stats      *Stats
	guard      *guard.Guard

	// lastFirings is the cumulative Firings snapshot at the previous
	// round boundary; traceFirings diffs against it to emit per-round
	// rule.fire events. Reset on every Run.
	lastFirings map[int]int
}

// Schema returns the schema the program was compiled against.
func (p *Program) Schema() *types.Schema { return p.schema }

// Stratified reports whether the program admits perfect-model evaluation.
func (p *Program) Stratified() bool { return p.stratified }

// NumRules returns the number of compiled rules (including generated
// constraint rules).
func (p *Program) NumRules() int { return len(p.rules) }

// SetWorkers overrides the evaluation worker count after compilation
// (values ≤ 0 restore the runtime.GOMAXPROCS(0) default). Benchmarks and
// determinism tests use it to compare serial and parallel runs of one
// compiled program.
func (p *Program) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p.opts.Workers = n
}

// Workers returns the effective evaluation worker count.
func (p *Program) Workers() int { return p.opts.Workers }

// SetShards overrides the FactSet shard count used by parallel evaluation
// (values ≤ 0 restore the runtime.GOMAXPROCS(0) default).
func (p *Program) SetShards(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p.opts.Shards = n
}

// Shards returns the effective FactSet shard count.
func (p *Program) Shards() int { return p.opts.Shards }

// SetTracer attaches (or, with nil, detaches) an evaluation tracer
// after compilation. Benchmarks and the REPL's `.trace` toggle use it
// to compare traced and untraced runs of one compiled program.
func (p *Program) SetTracer(t obs.Tracer) { p.opts.Tracer = t }

// SetVectorize toggles columnar evaluation of eligible semi-naive
// strata after compilation. Benchmarks and differential tests use it to
// compare the row and vectorized paths of one compiled program.
func (p *Program) SetVectorize(on bool) { p.opts.Vectorize = on }

// Vectorize reports whether columnar evaluation is enabled.
func (p *Program) Vectorize() bool { return p.opts.Vectorize }

// Compile analyses a rule set against a schema: it resolves predicates and
// labels, orders rule bodies, checks the safety requirements of §3.1 and
// the oid-unification legality conditions, determines invention, generates
// the active isa-propagation constraints from the type equations, and
// computes the stratification.
func Compile(schema *types.Schema, rules []*ast.Rule, opts Options) (*Program, error) {
	if opts.Budget.MaxRounds > 0 {
		opts.MaxSteps = opts.Budget.MaxRounds
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = DefaultOptions().MaxSteps
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Shards <= 0 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	p := &Program{schema: schema, opts: opts}
	all := append([]*ast.Rule{}, rules...)
	generated := generateIsaRules(schema)
	all = append(all, generated...)
	for i, r := range all {
		cr, err := compileRule(schema, r, i)
		if err != nil {
			return nil, fmt.Errorf("%v (in rule %s)", err, r)
		}
		cr.generated = i >= len(rules)
		if cr.head == nil {
			p.denials = append(p.denials, cr)
		} else {
			p.rules = append(p.rules, cr)
		}
	}
	p.computeStrata()
	return p, nil
}

// generateIsaRules produces the active constraints implied by the isa
// hierarchy: for every `C1 isa C2`, the rule `c2(X) <- c1(X).` which
// propagates membership (with the shared oid) up the hierarchy.
func generateIsaRules(schema *types.Schema) []*ast.Rule {
	var out []*ast.Rule
	for _, e := range schema.IsaEdges() {
		if !schema.IsClass(e.Sub) || !schema.IsClass(e.Super) {
			continue
		}
		v := ast.Var{Name: "X"}
		out = append(out, &ast.Rule{
			Head: &ast.Literal{Pred: e.Super, Args: []ast.Arg{{Term: v}}},
			Body: []ast.Literal{{Pred: e.Sub, Args: []ast.Arg{{Term: v}}}},
		})
	}
	return out
}

func compileRule(schema *types.Schema, r *ast.Rule, id int) (*crule, error) {
	cr := &crule{id: id, src: r}
	if r.Head != nil {
		h, err := resolveHead(schema, *r.Head)
		if err != nil {
			return nil, err
		}
		cr.head = h
	}
	for _, l := range r.Body {
		rl, err := resolveLiteral(schema, l)
		if err != nil {
			return nil, err
		}
		cr.body = append(cr.body, rl)
	}

	vt, err := inferVarTypes(schema, cr)
	if err != nil {
		return nil, err
	}
	if err := checkHierarchies(schema, cr, vt); err != nil {
		return nil, err
	}
	if err := checkConstants(schema, cr); err != nil {
		return nil, err
	}
	bound, err := orderBody(cr, vt)
	if err != nil {
		return nil, err
	}
	if err := analyzeHead(schema, cr, bound); err != nil {
		return nil, err
	}
	var lits []ast.Literal
	if r.Head != nil {
		lits = append(lits, *r.Head)
	}
	lits = append(lits, r.Body...)
	cr.vars = ast.VarSet(lits)
	return cr, nil
}

// varInfo is the inferred static information about one variable.
type varInfo struct {
	typ     types.Type
	adKey   string   // active-domain key
	classes []string // classes the variable ranges over as an oid
}

type varTypes map[string]*varInfo

func (vt varTypes) note(schema *types.Schema, name string, t types.Type, adKey string, class string) error {
	vi := vt[name]
	if vi == nil {
		vi = &varInfo{}
		vt[name] = vi
	}
	if class != "" {
		vi.classes = append(vi.classes, class)
	}
	if t == nil {
		return nil
	}
	if vi.typ == nil {
		vi.typ = t
		vi.adKey = adKey
		return nil
	}
	if types.EqualType(vi.typ, t) {
		return nil
	}
	// Two class types are jointly legal when in one hierarchy; other
	// types must be compatible under refinement (strong typing, §3.1).
	if n1, ok1 := vi.typ.(types.Named); ok1 {
		if n2, ok2 := t.(types.Named); ok2 && schema.IsClass(n1.Name) && schema.IsClass(n2.Name) {
			if schema.SameHierarchy(n1.Name, n2.Name) {
				return nil
			}
			return fmt.Errorf("engine: variable %s ranges over classes %s and %s of different hierarchies", name, n1.Name, n2.Name)
		}
	}
	if !schema.Compatible(vi.typ, t) {
		return fmt.Errorf("engine: variable %s used with incompatible types %s and %s", name, vi.typ, t)
	}
	return nil
}

// adKeyOf derives the active-domain key of a declared type.
func adKeyOf(t types.Type) string {
	return types.Canon(t.String())
}

// inferVarTypes assigns each variable the declared type of the positions
// it occupies.
func inferVarTypes(schema *types.Schema, cr *crule) (varTypes, error) {
	vt := varTypes{}
	noteLit := func(kind predKind, pred string, eff types.Tuple, selfTerm ast.Term, comps []compArg, tupleVars []string) error {
		if selfTerm != nil {
			if v, ok := selfTerm.(ast.Var); ok {
				if err := vt.note(schema, v.Name, types.Named{Name: pred}, pred, pred); err != nil {
					return err
				}
			}
		}
		for _, tv := range tupleVars {
			if kind == pkClass {
				if err := vt.note(schema, tv, types.Named{Name: pred}, pred, pred); err != nil {
					return err
				}
			} else {
				if err := vt.note(schema, tv, eff, "$tuple$"+pred, ""); err != nil {
					return err
				}
			}
		}
		for _, c := range comps {
			v, ok := c.term.(ast.Var)
			if !ok {
				continue
			}
			f, found := eff.Get(c.label)
			if !found {
				continue
			}
			class := ""
			if n, isNamed := f.Type.(types.Named); isNamed && schema.IsClass(n.Name) {
				class = types.Canon(n.Name)
			}
			if err := vt.note(schema, v.Name, f.Type, adKeyOf(f.Type), class); err != nil {
				return err
			}
		}
		return nil
	}
	for _, l := range cr.body {
		if l.kind == pkClass || l.kind == pkAssoc {
			if err := noteLit(l.kind, l.pred, l.eff, l.selfTerm, l.comps, l.tupleVars); err != nil {
				return nil, err
			}
		}
	}
	if h := cr.head; h != nil {
		switch h.kind {
		case hClass:
			var tvs []string
			if h.tupleVar != "" {
				tvs = []string{h.tupleVar}
			}
			if err := noteLit(pkClass, h.pred, h.eff, h.selfTerm, h.comps, tvs); err != nil {
				return nil, err
			}
		case hAssoc:
			var tvs []string
			if h.tupleVar != "" {
				tvs = []string{h.tupleVar}
			}
			if err := noteLit(pkAssoc, h.pred, h.eff, nil, h.comps, tvs); err != nil {
				return nil, err
			}
		}
	}
	return vt, nil
}

// checkHierarchies enforces the oid-unification rule of §3.1: a variable
// may only denote objects of classes within one generalization hierarchy.
func checkHierarchies(schema *types.Schema, cr *crule, vt varTypes) error {
	for name, vi := range vt {
		for i := 0; i < len(vi.classes); i++ {
			for j := i + 1; j < len(vi.classes); j++ {
				if !schema.SameHierarchy(vi.classes[i], vi.classes[j]) {
					return fmt.Errorf("engine: variable %s denotes objects of %s and %s, which share no generalization hierarchy",
						name, vi.classes[i], vi.classes[j])
				}
			}
		}
	}
	return nil
}

// checkConstants statically type-checks constant component arguments.
func checkConstants(schema *types.Schema, cr *crule) error {
	check := func(eff types.Tuple, comps []compArg, pred string) error {
		for _, c := range comps {
			k, ok := c.term.(ast.Const)
			if !ok {
				continue
			}
			f, found := eff.Get(c.label)
			if !found {
				continue
			}
			if k.Val.Kind().String() == "null" {
				continue // null is legal in any optional position
			}
			if err := schema.CheckValue(f.Type, k.Val, types.NilAllowed); err != nil {
				return fmt.Errorf("engine: constant %s is not a legal %s for %s.%s", k.Val, f.Type, pred, c.label)
			}
		}
		return nil
	}
	for _, l := range cr.body {
		if l.kind == pkClass || l.kind == pkAssoc {
			if err := check(l.eff, l.comps, l.pred); err != nil {
				return err
			}
		}
	}
	if h := cr.head; h != nil && (h.kind == hClass || h.kind == hAssoc) {
		if err := check(h.eff, h.comps, h.pred); err != nil {
			return err
		}
	}
	return nil
}

// orderBody reorders body literals into an executable sequence using a
// two-tier greedy strategy: pick ready positive literals, ready builtins
// and comparisons first; fall back to negated literals (whose unbound
// variables then range over the active domain, §2.1). It returns the
// variables bound after executing the whole body.
func orderBody(cr *crule, vt varTypes) (map[string]bool, error) {
	type slot struct {
		lit  resolvedLit
		used bool
	}
	slots := make([]slot, len(cr.body))
	for i, l := range cr.body {
		slots[i] = slot{lit: l}
	}
	bound := map[string]bool{}
	var ordered []resolvedLit
	for picked := 0; picked < len(slots); picked++ {
		idx := -1
		for i := range slots {
			if !slots[i].used && readyTier1(slots[i].lit, bound) {
				idx = i
				break
			}
		}
		if idx < 0 {
			for i := range slots {
				if !slots[i].used && slots[i].lit.negated && readyNegated(slots[i].lit, bound) {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			var stuck []string
			for i := range slots {
				if !slots[i].used {
					stuck = append(stuck, slots[i].lit.pred)
				}
			}
			return nil, fmt.Errorf("engine: unsafe rule: cannot order literals %v", stuck)
		}
		lit := slots[idx].lit
		slots[idx].used = true
		if lit.negated && (lit.kind == pkClass || lit.kind == pkAssoc) {
			// Record the variables that will range over the active domain.
			for _, v := range unboundPatternVars(lit, bound) {
				vi := vt[v]
				if vi == nil || vi.adKey == "" {
					return nil, fmt.Errorf("engine: variable %s occurs only in a negated literal and cannot be typed for active-domain enumeration", v)
				}
				lit.adVars = append(lit.adVars, adVar{name: v, key: vi.adKey})
			}
		}
		for _, v := range litBinds(lit, bound) {
			bound[v] = true
		}
		ordered = append(ordered, lit)
	}
	cr.body = ordered
	return bound, nil
}

// readyTier1 reports whether a literal can execute now without active-
// domain enumeration.
func readyTier1(l resolvedLit, bound map[string]bool) bool {
	patternOrEval := func(t ast.Term) bool { return isPattern(t) || evaluable(t, bound) }
	switch l.kind {
	case pkClass, pkAssoc:
		if l.negated {
			// Fully-bound negation is a cheap check.
			for _, v := range litVars(l) {
				if !bound[v] {
					return false
				}
			}
			return allTermsEvaluableOrPattern(l, bound)
		}
		if l.selfTerm != nil && !patternOrEval(l.selfTerm) {
			return false
		}
		for _, c := range l.comps {
			if !patternOrEval(c.term) {
				return false
			}
		}
		return true
	case pkCompare:
		left, right := l.args[0], l.args[1]
		if l.pred == "=" && !l.negated {
			if evaluable(left, bound) && (isPattern(right) || evaluable(right, bound)) {
				return true
			}
			if evaluable(right, bound) && (isPattern(left) || evaluable(left, bound)) {
				return true
			}
			return false
		}
		return evaluable(left, bound) && evaluable(right, bound)
	case pkBuiltin:
		return builtinReady(l, bound)
	}
	return false
}

func allTermsEvaluableOrPattern(l resolvedLit, bound map[string]bool) bool {
	check := func(t ast.Term) bool { return isPattern(t) || evaluable(t, bound) }
	if l.selfTerm != nil && !check(l.selfTerm) {
		return false
	}
	for _, c := range l.comps {
		if !check(c.term) {
			return false
		}
	}
	return true
}

// readyNegated reports whether a negated predicate literal can execute
// with active-domain enumeration of its unbound pattern variables.
func readyNegated(l resolvedLit, bound map[string]bool) bool {
	if l.kind != pkClass && l.kind != pkAssoc {
		return false
	}
	return allTermsEvaluableOrPattern(l, bound)
}

// builtinReady reports whether a builtin has its input positions bound.
func builtinReady(l resolvedLit, bound map[string]bool) bool {
	ev := func(i int) bool { return evaluable(l.args[i], bound) }
	out := func(i int) bool { return isPattern(l.args[i]) || evaluable(l.args[i], bound) }
	if l.negated {
		for i := range l.args {
			if !ev(i) {
				return false
			}
		}
		return true
	}
	switch l.pred {
	case "member":
		return ev(1) && out(0)
	case "union", "intersection", "difference", "append":
		return ev(0) && ev(1) && out(2)
	case "count", "sum", "min", "max", "avg", "length":
		return ev(0) && out(1)
	case "nth":
		return ev(0) && ev(1) && out(2)
	}
	return false
}

// litVars returns all variables of a predicate literal.
func litVars(l resolvedLit) []string {
	var out []string
	if l.selfTerm != nil {
		out = append(out, termVars(l.selfTerm)...)
	}
	for _, c := range l.comps {
		out = append(out, termVars(c.term)...)
	}
	out = append(out, l.tupleVars...)
	for _, a := range l.args {
		out = append(out, termVars(a)...)
	}
	return out
}

// unboundPatternVars returns the pattern variables of a literal not yet
// bound.
func unboundPatternVars(l resolvedLit, bound map[string]bool) []string {
	var out []string
	seen := map[string]bool{}
	add := func(vars []string) {
		for _, v := range vars {
			if !bound[v] && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	if l.selfTerm != nil {
		add(patternVars(l.selfTerm))
	}
	for _, c := range l.comps {
		add(patternVars(c.term))
	}
	add(l.tupleVars)
	return out
}

// litBinds returns the variables bound by executing a literal.
func litBinds(l resolvedLit, bound map[string]bool) []string {
	var out []string
	switch l.kind {
	case pkClass, pkAssoc:
		out = append(out, unboundPatternVars(l, bound)...)
	case pkCompare:
		if l.pred == "=" && !l.negated {
			left, right := l.args[0], l.args[1]
			if evaluable(left, bound) {
				out = append(out, patternVars(right)...)
			} else if evaluable(right, bound) {
				out = append(out, patternVars(left)...)
			}
		}
	case pkBuiltin:
		if l.negated {
			return nil
		}
		switch l.pred {
		case "member":
			out = append(out, patternVars(l.args[0])...)
		case "union", "intersection", "difference", "append", "nth":
			out = append(out, patternVars(l.args[2])...)
		case "count", "sum", "min", "max", "avg", "length":
			out = append(out, patternVars(l.args[1])...)
		}
	}
	return out
}

// analyzeHead validates the head against the bound variables: the safety
// requirements of §3.1, invention (unbound self), and the copy/unify
// semantics for head tuple variables (§3.1 cases a/b).
func analyzeHead(schema *types.Schema, cr *crule, bound map[string]bool) error {
	h := cr.head
	if h == nil {
		return nil // denial
	}
	requireBound := func(t ast.Term, what string) error {
		for _, v := range termVars(t) {
			if !bound[v] {
				return fmt.Errorf("engine: unsafe rule: head %s variable %s does not occur in the body", what, v)
			}
		}
		return nil
	}
	for _, c := range h.comps {
		if err := requireBound(c.term, "component"); err != nil {
			return err
		}
	}
	switch h.kind {
	case hFunc:
		if h.negated {
			// Deletion of function facts is supported; both args needed.
		}
		if h.fnArg != nil {
			if err := requireBound(h.fnArg, "function argument"); err != nil {
				return err
			}
		}
		return requireBound(h.fnMember, "function member")
	case hAssoc:
		if h.tupleVar != "" && !bound[h.tupleVar] {
			return fmt.Errorf("engine: unsafe rule: head tuple variable %s does not occur in the body", h.tupleVar)
		}
		return nil
	}
	// Classes.
	switch {
	case h.selfTerm != nil:
		if h.selfVar != "" && !bound[h.selfVar] {
			// Invention: legal only for positive heads (safety rule 1).
			if h.negated {
				return fmt.Errorf("engine: deletion head with unbound self variable %s", h.selfVar)
			}
			cr.inventive = true
			return nil
		}
		if h.selfVar == "" {
			if err := requireBound(h.selfTerm, "self"); err != nil {
				return err
			}
		}
	case h.tupleVar != "":
		if bound[h.tupleVar] {
			return nil // oid and values come from the binding
		}
		// §3.1 case a/b: C1(Y) <- C2(X) with Y unbound. Values are copied
		// from the single tuple variable ranging over a body class.
		if h.negated {
			return fmt.Errorf("engine: deletion head with unbound tuple variable %s", h.tupleVar)
		}
		var sources []struct{ pred, v string }
		for _, l := range cr.body {
			if l.kind == pkClass && !l.negated {
				for _, tv := range l.tupleVars {
					sources = append(sources, struct{ pred, v string }{l.pred, tv})
				}
			}
		}
		if len(sources) != 1 {
			return fmt.Errorf("engine: unsafe rule: head tuple variable %s does not occur in the body", h.tupleVar)
		}
		src := sources[0]
		if !schema.Compatible(types.Named{Name: h.pred}, types.Named{Name: src.pred}) {
			return fmt.Errorf("engine: classes %s and %s have incompatible types", h.pred, src.pred)
		}
		h.copyFrom = src.v
		if !schema.SameHierarchy(h.pred, src.pred) {
			cr.inventive = true // case a: copy with a new oid
		}
		// case b (same hierarchy): oid unified with the source object.
	default:
		// Class head with only component arguments: each firing denotes an
		// (existentially quantified) object — invention with the valuation-
		// domain dedup of Definition 7.
		if h.negated {
			return nil // deletion by attribute match
		}
		cr.inventive = true
	}
	return nil
}
