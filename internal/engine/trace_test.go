package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"logres/internal/obs"
)

// Tests of the evaluation tracing layer: the canonical event stream
// must be byte-identical across workers × shards configurations, the
// flight recorder must capture aborts (a panicking worker included),
// and the in-round guard check must trip mid-round with a guard.check
// event.

// A program exercising both evaluation operators: a semi-naive stratum
// (transitive closure) and an inventive stratum (one class object per
// closure target), so the trace covers round, firing, and invention
// events.
const traceSchema = `
classes REACHED = (v: integer);
associations
  EDGE = (src: integer, dst: integer);
  TC = (src: integer, dst: integer);
`

const traceRules = `
tc(src: X, dst: Y) <- edge(src: X, dst: Y).
tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
reached(self: S, v: Y) <- tc(src: 0, dst: Y).
`

// collectTracer records events for assertions. Safe for concurrent use
// (in-round guard trips can arrive from worker goroutines).
type collectTracer struct {
	mu     sync.Mutex
	events []obs.Event
}

func (c *collectTracer) Event(ev obs.Event) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

func (c *collectTracer) kinds() map[obs.Kind]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := map[obs.Kind]int{}
	for _, ev := range c.events {
		m[ev.Kind]++
	}
	return m
}

// canonicalTrace runs the trace program at one workers × shards
// configuration and returns the canonical JSONL stream.
func canonicalTrace(t *testing.T, workers, shards int) string {
	t.Helper()
	var buf bytes.Buffer
	opts := Options{MaxSteps: 10000, SemiNaive: true, Stratify: true,
		Workers: workers, Shards: shards, Tracer: obs.NewCanonicalJSONL(&buf)}
	p, err := tryBuild(traceSchema, traceRules, opts)
	if err != nil {
		t.Fatal(err)
	}
	counter := int64(0)
	if _, err := p.Run(chainEdgeFacts(12), &counter); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// The canonical event stream must be byte-identical across every
// workers × shards configuration — the trace extension of the engine's
// bit-identical-results contract.
func TestTraceDeterminismAcrossConfigs(t *testing.T) {
	want := canonicalTrace(t, 1, 1)
	if want == "" {
		t.Fatal("serial trace is empty")
	}
	for _, kind := range []string{`"kind":"round.end"`, `"kind":"rule.fire"`, `"kind":"oid.invent"`, `"kind":"stratum.begin"`} {
		if !strings.Contains(want, kind) {
			t.Fatalf("serial trace missing %s:\n%s", kind, want)
		}
	}
	for _, workers := range []int{1, 4} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("workers=%d/shards=%d", workers, shards), func(t *testing.T) {
				got := canonicalTrace(t, workers, shards)
				if got != want {
					t.Fatalf("canonical trace diverged from serial\nserial:\n%s\ngot:\n%s", want, got)
				}
			})
		}
	}
}

// The per-round delta curve recorded on Stats must also be
// configuration-independent (it is derived from the same boundaries the
// trace reports).
func TestDeltaCurveDeterministic(t *testing.T) {
	run := func(workers, shards int) []RoundDelta {
		p, err := tryBuild(edgeSchema, closureRules,
			Options{MaxSteps: 10000, SemiNaive: true, Stratify: true, Workers: workers, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		counter := int64(0)
		if _, err := p.Run(chainEdgeFacts(20), &counter); err != nil {
			t.Fatal(err)
		}
		return p.LastStats().DeltaCurve
	}
	want := run(1, 1)
	if len(want) == 0 {
		t.Fatal("serial run recorded no delta curve")
	}
	for _, cfg := range [][2]int{{1, 4}, {4, 1}, {4, 4}} {
		got := run(cfg[0], cfg[1])
		if len(got) != len(want) {
			t.Fatalf("workers=%d shards=%d: %d curve points, want %d", cfg[0], cfg[1], len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d shards=%d: curve[%d] = %+v, want %+v", cfg[0], cfg[1], i, got[i], want[i])
			}
		}
	}
}

// A flight recorder attached as the tracer must capture the abort event
// of a panicking worker and write its dump.
func TestFlightRecorderSurvivesWorkerPanic(t *testing.T) {
	testWorkerPanic = func(r *crule) {
		if strings.Contains(r.String(), "tc") {
			panic("poisoned rule body")
		}
	}
	defer func() { testWorkerPanic = nil }()

	fr := obs.NewFlightRecorder(64)
	var dump bytes.Buffer
	fr.SetDumpOnAbort(&dump)
	opts := Options{MaxSteps: 10000, SemiNaive: true, Stratify: true,
		Workers: 4, Shards: 4, Tracer: fr}
	p, err := tryBuild(edgeSchema, closureRules, opts)
	if err != nil {
		t.Fatal(err)
	}
	counter := int64(0)
	_, err = p.Run(chainEdgeFacts(16), &counter)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if fr.Dumps() != 1 {
		t.Fatalf("Dumps() = %d, want 1", fr.Dumps())
	}
	if !strings.Contains(dump.String(), "abort") || !strings.Contains(dump.String(), "flight recorder") {
		t.Fatalf("dump missing abort event:\n%s", dump.String())
	}
}

// The in-round check must stop a single fat round mid-flight: a
// cross-product rule derives facts far past the budget within round 0,
// so only the cooperative mid-round check can trip — surfacing the
// typed *BudgetError and a guard.check trace event.
func TestInRoundFactBudgetTrip(t *testing.T) {
	saved := inRoundCheckInterval
	inRoundCheckInterval = 16
	defer func() { inRoundCheckInterval = saved }()

	const crossRules = `same(a: X, b: Y) <- edge(src: X, dst: W), edge(src: Y, dst: Z).`
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ct := &collectTracer{}
			opts := Options{MaxSteps: 1 << 30, SemiNaive: true, Stratify: true,
				Workers: workers, Shards: 1, Budget: Budget{MaxFacts: 50}, Tracer: ct}
			p, err := tryBuild(edgeSchema, crossRules, opts)
			if err != nil {
				t.Fatal(err)
			}
			counter := int64(0)
			_, err = p.Run(chainEdgeFacts(100), &counter)
			var be *BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("err = %v (%T), want *BudgetError", err, err)
			}
			if be.Axis != AxisFacts {
				t.Fatalf("axis = %q, want %q", be.Axis, AxisFacts)
			}
			kinds := ct.kinds()
			if kinds[obs.KindGuardCheck] == 0 {
				t.Fatalf("no guard.check event emitted; kinds: %v", kinds)
			}
			if kinds[obs.KindAbort] != 1 {
				t.Fatalf("abort events = %d, want 1; kinds: %v", kinds[obs.KindAbort], kinds)
			}
		})
	}
}

// Cancelling the context from a tracer callback at a round boundary
// must abort inside the round through the cooperative check, not only
// at the next round boundary.
func TestInRoundCancellation(t *testing.T) {
	saved := inRoundCheckInterval
	inRoundCheckInterval = 16
	defer func() { inRoundCheckInterval = saved }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	canceler := tracerFunc(func(ev obs.Event) {
		if ev.Kind == obs.KindRoundBegin {
			cancel()
		}
	})
	const crossRules = `same(a: X, b: Y) <- edge(src: X, dst: W), edge(src: Y, dst: Z).`
	opts := Options{MaxSteps: 1 << 30, SemiNaive: true, Stratify: true, Workers: 1, Tracer: canceler}
	p, err := tryBuild(edgeSchema, crossRules, opts)
	if err != nil {
		t.Fatal(err)
	}
	counter := int64(0)
	_, err = p.RunContext(ctx, chainEdgeFacts(200), &counter)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *CanceledError", err, err)
	}
	// The cross product would derive ~40000 facts; a mid-round abort
	// leaves the stats far below that.
	if st := p.LastStats(); st.Abort != "canceled" {
		t.Fatalf("Stats.Abort = %q, want canceled", st.Abort)
	}
}

type tracerFunc func(obs.Event)

func (f tracerFunc) Event(ev obs.Event) { f(ev) }

// Explain must print the workers/shards lines only when the last run
// actually fanned out, and must attribute a budget abort to the rules
// of the aborted stratum.
func TestExplainWorkersAndAbortAttribution(t *testing.T) {
	p, err := tryBuild(edgeSchema, closureRules,
		Options{MaxSteps: 10000, SemiNaive: true, Stratify: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	counter := int64(0)
	if _, err := p.Run(chainEdgeFacts(8), &counter); err != nil {
		t.Fatal(err)
	}
	if out := p.Explain(); strings.Contains(out, "workers:") {
		t.Fatalf("serial Explain prints workers:\n%s", out)
	}

	p4, err := tryBuild(edgeSchema, closureRules,
		Options{MaxSteps: 10000, SemiNaive: true, Stratify: true, Workers: 4, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	counter = 0
	if _, err := p4.Run(chainEdgeFacts(8), &counter); err != nil {
		t.Fatal(err)
	}
	out := p4.Explain()
	if !strings.Contains(out, "workers: 4") || !strings.Contains(out, "shards: 4") {
		t.Fatalf("parallel Explain missing workers/shards:\n%s", out)
	}
	if !strings.Contains(out, "delta curve:") {
		t.Fatalf("Explain missing delta curve:\n%s", out)
	}

	pa, err := tryBuild(countingSchema, countingRules,
		Options{MaxSteps: 1 << 30, SemiNaive: true, Stratify: true, Budget: Budget{MaxFacts: 10}})
	if err != nil {
		t.Fatal(err)
	}
	counter = 0
	if _, err := pa.Run(NewFactSet(), &counter); err == nil {
		t.Fatal("divergent program terminated")
	}
	out = pa.Explain()
	if !strings.Contains(out, "aborted: facts]") {
		t.Fatalf("Explain firing table missing abort attribution:\n%s", out)
	}
}
