package engine

import (
	"strings"
	"testing"

	"logres/internal/value"
)

// Tests of the object-oriented half of the rule language: oid invention
// (Definitions 7–8), oid unification across generalization hierarchies
// (§3.1 cases a/b), isa propagation, object sharing, and o-value updates.

const uniSchema = `
domains
  NAME = string;
  COURSE = string;
classes
  PERSON = (name: NAME);
  STUDENT = (PERSON, school: string);
  PROFESSOR = (PERSON, course: COURSE);
  STUDENT isa PERSON;
  PROFESSOR isa PERSON;
associations
  ADVISES = (professor: PROFESSOR, student: STUDENT);
  ENROLLING = (name: NAME);
`

func TestInventionCreatesObjects(t *testing.T) {
	p := build(t, uniSchema, `
enrolling(name: "ann").
enrolling(name: "bob").
person(self: X, name: N) <- enrolling(name: N).
`)
	f := run(t, p)
	if got := f.Size("person"); got != 2 {
		t.Fatalf("person objects = %d, want 2", got)
	}
	// Distinct oids.
	oids := map[value.OID]bool{}
	for _, fact := range f.Facts("person") {
		if fact.OID.IsNil() {
			t.Fatal("invented nil oid")
		}
		oids[fact.OID] = true
	}
	if len(oids) != 2 {
		t.Fatalf("oids = %v", oids)
	}
}

func TestInventionIsIdempotentAcrossSteps(t *testing.T) {
	// The VD condition of Definition 7: once an object satisfying the
	// head exists, the rule does not re-invent. Without it this program
	// would create objects forever.
	p := build(t, uniSchema, `
enrolling(name: "ann").
person(self: X, name: N) <- enrolling(name: N).
enrolling(name: M) <- person(name: M).
`)
	f := run(t, p)
	if got := f.Size("person"); got != 1 {
		t.Fatalf("person objects = %d, want 1", got)
	}
}

func TestInventionWithoutSelfVar(t *testing.T) {
	// A class head with only component arguments invents an object per
	// distinct valuation (existential quantification).
	p := build(t, uniSchema, `
enrolling(name: "ann").
person(name: N) <- enrolling(name: N).
`)
	f := run(t, p)
	if got := f.Size("person"); got != 1 {
		t.Fatalf("person objects = %d, want 1", got)
	}
}

func TestIsaPropagationGeneratedRules(t *testing.T) {
	// Adding a student must propagate membership (same oid) to person.
	p := build(t, uniSchema, `
enrolling(name: "ann").
student(self: X, name: N, school: "polimi") <- enrolling(name: N).
`)
	f := run(t, p)
	if f.Size("student") != 1 || f.Size("person") != 1 {
		t.Fatalf("student=%d person=%d", f.Size("student"), f.Size("person"))
	}
	s := f.Facts("student")[0]
	pe := f.Facts("person")[0]
	if s.OID != pe.OID {
		t.Fatalf("isa propagation changed the oid: %v vs %v", s.OID, pe.OID)
	}
	if got, _ := pe.Tuple.Get("name"); got != value.Str("ann") {
		t.Fatalf("person projection = %v", pe.Tuple)
	}
	// The person projection must not contain the school component.
	if _, has := pe.Tuple.Get("school"); has {
		t.Fatalf("person fact leaked subclass attributes: %v", pe.Tuple)
	}
}

func TestSameHierarchyTupleVarSharesOID(t *testing.T) {
	// §3.1 case b: student(X) <- person(X) unifies the oids (and the rule
	// is legal because the classes are in one hierarchy).
	p := build(t, uniSchema, `
enrolling(name: "ann").
person(self: X, name: N) <- enrolling(name: N).
student(X) <- person(X).
`)
	f := run(t, p)
	if f.Size("student") != 1 {
		t.Fatalf("student = %d", f.Size("student"))
	}
	if f.Facts("student")[0].OID != f.Facts("person")[0].OID {
		t.Fatal("case b must unify oids")
	}
}

func TestDifferentHierarchyCopyInventsNewOID(t *testing.T) {
	// §3.1 case a: compatible classes in different hierarchies — the rule
	// C1(Y) <- C2(X) copies values under a fresh oid.
	src := `
classes
  A = (v: string);
  B = (v: string);
associations SEEDS = (v: string);
`
	p := build(t, src, `
seeds(v: "x").
a(self: X, v: V) <- seeds(v: V).
b(Y) <- a(X).
`)
	f := run(t, p)
	if f.Size("a") != 1 || f.Size("b") != 1 {
		t.Fatalf("a=%d b=%d", f.Size("a"), f.Size("b"))
	}
	av, bv := f.Facts("a")[0], f.Facts("b")[0]
	if av.OID == bv.OID {
		t.Fatal("case a must invent a fresh oid")
	}
	if x, _ := av.Tuple.Get("v"); x != value.Str("x") {
		t.Fatalf("a value = %v", av.Tuple)
	}
	if x, _ := bv.Tuple.Get("v"); x != value.Str("x") {
		t.Fatalf("case a must copy values: %v", bv.Tuple)
	}
}

func TestCrossHierarchySameVarRejected(t *testing.T) {
	// §3.1: C1(X) <- C2(X) is incorrect when the classes do not belong to
	// one generalization hierarchy.
	src := `
classes
  A = (v: string);
  B = (v: string);
`
	if _, err := tryBuild(src, `b(X) <- a(X).`, DefaultOptions()); err == nil ||
		!strings.Contains(err.Error(), "hierarch") {
		t.Fatalf("cross-hierarchy oid sharing accepted: %v", err)
	}
}

func TestExample34InterestingPair(t *testing.T) {
	// The interesting-pair example: routing through an association first
	// eliminates duplicates, so the class IP gets one object per distinct
	// pair even when several (E, M) witnesses exist.
	src := `
domains NAME = string;
associations
  EMP = (ename: NAME, works: string);
  DEPT = (dname: string, depmgr: NAME);
  PAIR = (employee: NAME, manager: NAME);
classes
  IP = PAIR;
`
	p := build(t, src, `
emp(ename: "smith", works: "d1").
emp(ename: "smith", works: "d2").
dept(dname: "d1", depmgr: "smith").
dept(dname: "d2", depmgr: "smith").

pair(employee: E, manager: M) <- emp(ename: E, works: D), dept(dname: D, depmgr: M), emp(ename: M).
ip(self: X, C) <- pair(C).
`)
	f := run(t, p)
	// Both (smith,d1) and (smith,d2) witness the same pair: the
	// association deduplicates, so exactly one IP object is created.
	if f.Size("pair") != 1 {
		t.Fatalf("pair = %v", tuples(f, "pair"))
	}
	if f.Size("ip") != 1 {
		t.Fatalf("ip objects = %d, want 1", f.Size("ip"))
	}
	ip := f.Facts("ip")[0]
	if e, _ := ip.Tuple.Get("employee"); e != value.Str("smith") {
		t.Fatalf("ip value = %v", ip.Tuple)
	}
}

func TestInventionPerValuationWithoutAssociation(t *testing.T) {
	// Without the association detour, invention happens once per
	// *distinct* valuation-domain element: two distinct department
	// witnesses still yield one object per distinct component vector
	// within a step only if the valuations coincide. Here they differ
	// (D is part of the body but not of the head), producing the
	// duplicate objects the paper warns about — inside a single step the
	// VD check only consults the previous state.
	src := `
domains NAME = string;
associations
  EMP = (ename: NAME, works: string);
  DEPT = (dname: string, depmgr: NAME);
classes
  IP2 = (employee: NAME, manager: NAME);
`
	p := build(t, src, `
emp(ename: "smith", works: "d1").
emp(ename: "smith", works: "d2").
dept(dname: "d1", depmgr: "smith").
dept(dname: "d2", depmgr: "smith").
ip2(employee: E, manager: M) <- emp(ename: E, works: D), dept(dname: D, depmgr: M), emp(ename: M).
`)
	f := run(t, p)
	if got := f.Size("ip2"); got != 2 {
		t.Fatalf("ip2 objects = %d, want 2 (one per valuation-domain element)", got)
	}
}

func TestOValueUpdateThroughCompose(t *testing.T) {
	// A class head with a bound self updates the object's o-value (the ⊕
	// right bias).
	src := `
classes C = (v: integer, w: integer);
associations SEED = (v: integer);
`
	schema := schemaOf(t, src)
	edb := seedEDB(t, schema, `seed(v: 1).`)
	// Note: the inventing rule's head must not mention w — updating w
	// would re-enable its VD check and it would invent forever (a real
	// property of the Appendix-B semantics: invention plus o-value
	// mutation of the same components does not terminate).
	p2 := build(t, src, `
c(self: X, v: V) <- seed(v: V).
c(self: X, w: 9) <- c(self: X, v: 1).
`)
	counter := int64(0)
	f, err := p2.Run(edb, &counter)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size("c") != 1 {
		t.Fatalf("c = %d objects", f.Size("c"))
	}
	fact := f.Facts("c")[0]
	if w, _ := fact.Tuple.Get("w"); w != value.Int(9) {
		t.Fatalf("o-value not updated: %v", fact.Tuple)
	}
	if v, _ := fact.Tuple.Get("v"); v != value.Int(1) {
		t.Fatalf("unmentioned component lost in update: %v", fact.Tuple)
	}
}

func TestObjectSharingThroughComponents(t *testing.T) {
	// school objects shared by professor objects through oid components.
	src := `
domains NAME = string;
classes
  SCHOOL = (sname: NAME);
  PROFESSOR = (pname: NAME, profschool: SCHOOL);
associations
  STAFF = (pname: NAME, sname: NAME);
  SEEDS = (sname: NAME);
  COLLEAGUES = (a: NAME, b: NAME);
`
	p := build(t, src, `
seeds(sname: "polimi").
staff(pname: "rossi", sname: "polimi").
staff(pname: "bianchi", sname: "polimi").
school(self: S, sname: N) <- seeds(sname: N).
professor(self: P, pname: N, profschool: S) <- staff(pname: N, sname: SN), school(self: S, sname: SN).
colleagues(a: N1, b: N2) <- professor(pname: N1, profschool: S), professor(pname: N2, profschool: S), N1 != N2.
`)
	f := run(t, p)
	if f.Size("school") != 1 || f.Size("professor") != 2 {
		t.Fatalf("school=%d professor=%d", f.Size("school"), f.Size("professor"))
	}
	if f.Size("colleagues") != 2 {
		t.Fatalf("colleagues = %v", tuples(f, "colleagues"))
	}
	// Both professors reference the same school oid.
	var refs []value.Value
	for _, fact := range f.Facts("professor") {
		r, _ := fact.Tuple.Get("profschool")
		refs = append(refs, r)
	}
	if !value.Equal(refs[0], refs[1]) {
		t.Fatalf("school not shared: %v", refs)
	}
}

func TestSelfVariableJoin(t *testing.T) {
	// Example 3.1's equivalent formulations: joining through tuple
	// variables and through explicit self variables give the same pairs.
	p := build(t, uniSchema, `
enrolling(name: "ann").
enrolling(name: "bob").
student(self: X, name: N, school: "s") <- enrolling(name: N).
professor(self: X, name: N, course: "db") <- enrolling(name: N).
advises(professor: X1, student: Y1) <- professor(self: X1, name: X), student(self: Y1, name: X).
`)
	f := run(t, p)
	if f.Size("advises") != 2 {
		t.Fatalf("advises = %v", tuples(f, "advises"))
	}
	// Components hold oids of the respective objects.
	for _, fact := range f.Facts("advises") {
		prof, _ := fact.Tuple.Get("professor")
		if _, ok := prof.(value.Ref); !ok {
			t.Fatalf("professor component is %T", prof)
		}
	}
}

func TestTupleVarJoinEquivalentToSelfJoin(t *testing.T) {
	p := build(t, uniSchema, `
enrolling(name: "ann").
student(self: X, name: N, school: "s") <- enrolling(name: N).
professor(self: X, name: N, course: "db") <- enrolling(name: N).
advises(X1, Y1) <- professor(X1, name: X), student(Y1, name: X).
`)
	f := run(t, p)
	if f.Size("advises") != 1 {
		t.Fatalf("advises = %v", tuples(f, "advises"))
	}
}

func TestPartialAttributeMatching(t *testing.T) {
	// "Not all the arguments of a predicate need to be present."
	p := build(t, uniSchema, `
enrolling(name: "ann").
student(self: X, name: N, school: "polimi") <- enrolling(name: N).
enrolling(name: S) <- student(school: S).
`)
	f := run(t, p)
	found := false
	for _, s := range tuples(f, "enrolling") {
		if s == `name="polimi"` {
			found = true
		}
	}
	if !found {
		t.Fatalf("partial match failed: %v", tuples(f, "enrolling"))
	}
}

func TestNilOIDLegalInClassComponent(t *testing.T) {
	src := `
domains NAME = string;
classes
  SCHOOL = (sname: NAME);
  PROF = (pname: NAME, profschool: SCHOOL);
associations SEEDS = (pname: NAME);
`
	p := build(t, src, `
seeds(pname: "rossi").
prof(self: P, pname: N, profschool: null) <- seeds(pname: N).
`)
	f := run(t, p)
	if f.Size("prof") != 1 {
		t.Fatalf("prof = %d", f.Size("prof"))
	}
}

func TestDeepHierarchyPropagation(t *testing.T) {
	src := `
classes
  A = (v: string);
  B = (A, w: string);
  C = (B, u: string);
  B isa A;
  C isa B;
associations SEEDS = (v: string);
`
	p := build(t, src, `
seeds(v: "x").
c(self: O, v: V, w: "w", u: "u") <- seeds(v: V).
`)
	f := run(t, p)
	if f.Size("a") != 1 || f.Size("b") != 1 || f.Size("c") != 1 {
		t.Fatalf("a=%d b=%d c=%d", f.Size("a"), f.Size("b"), f.Size("c"))
	}
	oid := f.Facts("c")[0].OID
	if f.Facts("a")[0].OID != oid || f.Facts("b")[0].OID != oid {
		t.Fatal("hierarchy propagation broke oid sharing")
	}
}

func TestClassDeletionRemovesMembership(t *testing.T) {
	src := `
classes C = (v: integer);
associations
  SEED = (v: integer);
  KILL = (v: integer);
`
	schema := schemaOf(t, src)
	edb := seedEDB(t, schema, `seed(v: 1). seed(v: 2). kill(v: 2).`)
	p := build(t, src, `
c(v: V) <- seed(v: V), not kill(v: V).
not c(v: V) <- kill(v: V).
`)
	counter := int64(0)
	f, err := p.Run(edb, &counter)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size("c") != 1 {
		t.Fatalf("c = %d objects", f.Size("c"))
	}
	if v, _ := f.Facts("c")[0].Tuple.Get("v"); v != value.Int(1) {
		t.Fatalf("wrong object survived: %v", f.Facts("c")[0])
	}
}

func TestToInstanceRoundTrip(t *testing.T) {
	p := build(t, uniSchema, `
enrolling(name: "ann").
student(self: X, name: N, school: "polimi") <- enrolling(name: N).
`)
	f := run(t, p)
	in := ToInstance(f, p.Schema(), int64(f.MaxOID()))
	if err := in.CheckConsistency(); err != nil {
		t.Fatalf("derived instance inconsistent: %v", err)
	}
	back, err := FromInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(f) {
		t.Fatal("instance round trip lost facts")
	}
}
