package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"logres/internal/ast"
	"logres/internal/guard"
	"logres/internal/instance"
	"logres/internal/value"
)

// evalCtx carries the per-step evaluation state: the frozen fact set the
// step matches against, the lazily built active domain, and the oid
// counter used by invention.
type evalCtx struct {
	p       *Program
	f       *FactSet
	ad      *activeDomain
	counter *int64

	// deltaIdx/delta implement semi-naive restriction: when deltaIdx ≥ 0,
	// the body literal at that (ordered) position matches only delta.
	deltaIdx int
	delta    *FactSet

	// reemit switches head instantiation to non-inflationary behaviour:
	// heads already satisfied re-emit the satisfying facts (so they
	// survive the step) instead of being suppressed.
	reemit bool

	stats *Stats

	// g, when non-nil, is the armed guard the coarse in-round check
	// polls every inRoundCheckInterval fact iterations, so a single
	// cross-product round cannot overrun its deadline or fact budget.
	// nil when no cancellation or budget axis is armed — the unguarded
	// hot path pays one nil check per fact.
	g     *guard.Guard
	round int
	steps int
	// emitted counts head instantiations in this context; the in-round
	// fact-axis check adds it to the (frozen) base count, since facts
	// derived mid-round live in private deltas the base set cannot see.
	emitted int
	// orchestrator marks contexts running on the evaluation's
	// coordinating goroutine: the only ones that invent oids, and the
	// only ones allowed to emit invention trace events.
	orchestrator bool
}

func (c *evalCtx) activeDom() *activeDomain {
	if c.ad == nil {
		c.ad = buildActiveDomain(c.p.schema, c.f)
	}
	return c.ad
}

// matchBody enumerates all valuations of the (ordered) body starting at
// literal i, extending e; yield is called once per complete valuation.
func (c *evalCtx) matchBody(body []resolvedLit, i int, e *env, yield func(*env) error) error {
	if i >= len(body) {
		return yield(e)
	}
	return c.matchLit(body[i], e, func(e2 *env) error {
		return c.matchBody(body, i+1, e2, yield)
	})
}

func (c *evalCtx) matchLit(l resolvedLit, e *env, yield func(*env) error) error {
	switch l.kind {
	case pkClass, pkAssoc:
		if l.negated {
			return c.matchNegated(l, e, yield)
		}
		source := c.f
		return c.matchPositive(l, source, e, yield)
	case pkCompare:
		return c.matchCompare(l, e, yield)
	case pkBuiltin:
		return c.evalBuiltin(l, e, yield)
	}
	return fmt.Errorf("engine: unhandled literal kind")
}

// matchPositive joins a positive predicate literal against its extension.
// When some component argument is already evaluable under the current
// bindings, the lookup goes through the fact set's component hash index
// instead of scanning the whole extension.
func (c *evalCtx) matchPositive(l resolvedLit, source *FactSet, e *env, yield func(*env) error) error {
	facts := c.candidateFacts(l, source, e)
	for _, fact := range facts {
		c.steps++
		if c.g != nil && c.steps%inRoundCheckInterval == 0 {
			if err := c.inRoundCheck(l); err != nil {
				return err
			}
		}
		e2 := e.clone()
		ok, err := c.matchFact(l, fact, e2)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := yield(e2); err != nil {
			return err
		}
	}
	return nil
}

// candidateFacts narrows the facts a literal can match: an evaluable self
// argument resolves through the oid map, an evaluable component argument
// through the component index; otherwise the full (cached, sorted)
// extension is scanned.
func (c *evalCtx) candidateFacts(l resolvedLit, source *FactSet, e *env) []Fact {
	bound := boundSet(e)
	if l.selfTerm != nil && evaluable(l.selfTerm, bound) {
		if v, err := evalTerm(l.selfTerm, e, c.f); err == nil {
			if ref, ok := v.(value.Ref); ok {
				if fact, ok := source.HasOID(l.pred, value.OID(ref)); ok {
					return []Fact{fact}
				}
				return nil
			}
		}
	}
	for _, comp := range l.comps {
		if !evaluable(comp.term, bound) {
			continue
		}
		if _, isWild := comp.term.(ast.Wildcard); isWild {
			continue
		}
		v, err := evalTerm(comp.term, e, c.f)
		if err != nil {
			continue
		}
		return source.FactsByComponent(l.pred, comp.label, v)
	}
	return source.Facts(l.pred)
}

// matchFact unifies one literal against one fact.
func (c *evalCtx) matchFact(l resolvedLit, fact Fact, e *env) (bool, error) {
	if l.selfTerm != nil {
		ok, err := matchTerm(l.selfTerm, value.Ref(fact.OID), e, c.f)
		if err != nil || !ok {
			return ok, err
		}
	}
	for _, comp := range l.comps {
		v, found := fact.Tuple.Get(comp.label)
		if !found {
			v = value.Null{}
		}
		ok, err := matchTerm(comp.term, v, e, c.f)
		if err != nil || !ok {
			return ok, err
		}
	}
	for _, tv := range l.tupleVars {
		if l.kind == pkClass {
			if !e.bindObject(tv, objBinding{class: l.pred, oid: fact.OID, tuple: fact.Tuple}) {
				return false, nil
			}
		} else {
			if !e.bindValue(tv, fact.Tuple) {
				return false, nil
			}
		}
	}
	return true, nil
}

// matchNegated handles negation: unbound pattern variables range over the
// active domain of their declared types (§2.1), then the literal succeeds
// iff no fact matches.
func (c *evalCtx) matchNegated(l resolvedLit, e *env, yield func(*env) error) error {
	var unbound []adVar
	for _, av := range l.adVars {
		if !e.bound(av.name) {
			unbound = append(unbound, av)
		}
	}
	var enumerate func(i int, e2 *env) error
	enumerate = func(i int, e2 *env) error {
		if i >= len(unbound) {
			absent, err := c.noFactMatches(l, e2)
			if err != nil {
				return err
			}
			if absent {
				return yield(e2)
			}
			return nil
		}
		dom := c.activeDom().values(unbound[i].key)
		for _, v := range dom {
			e3 := e2.clone()
			if !e3.bindValue(unbound[i].name, v) {
				continue
			}
			if err := enumerate(i+1, e3); err != nil {
				return err
			}
		}
		return nil
	}
	return enumerate(0, e)
}

func (c *evalCtx) noFactMatches(l resolvedLit, e *env) (bool, error) {
	for _, fact := range c.candidateFacts(l, c.f, e) {
		c.steps++
		if c.g != nil && c.steps%inRoundCheckInterval == 0 {
			if err := c.inRoundCheck(l); err != nil {
				return false, err
			}
		}
		probe := e.clone()
		ok, err := c.matchFact(l, fact, probe)
		if err != nil {
			return false, err
		}
		if ok {
			return false, nil
		}
	}
	return true, nil
}

func (c *evalCtx) matchCompare(l resolvedLit, e *env, yield func(*env) error) error {
	left, right := l.args[0], l.args[1]
	if l.pred == "=" && !l.negated {
		// Directional unification: evaluate the evaluable side, match the
		// other as a pattern.
		bound := boundSet(e)
		switch {
		case evaluable(left, bound):
			lv, err := evalTerm(left, e, c.f)
			if err != nil {
				return err
			}
			e2 := e.clone()
			ok, err := matchTerm(right, lv, e2, c.f)
			if err != nil {
				return err
			}
			if ok {
				return yield(e2)
			}
			return nil
		case evaluable(right, bound):
			rv, err := evalTerm(right, e, c.f)
			if err != nil {
				return err
			}
			e2 := e.clone()
			ok, err := matchTerm(left, rv, e2, c.f)
			if err != nil {
				return err
			}
			if ok {
				return yield(e2)
			}
			return nil
		default:
			return fmt.Errorf("engine: neither side of = is evaluable")
		}
	}
	lv, err := evalTerm(left, e, c.f)
	if err != nil {
		return err
	}
	rv, err := evalTerm(right, e, c.f)
	if err != nil {
		return err
	}
	holds, err := compareValues(l.pred, lv, rv)
	if err != nil {
		return err
	}
	if l.negated {
		holds = !holds
	}
	if holds {
		return yield(e)
	}
	return nil
}

func compareValues(op string, l, r value.Value) (bool, error) {
	switch op {
	case "=":
		return value.Equal(l, r), nil
	case "!=":
		return !value.Equal(l, r), nil
	}
	// Ordering comparisons need comparable kinds.
	lk, rk := l.Kind(), r.Kind()
	numericKinds := func(k value.Kind) bool { return k == value.KindInt || k == value.KindReal }
	if lk != rk && !(numericKinds(lk) && numericKinds(rk)) {
		return false, fmt.Errorf("engine: cannot compare %s with %s", lk, rk)
	}
	cmp := value.Compare(l, r)
	switch op {
	case "<":
		return cmp < 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">":
		return cmp > 0, nil
	case ">=":
		return cmp >= 0, nil
	}
	return false, fmt.Errorf("engine: unknown comparison %q", op)
}

func boundSet(e *env) map[string]bool {
	out := make(map[string]bool, len(e.m))
	for k := range e.m {
		out[k] = true
	}
	return out
}

// --- head instantiation -------------------------------------------------

// headEffect is one head firing: a fact to add or facts to delete.
type headEffect struct {
	add Fact
	ok  bool // false when the VD condition suppressed the firing
}

// instantiateHead builds the Δ contributions of one valuation.
func (c *evalCtx) instantiateHead(r *crule, e *env, dplus, dminus *FactSet) error {
	if c.stats != nil {
		c.stats.Firings[r.id]++
	}
	c.emitted++
	h := r.head
	if h.negated {
		return c.instantiateDeletion(r, e, dminus)
	}
	switch h.kind {
	case hFunc:
		fact, err := c.buildFuncFact(h, e)
		if err != nil {
			return err
		}
		if c.reemit || !c.f.Has(fact) {
			dplus.Add(fact)
		}
		return nil
	case hAssoc:
		fact, err := c.buildAssocFact(h, e)
		if err != nil {
			return err
		}
		if c.reemit || !c.f.Has(fact) {
			dplus.Add(fact)
		}
		return nil
	}
	return c.instantiateClassHead(r, e, dplus)
}

func (c *evalCtx) buildFuncFact(h *headSpec, e *env) (Fact, error) {
	var fields []value.Field
	if h.fnArg != nil {
		av, err := evalTerm(h.fnArg, e, c.f)
		if err != nil {
			return Fact{}, err
		}
		fields = append(fields, value.Field{Label: FuncArgLabel, Value: av})
	}
	mv, err := evalTerm(h.fnMember, e, c.f)
	if err != nil {
		return Fact{}, err
	}
	fields = append(fields, value.Field{Label: FuncMemberLabel, Value: mv})
	return Fact{Pred: h.pred, Tuple: value.NewTuple(fields...)}, nil
}

func (c *evalCtx) buildAssocFact(h *headSpec, e *env) (Fact, error) {
	var base value.Tuple
	if h.tupleVar != "" {
		b, _ := e.lookup(h.tupleVar)
		t, ok := b.coerce().(value.Tuple)
		if !ok {
			return Fact{}, fmt.Errorf("engine: head tuple variable %s is not bound to a tuple", h.tupleVar)
		}
		base = t
	}
	for _, comp := range h.comps {
		v, err := evalTerm(comp.term, e, c.f)
		if err != nil {
			return Fact{}, err
		}
		base = base.With(comp.label, v)
	}
	return Fact{Pred: h.pred, Tuple: instance.Project(base, h.eff)}, nil
}

// instantiateClassHead implements positive class heads: bound oids,
// hierarchy oid sharing, value copying, and oid invention with the
// valuation-domain condition of Definition 7.
func (c *evalCtx) instantiateClassHead(r *crule, e *env, dplus *FactSet) error {
	h := r.head
	// Evaluate the specified components.
	comps := make([]value.Field, 0, len(h.comps))
	for _, comp := range h.comps {
		v, err := evalTerm(comp.term, e, c.f)
		if err != nil {
			return err
		}
		comps = append(comps, value.Field{Label: comp.label, Value: v})
	}

	// Locate the source object (tuple variable or copy source). A tuple
	// variable bound to a plain tuple (an association tuple, as in the
	// interesting-pair example `ip(self: X, C) <- pair(C)`) supplies
	// component values without an oid.
	var source *objBinding
	if h.tupleVar != "" {
		if b, ok := e.lookup(h.tupleVar); ok {
			source = c.asObject(b)
			if source == nil {
				if t, isT := b.coerce().(value.Tuple); isT {
					source = &objBinding{tuple: t}
				}
			}
		}
	}
	if source == nil && h.copyFrom != "" {
		if b, ok := e.lookup(h.copyFrom); ok {
			source = c.asObject(b)
		}
	}

	// Determine the oid.
	var oid value.OID
	haveOID := false
	switch {
	case h.selfTerm != nil && (h.selfVar == "" || e.bound(h.selfVar)):
		v, err := evalTerm(h.selfTerm, e, c.f)
		if err != nil {
			return err
		}
		ref, ok := v.(value.Ref)
		if !ok {
			return fmt.Errorf("engine: self argument of %s is not an oid", h.pred)
		}
		oid, haveOID = value.OID(ref), true
	case source != nil && !r.inventive && !source.oid.IsNil():
		oid, haveOID = source.oid, true
	}

	// Assemble the o-value: source values (projected), overridden by the
	// explicit components, overlaid on the object's current value when the
	// oid is known.
	var base value.Tuple
	if haveOID {
		if cur, ok := c.f.HasOID(h.pred, oid); ok {
			base = cur.Tuple
		}
	}
	if source != nil {
		for _, f := range source.tuple.Fields() {
			if _, ok := h.eff.Get(f.Label); ok {
				base = base.With(f.Label, f.Value)
			}
		}
	}
	for _, f := range comps {
		base = base.With(f.Label, f.Value)
	}
	tuple := instance.Project(base, h.eff)

	if haveOID {
		fact := Fact{Pred: h.pred, IsClass: true, OID: oid, Tuple: tuple}
		// VD condition: suppress when the head is already satisfied. Under
		// the non-inflationary operator the (identical) fact is re-emitted
		// instead, so it survives the step.
		if cur, ok := c.f.HasOID(h.pred, oid); ok && headSatisfiedBy(h, comps, source, cur.Tuple) {
			if c.reemit {
				dplus.Add(cur)
			}
			return nil
		}
		dplus.Add(fact)
		return nil
	}

	// Invention (Definition 8 point b): suppress when some existing object
	// of the class already satisfies the head with these component values
	// (re-emit it under the non-inflationary operator).
	for _, fact := range c.f.Facts(h.pred) {
		if headSatisfiedBy(h, comps, source, fact.Tuple) {
			if c.reemit {
				dplus.Add(fact)
			}
			return nil
		}
	}
	// One fresh oid per valuation-domain element.
	*c.counter++
	oid = value.OID(*c.counter)
	if c.stats != nil {
		c.stats.Invented++
	}
	c.traceInvent(r, h.pred, int64(oid))
	dplus.Add(Fact{Pred: h.pred, IsClass: true, OID: oid, Tuple: tuple})
	return nil
}

// headSatisfiedBy reports whether an existing o-value satisfies the head's
// specified components (and copied source components).
func headSatisfiedBy(h *headSpec, comps []value.Field, source *objBinding, existing value.Tuple) bool {
	for _, f := range comps {
		got, ok := existing.Get(f.Label)
		if !ok || !value.Equal(got, f.Value) {
			return false
		}
	}
	if source != nil {
		specified := map[string]bool{}
		for _, f := range comps {
			specified[f.Label] = true
		}
		for _, f := range source.tuple.Fields() {
			if specified[f.Label] {
				continue
			}
			if _, inEff := h.eff.Get(f.Label); !inEff {
				continue
			}
			got, ok := existing.Get(f.Label)
			if !ok || !value.Equal(got, f.Value) {
				return false
			}
		}
	}
	return true
}

// asObject resolves a binding to an object, looking the o-value up in the
// fact set when only the oid is known.
func (c *evalCtx) asObject(b binding) *objBinding {
	if b.obj != nil {
		return b.obj
	}
	if r, ok := b.val.(value.Ref); ok {
		oid := value.OID(r)
		for _, p := range c.f.Preds() {
			if fact, ok := c.f.HasOID(p, oid); ok {
				return &objBinding{class: p, oid: oid, tuple: fact.Tuple}
			}
		}
		return &objBinding{oid: oid}
	}
	return nil
}

// instantiateDeletion computes Δ− facts for a negated head: every current
// fact matching the head's bound oid/components is deleted.
func (c *evalCtx) instantiateDeletion(r *crule, e *env, dminus *FactSet) error {
	h := r.head
	if h.kind == hFunc {
		target, err := c.buildFuncFact(h, e)
		if err != nil {
			return err
		}
		if c.f.Has(target) {
			dminus.Add(target)
		}
		return nil
	}
	// Evaluate specified components.
	comps := make([]value.Field, 0, len(h.comps))
	for _, comp := range h.comps {
		v, err := evalTerm(comp.term, e, c.f)
		if err != nil {
			return err
		}
		comps = append(comps, value.Field{Label: comp.label, Value: v})
	}
	var wantOID value.OID
	haveOID := false
	if h.kind == hClass {
		switch {
		case h.selfTerm != nil:
			v, err := evalTerm(h.selfTerm, e, c.f)
			if err != nil {
				return err
			}
			if ref, ok := v.(value.Ref); ok {
				wantOID, haveOID = value.OID(ref), true
			}
		case h.tupleVar != "":
			if b, ok := e.lookup(h.tupleVar); ok {
				if obj := c.asObject(b); obj != nil {
					wantOID, haveOID = obj.oid, true
				}
			}
		}
	}
	var wantTuple value.Tuple
	haveTuple := false
	if h.kind == hAssoc && h.tupleVar != "" {
		if b, ok := e.lookup(h.tupleVar); ok {
			if t, isT := b.coerce().(value.Tuple); isT {
				wantTuple, haveTuple = instance.Project(t, h.eff), true
			}
		}
	}
	for _, fact := range c.f.Facts(h.pred) {
		if haveOID && fact.OID != wantOID {
			continue
		}
		if haveTuple && fact.Tuple.Key() != wantTuple.Key() {
			continue
		}
		matches := true
		for _, f := range comps {
			got, ok := fact.Tuple.Get(f.Label)
			if !ok || !value.Equal(got, f.Value) {
				matches = false
				break
			}
		}
		if matches {
			dminus.Add(fact)
		}
	}
	return nil
}

// --- the one-step inflationary operator and fixpoints --------------------

// oneStep applies the one-step inflationary operator of Appendix B to f
// with the given rules:
//
//	VAR' = ((F ⊕ Δ+) − Δ−) ⊕ (F ∩ Δ+ ∩ Δ−)
//
// It returns the next fact set and whether anything changed. step is
// the fixpoint round, used by the in-round guard check and trace
// events.
func (p *Program) oneStep(step int, rules []*crule, f *FactSet, counter *int64) (*FactSet, bool, error) {
	c := &evalCtx{p: p, f: f, counter: counter, deltaIdx: -1, stats: p.stats,
		g: p.armedGuard(), round: step, orchestrator: true}
	dplus, dminus := NewFactSet(), NewFactSet()
	for _, r := range rules {
		yield := func(e *env) error {
			return c.instantiateHead(r, e, dplus, dminus)
		}
		if r.inventive {
			// Valuation-domain identity (Definition 7): two fact-level
			// matches inducing the same substitution are ONE valuation-
			// domain element — invention fires once per b(r). For non-
			// inventive rules duplicate valuations are harmless (the head
			// fact is identical), so the dedup is skipped.
			seen := map[string]bool{}
			inner := yield
			yield = func(e *env) error {
				k := e.key(r.vars)
				if seen[k] {
					return nil
				}
				seen[k] = true
				return inner(e)
			}
		}
		if err := c.matchBody(r.body, 0, newEnv(), yield); err != nil {
			return nil, false, fmt.Errorf("%w (in rule %s)", err, r)
		}
	}
	if dplus.TotalSize() == 0 && dminus.TotalSize() == 0 {
		return f, false, nil
	}
	// keep = F ∩ Δ+ ∩ Δ−: facts both re-derived and deleted in this step
	// that were already present survive.
	keep := NewFactSet()
	for _, p := range dminus.Preds() {
		for _, fact := range dminus.Facts(p) {
			if f.Has(fact) && dplus.Has(fact) {
				keep.Add(fact)
			}
		}
	}
	next := f.Clone()
	next.Merge(dplus)
	for _, p := range dminus.Preds() {
		for _, fact := range dminus.Facts(p) {
			next.Remove(fact)
		}
	}
	next.Merge(keep)
	return next, !next.Equal(f), nil
}

// fixpoint iterates oneStep to convergence.
func (p *Program) fixpoint(rules []*crule, f *FactSet, counter *int64) (*FactSet, error) {
	for step := 0; ; step++ {
		if err := p.checkRound(step, f, "the inflationary semantics does not guarantee termination"); err != nil {
			return nil, err
		}
		p.traceRoundBegin(step)
		start := p.traceNow()
		var (
			next    *FactSet
			changed bool
			err     error
		)
		if p.opts.Workers > 1 {
			next, changed, err = p.oneStepParallel(step, rules, f, counter)
		} else {
			next, changed, err = p.oneStep(step, rules, f, counter)
		}
		if err != nil {
			return nil, err
		}
		if p.stats != nil {
			p.stats.Steps++
		}
		p.traceRoundEnd(step, next.TotalSize()-f.TotalSize(), next.TotalSize(), start)
		if !changed {
			return next, nil
		}
		f = next
	}
}

// Run evaluates the program over the extensional fact set under the
// deterministic inflationary semantics, stratum by stratum when the
// program is stratified. counter is the oid-invention counter (advanced in
// place). Cancellation comes from Options.Ctx; RunContext overrides it.
func (p *Program) Run(f0 *FactSet, counter *int64) (*FactSet, error) {
	return p.RunContext(p.opts.Ctx, f0, counter)
}

// RunContext is Run under an explicit cancellation context: the context
// and the Options.Budget axes are checked between fixpoint rounds, and
// an abort surfaces as *CanceledError / *BudgetError attributing the
// stratum, round, and resource counts. The input fact set is never
// mutated, so an aborted evaluation leaves the caller's state intact.
func (p *Program) RunContext(ctx context.Context, f0 *FactSet, counter *int64) (*FactSet, error) {
	return p.RunFrom(ctx, 0, f0, counter)
}

// RunFrom is RunContext starting at stratum index from: the strata below
// from are taken as already materialized inside f0, and only the strata
// at index ≥ from are evaluated on top of it. The incremental maintainer
// uses it to recompute the ineligible suffix of a stratification over an
// incrementally maintained prefix; RunFrom(ctx, 0, f0, counter) is
// exactly RunContext. A from beyond the last stratum evaluates nothing
// (the oid counter is still clamped to f0's maximum oid, as every run
// does before its first stratum).
func (p *Program) RunFrom(ctx context.Context, from int, f0 *FactSet, counter *int64) (*FactSet, error) {
	p.stats = newStats()
	p.stats.Strata = len(p.strata)
	p.stats.Workers = p.opts.Workers
	p.lastFirings = nil
	p.guard = guard.New(ctx, p.opts.Budget, f0.TotalSize())
	p.traceEvalBegin(f0)
	start := p.traceNow()
	f, err := p.runGuarded(from, f0, counter)
	if err != nil {
		p.stats.recordAbort(err)
		p.traceAbort(err)
		return f, err
	}
	p.traceEvalEnd(f, start)
	return f, nil
}

func (p *Program) runGuarded(from int, f0 *FactSet, counter *int64) (*FactSet, error) {
	// An upfront check so a canceled context or exceeded deadline aborts
	// even a run with no strata (a rule-free program never reaches a
	// per-round check).
	if g := p.guard; g.Active() {
		if err := g.Check(0, f0.TotalSize, 0); err != nil {
			return nil, err
		}
	}
	if p.opts.NonInflationary {
		p.guard.SetStratum(-1)
		return p.runNoninflationary(f0, counter)
	}
	if m := int64(f0.MaxOID()); m > *counter {
		*counter = m
	}
	f := f0.Clone()
	for i := from; i < len(p.strata); i++ {
		stratum := p.strata[i]
		p.guard.SetStratum(i)
		var err error
		if p.opts.SemiNaive && stratumSemiNaiveEligible(stratum) {
			p.stats.SemiNaiveStrata++
			if vs, ok := p.vecPlan(stratum); ok {
				// Columnar path: same round structure, same results;
				// worker/shard counts do not apply (the kernels are
				// batch-at-a-time), so determinism is trivial here.
				p.stats.VectorizedStrata++
				p.traceStratumBegin(i, stratum, "semi-naive (vectorized)")
				f, err = p.semiNaiveVectorized(vs, f, counter)
			} else {
				p.traceStratumBegin(i, stratum, "semi-naive")
				f, err = p.semiNaive(stratum, f, counter)
			}
		} else {
			p.traceStratumBegin(i, stratum, "one-step inflationary")
			f, err = p.fixpoint(stratum, f, counter)
		}
		if err != nil {
			return nil, err
		}
		p.traceStratumEnd(i, f)
	}
	return f, nil
}

// CheckDenials evaluates the passive constraints (rules with empty heads,
// §4.2) against a fact set and reports every violated denial.
func (p *Program) CheckDenials(f *FactSet) error {
	var errs []error
	c := &evalCtx{p: p, f: f, counter: new(int64), deltaIdx: -1}
	for _, d := range p.denials {
		violated := false
		err := c.matchBody(d.body, 0, newEnv(), func(*env) error {
			violated = true
			return errStopEnum
		})
		if err != nil && !errors.Is(err, errStopEnum) {
			return err
		}
		if violated {
			errs = append(errs, fmt.Errorf("engine: integrity violation: %s", d))
		}
	}
	return errors.Join(errs...)
}

var errStopEnum = errors.New("stop enumeration")

// Answer is the result of a goal: variable names and deduplicated rows of
// their bindings, in deterministic order.
type Answer struct {
	Vars []string
	Rows [][]value.Value
}

// Query evaluates a conjunctive goal against a fact set and returns the
// bindings of the goal's variables.
func (p *Program) Query(f *FactSet, goal []ast.Literal) (*Answer, error) {
	var body []resolvedLit
	for _, g := range goal {
		rl, err := resolveLiteral(p.schema, g)
		if err != nil {
			return nil, err
		}
		body = append(body, rl)
	}
	cr := &crule{src: &ast.Rule{Body: goal}, body: body}
	vt, err := inferVarTypes(p.schema, cr)
	if err != nil {
		return nil, err
	}
	if _, err := orderBody(cr, vt); err != nil {
		return nil, err
	}
	vars := ast.VarSet(goal)
	ans := &Answer{Vars: vars}
	seen := map[string]bool{}
	c := &evalCtx{p: p, f: f, counter: new(int64), deltaIdx: -1}
	err = c.matchBody(cr.body, 0, newEnv(), func(e *env) error {
		row := make([]value.Value, len(vars))
		for i, v := range vars {
			if b, ok := e.lookup(v); ok {
				row[i] = b.coerce()
			} else {
				row[i] = value.Null{}
			}
		}
		key := rowKey(row)
		if !seen[key] {
			seen[key] = true
			ans.Rows = append(ans.Rows, row)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(ans.Rows, func(i, j int) bool { return rowKey(ans.Rows[i]) < rowKey(ans.Rows[j]) })
	return ans, nil
}

func rowKey(row []value.Value) string {
	k := ""
	for _, v := range row {
		k += v.Key() + "\x00"
	}
	return k
}
