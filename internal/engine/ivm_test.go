package engine

import (
	"math/rand"
	"testing"

	"logres/internal/value"
)

// Engine-level differential tests of the incremental maintainer: after
// every committed base delta the maintained full set must equal a
// from-scratch evaluation of the same program over the same base, and
// the reported ViewDelta must be exactly the difference between the
// previous and the next full set.

func ivmEdge(a, b int) Fact {
	return Fact{Pred: "edge", Tuple: value.NewTuple(
		value.Field{Label: "src", Value: value.Int(int64(a))},
		value.Field{Label: "dst", Value: value.Int(int64(b))},
	)}
}

func ivmNode(n int) Fact {
	return Fact{Pred: "node", Tuple: value.NewTuple(
		value.Field{Label: "n", Value: value.Int(int64(n))},
	)}
}

const ivmSchema = `
associations
  NODE = (n: integer);
  EDGE = (src: integer, dst: integer);
  TC = (src: integer, dst: integer);
  SAME = (a: integer, b: integer);
  UNREACH = (a: integer, b: integer);
`

// ivmPrograms pairs a rule set with the maintenance split it must get.
var ivmPrograms = []struct {
	name       string
	rules      string
	wantPrefix int // eligible strata
	wantTotal  int
}{
	{
		// One non-recursive stratum: counting, with two rules deriving
		// overlapping facts (per-fact support counts above 1).
		name: "counting",
		rules: `
same(a: X, b: Y) <- edge(src: X, dst: Y), edge(src: Y, dst: X).
same(a: X, b: X) <- node(n: X).
`,
		wantPrefix: 1,
		wantTotal:  1,
	},
	{
		// Recursive closure: DRed delete/rederive.
		name: "closure",
		rules: `
tc(src: X, dst: Y) <- edge(src: X, dst: Y).
tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
`,
		wantPrefix: 1,
		wantTotal:  1,
	},
	{
		// Eligible closure prefix plus a negation stratum, which is
		// ineligible and recomputed as the suffix.
		name: "mixed-fallback",
		rules: `
tc(src: X, dst: Y) <- edge(src: X, dst: Y).
tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
unreach(a: X, b: Y) <- node(n: X), node(n: Y), not tc(src: X, dst: Y).
`,
		wantPrefix: 1,
		wantTotal:  2,
	},
}

// randomCommit mutates the master base set and returns the *net* delta
// it applied — disjoint add and remove sets, the shape a commit's
// removes-then-adds replay carries.
func randomCommit(r *rand.Rand, base *FactSet, n int) (adds, removes []Fact) {
	pre := base.Clone()
	steps := r.Intn(4) + 1
	for i := 0; i < steps; i++ {
		f := ivmEdge(r.Intn(n), r.Intn(n))
		if r.Intn(3) == 0 {
			f = ivmNode(r.Intn(n))
		}
		// Deletion-heavy: half the steps try to remove.
		if r.Intn(2) == 0 && base.Has(f) {
			base.Remove(f)
		} else {
			base.Add(f)
		}
	}
	for _, p := range base.Preds() {
		for _, f := range base.Facts(p) {
			if !pre.Has(f) {
				adds = append(adds, f)
			}
		}
	}
	for _, p := range pre.Preds() {
		for _, f := range pre.Facts(p) {
			if !base.Has(f) {
				removes = append(removes, f)
			}
		}
	}
	return adds, removes
}

func TestMaintainerDifferential(t *testing.T) {
	for _, tc := range ivmPrograms {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			maintProg, err := tryBuild(ivmSchema, tc.rules, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			scratchProg, err := tryBuild(ivmSchema, tc.rules, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(0); seed < 6; seed++ {
				r := rand.New(rand.NewSource(seed))
				n := 6
				base := randomEdgeFacts(n, 10, seed)
				for i := 0; i < n; i++ {
					base.Add(ivmNode(i))
				}
				e0 := base.Clone()
				e0.Freeze()
				m, err := NewMaintainer(maintProg, e0, 0)
				if err != nil {
					t.Fatal(err)
				}
				if prefix, total := m.EligibleStrata(); prefix != tc.wantPrefix || total != tc.wantTotal {
					t.Fatalf("eligible strata = %d/%d, want %d/%d", prefix, total, tc.wantPrefix, tc.wantTotal)
				}
				for commit := 0; commit < 12; commit++ {
					adds, removes := randomCommit(r, base, n)
					newE := base.Clone()
					newE.Freeze()
					prevFull := m.Full()
					vd, err := m.Update(adds, removes, newE, 0)
					if err != nil {
						t.Fatalf("seed %d commit %d: %v", seed, commit, err)
					}
					var c int64
					scratch, err := scratchProg.Run(base, &c)
					if err != nil {
						t.Fatal(err)
					}
					if !m.Full().Equal(scratch) {
						t.Fatalf("seed %d commit %d: incremental full set diverged from scratch", seed, commit)
					}
					if got, want := m.Counter(), c; got != want {
						t.Fatalf("seed %d commit %d: counter %d, want %d", seed, commit, got, want)
					}
					// ViewDelta exactness: old full + delta == new full.
					replay := prevFull.Clone()
					for _, f := range vd.Removes {
						if !replay.Remove(f) {
							t.Fatalf("seed %d commit %d: delta removes absent fact %s", seed, commit, f)
						}
					}
					for _, f := range vd.Adds {
						if !replay.Add(f) {
							t.Fatalf("seed %d commit %d: delta adds present fact %s", seed, commit, f)
						}
					}
					if !replay.Equal(m.Full()) {
						t.Fatalf("seed %d commit %d: ViewDelta does not reproduce the new full set", seed, commit)
					}
				}
			}
		})
	}
}

// TestMaintainerDeleteRederive pins the DRed rederivation case: removing
// one of two parallel support paths must keep the closure fact alive.
func TestMaintainerDeleteRederive(t *testing.T) {
	prog, err := tryBuild(ivmSchema, `
tc(src: X, dst: Y) <- edge(src: X, dst: Y).
tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
`, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	base := NewFactSet()
	// Two paths 0→3: via 1 and via 2.
	for _, e := range [][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 3}} {
		base.Add(ivmEdge(e[0], e[1]))
	}
	e0 := base.Clone()
	e0.Freeze()
	m, err := NewMaintainer(prog, e0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tc03 := Fact{Pred: "tc", Tuple: value.NewTuple(
		value.Field{Label: "src", Value: value.Int(0)},
		value.Field{Label: "dst", Value: value.Int(3)},
	)}
	if !m.Full().Has(tc03) {
		t.Fatal("closure fact missing before delete")
	}
	// Remove the 0→1→3 path: tc(0,3) must survive via 0→2→3, and the
	// delta must not report it as removed.
	base.Remove(ivmEdge(0, 1))
	newE := base.Clone()
	newE.Freeze()
	vd, err := m.Update(nil, []Fact{ivmEdge(0, 1)}, newE, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Full().Has(tc03) {
		t.Fatal("closure fact lost despite a surviving support path")
	}
	for _, f := range vd.Removes {
		if f.Key() == tc03.Key() {
			t.Fatal("ViewDelta reports the rederived fact as removed")
		}
	}
	// Remove the second path: now it must go.
	base.Remove(ivmEdge(2, 3))
	newE = base.Clone()
	newE.Freeze()
	vd, err = m.Update(nil, []Fact{ivmEdge(2, 3)}, newE, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Full().Has(tc03) {
		t.Fatal("closure fact survived with no support path")
	}
	found := false
	for _, f := range vd.Removes {
		if f.Key() == tc03.Key() {
			found = true
		}
	}
	if !found {
		t.Fatal("ViewDelta misses the genuinely deleted fact")
	}
}

// TestMaintainerIneligible pins the fallback classification: oid
// invention and deletions force the suffix from stratum zero.
func TestMaintainerIneligible(t *testing.T) {
	const schema = `
classes
  PERSON = (name: string);
associations
  P = (n: integer);
`
	for _, rules := range []string{
		"person(name: \"x\") <- p(n: X).",  // invention
		"not p(n: X) <- p(n: X), X > 3.",   // deletion head
	} {
		prog, err := tryBuild(schema, rules, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		e := NewFactSet()
		e.Add(Fact{Pred: "p", Tuple: value.NewTuple(value.Field{Label: "n", Value: value.Int(1)})})
		e.Freeze()
		m, err := NewMaintainer(prog, e, 0)
		if err != nil {
			t.Fatal(err)
		}
		if prefix, _ := m.EligibleStrata(); prefix != 0 {
			t.Fatalf("rules %q: eligible prefix = %d, want 0", rules, prefix)
		}
		// The degenerate maintainer must still track the full set.
		var c int64
		scratch, err := prog.Run(e, &c)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Full().Equal(scratch) {
			t.Fatal("cached full set diverged from scratch")
		}
	}
}
