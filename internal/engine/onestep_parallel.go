package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Parallel application of the general one-step operator. Non-eligible
// strata — deletions, oid invention, class heads — cannot use semi-naive
// deltas, but their matching passes are still pure reads of the step's fact
// set: rules only write through instantiateHead. The parallel operator
// therefore freezes f, fans the per-rule (chunked) matching passes across
// the worker pool, and splits instantiation:
//
//   - rules whose heads are pure additions of value-level facts (positive
//     association/function heads of non-inventive rules) instantiate
//     directly into private Δ+ sets, merged in task order;
//   - rules that may invent oids, overwrite o-values (class heads), or
//     delete (negated heads) only record their matched valuations; the
//     valuations are replayed serially in task order against the shared
//     oid counter and Δ sets, replicating the serial effect order exactly.
//
// Matching enumerates frozen extensions in key order either way and all
// head instantiations read only f (never Δ+/Δ−), so the step result —
// including invented oid numbering — is bit-identical to oneStep.

// osTask is one parallel matching pass: one rule and optionally a chunk of
// the facts its first body literal ranges over.
type osTask struct {
	rule    *crule
	chunk   []Fact
	chunked bool
	pure    bool
}

// osResult is what one task produced: a private Δ+ (pure tasks) or the
// matched valuations in enumeration order (effectful tasks).
type osResult struct {
	dplus *FactSet
	envs  []*env
	stats *Stats
}

// pureHead reports whether a rule's head instantiation is a pure addition
// of value-level facts: no deletion, no oid invention, and no class head
// (class heads may overwrite o-values through ⊕ or fall into invention when
// the source oid is nil, so they are sequenced).
func pureHead(r *crule) bool {
	return r.head != nil && !r.head.negated && !r.inventive &&
		(r.head.kind == hAssoc || r.head.kind == hFunc)
}

// oneStepTasks builds the matching passes of one parallel step in rule
// order (chunks in extension order), so walking tasks in order replicates
// the serial valuation order.
func oneStepTasks(rules []*crule, f *FactSet, workers int) []osTask {
	var tasks []osTask
	for _, r := range rules {
		pure := pureHead(r)
		if l0, ok := chunkableFirst(r); ok {
			facts := f.Facts(l0.pred)
			for _, b := range chunkBounds(len(facts), workers) {
				tasks = append(tasks, osTask{rule: r, chunk: facts[b[0]:b[1]], chunked: true, pure: pure})
			}
			continue
		}
		tasks = append(tasks, osTask{rule: r, pure: pure})
	}
	return tasks
}

// runOSTask evaluates one matching pass. The context's fact set must be
// frozen. Pure tasks instantiate into a private Δ+; effectful tasks record
// the valuations for serial replay (head instantiation reads only f, so
// recording then replaying yields the same effects as instantiating
// in-line).
func (c *evalCtx) runOSTask(t osTask, res *osResult) error {
	r := t.rule
	var yield func(*env) error
	if t.pure {
		res.dplus = NewFactSet()
		dminus := NewFactSet() // defensively unused: pure heads never delete
		yield = func(e *env) error {
			return c.instantiateHead(r, e, res.dplus, dminus)
		}
	} else {
		yield = func(e *env) error {
			res.envs = append(res.envs, e)
			return nil
		}
	}
	if !t.chunked {
		return c.matchBody(r.body, 0, newEnv(), yield)
	}
	for _, fact := range t.chunk {
		e := newEnv()
		ok, err := c.matchFact(r.body[0], fact, e)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := c.matchBody(r.body, 1, e, yield); err != nil {
			return err
		}
	}
	return nil
}

// oneStepParallel is oneStep with the matching passes on the worker pool;
// the result is bit-identical to the serial operator. step is the fixpoint
// round, used only to attribute aborts.
func (p *Program) oneStepParallel(step int, rules []*crule, f *FactSet, counter *int64) (*FactSet, bool, error) {
	workers := p.opts.Workers
	wasFrozen := f.Frozen()
	if !wasFrozen {
		f.FreezeParallel(workers)
	}
	thaw := func() {
		if !wasFrozen {
			f.Thaw()
		}
	}

	// Pre-build the shared active domain when any negation enumerates it,
	// so the tasks don't each rebuild it privately.
	var ad *activeDomain
	for _, r := range rules {
		for _, l := range r.body {
			if l.negated && len(l.adVars) > 0 {
				ad = buildActiveDomain(p.schema, f)
				break
			}
		}
		if ad != nil {
			break
		}
	}

	tasks := oneStepTasks(rules, f, workers)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	results := make([]osResult, len(tasks))
	errs := make([]error, len(tasks))
	base := *counter
	g := p.curGuard()
	var nextTask int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&nextTask, 1)
				if i >= int64(len(tasks)) || g.TaskAborted() {
					return
				}
				t := tasks[i]
				var st *Stats
				if t.pure && p.stats != nil {
					st = newStats()
				}
				localCounter := base
				c := &evalCtx{p: p, f: f, ad: ad, counter: &localCounter, deltaIdx: -1, stats: st,
					g: p.armedGuard(), round: step}
				errs[i] = p.runShielded(t.rule, func() error { return c.runOSTask(t, &results[i]) })
				results[i].stats = st
			}
		}()
	}
	wg.Wait()
	for i := range tasks {
		if errs[i] != nil {
			thaw()
			return nil, false, errs[i]
		}
	}
	if g.TaskAborted() {
		// Cancellation stopped workers mid-step without a task error;
		// surface it rather than sequencing a partial valuation set.
		if err := g.Check(step, f.TotalSize, p.invented()); err != nil {
			thaw()
			return nil, false, err
		}
	}

	// Sequence the effects in task order: pure Δ+ sets merge as blocks
	// (value-level facts — no ⊕ interference with the class facts the
	// replayed rules add); recorded valuations replay against the shared
	// counter with the per-rule valuation-domain dedup spanning all chunks,
	// exactly as the serial operator's wrapped yield does.
	dplus, dminus := NewFactSet(), NewFactSet()
	cseq := &evalCtx{p: p, f: f, ad: ad, counter: counter, deltaIdx: -1, stats: p.stats,
		g: p.armedGuard(), round: step, orchestrator: true}
	seen := map[int]map[string]bool{}
	for i, t := range tasks {
		if t.pure {
			res := results[i]
			dplus.Merge(res.dplus)
			if res.stats != nil && p.stats != nil {
				for id, n := range res.stats.Firings {
					p.stats.Firings[id] += n
				}
			}
			continue
		}
		r := t.rule
		for _, e := range results[i].envs {
			if r.inventive {
				sm := seen[r.id]
				if sm == nil {
					sm = map[string]bool{}
					seen[r.id] = sm
				}
				k := e.key(r.vars)
				if sm[k] {
					continue
				}
				sm[k] = true
			}
			if err := cseq.instantiateHead(r, e, dplus, dminus); err != nil {
				thaw()
				return nil, false, fmt.Errorf("%w (in rule %s)", err, r)
			}
		}
	}

	if dplus.TotalSize() == 0 && dminus.TotalSize() == 0 {
		thaw()
		return f, false, nil
	}
	// keep = F ∩ Δ+ ∩ Δ−: facts both re-derived and deleted in this step
	// that were already present survive.
	keep := NewFactSet()
	for _, pr := range dminus.Preds() {
		for _, fact := range dminus.Facts(pr) {
			if f.Has(fact) && dplus.Has(fact) {
				keep.Add(fact)
			}
		}
	}
	next := f.Clone()
	next.Merge(dplus)
	for _, pr := range dminus.Preds() {
		for _, fact := range dminus.Facts(pr) {
			next.Remove(fact)
		}
	}
	next.Merge(keep)
	changed := !next.Equal(f)
	thaw()
	return next, changed, nil
}
