// Package translate implements the paper's implementation route ([Ca90],
// "Implementing an Object-Oriented Data Model in Relational Algebra",
// cited in §5): the translation of the LOGRES data model into the
// relational model of the ALGRES substrate.
//
// Two targets are provided:
//
//   - the NF² target (ToNF2/FromNF2): each class becomes one extended
//     relation with a distinguished "$oid" attribute, components keep
//     their constructed values (sets/multisets/sequences stay nested) —
//     this is ALGRES's native model;
//   - the flat target (ToFlat/FromFlat): collection-valued components are
//     normalized into auxiliary relations keyed by the owner ("$oid" for
//     classes, a surrogate "$tid" for associations), with "$pos" recording
//     sequence order and one row per multiset occurrence — the classical
//     1NF encoding.
//
// Both translations are lossless; FromNF2/FromFlat invert them exactly.
package translate

import (
	"fmt"

	"logres/internal/algres"
	"logres/internal/instance"
	"logres/internal/types"
	"logres/internal/value"
)

// Distinguished attribute names used by the translation.
const (
	OIDAttr  = "$oid"
	TIDAttr  = "$tid"
	PosAttr  = "$pos"
	ElemAttr = "$elem"
)

// auxName names the auxiliary relation of a collection component.
func auxName(owner, label string) string { return owner + "$" + label }

// NF2Catalog returns the relation schemas of the NF² target.
func NF2Catalog(s *types.Schema) (map[string][]string, error) {
	out := map[string][]string{}
	for _, c := range s.NamesOf(types.DeclClass) {
		eff, err := s.EffectiveTuple(c)
		if err != nil {
			return nil, err
		}
		attrs := []string{OIDAttr}
		for _, f := range eff.Fields {
			attrs = append(attrs, f.Label)
		}
		out[c] = attrs
	}
	for _, a := range s.NamesOf(types.DeclAssociation) {
		eff, err := s.EffectiveTuple(a)
		if err != nil {
			return nil, err
		}
		var attrs []string
		for _, f := range eff.Fields {
			attrs = append(attrs, f.Label)
		}
		out[a] = attrs
	}
	return out, nil
}

// ToNF2 translates an instance into the NF² relational target.
func ToNF2(in *instance.Instance) (*algres.DB, error) {
	s := in.Schema()
	cat, err := NF2Catalog(s)
	if err != nil {
		return nil, err
	}
	db := algres.NewDB()
	for name, attrs := range cat {
		db.Set(name, algres.NewRelation(attrs...))
	}
	for _, c := range s.NamesOf(types.DeclClass) {
		rel, _ := db.Get(c)
		eff, _ := s.EffectiveTuple(c)
		for _, oid := range in.Objects(c) {
			v, _ := in.OValue(oid)
			proj := instance.Project(v, eff)
			rel.Insert(proj.With(OIDAttr, value.Ref(oid)))
		}
	}
	for _, a := range s.NamesOf(types.DeclAssociation) {
		rel, _ := db.Get(a)
		for _, t := range in.Tuples(a) {
			rel.Insert(t)
		}
	}
	return db, nil
}

// FromNF2 inverts ToNF2.
func FromNF2(db *algres.DB, s *types.Schema) (*instance.Instance, error) {
	in := instance.New(s)
	for _, c := range s.NamesOf(types.DeclClass) {
		rel, ok := db.Get(c)
		if !ok {
			continue
		}
		for _, t := range rel.Tuples() {
			ov, ok := t.Get(OIDAttr)
			if !ok {
				return nil, fmt.Errorf("translate: class relation %q lacks %s", c, OIDAttr)
			}
			ref, ok := ov.(value.Ref)
			if !ok {
				return nil, fmt.Errorf("translate: %s of %q is %s, not an oid", OIDAttr, c, ov.Kind())
			}
			fields := make([]value.Field, 0, t.Len()-1)
			for i := 0; i < t.Len(); i++ {
				f := t.Field(i)
				if f.Label != OIDAttr {
					fields = append(fields, f)
				}
			}
			in.AddToClass(c, value.OID(ref), value.NewTuple(fields...))
		}
	}
	for _, a := range s.NamesOf(types.DeclAssociation) {
		rel, ok := db.Get(a)
		if !ok {
			continue
		}
		for _, t := range rel.Tuples() {
			in.InsertTuple(a, t)
		}
	}
	return in, nil
}

// FlatCatalog returns the relation schemas of the flat target: the main
// relation of each class/association plus one auxiliary relation per
// collection-valued component.
func FlatCatalog(s *types.Schema) (map[string][]string, error) {
	out := map[string][]string{}
	add := func(owner string, eff types.Tuple, keyAttr string) error {
		attrs := []string{keyAttr}
		for _, f := range eff.Fields {
			et, err := s.ExpandDomains(f.Type)
			if err != nil {
				return err
			}
			switch et.(type) {
			case types.Set:
				out[auxName(owner, f.Label)] = []string{keyAttr, ElemAttr}
			case types.Multiset:
				// Occurrences are distinguished by position, preserving
				// multiplicity.
				out[auxName(owner, f.Label)] = []string{keyAttr, ElemAttr, PosAttr}
			case types.Sequence:
				out[auxName(owner, f.Label)] = []string{keyAttr, PosAttr, ElemAttr}
			default:
				attrs = append(attrs, f.Label)
			}
		}
		out[owner] = attrs
		return nil
	}
	for _, c := range s.NamesOf(types.DeclClass) {
		eff, err := s.EffectiveTuple(c)
		if err != nil {
			return nil, err
		}
		if err := add(c, eff, OIDAttr); err != nil {
			return nil, err
		}
	}
	for _, a := range s.NamesOf(types.DeclAssociation) {
		eff, err := s.EffectiveTuple(a)
		if err != nil {
			return nil, err
		}
		if err := add(a, eff, TIDAttr); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// isCollection reports whether a component type expands to a collection,
// and which kind.
func collectionKind(s *types.Schema, t types.Type) (value.Kind, bool) {
	et, err := s.ExpandDomains(t)
	if err != nil {
		return 0, false
	}
	switch et.(type) {
	case types.Set:
		return value.KindSet, true
	case types.Multiset:
		return value.KindMultiset, true
	case types.Sequence:
		return value.KindSequence, true
	}
	return 0, false
}

// ToFlat translates an instance into the flat target.
func ToFlat(in *instance.Instance) (*algres.DB, error) {
	s := in.Schema()
	cat, err := FlatCatalog(s)
	if err != nil {
		return nil, err
	}
	db := algres.NewDB()
	for name, attrs := range cat {
		db.Set(name, algres.NewRelation(attrs...))
	}

	explode := func(owner string, eff types.Tuple, key value.Value, t value.Tuple) error {
		main, _ := db.Get(owner)
		keyAttr := main.Attrs()[0]
		fields := []value.Field{{Label: keyAttr, Value: key}}
		for _, f := range eff.Fields {
			v, ok := t.Get(f.Label)
			if !ok {
				v = value.Null{}
			}
			if _, isColl := collectionKind(s, f.Type); !isColl {
				fields = append(fields, value.Field{Label: f.Label, Value: v})
				continue
			}
			aux, _ := db.Get(auxName(owner, f.Label))
			switch x := v.(type) {
			case value.Set:
				for _, el := range x.Elems() {
					aux.Insert(value.NewTuple(
						value.Field{Label: keyAttr, Value: key},
						value.Field{Label: ElemAttr, Value: el},
					))
				}
			case value.Multiset:
				// One row per occurrence: disambiguate with a position.
				for i, el := range x.Elems() {
					aux.Insert(value.NewTuple(
						value.Field{Label: keyAttr, Value: key},
						value.Field{Label: ElemAttr, Value: el},
						value.Field{Label: PosAttr, Value: value.Int(int64(i))},
					))
				}
			case value.Sequence:
				for i, el := range x.Elems() {
					aux.Insert(value.NewTuple(
						value.Field{Label: keyAttr, Value: key},
						value.Field{Label: PosAttr, Value: value.Int(int64(i))},
						value.Field{Label: ElemAttr, Value: el},
					))
				}
			case value.Null:
				// Absent collection: no aux rows.
			default:
				return fmt.Errorf("translate: component %s.%s holds %s, expected a collection",
					owner, f.Label, v.Kind())
			}
		}
		main.Insert(value.NewTuple(fields...))
		return nil
	}

	for _, c := range s.NamesOf(types.DeclClass) {
		eff, _ := s.EffectiveTuple(c)
		for _, oid := range in.Objects(c) {
			v, _ := in.OValue(oid)
			if err := explode(c, eff, value.Ref(oid), instance.Project(v, eff)); err != nil {
				return nil, err
			}
		}
	}
	for _, a := range s.NamesOf(types.DeclAssociation) {
		eff, _ := s.EffectiveTuple(a)
		for _, t := range in.Tuples(a) {
			tid := value.Str(t.Key()) // deterministic surrogate
			if err := explode(a, eff, tid, t); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// FromFlat inverts ToFlat.
func FromFlat(db *algres.DB, s *types.Schema) (*instance.Instance, error) {
	in := instance.New(s)
	rebuild := func(owner string, eff types.Tuple, keyAttr string, emit func(key value.Value, t value.Tuple) error) error {
		main, ok := db.Get(owner)
		if !ok {
			return nil
		}
		// Collect auxiliary rows grouped by key.
		collected := map[string]map[string][]value.Tuple{} // label → key → rows
		for _, f := range eff.Fields {
			if _, isColl := collectionKind(s, f.Type); !isColl {
				continue
			}
			aux, ok := db.Get(auxName(owner, f.Label))
			if !ok {
				continue
			}
			byKey := map[string][]value.Tuple{}
			for _, row := range aux.Tuples() {
				k, _ := row.Get(keyAttr)
				byKey[k.Key()] = append(byKey[k.Key()], row)
			}
			collected[f.Label] = byKey
		}
		for _, row := range main.Tuples() {
			key, _ := row.Get(keyAttr)
			fields := make([]value.Field, 0, len(eff.Fields))
			for _, f := range eff.Fields {
				kind, isColl := collectionKind(s, f.Type)
				if !isColl {
					v, ok := row.Get(f.Label)
					if !ok {
						v = value.Null{}
					}
					fields = append(fields, value.Field{Label: f.Label, Value: v})
					continue
				}
				rows := collected[f.Label][key.Key()]
				elems := make([]value.Value, 0, len(rows))
				if kind == value.KindSequence || kind == value.KindMultiset {
					// Order by position.
					byPos := map[int64]value.Value{}
					for _, r := range rows {
						p, _ := r.Get(PosAttr)
						el, _ := r.Get(ElemAttr)
						byPos[int64(p.(value.Int))] = el
					}
					for i := int64(0); i < int64(len(rows)); i++ {
						el, ok := byPos[i]
						if !ok {
							return fmt.Errorf("translate: %s.%s: missing position %d", owner, f.Label, i)
						}
						elems = append(elems, el)
					}
				} else {
					for _, r := range rows {
						el, _ := r.Get(ElemAttr)
						elems = append(elems, el)
					}
				}
				var v value.Value
				switch kind {
				case value.KindSet:
					v = value.NewSet(elems...)
				case value.KindMultiset:
					v = value.NewMultiset(elems...)
				default:
					v = value.NewSequence(elems...)
				}
				fields = append(fields, value.Field{Label: f.Label, Value: v})
			}
			if err := emit(key, value.NewTuple(fields...)); err != nil {
				return err
			}
		}
		return nil
	}

	for _, c := range s.NamesOf(types.DeclClass) {
		eff, err := s.EffectiveTuple(c)
		if err != nil {
			return nil, err
		}
		err = rebuild(c, eff, OIDAttr, func(key value.Value, t value.Tuple) error {
			ref, ok := key.(value.Ref)
			if !ok {
				return fmt.Errorf("translate: class %q key is %s", c, key.Kind())
			}
			in.AddToClass(c, value.OID(ref), t)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	for _, a := range s.NamesOf(types.DeclAssociation) {
		eff, err := s.EffectiveTuple(a)
		if err != nil {
			return nil, err
		}
		err = rebuild(a, eff, TIDAttr, func(_ value.Value, t value.Tuple) error {
			in.InsertTuple(a, t)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return in, nil
}
